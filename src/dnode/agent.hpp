// NodeAgent: one OS process's worth of the distributed cluster.
//
// The paper's test bed runs an MCC daemon on every machine; the node agent
// is that daemon grown into a full rank host. It listens on a real TCP
// port (`mojc node --bind ADDR --port P --storage ROOT`), accepts one
// control connection from the coordinator and data connections from peer
// agents, and hosts managed processes (ranks) on threads:
//
//  * msg_send / msg_recv between ranks route through per-rank mailboxes —
//    locally when both ranks live here, over a framed + checksummed TCP
//    link to the peer's agent otherwise. Outbound links are dialed lazily
//    under the process RetryPolicy's deadlines.
//  * Sender-based replay logs (the MPICH-V companion of rollback
//    recovery, same contract as SimNetwork's) answer REPLAY_REQ frames so
//    a rolled-back or resurrected receiver can re-request border messages
//    its peers will never send again.
//  * Ranks checkpoint into the content-addressed chunk store under
//    --storage ROOT (shared across agents, the role NFS played in the
//    paper); RESURRECT restores any rank from that store, which is how
//    both failure recovery and load-aware migration move ranks here.
//  * The speculation join is a protocol: sends carry the sender's level
//    and rollback epoch, speculative receives emit DEP_RECORD to the
//    coordinator, rollbacks report ROLL_POISON, and inbound POISON frames
//    make the rank's next receive report MSG_ROLL.
//
// A deliberately `throttle_ms`-slowed agent both runs slower and reports
// an inflated load in its heartbeats — the knob the load-aware migration
// experiment (and the paper's loaded-node evaluation) turns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/store.hpp"
#include "dnode/wire.hpp"
#include "net/retry.hpp"
#include "net/tcp.hpp"
#include "vm/process.hpp"

namespace mojave::dnode {

struct AgentConfig {
  std::string bind = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = pick a free port
  /// Checkpoint store root. Must be shared (same filesystem) across every
  /// agent in the cluster for resurrection and migration to work — the
  /// paper used NFS; tests use one local directory.
  std::filesystem::path storage_root;
  /// Deliberate slowdown per send (ms) + load inflation in heartbeats.
  double throttle_ms = 0;
  double heartbeat_seconds = 0.05;
  /// msg_recv safety net (overridden by the coordinator's CONFIG).
  double recv_timeout_seconds = 30.0;
  /// How long a receive waits before re-requesting a missing message from
  /// the sender's replay log (and between repeat requests).
  double replay_request_seconds = 0.1;
  runtime::HeapConfig heap;
  ckpt::CheckpointStore::Options ckpt;
};

class NodeAgent {
 public:
  explicit NodeAgent(AgentConfig cfg);
  ~NodeAgent();

  NodeAgent(const NodeAgent&) = delete;
  NodeAgent& operator=(const NodeAgent&) = delete;

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Block until the coordinator sends SHUTDOWN (or drops the control
  /// connection) — the `mojc node` main loop.
  void wait();

  /// Stop everything: ranks, readers, heartbeats, listener.
  void stop();

  /// Ranks currently hosted and running here (tests/monitoring).
  [[nodiscard]] std::vector<std::uint32_t> hosted_ranks() const;

 private:
  struct Conn;       // one accepted or dialed connection + write lock
  struct RankSlot;   // one hosted rank: process thread + mailbox + logs
  struct Placement {
    std::uint32_t agent = 0;
    bool alive = true;
  };

  /// One rank's inbox. Keyed by the rank, not the slot, so frames that
  /// arrive before LAUNCH/RESURRECT (or between incarnations on this
  /// agent) are not lost. `delivered` is the receiver-side replay log: a
  /// rank re-executing after a rollback re-reads the message it already
  /// consumed, exactly as SimNetwork replays for the simulated cluster.
  struct Mailbox {
    std::map<std::pair<std::uint32_t, std::int32_t>,
             std::deque<std::vector<std::byte>>>
        q;
    std::map<std::pair<std::uint32_t, std::int32_t>, std::vector<std::byte>>
        delivered;
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Conn> conn);
  void heartbeat_loop();

  void handle_frame(const Msg& m, const std::shared_ptr<Conn>& conn);
  void handle_data(const Msg& m);
  void handle_replay_req(const Msg& m);

  void launch_rank(std::uint32_t rank, std::vector<std::byte> image);
  void resurrect_rank(std::uint32_t rank);
  void run_rank(RankSlot& slot, vm::Process& proc, bool resumed,
                FunIndex resume_fun, std::vector<runtime::Value> resume_args);
  void register_externals(vm::Process& proc, RankSlot& slot);
  RankSlot* find_slot(std::uint32_t rank);

  /// Enqueue a payload into rank `dst`'s local mailbox.
  void deliver_local(std::uint32_t src, std::uint32_t dst, std::int32_t tag,
                     std::vector<std::byte> payload);
  /// Deliver locally or frame-and-forward to the agent hosting `dst`.
  /// False when the rank is marked down or the link failed (= dropped;
  /// the sender's rollback-retry loop and the replay log recover).
  bool route_payload(std::uint32_t src, std::uint32_t dst, std::int32_t tag,
                     std::vector<std::byte> payload);
  /// Ask the agent hosting `src` to replay its last (requester, tag) send.
  void request_replay(std::uint32_t src, std::uint32_t requester,
                      std::int32_t tag);
  bool send_to_agent(std::uint32_t agent, std::span<const std::byte> frame);
  void send_to_coordinator(std::span<const std::byte> frame);

  AgentConfig cfg_;
  net::TcpListener listener_;
  net::RetryPolicy retry_;
  std::shared_ptr<ckpt::CheckpointStore> store_;

  std::thread accept_thread_;
  std::thread heartbeat_thread_;
  std::vector<std::thread> readers_;
  std::mutex readers_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;  // guarded by readers_mu_

  // Session state installed by CONFIG/PLACEMENT.
  mutable std::mutex mu_;
  std::uint32_t my_agent_ = 0;
  std::uint32_t num_ranks_ = 0;
  std::uint64_t max_instructions_ = 0;
  std::vector<AgentAddr> agents_;
  std::vector<Placement> placement_;
  std::shared_ptr<Conn> coordinator_;
  std::map<std::uint32_t, std::unique_ptr<RankSlot>> slots_;

  // Outbound data-plane links, dialed lazily.
  struct PeerLink;
  std::map<std::uint32_t, std::shared_ptr<PeerLink>> links_;
  std::mutex links_mu_;

  // Inboxes for every rank this agent hosts (or is about to host).
  mutable std::mutex mail_mu_;
  std::condition_variable mail_cv_;
  std::map<std::uint32_t, Mailbox> mail_;  // guarded by mail_mu_

  std::atomic<bool> stopping_{false};
  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace mojave::dnode
