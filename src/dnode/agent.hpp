// NodeAgent: one OS process's worth of the distributed cluster.
//
// The paper's test bed runs an MCC daemon on every machine; the node agent
// is that daemon grown into a full rank host. It listens on a real TCP
// port (`mojc node --bind ADDR --port P --storage ROOT`), accepts one
// control connection from the coordinator and data connections from peer
// agents, and hosts managed processes (ranks).
//
// Execution model (see docs/SCALING.md): one event-loop thread owns every
// socket through a net::Poller and runs every rank as a userspace fiber
// under a RankScheduler. Because the interpreter is CPS, a rank suspends
// with nothing but (function, pc, registers) saved inside its own
// Interpreter — so a parked rank costs a map entry, not a kernel thread,
// and one agent hosts hundreds of ranks where the thread-per-rank design
// topped out at dozens. Ranks advance in bounded instruction slices;
// blocking externals (an empty mailbox, the send throttle, sleep_ms)
// throw vm::WouldBlock and the fiber parks on a wait key until a frame,
// a poison, or a deadline wakes it.
//
//  * msg_send / msg_recv between ranks route through per-rank mailboxes —
//    locally when both ranks live here, over a framed + checksummed TCP
//    link to the peer's agent otherwise. Outbound links dial without
//    blocking the loop; small DATA frames coalesce per (peer, tick) into
//    one writev, large payloads go out zero-copy.
//  * Sender-based replay logs (the MPICH-V companion of rollback
//    recovery, same contract as SimNetwork's) answer REPLAY_REQ frames so
//    a rolled-back or resurrected receiver can re-request border messages
//    its peers will never send again.
//  * Ranks checkpoint into the content-addressed chunk store under
//    --storage ROOT (shared across agents, the role NFS played in the
//    paper); RESURRECT restores any rank from that store, which is how
//    both failure recovery and load-aware migration move ranks here.
//  * The speculation join is a protocol: sends carry the sender's level
//    and rollback epoch, speculative receives emit DEP_RECORD to the
//    coordinator, rollbacks report ROLL_POISON, and inbound POISON frames
//    make the rank's next receive report MSG_ROLL.
//
// A deliberately `throttle_ms`-slowed agent both runs slower (a pacing
// gate between sends) and reports an inflated load in its heartbeats —
// the knob the load-aware migration experiment (and the paper's
// loaded-node evaluation) turns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/store.hpp"
#include "dnode/sched.hpp"
#include "dnode/wire.hpp"
#include "net/poller.hpp"
#include "net/retry.hpp"
#include "net/tcp.hpp"
#include "support/stopwatch.hpp"
#include "vm/process.hpp"

namespace mojave::dnode {

struct AgentConfig {
  std::string bind = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = pick a free port
  /// Checkpoint store root. Must be shared (same filesystem) across every
  /// agent in the cluster for resurrection and migration to work — the
  /// paper used NFS; tests use one local directory.
  std::filesystem::path storage_root;
  /// Deliberate slowdown per send (ms) + load inflation in heartbeats.
  double throttle_ms = 0;
  double heartbeat_seconds = 0.05;
  /// msg_recv safety net (overridden by the coordinator's CONFIG).
  double recv_timeout_seconds = 30.0;
  /// How long a receive waits before re-requesting a missing message from
  /// the sender's replay log (and between repeat requests).
  double replay_request_seconds = 0.1;
  /// Instructions a rank may run per scheduler slice before it is
  /// preempted back to the event loop.
  std::uint64_t slice_instructions = 20000;
  /// How long the agent keeps its ranks running after losing the
  /// coordinator connection, waiting for a standby to take over
  /// (docs/CONTROL_PLANE.md). 0 = shut down immediately (the pre-HA
  /// behavior).
  double coordinator_grace_seconds = 10.0;
  runtime::HeapConfig heap;
  ckpt::CheckpointStore::Options ckpt;
};

class NodeAgent {
 public:
  explicit NodeAgent(AgentConfig cfg);
  ~NodeAgent();

  NodeAgent(const NodeAgent&) = delete;
  NodeAgent& operator=(const NodeAgent&) = delete;

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Block until the coordinator sends SHUTDOWN (or drops the control
  /// connection) — the `mojc node` main loop.
  void wait();

  /// Stop everything: the event loop, all fibers, all sockets.
  void stop();

  /// Ranks currently hosted and running here (tests/monitoring).
  [[nodiscard]] std::vector<std::uint32_t> hosted_ranks() const;

 private:
  struct Conn;       // one accepted connection (framed, non-blocking)
  struct Link;       // one outbound data-plane link to a peer agent
  struct RankSlot;   // one hosted rank: process + fiber + gates + logs
  struct Placement {
    std::uint32_t agent = 0;
    bool alive = true;
  };

  /// One rank's inbox. Keyed by the rank, not the slot, so frames that
  /// arrive before LAUNCH/RESURRECT (or between incarnations on this
  /// agent) are not lost. `delivered` is the receiver-side replay log: a
  /// rank re-executing after a rollback re-reads the message it already
  /// consumed, exactly as SimNetwork replays for the simulated cluster.
  struct Mailbox {
    std::map<std::pair<std::uint32_t, std::int32_t>,
             std::deque<std::vector<std::byte>>>
        q;
    std::map<std::pair<std::uint32_t, std::int32_t>, std::vector<std::byte>>
        delivered;
  };

  // --- Event loop (all private state below is loop-thread-owned unless
  // noted; mu_ guards the slices tests read from other threads). ---------
  void loop();
  void on_listener_ready();
  void on_conn_event(std::uint64_t token, const net::Poller::Event& ev);
  void on_link_event(std::uint32_t agent, const net::Poller::Event& ev);
  void flush_io();  ///< end-of-tick: flush every dirty socket, re-arm

  [[nodiscard]] double now_seconds() const { return clock_.seconds(); }

  void handle_frame(const Msg& m, const std::shared_ptr<Conn>& conn);
  void handle_data(const Msg& m);
  void handle_replay_req(const Msg& m);
  void drop_conn(std::uint64_t token);
  void fail_link(std::uint32_t agent);
  void request_shutdown();

  // --- Ranks as fibers --------------------------------------------------
  void launch_rank(std::uint32_t rank, std::vector<std::byte> image);
  void resurrect_rank(std::uint32_t rank, std::uint64_t commit_seq);
  void adopt_slot(std::uint32_t rank, std::unique_ptr<RankSlot> slot);
  RankScheduler::Step step_rank(RankSlot& slot);
  void finish_rank(RankSlot& slot, int result_kind, std::int64_t exit_code,
                   const std::string& error);
  void register_externals(vm::Process& proc, RankSlot& slot);
  RankSlot* find_slot(std::uint32_t rank);

  /// Enqueue a payload into rank `dst`'s local mailbox.
  void deliver_local(std::uint32_t src, std::uint32_t dst, std::int32_t tag,
                     std::vector<std::byte> payload);
  /// Deliver locally or frame-and-forward to the agent hosting `dst`.
  /// False when the rank is marked down or the link could not be dialed
  /// (= dropped; the sender's rollback-retry loop and replay log recover).
  bool route_payload(std::uint32_t src, std::uint32_t dst, std::int32_t tag,
                     std::vector<std::byte> payload);
  /// Ask the agent hosting `src` to replay its last (requester, tag) send.
  void request_replay(std::uint32_t src, std::uint32_t requester,
                      std::int32_t tag);
  bool send_to_agent(std::uint32_t agent, std::vector<std::byte> frame);
  void send_to_coordinator(std::vector<std::byte> frame);

  AgentConfig cfg_;
  net::TcpListener listener_;
  net::RetryPolicy retry_;
  std::shared_ptr<ckpt::CheckpointStore> store_;
  Stopwatch clock_;  ///< the time base for every gate/deadline

  net::Poller poller_;
  RankScheduler sched_{&poller_};
  std::thread loop_thread_;

  std::map<std::uint64_t, std::shared_ptr<Conn>> conns_;  // token → conn
  std::uint64_t next_conn_id_ = 0;
  std::shared_ptr<Conn> coordinator_;
  /// Highest coordinator lease epoch adopted. A HELLO from a lower epoch
  /// is a fenced zombie primary and is rejected.
  std::uint64_t coord_epoch_ = 0;
  /// When the control connection died (-1 = connected). The agent keeps
  /// running for coordinator_grace_seconds awaiting a takeover.
  double coord_lost_at_ = -1;
  /// Coordinator-bound frames buffered while disconnected, flushed to the
  /// adopting coordinator (bounded; oldest dropped first).
  std::deque<std::vector<std::byte>> coord_backlog_;
  std::map<std::uint32_t, std::unique_ptr<Link>> links_;  // agent → link
  double next_heartbeat_ = 0;

  // Session state installed by CONFIG/PLACEMENT. mu_ lets tests read the
  // rank set while the loop mutates it.
  mutable std::mutex mu_;
  std::uint32_t my_agent_ = 0;
  std::uint32_t num_ranks_ = 0;
  std::uint64_t max_instructions_ = 0;
  std::vector<AgentAddr> agents_;
  std::vector<Placement> placement_;
  std::map<std::uint32_t, std::unique_ptr<RankSlot>> slots_;

  std::map<std::uint32_t, Mailbox> mail_;

  std::atomic<bool> stopping_{false};
  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace mojave::dnode
