#include "dnode/wire.hpp"

#include "support/hash.hpp"

namespace mojave::dnode {

namespace {

constexpr std::size_t kChecksumBytes = 8;

Writer begin(MsgType type) {
  Writer w;
  w.u32(kWireMagic);
  w.u8(static_cast<std::uint8_t>(type));
  return w;
}

std::vector<std::byte> finish(Writer& w) {
  std::vector<std::byte> frame = w.take();
  const std::uint64_t h = fnv1a(frame);
  for (std::size_t i = 0; i < kChecksumBytes; ++i) {
    frame.push_back(std::byte{static_cast<std::uint8_t>(h >> (8 * i))});
  }
  return frame;
}

}  // namespace

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "hello";
    case MsgType::kConfig: return "config";
    case MsgType::kLaunch: return "launch";
    case MsgType::kPlacement: return "placement";
    case MsgType::kData: return "data";
    case MsgType::kReplayReq: return "replay-req";
    case MsgType::kDepRecord: return "dep-record";
    case MsgType::kRollPoison: return "roll-poison";
    case MsgType::kPoison: return "poison";
    case MsgType::kCommitDischarge: return "commit-discharge";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kResurrect: return "resurrect";
    case MsgType::kYieldRank: return "yield-rank";
    case MsgType::kRankYielded: return "rank-yielded";
    case MsgType::kRankUp: return "rank-up";
    case MsgType::kResult: return "result";
    case MsgType::kForceRoll: return "force-roll";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kReAdopt: return "re-adopt";
    case MsgType::kReAdoptAck: return "re-adopt-ack";
  }
  return "?";
}

std::vector<std::byte> encode_hello(PeerKind kind, std::uint32_t agent,
                                    std::uint64_t coord_epoch) {
  Writer w = begin(MsgType::kHello);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(agent);
  w.u64(coord_epoch);
  return finish(w);
}

std::vector<std::byte> encode_config(std::uint32_t your_agent,
                                     std::uint32_t num_ranks,
                                     const std::vector<AgentAddr>& agents,
                                     std::uint64_t max_instructions,
                                     double recv_timeout_seconds) {
  Writer w = begin(MsgType::kConfig);
  w.u32(your_agent);
  w.u32(num_ranks);
  w.u32(static_cast<std::uint32_t>(agents.size()));
  for (const AgentAddr& a : agents) {
    w.str(a.host);
    w.u16(a.port);
  }
  w.u64(max_instructions);
  w.f64(recv_timeout_seconds);
  return finish(w);
}

std::vector<std::byte> encode_launch(std::uint32_t rank,
                                     std::span<const std::byte> image) {
  Writer w = begin(MsgType::kLaunch);
  w.u32(rank);
  w.u32(static_cast<std::uint32_t>(image.size()));
  w.bytes(image);
  return finish(w);
}

std::vector<std::byte> encode_placement(
    const std::vector<PlacementEntry>& entries) {
  Writer w = begin(MsgType::kPlacement);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const PlacementEntry& e : entries) {
    w.u32(e.rank);
    w.u32(e.agent);
    w.u8(e.alive ? 1 : 0);
  }
  return finish(w);
}

std::vector<std::byte> encode_data(std::uint32_t src, std::uint32_t dst,
                                   std::int32_t tag,
                                   std::span<const std::byte> payload) {
  Writer w = begin(MsgType::kData);
  w.u32(src);
  w.u32(dst);
  w.i32(tag);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.bytes(payload);
  return finish(w);
}

std::vector<std::byte> encode_replay_req(std::uint32_t owner,
                                         std::uint32_t requester,
                                         std::int32_t tag) {
  Writer w = begin(MsgType::kReplayReq);
  w.u32(owner);
  w.u32(requester);
  w.i32(tag);
  return finish(w);
}

std::vector<std::byte> encode_dep_record(std::uint32_t sender,
                                         std::uint32_t sender_level,
                                         std::uint32_t receiver,
                                         std::uint32_t receiver_level,
                                         std::uint64_t epoch,
                                         std::uint64_t commit_seq) {
  Writer w = begin(MsgType::kDepRecord);
  w.u32(sender);
  w.u32(sender_level);
  w.u32(receiver);
  w.u32(receiver_level);
  w.u64(epoch);
  w.u64(commit_seq);
  return finish(w);
}

std::vector<std::byte> encode_roll_poison(std::uint32_t rank,
                                          std::uint32_t level,
                                          std::uint64_t epoch) {
  Writer w = begin(MsgType::kRollPoison);
  w.u32(rank);
  w.u32(level);
  w.u64(epoch);
  return finish(w);
}

std::vector<std::byte> encode_poison(std::uint32_t rank) {
  Writer w = begin(MsgType::kPoison);
  w.u32(rank);
  return finish(w);
}

std::vector<std::byte> encode_commit_discharge(std::uint32_t rank) {
  Writer w = begin(MsgType::kCommitDischarge);
  w.u32(rank);
  return finish(w);
}

std::vector<std::byte> encode_heartbeat(std::uint32_t agent, double load,
                                        std::uint32_t live_ranks) {
  Writer w = begin(MsgType::kHeartbeat);
  w.u32(agent);
  w.f64(load);
  w.u32(live_ranks);
  return finish(w);
}

std::vector<std::byte> encode_resurrect(std::uint32_t rank,
                                        std::uint64_t commit_seq) {
  Writer w = begin(MsgType::kResurrect);
  w.u32(rank);
  w.u64(commit_seq);
  return finish(w);
}

std::vector<std::byte> encode_yield_rank(std::uint32_t rank) {
  Writer w = begin(MsgType::kYieldRank);
  w.u32(rank);
  return finish(w);
}

std::vector<std::byte> encode_rank_yielded(std::uint32_t rank, bool ok) {
  Writer w = begin(MsgType::kRankYielded);
  w.u32(rank);
  w.u8(ok ? 1 : 0);
  return finish(w);
}

std::vector<std::byte> encode_rank_up(std::uint32_t rank, bool ok) {
  Writer w = begin(MsgType::kRankUp);
  w.u32(rank);
  w.u8(ok ? 1 : 0);
  return finish(w);
}

std::vector<std::byte> encode_result(const Msg& r) {
  Writer w = begin(MsgType::kResult);
  w.u32(r.rank);
  w.u8(r.result_kind);
  w.i64(r.exit_code);
  w.u8(r.has_reported ? 1 : 0);
  w.f64(r.reported);
  w.str(r.error);
  w.str(r.output);
  w.u64(r.instructions);
  w.u64(r.speculates);
  w.u64(r.commits);
  w.u64(r.rollbacks);
  return finish(w);
}

std::vector<std::byte> encode_force_roll(std::uint32_t rank) {
  Writer w = begin(MsgType::kForceRoll);
  w.u32(rank);
  return finish(w);
}

std::vector<std::byte> encode_shutdown() {
  Writer w = begin(MsgType::kShutdown);
  return finish(w);
}

std::vector<std::byte> encode_re_adopt(std::uint64_t coord_epoch) {
  Writer w = begin(MsgType::kReAdopt);
  w.u64(coord_epoch);
  return finish(w);
}

std::vector<std::byte> encode_re_adopt_ack(
    std::uint32_t agent, const std::vector<CensusEntry>& census) {
  Writer w = begin(MsgType::kReAdoptAck);
  w.u32(agent);
  w.u32(static_cast<std::uint32_t>(census.size()));
  for (const CensusEntry& e : census) {
    w.u32(e.rank);
    w.u8(e.state);
    w.u64(e.commit_seq);
  }
  return finish(w);
}

std::vector<std::byte> encode_data_payload(std::uint32_t spec_level,
                                           std::uint64_t epoch,
                                           std::uint64_t commit_seq,
                                           std::uint32_t count,
                                           std::span<const std::byte> values) {
  Writer w;
  w.u32(spec_level);
  w.u64(epoch);
  w.u64(commit_seq);
  w.u32(count);
  w.bytes(values);
  return w.take();
}

std::optional<Msg> decode(std::span<const std::byte> frame) {
  if (frame.size() < 4 + 1 + kChecksumBytes) return std::nullopt;
  const std::size_t body = frame.size() - kChecksumBytes;
  std::uint64_t stored = 0;
  for (std::size_t i = 0; i < kChecksumBytes; ++i) {
    stored |= std::to_integer<std::uint64_t>(frame[body + i]) << (8 * i);
  }
  if (stored != fnv1a(frame.first(body))) return std::nullopt;

  try {
    Reader r(frame.first(body));
    if (r.u32() != kWireMagic) return std::nullopt;
    Msg m;
    m.type = static_cast<MsgType>(r.u8());
    switch (m.type) {
      case MsgType::kHello:
        m.peer_kind = static_cast<PeerKind>(r.u8());
        m.agent = r.u32();
        m.coord_epoch = r.u64();
        break;
      case MsgType::kConfig: {
        m.agent = r.u32();
        m.num_ranks = r.u32();
        const std::uint32_t n = r.u32();
        for (std::uint32_t i = 0; i < n; ++i) {
          AgentAddr a;
          a.host = r.str();
          a.port = r.u16();
          m.agents.push_back(std::move(a));
        }
        m.max_instructions = r.u64();
        m.recv_timeout_seconds = r.f64();
        break;
      }
      case MsgType::kLaunch: {
        m.rank = r.u32();
        const std::uint32_t n = r.u32();
        const auto span = r.bytes(n);
        m.payload.assign(span.begin(), span.end());
        break;
      }
      case MsgType::kPlacement: {
        const std::uint32_t n = r.u32();
        for (std::uint32_t i = 0; i < n; ++i) {
          PlacementEntry e;
          e.rank = r.u32();
          e.agent = r.u32();
          e.alive = r.u8() != 0;
          m.placement.push_back(e);
        }
        break;
      }
      case MsgType::kData: {
        m.src = r.u32();
        m.dst = r.u32();
        m.tag = r.i32();
        const std::uint32_t n = r.u32();
        const auto span = r.bytes(n);
        m.payload.assign(span.begin(), span.end());
        break;
      }
      case MsgType::kReplayReq:
        m.owner = r.u32();
        m.requester = r.u32();
        m.tag = r.i32();
        break;
      case MsgType::kDepRecord:
        m.sender = r.u32();
        m.sender_level = r.u32();
        m.receiver = r.u32();
        m.receiver_level = r.u32();
        m.epoch = r.u64();
        m.commit_seq = r.u64();
        break;
      case MsgType::kRollPoison:
        m.rank = r.u32();
        m.level = r.u32();
        m.epoch = r.u64();
        break;
      case MsgType::kResurrect:
        m.rank = r.u32();
        m.commit_seq = r.u64();
        break;
      case MsgType::kPoison:
      case MsgType::kCommitDischarge:
      case MsgType::kYieldRank:
      case MsgType::kForceRoll:
        m.rank = r.u32();
        break;
      case MsgType::kHeartbeat:
        m.agent = r.u32();
        m.load = r.f64();
        m.live_ranks = r.u32();
        break;
      case MsgType::kRankYielded:
      case MsgType::kRankUp:
        m.rank = r.u32();
        m.ok = r.u8() != 0;
        break;
      case MsgType::kResult:
        m.rank = r.u32();
        m.result_kind = r.u8();
        m.exit_code = r.i64();
        m.has_reported = r.u8() != 0;
        m.reported = r.f64();
        m.error = r.str();
        m.output = r.str();
        m.instructions = r.u64();
        m.speculates = r.u64();
        m.commits = r.u64();
        m.rollbacks = r.u64();
        break;
      case MsgType::kShutdown:
        break;
      case MsgType::kReAdopt:
        m.coord_epoch = r.u64();
        break;
      case MsgType::kReAdoptAck: {
        m.agent = r.u32();
        const std::uint32_t n = r.u32();
        for (std::uint32_t i = 0; i < n; ++i) {
          CensusEntry e;
          e.rank = r.u32();
          e.state = r.u8();
          e.commit_seq = r.u64();
          m.census.push_back(e);
        }
        break;
      }
      default:
        return std::nullopt;
    }
    return m;
  } catch (const ImageError&) {
    return std::nullopt;  // truncated body
  }
}

}  // namespace mojave::dnode
