// Coordinator: the control plane of the distributed node runtime.
//
// Owns what the single-process cluster::Cluster kept as shared memory:
//
//  * the rank → agent placement map, broadcast to every agent so the data
//    plane routes without asking;
//  * failure detection (heartbeat timeouts + control-connection EOF) and
//    resurrection of a dead agent's ranks from the shared `ckpt://` store
//    onto surviving agents — the paper's "resurrected on a remote node
//    from the last checkpoint";
//  * the speculation join, as the server side of a protocol: DEP_RECORD
//    frames feed the same `cluster::DependencyTracker` state machine the
//    simulated cluster uses (its unit tests still pin the semantics),
//    ROLL_POISON triggers the avalanche, poisoned ranks get POISON frames,
//    COMMIT_DISCHARGE discharges. An epoch fence closes the race the wire
//    adds: a DEP_RECORD describing data sent *before* a rollback the
//    coordinator has already processed is stale — the speculation it
//    would join no longer exists — so the receiver is poisoned instead
//    (docs/SPECULATION.md, "epoch fencing");
//  * the load-aware migration policy (the paper's loaded-node
//    experiment): when heartbeat loads diverge past a threshold, a rank
//    on the most-loaded agent is told to YIELD_RANK at its next
//    checkpoint and is resurrected on the least-loaded one.
//
// Durability (docs/CONTROL_PLANE.md): all of the state above lives in a
// ctrl::CoordState and is mutated ONLY through log-then-apply — the
// transition is appended to the control-plane WAL (when `wal_root` is
// set), applied through ctrl::CoordState::apply, and only then do its
// side effects go out on the wire. A standby started with `resume = true`
// replays the log through the same apply function, acquires the lease at
// a higher epoch, seals the dead primary's segment, and re-adopts the
// still-running agents via RE_ADOPT instead of relaunching the world.
//
// `mojc cluster --nodes host:port,... run prog.mjc` drives this class;
// tests drive it in-process against `mojc node` child processes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/tracker.hpp"
#include "ctrl/lease.hpp"
#include "ctrl/state.hpp"
#include "ctrl/wal.hpp"
#include "dnode/wire.hpp"
#include "fir/ir.hpp"
#include "net/poller.hpp"
#include "net/retry.hpp"
#include "net/tcp.hpp"

namespace mojave::dnode {

struct CoordinatorConfig {
  std::vector<AgentAddr> agents;
  std::uint32_t num_ranks = 4;
  /// Agent declared dead after this long without a heartbeat. EOF on the
  /// control connection (a killed process) is detected immediately.
  double heartbeat_timeout_seconds = 2.0;
  /// 0 = load balancer off.
  double balance_interval_seconds = 0;
  /// Minimum (max_load - min_load) spread before a rank is moved.
  double balance_threshold = 1.5;
  std::uint64_t max_instructions = 0;
  double recv_timeout_seconds = 30.0;
  /// WAL + lease directory (docs/CONTROL_PLANE.md). Empty = volatile
  /// coordinator: no durability, no failover — the pre-HA behavior.
  std::filesystem::path wal_root;
  /// Take over an existing run: replay the WAL under wal_root, seal the
  /// prior primary's segment, and RE_ADOPT live agents instead of
  /// launching. With an empty `agents` list the logged endpoints are
  /// reused.
  bool resume = false;
  double lease_ttl_seconds = 2.0;
  net::RetryPolicy retry = net::RetryPolicy::process_defaults();
};

/// Final state of one rank, aggregated across incarnations.
struct RankOutcome {
  std::uint32_t rank = 0;
  bool done = false;
  std::uint8_t result_kind = 0;  ///< 0 halted, 2 error
  std::int64_t exit_code = 0;
  std::string error;
  std::string output;
  bool has_reported = false;
  double reported = 0;
  std::uint64_t instructions = 0;
  std::uint64_t speculates = 0, commits = 0, rollbacks = 0;
  std::uint64_t restarts = 0;  ///< resurrections (failure or migration)
};

class Coordinator {
 public:
  /// Connects to every agent and configures the session. Throws NetError
  /// when an agent is unreachable within the retry policy's budget (a
  /// resume-mode takeover instead marks unreachable agents down and
  /// resurrects their ranks elsewhere), or when the lease is held.
  explicit Coordinator(CoordinatorConfig cfg);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Start a copy of `program` on every rank, round-robin over agents
  /// (SPMD, as in Figure 2).
  void launch_spmd(const fir::Program& program);

  /// Block until every rank reports a terminal RESULT or `timeout_seconds`
  /// elapses. Returns true when all ranks finished.
  bool wait_all(double timeout_seconds);

  [[nodiscard]] std::vector<RankOutcome> results() const;

  /// Inject a rollback: the rank's next receive reports MSG_ROLL (tests
  /// use this to force a cross-agent poison avalanche).
  void force_rollback(std::uint32_t rank);

  /// Send SHUTDOWN to every live agent and stop the control plane. In HA
  /// mode also fsync+close the WAL segment (appending kRunComplete when
  /// every rank finished) and release the lease for a clean handoff.
  void shutdown_agents();

  [[nodiscard]] std::uint32_t agent_of(std::uint32_t rank) const;
  [[nodiscard]] bool agent_alive(std::uint32_t agent) const;
  [[nodiscard]] std::uint64_t migrations() const { return migrations_.load(); }
  [[nodiscard]] std::uint64_t resurrections() const {
    return resurrections_.load();
  }
  /// The join-protocol state machine (shared with the simulated cluster).
  [[nodiscard]] cluster::DependencyTracker& tracker() {
    return state_.tracker();
  }

  /// Lease epoch this coordinator writes under (0 = volatile mode).
  [[nodiscard]] std::uint64_t lease_epoch() const {
    return lease_ ? lease_->epoch() : 0;
  }
  /// True once the lease was lost: this instance is a zombie and has
  /// stopped writing the WAL and commanding agents.
  [[nodiscard]] bool fenced() const { return fenced_.load(); }
  /// True when this instance took over an existing run's WAL.
  [[nodiscard]] bool resumed() const { return resumed_; }

  /// Canonical byte image of the replicated state (tests compare this
  /// against an offline WAL replay).
  [[nodiscard]] std::vector<std::byte> state_snapshot() const;

 private:
  /// One agent's control connection, owned by the event loop. All frames
  /// out of the coordinator go through a thread-safe outbox drained by
  /// the loop thread, so public methods never write a non-blocking fd
  /// from the wrong thread.
  struct AgentConn {
    net::FramedSocket sock;
    std::atomic<bool> alive{true};
    bool write_armed = false;   ///< loop thread only
    double last_heartbeat = 0;  ///< guarded by mu_
    double load = 0;            ///< guarded by mu_
  };

  /// The single control-plane thread: epoll over every agent connection
  /// (replacing one reader thread per agent) with the 20 ms monitor pass
  /// (heartbeat timeouts, resurrection retries, balancing) as a timer.
  void loop();
  void on_agent_event(std::uint32_t agent, const net::Poller::Event& ev);
  void monitor_tick(double now);
  void drain_outbox();
  void flush_io();
  void final_flush();  ///< push SHUTDOWN frames out before the loop exits

  void handle_frame(std::uint32_t agent, const Msg& m);
  void handle_dep_record(const Msg& m);
  void handle_roll_poison(const Msg& m);
  void handle_rank_yielded(std::uint32_t rank);
  void handle_rank_up(const Msg& m);
  void handle_re_adopt_ack_locked(std::uint32_t agent, const Msg& m);
  /// End of the takeover census (all acks in or deadline hit): ranks no
  /// agent claimed are treated as lost — poisoned and resurrected.
  void finish_readopt_locked();

  /// Log-then-apply: append the transition to the WAL (unless fenced or
  /// volatile), apply it to the state machine, send the owed POISON
  /// frames. The single mutation path for all replicated state.
  /// Requires mu_.
  ctrl::CoordState::ApplyResult apply_locked(ctrl::WalRecord rec);

  /// Mark the agent dead, poison dependents of its ranks, and schedule
  /// their resurrection on surviving agents. Requires mu_.
  void agent_down_locked(std::uint32_t agent);
  void broadcast_placement_locked();
  /// Thread-safe: enqueue a frame for the loop thread to transmit.
  void send_to_agent(std::uint32_t agent, std::vector<std::byte> frame);
  void poison_rank_locked(std::uint32_t rank);
  /// Log a kResurrectGrant for rank → target and send the RESURRECT.
  void issue_resurrect_locked(std::uint32_t rank, std::uint32_t target);
  /// Least-loaded live agent (excluding `except`; kNoAgent = none).
  [[nodiscard]] std::uint32_t pick_target_locked(std::uint32_t except) const;
  void balance_locked(double now);

  static constexpr std::uint32_t kNoAgent = ~std::uint32_t{0};

  CoordinatorConfig cfg_;
  std::vector<std::unique_ptr<AgentConn>> conns_;
  net::Poller poller_;
  std::thread loop_thread_;
  std::mutex outbox_mu_;
  std::vector<std::pair<std::uint32_t, std::vector<std::byte>>> outbox_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> fenced_{false};
  std::atomic<std::uint64_t> migrations_{0};
  std::atomic<std::uint64_t> resurrections_{0};
  bool resumed_ = false;

  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  /// The replicated state machine: placement, tracker, fences, commit
  /// counts, outcomes. Mutated only via apply_locked.
  ctrl::CoordState state_;
  std::unique_ptr<ctrl::WalWriter> wal_;  ///< null in volatile mode
  std::unique_ptr<ctrl::Lease> lease_;
  double next_lease_renew_ = 0;  ///< loop thread cadence (steady clock)
  double next_wal_flush_ = 0;

  // --- Takeover reconciliation (resume mode) ----------------------------
  bool resuming_ = false;          ///< census still in progress
  std::uint32_t readopt_waiting_ = 0;
  double readopt_deadline_ = 0;
  std::set<std::uint32_t> censused_;  ///< ranks some agent accounted for

  /// Ranks awaiting a (re)try of RESURRECT. `target` pins the agent a
  /// request was issued to, so a retry cannot start a second incarnation
  /// somewhere else while the first is still restoring. Volatile by
  /// design: a takeover regenerates it from the census.
  struct PendingResurrect {
    double not_before = 0;
    std::uint32_t target = kNoAgent;
  };
  std::map<std::uint32_t, PendingResurrect> pending_resurrect_;
  /// Ranks with a YIELD_RANK in flight (suppresses repeat balancing).
  std::set<std::uint32_t> migrating_;
  double last_balance_ = 0;
};

}  // namespace mojave::dnode
