// Coordinator: the control plane of the distributed node runtime.
//
// Owns what the single-process cluster::Cluster kept as shared memory:
//
//  * the rank → agent placement map, broadcast to every agent so the data
//    plane routes without asking;
//  * failure detection (heartbeat timeouts + control-connection EOF) and
//    resurrection of a dead agent's ranks from the shared `ckpt://` store
//    onto surviving agents — the paper's "resurrected on a remote node
//    from the last checkpoint";
//  * the speculation join, as the server side of a protocol: DEP_RECORD
//    frames feed the same `cluster::DependencyTracker` state machine the
//    simulated cluster uses (its unit tests still pin the semantics),
//    ROLL_POISON triggers the avalanche, poisoned ranks get POISON frames,
//    COMMIT_DISCHARGE discharges. An epoch fence closes the race the wire
//    adds: a DEP_RECORD describing data sent *before* a rollback the
//    coordinator has already processed is stale — the speculation it
//    would join no longer exists — so the receiver is poisoned instead
//    (docs/SPECULATION.md, "epoch fencing");
//  * the load-aware migration policy (the paper's loaded-node
//    experiment): when heartbeat loads diverge past a threshold, a rank
//    on the most-loaded agent is told to YIELD_RANK at its next
//    checkpoint and is resurrected on the least-loaded one.
//
// `mojc cluster --nodes host:port,... run prog.mjc` drives this class;
// tests drive it in-process against `mojc node` child processes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/tracker.hpp"
#include "dnode/wire.hpp"
#include "fir/ir.hpp"
#include "net/poller.hpp"
#include "net/retry.hpp"
#include "net/tcp.hpp"

namespace mojave::dnode {

struct CoordinatorConfig {
  std::vector<AgentAddr> agents;
  std::uint32_t num_ranks = 4;
  /// Agent declared dead after this long without a heartbeat. EOF on the
  /// control connection (a killed process) is detected immediately.
  double heartbeat_timeout_seconds = 2.0;
  /// 0 = load balancer off.
  double balance_interval_seconds = 0;
  /// Minimum (max_load - min_load) spread before a rank is moved.
  double balance_threshold = 1.5;
  std::uint64_t max_instructions = 0;
  double recv_timeout_seconds = 30.0;
  net::RetryPolicy retry = net::RetryPolicy::process_defaults();
};

/// Final state of one rank, aggregated across incarnations.
struct RankOutcome {
  std::uint32_t rank = 0;
  bool done = false;
  std::uint8_t result_kind = 0;  ///< 0 halted, 2 error
  std::int64_t exit_code = 0;
  std::string error;
  std::string output;
  bool has_reported = false;
  double reported = 0;
  std::uint64_t instructions = 0;
  std::uint64_t speculates = 0, commits = 0, rollbacks = 0;
  std::uint64_t restarts = 0;  ///< resurrections (failure or migration)
};

class Coordinator {
 public:
  /// Connects to every agent and configures the session. Throws NetError
  /// when an agent is unreachable within the retry policy's budget.
  explicit Coordinator(CoordinatorConfig cfg);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Start a copy of `program` on every rank, round-robin over agents
  /// (SPMD, as in Figure 2).
  void launch_spmd(const fir::Program& program);

  /// Block until every rank reports a terminal RESULT or `timeout_seconds`
  /// elapses. Returns true when all ranks finished.
  bool wait_all(double timeout_seconds);

  [[nodiscard]] std::vector<RankOutcome> results() const;

  /// Inject a rollback: the rank's next receive reports MSG_ROLL (tests
  /// use this to force a cross-agent poison avalanche).
  void force_rollback(std::uint32_t rank);

  /// Send SHUTDOWN to every live agent and stop the control plane.
  void shutdown_agents();

  [[nodiscard]] std::uint32_t agent_of(std::uint32_t rank) const;
  [[nodiscard]] bool agent_alive(std::uint32_t agent) const;
  [[nodiscard]] std::uint64_t migrations() const { return migrations_.load(); }
  [[nodiscard]] std::uint64_t resurrections() const {
    return resurrections_.load();
  }
  /// The join-protocol state machine (shared with the simulated cluster).
  [[nodiscard]] cluster::DependencyTracker& tracker() { return tracker_; }

 private:
  /// One agent's control connection, owned by the event loop. All frames
  /// out of the coordinator go through a thread-safe outbox drained by
  /// the loop thread, so public methods never write a non-blocking fd
  /// from the wrong thread.
  struct AgentConn {
    net::FramedSocket sock;
    std::atomic<bool> alive{true};
    bool write_armed = false;   ///< loop thread only
    double last_heartbeat = 0;  ///< guarded by mu_
    double load = 0;            ///< guarded by mu_
  };

  /// The single control-plane thread: epoll over every agent connection
  /// (replacing one reader thread per agent) with the 20 ms monitor pass
  /// (heartbeat timeouts, resurrection retries, balancing) as a timer.
  void loop();
  void on_agent_event(std::uint32_t agent, const net::Poller::Event& ev);
  void monitor_tick(double now);
  void drain_outbox();
  void flush_io();
  void final_flush();  ///< push SHUTDOWN frames out before the loop exits

  void handle_frame(std::uint32_t agent, const Msg& m);
  void handle_dep_record(const Msg& m);
  void handle_roll_poison(const Msg& m);
  void handle_rank_yielded(std::uint32_t rank);
  void handle_rank_up(const Msg& m);

  /// Mark the agent dead, poison dependents of its ranks, and schedule
  /// their resurrection on surviving agents. Requires mu_.
  void agent_down_locked(std::uint32_t agent);
  void broadcast_placement_locked();
  /// Thread-safe: enqueue a frame for the loop thread to transmit.
  void send_to_agent(std::uint32_t agent, std::vector<std::byte> frame);
  void poison_rank_locked(std::uint32_t rank);
  /// Least-loaded live agent (excluding `except`; kNoAgent = none).
  [[nodiscard]] std::uint32_t pick_target_locked(std::uint32_t except) const;
  void balance_locked(double now);

  static constexpr std::uint32_t kNoAgent = ~std::uint32_t{0};

  CoordinatorConfig cfg_;
  cluster::DependencyTracker tracker_;
  std::vector<std::unique_ptr<AgentConn>> conns_;
  net::Poller poller_;
  std::thread loop_thread_;
  std::mutex outbox_mu_;
  std::vector<std::pair<std::uint32_t, std::vector<std::byte>>> outbox_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> migrations_{0};
  std::atomic<std::uint64_t> resurrections_{0};

  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  std::vector<PlacementEntry> placement_;
  std::vector<RankOutcome> outcomes_;
  /// Epoch fence: recent rollbacks per rank. A DEP_RECORD whose (epoch,
  /// sender_level) predates one of these joins a speculation that no
  /// longer exists. `commits` is the rank's discharge count at the
  /// rollback: commits between the fenced send and the rollback lower the
  /// send's effective level (a commit-to-zero made level-1 data durable),
  /// so a late re-consume of committed data — a resurrected rank reading
  /// its neighbors' replay logs — is not poisoned. Cleared on
  /// commit-to-zero and on resurrection (both reset speculation state).
  struct RollbackFence {
    std::uint64_t epoch = 0;
    std::uint32_t level = 0;
    std::uint64_t commits = 0;
  };
  std::map<std::uint32_t, std::deque<RollbackFence>> rollback_ring_;
  /// COMMIT_DISCHARGE count per rank (survives resurrection; RESURRECT
  /// carries it so the new incarnation stamps sends consistently).
  std::map<std::uint32_t, std::uint64_t> commit_counts_;
  /// Ranks awaiting a (re)try of RESURRECT. `target` pins the agent a
  /// request was issued to, so a retry cannot start a second incarnation
  /// somewhere else while the first is still restoring.
  struct PendingResurrect {
    double not_before = 0;
    std::uint32_t target = kNoAgent;
  };
  std::map<std::uint32_t, PendingResurrect> pending_resurrect_;
  /// Ranks with a YIELD_RANK in flight (suppresses repeat balancing).
  std::set<std::uint32_t> migrating_;
  double last_balance_ = 0;
};

}  // namespace mojave::dnode
