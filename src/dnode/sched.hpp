// RankScheduler: cooperative userspace fibers for rank-dense agents.
//
// The thread-per-rank agent topped out at a few dozen ranks per process —
// each rank cost a kernel thread (stack, scheduler load, context-switch
// latency on every message). Because the interpreter is CPS, a rank's
// complete mid-function state is (function, pc, registers), all of which
// already live inside its Interpreter; a "fiber" here is therefore not a
// stack switch but a bookkeeping record around Interpreter::run_slice():
// run a bounded slice, and either requeue (preempted), park on a wait key
// (an external threw WouldBlock), or retire (halted / migrated away).
//
// Wait keys are opaque 64-bit values chosen by the agent — in practice
// hash(src_rank, tag) for message receives and a per-rank key for pacing
// gates — so a DATA frame arriving from the network wakes exactly the
// fibers that can make progress, and everything else stays parked at zero
// cost. Blocked fibers may also carry a deadline (sleep_ms, send throttle,
// receive re-request pacing); next_deadline() feeds the event loop's
// epoll timeout so a sleeping agent burns no CPU.
//
// The scheduler itself is single-threaded: every method except wake() and
// wake_key() must be called from the owning event-loop thread. wake()/
// wake_key() are thread-safe — they enqueue into a mutex-protected inbox
// and kick the loop's Poller — so speculation observers, tests, and any
// future helper threads can unpark fibers safely.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace mojave::net {
class Poller;
}  // namespace mojave::net

namespace mojave::dnode {

class RankScheduler {
 public:
  using FiberId = std::uint64_t;

  /// Outcome of one fiber step, reported by the body callback.
  struct Step {
    enum class Kind {
      kYield,    ///< slice budget used up; requeue at the back
      kBlocked,  ///< park on wait_key (and optional deadline)
      kDone,     ///< fiber finished; remove it
    } kind = Kind::kYield;
    std::uint64_t wait_key = 0;
    /// Steady-clock absolute seconds to wake at even without an event;
    /// 0 = wake on event only.
    double deadline = 0;
  };

  /// The fiber body: advance the rank by one slice and say what happened.
  /// Runs on the loop thread; may throw — the fiber is then removed and
  /// the exception propagates out of run_some().
  using Body = std::function<Step(FiberId)>;

  /// `poller` (optional) is kicked by cross-thread wakes so a loop blocked
  /// in epoll_wait notices newly runnable fibers.
  explicit RankScheduler(net::Poller* poller = nullptr) : poller_(poller) {}

  void spawn(FiberId id, Body body);
  /// Drop a fiber in any state (rank migrated away, killed, finished).
  void remove(FiberId id);

  /// Wake every fiber parked on `key`. Thread-safe.
  void wake_key(std::uint64_t key);
  /// Wake one fiber by id if it is parked. Thread-safe.
  void wake(FiberId id);
  /// Wake every parked fiber (cluster-wide state change: a PLACEMENT
  /// update may unblock receives waiting on a now-dead peer). Loop thread
  /// only.
  void wake_all();

  /// Run up to `max_steps` fiber slices (round-robin). Call drain_wakes()
  /// first is implied. Returns true while runnable fibers remain.
  bool run_some(int max_steps, double now_seconds);

  /// Move deadline-expired parked fibers to the run queue.
  void expire_deadlines(double now_seconds);

  /// Earliest deadline among parked fibers, or 0 when none carry one.
  [[nodiscard]] double next_deadline() const;

  [[nodiscard]] std::size_t runnable() const { return runq_.size(); }
  [[nodiscard]] std::size_t live() const { return fibers_.size(); }
  [[nodiscard]] bool has_runnable() const { return !runq_.empty(); }
  [[nodiscard]] bool idle() const;

 private:
  struct Fiber {
    Body body;
    enum class State { kRunnable, kBlocked, kRunning } state = State::kRunnable;
    std::uint64_t wait_key = 0;
    double deadline = 0;
    bool queued = false;  ///< already in runq_ (suppress double enqueue)
  };

  void enqueue(FiberId id, Fiber& f);
  /// Apply wakes queued by other threads. Loop thread only.
  void drain_wakes();
  void wake_key_locked(std::uint64_t key);

  net::Poller* poller_;
  std::unordered_map<FiberId, Fiber> fibers_;
  std::deque<FiberId> runq_;
  /// Parked fibers by wait key (multimap semantics via bucket vectors).
  std::unordered_map<std::uint64_t, std::vector<FiberId>> waiters_;

  std::mutex wake_mu_;
  std::vector<std::uint64_t> pending_key_wakes_;
  std::vector<FiberId> pending_id_wakes_;
};

/// Wait-key builder shared by the agent: receives park on (src, tag),
/// frame handlers wake the same key. Bit 63 tags the namespace so rank-id
/// keys (pacing gates) can never collide with (src, tag) keys.
[[nodiscard]] inline std::uint64_t recv_wait_key(std::uint64_t src_rank,
                                                std::uint64_t tag) {
  return (1ull << 63) | ((src_rank & 0x7fffffffull) << 32) |
         (tag & 0xffffffffull);
}
[[nodiscard]] inline std::uint64_t rank_wait_key(std::uint64_t rank) {
  return rank;
}

}  // namespace mojave::dnode
