#include "dnode/coord.hpp"

#include <chrono>

#include "fir/serialize.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace mojave::dnode {

namespace {

constexpr std::size_t kRollbackRingCap = 64;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct CoordMetrics {
  obs::Counter& dep_records;
  obs::Counter& stale_deps;
  obs::Counter& roll_poisons;
  obs::Counter& poisons_sent;
  obs::Counter& discharges;
  obs::Counter& agent_failures;
  obs::Counter& resurrect_requests;
  obs::Counter& yield_requests;
  obs::Gauge& live_agents;

  static CoordMetrics& get() {
    auto& r = obs::MetricsRegistry::instance();
    static CoordMetrics m{
        r.counter("dspec.coord_dep_records"),
        r.counter("dspec.stale_deps"),
        r.counter("dspec.roll_poisons"),
        r.counter("dspec.poisons_sent"),
        r.counter("dspec.commit_discharges"),
        r.counter("node.agent_failures"),
        r.counter("node.resurrect_requests"),
        r.counter("node.yield_requests"),
        r.gauge("node.live_agents"),
    };
    return m;
  }
};

}  // namespace

Coordinator::Coordinator(CoordinatorConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.agents.empty()) throw NetError("coordinator needs agents");
  placement_.resize(cfg_.num_ranks);
  outcomes_.resize(cfg_.num_ranks);
  for (std::uint32_t r = 0; r < cfg_.num_ranks; ++r) {
    placement_[r] = PlacementEntry{
        r, r % static_cast<std::uint32_t>(cfg_.agents.size()), true};
    outcomes_[r].rank = r;
  }
  const auto config_frame = [&](std::uint32_t agent) {
    return encode_config(agent, cfg_.num_ranks, cfg_.agents,
                         cfg_.max_instructions, cfg_.recv_timeout_seconds);
  };
  for (std::uint32_t a = 0; a < cfg_.agents.size(); ++a) {
    auto conn = std::make_unique<AgentConn>();
    net::TcpStream stream;
    net::Backoff backoff(cfg_.retry);
    while (true) {
      try {
        stream = net::TcpStream::connect(
            cfg_.agents[a].host, cfg_.agents[a].port, cfg_.retry.deadlines());
        break;
      } catch (const NetError&) {
        if (!backoff.retry_after_failure()) throw;
      }
    }
    // Session setup stays blocking (the agent must hold CONFIG before any
    // later frame); the stream then moves to the event loop non-blocking.
    stream.send_frame(encode_hello(PeerKind::kCoordinator, a));
    stream.send_frame(config_frame(a));
    conn->sock = net::FramedSocket(std::move(stream));
    conn->last_heartbeat = now_seconds();
    poller_.add(conn->sock.fd(), a, true, false);
    conns_.push_back(std::move(conn));
  }
  CoordMetrics::get().live_agents.set(
      static_cast<std::int64_t>(conns_.size()));
  loop_thread_ = std::thread([this] { loop(); });
}

Coordinator::~Coordinator() {
  shutdown_agents();
  if (loop_thread_.joinable()) loop_thread_.join();
}

void Coordinator::launch_spmd(const fir::Program& program) {
  const std::vector<std::byte> image = fir::encode_program(program);
  std::lock_guard<std::mutex> lock(mu_);
  broadcast_placement_locked();
  for (const PlacementEntry& e : placement_) {
    send_to_agent(e.agent, encode_launch(e.rank, image));
  }
}

bool Coordinator::wait_all(double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  return done_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds), [this] {
        for (const RankOutcome& o : outcomes_) {
          if (!o.done) return false;
        }
        return true;
      });
}

std::vector<RankOutcome> Coordinator::results() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outcomes_;
}

void Coordinator::force_rollback(std::uint32_t rank) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rank >= placement_.size()) return;
  send_to_agent(placement_[rank].agent, encode_force_roll(rank));
}

void Coordinator::shutdown_agents() {
  // Queue the SHUTDOWN frames first: the loop's final flush (triggered by
  // stopping_) pushes them out before the thread exits. Every connection
  // with an open socket gets one, including agents the failure detector
  // has declared down — "down" is a suspicion, not ground truth, and a
  // falsely-suspected agent that is actually alive must still be told to
  // exit or a graceful teardown (and anything waitpid-ing on the agent
  // process) hangs forever. A truly dead peer just costs a failed flush.
  bool already = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load()) {
      already = true;
    } else {
      // All frames must be in the outbox BEFORE stopping_ becomes
      // visible: the loop thread exits its final flush the moment it
      // sees stopping_ with an empty outbox, so a frame queued after
      // that is a dead letter and its agent never exits.
      {
        std::lock_guard<std::mutex> qlock(outbox_mu_);
        for (std::uint32_t a = 0; a < conns_.size(); ++a) {
          outbox_.emplace_back(a, encode_shutdown());
        }
      }
      stopping_.store(true);
    }
  }
  if (already) return;
  done_cv_.notify_all();
  poller_.wake();
}

std::uint32_t Coordinator::agent_of(std::uint32_t rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  return rank < placement_.size() ? placement_[rank].agent : kNoAgent;
}

bool Coordinator::agent_alive(std::uint32_t agent) const {
  return agent < conns_.size() && conns_[agent]->alive.load();
}

void Coordinator::send_to_agent(std::uint32_t agent,
                                std::vector<std::byte> frame) {
  if (agent >= conns_.size()) return;
  // Suspected-down agents are only reachable during shutdown (see
  // shutdown_agents()); everything else stops at the suspicion.
  if (!conns_[agent]->alive.load() && !stopping_.load()) return;
  {
    std::lock_guard<std::mutex> lock(outbox_mu_);
    outbox_.emplace_back(agent, std::move(frame));
  }
  poller_.wake();
}

void Coordinator::drain_outbox() {
  std::vector<std::pair<std::uint32_t, std::vector<std::byte>>> pending;
  {
    std::lock_guard<std::mutex> lock(outbox_mu_);
    pending.swap(outbox_);
  }
  // Deliver to any open socket, suspected-down or not: frames for dead
  // agents only reach the outbox from shutdown_agents() (send_to_agent
  // gates on liveness) or from a send that raced the down-verdict, and in
  // both cases queuing onto a dead conn is harmless while dropping a
  // SHUTDOWN for a falsely-suspected one strands a live process.
  for (auto& [agent, frame] : pending) {
    if (agent >= conns_.size() || !conns_[agent]->sock.valid()) continue;
    conns_[agent]->sock.queue_frame(std::move(frame));
  }
}

void Coordinator::flush_io() {
  for (std::uint32_t a = 0; a < conns_.size(); ++a) {
    AgentConn& conn = *conns_[a];
    if (!conn.alive.load() || !conn.sock.valid()) continue;
    if (conn.sock.want_write() && !conn.sock.flush()) {
      if (!stopping_.load()) {
        std::lock_guard<std::mutex> lock(mu_);
        agent_down_locked(a);
      }
      continue;
    }
    const bool want = conn.sock.want_write();
    if (want != conn.write_armed) {
      poller_.modify(conn.sock.fd(), a, true, want);
      conn.write_armed = want;
    }
  }
}

void Coordinator::on_agent_event(std::uint32_t agent,
                                 const net::Poller::Event& ev) {
  AgentConn& conn = *conns_[agent];
  if (!conn.alive.load()) return;
  bool dead = ev.error;
  if (ev.readable || ev.hup) {
    std::vector<std::vector<std::byte>> frames;
    if (!conn.sock.on_readable(frames)) dead = true;
    for (const auto& frame : frames) {
      auto m = decode(frame);
      if (!m.has_value()) {
        obs::MetricsRegistry::instance().counter("node.corrupt_frames").inc();
        continue;
      }
      handle_frame(agent, *m);
    }
  }
  if (!dead && ev.writable) {
    if (!conn.sock.flush()) dead = true;
  }
  if (dead) {
    // A SIGKILLed agent closes its sockets instantly; EOF here is the
    // fast failure-detection path (heartbeat timeout is the slow one).
    poller_.remove(conn.sock.fd());
    if (!stopping_.load()) {
      std::lock_guard<std::mutex> lock(mu_);
      agent_down_locked(agent);
    }
  }
}

void Coordinator::handle_frame(std::uint32_t agent, const Msg& m) {
  switch (m.type) {
    case MsgType::kHeartbeat: {
      std::lock_guard<std::mutex> lock(mu_);
      conns_[agent]->last_heartbeat = now_seconds();
      conns_[agent]->load = m.load;
      break;
    }
    case MsgType::kDepRecord:
      handle_dep_record(m);
      break;
    case MsgType::kRollPoison:
      handle_roll_poison(m);
      break;
    case MsgType::kCommitDischarge: {
      CoordMetrics::get().discharges.inc();
      tracker_.on_commit_to_zero(m.rank);
      std::lock_guard<std::mutex> lock(mu_);
      ++commit_counts_[m.rank];
      rollback_ring_.erase(m.rank);
      break;
    }
    case MsgType::kRankYielded:
      handle_rank_yielded(m.rank);
      break;
    case MsgType::kRankUp:
      handle_rank_up(m);
      break;
    case MsgType::kResult: {
      std::lock_guard<std::mutex> lock(mu_);
      if (m.rank < outcomes_.size()) {
        RankOutcome& o = outcomes_[m.rank];
        o.done = true;
        o.result_kind = m.result_kind;
        o.exit_code = m.exit_code;
        o.error = m.error;
        o.output += m.output;
        o.has_reported = m.has_reported;
        o.reported = m.reported;
        o.instructions += m.instructions;
        o.speculates += m.speculates;
        o.commits += m.commits;
        o.rollbacks += m.rollbacks;
        migrating_.erase(m.rank);
      }
      done_cv_.notify_all();
      break;
    }
    default:
      break;  // agent-bound frames are not ours to handle
  }
}

void Coordinator::handle_dep_record(const Msg& m) {
  CoordMetrics::get().dep_records.inc();
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto ring = rollback_ring_.find(m.sender);
    if (ring != rollback_ring_.end()) {
      for (const RollbackFence& f : ring->second) {
        // Commits between the send and this rollback discharged that many
        // levels of the send's speculation; what the rollback reverted is
        // only the remainder. Effective level 0 = the data was committed
        // before the rollback and stays valid no matter what the sender
        // did afterwards.
        const std::uint64_t commits_since =
            f.commits > m.commit_seq ? f.commits - m.commit_seq : 0;
        const std::uint32_t effective =
            m.sender_level > commits_since
                ? m.sender_level - static_cast<std::uint32_t>(commits_since)
                : 0;
        if (effective > 0 && f.epoch > m.epoch && f.level <= effective) {
          // Epoch fence: the data was sent before a rollback that already
          // reverted sender_level — the speculation this record would
          // join no longer exists. Poison the receiver directly.
          CoordMetrics::get().stale_deps.inc();
          poison_rank_locked(m.receiver);
          return;
        }
      }
    }
  }
  tracker_.record(m.sender, m.sender_level, m.receiver, m.receiver_level);
}

void Coordinator::handle_roll_poison(const Msg& m) {
  CoordMetrics::get().roll_poisons.inc();
  const std::vector<std::uint32_t> poisoned =
      tracker_.on_rollback(m.rank, m.level);
  std::lock_guard<std::mutex> lock(mu_);
  auto& ring = rollback_ring_[m.rank];
  ring.push_back(RollbackFence{m.epoch, m.level, commit_counts_[m.rank]});
  if (ring.size() > kRollbackRingCap) ring.pop_front();
  for (const std::uint32_t p : poisoned) {
    tracker_.consume_poison(p);  // delivered as a POISON frame instead
    poison_rank_locked(p);
  }
}

void Coordinator::poison_rank_locked(std::uint32_t rank) {
  if (rank >= placement_.size()) return;
  CoordMetrics::get().poisons_sent.inc();
  send_to_agent(placement_[rank].agent, encode_poison(rank));
}

void Coordinator::handle_rank_yielded(std::uint32_t rank) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rank >= placement_.size()) return;
  placement_[rank].alive = false;
  const std::uint32_t target = pick_target_locked(placement_[rank].agent);
  if (target == kNoAgent) {
    // Nowhere to go: resurrect where it was (still counts as a restart).
    pending_resurrect_[rank] = PendingResurrect{};
    broadcast_placement_locked();
    return;
  }
  migrations_.fetch_add(1);
  placement_[rank].agent = target;
  broadcast_placement_locked();
  CoordMetrics::get().resurrect_requests.inc();
  send_to_agent(target, encode_resurrect(rank, commit_counts_[rank]));
}

void Coordinator::handle_rank_up(const Msg& m) {
  std::lock_guard<std::mutex> lock(mu_);
  if (m.rank >= placement_.size()) return;
  if (!m.ok) {
    // Usually "no checkpoint yet" — retry after a beat, anywhere live.
    pending_resurrect_[m.rank] =
        PendingResurrect{now_seconds() + 0.1, kNoAgent};
    return;
  }
  resurrections_.fetch_add(1);
  placement_[m.rank].alive = true;
  pending_resurrect_.erase(m.rank);
  migrating_.erase(m.rank);
  rollback_ring_.erase(m.rank);  // fresh incarnation, fresh epochs
  outcomes_[m.rank].restarts += 1;
  broadcast_placement_locked();
}

void Coordinator::agent_down_locked(std::uint32_t agent) {
  if (!conns_[agent]->alive.exchange(false)) return;
  // Deregister the fd: on_agent_event() ignores suspected-down conns, so
  // leaving it armed would make every unread byte a level-triggered
  // wakeup — the loop would spin hot forever on a peer that keeps
  // talking. The socket itself stays open for shutdown_agents().
  if (conns_[agent]->sock.valid()) poller_.remove(conns_[agent]->sock.fd());
  CoordMetrics::get().agent_failures.inc();
  CoordMetrics::get().live_agents.add(-1);
  MOJAVE_LOG(kInfo, "dnode") << "agent " << agent << " is down";
  for (PlacementEntry& e : placement_) {
    if (e.agent != agent || !e.alive) continue;
    e.alive = false;
    // The rank died with uncommitted speculation: everyone who consumed
    // its speculative sends must roll back, and any DEP_RECORD still in
    // flight for it is stale at every level.
    for (const std::uint32_t p : tracker_.on_rollback(e.rank, 1)) {
      tracker_.consume_poison(p);
      poison_rank_locked(p);
    }
    auto& ring = rollback_ring_[e.rank];
    ring.push_back(
        RollbackFence{~std::uint64_t{0}, 1, commit_counts_[e.rank]});
    if (ring.size() > kRollbackRingCap) ring.pop_front();
    if (!outcomes_[e.rank].done) {
      pending_resurrect_[e.rank] = PendingResurrect{};
    }
  }
  broadcast_placement_locked();
}

std::uint32_t Coordinator::pick_target_locked(std::uint32_t except) const {
  std::uint32_t best = kNoAgent;
  double best_load = 0;
  for (std::uint32_t a = 0; a < conns_.size(); ++a) {
    if (a == except || !conns_[a]->alive.load()) continue;
    if (best == kNoAgent || conns_[a]->load < best_load) {
      best = a;
      best_load = conns_[a]->load;
    }
  }
  if (best == kNoAgent && except < conns_.size() &&
      conns_[except]->alive.load()) {
    return except;  // the only live agent is the one we hoped to avoid
  }
  return best;
}

void Coordinator::broadcast_placement_locked() {
  const auto frame = encode_placement(placement_);
  for (std::uint32_t a = 0; a < conns_.size(); ++a) {
    if (conns_[a]->alive.load()) send_to_agent(a, frame);
  }
}

void Coordinator::balance_locked(double now) {
  if (cfg_.balance_interval_seconds <= 0) return;
  if (now - last_balance_ < cfg_.balance_interval_seconds) return;
  last_balance_ = now;
  std::uint32_t max_agent = kNoAgent, min_agent = kNoAgent;
  for (std::uint32_t a = 0; a < conns_.size(); ++a) {
    if (!conns_[a]->alive.load()) continue;
    if (max_agent == kNoAgent || conns_[a]->load > conns_[max_agent]->load) {
      max_agent = a;
    }
    if (min_agent == kNoAgent || conns_[a]->load < conns_[min_agent]->load) {
      min_agent = a;
    }
  }
  if (max_agent == kNoAgent || max_agent == min_agent) return;
  if (conns_[max_agent]->load - conns_[min_agent]->load <
      cfg_.balance_threshold) {
    return;
  }
  for (const PlacementEntry& e : placement_) {
    if (e.agent != max_agent || !e.alive) continue;
    if (outcomes_[e.rank].done || migrating_.count(e.rank) != 0) continue;
    MOJAVE_LOG(kInfo, "dnode")
        << "balancer: yielding rank " << e.rank << " off agent " << max_agent
        << " (load " << conns_[max_agent]->load << " vs "
        << conns_[min_agent]->load << ")";
    CoordMetrics::get().yield_requests.inc();
    migrating_.insert(e.rank);
    send_to_agent(max_agent, encode_yield_rank(e.rank));
    return;  // one rank per balancing round
  }
}

void Coordinator::monitor_tick(double now) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::uint32_t a = 0; a < conns_.size(); ++a) {
    if (!conns_[a]->alive.load()) continue;
    if (now - conns_[a]->last_heartbeat > cfg_.heartbeat_timeout_seconds) {
      agent_down_locked(a);
    }
  }
  for (auto it = pending_resurrect_.begin();
       it != pending_resurrect_.end(); ++it) {
    const std::uint32_t rank = it->first;
    PendingResurrect& pr = it->second;
    if (now < pr.not_before) continue;
    // Re-issue to the pinned target while it lives (the agent's own
    // at-most-one-incarnation guard makes the repeat idempotent); only
    // pick a new home when there is none.
    if (pr.target == kNoAgent || !conns_[pr.target]->alive.load()) {
      pr.target = pick_target_locked(kNoAgent);
    }
    if (pr.target == kNoAgent) break;  // no live agents; keep pending
    placement_[rank].agent = pr.target;
    CoordMetrics::get().resurrect_requests.inc();
    send_to_agent(pr.target, encode_resurrect(rank, commit_counts_[rank]));
    // Re-arm far enough out that a slow restore is not double-issued;
    // RANK_UP erases the entry.
    pr.not_before = now + 1.0;
  }
  balance_locked(now);
}

void Coordinator::loop() {
  constexpr double kMonitorInterval = 0.02;
  std::vector<net::Poller::Event> events;
  double next_monitor = now_seconds() + kMonitorInterval;
  while (!stopping_.load()) {
    const double now = now_seconds();
    int timeout_ms = static_cast<int>((next_monitor - now) * 1000.0) + 1;
    if (timeout_ms < 0) timeout_ms = 0;
    if (timeout_ms > 20) timeout_ms = 20;
    poller_.wait(events, timeout_ms);
    if (stopping_.load()) break;
    drain_outbox();
    for (const net::Poller::Event& ev : events) {
      if (ev.token < conns_.size()) {
        on_agent_event(static_cast<std::uint32_t>(ev.token), ev);
      }
    }
    const double after = now_seconds();
    if (after >= next_monitor) {
      next_monitor = after + kMonitorInterval;
      monitor_tick(after);
    }
    drain_outbox();  // frames queued by handlers and the monitor
    flush_io();
  }
  final_flush();
}

void Coordinator::final_flush() {
  // Best-effort: give the queued SHUTDOWN frames a moment to reach the
  // agents; anything unflushed dies with the connection (a killed agent
  // is already gone anyway).
  const double deadline = now_seconds() + 0.5;
  std::vector<net::Poller::Event> events;
  while (now_seconds() < deadline) {
    drain_outbox();
    bool pending = false;
    for (auto& conn : conns_) {
      if (!conn->sock.valid()) continue;
      if (conn->sock.want_write() && !conn->sock.flush()) {
        // Truly dead peer: close it so the retry loop stops trying.
        conn->alive.store(false);
        conn->sock = net::FramedSocket();
        continue;
      }
      pending = pending || conn->sock.want_write();
    }
    {
      std::lock_guard<std::mutex> lock(outbox_mu_);
      pending = pending || !outbox_.empty();
    }
    if (!pending) break;
    poller_.wait(events, 5);
  }
}

}  // namespace mojave::dnode
