#include "dnode/coord.hpp"

#include <chrono>

#include "fir/serialize.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace mojave::dnode {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct CoordMetrics {
  obs::Counter& dep_records;
  obs::Counter& stale_deps;
  obs::Counter& roll_poisons;
  obs::Counter& poisons_sent;
  obs::Counter& discharges;
  obs::Counter& agent_failures;
  obs::Counter& resurrect_requests;
  obs::Counter& yield_requests;
  obs::Counter& takeovers;
  obs::Counter& readopted_ranks;
  obs::Gauge& live_agents;

  static CoordMetrics& get() {
    auto& r = obs::MetricsRegistry::instance();
    static CoordMetrics m{
        r.counter("dspec.coord_dep_records"),
        r.counter("dspec.stale_deps"),
        r.counter("dspec.roll_poisons"),
        r.counter("dspec.poisons_sent"),
        r.counter("dspec.commit_discharges"),
        r.counter("node.agent_failures"),
        r.counter("node.resurrect_requests"),
        r.counter("node.yield_requests"),
        r.counter("ctrl.takeovers"),
        r.counter("ctrl.readopted_ranks"),
        r.gauge("node.live_agents"),
    };
    return m;
  }
};

}  // namespace

Coordinator::Coordinator(CoordinatorConfig cfg) : cfg_(std::move(cfg)) {
  const bool ha = !cfg_.wal_root.empty();
  ctrl::ReplayStats replayed;
  if (ha) {
    std::filesystem::create_directories(cfg_.wal_root);
    lease_ =
        std::make_unique<ctrl::Lease>(cfg_.wal_root, cfg_.lease_ttl_seconds);
    if (!lease_->try_acquire()) {
      throw NetError("coordinator lease is held by a live primary");
    }
    if (cfg_.resume) {
      // Rebuild the dead primary's state through the same transition
      // function it used live. Side effects are not re-emitted: the
      // frames either reached their agents before the crash or the
      // RE_ADOPT census reconciles the difference.
      replayed = ctrl::replay_wal(
          cfg_.wal_root,
          [this](const ctrl::WalRecord& rec) { (void)state_.apply(rec); });
    }
  }
  resumed_ = cfg_.resume && !replayed.empty();
  if (resumed_) {
    // Adopt the logged run configuration; an explicit agent list on the
    // takeover command line (same cluster, maybe new ports) overrides.
    if (cfg_.agents.empty()) {
      for (const ctrl::AgentEndpoint& a : state_.agents()) {
        cfg_.agents.push_back(AgentAddr{a.host, a.port});
      }
    }
    cfg_.num_ranks = state_.num_ranks();
    cfg_.max_instructions = state_.max_instructions();
    cfg_.recv_timeout_seconds = state_.recv_timeout_seconds();
  }
  if (cfg_.agents.empty()) throw NetError("coordinator needs agents");
  if (ha) {
    wal_ = std::make_unique<ctrl::WalWriter>(cfg_.wal_root, lease_->epoch());
    // The first record of a new epoch seals everything replay consumed:
    // a zombie primary still appending to an older segment can never get
    // those bytes replayed (docs/CONTROL_PLANE.md, zombie fencing).
    ctrl::WalRecord take;
    take.op = ctrl::WalOp::kTakeover;
    take.seals = replayed.consumed;
    wal_->append(take);
    (void)state_.apply(take);
    wal_->flush();
    if (resumed_) {
      CoordMetrics::get().takeovers.inc();
      MOJAVE_LOG(kInfo, "dnode")
          << "takeover at lease epoch " << lease_->epoch() << ": replayed "
          << replayed.records << " WAL records across " << replayed.segments
          << " segments (" << replayed.sealed_off << " zombie bytes sealed, "
          << replayed.truncated << " torn tails)";
    }
  }
  if (!resumed_) {
    ctrl::WalRecord meta;
    meta.op = ctrl::WalOp::kMeta;
    meta.num_ranks = cfg_.num_ranks;
    for (const AgentAddr& a : cfg_.agents) {
      meta.agents.push_back(ctrl::AgentEndpoint{a.host, a.port});
    }
    meta.max_instructions = cfg_.max_instructions;
    meta.recv_timeout_seconds = cfg_.recv_timeout_seconds;
    if (wal_) wal_->append(meta);
    (void)state_.apply(meta);
    for (std::uint32_t r = 0; r < cfg_.num_ranks; ++r) {
      ctrl::WalRecord p;
      p.op = ctrl::WalOp::kPlacement;
      p.rank = r;
      p.agent = r % static_cast<std::uint32_t>(cfg_.agents.size());
      p.alive = true;
      if (wal_) wal_->append(p);
      (void)state_.apply(p);
    }
    if (wal_) wal_->flush();
  }

  const auto config_frame = [&](std::uint32_t agent) {
    return encode_config(agent, cfg_.num_ranks, cfg_.agents,
                         cfg_.max_instructions, cfg_.recv_timeout_seconds);
  };
  const std::uint64_t epoch = lease_ ? lease_->epoch() : 0;
  std::vector<std::uint32_t> unreachable;
  for (std::uint32_t a = 0; a < cfg_.agents.size(); ++a) {
    auto conn = std::make_unique<AgentConn>();
    net::TcpStream stream;
    net::Backoff backoff(cfg_.retry);
    bool connected = false;
    while (true) {
      try {
        stream = net::TcpStream::connect(
            cfg_.agents[a].host, cfg_.agents[a].port, cfg_.retry.deadlines());
        connected = true;
        break;
      } catch (const NetError&) {
        if (!backoff.retry_after_failure()) {
          // A takeover tolerates dead agents (their ranks resurrect
          // elsewhere); a fresh run still needs the full cluster.
          if (resumed_) break;
          throw;
        }
      }
    }
    if (!connected) {
      unreachable.push_back(a);
      conns_.push_back(std::move(conn));
      continue;
    }
    // Session setup stays blocking (the agent must hold CONFIG before any
    // later frame); the stream then moves to the event loop non-blocking.
    stream.send_frame(encode_hello(PeerKind::kCoordinator, a, epoch));
    stream.send_frame(config_frame(a));
    if (resumed_) {
      stream.send_frame(encode_re_adopt(epoch));
      ++readopt_waiting_;
    }
    conn->sock = net::FramedSocket(std::move(stream));
    conn->last_heartbeat = now_seconds();
    poller_.add(conn->sock.fd(), a, true, false);
    conns_.push_back(std::move(conn));
  }
  CoordMetrics::get().live_agents.set(
      static_cast<std::int64_t>(conns_.size()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::uint32_t a : unreachable) agent_down_locked(a);
    if (resumed_) {
      resuming_ = true;
      readopt_deadline_ = now_seconds() + cfg_.heartbeat_timeout_seconds;
      // CONFIG reset every reachable agent's placement map; push the
      // replayed one before their census answers refine it.
      broadcast_placement_locked();
      if (readopt_waiting_ == 0) finish_readopt_locked();
    }
  }
  loop_thread_ = std::thread([this] { loop(); });
}

Coordinator::~Coordinator() {
  shutdown_agents();
  if (loop_thread_.joinable()) loop_thread_.join();
}

ctrl::CoordState::ApplyResult Coordinator::apply_locked(ctrl::WalRecord rec) {
  if (wal_ && wal_->is_open() && !fenced_.load()) wal_->append(rec);
  ctrl::CoordState::ApplyResult res = state_.apply(rec);
  for (const std::uint32_t p : res.poisoned) poison_rank_locked(p);
  return res;
}

std::vector<std::byte> Coordinator::state_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_.snapshot_bytes();
}

void Coordinator::launch_spmd(const fir::Program& program) {
  const std::vector<std::byte> image = fir::encode_program(program);
  std::lock_guard<std::mutex> lock(mu_);
  broadcast_placement_locked();
  const auto& placement = state_.placement();
  for (std::uint32_t r = 0; r < placement.size(); ++r) {
    send_to_agent(placement[r].agent, encode_launch(r, image));
  }
}

bool Coordinator::wait_all(double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  return done_cv_.wait_for(lock,
                           std::chrono::duration<double>(timeout_seconds),
                           [this] { return state_.all_done(); });
}

std::vector<RankOutcome> Coordinator::results() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RankOutcome> out(state_.ranks().size());
  for (std::uint32_t r = 0; r < out.size(); ++r) {
    const ctrl::RankState& s = state_.ranks()[r];
    out[r].rank = r;
    out[r].done = s.done;
    out[r].result_kind = s.result_kind;
    out[r].exit_code = s.exit_code;
    out[r].error = s.error;
    out[r].output = s.output;
    out[r].has_reported = s.has_reported;
    out[r].reported = s.reported;
    out[r].instructions = s.instructions;
    out[r].speculates = s.speculates;
    out[r].commits = s.commits;
    out[r].rollbacks = s.rollbacks;
    out[r].restarts = s.restarts;
  }
  return out;
}

void Coordinator::force_rollback(std::uint32_t rank) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rank >= state_.placement().size()) return;
  send_to_agent(state_.placement()[rank].agent, encode_force_roll(rank));
}

void Coordinator::shutdown_agents() {
  // Queue the SHUTDOWN frames first: the loop's final flush (triggered by
  // stopping_) pushes them out before the thread exits. Every connection
  // with an open socket gets one, including agents the failure detector
  // has declared down — "down" is a suspicion, not ground truth, and a
  // falsely-suspected agent that is actually alive must still be told to
  // exit or a graceful teardown (and anything waitpid-ing on the agent
  // process) hangs forever. A truly dead peer just costs a failed flush.
  bool already = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load()) {
      already = true;
    } else {
      // All frames must be in the outbox BEFORE stopping_ becomes
      // visible: the loop thread exits its final flush the moment it
      // sees stopping_ with an empty outbox, so a frame queued after
      // that is a dead letter and its agent never exits. A fenced
      // (deposed) instance queues nothing — the agents belong to the
      // new primary now.
      if (!fenced_.load()) {
        std::lock_guard<std::mutex> qlock(outbox_mu_);
        for (std::uint32_t a = 0; a < conns_.size(); ++a) {
          outbox_.emplace_back(a, encode_shutdown());
        }
      }
      if (wal_ && wal_->is_open() && !fenced_.load()) {
        if (state_.all_done() && !state_.run_complete()) {
          ctrl::WalRecord rec;
          rec.op = ctrl::WalOp::kRunComplete;
          wal_->append(rec);
          (void)state_.apply(rec);
        }
        wal_->close();  // fsync + close: the segment is durable on exit
      }
      if (lease_ && !fenced_.load()) lease_->release();
      stopping_.store(true);
    }
  }
  if (already) return;
  done_cv_.notify_all();
  poller_.wake();
}

std::uint32_t Coordinator::agent_of(std::uint32_t rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  return rank < state_.placement().size() ? state_.placement()[rank].agent
                                          : kNoAgent;
}

bool Coordinator::agent_alive(std::uint32_t agent) const {
  return agent < conns_.size() && conns_[agent]->alive.load();
}

void Coordinator::send_to_agent(std::uint32_t agent,
                                std::vector<std::byte> frame) {
  if (agent >= conns_.size()) return;
  // Suspected-down agents are only reachable during shutdown (see
  // shutdown_agents()); everything else stops at the suspicion.
  if (!conns_[agent]->alive.load() && !stopping_.load()) return;
  {
    std::lock_guard<std::mutex> lock(outbox_mu_);
    outbox_.emplace_back(agent, std::move(frame));
  }
  poller_.wake();
}

void Coordinator::drain_outbox() {
  std::vector<std::pair<std::uint32_t, std::vector<std::byte>>> pending;
  {
    std::lock_guard<std::mutex> lock(outbox_mu_);
    pending.swap(outbox_);
  }
  // Deliver to any open socket, suspected-down or not: frames for dead
  // agents only reach the outbox from shutdown_agents() (send_to_agent
  // gates on liveness) or from a send that raced the down-verdict, and in
  // both cases queuing onto a dead conn is harmless while dropping a
  // SHUTDOWN for a falsely-suspected one strands a live process.
  for (auto& [agent, frame] : pending) {
    if (agent >= conns_.size() || !conns_[agent]->sock.valid()) continue;
    conns_[agent]->sock.queue_frame(std::move(frame));
  }
}

void Coordinator::flush_io() {
  for (std::uint32_t a = 0; a < conns_.size(); ++a) {
    AgentConn& conn = *conns_[a];
    if (!conn.alive.load() || !conn.sock.valid()) continue;
    if (conn.sock.want_write() && !conn.sock.flush()) {
      if (!stopping_.load()) {
        std::lock_guard<std::mutex> lock(mu_);
        agent_down_locked(a);
      }
      continue;
    }
    const bool want = conn.sock.want_write();
    if (want != conn.write_armed) {
      poller_.modify(conn.sock.fd(), a, true, want);
      conn.write_armed = want;
    }
  }
}

void Coordinator::on_agent_event(std::uint32_t agent,
                                 const net::Poller::Event& ev) {
  AgentConn& conn = *conns_[agent];
  if (!conn.alive.load()) return;
  bool dead = ev.error;
  if (ev.readable || ev.hup) {
    std::vector<std::vector<std::byte>> frames;
    if (!conn.sock.on_readable(frames)) dead = true;
    for (const auto& frame : frames) {
      auto m = decode(frame);
      if (!m.has_value()) {
        obs::MetricsRegistry::instance().counter("node.corrupt_frames").inc();
        continue;
      }
      handle_frame(agent, *m);
    }
  }
  if (!dead && ev.writable) {
    if (!conn.sock.flush()) dead = true;
  }
  if (dead) {
    // A SIGKILLed agent closes its sockets instantly; EOF here is the
    // fast failure-detection path (heartbeat timeout is the slow one).
    poller_.remove(conn.sock.fd());
    if (!stopping_.load()) {
      std::lock_guard<std::mutex> lock(mu_);
      agent_down_locked(agent);
    }
  }
}

void Coordinator::handle_frame(std::uint32_t agent, const Msg& m) {
  switch (m.type) {
    case MsgType::kHeartbeat: {
      std::lock_guard<std::mutex> lock(mu_);
      conns_[agent]->last_heartbeat = now_seconds();
      conns_[agent]->load = m.load;
      break;
    }
    case MsgType::kDepRecord:
      handle_dep_record(m);
      break;
    case MsgType::kRollPoison:
      handle_roll_poison(m);
      break;
    case MsgType::kCommitDischarge: {
      CoordMetrics::get().discharges.inc();
      std::lock_guard<std::mutex> lock(mu_);
      ctrl::WalRecord rec;
      rec.op = ctrl::WalOp::kCommit;
      rec.rank = m.rank;
      apply_locked(std::move(rec));
      break;
    }
    case MsgType::kRankYielded:
      handle_rank_yielded(m.rank);
      break;
    case MsgType::kRankUp:
      handle_rank_up(m);
      break;
    case MsgType::kReAdoptAck: {
      std::lock_guard<std::mutex> lock(mu_);
      handle_re_adopt_ack_locked(agent, m);
      break;
    }
    case MsgType::kResult: {
      std::lock_guard<std::mutex> lock(mu_);
      if (m.rank < state_.ranks().size() && !state_.ranks()[m.rank].done) {
        ctrl::WalRecord rec;
        rec.op = ctrl::WalOp::kRankResult;
        rec.rank = m.rank;
        rec.result_kind = m.result_kind;
        rec.exit_code = m.exit_code;
        rec.has_reported = m.has_reported;
        rec.reported = m.reported;
        rec.error = m.error;
        rec.output = m.output;
        rec.instructions = m.instructions;
        rec.speculates = m.speculates;
        rec.commits = m.commits;
        rec.rollbacks = m.rollbacks;
        apply_locked(std::move(rec));
        migrating_.erase(m.rank);
        pending_resurrect_.erase(m.rank);
        censused_.insert(m.rank);  // a RESULT is as good as a census row
      }
      done_cv_.notify_all();
      break;
    }
    default:
      break;  // agent-bound frames are not ours to handle
  }
}

void Coordinator::handle_dep_record(const Msg& m) {
  CoordMetrics::get().dep_records.inc();
  std::lock_guard<std::mutex> lock(mu_);
  ctrl::WalRecord rec;
  rec.op = ctrl::WalOp::kDepRecord;
  rec.sender = m.sender;
  rec.sender_level = m.sender_level;
  rec.receiver = m.receiver;
  rec.receiver_level = m.receiver_level;
  rec.epoch = m.epoch;
  rec.commit_seq = m.commit_seq;
  const auto res = apply_locked(std::move(rec));
  if (res.stale_dep) CoordMetrics::get().stale_deps.inc();
}

void Coordinator::handle_roll_poison(const Msg& m) {
  CoordMetrics::get().roll_poisons.inc();
  std::lock_guard<std::mutex> lock(mu_);
  ctrl::WalRecord rec;
  rec.op = ctrl::WalOp::kRollback;
  rec.rank = m.rank;
  rec.level = m.level;
  rec.epoch = m.epoch;
  apply_locked(std::move(rec));
}

void Coordinator::poison_rank_locked(std::uint32_t rank) {
  if (rank >= state_.placement().size()) return;
  CoordMetrics::get().poisons_sent.inc();
  send_to_agent(state_.placement()[rank].agent, encode_poison(rank));
}

void Coordinator::issue_resurrect_locked(std::uint32_t rank,
                                         std::uint32_t target) {
  ctrl::WalRecord g;
  g.op = ctrl::WalOp::kResurrectGrant;
  g.rank = rank;
  g.agent = target;
  g.commit_seq = state_.commit_count(rank);
  apply_locked(std::move(g));
  CoordMetrics::get().resurrect_requests.inc();
  send_to_agent(target, encode_resurrect(rank, state_.commit_count(rank)));
}

void Coordinator::handle_rank_yielded(std::uint32_t rank) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rank >= state_.placement().size()) return;
  const std::uint32_t from = state_.placement()[rank].agent;
  ctrl::WalRecord down;
  down.op = ctrl::WalOp::kPlacement;
  down.rank = rank;
  down.agent = from;
  down.alive = false;
  apply_locked(std::move(down));
  const std::uint32_t target = pick_target_locked(from);
  if (target == kNoAgent) {
    // Nowhere to go: resurrect where it was (still counts as a restart).
    pending_resurrect_[rank] = PendingResurrect{};
    broadcast_placement_locked();
    return;
  }
  migrations_.fetch_add(1);
  issue_resurrect_locked(rank, target);
  broadcast_placement_locked();
}

void Coordinator::handle_rank_up(const Msg& m) {
  std::lock_guard<std::mutex> lock(mu_);
  if (m.rank >= state_.placement().size()) return;
  if (!m.ok) {
    // Usually "no checkpoint yet" — retry after a beat, anywhere live.
    pending_resurrect_[m.rank] =
        PendingResurrect{now_seconds() + 0.1, kNoAgent};
    return;
  }
  resurrections_.fetch_add(1);
  ctrl::WalRecord rec;
  rec.op = ctrl::WalOp::kRankUp;
  rec.rank = m.rank;
  apply_locked(std::move(rec));
  pending_resurrect_.erase(m.rank);
  migrating_.erase(m.rank);
  broadcast_placement_locked();
}

void Coordinator::handle_re_adopt_ack_locked(std::uint32_t agent,
                                             const Msg& m) {
  if (readopt_waiting_ > 0) --readopt_waiting_;
  const auto& placement = state_.placement();
  for (const CensusEntry& e : m.census) {
    if (e.rank >= placement.size()) continue;
    // A stale yielded/done husk can coexist with the running incarnation
    // the rank migrated to: a running claim always wins the census.
    if (e.state != 0 && censused_.count(e.rank) != 0) continue;
    censused_.insert(e.rank);
    CoordMetrics::get().readopted_ranks.inc();
    // Census commit counts can be ahead of the replayed WAL (the commit
    // raced the primary's death); raise ours so RESURRECT seeds and the
    // epoch fence stay consistent with what the agents stamped.
    if (e.commit_seq > state_.commit_count(e.rank)) {
      ctrl::WalRecord cs;
      cs.op = ctrl::WalOp::kCommitSeqSet;
      cs.rank = e.rank;
      cs.commit_seq = e.commit_seq;
      apply_locked(std::move(cs));
    }
    switch (e.state) {
      case 0: {  // running right where the agent says
        if (placement[e.rank].agent != agent || !placement[e.rank].alive) {
          ctrl::WalRecord p;
          p.op = ctrl::WalOp::kPlacement;
          p.rank = e.rank;
          p.agent = agent;
          p.alive = true;
          apply_locked(std::move(p));
        }
        pending_resurrect_.erase(e.rank);
        break;
      }
      case 1:  // done; the agent re-sends the RESULT right behind the ack
        pending_resurrect_.erase(e.rank);
        break;
      case 2: {  // yielded: checkpointed and parked, waiting for a grant
        if (!state_.ranks()[e.rank].done) {
          ctrl::WalRecord p;
          p.op = ctrl::WalOp::kPlacement;
          p.rank = e.rank;
          p.agent = agent;
          p.alive = false;
          apply_locked(std::move(p));
          pending_resurrect_[e.rank] = PendingResurrect{};
        }
        break;
      }
      default:
        break;
    }
  }
  if (resuming_ && readopt_waiting_ == 0) finish_readopt_locked();
}

void Coordinator::finish_readopt_locked() {
  if (!resuming_) return;
  resuming_ = false;
  readopt_deadline_ = 0;
  const auto& placement = state_.placement();
  for (std::uint32_t r = 0; r < placement.size(); ++r) {
    if (state_.ranks()[r].done || censused_.count(r) != 0) continue;
    // No agent accounts for this rank: it died with the old primary's
    // view of the world. Same treatment as a rank lost with its agent —
    // dependents poisoned, fence at every epoch, resurrect from the last
    // checkpoint.
    const std::uint32_t was_on = placement[r].agent;
    if (placement[r].alive) {
      ctrl::WalRecord p;
      p.op = ctrl::WalOp::kPlacement;
      p.rank = r;
      p.agent = was_on;
      p.alive = false;
      apply_locked(std::move(p));
    }
    ctrl::WalRecord rb;
    rb.op = ctrl::WalOp::kRollback;
    rb.rank = r;
    rb.level = 1;
    rb.epoch = ~std::uint64_t{0};
    apply_locked(std::move(rb));
    pending_resurrect_[r] = PendingResurrect{};
  }
  broadcast_placement_locked();
  censused_.clear();
  MOJAVE_LOG(kInfo, "dnode") << "takeover reconciliation complete";
}

void Coordinator::agent_down_locked(std::uint32_t agent) {
  if (!conns_[agent]->alive.exchange(false)) return;
  // Deregister the fd: on_agent_event() ignores suspected-down conns, so
  // leaving it armed would make every unread byte a level-triggered
  // wakeup — the loop would spin hot forever on a peer that keeps
  // talking. The socket itself stays open for shutdown_agents().
  if (conns_[agent]->sock.valid()) poller_.remove(conns_[agent]->sock.fd());
  CoordMetrics::get().agent_failures.inc();
  CoordMetrics::get().live_agents.add(-1);
  MOJAVE_LOG(kInfo, "dnode") << "agent " << agent << " is down";
  // Snapshot which live ranks the verdict hits before the transition
  // flips them to not-alive.
  std::vector<std::uint32_t> hit;
  const auto& placement = state_.placement();
  for (std::uint32_t r = 0; r < placement.size(); ++r) {
    if (placement[r].agent == agent && placement[r].alive) hit.push_back(r);
  }
  ctrl::WalRecord rec;
  rec.op = ctrl::WalOp::kAgentDown;
  rec.agent = agent;
  apply_locked(std::move(rec));
  for (const std::uint32_t r : hit) {
    if (!state_.ranks()[r].done) pending_resurrect_[r] = PendingResurrect{};
  }
  broadcast_placement_locked();
}

std::uint32_t Coordinator::pick_target_locked(std::uint32_t except) const {
  std::uint32_t best = kNoAgent;
  double best_load = 0;
  for (std::uint32_t a = 0; a < conns_.size(); ++a) {
    if (a == except || !conns_[a]->alive.load()) continue;
    if (best == kNoAgent || conns_[a]->load < best_load) {
      best = a;
      best_load = conns_[a]->load;
    }
  }
  if (best == kNoAgent && except < conns_.size() &&
      conns_[except]->alive.load()) {
    return except;  // the only live agent is the one we hoped to avoid
  }
  return best;
}

void Coordinator::broadcast_placement_locked() {
  std::vector<PlacementEntry> entries;
  const auto& placement = state_.placement();
  entries.reserve(placement.size());
  for (std::uint32_t r = 0; r < placement.size(); ++r) {
    entries.push_back(
        PlacementEntry{r, placement[r].agent, placement[r].alive});
  }
  const auto frame = encode_placement(entries);
  for (std::uint32_t a = 0; a < conns_.size(); ++a) {
    if (conns_[a]->alive.load()) send_to_agent(a, frame);
  }
}

void Coordinator::balance_locked(double now) {
  if (cfg_.balance_interval_seconds <= 0) return;
  if (now - last_balance_ < cfg_.balance_interval_seconds) return;
  last_balance_ = now;
  std::uint32_t max_agent = kNoAgent, min_agent = kNoAgent;
  for (std::uint32_t a = 0; a < conns_.size(); ++a) {
    if (!conns_[a]->alive.load()) continue;
    if (max_agent == kNoAgent || conns_[a]->load > conns_[max_agent]->load) {
      max_agent = a;
    }
    if (min_agent == kNoAgent || conns_[a]->load < conns_[min_agent]->load) {
      min_agent = a;
    }
  }
  if (max_agent == kNoAgent || max_agent == min_agent) return;
  if (conns_[max_agent]->load - conns_[min_agent]->load <
      cfg_.balance_threshold) {
    return;
  }
  const auto& placement = state_.placement();
  for (std::uint32_t r = 0; r < placement.size(); ++r) {
    if (placement[r].agent != max_agent || !placement[r].alive) continue;
    if (state_.ranks()[r].done || migrating_.count(r) != 0) continue;
    MOJAVE_LOG(kInfo, "dnode")
        << "balancer: yielding rank " << r << " off agent " << max_agent
        << " (load " << conns_[max_agent]->load << " vs "
        << conns_[min_agent]->load << ")";
    CoordMetrics::get().yield_requests.inc();
    migrating_.insert(r);
    send_to_agent(max_agent, encode_yield_rank(r));
    return;  // one rank per balancing round
  }
}

void Coordinator::monitor_tick(double now) {
  // Lease renewal rides the monitor cadence. Failing to renew means a
  // standby already owns a higher epoch: this instance is a zombie. It
  // fences itself — no more WAL appends, no more SHUTDOWN authority —
  // and the agents reject its epoch if it ever reconnects.
  if (lease_ && !fenced_.load() && now >= next_lease_renew_) {
    next_lease_renew_ = now + lease_->ttl_seconds() / 3.0;
    if (!lease_->renew()) {
      fenced_.store(true);
      MOJAVE_LOG(kWarn, "dnode")
          << "coordinator deposed (lease lost); fencing all writes";
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Batched WAL durability: appends since the last tick hit disk here
  // (and unconditionally at close).
  if (wal_ && wal_->is_open() && now >= next_wal_flush_) {
    next_wal_flush_ = now + 0.05;
    wal_->flush();
  }
  if (resuming_ && readopt_deadline_ > 0 && now >= readopt_deadline_) {
    MOJAVE_LOG(kWarn, "dnode")
        << "re-adopt census incomplete at deadline; reconciling without "
        << readopt_waiting_ << " acks";
    finish_readopt_locked();
  }
  for (std::uint32_t a = 0; a < conns_.size(); ++a) {
    if (!conns_[a]->alive.load()) continue;
    if (now - conns_[a]->last_heartbeat > cfg_.heartbeat_timeout_seconds) {
      agent_down_locked(a);
    }
  }
  if (resuming_) return;  // resurrects/balancing wait for the census
  for (auto it = pending_resurrect_.begin();
       it != pending_resurrect_.end(); ++it) {
    const std::uint32_t rank = it->first;
    PendingResurrect& pr = it->second;
    if (now < pr.not_before) continue;
    // Re-issue to the pinned target while it lives (the agent's own
    // at-most-one-incarnation guard makes the repeat idempotent); only
    // pick a new home when there is none.
    if (pr.target == kNoAgent || !conns_[pr.target]->alive.load()) {
      pr.target = pick_target_locked(kNoAgent);
    }
    if (pr.target == kNoAgent) break;  // no live agents; keep pending
    issue_resurrect_locked(rank, pr.target);
    // Re-arm far enough out that a slow restore is not double-issued;
    // RANK_UP erases the entry.
    pr.not_before = now + 1.0;
  }
  balance_locked(now);
}

void Coordinator::loop() {
  constexpr double kMonitorInterval = 0.02;
  std::vector<net::Poller::Event> events;
  double next_monitor = now_seconds() + kMonitorInterval;
  while (!stopping_.load()) {
    const double now = now_seconds();
    int timeout_ms = static_cast<int>((next_monitor - now) * 1000.0) + 1;
    if (timeout_ms < 0) timeout_ms = 0;
    if (timeout_ms > 20) timeout_ms = 20;
    poller_.wait(events, timeout_ms);
    if (stopping_.load()) break;
    drain_outbox();
    for (const net::Poller::Event& ev : events) {
      if (ev.token < conns_.size()) {
        on_agent_event(static_cast<std::uint32_t>(ev.token), ev);
      }
    }
    const double after = now_seconds();
    if (after >= next_monitor) {
      next_monitor = after + kMonitorInterval;
      monitor_tick(after);
    }
    drain_outbox();  // frames queued by handlers and the monitor
    flush_io();
  }
  final_flush();
}

void Coordinator::final_flush() {
  // Best-effort: give the queued SHUTDOWN frames a moment to reach the
  // agents; anything unflushed dies with the connection (a killed agent
  // is already gone anyway).
  const double deadline = now_seconds() + 0.5;
  std::vector<net::Poller::Event> events;
  while (now_seconds() < deadline) {
    drain_outbox();
    bool pending = false;
    for (auto& conn : conns_) {
      if (!conn->sock.valid()) continue;
      if (conn->sock.want_write() && !conn->sock.flush()) {
        // Truly dead peer: close it so the retry loop stops trying.
        conn->alive.store(false);
        conn->sock = net::FramedSocket();
        continue;
      }
      pending = pending || conn->sock.want_write();
    }
    {
      std::lock_guard<std::mutex> lock(outbox_mu_);
      pending = pending || !outbox_.empty();
    }
    if (!pending) break;
    poller_.wait(events, 5);
  }
}

}  // namespace mojave::dnode
