#include "dnode/coord.hpp"

#include <chrono>

#include "fir/serialize.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace mojave::dnode {

namespace {

constexpr std::size_t kRollbackRingCap = 64;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct CoordMetrics {
  obs::Counter& dep_records;
  obs::Counter& stale_deps;
  obs::Counter& roll_poisons;
  obs::Counter& poisons_sent;
  obs::Counter& discharges;
  obs::Counter& agent_failures;
  obs::Counter& resurrect_requests;
  obs::Counter& yield_requests;
  obs::Gauge& live_agents;

  static CoordMetrics& get() {
    auto& r = obs::MetricsRegistry::instance();
    static CoordMetrics m{
        r.counter("dspec.coord_dep_records"),
        r.counter("dspec.stale_deps"),
        r.counter("dspec.roll_poisons"),
        r.counter("dspec.poisons_sent"),
        r.counter("dspec.commit_discharges"),
        r.counter("node.agent_failures"),
        r.counter("node.resurrect_requests"),
        r.counter("node.yield_requests"),
        r.gauge("node.live_agents"),
    };
    return m;
  }
};

}  // namespace

Coordinator::Coordinator(CoordinatorConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.agents.empty()) throw NetError("coordinator needs agents");
  placement_.resize(cfg_.num_ranks);
  outcomes_.resize(cfg_.num_ranks);
  for (std::uint32_t r = 0; r < cfg_.num_ranks; ++r) {
    placement_[r] = PlacementEntry{
        r, r % static_cast<std::uint32_t>(cfg_.agents.size()), true};
    outcomes_[r].rank = r;
  }
  const auto config_frame = [&](std::uint32_t agent) {
    return encode_config(agent, cfg_.num_ranks, cfg_.agents,
                         cfg_.max_instructions, cfg_.recv_timeout_seconds);
  };
  for (std::uint32_t a = 0; a < cfg_.agents.size(); ++a) {
    auto conn = std::make_unique<AgentConn>();
    net::Backoff backoff(cfg_.retry);
    while (true) {
      try {
        conn->stream = net::TcpStream::connect(
            cfg_.agents[a].host, cfg_.agents[a].port, cfg_.retry.deadlines());
        break;
      } catch (const NetError&) {
        if (!backoff.retry_after_failure()) throw;
      }
    }
    conn->stream.send_frame(encode_hello(PeerKind::kCoordinator, a));
    conn->stream.send_frame(config_frame(a));
    conn->last_heartbeat = now_seconds();
    conns_.push_back(std::move(conn));
  }
  CoordMetrics::get().live_agents.set(
      static_cast<std::int64_t>(conns_.size()));
  for (std::uint32_t a = 0; a < conns_.size(); ++a) {
    conns_[a]->reader = std::thread([this, a] { reader_loop(a); });
  }
  monitor_ = std::thread([this] { monitor_loop(); });
}

Coordinator::~Coordinator() {
  shutdown_agents();
  if (monitor_.joinable()) monitor_.join();
  for (auto& conn : conns_) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

void Coordinator::launch_spmd(const fir::Program& program) {
  const std::vector<std::byte> image = fir::encode_program(program);
  std::lock_guard<std::mutex> lock(mu_);
  broadcast_placement_locked();
  for (const PlacementEntry& e : placement_) {
    send_to_agent(e.agent, encode_launch(e.rank, image));
  }
}

bool Coordinator::wait_all(double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  return done_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds), [this] {
        for (const RankOutcome& o : outcomes_) {
          if (!o.done) return false;
        }
        return true;
      });
}

std::vector<RankOutcome> Coordinator::results() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outcomes_;
}

void Coordinator::force_rollback(std::uint32_t rank) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rank >= placement_.size()) return;
  send_to_agent(placement_[rank].agent, encode_force_roll(rank));
}

void Coordinator::shutdown_agents() {
  if (stopping_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::uint32_t a = 0; a < conns_.size(); ++a) {
      if (conns_[a]->alive.load()) send_to_agent(a, encode_shutdown());
    }
  }
  done_cv_.notify_all();
  for (auto& conn : conns_) conn->stream.shutdown();
}

std::uint32_t Coordinator::agent_of(std::uint32_t rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  return rank < placement_.size() ? placement_[rank].agent : kNoAgent;
}

bool Coordinator::agent_alive(std::uint32_t agent) const {
  return agent < conns_.size() && conns_[agent]->alive.load();
}

void Coordinator::send_to_agent(std::uint32_t agent,
                                std::span<const std::byte> frame) {
  if (agent >= conns_.size() || !conns_[agent]->alive.load()) return;
  AgentConn& conn = *conns_[agent];
  std::lock_guard<std::mutex> lock(conn.write_mu);
  try {
    conn.stream.send_frame(frame);
  } catch (const std::exception&) {
    // The reader's EOF (or the heartbeat timeout) handles the failure.
  }
}

void Coordinator::reader_loop(std::uint32_t agent) {
  AgentConn& conn = *conns_[agent];
  try {
    while (!stopping_.load()) {
      auto frame = conn.stream.recv_frame();
      if (!frame.has_value()) break;
      auto m = decode(*frame);
      if (!m.has_value()) {
        obs::MetricsRegistry::instance()
            .counter("node.corrupt_frames")
            .inc();
        continue;
      }
      handle_frame(agent, *m);
    }
  } catch (const std::exception& e) {
    if (!stopping_.load()) {
      MOJAVE_LOG(kWarn, "dnode")
          << "coordinator reader for agent " << agent << ": " << e.what();
    }
  }
  conn.reader_done.store(true);
  if (!stopping_.load()) {
    // A SIGKILLed agent closes its sockets instantly; EOF here is the
    // fast failure-detection path (heartbeat timeout is the slow one).
    std::lock_guard<std::mutex> lock(mu_);
    agent_down_locked(agent);
  }
}

void Coordinator::handle_frame(std::uint32_t agent, const Msg& m) {
  switch (m.type) {
    case MsgType::kHeartbeat: {
      std::lock_guard<std::mutex> lock(mu_);
      conns_[agent]->last_heartbeat = now_seconds();
      conns_[agent]->load = m.load;
      break;
    }
    case MsgType::kDepRecord:
      handle_dep_record(m);
      break;
    case MsgType::kRollPoison:
      handle_roll_poison(m);
      break;
    case MsgType::kCommitDischarge: {
      CoordMetrics::get().discharges.inc();
      tracker_.on_commit_to_zero(m.rank);
      std::lock_guard<std::mutex> lock(mu_);
      rollback_ring_.erase(m.rank);
      break;
    }
    case MsgType::kRankYielded:
      handle_rank_yielded(m.rank);
      break;
    case MsgType::kRankUp:
      handle_rank_up(m);
      break;
    case MsgType::kResult: {
      std::lock_guard<std::mutex> lock(mu_);
      if (m.rank < outcomes_.size()) {
        RankOutcome& o = outcomes_[m.rank];
        o.done = true;
        o.result_kind = m.result_kind;
        o.exit_code = m.exit_code;
        o.error = m.error;
        o.output += m.output;
        o.has_reported = m.has_reported;
        o.reported = m.reported;
        o.instructions += m.instructions;
        o.speculates += m.speculates;
        o.commits += m.commits;
        o.rollbacks += m.rollbacks;
        migrating_.erase(m.rank);
      }
      done_cv_.notify_all();
      break;
    }
    default:
      break;  // agent-bound frames are not ours to handle
  }
}

void Coordinator::handle_dep_record(const Msg& m) {
  CoordMetrics::get().dep_records.inc();
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto ring = rollback_ring_.find(m.sender);
    if (ring != rollback_ring_.end()) {
      for (const auto& [epoch, level] : ring->second) {
        if (epoch > m.epoch && level <= m.sender_level) {
          // Epoch fence: the data was sent before a rollback that already
          // reverted sender_level — the speculation this record would
          // join no longer exists. Poison the receiver directly.
          CoordMetrics::get().stale_deps.inc();
          poison_rank_locked(m.receiver);
          return;
        }
      }
    }
  }
  tracker_.record(m.sender, m.sender_level, m.receiver, m.receiver_level);
}

void Coordinator::handle_roll_poison(const Msg& m) {
  CoordMetrics::get().roll_poisons.inc();
  const std::vector<std::uint32_t> poisoned =
      tracker_.on_rollback(m.rank, m.level);
  std::lock_guard<std::mutex> lock(mu_);
  auto& ring = rollback_ring_[m.rank];
  ring.emplace_back(m.epoch, m.level);
  if (ring.size() > kRollbackRingCap) ring.pop_front();
  for (const std::uint32_t p : poisoned) {
    tracker_.consume_poison(p);  // delivered as a POISON frame instead
    poison_rank_locked(p);
  }
}

void Coordinator::poison_rank_locked(std::uint32_t rank) {
  if (rank >= placement_.size()) return;
  CoordMetrics::get().poisons_sent.inc();
  send_to_agent(placement_[rank].agent, encode_poison(rank));
}

void Coordinator::handle_rank_yielded(std::uint32_t rank) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rank >= placement_.size()) return;
  placement_[rank].alive = false;
  const std::uint32_t target = pick_target_locked(placement_[rank].agent);
  if (target == kNoAgent) {
    // Nowhere to go: resurrect where it was (still counts as a restart).
    pending_resurrect_[rank] = PendingResurrect{};
    broadcast_placement_locked();
    return;
  }
  migrations_.fetch_add(1);
  placement_[rank].agent = target;
  broadcast_placement_locked();
  CoordMetrics::get().resurrect_requests.inc();
  send_to_agent(target, encode_resurrect(rank));
}

void Coordinator::handle_rank_up(const Msg& m) {
  std::lock_guard<std::mutex> lock(mu_);
  if (m.rank >= placement_.size()) return;
  if (!m.ok) {
    // Usually "no checkpoint yet" — retry after a beat, anywhere live.
    pending_resurrect_[m.rank] =
        PendingResurrect{now_seconds() + 0.1, kNoAgent};
    return;
  }
  resurrections_.fetch_add(1);
  placement_[m.rank].alive = true;
  pending_resurrect_.erase(m.rank);
  migrating_.erase(m.rank);
  rollback_ring_.erase(m.rank);  // fresh incarnation, fresh epochs
  outcomes_[m.rank].restarts += 1;
  broadcast_placement_locked();
}

void Coordinator::agent_down_locked(std::uint32_t agent) {
  if (!conns_[agent]->alive.exchange(false)) return;
  CoordMetrics::get().agent_failures.inc();
  CoordMetrics::get().live_agents.add(-1);
  MOJAVE_LOG(kInfo, "dnode") << "agent " << agent << " is down";
  for (PlacementEntry& e : placement_) {
    if (e.agent != agent || !e.alive) continue;
    e.alive = false;
    // The rank died with uncommitted speculation: everyone who consumed
    // its speculative sends must roll back, and any DEP_RECORD still in
    // flight for it is stale at every level.
    for (const std::uint32_t p : tracker_.on_rollback(e.rank, 1)) {
      tracker_.consume_poison(p);
      poison_rank_locked(p);
    }
    auto& ring = rollback_ring_[e.rank];
    ring.emplace_back(~std::uint64_t{0}, 1);
    if (ring.size() > kRollbackRingCap) ring.pop_front();
    if (!outcomes_[e.rank].done) {
      pending_resurrect_[e.rank] = PendingResurrect{};
    }
  }
  broadcast_placement_locked();
}

std::uint32_t Coordinator::pick_target_locked(std::uint32_t except) const {
  std::uint32_t best = kNoAgent;
  double best_load = 0;
  for (std::uint32_t a = 0; a < conns_.size(); ++a) {
    if (a == except || !conns_[a]->alive.load()) continue;
    if (best == kNoAgent || conns_[a]->load < best_load) {
      best = a;
      best_load = conns_[a]->load;
    }
  }
  if (best == kNoAgent && except < conns_.size() &&
      conns_[except]->alive.load()) {
    return except;  // the only live agent is the one we hoped to avoid
  }
  return best;
}

void Coordinator::broadcast_placement_locked() {
  const auto frame = encode_placement(placement_);
  for (std::uint32_t a = 0; a < conns_.size(); ++a) {
    if (conns_[a]->alive.load()) send_to_agent(a, frame);
  }
}

void Coordinator::balance_locked(double now) {
  if (cfg_.balance_interval_seconds <= 0) return;
  if (now - last_balance_ < cfg_.balance_interval_seconds) return;
  last_balance_ = now;
  std::uint32_t max_agent = kNoAgent, min_agent = kNoAgent;
  for (std::uint32_t a = 0; a < conns_.size(); ++a) {
    if (!conns_[a]->alive.load()) continue;
    if (max_agent == kNoAgent || conns_[a]->load > conns_[max_agent]->load) {
      max_agent = a;
    }
    if (min_agent == kNoAgent || conns_[a]->load < conns_[min_agent]->load) {
      min_agent = a;
    }
  }
  if (max_agent == kNoAgent || max_agent == min_agent) return;
  if (conns_[max_agent]->load - conns_[min_agent]->load <
      cfg_.balance_threshold) {
    return;
  }
  for (const PlacementEntry& e : placement_) {
    if (e.agent != max_agent || !e.alive) continue;
    if (outcomes_[e.rank].done || migrating_.count(e.rank) != 0) continue;
    MOJAVE_LOG(kInfo, "dnode")
        << "balancer: yielding rank " << e.rank << " off agent " << max_agent
        << " (load " << conns_[max_agent]->load << " vs "
        << conns_[min_agent]->load << ")";
    CoordMetrics::get().yield_requests.inc();
    migrating_.insert(e.rank);
    send_to_agent(max_agent, encode_yield_rank(e.rank));
    return;  // one rank per balancing round
  }
}

void Coordinator::monitor_loop() {
  while (!stopping_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const double now = now_seconds();
    std::lock_guard<std::mutex> lock(mu_);
    for (std::uint32_t a = 0; a < conns_.size(); ++a) {
      if (!conns_[a]->alive.load()) continue;
      if (conns_[a]->reader_done.load() ||
          now - conns_[a]->last_heartbeat > cfg_.heartbeat_timeout_seconds) {
        agent_down_locked(a);
      }
    }
    for (auto it = pending_resurrect_.begin();
         it != pending_resurrect_.end(); ++it) {
      const std::uint32_t rank = it->first;
      PendingResurrect& pr = it->second;
      if (now < pr.not_before) continue;
      // Re-issue to the pinned target while it lives (the agent's own
      // at-most-one-incarnation guard makes the repeat idempotent); only
      // pick a new home when there is none.
      if (pr.target == kNoAgent || !conns_[pr.target]->alive.load()) {
        pr.target = pick_target_locked(kNoAgent);
      }
      if (pr.target == kNoAgent) break;  // no live agents; keep pending
      placement_[rank].agent = pr.target;
      CoordMetrics::get().resurrect_requests.inc();
      send_to_agent(pr.target, encode_resurrect(rank));
      // Re-arm far enough out that a slow restore is not double-issued;
      // RANK_UP erases the entry.
      pr.not_before = now + 1.0;
    }
    balance_locked(now);
  }
}

}  // namespace mojave::dnode
