#include "dnode/sched.hpp"

#include <algorithm>
#include <limits>

#include "net/poller.hpp"
#include "obs/metrics.hpp"

namespace mojave::dnode {

namespace {

struct SchedMetrics {
  obs::Counter& slices;
  obs::Counter& yields;
  obs::Counter& blocks;
  obs::Counter& wakes;
  obs::Counter& deadline_wakes;
  obs::Gauge& fibers;

  static SchedMetrics& get() {
    static SchedMetrics m{
        obs::MetricsRegistry::instance().counter("sched.slices"),
        obs::MetricsRegistry::instance().counter("sched.yields"),
        obs::MetricsRegistry::instance().counter("sched.blocks"),
        obs::MetricsRegistry::instance().counter("sched.wakes"),
        obs::MetricsRegistry::instance().counter("sched.deadline_wakes"),
        obs::MetricsRegistry::instance().gauge("sched.fibers"),
    };
    return m;
  }
};

}  // namespace

void RankScheduler::spawn(FiberId id, Body body) {
  Fiber f;
  f.body = std::move(body);
  auto [it, inserted] = fibers_.insert_or_assign(id, std::move(f));
  enqueue(id, it->second);
  SchedMetrics::get().fibers.set(static_cast<std::int64_t>(fibers_.size()));
}

void RankScheduler::remove(FiberId id) {
  auto it = fibers_.find(id);
  if (it == fibers_.end()) return;
  if (it->second.state == Fiber::State::kBlocked) {
    auto w = waiters_.find(it->second.wait_key);
    if (w != waiters_.end()) {
      std::erase(w->second, id);
      if (w->second.empty()) waiters_.erase(w);
    }
  }
  // A stale runq_ entry is tolerated: run_some skips ids with no fiber.
  fibers_.erase(it);
  SchedMetrics::get().fibers.set(static_cast<std::int64_t>(fibers_.size()));
}

void RankScheduler::enqueue(FiberId id, Fiber& f) {
  f.state = Fiber::State::kRunnable;
  f.wait_key = 0;
  f.deadline = 0;
  if (!f.queued) {
    f.queued = true;
    runq_.push_back(id);
  }
}

void RankScheduler::wake_key(std::uint64_t key) {
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    pending_key_wakes_.push_back(key);
  }
  if (poller_) poller_->wake();
}

void RankScheduler::wake(FiberId id) {
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    pending_id_wakes_.push_back(id);
  }
  if (poller_) poller_->wake();
}

void RankScheduler::wake_key_locked(std::uint64_t key) {
  auto w = waiters_.find(key);
  if (w == waiters_.end()) return;
  auto& m = SchedMetrics::get();
  for (FiberId id : w->second) {
    auto it = fibers_.find(id);
    if (it == fibers_.end()) continue;
    m.wakes.inc();
    enqueue(id, it->second);
  }
  waiters_.erase(w);
}

void RankScheduler::wake_all() {
  auto& m = SchedMetrics::get();
  for (auto& [id, f] : fibers_) {
    if (f.state != Fiber::State::kBlocked) continue;
    m.wakes.inc();
    enqueue(id, f);
  }
  waiters_.clear();
}

void RankScheduler::drain_wakes() {
  std::vector<std::uint64_t> keys;
  std::vector<FiberId> ids;
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    keys.swap(pending_key_wakes_);
    ids.swap(pending_id_wakes_);
  }
  for (std::uint64_t k : keys) wake_key_locked(k);
  for (FiberId id : ids) {
    auto it = fibers_.find(id);
    if (it == fibers_.end() || it->second.state != Fiber::State::kBlocked) {
      continue;
    }
    auto w = waiters_.find(it->second.wait_key);
    if (w != waiters_.end()) {
      std::erase(w->second, id);
      if (w->second.empty()) waiters_.erase(w);
    }
    SchedMetrics::get().wakes.inc();
    enqueue(id, it->second);
  }
}

void RankScheduler::expire_deadlines(double now_seconds) {
  auto& m = SchedMetrics::get();
  std::vector<FiberId> due;
  for (auto& [id, f] : fibers_) {
    if (f.state == Fiber::State::kBlocked && f.deadline > 0 &&
        f.deadline <= now_seconds) {
      due.push_back(id);
    }
  }
  for (FiberId id : due) {
    Fiber& f = fibers_[id];
    auto w = waiters_.find(f.wait_key);
    if (w != waiters_.end()) {
      std::erase(w->second, id);
      if (w->second.empty()) waiters_.erase(w);
    }
    m.deadline_wakes.inc();
    enqueue(id, f);
  }
}

double RankScheduler::next_deadline() const {
  double best = 0;
  for (const auto& [id, f] : fibers_) {
    (void)id;
    if (f.state != Fiber::State::kBlocked || f.deadline <= 0) continue;
    if (best == 0 || f.deadline < best) best = f.deadline;
  }
  return best;
}

bool RankScheduler::idle() const {
  bool wakes_pending;
  {
    auto* self = const_cast<RankScheduler*>(this);
    std::lock_guard<std::mutex> lk(self->wake_mu_);
    wakes_pending = !pending_key_wakes_.empty() || !pending_id_wakes_.empty();
  }
  return runq_.empty() && !wakes_pending;
}

bool RankScheduler::run_some(int max_steps, double now_seconds) {
  drain_wakes();
  expire_deadlines(now_seconds);
  auto& m = SchedMetrics::get();
  for (int i = 0; i < max_steps && !runq_.empty(); ++i) {
    const FiberId id = runq_.front();
    runq_.pop_front();
    auto it = fibers_.find(id);
    if (it == fibers_.end()) continue;  // removed while queued
    Fiber& f = it->second;
    f.queued = false;
    if (f.state != Fiber::State::kRunnable) continue;
    f.state = Fiber::State::kRunning;
    m.slices.inc();
    Step step;
    try {
      step = f.body(id);
    } catch (...) {
      remove(id);
      throw;
    }
    // The body may have spawned/removed fibers; re-find ourselves.
    it = fibers_.find(id);
    if (it == fibers_.end()) continue;
    Fiber& g = it->second;
    switch (step.kind) {
      case Step::Kind::kYield:
        m.yields.inc();
        enqueue(id, g);
        break;
      case Step::Kind::kBlocked:
        m.blocks.inc();
        g.state = Fiber::State::kBlocked;
        g.wait_key = step.wait_key;
        g.deadline = step.deadline;
        waiters_[step.wait_key].push_back(id);
        break;
      case Step::Kind::kDone:
        remove(id);
        break;
    }
  }
  // Wakes posted by bodies during this batch become visible next call.
  return !runq_.empty();
}

}  // namespace mojave::dnode
