// The distributed node runtime's wire protocol (control + data plane).
//
// Every frame moving between a coordinator and a node agent, or between
// two node agents, is one TcpStream frame (u32 length prefix) whose body
// is:
//
//   u32 magic 'DNO1' | u8 type | type-specific fields | u64 fnv1a
//
// The trailing fnv1a covers everything before it, so a frame mangled in
// transit is rejected (node.corrupt_frames) instead of decoded into
// garbage — the same contract the simulated cluster enforces per message.
//
// Control plane (agent <-> coordinator, one long-lived connection):
//   HELLO/CONFIG/LAUNCH/PLACEMENT       session setup and rank placement
//   HEARTBEAT                           liveness + load report
//   DEP_RECORD/ROLL_POISON/POISON/
//   COMMIT_DISCHARGE/FORCE_ROLL         the distributed speculation join
//   RESURRECT/YIELD_RANK/RANK_YIELDED/
//   RANK_UP                             failure recovery and migration
//   RESULT/SHUTDOWN                     completion
//
// Data plane (agent -> agent, dialed lazily):
//   DATA                                one msg_send payload
//   REPLAY_REQ                          re-request from the sender's log
//
// DATA payloads carry {spec_level, rollback_epoch, count, values}: the
// sender's speculation level joins the receiver to its speculation
// (DEP_RECORD at consume time), and the epoch lets the coordinator fence
// dependency records that arrive after the speculation they depend on has
// already rolled back (see docs/SPECULATION.md, "epoch fencing").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "support/serialize.hpp"

namespace mojave::dnode {

inline constexpr std::uint32_t kWireMagic = 0x314f4e44;  // "DNO1"

enum class MsgType : std::uint8_t {
  kHello = 1,
  kConfig,
  kLaunch,
  kPlacement,
  kData,
  kReplayReq,
  kDepRecord,
  kRollPoison,
  kPoison,
  kCommitDischarge,
  kHeartbeat,
  kResurrect,
  kYieldRank,
  kRankYielded,
  kRankUp,
  kResult,
  kForceRoll,
  kShutdown,
  // HA control plane (docs/CONTROL_PLANE.md): a standby coordinator that
  // takes over queries each live agent for its rank census instead of
  // restarting the world.
  kReAdopt,
  kReAdoptAck,
};

[[nodiscard]] const char* msg_type_name(MsgType t);

/// Who is on the other end of a freshly accepted connection.
enum class PeerKind : std::uint8_t { kCoordinator = 0, kAgent = 1 };

struct AgentAddr {
  std::string host;
  std::uint16_t port = 0;
};

struct PlacementEntry {
  std::uint32_t rank = 0;
  std::uint32_t agent = 0;
  bool alive = true;
};

/// One rank's answer to RE_ADOPT: what the agent is actually running.
struct CensusEntry {
  std::uint32_t rank = 0;
  /// 0 = running, 1 = done (RESULT already produced), 2 = yielded
  /// (checkpointed and parked, waiting for a resurrect grant).
  std::uint8_t state = 0;
  std::uint64_t commit_seq = 0;  ///< the rank's committed count
};

/// Decoded frame: a tagged superset of every message's fields (internal
/// protocol, not a public API — a flat struct beats a 18-way variant).
struct Msg {
  MsgType type = MsgType::kShutdown;
  PeerKind peer_kind = PeerKind::kAgent;  // HELLO
  std::uint64_t coord_epoch = 0;          // HELLO/RE_ADOPT (lease epoch)
  std::vector<CensusEntry> census;        // RE_ADOPT_ACK
  std::uint32_t agent = 0;                // HELLO/CONFIG/HEARTBEAT
  std::uint32_t rank = 0;       // LAUNCH/POISON/RESURRECT/YIELD/RESULT/...
  std::uint32_t num_ranks = 0;  // CONFIG
  std::vector<AgentAddr> agents;           // CONFIG
  std::uint64_t max_instructions = 0;      // CONFIG
  double recv_timeout_seconds = 0;         // CONFIG
  std::vector<PlacementEntry> placement;   // PLACEMENT
  std::vector<std::byte> payload;          // LAUNCH (image) / DATA (message)
  std::uint32_t src = 0, dst = 0;          // DATA
  std::int32_t tag = 0;                    // DATA/REPLAY_REQ
  std::uint32_t owner = 0, requester = 0;  // REPLAY_REQ
  std::uint32_t sender = 0, receiver = 0;            // DEP_RECORD
  std::uint32_t sender_level = 0, receiver_level = 0;  // DEP_RECORD
  std::uint64_t epoch = 0;                 // DEP_RECORD/ROLL_POISON
  std::uint64_t commit_seq = 0;            // DEP_RECORD/RESURRECT
  std::uint32_t level = 0;                 // ROLL_POISON
  double load = 0;                         // HEARTBEAT
  std::uint32_t live_ranks = 0;            // HEARTBEAT
  bool ok = false;                         // RANK_YIELDED/RANK_UP
  // RESULT
  std::uint8_t result_kind = 0;  ///< 0 halted, 1 migrated away, 2 error
  std::int64_t exit_code = 0;
  bool has_reported = false;
  double reported = 0;
  std::string error;
  std::string output;
  std::uint64_t instructions = 0;
  std::uint64_t speculates = 0, commits = 0, rollbacks = 0;
};

// --- Encoders (one per message type) ---------------------------------

[[nodiscard]] std::vector<std::byte> encode_hello(PeerKind kind,
                                                  std::uint32_t agent,
                                                  std::uint64_t coord_epoch = 0);
[[nodiscard]] std::vector<std::byte> encode_config(
    std::uint32_t your_agent, std::uint32_t num_ranks,
    const std::vector<AgentAddr>& agents, std::uint64_t max_instructions,
    double recv_timeout_seconds);
[[nodiscard]] std::vector<std::byte> encode_launch(
    std::uint32_t rank, std::span<const std::byte> program_image);
[[nodiscard]] std::vector<std::byte> encode_placement(
    const std::vector<PlacementEntry>& entries);
[[nodiscard]] std::vector<std::byte> encode_data(
    std::uint32_t src, std::uint32_t dst, std::int32_t tag,
    std::span<const std::byte> payload);
[[nodiscard]] std::vector<std::byte> encode_replay_req(std::uint32_t owner,
                                                       std::uint32_t requester,
                                                       std::int32_t tag);
[[nodiscard]] std::vector<std::byte> encode_dep_record(
    std::uint32_t sender, std::uint32_t sender_level, std::uint32_t receiver,
    std::uint32_t receiver_level, std::uint64_t epoch,
    std::uint64_t commit_seq);
[[nodiscard]] std::vector<std::byte> encode_roll_poison(std::uint32_t rank,
                                                        std::uint32_t level,
                                                        std::uint64_t epoch);
[[nodiscard]] std::vector<std::byte> encode_poison(std::uint32_t rank);
[[nodiscard]] std::vector<std::byte> encode_commit_discharge(
    std::uint32_t rank);
[[nodiscard]] std::vector<std::byte> encode_heartbeat(std::uint32_t agent,
                                                      double load,
                                                      std::uint32_t live_ranks);
[[nodiscard]] std::vector<std::byte> encode_resurrect(
    std::uint32_t rank, std::uint64_t commit_seq);
[[nodiscard]] std::vector<std::byte> encode_yield_rank(std::uint32_t rank);
[[nodiscard]] std::vector<std::byte> encode_rank_yielded(std::uint32_t rank,
                                                         bool ok);
[[nodiscard]] std::vector<std::byte> encode_rank_up(std::uint32_t rank,
                                                    bool ok);
[[nodiscard]] std::vector<std::byte> encode_result(const Msg& result);
[[nodiscard]] std::vector<std::byte> encode_force_roll(std::uint32_t rank);
[[nodiscard]] std::vector<std::byte> encode_shutdown();
[[nodiscard]] std::vector<std::byte> encode_re_adopt(std::uint64_t coord_epoch);
[[nodiscard]] std::vector<std::byte> encode_re_adopt_ack(
    std::uint32_t agent, const std::vector<CensusEntry>& census);

/// Verify magic + checksum and parse. nullopt = corrupt or unknown frame
/// (the caller counts it and drops it; TCP gives no re-delivery, but every
/// dnode exchange is either idempotent or re-requested at a higher layer).
[[nodiscard]] std::optional<Msg> decode(std::span<const std::byte> frame);

// --- DATA payload (the body routed between ranks) --------------------
//
// {u32 spec_level, u64 rollback_epoch, u64 commit_seq, u32 count,
// values...} — values are runtime::write_value encodings, exactly count
// of them. commit_seq is the sender's commit count at send time: replay
// logs and receiver-side caches keep payloads long after the speculation
// that stamped them was discharged, and only this stamp lets the
// coordinator's epoch fence tell committed data from reverted data.

struct DataHeader {
  std::uint32_t spec_level = 0;
  std::uint64_t epoch = 0;
  std::uint64_t commit_seq = 0;
  std::uint32_t count = 0;
};

[[nodiscard]] std::vector<std::byte> encode_data_payload(
    std::uint32_t spec_level, std::uint64_t epoch, std::uint64_t commit_seq,
    std::uint32_t count, std::span<const std::byte> values);

}  // namespace mojave::dnode
