#include "dnode/agent.hpp"

#include <chrono>

#include "fir/serialize.hpp"
#include "migrate/image.hpp"
#include "migrate/migrator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/value_codec.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"

namespace mojave::dnode {

using runtime::Value;

namespace {

/// Thrown out of a network external when the agent is shutting down; it
/// unwinds the interpreter and terminates the rank thread (the dnode twin
/// of the simulated cluster's NodeKilled).
struct AgentStopping {};

struct AgentMetrics {
  obs::Counter& launches;
  obs::Counter& resurrections;
  obs::Counter& yields;
  obs::Counter& data_in;
  obs::Counter& data_out;
  obs::Counter& forwards;
  obs::Counter& replay_requests;
  obs::Counter& replays_served;
  obs::Counter& poisons;
  obs::Counter& dep_records;
  obs::Counter& corrupt_frames;
  obs::Counter& heartbeats;
  obs::Counter& link_failures;

  static AgentMetrics& get() {
    auto& r = obs::MetricsRegistry::instance();
    static AgentMetrics m{
        r.counter("node.launches"),       r.counter("node.resurrections"),
        r.counter("node.yields"),         r.counter("node.data_frames_in"),
        r.counter("node.data_frames_out"), r.counter("node.data_forwards"),
        r.counter("dspec.replay_requests"), r.counter("dspec.replays_served"),
        r.counter("dspec.poisons_received"), r.counter("dspec.dep_records"),
        r.counter("node.corrupt_frames"), r.counter("node.heartbeats"),
        r.counter("node.link_failures"),
    };
    return m;
  }
};

/// Wraps the per-rank Migrator so the coordinator can turn the rank's
/// *next successful checkpoint* into a yield: the process exits here with
/// kMigratedAway and is resurrected from that checkpoint on the target
/// agent. Checkpoints happen at commit points (Figure 2's loop), so a
/// yield never strands an active speculation.
class YieldHook final : public vm::MigrationHook {
 public:
  YieldHook(vm::Process& proc, migrate::Migrator& inner,
            std::atomic<bool>& yield_requested)
      : proc_(proc), inner_(inner), yield_(yield_requested) {
    proc_.vm().set_migration_hook(this);
  }
  ~YieldHook() override { proc_.vm().set_migration_hook(&inner_); }

  Action on_migrate(vm::Interpreter& vm, MigrateLabel label,
                    const std::string& target, FunIndex resume_fun,
                    std::span<const Value> resume_args) override {
    const Action a = inner_.on_migrate(vm, label, target, resume_fun,
                                       resume_args);
    if (a == Action::kExit) return a;
    if (yield_.load() && !inner_.events().empty() &&
        inner_.events().back().success) {
      yielded_ = true;
      return Action::kExit;
    }
    return a;
  }

  [[nodiscard]] bool yielded() const { return yielded_; }

 private:
  vm::Process& proc_;
  migrate::Migrator& inner_;
  std::atomic<bool>& yield_;
  bool yielded_ = false;
};

}  // namespace

struct NodeAgent::Conn {
  explicit Conn(net::TcpStream s) : stream(std::move(s)) {}
  net::TcpStream stream;
  std::mutex write_mu;
  PeerKind kind = PeerKind::kAgent;
};

struct NodeAgent::PeerLink {
  std::mutex mu;
  net::TcpStream stream;  ///< invalid until dialed (and after a failure)
};

struct NodeAgent::RankSlot {
  std::uint32_t rank = 0;
  std::thread thread;
  std::ostringstream output;
  /// The distributed poison flag: set by POISON/FORCE_ROLL frames, drained
  /// by msg_recv as MSG_ROLL (the agent-side half of consume_poison()).
  std::atomic<bool> poisoned{false};
  std::atomic<bool> yield_requested{false};
  std::atomic<bool> done{false};
  /// Rollback epoch: bumped on every rollback and stamped into outgoing
  /// DATA, so the coordinator can fence dependency records that raced a
  /// ROLL_POISON (see docs/SPECULATION.md).
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<bool> has_reported{false};
  std::atomic<double> reported{0};

  std::mutex sent_mu;
  /// Lazy cancellation (TimeWarp): hash of the last payload per (dst,
  /// tag); a byte-identical re-send after a rollback goes out at level 0.
  std::map<std::pair<std::uint32_t, std::int32_t>, std::uint64_t> sent_hashes;
  /// Sender-side replay log answering REPLAY_REQ: a receiver resurrected
  /// on another agent re-requests border messages already sent (the
  /// paper's Figure 2 "re-request border information" arrow).
  std::map<std::pair<std::uint32_t, std::int32_t>, std::vector<std::byte>>
      sent_log;
};

NodeAgent::NodeAgent(AgentConfig cfg)
    : cfg_(std::move(cfg)),
      listener_(cfg_.bind, cfg_.port),
      retry_(net::RetryPolicy::process_defaults()),
      store_(ckpt::CheckpointStore::open_shared(cfg_.storage_root,
                                                cfg_.ckpt)) {
  accept_thread_ = std::thread([this] { accept_loop(); });
  heartbeat_thread_ = std::thread([this] { heartbeat_loop(); });
}

NodeAgent::~NodeAgent() { stop(); }

void NodeAgent::wait() {
  {
    std::unique_lock<std::mutex> lock(wait_mu_);
    wait_cv_.wait(lock, [this] { return shutdown_requested_; });
  }
  stop();
}

void NodeAgent::stop() {
  if (stopping_.exchange(true)) return;
  listener_.shutdown();
  mail_cv_.notify_all();
  {
    // Half-close every connection so readers blocked in recv_frame()
    // observe an orderly close and exit; fds stay reserved until the
    // Conn objects die after the join below.
    std::lock_guard<std::mutex> lock(readers_mu_);
    for (auto& conn : conns_) conn->stream.shutdown();
  }
  {
    // Collect under the lock, join outside it: a rank thread unwinding
    // through a network external takes mu_ on its way out.
    std::vector<std::thread*> rank_threads;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& [rank, slot] : slots_) rank_threads.push_back(&slot->thread);
    }
    for (std::thread* t : rank_threads) {
      if (t->joinable()) t->join();
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  {
    std::lock_guard<std::mutex> lock(readers_mu_);
    for (auto& t : readers_) {
      if (t.joinable()) t.join();
    }
    readers_.clear();
    conns_.clear();
  }
  std::lock_guard<std::mutex> lock(links_mu_);
  links_.clear();
}

std::vector<std::uint32_t> NodeAgent::hosted_ranks() const {
  std::vector<std::uint32_t> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [rank, slot] : slots_) {
    if (!slot->done.load()) out.push_back(rank);
  }
  return out;
}

void NodeAgent::accept_loop() {
  while (auto stream = listener_.accept()) {
    auto conn = std::make_shared<Conn>(std::move(*stream));
    std::lock_guard<std::mutex> lock(readers_mu_);
    if (stopping_.load()) break;
    conns_.push_back(conn);
    readers_.emplace_back([this, conn] { reader_loop(conn); });
  }
}

void NodeAgent::reader_loop(std::shared_ptr<Conn> conn) {
  bool is_coordinator = false;
  try {
    while (!stopping_.load()) {
      auto frame = conn->stream.recv_frame();
      if (!frame.has_value()) break;  // peer closed
      auto m = decode(*frame);
      if (!m.has_value()) {
        AgentMetrics::get().corrupt_frames.inc();
        continue;
      }
      if (m->type == MsgType::kHello &&
          m->peer_kind == PeerKind::kCoordinator) {
        is_coordinator = true;
      }
      handle_frame(*m, conn);
    }
  } catch (const std::exception& e) {
    if (!stopping_.load()) {
      MOJAVE_LOG(kWarn, "dnode") << "agent reader error: " << e.what();
    }
  }
  if (is_coordinator && !stopping_.load()) {
    // Coordinator gone: nothing can place, poison, or collect us anymore.
    MOJAVE_LOG(kInfo, "dnode") << "coordinator connection lost; shutting down";
    std::lock_guard<std::mutex> lock(wait_mu_);
    shutdown_requested_ = true;
    wait_cv_.notify_all();
  }
}

void NodeAgent::handle_frame(const Msg& m, const std::shared_ptr<Conn>& conn) {
  switch (m.type) {
    case MsgType::kHello: {
      std::lock_guard<std::mutex> lock(mu_);
      conn->kind = m.peer_kind;
      if (m.peer_kind == PeerKind::kCoordinator) coordinator_ = conn;
      break;
    }
    case MsgType::kConfig: {
      std::lock_guard<std::mutex> lock(mu_);
      my_agent_ = m.agent;
      num_ranks_ = m.num_ranks;
      agents_ = m.agents;
      max_instructions_ = m.max_instructions;
      if (m.recv_timeout_seconds > 0) {
        cfg_.recv_timeout_seconds = m.recv_timeout_seconds;
      }
      placement_.assign(num_ranks_, Placement{});
      break;
    }
    case MsgType::kPlacement: {
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (const PlacementEntry& e : m.placement) {
          if (e.rank < placement_.size()) {
            placement_[e.rank] = Placement{e.agent, e.alive};
          }
        }
      }
      // Receives blocked on a now-dead peer must wake to report MSG_ROLL.
      mail_cv_.notify_all();
      break;
    }
    case MsgType::kLaunch:
      launch_rank(m.rank, m.payload);
      break;
    case MsgType::kData:
      handle_data(m);
      break;
    case MsgType::kReplayReq:
      handle_replay_req(m);
      break;
    case MsgType::kPoison:
    case MsgType::kForceRoll: {
      AgentMetrics::get().poisons.inc();
      std::lock_guard<std::mutex> lock(mu_);
      if (RankSlot* slot = find_slot(m.rank)) {
        slot->poisoned.store(true);
        mail_cv_.notify_all();
      }
      break;
    }
    case MsgType::kResurrect:
      resurrect_rank(m.rank);
      break;
    case MsgType::kYieldRank: {
      std::lock_guard<std::mutex> lock(mu_);
      if (RankSlot* slot = find_slot(m.rank)) {
        slot->yield_requested.store(true);
      }
      break;
    }
    case MsgType::kShutdown: {
      std::lock_guard<std::mutex> lock(wait_mu_);
      shutdown_requested_ = true;
      wait_cv_.notify_all();
      break;
    }
    default:
      break;  // coordinator-bound frames are not ours to handle
  }
}

NodeAgent::RankSlot* NodeAgent::find_slot(std::uint32_t rank) {
  const auto it = slots_.find(rank);
  return it == slots_.end() ? nullptr : it->second.get();
}

void NodeAgent::handle_data(const Msg& m) {
  AgentMetrics::get().data_in.inc();
  std::uint32_t agent = 0;
  bool known = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (m.dst < placement_.size()) {
      agent = placement_[m.dst].agent;
      known = true;
    }
  }
  if (known && agent != my_agent_) {
    // The sender routed on a stale placement; forward once on ours.
    AgentMetrics::get().forwards.inc();
    send_to_agent(agent, encode_data(m.src, m.dst, m.tag, m.payload));
    return;
  }
  deliver_local(m.src, m.dst, m.tag, m.payload);
}

void NodeAgent::handle_replay_req(const Msg& m) {
  std::vector<std::byte> payload;
  {
    std::lock_guard<std::mutex> lock(mu_);
    RankSlot* slot = find_slot(m.owner);
    if (slot == nullptr) return;  // owner moved on; its new host will serve
    std::lock_guard<std::mutex> sent_lock(slot->sent_mu);
    const auto it = slot->sent_log.find({m.requester, m.tag});
    if (it == slot->sent_log.end()) return;  // never sent: requester waits
    payload = it->second;
  }
  AgentMetrics::get().replays_served.inc();
  route_payload(m.owner, m.requester, m.tag, std::move(payload));
}

void NodeAgent::deliver_local(std::uint32_t src, std::uint32_t dst,
                              std::int32_t tag,
                              std::vector<std::byte> payload) {
  {
    std::lock_guard<std::mutex> lock(mail_mu_);
    mail_[dst].q[{src, tag}].push_back(std::move(payload));
  }
  mail_cv_.notify_all();
}

bool NodeAgent::route_payload(std::uint32_t src, std::uint32_t dst,
                              std::int32_t tag,
                              std::vector<std::byte> payload) {
  std::uint32_t agent = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dst >= placement_.size()) return false;
    if (!placement_[dst].alive) return false;
    agent = placement_[dst].agent;
  }
  if (agent == my_agent_) {
    deliver_local(src, dst, tag, std::move(payload));
    return true;
  }
  AgentMetrics::get().data_out.inc();
  return send_to_agent(agent, encode_data(src, dst, tag, payload));
}

void NodeAgent::request_replay(std::uint32_t src, std::uint32_t requester,
                               std::int32_t tag) {
  std::uint32_t agent = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (src >= placement_.size() || !placement_[src].alive) return;
    agent = placement_[src].agent;
  }
  AgentMetrics::get().replay_requests.inc();
  const auto frame = encode_replay_req(src, requester, tag);
  if (agent == my_agent_) {
    if (auto m = decode(frame)) handle_replay_req(*m);
  } else {
    send_to_agent(agent, frame);
  }
}

bool NodeAgent::send_to_agent(std::uint32_t agent,
                              std::span<const std::byte> frame) {
  std::shared_ptr<PeerLink> link;
  AgentAddr addr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (agent >= agents_.size()) return false;
    addr = agents_[agent];
  }
  {
    std::lock_guard<std::mutex> lock(links_mu_);
    auto& slot = links_[agent];
    if (!slot) slot = std::make_shared<PeerLink>();
    link = slot;
  }
  std::lock_guard<std::mutex> lock(link->mu);
  try {
    if (!link->stream.valid()) {
      link->stream =
          net::TcpStream::connect(addr.host, addr.port, retry_.deadlines());
      link->stream.send_frame(encode_hello(PeerKind::kAgent, my_agent_));
    }
    link->stream.send_frame(frame);
    return true;
  } catch (const std::exception& e) {
    // Drop the link so the next send redials; the caller treats this as a
    // dropped message, which the rollback-retry loop and replay recover.
    AgentMetrics::get().link_failures.inc();
    MOJAVE_LOG(kDebug, "dnode")
        << "link to agent " << agent << " failed: " << e.what();
    link->stream.close();
    return false;
  }
}

void NodeAgent::send_to_coordinator(std::span<const std::byte> frame) {
  std::shared_ptr<Conn> conn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn = coordinator_;
  }
  if (!conn) return;
  std::lock_guard<std::mutex> lock(conn->write_mu);
  try {
    conn->stream.send_frame(frame);
  } catch (const std::exception&) {
    // Coordinator gone; the reader's EOF path shuts the agent down.
  }
}

void NodeAgent::heartbeat_loop() {
  while (!stopping_.load()) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(cfg_.heartbeat_seconds));
    if (stopping_.load()) return;
    std::uint32_t live = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!coordinator_) continue;
      for (const auto& [rank, slot] : slots_) {
        if (!slot->done.load()) ++live;
      }
    }
    // Load model: ranks hosted, inflated by the deliberate throttle — a
    // slowed agent looks (and is) more expensive per rank, which is what
    // the coordinator's balancer keys off.
    const double load = static_cast<double>(live) * (1.0 + cfg_.throttle_ms);
    AgentMetrics::get().heartbeats.inc();
    send_to_coordinator(encode_heartbeat(my_agent_, load, live));
  }
}

void NodeAgent::register_externals(vm::Process& proc, RankSlot& slot) {
  vm::Interpreter& vm = proc.vm();
  const std::uint32_t rank = slot.rank;
  vm.set_output(&slot.output);

  vm.register_external("node_id",
                       [rank](vm::Interpreter&, std::span<const Value>) {
                         return Value::from_int(rank);
                       });
  vm.register_external(
      "num_nodes", [this](vm::Interpreter&, std::span<const Value>) {
        return Value::from_int(static_cast<std::int64_t>(num_ranks_));
      });

  vm.register_external(
      "msg_send",
      [this, rank, &proc, &slot](vm::Interpreter& it,
                                 std::span<const Value> args) -> Value {
        if (args.size() != 4) throw SafetyError("msg_send arity");
        if (stopping_.load()) throw AgentStopping{};
        const auto dst = static_cast<std::uint32_t>(args[0].as_int());
        const auto tag = static_cast<std::int32_t>(args[1].as_int());
        const runtime::PtrValue buf = args[2].as_ptr();
        const std::int64_t count = args[3].as_int();
        if (count < 0) throw SafetyError("msg_send negative count");
        Writer vw;
        for (std::int64_t i = 0; i < count; ++i) {
          runtime::write_value(
              vw, it.heap().read_slot(
                      buf.index, buf.offset + static_cast<std::uint32_t>(i)));
        }
        const auto values = vw.take();
        // Lazy cancellation: a byte-identical re-send (deterministic
        // re-execution after a rollback) is not speculative — its
        // consumers already hold exactly this data.
        const std::uint64_t h = fnv1a(values);
        bool duplicate = false;
        {
          std::lock_guard<std::mutex> lock(slot.sent_mu);
          auto& prev = slot.sent_hashes[{dst, tag}];
          duplicate = prev == h;
          prev = h;
        }
        const std::uint32_t level =
            duplicate ? 0 : proc.spec().current_level();
        std::vector<std::byte> payload = encode_data_payload(
            level, slot.epoch.load(), static_cast<std::uint32_t>(count),
            values);
        {
          std::lock_guard<std::mutex> lock(slot.sent_mu);
          slot.sent_log[{dst, tag}] = payload;
        }
        if (cfg_.throttle_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(cfg_.throttle_ms * 1e-3));
        }
        const bool ok = route_payload(rank, dst, tag, std::move(payload));
        if (!ok) {
          // Dead destination or broken link: back off so the rollback-
          // retry loop does not spin while the peer is resurrected.
          std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
        return Value::from_int(ok ? 0 : 1);
      });

  vm.register_external(
      "msg_recv",
      [this, rank, &proc, &slot](vm::Interpreter& it,
                                 std::span<const Value> args) -> Value {
        if (args.size() != 4) throw SafetyError("msg_recv arity");
        const auto src = static_cast<std::uint32_t>(args[0].as_int());
        const auto tag = static_cast<std::int32_t>(args[1].as_int());
        const runtime::PtrValue buf = args[2].as_ptr();
        const std::int64_t count = args[3].as_int();
        if (count < 0) throw SafetyError("msg_recv negative count");

        // Poll in short slices so a poison frame (an upstream rollback),
        // a placement change, or shutdown can interrupt a blocked receive.
        std::vector<std::byte> payload;
        double waited = 0;
        double since_replay_req = 0;
        while (true) {
          if (stopping_.load()) throw AgentStopping{};
          if (slot.poisoned.exchange(false)) return Value::from_int(1);
          bool got = false;
          {
            std::unique_lock<std::mutex> lock(mail_mu_);
            Mailbox& mb = mail_[rank];
            const auto key = std::make_pair(src, tag);
            if (auto qi = mb.q.find(key);
                qi != mb.q.end() && !qi->second.empty()) {
              payload = std::move(qi->second.front());
              qi->second.pop_front();
              mb.delivered[key] = payload;
              got = true;
            } else if (auto di = mb.delivered.find(key);
                       di != mb.delivered.end()) {
              // Receiver-side replay: a re-execution after rollback reads
              // the message it already consumed.
              payload = di->second;
              got = true;
            } else {
              mail_cv_.wait_for(lock, std::chrono::milliseconds(5));
            }
          }
          if (got) break;
          bool peer_down = false;
          {
            std::lock_guard<std::mutex> lock(mu_);
            peer_down = src < placement_.size() && !placement_[src].alive;
          }
          if (peer_down) {
            std::this_thread::sleep_for(std::chrono::microseconds(500));
            return Value::from_int(1);  // MSG_ROLL
          }
          waited += 0.005;
          since_replay_req += 0.005;
          if (waited >= cfg_.recv_timeout_seconds) {
            MOJAVE_LOG(kDebug, "dnode") << "rank " << rank
                                        << " recv timeout from " << src
                                        << " tag " << tag;
            return Value::from_int(2);
          }
          if (since_replay_req >= cfg_.replay_request_seconds) {
            // The message may have been lost with a dead agent or our own
            // previous incarnation's mailbox — re-request it from the
            // sender's replay log.
            since_replay_req = 0;
            request_replay(src, rank, tag);
          }
        }
        // A rollback poisons dependents before the rolled-back sender can
        // send anything new; re-checking here keeps MSG_ROLL delivery
        // deterministic even when a fresh message raced in.
        if (slot.poisoned.exchange(false)) return Value::from_int(1);
        Reader r(payload);
        const std::uint32_t sender_level = r.u32();
        const std::uint64_t sender_epoch = r.u64();
        const std::uint32_t n = r.u32();
        if (sender_level > 0) {
          // Speculative data: join the sender's speculation (the
          // distributed record() of the join protocol).
          AgentMetrics::get().dep_records.inc();
          send_to_coordinator(encode_dep_record(src, sender_level, rank,
                                                proc.spec().current_level(),
                                                sender_epoch));
        }
        const std::uint32_t to_copy =
            std::min(n, static_cast<std::uint32_t>(count));
        for (std::uint32_t i = 0; i < to_copy; ++i) {
          it.heap().write_slot(buf.index, buf.offset + i,
                               runtime::read_value(r));
        }
        return Value::from_int(0);
      });

  vm.register_external(
      "checkpoint_target",
      [this, rank](vm::Interpreter& it, std::span<const Value>) -> Value {
        const std::string target = "ckpt://" + cfg_.storage_root.string() +
                                   "/rank_" + std::to_string(rank);
        return Value::from_ptr(it.heap().alloc_string(target), 0);
      });

  vm.register_external(
      "report_result",
      [&slot](vm::Interpreter&, std::span<const Value> args) -> Value {
        if (args.size() != 1) throw SafetyError("report_result arity");
        slot.reported.store(args[0].as_float());
        slot.has_reported.store(true);
        return Value::unit();
      });

  vm.register_external("sleep_ms",
                       [](vm::Interpreter&, std::span<const Value> args) {
                         std::this_thread::sleep_for(std::chrono::milliseconds(
                             args.empty() ? 0 : args[0].as_int()));
                         return Value::unit();
                       });

  // Join protocol, reported over the wire: this rank's rollbacks bump its
  // epoch and emit ROLL_POISON; its durable commits emit COMMIT_DISCHARGE.
  proc.spec().set_rollback_observer([this, rank, &slot](SpecLevel level,
                                                        bool) {
    const std::uint64_t e = slot.epoch.fetch_add(1) + 1;
    send_to_coordinator(encode_roll_poison(rank, level, e));
  });
  proc.spec().set_commit_observer([this, rank] {
    send_to_coordinator(encode_commit_discharge(rank));
  });
}

void NodeAgent::run_rank(RankSlot& slot, vm::Process& proc, bool resumed,
                         FunIndex resume_fun,
                         std::vector<Value> resume_args) {
  obs::ScopedSpan span("dnode", resumed ? "agent.resume_rank"
                                        : "agent.run_rank");
  span.set_arg("rank", slot.rank);
  Msg res;
  res.type = MsgType::kResult;
  res.rank = slot.rank;
  bool yielded = false;
  try {
    migrate::Migrator migrator(proc);
    YieldHook hook(proc, migrator, slot.yield_requested);
    const vm::RunResult run =
        resumed ? proc.resume(resume_fun, std::move(resume_args))
                : proc.run();
    yielded = hook.yielded();
    res.result_kind = run.kind == vm::RunResult::Kind::kMigratedAway ? 1 : 0;
    res.exit_code = run.exit_code;
  } catch (const AgentStopping&) {
    res.result_kind = 2;
    res.error = "stopped";
  } catch (const std::exception& e) {
    res.result_kind = 2;
    res.error = e.what();
  }
  res.output = slot.output.str();
  res.instructions = proc.vm().stats().instructions;
  const spec::SpecStats& st = proc.spec().stats();
  res.speculates = st.speculates;
  res.commits = st.commits;
  res.rollbacks = st.rollbacks;
  res.has_reported = slot.has_reported.load();
  res.reported = slot.reported.load();
  // Send before marking done: a reader thread replacing a done slot joins
  // this thread under mu_, which send_to_coordinator also takes.
  if (yielded) {
    AgentMetrics::get().yields.inc();
    MOJAVE_LOG(kInfo, "dnode") << "rank " << slot.rank << " yielded";
    send_to_coordinator(encode_rank_yielded(slot.rank, true));
  } else if (!stopping_.load()) {
    send_to_coordinator(encode_result(res));
  }
  slot.done.store(true);
}

void NodeAgent::launch_rank(std::uint32_t rank, std::vector<std::byte> image) {
  AgentMetrics::get().launches.inc();
  std::lock_guard<std::mutex> lock(mu_);
  if (RankSlot* existing = find_slot(rank)) {
    if (!existing->done.load()) return;  // already running here
    if (existing->thread.joinable()) existing->thread.join();
    slots_.erase(rank);
  }
  auto slot = std::make_unique<RankSlot>();
  slot->rank = rank;
  RankSlot* sp = slot.get();
  slots_[rank] = std::move(slot);
  sp->thread = std::thread([this, rank, sp, img = std::move(image)] {
    try {
      fir::Program prog = fir::decode_program(img);
      vm::ProcessConfig pcfg;
      pcfg.heap = cfg_.heap;
      pcfg.max_instructions = max_instructions_;
      vm::Process proc(std::move(prog), pcfg);
      register_externals(proc, *sp);
      run_rank(*sp, proc, false, 0, {});
    } catch (const std::exception& e) {
      Msg res;
      res.type = MsgType::kResult;
      res.rank = rank;
      res.result_kind = 2;
      res.error = e.what();
      send_to_coordinator(encode_result(res));
      sp->done.store(true);
    }
  });
}

void NodeAgent::resurrect_rank(std::uint32_t rank) {
  std::lock_guard<std::mutex> lock(mu_);
  if (RankSlot* existing = find_slot(rank)) {
    if (!existing->done.load()) return;  // at-most-one incarnation here
    if (existing->thread.joinable()) existing->thread.join();
    slots_.erase(rank);
  }
  auto slot = std::make_unique<RankSlot>();
  slot->rank = rank;
  RankSlot* sp = slot.get();
  slots_[rank] = std::move(slot);
  sp->thread = std::thread([this, rank, sp] {
    try {
      const auto image = store_->restore("rank_" + std::to_string(rank));
      if (!image.has_value()) {
        send_to_coordinator(encode_rank_up(rank, false));
        sp->done.store(true);
        return;
      }
      vm::ProcessConfig pcfg;
      pcfg.heap = cfg_.heap;
      pcfg.max_instructions = max_instructions_;
      migrate::UnpackResult unpacked = migrate::unpack_process(*image, pcfg);
      register_externals(*unpacked.process, *sp);
      AgentMetrics::get().resurrections.inc();
      MOJAVE_LOG(kInfo, "dnode")
          << "resurrecting rank " << rank << " from checkpoint";
      send_to_coordinator(encode_rank_up(rank, true));
      run_rank(*sp, *unpacked.process, true, unpacked.resume_fun,
               std::move(unpacked.resume_args));
    } catch (const std::exception& e) {
      MOJAVE_LOG(kWarn, "dnode")
          << "resurrect rank " << rank << " failed: " << e.what();
      send_to_coordinator(encode_rank_up(rank, false));
      sp->done.store(true);
    }
  });
}

}  // namespace mojave::dnode
