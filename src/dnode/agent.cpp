#include "dnode/agent.hpp"

#include <algorithm>
#include <sstream>

#include "fir/serialize.hpp"
#include "migrate/image.hpp"
#include "migrate/migrator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/value_codec.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"

namespace mojave::dnode {

using runtime::Value;

namespace {

/// Thrown out of a network external when the agent is shutting down; it
/// unwinds the interpreter and retires the rank fiber (the dnode twin of
/// the simulated cluster's NodeKilled).
struct AgentStopping {};

/// Poller token namespaces: the listener, accepted connections, outbound
/// peer links. The high 32 bits pick the namespace so ids never collide.
constexpr std::uint64_t kTokListener = 1;
constexpr std::uint64_t kTokConnBase = 1ull << 32;
constexpr std::uint64_t kTokLinkBase = 2ull << 32;

/// Stop queueing heartbeats once this many bytes sit unflushed on the
/// coordinator connection (peer not draining); stale beats are useless.
constexpr std::size_t kMaxStaleHeartbeatBytes = 64 * 1024;

struct AgentMetrics {
  obs::Counter& launches;
  obs::Counter& resurrections;
  obs::Counter& yields;
  obs::Counter& data_in;
  obs::Counter& data_out;
  obs::Counter& forwards;
  obs::Counter& replay_requests;
  obs::Counter& replays_served;
  obs::Counter& poisons;
  obs::Counter& dep_records;
  obs::Counter& corrupt_frames;
  obs::Counter& heartbeats;
  obs::Counter& link_failures;

  static AgentMetrics& get() {
    auto& r = obs::MetricsRegistry::instance();
    static AgentMetrics m{
        r.counter("node.launches"),       r.counter("node.resurrections"),
        r.counter("node.yields"),         r.counter("node.data_frames_in"),
        r.counter("node.data_frames_out"), r.counter("node.data_forwards"),
        r.counter("dspec.replay_requests"), r.counter("dspec.replays_served"),
        r.counter("dspec.poisons_received"), r.counter("dspec.dep_records"),
        r.counter("node.corrupt_frames"), r.counter("node.heartbeats"),
        r.counter("node.link_failures"),
    };
    return m;
  }
};

/// Wraps the per-rank Migrator so the coordinator can turn the rank's
/// *next successful checkpoint* into a yield: the process exits here with
/// kMigratedAway and is resurrected from that checkpoint on the target
/// agent. Checkpoints happen at commit points (Figure 2's loop), so a
/// yield never strands an active speculation.
class YieldHook final : public vm::MigrationHook {
 public:
  YieldHook(vm::Process& proc, migrate::Migrator& inner,
            std::atomic<bool>& yield_requested)
      : proc_(proc), inner_(inner), yield_(yield_requested) {
    proc_.vm().set_migration_hook(this);
  }
  ~YieldHook() override { proc_.vm().set_migration_hook(&inner_); }

  Action on_migrate(vm::Interpreter& vm, MigrateLabel label,
                    const std::string& target, FunIndex resume_fun,
                    std::span<const Value> resume_args) override {
    const Action a = inner_.on_migrate(vm, label, target, resume_fun,
                                       resume_args);
    if (a == Action::kExit) return a;
    if (yield_.load() && !inner_.events().empty() &&
        inner_.events().back().success) {
      yielded_ = true;
      return Action::kExit;
    }
    return a;
  }

  [[nodiscard]] bool yielded() const { return yielded_; }

 private:
  vm::Process& proc_;
  migrate::Migrator& inner_;
  std::atomic<bool>& yield_;
  bool yielded_ = false;
};

}  // namespace

struct NodeAgent::Conn {
  explicit Conn(net::TcpStream s) : sock(std::move(s)) {}
  net::FramedSocket sock;
  std::uint64_t token = 0;
  PeerKind kind = PeerKind::kAgent;
  bool write_armed = false;
};

struct NodeAgent::Link {
  net::FramedSocket sock;
  enum class State { kConnecting, kReady } state = State::kConnecting;
  bool write_armed = true;  ///< EPOLLOUT stays armed while connecting
};

struct NodeAgent::RankSlot {
  std::uint32_t rank = 0;
  std::ostringstream output;
  // Destruction order matters (reverse of declaration): the yield hook
  // restores the migrator as the vm's hook, the migrator detaches itself,
  // then the process goes.
  std::unique_ptr<vm::Process> process;
  std::unique_ptr<migrate::Migrator> migrator;
  std::unique_ptr<YieldHook> yield_hook;

  /// The distributed poison flag: set by POISON/FORCE_ROLL frames, drained
  /// by msg_recv as MSG_ROLL (the agent-side half of consume_poison()).
  std::atomic<bool> poisoned{false};
  std::atomic<bool> yield_requested{false};
  std::atomic<bool> done{false};
  /// Rollback epoch: bumped on every rollback and stamped into outgoing
  /// DATA, so the coordinator can fence dependency records that raced a
  /// ROLL_POISON (see docs/SPECULATION.md).
  std::atomic<std::uint64_t> epoch{0};
  /// Commit count, also stamped into outgoing DATA. Replay logs and the
  /// receiver-side delivered cache keep a payload long after its
  /// speculation was discharged; without this stamp the epoch fence would
  /// poison every late re-consume of committed data — and a resurrected
  /// rank re-reading its border messages would be poisoned, roll back,
  /// re-read the same cached payload, and livelock. Seeded from the
  /// coordinator's RESURRECT so incarnations agree on the count.
  std::atomic<std::uint64_t> commit_seq{0};
  std::atomic<bool> has_reported{false};
  std::atomic<double> reported{0};

  // --- Fiber pacing gates (loop thread only). Every gate is checked
  // BEFORE the external's side effects, so re-executing the instruction
  // after a WouldBlock park is idempotent — the same contract that makes
  // native-tier deoptimization safe. ------------------------------------
  double next_send_at = 0;   ///< throttle + failed-send backoff
  double sleep_until = -1;   ///< armed sleep_ms gate; -1 = none
  bool roll_pace_armed = false;  ///< pacing a peer-down MSG_ROLL report
  double roll_pace_until = 0;
  struct RecvWait {
    bool active = false;
    std::uint64_t key = 0;
    double start = 0;        ///< first wait on this key (timeout base)
    double next_replay = 0;  ///< when to re-request from the replay log
  } recv;
  /// Set by an external just before it throws WouldBlock; the fiber parks
  /// on this key.
  std::uint64_t pending_wait_key = 0;

  /// Lazy cancellation (TimeWarp): hash of the last payload per (dst,
  /// tag); a byte-identical re-send after a rollback goes out at level 0.
  std::map<std::pair<std::uint32_t, std::int32_t>, std::uint64_t> sent_hashes;
  /// Sender-side replay log answering REPLAY_REQ: a receiver resurrected
  /// on another agent re-requests border messages already sent (the
  /// paper's Figure 2 "re-request border information" arrow).
  std::map<std::pair<std::uint32_t, std::int32_t>, std::vector<std::byte>>
      sent_log;

  // --- HA takeover bookkeeping (loop thread only) -----------------------
  /// True once this slot yielded (checkpointed and parked): reported as
  /// state 2 in the RE_ADOPT census so a takeover coordinator re-grants
  /// the resurrect instead of waiting forever for a RESULT.
  bool yielded = false;
  /// The encoded RESULT frame, kept after completion: a RESULT that raced
  /// the primary coordinator's death is re-sent to the standby at
  /// RE_ADOPT (its duplicate guard absorbs the common already-seen case).
  std::vector<std::byte> last_result;
};

namespace {

/// Store name for a rank's persisted sender replay log. The in-memory
/// log dies with the agent, but a message that was in flight (or in the
/// coalescing queue) when the agent was killed is gone with it too — and
/// the sender's next incarnation resumes from its checkpoint, past the
/// point where it would regenerate pre-checkpoint sends. A receiver still
/// waiting on one of those messages would deadlock the cluster. So the
/// log is persisted into the shared checkpoint store at every commit
/// (the instant before the checkpoint itself) and restored at
/// resurrection, making pre-checkpoint border sends replayable across
/// incarnations.
std::string send_log_snapshot(std::uint32_t rank) {
  return "rank_" + std::to_string(rank) + "_sendlog";
}

std::vector<std::byte> encode_send_log(
    const std::map<std::pair<std::uint32_t, std::int32_t>,
                   std::vector<std::byte>>& sent_log,
    const std::map<std::pair<std::uint32_t, std::int32_t>, std::uint64_t>&
        sent_hashes) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(sent_log.size()));
  for (const auto& [key, payload] : sent_log) {
    w.u32(key.first);
    w.i32(key.second);
    w.u32(static_cast<std::uint32_t>(payload.size()));
    w.bytes(payload);
  }
  w.u32(static_cast<std::uint32_t>(sent_hashes.size()));
  for (const auto& [key, hash] : sent_hashes) {
    w.u32(key.first);
    w.i32(key.second);
    w.u64(hash);
  }
  return w.take();
}

void decode_send_log(
    std::span<const std::byte> blob,
    std::map<std::pair<std::uint32_t, std::int32_t>, std::vector<std::byte>>&
        sent_log,
    std::map<std::pair<std::uint32_t, std::int32_t>, std::uint64_t>&
        sent_hashes) {
  Reader r(blob);
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t dst = r.u32();
    const std::int32_t tag = r.i32();
    const std::uint32_t len = r.u32();
    const auto span = r.bytes(len);
    sent_log[{dst, tag}] = {span.begin(), span.end()};
  }
  const std::uint32_t m = r.u32();
  for (std::uint32_t i = 0; i < m; ++i) {
    const std::uint32_t dst = r.u32();
    const std::int32_t tag = r.i32();
    sent_hashes[{dst, tag}] = r.u64();
  }
}

}  // namespace

NodeAgent::NodeAgent(AgentConfig cfg)
    : cfg_(std::move(cfg)),
      listener_(cfg_.bind, cfg_.port),
      retry_(net::RetryPolicy::process_defaults()),
      store_(ckpt::CheckpointStore::open_shared(cfg_.storage_root,
                                                cfg_.ckpt)) {
  listener_.set_nonblocking();
  poller_.add(listener_.fd(), kTokListener, true, false);
  loop_thread_ = std::thread([this] { loop(); });
}

NodeAgent::~NodeAgent() { stop(); }

void NodeAgent::wait() {
  {
    std::unique_lock<std::mutex> lock(wait_mu_);
    wait_cv_.wait(lock, [this] { return shutdown_requested_; });
  }
  stop();
}

void NodeAgent::stop() {
  if (stopping_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    shutdown_requested_ = true;
    wait_cv_.notify_all();
  }
  poller_.wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  listener_.shutdown();
  // Loop thread is gone; tear down its sockets on this thread.
  conns_.clear();
  coordinator_.reset();
  links_.clear();
}

void NodeAgent::request_shutdown() {
  std::lock_guard<std::mutex> lock(wait_mu_);
  shutdown_requested_ = true;
  wait_cv_.notify_all();
}

std::vector<std::uint32_t> NodeAgent::hosted_ranks() const {
  std::vector<std::uint32_t> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [rank, slot] : slots_) {
    if (!slot->done.load()) out.push_back(rank);
  }
  return out;
}

// --- Event loop ------------------------------------------------------------

void NodeAgent::loop() {
  /// Fiber slices per tick, bounding how long the network can go
  /// unserviced while ranks compute.
  constexpr int kSlicesPerTick = 256;
  std::vector<net::Poller::Event> events;
  next_heartbeat_ = now_seconds() + cfg_.heartbeat_seconds;
  while (!stopping_.load()) {
    int timeout_ms = 50;
    if (sched_.has_runnable()) {
      timeout_ms = 0;
    } else {
      const double now = now_seconds();
      double next = next_heartbeat_;
      const double dl = sched_.next_deadline();
      if (dl > 0 && dl < next) next = dl;
      const double delta_ms = (next - now) * 1000.0;
      if (delta_ms <= 0) {
        timeout_ms = 0;
      } else if (delta_ms < 50) {
        timeout_ms = static_cast<int>(delta_ms) + 1;
      }
    }
    poller_.wait(events, timeout_ms);
    if (stopping_.load()) break;
    for (const net::Poller::Event& ev : events) {
      if (ev.token == kTokListener) {
        on_listener_ready();
      } else if (ev.token >= kTokLinkBase) {
        on_link_event(static_cast<std::uint32_t>(ev.token - kTokLinkBase), ev);
      } else {
        on_conn_event(ev.token, ev);
      }
      if (stopping_.load()) return;
    }
    const double now = now_seconds();
    if (coord_lost_at_ >= 0 && !coordinator_ &&
        now - coord_lost_at_ >= cfg_.coordinator_grace_seconds) {
      MOJAVE_LOG(kInfo, "dnode")
          << "no coordinator takeover within grace period; shutting down";
      coord_lost_at_ = -1;
      request_shutdown();
    }
    if (now >= next_heartbeat_) {
      next_heartbeat_ = now + cfg_.heartbeat_seconds;
      if (coordinator_) {
        std::uint32_t live = 0;
        {
          std::lock_guard<std::mutex> lock(mu_);
          for (const auto& [rank, slot] : slots_) {
            if (!slot->done.load()) ++live;
          }
        }
        // Load model: ranks hosted, inflated by the deliberate throttle —
        // a slowed agent looks (and is) more expensive per rank, which is
        // what the coordinator's balancer keys off.
        const double load =
            static_cast<double>(live) * (1.0 + cfg_.throttle_ms);
        // Skip the beat if the coordinator has stopped draining us: a
        // heartbeat is only useful fresh, and queueing them behind a
        // full pipe grows the outbox without bound.
        if (coordinator_->sock.pending_bytes() < kMaxStaleHeartbeatBytes) {
          AgentMetrics::get().heartbeats.inc();
          send_to_coordinator(encode_heartbeat(my_agent_, load, live));
        }
      }
    }
    sched_.run_some(kSlicesPerTick, now);
    flush_io();
  }
}

void NodeAgent::on_listener_ready() {
  while (auto stream = listener_.try_accept()) {
    auto conn = std::make_shared<Conn>(std::move(*stream));
    conn->token = kTokConnBase | next_conn_id_++;
    poller_.add(conn->sock.fd(), conn->token, true, false);
    conns_[conn->token] = std::move(conn);
  }
}

void NodeAgent::on_conn_event(std::uint64_t token,
                              const net::Poller::Event& ev) {
  auto it = conns_.find(token);
  if (it == conns_.end()) return;
  std::shared_ptr<Conn> conn = it->second;
  bool dead = ev.error;
  if (ev.readable || ev.hup) {
    std::vector<std::vector<std::byte>> frames;
    if (!conn->sock.on_readable(frames)) dead = true;
    for (const auto& frame : frames) {
      auto m = decode(frame);
      if (!m.has_value()) {
        AgentMetrics::get().corrupt_frames.inc();
        continue;
      }
      handle_frame(*m, conn);
    }
  }
  if (!dead && ev.writable) {
    if (!conn->sock.flush()) dead = true;
  }
  if (dead) drop_conn(token);
}

void NodeAgent::drop_conn(std::uint64_t token) {
  auto it = conns_.find(token);
  if (it == conns_.end()) return;
  std::shared_ptr<Conn> conn = it->second;
  poller_.remove(conn->sock.fd());
  conns_.erase(it);
  if (conn == coordinator_) {
    coordinator_.reset();
    if (!stopping_.load()) {
      if (cfg_.coordinator_grace_seconds > 0) {
        // HA mode: keep the ranks running and wait for a standby
        // coordinator to acquire the lease and re-adopt us.
        coord_lost_at_ = now_seconds();
        MOJAVE_LOG(kWarn, "dnode")
            << "coordinator connection lost; holding ranks "
            << cfg_.coordinator_grace_seconds << "s for a takeover";
      } else {
        // Coordinator gone: nothing can place, poison, or collect us
        // anymore.
        MOJAVE_LOG(kInfo, "dnode")
            << "coordinator connection lost; shutting down";
        request_shutdown();
      }
    }
  }
}

void NodeAgent::on_link_event(std::uint32_t agent,
                              const net::Poller::Event& ev) {
  auto it = links_.find(agent);
  if (it == links_.end()) return;
  Link& link = *it->second;
  if (ev.error) {
    fail_link(agent);
    return;
  }
  if (ev.writable && link.state == Link::State::kConnecting) {
    try {
      if (link.sock.stream().connect_finished()) {
        link.state = Link::State::kReady;
      }
    } catch (const std::exception& e) {
      MOJAVE_LOG(kDebug, "dnode")
          << "link to agent " << agent << " failed: " << e.what();
      fail_link(agent);
      return;
    }
  }
  if (ev.readable || ev.hup) {
    // Peers answer on their own outbound links, so inbound bytes here are
    // only ever an EOF/reset to notice.
    std::vector<std::vector<std::byte>> frames;
    if (!link.sock.on_readable(frames)) {
      fail_link(agent);
      return;
    }
    if (ev.hup && !link.sock.want_write()) fail_link(agent);
  }
}

void NodeAgent::fail_link(std::uint32_t agent) {
  auto it = links_.find(agent);
  if (it == links_.end()) return;
  // Queued frames die with the link = dropped messages; the rollback-
  // retry loop and the replay log recover, exactly as for a mid-flight
  // TCP reset.
  AgentMetrics::get().link_failures.inc();
  poller_.remove(it->second->sock.fd());
  links_.erase(it);
}

void NodeAgent::flush_io() {
  std::vector<std::uint64_t> dead_conns;
  for (auto& [token, conn] : conns_) {
    bool ok = true;
    if (conn->sock.want_write()) ok = conn->sock.flush();
    if (!ok) {
      dead_conns.push_back(token);
      continue;
    }
    const bool want = conn->sock.want_write();
    if (want != conn->write_armed) {
      poller_.modify(conn->sock.fd(), token, true, want);
      conn->write_armed = want;
    }
  }
  for (std::uint64_t token : dead_conns) drop_conn(token);

  std::vector<std::uint32_t> dead_links;
  for (auto& [agent, link] : links_) {
    if (link->state != Link::State::kReady) continue;  // EPOLLOUT armed
    if (link->sock.want_write() && !link->sock.flush()) {
      dead_links.push_back(agent);
      continue;
    }
    const bool want = link->sock.want_write();
    if (want != link->write_armed) {
      poller_.modify(link->sock.fd(), kTokLinkBase | agent, true, want);
      link->write_armed = want;
    }
  }
  for (std::uint32_t agent : dead_links) fail_link(agent);
}

// --- Frame handling --------------------------------------------------------

void NodeAgent::handle_frame(const Msg& m, const std::shared_ptr<Conn>& conn) {
  // Fencing, part two: commands are only honored from the adopted control
  // connection. A deposed primary's established conn keeps delivering
  // frames after the standby takes over (the HELLO epoch check only fires
  // on reconnect); those must not launch, poison, or shut anything down.
  switch (m.type) {
    case MsgType::kConfig:
    case MsgType::kPlacement:
    case MsgType::kLaunch:
    case MsgType::kPoison:
    case MsgType::kForceRoll:
    case MsgType::kResurrect:
    case MsgType::kYieldRank:
    case MsgType::kShutdown:
    case MsgType::kReAdopt:
      if (conn != coordinator_) return;
      break;
    default:
      break;
  }
  switch (m.type) {
    case MsgType::kHello: {
      conn->kind = m.peer_kind;
      if (m.peer_kind == PeerKind::kCoordinator) {
        // Lease fencing (docs/CONTROL_PLANE.md): a deposed primary that
        // is still alive carries a lower lease epoch than the standby
        // that replaced it — its writes must not reach the cluster.
        if (m.coord_epoch < coord_epoch_) {
          MOJAVE_LOG(kWarn, "dnode")
              << "rejecting coordinator with stale lease epoch "
              << m.coord_epoch << " < " << coord_epoch_;
          drop_conn(conn->token);
          break;
        }
        coord_epoch_ = m.coord_epoch;
        if (coordinator_ && coordinator_ != conn) {
          // Adopt the new primary before dropping the old control
          // connection so the drop does not look like a coordinator loss.
          const std::uint64_t old_token = coordinator_->token;
          coordinator_ = conn;
          drop_conn(old_token);
        } else {
          coordinator_ = conn;
        }
        coord_lost_at_ = -1;
        while (!coord_backlog_.empty()) {
          coordinator_->sock.queue_frame(std::move(coord_backlog_.front()));
          coord_backlog_.pop_front();
        }
      }
      break;
    }
    case MsgType::kReAdopt: {
      // A standby coordinator took over: answer with the rank census so
      // it can reconcile its replayed WAL state against what is actually
      // running here, then re-send any RESULT the dead primary may never
      // have durably recorded.
      std::vector<CensusEntry> census;
      std::vector<std::vector<std::byte>> results;
      for (const auto& [rank, slot] : slots_) {
        CensusEntry e;
        e.rank = rank;
        e.commit_seq = slot->commit_seq.load();
        if (slot->yielded) {
          e.state = 2;
        } else if (slot->done.load()) {
          if (slot->last_result.empty()) continue;  // failed-resurrect husk
          e.state = 1;
          results.push_back(slot->last_result);
        } else {
          e.state = 0;
        }
        census.push_back(e);
      }
      send_to_coordinator(encode_re_adopt_ack(my_agent_, census));
      for (auto& f : results) send_to_coordinator(std::move(f));
      break;
    }
    case MsgType::kConfig: {
      std::lock_guard<std::mutex> lock(mu_);
      my_agent_ = m.agent;
      num_ranks_ = m.num_ranks;
      agents_ = m.agents;
      max_instructions_ = m.max_instructions;
      if (m.recv_timeout_seconds > 0) {
        cfg_.recv_timeout_seconds = m.recv_timeout_seconds;
      }
      placement_.assign(num_ranks_, Placement{});
      break;
    }
    case MsgType::kPlacement: {
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (const PlacementEntry& e : m.placement) {
          if (e.rank < placement_.size()) {
            placement_[e.rank] = Placement{e.agent, e.alive};
          }
        }
      }
      // Receives parked on a now-dead peer must wake to report MSG_ROLL.
      sched_.wake_all();
      break;
    }
    case MsgType::kLaunch:
      launch_rank(m.rank, m.payload);
      break;
    case MsgType::kData:
      handle_data(m);
      break;
    case MsgType::kReplayReq:
      handle_replay_req(m);
      break;
    case MsgType::kPoison:
    case MsgType::kForceRoll: {
      AgentMetrics::get().poisons.inc();
      if (RankSlot* slot = find_slot(m.rank)) {
        slot->poisoned.store(true);
        sched_.wake(m.rank);
      }
      break;
    }
    case MsgType::kResurrect:
      resurrect_rank(m.rank, m.commit_seq);
      break;
    case MsgType::kYieldRank: {
      if (RankSlot* slot = find_slot(m.rank)) {
        slot->yield_requested.store(true);
      }
      break;
    }
    case MsgType::kShutdown:
      request_shutdown();
      break;
    default:
      break;  // coordinator-bound frames are not ours to handle
  }
}

NodeAgent::RankSlot* NodeAgent::find_slot(std::uint32_t rank) {
  const auto it = slots_.find(rank);
  return it == slots_.end() ? nullptr : it->second.get();
}

void NodeAgent::handle_data(const Msg& m) {
  AgentMetrics::get().data_in.inc();
  std::uint32_t agent = 0;
  bool known = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (m.dst < placement_.size()) {
      agent = placement_[m.dst].agent;
      known = true;
    }
  }
  if (known && agent != my_agent_) {
    // The sender routed on a stale placement; forward once on ours.
    AgentMetrics::get().forwards.inc();
    send_to_agent(agent, encode_data(m.src, m.dst, m.tag, m.payload));
    return;
  }
  deliver_local(m.src, m.dst, m.tag, m.payload);
}

void NodeAgent::handle_replay_req(const Msg& m) {
  std::vector<std::byte> payload;
  {
    RankSlot* slot = find_slot(m.owner);
    if (slot == nullptr) return;  // owner moved on; its new host will serve
    const auto it = slot->sent_log.find({m.requester, m.tag});
    if (it == slot->sent_log.end()) return;  // never sent: requester waits
    payload = it->second;
  }
  AgentMetrics::get().replays_served.inc();
  route_payload(m.owner, m.requester, m.tag, std::move(payload));
}

void NodeAgent::deliver_local(std::uint32_t src, std::uint32_t dst,
                              std::int32_t tag,
                              std::vector<std::byte> payload) {
  mail_[dst].q[{src, tag}].push_back(std::move(payload));
  sched_.wake_key(recv_wait_key(src, static_cast<std::uint64_t>(
                                         static_cast<std::uint32_t>(tag))));
}

bool NodeAgent::route_payload(std::uint32_t src, std::uint32_t dst,
                              std::int32_t tag,
                              std::vector<std::byte> payload) {
  std::uint32_t agent = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dst >= placement_.size()) return false;
    if (!placement_[dst].alive) return false;
    agent = placement_[dst].agent;
  }
  if (agent == my_agent_) {
    deliver_local(src, dst, tag, std::move(payload));
    return true;
  }
  AgentMetrics::get().data_out.inc();
  return send_to_agent(agent, encode_data(src, dst, tag, payload));
}

void NodeAgent::request_replay(std::uint32_t src, std::uint32_t requester,
                               std::int32_t tag) {
  std::uint32_t agent = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (src >= placement_.size() || !placement_[src].alive) return;
    agent = placement_[src].agent;
  }
  AgentMetrics::get().replay_requests.inc();
  auto frame = encode_replay_req(src, requester, tag);
  if (agent == my_agent_) {
    if (auto m = decode(frame)) handle_replay_req(*m);
  } else {
    send_to_agent(agent, std::move(frame));
  }
}

bool NodeAgent::send_to_agent(std::uint32_t agent,
                              std::vector<std::byte> frame) {
  AgentAddr addr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (agent >= agents_.size()) return false;
    addr = agents_[agent];
  }
  auto& lp = links_[agent];
  if (!lp || !lp->sock.valid()) {
    try {
      auto stream = net::TcpStream::connect_begin(addr.host, addr.port);
      lp = std::make_unique<Link>();
      lp->sock = net::FramedSocket(std::move(stream));
    } catch (const std::exception& e) {
      AgentMetrics::get().link_failures.inc();
      MOJAVE_LOG(kDebug, "dnode")
          << "link to agent " << agent << " failed: " << e.what();
      links_.erase(agent);
      return false;
    }
    lp->state = Link::State::kConnecting;
    lp->sock.queue_frame(encode_hello(PeerKind::kAgent, my_agent_));
    poller_.add(lp->sock.fd(), kTokLinkBase | agent, true, true);
    lp->write_armed = true;
  }
  // Queued, not yet on the wire: the frame rides the next flush tick,
  // coalesced with everything else bound for this peer. A link that later
  // fails drops its queue — the same "message lost" the replay protocol
  // already recovers from.
  lp->sock.queue_frame(std::move(frame));
  return true;
}

void NodeAgent::send_to_coordinator(std::vector<std::byte> frame) {
  if (!coordinator_) {
    // Between primaries: hold control-plane frames for the adopting
    // coordinator. Bounded — under a long outage the oldest (least
    // actionable) frames age out first.
    constexpr std::size_t kMaxCoordBacklog = 1024;
    if (coord_backlog_.size() >= kMaxCoordBacklog) coord_backlog_.pop_front();
    coord_backlog_.push_back(std::move(frame));
    return;
  }
  coordinator_->sock.queue_frame(std::move(frame));
}

// --- Ranks as fibers -------------------------------------------------------

void NodeAgent::register_externals(vm::Process& proc, RankSlot& slot) {
  vm::Interpreter& vm = proc.vm();
  const std::uint32_t rank = slot.rank;
  vm.set_output(&slot.output);

  vm.register_external("node_id",
                       [rank](vm::Interpreter&, std::span<const Value>) {
                         return Value::from_int(rank);
                       });
  vm.register_external(
      "num_nodes", [this](vm::Interpreter&, std::span<const Value>) {
        return Value::from_int(static_cast<std::int64_t>(num_ranks_));
      });

  vm.register_external(
      "msg_send",
      [this, rank, &proc, &slot](vm::Interpreter& it,
                                 std::span<const Value> args) -> Value {
        if (args.size() != 4) throw SafetyError("msg_send arity");
        if (stopping_.load()) throw AgentStopping{};
        const auto dst = static_cast<std::uint32_t>(args[0].as_int());
        const auto tag = static_cast<std::int32_t>(args[1].as_int());
        const runtime::PtrValue buf = args[2].as_ptr();
        const std::int64_t count = args[3].as_int();
        if (count < 0) throw SafetyError("msg_send negative count");
        // Pacing gate (deliberate throttle + failed-send backoff), checked
        // before any side effect so a parked send re-executes cleanly.
        const double now = now_seconds();
        if (now < slot.next_send_at) {
          slot.pending_wait_key = rank_wait_key(rank);
          throw vm::WouldBlock{slot.next_send_at};
        }
        Writer vw;
        for (std::int64_t i = 0; i < count; ++i) {
          runtime::write_value(
              vw, it.heap().read_slot(
                      buf.index, buf.offset + static_cast<std::uint32_t>(i)));
        }
        const auto values = vw.take();
        // Lazy cancellation: a byte-identical re-send (deterministic
        // re-execution after a rollback) is not speculative — its
        // consumers already hold exactly this data.
        const std::uint64_t h = fnv1a(values);
        auto& prev = slot.sent_hashes[{dst, tag}];
        const bool duplicate = prev == h;
        prev = h;
        const std::uint32_t level =
            duplicate ? 0 : proc.spec().current_level();
        std::vector<std::byte> payload = encode_data_payload(
            level, slot.epoch.load(), slot.commit_seq.load(),
            static_cast<std::uint32_t>(count), values);
        slot.sent_log[{dst, tag}] = payload;
        if (cfg_.throttle_ms > 0) {
          slot.next_send_at = now + cfg_.throttle_ms * 1e-3;
        }
        const bool ok = route_payload(rank, dst, tag, std::move(payload));
        if (!ok) {
          // Dead destination or no link: back off so the rollback-retry
          // loop does not spin while the peer is resurrected.
          slot.next_send_at = std::max(slot.next_send_at, now + 500e-6);
        }
        return Value::from_int(ok ? 0 : 1);
      });

  vm.register_external(
      "msg_recv",
      [this, rank, &proc, &slot](vm::Interpreter& it,
                                 std::span<const Value> args) -> Value {
        if (args.size() != 4) throw SafetyError("msg_recv arity");
        if (stopping_.load()) throw AgentStopping{};
        const auto src = static_cast<std::uint32_t>(args[0].as_int());
        const auto tag = static_cast<std::int32_t>(args[1].as_int());
        const runtime::PtrValue buf = args[2].as_ptr();
        const std::int64_t count = args[3].as_int();
        if (count < 0) throw SafetyError("msg_recv negative count");
        const double now = now_seconds();
        if (slot.poisoned.load()) {
          // Pace the poison-driven MSG_ROLL exactly like the peer-down
          // one: the report triggers a rollback whose re-execution lands
          // right back here, and an unpaced cycle spins the whole agent
          // at slice speed if the coordinator keeps poisoning.
          if (!slot.roll_pace_armed) {
            slot.roll_pace_armed = true;
            slot.roll_pace_until = now + 500e-6;
          }
          if (now < slot.roll_pace_until) {
            slot.pending_wait_key = rank_wait_key(rank);
            throw vm::WouldBlock{slot.roll_pace_until};
          }
          slot.roll_pace_armed = false;
          slot.poisoned.store(false);
          slot.recv.active = false;
          return Value::from_int(1);  // MSG_ROLL
        }
        const auto key = std::make_pair(src, tag);
        std::vector<std::byte> payload;
        bool got = false;
        Mailbox& mb = mail_[rank];
        if (auto qi = mb.q.find(key); qi != mb.q.end() && !qi->second.empty()) {
          payload = std::move(qi->second.front());
          qi->second.pop_front();
          mb.delivered[key] = payload;
          got = true;
        } else if (auto di = mb.delivered.find(key);
                   di != mb.delivered.end()) {
          // Receiver-side replay: a re-execution after rollback reads the
          // message it already consumed.
          payload = di->second;
          got = true;
        }
        if (!got) {
          bool peer_down = false;
          {
            std::lock_guard<std::mutex> lock(mu_);
            peer_down = src < placement_.size() && !placement_[src].alive;
          }
          if (peer_down) {
            // Pace MSG_ROLL reports so the rollback-retry loop does not
            // spin while the peer is resurrected.
            if (!slot.roll_pace_armed) {
              slot.roll_pace_armed = true;
              slot.roll_pace_until = now + 500e-6;
            }
            if (now < slot.roll_pace_until) {
              slot.pending_wait_key = rank_wait_key(rank);
              throw vm::WouldBlock{slot.roll_pace_until};
            }
            slot.roll_pace_armed = false;
            slot.recv.active = false;
            return Value::from_int(1);  // MSG_ROLL
          }
          const std::uint64_t wkey = recv_wait_key(
              src, static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
          if (!slot.recv.active || slot.recv.key != wkey) {
            slot.recv = RankSlot::RecvWait{
                true, wkey, now, now + cfg_.replay_request_seconds};
          }
          if (now - slot.recv.start >= cfg_.recv_timeout_seconds) {
            slot.recv.active = false;
            MOJAVE_LOG(kDebug, "dnode") << "rank " << rank
                                        << " recv timeout from " << src
                                        << " tag " << tag;
            return Value::from_int(2);
          }
          if (now >= slot.recv.next_replay) {
            // The message may have been lost with a dead agent or our own
            // previous incarnation's mailbox — re-request it from the
            // sender's replay log.
            slot.recv.next_replay = now + cfg_.replay_request_seconds;
            request_replay(src, rank, tag);
          }
          const double deadline =
              std::min(slot.recv.next_replay,
                       slot.recv.start + cfg_.recv_timeout_seconds);
          slot.pending_wait_key = wkey;
          throw vm::WouldBlock{deadline};
        }
        slot.recv.active = false;
        slot.roll_pace_armed = false;
        // A rollback poisons dependents before the rolled-back sender can
        // send anything new; re-checking here keeps MSG_ROLL delivery
        // deterministic even when a fresh message raced in.
        if (slot.poisoned.exchange(false)) return Value::from_int(1);
        Reader r(payload);
        const std::uint32_t sender_level = r.u32();
        const std::uint64_t sender_epoch = r.u64();
        const std::uint64_t sender_commit = r.u64();
        const std::uint32_t n = r.u32();
        if (sender_level > 0) {
          // Speculative data: join the sender's speculation (the
          // distributed record() of the join protocol).
          AgentMetrics::get().dep_records.inc();
          send_to_coordinator(encode_dep_record(src, sender_level, rank,
                                                proc.spec().current_level(),
                                                sender_epoch, sender_commit));
        }
        const std::uint32_t to_copy =
            std::min(n, static_cast<std::uint32_t>(count));
        for (std::uint32_t i = 0; i < to_copy; ++i) {
          it.heap().write_slot(buf.index, buf.offset + i,
                               runtime::read_value(r));
        }
        return Value::from_int(0);
      });

  vm.register_external(
      "checkpoint_target",
      [this, rank](vm::Interpreter& it, std::span<const Value>) -> Value {
        const std::string target = "ckpt://" + cfg_.storage_root.string() +
                                   "/rank_" + std::to_string(rank);
        return Value::from_ptr(it.heap().alloc_string(target), 0);
      });

  vm.register_external(
      "report_result",
      [&slot](vm::Interpreter&, std::span<const Value> args) -> Value {
        if (args.size() != 1) throw SafetyError("report_result arity");
        slot.reported.store(args[0].as_float());
        slot.has_reported.store(true);
        return Value::unit();
      });

  vm.register_external(
      "sleep_ms",
      [this, &slot](vm::Interpreter&, std::span<const Value> args) -> Value {
        const double now = now_seconds();
        if (slot.sleep_until < 0) {
          const std::int64_t ms = args.empty() ? 0 : args[0].as_int();
          slot.sleep_until = now + static_cast<double>(ms) * 1e-3;
        }
        if (now < slot.sleep_until) {
          slot.pending_wait_key = rank_wait_key(slot.rank);
          throw vm::WouldBlock{slot.sleep_until};
        }
        slot.sleep_until = -1;
        return Value::unit();
      });

  // Join protocol, reported over the wire: this rank's rollbacks bump its
  // epoch and emit ROLL_POISON; its durable commits emit COMMIT_DISCHARGE.
  proc.spec().set_rollback_observer([this, rank, &slot](SpecLevel level,
                                                        bool) {
    const std::uint64_t e = slot.epoch.fetch_add(1) + 1;
    send_to_coordinator(encode_roll_poison(rank, level, e));
  });
  proc.spec().set_commit_observer([this, rank, &slot] {
    slot.commit_seq.fetch_add(1);
    // Persist the replay log with the commit (see send_log_snapshot):
    // the checkpoint taken at this commit point must be able to re-serve
    // pre-checkpoint border sends even after this process dies.
    try {
      store_->put(send_log_snapshot(rank),
                  encode_send_log(slot.sent_log, slot.sent_hashes));
    } catch (const std::exception& e) {
      MOJAVE_LOG(kWarn, "dnode")
          << "rank " << rank << " send-log persist failed: " << e.what();
    }
    send_to_coordinator(encode_commit_discharge(rank));
  });
}

RankScheduler::Step NodeAgent::step_rank(RankSlot& slot) {
  vm::SliceResult r;
  try {
    r = slot.process->vm().run_slice(cfg_.slice_instructions);
  } catch (const AgentStopping&) {
    finish_rank(slot, 2, 0, "stopped");
    return RankScheduler::Step{RankScheduler::Step::Kind::kDone, 0, 0};
  } catch (const std::exception& e) {
    finish_rank(slot, 2, 0, e.what());
    return RankScheduler::Step{RankScheduler::Step::Kind::kDone, 0, 0};
  }
  switch (r.status) {
    case vm::SliceResult::Status::kPreempted:
      return RankScheduler::Step{RankScheduler::Step::Kind::kYield, 0, 0};
    case vm::SliceResult::Status::kBlocked:
      return RankScheduler::Step{RankScheduler::Step::Kind::kBlocked,
                                 slot.pending_wait_key, r.block_deadline};
    case vm::SliceResult::Status::kMigratedAway:
      if (slot.yield_hook && slot.yield_hook->yielded()) {
        AgentMetrics::get().yields.inc();
        MOJAVE_LOG(kInfo, "dnode") << "rank " << slot.rank << " yielded";
        send_to_coordinator(encode_rank_yielded(slot.rank, true));
        slot.yielded = true;
        slot.done.store(true);
        return RankScheduler::Step{RankScheduler::Step::Kind::kDone, 0, 0};
      }
      finish_rank(slot, 1, r.exit_code, "");
      return RankScheduler::Step{RankScheduler::Step::Kind::kDone, 0, 0};
    case vm::SliceResult::Status::kHalted:
    default:
      finish_rank(slot, 0, r.exit_code, "");
      return RankScheduler::Step{RankScheduler::Step::Kind::kDone, 0, 0};
  }
}

void NodeAgent::finish_rank(RankSlot& slot, int result_kind,
                            std::int64_t exit_code, const std::string& error) {
  Msg res;
  res.type = MsgType::kResult;
  res.rank = slot.rank;
  res.result_kind = static_cast<std::uint8_t>(result_kind);
  res.exit_code = exit_code;
  res.error = error;
  res.output = slot.output.str();
  if (slot.process) {
    res.instructions = slot.process->vm().stats().instructions;
    const spec::SpecStats& st = slot.process->spec().stats();
    res.speculates = st.speculates;
    res.commits = st.commits;
    res.rollbacks = st.rollbacks;
  }
  res.has_reported = slot.has_reported.load();
  res.reported = slot.reported.load();
  slot.last_result = encode_result(res);
  if (!stopping_.load()) send_to_coordinator(slot.last_result);
  slot.done.store(true);
}

void NodeAgent::adopt_slot(std::uint32_t rank,
                           std::unique_ptr<RankSlot> slot) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_[rank] = std::move(slot);
}

void NodeAgent::launch_rank(std::uint32_t rank, std::vector<std::byte> image) {
  AgentMetrics::get().launches.inc();
  if (RankSlot* existing = find_slot(rank)) {
    if (!existing->done.load()) return;  // already running here
    sched_.remove(rank);
    std::lock_guard<std::mutex> lock(mu_);
    slots_.erase(rank);
  }
  obs::ScopedSpan span("dnode", "agent.run_rank");
  span.set_arg("rank", rank);
  auto slot = std::make_unique<RankSlot>();
  slot->rank = rank;
  RankSlot* sp = slot.get();
  try {
    fir::Program prog = fir::decode_program(image);
    vm::ProcessConfig pcfg;
    pcfg.heap = cfg_.heap;
    pcfg.max_instructions = max_instructions_;
    sp->process = std::make_unique<vm::Process>(std::move(prog), pcfg);
    register_externals(*sp->process, *sp);
    sp->migrator = std::make_unique<migrate::Migrator>(*sp->process);
    sp->yield_hook = std::make_unique<YieldHook>(
        *sp->process, *sp->migrator, sp->yield_requested);
    sp->process->vm().start(sp->process->vm().compiled().entry, {});
  } catch (const std::exception& e) {
    finish_rank(*sp, 2, 0, e.what());
    adopt_slot(rank, std::move(slot));
    return;
  }
  adopt_slot(rank, std::move(slot));
  sched_.spawn(rank, [this, sp](RankScheduler::FiberId) {
    return step_rank(*sp);
  });
}

void NodeAgent::resurrect_rank(std::uint32_t rank, std::uint64_t commit_seq) {
  if (RankSlot* existing = find_slot(rank)) {
    if (!existing->done.load()) return;  // at-most-one incarnation here
    sched_.remove(rank);
    std::lock_guard<std::mutex> lock(mu_);
    slots_.erase(rank);
  }
  obs::ScopedSpan span("dnode", "agent.resume_rank");
  span.set_arg("rank", rank);
  auto slot = std::make_unique<RankSlot>();
  slot->rank = rank;
  slot->commit_seq.store(commit_seq);
  RankSlot* sp = slot.get();
  try {
    const auto image = store_->restore("rank_" + std::to_string(rank));
    if (!image.has_value()) {
      send_to_coordinator(encode_rank_up(rank, false));
      sp->done.store(true);
      adopt_slot(rank, std::move(slot));
      return;
    }
    vm::ProcessConfig pcfg;
    pcfg.heap = cfg_.heap;
    pcfg.max_instructions = max_instructions_;
    migrate::UnpackResult unpacked = migrate::unpack_process(*image, pcfg);
    // The previous incarnation's sender replay log, persisted at its last
    // commit. Without it this incarnation could not answer REPLAY_REQs
    // for border messages sent before the checkpoint — messages a peer
    // may have lost with the dead agent and still be parked on. The
    // restored sent_hashes keep lazy cancellation across incarnations:
    // deterministic re-sends of the same windows go out at level 0.
    if (const auto log = store_->restore(send_log_snapshot(rank))) {
      try {
        decode_send_log(*log, sp->sent_log, sp->sent_hashes);
      } catch (const std::exception& e) {
        MOJAVE_LOG(kWarn, "dnode")
            << "rank " << rank << " send-log restore failed: " << e.what();
        sp->sent_log.clear();
        sp->sent_hashes.clear();
      }
    }
    sp->process = std::move(unpacked.process);
    register_externals(*sp->process, *sp);
    sp->migrator = std::make_unique<migrate::Migrator>(*sp->process);
    sp->yield_hook = std::make_unique<YieldHook>(
        *sp->process, *sp->migrator, sp->yield_requested);
    sp->process->vm().start(unpacked.resume_fun,
                            std::move(unpacked.resume_args));
    AgentMetrics::get().resurrections.inc();
    MOJAVE_LOG(kInfo, "dnode")
        << "resurrecting rank " << rank << " from checkpoint";
    send_to_coordinator(encode_rank_up(rank, true));
  } catch (const std::exception& e) {
    MOJAVE_LOG(kWarn, "dnode")
        << "resurrect rank " << rank << " failed: " << e.what();
    send_to_coordinator(encode_rank_up(rank, false));
    sp->done.store(true);
    adopt_slot(rank, std::move(slot));
    return;
  }
  adopt_slot(rank, std::move(slot));
  sched_.spawn(rank, [this, sp](RankScheduler::FiberId) {
    return step_rank(*sp);
  });
}

}  // namespace mojave::dnode
