// FNV-1a hashing, used to checksum serialized process images so transport
// corruption is detected before unpack attempts to rebuild a heap from a
// damaged stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace mojave {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

[[nodiscard]] inline std::uint64_t fnv1a(std::span<const std::byte> data,
                                         std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (std::byte b : data) {
    h ^= static_cast<std::uint8_t>(b);
    h *= kFnvPrime;
  }
  return h;
}

[[nodiscard]] inline std::uint64_t fnv1a(std::string_view s,
                                         std::uint64_t seed = kFnvOffset) {
  return fnv1a(std::as_bytes(std::span(s.data(), s.size())), seed);
}

}  // namespace mojave
