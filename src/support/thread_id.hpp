// Small dense thread ids for telemetry. std::thread::id is opaque and
// wide; log records and trace events want a stable small integer that is
// assigned on first use and never reused within the process.
#pragma once

#include <atomic>
#include <cstdint>

namespace mojave {

/// Dense 1-based id of the calling thread, assigned on first use.
inline std::uint32_t small_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace mojave
