// Canonical serialization streams.
//
// The paper requires "standard byte ordering and alignment rules on heap
// data" so state can migrate across heterogeneous architectures
// (Section 4.2.2). Every serialized integer is little-endian at a fixed
// width; floats use the IEEE-754 binary64 bit pattern. Readers validate
// bounds on every access so a corrupt or malicious image cannot crash the
// unpacking host.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace mojave {

/// Append-only byte sink producing the canonical wire format.
class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v) { buf_.push_back(std::byte{v}); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    put_le(bits);
  }

  /// Length-prefixed string (u32 length + raw bytes, no terminator).
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(std::as_bytes(std::span(s.data(), s.size())));
  }

  void bytes(std::span<const std::byte> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::span<const std::byte> view() const { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }

  /// Patch a previously written u32 at `pos` (used for back-filled sizes).
  void patch_u32(std::size_t pos, std::uint32_t v) {
    if (pos + 4 > buf_.size()) throw ImageError("patch out of range");
    for (int i = 0; i < 4; ++i) {
      buf_[pos + static_cast<std::size_t>(i)] =
          std::byte{static_cast<std::uint8_t>(v >> (8 * i))};
    }
  }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(std::byte{static_cast<std::uint8_t>(v >> (8 * i))});
    }
  }

  std::vector<std::byte> buf_;
};

/// Bounds-checked reader over a canonical byte stream.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  [[nodiscard]] std::uint16_t u16() { return get_le<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return get_le<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return get_le<std::uint64_t>(); }
  [[nodiscard]] std::int32_t i32() {
    return static_cast<std::int32_t>(get_le<std::uint32_t>());
  }
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(get_le<std::uint64_t>());
  }

  [[nodiscard]] double f64() {
    const std::uint64_t bits = get_le<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  [[nodiscard]] std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] std::span<const std::byte> bytes(std::size_t n) {
    need(n);
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) throw ImageError("truncated stream");
  }

  template <typename T>
  [[nodiscard]] T get_le() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(
          v | (static_cast<T>(static_cast<std::uint8_t>(data_[pos_ + i]))
               << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace mojave
