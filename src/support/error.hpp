// Error taxonomy for the Mojave runtime and compiler.
//
// The compiler "is in an ideal position to enforce safety in a program, by
// introducing runtime safety checks" (paper, Section 3). Violations of those
// checks surface as SafetyError; static violations surface as TypeError.
#pragma once

#include <stdexcept>
#include <string>

namespace mojave {

/// Base class for all errors raised by Mojave components.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A runtime safety-check failure: invalid pointer-table index, free entry,
/// out-of-bounds offset, or a heap value used at the wrong type.
class SafetyError : public Error {
 public:
  explicit SafetyError(const std::string& what) : Error("safety: " + what) {}
};

/// A static type error detected by the FIR typechecker or MojC frontend.
class TypeError : public Error {
 public:
  explicit TypeError(const std::string& what) : Error("type: " + what) {}
};

/// Malformed source program (lexing / parsing).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse: " + what) {}
};

/// Corrupt or incompatible serialized state image.
class ImageError : public Error {
 public:
  explicit ImageError(const std::string& what) : Error("image: " + what) {}
};

/// Failure in the migration machinery (transport, server, protocol).
class MigrateError : public Error {
 public:
  explicit MigrateError(const std::string& what) : Error("migrate: " + what) {}
};

/// Misuse of the speculation primitives (bad level, commit at level 0, ...).
class SpecError : public Error {
 public:
  explicit SpecError(const std::string& what) : Error("spec: " + what) {}
};

/// Network-substrate failure (node down, partition, connection refused).
class NetError : public Error {
 public:
  explicit NetError(const std::string& what) : Error("net: " + what) {}
};

/// A network operation exceeded its deadline (connect, send, or recv).
/// Distinct from NetError so retry loops can tell "slow" from "refused".
class NetTimeout : public NetError {
 public:
  explicit NetTimeout(const std::string& what) : NetError("timeout: " + what) {}
};

}  // namespace mojave
