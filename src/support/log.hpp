// Minimal leveled logger. Cluster daemons and the migration server log
// through this; tests silence it by default.
#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace mojave {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  /// Alternative destination for formatted records. Receives the level,
  /// component tag, and message body (without timestamp/thread prefix —
  /// sinks add their own framing). Replaces the stderr output; pass
  /// nullptr to restore it.
  using Sink =
      std::function<void(LogLevel, const std::string&, const std::string&)>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  void set_sink(Sink sink);

  void write(LogLevel level, const std::string& component,
             const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
  std::mutex mu_;
};

/// Streams a single log record on destruction, e.g.
///   MOJAVE_LOG(kInfo, "migrate") << "packed " << n << " blocks";
class LogRecord {
 public:
  LogRecord(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogRecord() {
    if (level_ >= Logger::instance().level()) {
      Logger::instance().write(level_, component_, out_.str());
    }
  }
  LogRecord(const LogRecord&) = delete;
  LogRecord& operator=(const LogRecord&) = delete;

  template <typename T>
  LogRecord& operator<<(const T& v) {
    if (level_ >= Logger::instance().level()) out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream out_;
};

}  // namespace mojave

#define MOJAVE_LOG(level, component) \
  ::mojave::LogRecord(::mojave::LogLevel::level, (component))
