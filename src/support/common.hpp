// Common small utilities shared by every Mojave module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace mojave {

/// Version of the on-disk / on-wire state image format. Bumped whenever
/// the serialized layout of programs or process images changes.
inline constexpr std::uint32_t kImageFormatVersion = 3;

/// Magic prefix for serialized process images ("MOJV").
inline constexpr std::uint32_t kImageMagic = 0x4d4f4a56;

/// Index into the pointer table. Index 0 is reserved as the null pointer,
/// matching the paper's "free entry" validation rule: a valid base pointer
/// is a non-zero index whose table entry is occupied.
using BlockIndex = std::uint32_t;
inline constexpr BlockIndex kNullIndex = 0;

/// Index into the function table.
using FunIndex = std::uint32_t;

/// Speculation level. Level 0 means "not speculating"; active levels are
/// numbered 1..N with 1 the oldest, as in the paper (Section 4.3.1).
using SpecLevel = std::uint32_t;

/// Label correlating a runtime migration point with its FIR location.
using MigrateLabel = std::uint32_t;

}  // namespace mojave
