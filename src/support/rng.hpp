// Deterministic random-number generation for workloads and fault injection.
//
// Benchmarks and failure-injection tests must be reproducible run-to-run,
// so all stochastic behaviour in the repository goes through this
// SplitMix64-based generator with an explicit seed.
#pragma once

#include <cstdint>

namespace mojave {

/// SplitMix64: tiny, fast, and statistically adequate for workload shaping.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace mojave
