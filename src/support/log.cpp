#include "support/log.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>

#include "support/thread_id.hpp"

namespace mojave {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  localtime_r(&secs, &tm);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%H:%M:%S", &tm);

  std::lock_guard<std::mutex> lock(mu_);
  if (sink_) {
    sink_(level, component, message);
    return;
  }
  std::fprintf(stderr, "[%s.%03lld t%02u] %-5s %-10s %s\n", stamp,
               static_cast<long long>(ms), small_thread_id(),
               level_name(level), component.c_str(), message.c_str());
}

}  // namespace mojave
