#include "support/log.hpp"

#include <chrono>
#include <cstdio>

namespace mojave {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  const auto now = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count();
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "[%8lld.%03lld] %-5s %-10s %s\n",
               static_cast<long long>(now / 1000),
               static_cast<long long>(now % 1000), level_name(level),
               component.c_str(), message.c_str());
}

}  // namespace mojave
