// Wall-clock stopwatch used by the benchmark harness to break a migration
// into its pack / transfer / recompile / unpack phases, mirroring the
// phase breakdown reported in Section 5 of the paper.
#pragma once

#include <chrono>

namespace mojave {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mojave
