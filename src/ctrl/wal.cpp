#include "ctrl/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>

#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"

namespace mojave::ctrl {

namespace {

constexpr std::size_t kFrameHeader = 4 + 8;  // body_len + fnv1a(body)

struct WalMetrics {
  obs::Counter& appends;
  obs::Counter& bytes;
  obs::Counter& fsyncs;
  obs::Counter& replayed;
  obs::Counter& sealed_off;
  obs::Counter& truncated;

  static WalMetrics& get() {
    auto& r = obs::MetricsRegistry::instance();
    static WalMetrics m{
        r.counter("ctrl.wal.appends"),    r.counter("ctrl.wal.bytes"),
        r.counter("ctrl.wal.fsyncs"),     r.counter("ctrl.wal.replayed"),
        r.counter("ctrl.wal.sealed_off"), r.counter("ctrl.wal.truncated"),
    };
    return m;
  }
};

std::string segment_name(std::uint64_t epoch) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%016llx.log",
                static_cast<unsigned long long>(epoch));
  return buf;
}

std::optional<std::uint64_t> segment_epoch(const std::filesystem::path& p) {
  const std::string name = p.filename().string();
  if (name.rfind("wal-", 0) != 0 || name.size() != 4 + 16 + 4 ||
      name.compare(name.size() - 4, 4, ".log") != 0) {
    return std::nullopt;
  }
  std::uint64_t epoch = 0;
  for (std::size_t i = 4; i < 4 + 16; ++i) {
    const char c = name[i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint64_t>(c - 'a' + 10);
    else return std::nullopt;
    epoch = (epoch << 4) | digit;
  }
  return epoch;
}

/// One segment fully parsed: whole records with their end offsets. A torn
/// or corrupt record ends the parse (everything after it is unreachable —
/// the writer was single-threaded and append-only).
struct ParsedSegment {
  std::uint64_t epoch = 0;
  std::vector<std::pair<WalRecord, std::uint64_t>> records;  // rec, end off
  std::uint64_t consumed = 0;  ///< byte offset after the last whole record
  bool torn = false;
};

ParsedSegment parse_segment(const std::filesystem::path& path,
                            std::uint64_t epoch) {
  ParsedSegment seg;
  seg.epoch = epoch;
  std::ifstream in(path, std::ios::binary);
  if (!in) return seg;
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  const auto data = std::as_bytes(std::span(raw.data(), raw.size()));
  std::size_t pos = 0;
  while (pos + kFrameHeader <= data.size()) {
    Reader hdr(data.subspan(pos, kFrameHeader));
    const std::uint32_t body_len = hdr.u32();
    const std::uint64_t sum = hdr.u64();
    if (pos + kFrameHeader + body_len > data.size()) {
      seg.torn = true;  // torn tail: the record never fully landed
      break;
    }
    const auto body = data.subspan(pos + kFrameHeader, body_len);
    if (fnv1a(body) != sum) {
      seg.torn = true;  // corrupt tail: treat like a torn record
      break;
    }
    WalRecord rec;
    try {
      rec = WalRecord::decode_body(body);
    } catch (const ImageError&) {
      seg.torn = true;
      break;
    }
    pos += kFrameHeader + body_len;
    seg.records.emplace_back(std::move(rec),
                             static_cast<std::uint64_t>(pos));
    seg.consumed = pos;
  }
  if (pos != data.size()) seg.torn = true;  // partial header at the tail
  return seg;
}

}  // namespace

const char* wal_op_name(WalOp op) {
  switch (op) {
    case WalOp::kMeta: return "meta";
    case WalOp::kTakeover: return "takeover";
    case WalOp::kPlacement: return "placement";
    case WalOp::kAgentDown: return "agent-down";
    case WalOp::kDepRecord: return "dep-record";
    case WalOp::kRollback: return "rollback";
    case WalOp::kCommit: return "commit";
    case WalOp::kResurrectGrant: return "resurrect-grant";
    case WalOp::kRankUp: return "rank-up";
    case WalOp::kCommitSeqSet: return "commit-seq-set";
    case WalOp::kRankResult: return "rank-result";
    case WalOp::kRunComplete: return "run-complete";
  }
  return "?";
}

std::vector<std::byte> WalRecord::encode_body() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(op));
  w.u64(wal_epoch);
  switch (op) {
    case WalOp::kMeta:
      w.u32(num_ranks);
      w.u32(static_cast<std::uint32_t>(agents.size()));
      for (const AgentEndpoint& a : agents) {
        w.str(a.host);
        w.u16(a.port);
      }
      w.u64(max_instructions);
      w.f64(recv_timeout_seconds);
      break;
    case WalOp::kTakeover:
      w.u32(static_cast<std::uint32_t>(seals.size()));
      for (const SegmentSeal& s : seals) {
        w.u64(s.epoch);
        w.u64(s.bytes);
      }
      break;
    case WalOp::kPlacement:
      w.u32(rank);
      w.u32(agent);
      w.u8(alive ? 1 : 0);
      break;
    case WalOp::kAgentDown:
      w.u32(agent);
      break;
    case WalOp::kDepRecord:
      w.u32(sender);
      w.u32(sender_level);
      w.u32(receiver);
      w.u32(receiver_level);
      w.u64(epoch);
      w.u64(commit_seq);
      break;
    case WalOp::kRollback:
      w.u32(rank);
      w.u32(level);
      w.u64(epoch);
      break;
    case WalOp::kCommit:
    case WalOp::kRankUp:
    case WalOp::kRunComplete:
      w.u32(rank);
      break;
    case WalOp::kResurrectGrant:
      w.u32(rank);
      w.u32(agent);
      w.u64(commit_seq);
      break;
    case WalOp::kCommitSeqSet:
      w.u32(rank);
      w.u64(commit_seq);
      break;
    case WalOp::kRankResult:
      w.u32(rank);
      w.u8(result_kind);
      w.i64(exit_code);
      w.u8(has_reported ? 1 : 0);
      w.f64(reported);
      w.str(error);
      w.str(output);
      w.u64(instructions);
      w.u64(speculates);
      w.u64(commits);
      w.u64(rollbacks);
      break;
  }
  return w.take();
}

WalRecord WalRecord::decode_body(std::span<const std::byte> body) {
  Reader r(body);
  WalRecord rec;
  rec.op = static_cast<WalOp>(r.u8());
  rec.wal_epoch = r.u64();
  switch (rec.op) {
    case WalOp::kMeta: {
      rec.num_ranks = r.u32();
      const std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        AgentEndpoint a;
        a.host = r.str();
        a.port = r.u16();
        rec.agents.push_back(std::move(a));
      }
      rec.max_instructions = r.u64();
      rec.recv_timeout_seconds = r.f64();
      break;
    }
    case WalOp::kTakeover: {
      const std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        SegmentSeal s;
        s.epoch = r.u64();
        s.bytes = r.u64();
        rec.seals.push_back(s);
      }
      break;
    }
    case WalOp::kPlacement:
      rec.rank = r.u32();
      rec.agent = r.u32();
      rec.alive = r.u8() != 0;
      break;
    case WalOp::kAgentDown:
      rec.agent = r.u32();
      break;
    case WalOp::kDepRecord:
      rec.sender = r.u32();
      rec.sender_level = r.u32();
      rec.receiver = r.u32();
      rec.receiver_level = r.u32();
      rec.epoch = r.u64();
      rec.commit_seq = r.u64();
      break;
    case WalOp::kRollback:
      rec.rank = r.u32();
      rec.level = r.u32();
      rec.epoch = r.u64();
      break;
    case WalOp::kCommit:
    case WalOp::kRankUp:
    case WalOp::kRunComplete:
      rec.rank = r.u32();
      break;
    case WalOp::kResurrectGrant:
      rec.rank = r.u32();
      rec.agent = r.u32();
      rec.commit_seq = r.u64();
      break;
    case WalOp::kCommitSeqSet:
      rec.rank = r.u32();
      rec.commit_seq = r.u64();
      break;
    case WalOp::kRankResult:
      rec.rank = r.u32();
      rec.result_kind = r.u8();
      rec.exit_code = r.i64();
      rec.has_reported = r.u8() != 0;
      rec.reported = r.f64();
      rec.error = r.str();
      rec.output = r.str();
      rec.instructions = r.u64();
      rec.speculates = r.u64();
      rec.commits = r.u64();
      rec.rollbacks = r.u64();
      break;
    default:
      throw ImageError("wal: unknown record op");
  }
  if (!r.done()) throw ImageError("wal: trailing bytes in record body");
  return rec;
}

WalWriter::WalWriter(std::filesystem::path dir, std::uint64_t epoch)
    : epoch_(epoch) {
  std::filesystem::create_directories(dir);
  path_ = dir / segment_name(epoch);
  // O_APPEND: each record lands whole at the tail; a deposed writer with
  // an fd to an older segment cannot interleave into this one.
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    throw Error("wal: cannot open segment " + path_.string() + ": " +
                std::strerror(errno));
  }
}

WalWriter::~WalWriter() { close(); }

void WalWriter::append(WalRecord rec) {
  if (fd_ < 0) throw Error("wal: append to closed segment");
  rec.wal_epoch = epoch_;
  const std::vector<std::byte> body = rec.encode_body();
  Writer frame;
  frame.u32(static_cast<std::uint32_t>(body.size()));
  frame.u64(fnv1a(body));
  frame.bytes(body);
  const std::vector<std::byte> bytes = frame.take();
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("wal: append failed: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  dirty_ = true;
  ++appended_;
  WalMetrics::get().appends.inc();
  WalMetrics::get().bytes.inc(bytes.size());
}

void WalWriter::flush() {
  if (fd_ < 0 || !dirty_) return;
  ::fsync(fd_);
  dirty_ = false;
  WalMetrics::get().fsyncs.inc();
}

void WalWriter::close() {
  if (fd_ < 0) return;
  flush();
  ::close(fd_);
  fd_ = -1;
}

std::vector<std::filesystem::path> wal_segments(
    const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (segment_epoch(entry.path()).has_value()) out.push_back(entry.path());
  }
  // Epoch is zero-padded hex in the name: lexicographic = numeric order.
  std::sort(out.begin(), out.end());
  return out;
}

ReplayStats replay_wal(const std::filesystem::path& dir,
                       const std::function<void(const WalRecord&)>& apply) {
  ReplayStats stats;
  auto& m = WalMetrics::get();

  std::vector<ParsedSegment> segs;
  for (const std::filesystem::path& path : wal_segments(dir)) {
    const auto epoch = segment_epoch(path);
    segs.push_back(parse_segment(path, *epoch));
  }

  // Collect every seal: a kTakeover in segment E clamps segments < E to
  // the bytes the taking-over coordinator actually consumed. Seals chain
  // across repeated failovers; the tightest clamp wins.
  std::map<std::uint64_t, std::uint64_t> clamp;  // epoch -> byte limit
  for (const ParsedSegment& seg : segs) {
    for (const auto& [rec, end] : seg.records) {
      if (rec.op != WalOp::kTakeover) continue;
      for (const SegmentSeal& s : rec.seals) {
        if (s.epoch >= seg.epoch) continue;  // malformed seal; ignore
        const auto it = clamp.find(s.epoch);
        if (it == clamp.end() || s.bytes < it->second) clamp[s.epoch] = s.bytes;
      }
    }
  }

  for (const ParsedSegment& seg : segs) {
    ++stats.segments;
    if (seg.torn) {
      ++stats.truncated;
      m.truncated.inc();
    }
    const auto it = clamp.find(seg.epoch);
    const std::uint64_t limit =
        it == clamp.end() ? ~std::uint64_t{0} : it->second;
    std::uint64_t consumed = 0;
    for (const auto& [rec, end] : seg.records) {
      if (end > limit) {
        // A fenced zombie's append: written after a successor sealed
        // this segment. Reject it.
        ++stats.sealed_off;
        m.sealed_off.inc();
        continue;
      }
      consumed = end;
      if (rec.op == WalOp::kTakeover) continue;  // replayer-internal
      apply(rec);
      ++stats.records;
      m.replayed.inc();
    }
    stats.max_epoch = std::max(stats.max_epoch, seg.epoch);
    stats.consumed.push_back(SegmentSeal{seg.epoch, consumed});
  }
  if (stats.records > 0 || stats.sealed_off > 0) {
    MOJAVE_LOG(kInfo, "ctrl")
        << "wal replay: " << stats.records << " records from "
        << stats.segments << " segments (sealed-off " << stats.sealed_off
        << ", torn " << stats.truncated << ")";
  }
  return stats;
}

}  // namespace mojave::ctrl
