// The coordinator's replicated state machine.
//
// Everything the coordinator must not forget across a crash lives here:
// rank placement, the speculation join's DependencyTracker, per-rank
// rollback fences and commit counts, and terminal rank outcomes. The
// live coordinator mutates this state ONLY through apply() — the same
// function WAL replay calls — so "replay the log" and "run the
// transitions live" are one code path and the rebuilt state bit-matches
// the original by construction (snapshot_bytes() is the canonical image
// the equivalence tests compare).
//
// apply() returns the side effects the caller owes the wire: which ranks
// to poison, whether a dep record was fenced stale. The live coordinator
// turns those into POISON frames; replay drops them (the frames either
// reached their agents before the crash or the RE-ADOPT census will
// reconcile).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "cluster/tracker.hpp"
#include "ctrl/wal.hpp"

namespace mojave::ctrl {

constexpr std::uint32_t kNoAgent = ~std::uint32_t{0};

/// Rollback fence (docs/SPECULATION.md, "epoch fencing"): a DEP_RECORD
/// whose (epoch, sender_level) predates one of these joins a speculation
/// that no longer exists. `commits` is the rank's discharge count at the
/// rollback, so committed data re-consumed late is not poisoned.
struct RollbackFence {
  std::uint64_t epoch = 0;
  std::uint32_t level = 0;
  std::uint64_t commits = 0;
};

/// One rank's placement.
struct RankPlacement {
  std::uint32_t agent = 0;
  bool alive = false;
};

/// Final state of one rank, aggregated across incarnations (mirrors
/// dnode::RankOutcome minus the rank number, which is the index).
struct RankState {
  bool done = false;
  std::uint8_t result_kind = 0;
  std::int64_t exit_code = 0;
  std::string error;
  std::string output;
  bool has_reported = false;
  double reported = 0;
  std::uint64_t instructions = 0;
  std::uint64_t speculates = 0, commits = 0, rollbacks = 0;
  std::uint64_t restarts = 0;
};

class CoordState {
 public:
  struct ApplyResult {
    /// Ranks the transition poisoned (live coordinator: send POISON).
    std::vector<std::uint32_t> poisoned;
    /// kDepRecord only: the record was fenced stale (receiver poisoned).
    bool stale_dep = false;
    /// kRankResult only: the rank was already done (duplicate RESULT
    /// re-sent across a failover; the transition was a no-op).
    bool duplicate_result = false;
  };

  /// The one transition function. NOT thread-safe; callers serialize
  /// (the coordinator under its mutex, replay single-threaded).
  ApplyResult apply(const WalRecord& rec);

  // --- read side --------------------------------------------------------
  [[nodiscard]] std::uint32_t num_ranks() const { return num_ranks_; }
  [[nodiscard]] const std::vector<AgentEndpoint>& agents() const {
    return agents_;
  }
  [[nodiscard]] std::uint64_t max_instructions() const {
    return max_instructions_;
  }
  [[nodiscard]] double recv_timeout_seconds() const {
    return recv_timeout_seconds_;
  }
  [[nodiscard]] const std::vector<RankPlacement>& placement() const {
    return placement_;
  }
  [[nodiscard]] const std::vector<RankState>& ranks() const { return ranks_; }
  [[nodiscard]] std::uint64_t commit_count(std::uint32_t rank) const;
  [[nodiscard]] bool run_complete() const { return run_complete_; }
  [[nodiscard]] bool all_done() const;
  [[nodiscard]] cluster::DependencyTracker& tracker() { return tracker_; }

  /// Canonical byte image of the whole state (placement, fences, commit
  /// counts, outcomes, tracker). Two CoordStates that applied equivalent
  /// transition streams produce identical bytes.
  [[nodiscard]] std::vector<std::byte> snapshot_bytes() const;

 private:
  static constexpr std::size_t kRollbackRingCap = 64;

  void push_fence(std::uint32_t rank, RollbackFence f);

  std::uint32_t num_ranks_ = 0;
  std::vector<AgentEndpoint> agents_;
  std::uint64_t max_instructions_ = 0;
  double recv_timeout_seconds_ = 30.0;

  std::vector<RankPlacement> placement_;
  std::vector<RankState> ranks_;
  std::map<std::uint32_t, std::uint64_t> commit_counts_;
  std::map<std::uint32_t, std::deque<RollbackFence>> rollback_ring_;
  cluster::DependencyTracker tracker_;
  bool run_complete_ = false;
};

}  // namespace mojave::ctrl
