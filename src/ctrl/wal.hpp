// Control-plane write-ahead log.
//
// The coordinator is the cluster's brain: placement, the speculation
// join's dependency state, rollback fences, commit counts, resurrection
// grants. All of it used to live only in that one process's memory — a
// `kill -9` of `mojc cluster` lost the run. The WAL makes every
// coordinator state transition durable *before* its side effects go out
// on the wire, so a restarted (or standby) coordinator can replay the log
// through the same `ctrl::CoordState` transition function the live
// coordinator uses and arrive at bit-identical state (the replay
// equivalence the tests pin).
//
// On-disk format (docs/CONTROL_PLANE.md): one segment file per
// coordinator incarnation, named `wal-<epoch16>.log` where `epoch` is the
// writer's lease epoch — lexicographic file order is epoch order. Each
// record is length-framed and checksummed:
//
//   u32 body_len | u64 fnv1a(body) | body
//   body := u8 op | u64 wal_epoch | op-specific fields
//
// Appends are a single write(2) to an O_APPEND fd; fsync is batched (the
// coordinator's monitor tick calls flush()) and forced on close. A crash
// can therefore tear at most the tail record, and replay stops cleanly at
// the last whole record (`truncated` counts it).
//
// Zombie fencing: a deposed primary still holds an O_APPEND fd to its old
// segment, so its post-takeover writes land *behind* the new epoch's
// segment in replay order — an epoch comparison at read time cannot catch
// them. Instead, the first record a takeover writes is a kTakeover seal
// naming how many bytes of each prior segment it consumed; replay clamps
// every sealed segment to its sealed length, so anything a zombie
// appended after the handoff is provably unreachable.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "support/serialize.hpp"

namespace mojave::ctrl {

/// One coordinator state transition. Ops mirror the coordinator's
/// mutation sites one-to-one; `CoordState::apply` is the shared
/// transition function.
enum class WalOp : std::uint8_t {
  kMeta = 1,        ///< run configuration (opens the first segment)
  kTakeover,        ///< new epoch's seal over prior segments (fencing)
  kPlacement,       ///< rank placed on agent (or marked not-alive)
  kAgentDown,       ///< failure detector verdict: agent is dead
  kDepRecord,       ///< speculation join: receiver consumed sender's data
  kRollback,        ///< ROLL_POISON: rank rolled back `level`
  kCommit,          ///< COMMIT_DISCHARGE: rank committed to zero
  kResurrectGrant,  ///< resurrection issued: rank -> target agent
  kRankUp,          ///< RANK_UP ok: incarnation is live
  kCommitSeqSet,    ///< census reconciliation raised a rank's commit count
  kRankResult,      ///< terminal RESULT for a rank
  kRunComplete,     ///< every rank reported; the run is over
};

[[nodiscard]] const char* wal_op_name(WalOp op);

/// Endpoint of one agent (ctrl's copy of dnode::AgentAddr — ctrl sits
/// below dnode in the library graph and cannot include its headers).
struct AgentEndpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// How much of segment `epoch` the sealing coordinator consumed; bytes
/// beyond this are a fenced zombie's and must never replay.
struct SegmentSeal {
  std::uint64_t epoch = 0;
  std::uint64_t bytes = 0;
};

/// Flat superset of every op's fields (same shape as dnode::Msg: a
/// 12-way variant would cost more than it buys on an internal format).
struct WalRecord {
  WalOp op = WalOp::kMeta;
  std::uint64_t wal_epoch = 0;  ///< writer's lease epoch

  // kMeta
  std::uint32_t num_ranks = 0;
  std::vector<AgentEndpoint> agents;
  std::uint64_t max_instructions = 0;
  double recv_timeout_seconds = 0;

  // kTakeover
  std::vector<SegmentSeal> seals;

  // kPlacement / kAgentDown / kResurrectGrant / kRankUp / ...
  std::uint32_t rank = 0;
  std::uint32_t agent = 0;
  bool alive = false;

  // kDepRecord
  std::uint32_t sender = 0, sender_level = 0;
  std::uint32_t receiver = 0, receiver_level = 0;

  // kDepRecord / kRollback (rollback epoch, not the lease epoch)
  std::uint64_t epoch = 0;
  // kDepRecord / kResurrectGrant / kCommitSeqSet
  std::uint64_t commit_seq = 0;

  // kRollback
  std::uint32_t level = 0;

  // kRankResult
  std::uint8_t result_kind = 0;
  std::int64_t exit_code = 0;
  bool has_reported = false;
  double reported = 0;
  std::string error;
  std::string output;
  std::uint64_t instructions = 0;
  std::uint64_t speculates = 0, commits = 0, rollbacks = 0;

  [[nodiscard]] std::vector<std::byte> encode_body() const;
  /// Throws ImageError on a malformed body (callers treat that the same
  /// as a checksum mismatch: the record never happened).
  [[nodiscard]] static WalRecord decode_body(std::span<const std::byte> body);
};

/// Appender for one coordinator incarnation's segment. Not thread-safe;
/// the coordinator appends only under its state mutex.
class WalWriter {
 public:
  /// Creates `dir/wal-<epoch16>.log` (dir is created if missing).
  WalWriter(std::filesystem::path dir, std::uint64_t epoch);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Frame, checksum, and append one record (stamps rec.wal_epoch).
  /// Throws Error if the segment is closed or the write fails short.
  void append(WalRecord rec);

  /// fsync if anything was appended since the last flush.
  void flush();

  /// flush + close(2). Idempotent; the destructor calls it.
  void close();

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }
  [[nodiscard]] std::uint64_t appended() const { return appended_; }

 private:
  std::filesystem::path path_;
  std::uint64_t epoch_ = 0;
  int fd_ = -1;
  bool dirty_ = false;
  std::uint64_t appended_ = 0;
};

struct ReplayStats {
  std::uint64_t segments = 0;
  std::uint64_t records = 0;    ///< applied (seals excluded)
  std::uint64_t sealed_off = 0; ///< bytes clamped off by takeover seals
  std::uint64_t truncated = 0;  ///< torn/corrupt tails stopped at
  std::uint64_t max_epoch = 0;  ///< highest segment epoch seen
  /// Whole-record bytes consumed per segment — exactly what the caller's
  /// own kTakeover record must seal when it becomes the next writer.
  std::vector<SegmentSeal> consumed;
  [[nodiscard]] bool empty() const { return records == 0; }
};

/// Replay every segment under `dir` in epoch order, calling `apply` for
/// each whole, checksummed, unsealed record. A torn or corrupt record
/// ends that segment's replay. kTakeover records are consumed by the
/// replayer itself (they clamp older segments) and are not passed on.
ReplayStats replay_wal(const std::filesystem::path& dir,
                       const std::function<void(const WalRecord&)>& apply);

/// The segment files under `dir`, sorted by epoch (oldest first).
[[nodiscard]] std::vector<std::filesystem::path> wal_segments(
    const std::filesystem::path& dir);

}  // namespace mojave::ctrl
