#include "ctrl/lease.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <random>
#include <vector>

#include "obs/metrics.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"
#include "support/serialize.hpp"

namespace mojave::ctrl {

namespace {

constexpr std::uint32_t kLeaseMagic = 0x314c4a4d;  // "MJL1"
constexpr const char* kLeaseFile = "lease";

std::uint64_t make_nonce() {
  static std::atomic<std::uint64_t> counter{0};
  std::random_device rd;
  const std::uint64_t r =
      (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  return (static_cast<std::uint64_t>(::getpid()) << 40) ^ r ^
         counter.fetch_add(1);
}

}  // namespace

double Lease::wall_now() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

Lease::Lease(std::filesystem::path dir, double ttl_seconds)
    : dir_(std::move(dir)), ttl_(ttl_seconds), nonce_(make_nonce()) {
  std::filesystem::create_directories(dir_);
}

std::optional<Lease::Info> Lease::read(const std::filesystem::path& dir) {
  std::ifstream in(dir / kLeaseFile, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  const auto data = std::as_bytes(std::span(raw.data(), raw.size()));
  if (data.size() < 8) return std::nullopt;
  const auto body = data.first(data.size() - 8);
  std::uint64_t stored = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    stored |= std::to_integer<std::uint64_t>(data[body.size() + i]) << (8 * i);
  }
  if (stored != fnv1a(body)) return std::nullopt;
  try {
    Reader r(body);
    if (r.u32() != kLeaseMagic) return std::nullopt;
    Info info;
    info.epoch = r.u64();
    info.owner = r.u64();
    info.expires_at = r.f64();
    info.ttl_seconds = r.f64();
    return info;
  } catch (const ImageError&) {
    return std::nullopt;
  }
}

bool Lease::write_lease(std::uint64_t epoch, double expires_at) {
  Writer w;
  w.u32(kLeaseMagic);
  w.u64(epoch);
  w.u64(nonce_);
  w.f64(expires_at);
  w.f64(ttl_);
  std::vector<std::byte> body = w.take();
  const std::uint64_t h = fnv1a(body);
  for (std::size_t i = 0; i < 8; ++i) {
    body.push_back(std::byte{static_cast<std::uint8_t>(h >> (8 * i))});
  }
  // Atomic publish: temp + rename, so a reader never sees a half lease.
  const std::filesystem::path tmp =
      dir_ / (std::string(kLeaseFile) + "." + std::to_string(nonce_) + ".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(body.data()),
              static_cast<std::streamsize>(body.size()));
    if (!out.good()) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, dir_ / kLeaseFile, ec);
  return !ec;
}

bool Lease::try_acquire() {
  const double now = wall_now();
  const auto current = read(dir_);
  if (current.has_value() && !current->expired(now)) {
    if (current->owner == nonce_) {
      held_ = true;  // already ours
      return true;
    }
    held_ = false;
    return false;
  }
  const std::uint64_t next_epoch =
      (current.has_value() ? current->epoch : 0) + 1;
  if (!write_lease(next_epoch, now + ttl_)) return false;
  // Read back: if two contenders raced the rename, exactly one nonce
  // survived — that one holds the lease.
  const auto after = read(dir_);
  held_ = after.has_value() && after->owner == nonce_ &&
          after->epoch == next_epoch;
  if (held_) {
    epoch_ = next_epoch;
    obs::MetricsRegistry::instance()
        .gauge("ctrl.lease.epoch")
        .set(static_cast<std::int64_t>(epoch_));
    MOJAVE_LOG(kInfo, "ctrl")
        << "lease acquired: epoch " << epoch_ << " ttl " << ttl_ << "s";
  }
  return held_;
}

bool Lease::renew() {
  if (!held_) return false;
  const auto current = read(dir_);
  if (!current.has_value() || current->owner != nonce_ ||
      current->epoch != epoch_) {
    // Deposed: a standby acquired a newer epoch (or the file was lost).
    held_ = false;
    obs::MetricsRegistry::instance().counter("ctrl.lease.deposed").inc();
    MOJAVE_LOG(kWarn, "ctrl") << "lease lost: epoch " << epoch_
                              << " superseded; this coordinator is fenced";
    return false;
  }
  if (!write_lease(epoch_, wall_now() + ttl_)) return false;
  obs::MetricsRegistry::instance().counter("ctrl.lease.renewals").inc();
  return true;
}

void Lease::release() {
  if (!held_) return;
  const auto current = read(dir_);
  if (current.has_value() && current->owner == nonce_ &&
      current->epoch == epoch_) {
    // Expire in place: a standby polling the lease takes over now rather
    // than after a full TTL.
    write_lease(epoch_, 0.0);
  }
  held_ = false;
}

}  // namespace mojave::ctrl
