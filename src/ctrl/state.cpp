#include "ctrl/state.hpp"

#include <algorithm>

#include "support/serialize.hpp"

namespace mojave::ctrl {

std::uint64_t CoordState::commit_count(std::uint32_t rank) const {
  const auto it = commit_counts_.find(rank);
  return it == commit_counts_.end() ? 0 : it->second;
}

bool CoordState::all_done() const {
  if (ranks_.empty()) return false;
  return std::all_of(ranks_.begin(), ranks_.end(),
                     [](const RankState& r) { return r.done; });
}

void CoordState::push_fence(std::uint32_t rank, RollbackFence f) {
  auto& ring = rollback_ring_[rank];
  ring.push_back(f);
  if (ring.size() > kRollbackRingCap) ring.pop_front();
}

CoordState::ApplyResult CoordState::apply(const WalRecord& rec) {
  ApplyResult result;
  switch (rec.op) {
    case WalOp::kMeta:
      num_ranks_ = rec.num_ranks;
      agents_ = rec.agents;
      max_instructions_ = rec.max_instructions;
      recv_timeout_seconds_ = rec.recv_timeout_seconds;
      placement_.assign(num_ranks_, RankPlacement{kNoAgent, false});
      ranks_.assign(num_ranks_, RankState{});
      break;

    case WalOp::kTakeover:
      break;  // replay-plumbing only; no state

    case WalOp::kPlacement:
      if (rec.rank < placement_.size()) {
        placement_[rec.rank] = RankPlacement{rec.agent, rec.alive};
      }
      break;

    case WalOp::kAgentDown:
      for (std::uint32_t r = 0; r < placement_.size(); ++r) {
        if (placement_[r].agent != rec.agent || !placement_[r].alive) continue;
        placement_[r].alive = false;
        // The rank died with uncommitted speculation: everyone who
        // consumed its speculative sends rolls back with it, and any
        // DEP_RECORD still in flight for it is stale at every level.
        for (const std::uint32_t p : tracker_.on_rollback(r, 1)) {
          (void)tracker_.consume_poison(p);  // delivered as a POISON frame
          result.poisoned.push_back(p);
        }
        push_fence(r, RollbackFence{~std::uint64_t{0}, 1, commit_counts_[r]});
      }
      break;

    case WalOp::kDepRecord: {
      const auto ring = rollback_ring_.find(rec.sender);
      if (ring != rollback_ring_.end()) {
        for (const RollbackFence& f : ring->second) {
          // Commits between the send and this rollback discharged that
          // many levels; what the rollback reverted is only the
          // remainder. Effective level 0 = committed before the rollback.
          const std::uint64_t commits_since =
              f.commits > rec.commit_seq ? f.commits - rec.commit_seq : 0;
          const std::uint32_t effective =
              rec.sender_level > commits_since
                  ? rec.sender_level -
                        static_cast<std::uint32_t>(commits_since)
                  : 0;
          if (effective > 0 && f.epoch > rec.epoch && f.level <= effective) {
            // Epoch fence: the speculation this record would join no
            // longer exists. Poison the receiver instead.
            result.stale_dep = true;
            result.poisoned.push_back(rec.receiver);
            return result;
          }
        }
      }
      tracker_.record(rec.sender, rec.sender_level, rec.receiver,
                      rec.receiver_level);
      break;
    }

    case WalOp::kRollback: {
      for (const std::uint32_t p : tracker_.on_rollback(rec.rank, rec.level)) {
        (void)tracker_.consume_poison(p);
        result.poisoned.push_back(p);
      }
      push_fence(rec.rank,
                 RollbackFence{rec.epoch, rec.level, commit_counts_[rec.rank]});
      break;
    }

    case WalOp::kCommit:
      tracker_.on_commit_to_zero(rec.rank);
      ++commit_counts_[rec.rank];
      rollback_ring_.erase(rec.rank);
      break;

    case WalOp::kResurrectGrant:
      if (rec.rank < placement_.size()) {
        placement_[rec.rank].agent = rec.agent;
      }
      break;

    case WalOp::kRankUp:
      if (rec.rank < placement_.size()) {
        placement_[rec.rank].alive = true;
        rollback_ring_.erase(rec.rank);  // fresh incarnation, fresh epochs
        ranks_[rec.rank].restarts += 1;
      }
      break;

    case WalOp::kCommitSeqSet: {
      auto& count = commit_counts_[rec.rank];
      count = std::max(count, rec.commit_seq);
      break;
    }

    case WalOp::kRankResult:
      if (rec.rank < ranks_.size()) {
        RankState& r = ranks_[rec.rank];
        if (r.done) {
          // Duplicate RESULT (re-sent across a failover): the first one
          // already landed; applying again would double-count.
          result.duplicate_result = true;
          break;
        }
        r.done = true;
        r.result_kind = rec.result_kind;
        r.exit_code = rec.exit_code;
        r.error = rec.error;
        r.output += rec.output;
        r.has_reported = rec.has_reported;
        r.reported = rec.reported;
        r.instructions += rec.instructions;
        r.speculates += rec.speculates;
        r.commits += rec.commits;
        r.rollbacks += rec.rollbacks;
      }
      break;

    case WalOp::kRunComplete:
      run_complete_ = true;
      break;
  }
  return result;
}

std::vector<std::byte> CoordState::snapshot_bytes() const {
  Writer w;
  w.u32(num_ranks_);
  w.u32(static_cast<std::uint32_t>(agents_.size()));
  for (const AgentEndpoint& a : agents_) {
    w.str(a.host);
    w.u16(a.port);
  }
  w.u64(max_instructions_);
  w.f64(recv_timeout_seconds_);
  for (const RankPlacement& p : placement_) {
    w.u32(p.agent);
    w.u8(p.alive ? 1 : 0);
  }
  w.u32(static_cast<std::uint32_t>(commit_counts_.size()));
  for (const auto& [rank, count] : commit_counts_) {
    w.u32(rank);
    w.u64(count);
  }
  w.u32(static_cast<std::uint32_t>(rollback_ring_.size()));
  for (const auto& [rank, ring] : rollback_ring_) {
    w.u32(rank);
    w.u32(static_cast<std::uint32_t>(ring.size()));
    for (const RollbackFence& f : ring) {
      w.u64(f.epoch);
      w.u32(f.level);
      w.u64(f.commits);
    }
  }
  for (const RankState& r : ranks_) {
    w.u8(r.done ? 1 : 0);
    w.u8(r.result_kind);
    w.i64(r.exit_code);
    w.str(r.error);
    w.str(r.output);
    w.u8(r.has_reported ? 1 : 0);
    w.f64(r.reported);
    w.u64(r.instructions);
    w.u64(r.speculates);
    w.u64(r.commits);
    w.u64(r.rollbacks);
    w.u64(r.restarts);
  }
  const std::vector<std::byte> tracker = tracker_.encode_state();
  w.u32(static_cast<std::uint32_t>(tracker.size()));
  w.bytes(tracker);
  w.u8(run_complete_ ? 1 : 0);
  return w.take();
}

}  // namespace mojave::ctrl
