// Coordinator lease: who is allowed to write the control-plane WAL.
//
// A single lease file lives next to the WAL segments. It names the
// current holder (an opaque owner nonce), a fenced epoch, and a wall
// clock expiry. The protocol (docs/CONTROL_PLANE.md):
//
//  * acquire: if the file is absent, unreadable, or expired, write a new
//    lease at epoch+1 with our nonce (temp file + rename, the same
//    atomic-publish idiom as cluster::SharedStorage), then read it back —
//    whoever's nonce survived the rename race owns the lease.
//  * renew: rewrite the same epoch with a fresh expiry. If the file now
//    carries a different owner or a higher epoch, we have been deposed:
//    renew() fails and the holder must stop acting as primary (it is a
//    zombie; its WAL segment has been sealed by the successor).
//  * release: a graceful shutdown expires the lease in place so a standby
//    takes over immediately instead of waiting out the TTL.
//
// Epochs are the fence the rest of the control plane hangs off: the WAL
// segment is named by epoch, HELLO frames carry it so agents reject a
// deposed coordinator, and takeover seals are written under it.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>

namespace mojave::ctrl {

class Lease {
 public:
  struct Info {
    std::uint64_t epoch = 0;
    std::uint64_t owner = 0;
    double expires_at = 0;  ///< wall clock seconds (system_clock)
    double ttl_seconds = 0;
    [[nodiscard]] bool expired(double now) const { return now >= expires_at; }
  };

  /// `dir` holds the lease file (created on first acquire).
  Lease(std::filesystem::path dir, double ttl_seconds);

  /// Try once to become (or stay) the holder. True = we hold the lease.
  bool try_acquire();

  /// Extend our lease. False = deposed (someone else holds a newer
  /// epoch); the caller must stop acting as primary.
  bool renew();

  /// Expire the lease in place if we still hold it (graceful handoff).
  void release();

  [[nodiscard]] bool held() const { return held_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] double ttl_seconds() const { return ttl_; }

  /// Read whatever lease is on disk right now (any process).
  static std::optional<Info> read(const std::filesystem::path& dir);

  /// Wall clock seconds — the shared time base for expiry checks.
  static double wall_now();

 private:
  bool write_lease(std::uint64_t epoch, double expires_at);

  std::filesystem::path dir_;
  double ttl_ = 0;
  std::uint64_t nonce_ = 0;  ///< this process+instance's identity
  std::uint64_t epoch_ = 0;
  bool held_ = false;
};

}  // namespace mojave::ctrl
