// Canonical encoding of tagged Values, shared by the migration image
// format and the cluster message-passing layer. A value is a tag byte
// followed by its payload in canonical little-endian form; pointers encode
// as (table index, offset) — indices, never addresses, which is what makes
// the encoding position- and architecture-independent.
#pragma once

#include "runtime/value.hpp"
#include "support/serialize.hpp"

namespace mojave::runtime {

inline void write_value(Writer& w, const Value& v) {
  w.u8(static_cast<std::uint8_t>(v.tag()));
  switch (v.tag()) {
    case Tag::kUnit:
      break;
    case Tag::kInt:
      w.i64(v.as_int());
      break;
    case Tag::kFloat:
      w.f64(v.as_float());
      break;
    case Tag::kPtr:
      w.u32(v.as_ptr().index);
      w.u32(v.as_ptr().offset);
      break;
    case Tag::kFun:
      w.u32(v.as_fun());
      break;
  }
}

[[nodiscard]] inline Value read_value(Reader& r) {
  const std::uint8_t tag = r.u8();
  switch (static_cast<Tag>(tag)) {
    case Tag::kUnit:
      return Value::unit();
    case Tag::kInt:
      return Value::from_int(r.i64());
    case Tag::kFloat:
      return Value::from_float(r.f64());
    case Tag::kPtr: {
      const BlockIndex idx = r.u32();
      const std::uint32_t off = r.u32();
      return Value::from_ptr(idx, off);
    }
    case Tag::kFun:
      return Value::from_fun(r.u32());
  }
  throw ImageError("bad value tag in stream");
}

}  // namespace mojave::runtime
