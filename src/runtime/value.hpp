// Tagged runtime values.
//
// FIR variables are immutable and carry one of five runtime shapes: unit,
// integer, float, pointer, or function reference. Source-level C pointers
// are represented as (base, offset) pairs where the base is an *index* into
// the pointer table, never a machine address (paper, Section 4.1.1). This
// is what makes relocation — and therefore migration, speculation, and
// compaction — possible.
//
// Every accessor performs the runtime type check the paper's backend emits:
// using a value at the wrong tag raises SafetyError instead of reading a
// bit pattern at the wrong type.
#pragma once

#include <cstdint>
#include <string>

#include "support/common.hpp"
#include "support/error.hpp"

namespace mojave::runtime {

enum class Tag : std::uint8_t {
  kUnit = 0,
  kInt = 1,
  kFloat = 2,
  kPtr = 3,
  kFun = 4,
};

[[nodiscard]] const char* tag_name(Tag tag);

/// A (pointer-table index, byte-or-slot offset) pair: the runtime image of
/// a source-level pointer.
struct PtrValue {
  BlockIndex index = kNullIndex;
  std::uint32_t offset = 0;

  [[nodiscard]] bool operator==(const PtrValue&) const = default;
};

/// Trivially copyable 16-byte tagged value. Values live in virtual
/// registers and in tagged heap blocks; because they are self-describing
/// they serialize architecture-independently.
class Value {
 public:
  constexpr Value() : tag_(Tag::kUnit), i_(0) {}

  [[nodiscard]] static Value unit() { return Value(); }
  [[nodiscard]] static Value from_int(std::int64_t v) {
    Value x;
    x.tag_ = Tag::kInt;
    x.i_ = v;
    return x;
  }
  [[nodiscard]] static Value from_float(double v) {
    Value x;
    x.tag_ = Tag::kFloat;
    x.f_ = v;
    return x;
  }
  [[nodiscard]] static Value from_ptr(BlockIndex index,
                                      std::uint32_t offset = 0) {
    Value x;
    x.tag_ = Tag::kPtr;
    x.p_ = PtrValue{index, offset};
    return x;
  }
  [[nodiscard]] static Value from_ptr(PtrValue p) {
    Value x;
    x.tag_ = Tag::kPtr;
    x.p_ = p;
    return x;
  }
  [[nodiscard]] static Value from_fun(FunIndex f) {
    Value x;
    x.tag_ = Tag::kFun;
    x.fun_ = f;
    return x;
  }

  [[nodiscard]] Tag tag() const { return tag_; }
  [[nodiscard]] bool is(Tag t) const { return tag_ == t; }

  [[nodiscard]] std::int64_t as_int() const {
    check(Tag::kInt);
    return i_;
  }
  [[nodiscard]] double as_float() const {
    check(Tag::kFloat);
    return f_;
  }
  [[nodiscard]] PtrValue as_ptr() const {
    check(Tag::kPtr);
    return p_;
  }
  [[nodiscard]] FunIndex as_fun() const {
    check(Tag::kFun);
    return fun_;
  }

  /// Human-readable rendering for diagnostics and the FIR printer.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool operator==(const Value& o) const {
    if (tag_ != o.tag_) return false;
    switch (tag_) {
      case Tag::kUnit:
        return true;
      case Tag::kInt:
        return i_ == o.i_;
      case Tag::kFloat:
        return f_ == o.f_;
      case Tag::kPtr:
        return p_ == o.p_;
      case Tag::kFun:
        return fun_ == o.fun_;
    }
    return false;
  }

 private:
  void check(Tag expected) const {
    if (tag_ != expected) {
      throw SafetyError(std::string("value of type ") + tag_name(tag_) +
                        " used as " + tag_name(expected));
    }
  }

  Tag tag_;
  union {
    std::int64_t i_;
    double f_;
    PtrValue p_;
    FunIndex fun_;
  };
};

static_assert(sizeof(Value) == 16);
static_assert(std::is_trivially_copyable_v<Value>);

}  // namespace mojave::runtime
