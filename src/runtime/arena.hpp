// Bump-pointer arenas backing the two heap generations.
//
// Blocks are allocated contiguously in allocation order; the compacting
// collector exploits this to (a) walk every block in an arena linearly and
// (b) preserve temporal allocation locality when it evacuates live blocks
// in address order (paper, Section 4: compaction "preserves temporal data
// locality").
#pragma once

#include <cstddef>
#include <memory>

#include "runtime/block.hpp"

namespace mojave::runtime {

class Arena {
 public:
  explicit Arena(std::size_t capacity)
      // for_overwrite: no value-initialization — a major collection
      // allocates a fresh arena, and zeroing tens of megabytes per cycle
      // would dominate the pause. Block payloads are always fully
      // initialized by the allocator before use.
      : buf_(std::make_unique_for_overwrite<std::byte[]>(capacity)),
        cap_(capacity) {}

  /// Reserve `footprint` bytes (already 16-byte rounded). Returns nullptr
  /// when the arena cannot fit the request.
  [[nodiscard]] Block* allocate(std::size_t footprint) {
    if (cap_ - used_ < footprint) return nullptr;
    auto* b = reinterpret_cast<Block*>(buf_.get() + used_);
    used_ += footprint;
    return b;
  }

  [[nodiscard]] bool contains(const Block* b) const {
    const auto* p = reinterpret_cast<const std::byte*>(b);
    return p >= buf_.get() && p < buf_.get() + used_;
  }

  [[nodiscard]] std::size_t used() const { return used_; }
  [[nodiscard]] std::size_t capacity() const { return cap_; }

  void reset() { used_ = 0; }

  /// Linear walk over every block currently allocated in this arena.
  template <typename Fn>
  void for_each_block(Fn&& fn) {
    std::size_t off = 0;
    while (off < used_) {
      auto* b = reinterpret_cast<Block*>(buf_.get() + off);
      const std::size_t fp = b->footprint();
      fn(b);
      off += fp;
    }
  }

 private:
  std::unique_ptr<std::byte[]> buf_;
  std::size_t cap_ = 0;
  std::size_t used_ = 0;
};

}  // namespace mojave::runtime
