// The pointer table (paper, Section 4.1.1).
//
// "All non-empty entries in the pointer table contain pointers to valid
// blocks in the heap, and every valid block in the heap has an entry
// allocated for it in the pointer table." Base pointers stored in the heap
// are always table indices; dereferencing validates the index against the
// table size and rejects free entries — the two checks the paper notes can
// be done "in a small number of assembly instructions".
//
// Relocation (GC compaction, migration, speculation COW) only rewrites
// table entries; heap data — which stores indices, not addresses — is
// never touched.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/block.hpp"
#include "support/common.hpp"
#include "support/error.hpp"

namespace mojave::runtime {

class PointerTable {
 public:
  /// Stable-address mirror of the entry array, read directly by the native
  /// execution tier's inlined dereference checks. The table keeps it
  /// current across every structural mutation; GC sweeps null entries in
  /// place (no reallocation), so `data` stays valid across collections.
  struct View {
    Block* const* data = nullptr;
    std::uint64_t size = 0;
  };

  PointerTable() {
    // Entry 0 is permanently free: it is the null pointer.
    entries_.push_back(nullptr);
    refresh_view();
  }

  /// Allocate a fresh entry for `block`, reusing a freed slot if one
  /// exists. Stamps the block's back-index.
  [[nodiscard]] BlockIndex insert(Block* block) {
    BlockIndex idx;
    if (!free_list_.empty()) {
      idx = free_list_.back();
      free_list_.pop_back();
      entries_[idx] = block;
    } else {
      idx = static_cast<BlockIndex>(entries_.size());
      entries_.push_back(block);
      refresh_view();
    }
    block->h.index = idx;
    return idx;
  }

  /// Validated dereference: the hot-path safety check.
  [[nodiscard]] Block* get(BlockIndex idx) const {
    if (idx == kNullIndex || idx >= entries_.size()) {
      throw SafetyError("pointer index " + std::to_string(idx) +
                        " out of table bounds");
    }
    Block* b = entries_[idx];
    if (b == nullptr) {
      throw SafetyError("pointer index " + std::to_string(idx) +
                        " refers to a free table entry");
    }
    return b;
  }

  /// Unchecked access for the collector, which has already validated
  /// liveness invariants.
  [[nodiscard]] Block* raw(BlockIndex idx) const { return entries_[idx]; }

  [[nodiscard]] bool is_free(BlockIndex idx) const {
    return idx == kNullIndex || idx >= entries_.size() ||
           entries_[idx] == nullptr;
  }

  /// Redirect an entry to a different block version (speculation COW,
  /// rollback restore, GC relocation).
  void redirect(BlockIndex idx, Block* block) {
    if (idx == kNullIndex || idx >= entries_.size() ||
        entries_[idx] == nullptr) {
      throw SafetyError("redirect of invalid pointer index " +
                        std::to_string(idx));
    }
    entries_[idx] = block;
    block->h.index = idx;
  }

  /// Rebuild support for unpack: install `block` at exactly `idx`. Entries
  /// must be restored in strictly increasing index order so skipped slots
  /// can be threaded onto the free list; "migration must be careful to
  /// preserve order in the pointer and function tables" (paper, 4.2.2).
  void restore_at(BlockIndex idx, Block* block) {
    if (idx == kNullIndex || idx < entries_.size()) {
      throw ImageError("heap image blocks out of order");
    }
    while (entries_.size() < idx) {
      free_list_.push_back(static_cast<BlockIndex>(entries_.size()));
      entries_.push_back(nullptr);
    }
    entries_.push_back(block);
    refresh_view();
    block->h.index = idx;
  }

  /// Free an entry; idempotent so rollback paths may release entries the
  /// collector already reclaimed.
  void release(BlockIndex idx) {
    if (idx == kNullIndex || idx >= entries_.size() ||
        entries_[idx] == nullptr) {
      return;
    }
    entries_[idx] = nullptr;
    free_list_.push_back(idx);
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t live_entries() const {
    return entries_.size() - free_list_.size() - 1;
  }

  /// Memory overhead of the indirection machinery, reported by the
  /// pointer-table ablation (the paper quotes >12 bytes per block on IA32
  /// including the table).
  [[nodiscard]] std::size_t overhead_bytes() const {
    return entries_.size() * sizeof(Block*) +
           free_list_.size() * sizeof(BlockIndex);
  }

  /// Iterate over occupied entries as (index, Block*&) so the collector
  /// can sweep and patch in one pass.
  template <typename Fn>
  void for_each_entry(Fn&& fn) {
    for (BlockIndex i = 1; i < entries_.size(); ++i) {
      if (entries_[i] != nullptr) fn(i, entries_[i]);
    }
  }

  /// Drop every entry (used when unpacking a migrated image rebuilds the
  /// table from scratch).
  void clear() {
    entries_.assign(1, nullptr);
    free_list_.clear();
    refresh_view();
  }

  /// Address of the mirror; stable for the table's lifetime.
  [[nodiscard]] const View* view() const { return &view_; }

 private:
  friend class Gc;

  void refresh_view() {
    view_.data = entries_.data();
    view_.size = entries_.size();
  }

  std::vector<Block*> entries_;
  std::vector<BlockIndex> free_list_;
  View view_;
};

}  // namespace mojave::runtime
