// Heap blocks.
//
// "Each memory structure, or block, is stored in a heap. Each block has a
// header, and stores its data in an architecture-independent format"
// (paper, Section 4.1). Two kinds exist:
//
//   * kTagged — an array of self-describing Values (ML-style data,
//     closures, migrate_env, message payloads);
//   * kRaw    — an array of bytes with canonical little-endian meaning
//     assigned by the program (C-style buffers and strings). Raw data is
//     what forces the canonical byte-order rule: "an array of characters is
//     indistinguishable from an array of 32-bit integers" (Section 4.2.2).
//
// The header carries the block's own pointer-table index (the paper notes
// this back-index as part of the per-block overhead), its generation and
// mark state for the collector, the speculation epoch stamp used by the
// copy-on-write machinery, and a forwarding pointer used only while the
// compacting collector is moving blocks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

#include "runtime/value.hpp"
#include "support/common.hpp"
#include "support/error.hpp"

namespace mojave::runtime {

enum class BlockKind : std::uint8_t { kTagged = 0, kRaw = 1 };

enum class Generation : std::uint8_t { kYoung = 0, kOld = 1 };

struct Block;

struct BlockHeader {
  /// Epoch of the speculation level under which this block version was
  /// allocated or cloned. Compared against the newest active level's entry
  /// epoch to decide whether a write needs a copy-on-write clone.
  std::uint64_t spec_epoch = 0;
  /// Forwarding pointer, valid only during a collection cycle.
  Block* forward = nullptr;
  /// Back-index: the pointer-table entry that owns (or owned) this block.
  BlockIndex index = kNullIndex;
  /// Number of slots (kTagged) or bytes (kRaw).
  std::uint32_t count = 0;
  BlockKind kind = BlockKind::kTagged;
  Generation generation = Generation::kYoung;
  std::uint8_t mark = 0;
  std::uint8_t in_remembered_set = 0;
};

/// A block is a header immediately followed in arena memory by its payload.
/// Blocks are trivially relocatable: moving one is a memcpy of footprint()
/// bytes plus a pointer-table (or external registry) patch.
struct Block {
  BlockHeader h;

  [[nodiscard]] Value* slots() {
    return reinterpret_cast<Value*>(reinterpret_cast<std::byte*>(this) +
                                    sizeof(Block));
  }
  [[nodiscard]] const Value* slots() const {
    return reinterpret_cast<const Value*>(
        reinterpret_cast<const std::byte*>(this) + sizeof(Block));
  }
  [[nodiscard]] std::byte* bytes() {
    return reinterpret_cast<std::byte*>(this) + sizeof(Block);
  }
  [[nodiscard]] const std::byte* bytes() const {
    return reinterpret_cast<const std::byte*>(this) + sizeof(Block);
  }

  /// Bounds- and kind-checked slot access (a runtime safety check).
  [[nodiscard]] Value& slot(std::uint32_t off) {
    check_tagged(off);
    return slots()[off];
  }
  [[nodiscard]] const Value& slot(std::uint32_t off) const {
    check_tagged(off);
    return slots()[off];
  }

  [[nodiscard]] std::span<std::byte> raw_span() {
    if (h.kind != BlockKind::kRaw) throw SafetyError("raw access to tagged block");
    return {bytes(), h.count};
  }
  [[nodiscard]] std::span<const std::byte> raw_span() const {
    if (h.kind != BlockKind::kRaw) throw SafetyError("raw access to tagged block");
    return {bytes(), h.count};
  }

  /// Payload size in bytes (unpadded).
  [[nodiscard]] std::size_t payload_bytes() const {
    return h.kind == BlockKind::kTagged
               ? static_cast<std::size_t>(h.count) * sizeof(Value)
               : static_cast<std::size_t>(h.count);
  }

  /// Total arena footprint: header + payload, rounded up to 16 bytes so
  /// every block (and its Value payload) stays suitably aligned.
  [[nodiscard]] std::size_t footprint() const {
    return footprint_for(h.kind, h.count);
  }

  [[nodiscard]] static std::size_t footprint_for(BlockKind kind,
                                                 std::uint32_t count) {
    const std::size_t payload =
        kind == BlockKind::kTagged
            ? static_cast<std::size_t>(count) * sizeof(Value)
            : static_cast<std::size_t>(count);
    return (sizeof(Block) + payload + 15) & ~std::size_t{15};
  }

 private:
  void check_tagged(std::uint32_t off) const {
    if (h.kind != BlockKind::kTagged) {
      throw SafetyError("tagged access to raw block");
    }
    if (off >= h.count) {
      throw SafetyError("slot offset " + std::to_string(off) +
                        " out of bounds for block of " +
                        std::to_string(h.count) + " slots");
    }
  }
};

static_assert(sizeof(Block) % alignof(Value) == 0,
              "Value payload must start aligned after the header");
static_assert(std::is_trivially_copyable_v<BlockHeader>);

}  // namespace mojave::runtime
