// The Mojave heap: arenas + pointer table + function table + write
// barriers + copy-on-write support (paper, Sections 4 and 4.1).
//
// All mutation of managed memory funnels through this class so that
//  * every access is validated (pointer-table index check, bounds check,
//    runtime type check),
//  * the speculation manager sees every write before it happens and can
//    clone the target block copy-on-write,
//  * the generational write barrier can maintain the remembered set,
//  * raw (C-style) data is stored in canonical little-endian byte order so
//    images migrate across architectures unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/arena.hpp"
#include "runtime/block.hpp"
#include "runtime/function_table.hpp"
#include "runtime/gc.hpp"
#include "runtime/pointer_table.hpp"
#include "runtime/value.hpp"
#include "support/common.hpp"

namespace mojave::runtime {

struct HeapConfig {
  std::size_t young_capacity = 512 * 1024;
  std::size_t old_capacity = 8 * 1024 * 1024;
  /// When false, every collection is a full major cycle (generational
  /// filtering disabled); used by GC tests and ablations.
  bool generational = true;
  EvacuationOrder evacuation_order = EvacuationOrder::kAddress;
};

struct HeapStats {
  std::uint64_t blocks_allocated = 0;
  std::uint64_t bytes_allocated = 0;
  std::uint64_t cow_clones = 0;
  GcStats gc;
};

/// Installed by the speculation manager; invoked before any block
/// mutation so the pre-write version can be preserved copy-on-write, and
/// after every fresh allocation so entries created inside a speculation
/// level can be released if that level rolls back.
class WriteHook {
 public:
  virtual ~WriteHook() = default;
  virtual void before_write(BlockIndex idx) = 0;
  virtual void after_alloc(BlockIndex /*idx*/) {}
};

class Heap {
 public:
  explicit Heap(HeapConfig cfg = {});

  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  // --- Allocation -------------------------------------------------------

  /// Allocate a tagged block of `nslots` values, each set to `init`.
  [[nodiscard]] BlockIndex alloc_tagged(std::uint32_t nslots,
                                        Value init = Value::unit());
  /// Allocate a raw byte block, zero-filled.
  [[nodiscard]] BlockIndex alloc_raw(std::uint32_t nbytes);
  /// Allocate a raw block holding a copy of `data`.
  [[nodiscard]] BlockIndex alloc_raw_copy(std::span<const std::byte> data);
  /// Allocate a raw block holding `s` followed by a NUL terminator.
  [[nodiscard]] BlockIndex alloc_string(std::string_view s);

  // --- Validated access -------------------------------------------------

  [[nodiscard]] Block* deref(BlockIndex idx) const { return table_.get(idx); }

  [[nodiscard]] Value read_slot(BlockIndex idx, std::uint32_t off) const;
  void write_slot(BlockIndex idx, std::uint32_t off, Value v);

  /// Canonical little-endian load/store in raw blocks. width ∈ {1,2,4,8}.
  [[nodiscard]] std::int64_t raw_load(BlockIndex idx, std::uint32_t off,
                                      std::uint32_t width) const;
  void raw_store(BlockIndex idx, std::uint32_t off, std::uint32_t width,
                 std::int64_t v);
  [[nodiscard]] double raw_load_f64(BlockIndex idx, std::uint32_t off) const;
  void raw_store_f64(BlockIndex idx, std::uint32_t off, double v);

  /// Read a NUL-terminated string starting at (p.index, p.offset).
  [[nodiscard]] std::string read_string(PtrValue p) const;

  // --- Speculation support ---------------------------------------------

  struct ClonePair {
    Block* old_version;  ///< The preserved pre-write version (not in table).
    Block* clone;        ///< The new current version (in the table).
  };

  /// Clone the current version of `idx` and redirect the table entry to
  /// the clone; the old version is returned for the caller's checkpoint
  /// record. The clone is allocated in the *same generation* as the
  /// original so a redirect never turns an old-generation entry young
  /// behind the remembered set's back.
  [[nodiscard]] ClonePair cow_clone(BlockIndex idx);

  /// Stamp used on every allocation/clone; advanced by the speculation
  /// manager on each speculate().
  void set_spec_epoch(std::uint64_t e) { spec_epoch_ = e; }
  [[nodiscard]] std::uint64_t spec_epoch() const { return spec_epoch_; }

  void set_write_hook(WriteHook* hook) { write_hook_ = hook; }

  // --- Roots & collection ------------------------------------------------

  void add_root_provider(RootProvider* p);
  void remove_root_provider(RootProvider* p);

  /// Run a collection now. Migration's pack "first performs garbage
  /// collection on the heap"; tests and benches also call this directly.
  void collect(bool major);

  // --- Introspection ------------------------------------------------------

  [[nodiscard]] PointerTable& table() { return table_; }
  [[nodiscard]] const PointerTable& table() const { return table_; }
  [[nodiscard]] FunctionTable& funs() { return funs_; }
  [[nodiscard]] const FunctionTable& funs() const { return funs_; }
  [[nodiscard]] const HeapStats& stats() const { return stats_; }
  [[nodiscard]] const HeapConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t young_used() const { return young_->used(); }
  [[nodiscard]] std::size_t old_used() const { return old_->used(); }
  /// Sum of live block footprints (walks the table).
  [[nodiscard]] std::size_t live_bytes() const;
  /// Per-block overhead of the indirection design: header + table entry.
  [[nodiscard]] std::size_t per_block_overhead() const {
    return sizeof(Block) + sizeof(Block*);
  }

  /// Drop all blocks and table state (used when unpack rebuilds a heap).
  void reset();

  /// Rebuild support for unpack: allocate a block of the given shape in
  /// the old generation and install it at exactly `idx`. Never collects —
  /// the caller must have sized the heap for the whole image first (a
  /// collection here would sweep the partially restored, root-less heap).
  [[nodiscard]] Block* restore_block(BlockIndex idx, BlockKind kind,
                                     std::uint32_t count);

 private:
  friend class Gc;
  friend class ScopedBlockProtect;

  /// Allocate a block, running collections as needed. `prefer_old` places
  /// the block directly in the old generation (COW clones of old blocks,
  /// oversized blocks).
  [[nodiscard]] Block* allocate_block(BlockKind kind, std::uint32_t count,
                                      bool prefer_old);

  /// Generational write barrier: record old-generation blocks that come to
  /// reference young blocks.
  void barrier(Block* dst, Value v);

  [[nodiscard]] Block* checked_raw_block(BlockIndex idx, std::uint32_t off,
                                         std::uint32_t width) const;

  HeapConfig cfg_;
  PointerTable table_;
  FunctionTable funs_;
  std::unique_ptr<Arena> young_;
  std::unique_ptr<Arena> old_;
  std::vector<BlockIndex> remembered_;
  WriteHook* write_hook_ = nullptr;
  std::vector<RootProvider*> root_providers_;
  /// Blocks protected across a potentially-collecting allocation (clone
  /// sources); enumerated and patched by the collector.
  std::vector<Block*> protected_blocks_;
  std::uint64_t spec_epoch_ = 0;
  HeapStats stats_;
};

/// RAII protection of a block pointer across allocations that may collect.
class ScopedBlockProtect {
 public:
  ScopedBlockProtect(Heap& heap, Block* block);
  ~ScopedBlockProtect();
  ScopedBlockProtect(const ScopedBlockProtect&) = delete;
  ScopedBlockProtect& operator=(const ScopedBlockProtect&) = delete;

  /// Current (possibly relocated) address of the protected block.
  [[nodiscard]] Block* get() const;

 private:
  Heap& heap_;
  std::size_t slot_;
};

/// A simple RootProvider holding explicit Value roots; the embedding API
/// for C++ clients (tests, externals) that hold references across
/// allocations.
class RootSet : public RootProvider {
 public:
  explicit RootSet(Heap& heap) : heap_(heap) { heap_.add_root_provider(this); }
  ~RootSet() override { heap_.remove_root_provider(this); }
  RootSet(const RootSet&) = delete;
  RootSet& operator=(const RootSet&) = delete;

  /// Pin a value; returns a handle slot whose content can be updated.
  std::size_t pin(Value v) {
    values_.push_back(v);
    return values_.size() - 1;
  }
  [[nodiscard]] Value& at(std::size_t slot) { return values_.at(slot); }
  void clear() { values_.clear(); }

  void enumerate_roots(RootVisitor& visitor) override {
    for (const Value& v : values_) visitor.value_root(v);
  }

 private:
  Heap& heap_;
  std::vector<Value> values_;
};

}  // namespace mojave::runtime
