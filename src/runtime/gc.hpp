// Collector interfaces and the Gc driver.
//
// The paper's runtime "manages several tasks, including garbage collection,
// process migration, speculation, and runtime type-checking for heap
// operations. Process migration and speculation are tightly integrated with
// the garbage collector" (Section 4). This header defines the contract of
// that integration:
//
//  * RootProvider — the VM, the speculation manager, and the migration
//    machinery enumerate their roots through this interface;
//  * RootVisitor — roots come in three shapes: tagged values, bare table
//    indices, and *direct block references* (speculation checkpoint records
//    hold superseded block versions that are not in the pointer table; the
//    collector must both keep them alive and patch the reference when
//    compaction moves them).
//
// The collector itself is generational (fast minor phase over the young
// arena, full mark-sweep-compact major phase), and compaction slides live
// blocks in allocation order to preserve temporal locality — or, for the
// A3 ablation, in breadth-first reachability order like a copying
// collector, so the locality claim can be measured.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/block.hpp"
#include "runtime/value.hpp"
#include "support/common.hpp"

namespace mojave::runtime {

class Heap;

class RootVisitor {
 public:
  virtual ~RootVisitor() = default;
  /// A root held as a tagged value (VM registers, saved continuation args).
  virtual void value_root(const Value& v) = 0;
  /// A root held as a bare pointer-table index.
  virtual void index_root(BlockIndex idx) = 0;
  /// A root held as a direct block pointer. The collector keeps *slot
  /// alive, traverses it, and rewrites *slot if the block moves.
  virtual void block_root(Block** slot) = 0;
};

class RootProvider {
 public:
  virtual ~RootProvider() = default;
  virtual void enumerate_roots(RootVisitor& visitor) = 0;
};

/// Order in which the major collector evacuates live blocks.
enum class EvacuationOrder : std::uint8_t {
  /// Sliding compaction in allocation (address) order — the paper's design,
  /// preserving temporal allocation locality.
  kAddress = 0,
  /// Breadth-first reachability order, emulating a Cheney-style copying
  /// collector; used as the baseline in the GC-locality ablation.
  kBreadthFirst = 1,
};

struct GcStats {
  std::uint64_t minor_collections = 0;
  std::uint64_t major_collections = 0;
  std::uint64_t blocks_promoted = 0;
  std::uint64_t entries_freed = 0;
  std::uint64_t bytes_evacuated = 0;
  double pause_seconds_total = 0.0;
};

/// One collection cycle. Constructed, run once, discarded.
class Gc {
 public:
  Gc(Heap& heap, bool major, std::size_t extra_need);

  void run();

 private:
  void minor_cycle();
  void major_cycle();

  void enumerate_all_roots();
  void mark_from(Block* block);
  void trace_slots(Block* block);
  void clear_marks();

  [[nodiscard]] bool is_young(const Block* b) const;

  Heap& heap_;
  bool major_;
  std::size_t extra_need_;

  /// Direct block slots that must be patched after relocation.
  std::vector<Block**> patch_slots_;
  /// FIFO mark worklist; doubles as the breadth-first evacuation order.
  std::vector<Block*> worklist_;
  std::vector<Block*> bfs_order_;
  std::size_t live_bytes_ = 0;
};

}  // namespace mojave::runtime
