#include "runtime/heap.hpp"

#include <algorithm>
#include <cstring>

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace mojave::runtime {

namespace {

struct HeapMetrics {
  obs::Counter& blocks_allocated;
  obs::Counter& bytes_allocated;
  obs::Counter& cow_clones;

  static HeapMetrics& get() {
    static HeapMetrics m{
        obs::MetricsRegistry::instance().counter("heap.blocks_allocated"),
        obs::MetricsRegistry::instance().counter("heap.bytes_allocated"),
        obs::MetricsRegistry::instance().counter("heap.cow_clones"),
    };
    return m;
  }
};

}  // namespace

Heap::Heap(HeapConfig cfg)
    : cfg_(cfg),
      young_(std::make_unique<Arena>(cfg.young_capacity)),
      old_(std::make_unique<Arena>(cfg.old_capacity)) {
  (void)HeapMetrics::get();  // register heap.* metrics eagerly
}

// --- Allocation -----------------------------------------------------------

Block* Heap::allocate_block(BlockKind kind, std::uint32_t count,
                            bool prefer_old) {
  const std::size_t fp = Block::footprint_for(kind, count);
  const auto init = [&](Block* b, Generation gen) {
    b->h = BlockHeader{};
    b->h.spec_epoch = spec_epoch_;
    b->h.count = count;
    b->h.kind = kind;
    b->h.generation = gen;
    ++stats_.blocks_allocated;
    stats_.bytes_allocated += fp;
    HeapMetrics& m = HeapMetrics::get();
    m.blocks_allocated.inc();
    m.bytes_allocated.inc(fp);
    return b;
  };

  // Small allocations go to the nursery; oversized ones and old-generation
  // COW clones go straight to the old space.
  if (!prefer_old && cfg_.generational && fp <= young_->capacity() / 2) {
    if (Block* b = young_->allocate(fp)) return init(b, Generation::kYoung);
    collect(false);
    if (Block* b = young_->allocate(fp)) return init(b, Generation::kYoung);
  }
  if (Block* b = old_->allocate(fp)) return init(b, Generation::kOld);
  Gc(*this, /*major=*/true, fp).run();
  if (Block* b = old_->allocate(fp)) return init(b, Generation::kOld);
  throw Error("heap exhausted: cannot allocate " + std::to_string(fp) +
              " bytes");
}

BlockIndex Heap::alloc_tagged(std::uint32_t nslots, Value init) {
  Block* b = allocate_block(BlockKind::kTagged, nslots, /*prefer_old=*/false);
  Value* s = b->slots();
  for (std::uint32_t i = 0; i < nslots; ++i) s[i] = init;
  const BlockIndex idx = table_.insert(b);
  // An oversized block lands in the old generation at birth; if its fill
  // value references a young block the barrier must see it.
  if (nslots > 0) barrier(b, init);
  if (write_hook_ != nullptr) write_hook_->after_alloc(idx);
  return idx;
}

BlockIndex Heap::alloc_raw(std::uint32_t nbytes) {
  Block* b = allocate_block(BlockKind::kRaw, nbytes, /*prefer_old=*/false);
  std::memset(b->bytes(), 0, nbytes);
  const BlockIndex idx = table_.insert(b);
  if (write_hook_ != nullptr) write_hook_->after_alloc(idx);
  return idx;
}

BlockIndex Heap::alloc_raw_copy(std::span<const std::byte> data) {
  Block* b = allocate_block(BlockKind::kRaw,
                            static_cast<std::uint32_t>(data.size()),
                            /*prefer_old=*/false);
  std::memcpy(b->bytes(), data.data(), data.size());
  const BlockIndex idx = table_.insert(b);
  if (write_hook_ != nullptr) write_hook_->after_alloc(idx);
  return idx;
}

BlockIndex Heap::alloc_string(std::string_view s) {
  Block* b = allocate_block(BlockKind::kRaw,
                            static_cast<std::uint32_t>(s.size() + 1),
                            /*prefer_old=*/false);
  std::memcpy(b->bytes(), s.data(), s.size());
  b->bytes()[s.size()] = std::byte{0};
  const BlockIndex idx = table_.insert(b);
  if (write_hook_ != nullptr) write_hook_->after_alloc(idx);
  return idx;
}

// --- Validated access -------------------------------------------------------

Value Heap::read_slot(BlockIndex idx, std::uint32_t off) const {
  return deref(idx)->slot(off);
}

void Heap::write_slot(BlockIndex idx, std::uint32_t off, Value v) {
  if (write_hook_ != nullptr) write_hook_->before_write(idx);
  Block* b = deref(idx);  // re-deref: the hook may have redirected idx
  b->slot(off) = v;
  barrier(b, v);
}

Block* Heap::checked_raw_block(BlockIndex idx, std::uint32_t off,
                               std::uint32_t width) const {
  if (width != 1 && width != 2 && width != 4 && width != 8) {
    throw SafetyError("raw access width must be 1, 2, 4 or 8");
  }
  Block* b = deref(idx);
  if (b->h.kind != BlockKind::kRaw) {
    throw SafetyError("raw access to tagged block");
  }
  if (off > b->h.count || b->h.count - off < width) {
    throw SafetyError("raw access at offset " + std::to_string(off) +
                      " width " + std::to_string(width) +
                      " overruns block of " + std::to_string(b->h.count) +
                      " bytes");
  }
  return b;
}

std::int64_t Heap::raw_load(BlockIndex idx, std::uint32_t off,
                            std::uint32_t width) const {
  const Block* b = checked_raw_block(idx, off, width);
  const std::byte* p = b->bytes() + off;
  std::uint64_t v = 0;
  for (std::uint32_t i = 0; i < width; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  }
  // Sign-extend from the loaded width.
  if (width < 8) {
    const std::uint64_t sign_bit = std::uint64_t{1} << (8 * width - 1);
    if (v & sign_bit) v |= ~((sign_bit << 1) - 1);
  }
  return static_cast<std::int64_t>(v);
}

void Heap::raw_store(BlockIndex idx, std::uint32_t off, std::uint32_t width,
                     std::int64_t v) {
  if (write_hook_ != nullptr) write_hook_->before_write(idx);
  Block* b = checked_raw_block(idx, off, width);
  std::byte* p = b->bytes() + off;
  const auto u = static_cast<std::uint64_t>(v);
  for (std::uint32_t i = 0; i < width; ++i) {
    p[i] = std::byte{static_cast<std::uint8_t>(u >> (8 * i))};
  }
}

double Heap::raw_load_f64(BlockIndex idx, std::uint32_t off) const {
  const std::int64_t bits = raw_load(idx, off, 8);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void Heap::raw_store_f64(BlockIndex idx, std::uint32_t off, double v) {
  std::int64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  raw_store(idx, off, 8, bits);
}

std::string Heap::read_string(PtrValue p) const {
  const Block* b = deref(p.index);
  if (b->h.kind != BlockKind::kRaw) {
    throw SafetyError("string read from tagged block");
  }
  if (p.offset > b->h.count) throw SafetyError("string read out of bounds");
  std::string out;
  for (std::uint32_t i = p.offset; i < b->h.count; ++i) {
    const char c = static_cast<char>(b->bytes()[i]);
    if (c == '\0') break;
    out.push_back(c);
  }
  return out;
}

// --- Speculation support -----------------------------------------------------

Heap::ClonePair Heap::cow_clone(BlockIndex idx) {
  Block* cur = table_.get(idx);
  const BlockKind kind = cur->h.kind;
  const std::uint32_t count = cur->h.count;
  const bool prefer_old = cur->h.generation == Generation::kOld;
  const bool was_remembered = cur->h.in_remembered_set != 0;

  ScopedBlockProtect protect(*this, cur);
  Block* clone = allocate_block(kind, count, prefer_old);
  cur = protect.get();

  std::memcpy(reinterpret_cast<std::byte*>(clone) + sizeof(Block),
              reinterpret_cast<const std::byte*>(cur) + sizeof(Block),
              cur->payload_bytes());
  clone->h.spec_epoch = spec_epoch_;
  table_.redirect(idx, clone);
  // The clone inherits the original's remembered-set membership: it holds
  // the same slots, so it may hold the same old→young edges. The set
  // itself tracks indices, which now resolve to the clone.
  if (was_remembered) clone->h.in_remembered_set = 1;
  ++stats_.cow_clones;
  HeapMetrics::get().cow_clones.inc();
  return ClonePair{cur, clone};
}

// --- Write barrier -----------------------------------------------------------

void Heap::barrier(Block* dst, Value v) {
  if (dst->h.generation != Generation::kOld || !v.is(Tag::kPtr)) return;
  if (dst->h.in_remembered_set) return;
  const BlockIndex tgt = v.as_ptr().index;
  if (table_.is_free(tgt)) return;
  if (table_.raw(tgt)->h.generation == Generation::kYoung) {
    dst->h.in_remembered_set = 1;
    remembered_.push_back(dst->h.index);
  }
}

// --- Roots & collection ------------------------------------------------------

void Heap::add_root_provider(RootProvider* p) { root_providers_.push_back(p); }

void Heap::remove_root_provider(RootProvider* p) {
  root_providers_.erase(
      std::remove(root_providers_.begin(), root_providers_.end(), p),
      root_providers_.end());
}

void Heap::collect(bool major) { Gc(*this, major, 0).run(); }

std::size_t Heap::live_bytes() const {
  std::size_t total = 0;
  const_cast<PointerTable&>(table_).for_each_entry(
      [&](BlockIndex, Block*& b) { total += b->footprint(); });
  return total;
}

Block* Heap::restore_block(BlockIndex idx, BlockKind kind,
                           std::uint32_t count) {
  const std::size_t fp = Block::footprint_for(kind, count);
  Block* b = old_->allocate(fp);
  if (b == nullptr) {
    throw ImageError("heap image larger than configured old-space capacity");
  }
  b->h = BlockHeader{};
  b->h.count = count;
  b->h.kind = kind;
  b->h.generation = Generation::kOld;
  ++stats_.blocks_allocated;
  stats_.bytes_allocated += fp;
  HeapMetrics& m = HeapMetrics::get();
  m.blocks_allocated.inc();
  m.bytes_allocated.inc(fp);
  table_.restore_at(idx, b);
  return b;
}

void Heap::reset() {
  table_.clear();
  funs_.clear();
  young_->reset();
  old_->reset();
  remembered_.clear();
  spec_epoch_ = 0;
}

// --- ScopedBlockProtect ------------------------------------------------------

ScopedBlockProtect::ScopedBlockProtect(Heap& heap, Block* block)
    : heap_(heap), slot_(heap.protected_blocks_.size()) {
  heap_.protected_blocks_.push_back(block);
}

ScopedBlockProtect::~ScopedBlockProtect() {
  // Stack discipline: protections nest.
  heap_.protected_blocks_.pop_back();
}

Block* ScopedBlockProtect::get() const { return heap_.protected_blocks_[slot_]; }

}  // namespace mojave::runtime
