#include "runtime/gc.hpp"

#include <cassert>
#include <cstring>
#include <functional>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/heap.hpp"
#include "support/stopwatch.hpp"

namespace mojave::runtime {

namespace {

/// Registry handles, resolved once; collections dual-write the per-heap
/// GcStats deltas into these process-wide aggregates.
struct GcMetrics {
  obs::Counter& minor;
  obs::Counter& major;
  obs::Counter& blocks_promoted;
  obs::Counter& entries_freed;
  obs::Counter& bytes_evacuated;
  obs::Histogram& pause_us;
  obs::Gauge& old_used_bytes;

  static GcMetrics& get() {
    static GcMetrics m{
        obs::MetricsRegistry::instance().counter("gc.minor_collections"),
        obs::MetricsRegistry::instance().counter("gc.major_collections"),
        obs::MetricsRegistry::instance().counter("gc.blocks_promoted"),
        obs::MetricsRegistry::instance().counter("gc.entries_freed"),
        obs::MetricsRegistry::instance().counter("gc.bytes_evacuated"),
        obs::MetricsRegistry::instance().histogram("gc.pause_us"),
        obs::MetricsRegistry::instance().gauge("heap.old_used_bytes"),
    };
    return m;
  }
};

/// Adapter translating RootProvider callbacks into Gc marking actions.
class MarkingVisitor : public RootVisitor {
 public:
  MarkingVisitor(std::vector<Block**>& patch_slots,
                 const std::function<void(BlockIndex)>& index_fn,
                 const std::function<void(Block*)>& block_fn)
      : patch_slots_(patch_slots), index_fn_(index_fn), block_fn_(block_fn) {}

  void value_root(const Value& v) override {
    if (v.is(Tag::kPtr)) index_fn_(v.as_ptr().index);
  }
  void index_root(BlockIndex idx) override { index_fn_(idx); }
  void block_root(Block** slot) override {
    patch_slots_.push_back(slot);
    block_fn_(*slot);
  }

 private:
  std::vector<Block**>& patch_slots_;
  const std::function<void(BlockIndex)>& index_fn_;
  const std::function<void(Block*)>& block_fn_;
};

}  // namespace

Gc::Gc(Heap& heap, bool major, std::size_t extra_need)
    : heap_(heap),
      major_(major || !heap.cfg_.generational),
      extra_need_(extra_need) {}

bool Gc::is_young(const Block* b) const { return heap_.young_->contains(b); }

void Gc::run() {
  GcMetrics& m = GcMetrics::get();
  obs::ScopedSpan span("gc", "minor");
  const GcStats before = heap_.stats_.gc;
  Stopwatch sw;
  if (major_) {
    major_cycle();
    ++heap_.stats_.gc.major_collections;
  } else {
    minor_cycle();
  }
  const double pause = sw.seconds();
  heap_.stats_.gc.pause_seconds_total += pause;

  // Export: per-cycle deltas into the registry, the pause into the
  // histogram, the span (named by what actually ran — a minor cycle can
  // escalate to major) into the tracer.
  const GcStats& after = heap_.stats_.gc;
  if (major_) span.set_name("major");
  span.set_arg("bytes_evacuated", after.bytes_evacuated - before.bytes_evacuated);
  m.pause_us.record_seconds(pause);
  m.minor.inc(after.minor_collections - before.minor_collections);
  m.major.inc(after.major_collections - before.major_collections);
  m.blocks_promoted.inc(after.blocks_promoted - before.blocks_promoted);
  m.entries_freed.inc(after.entries_freed - before.entries_freed);
  m.bytes_evacuated.inc(after.bytes_evacuated - before.bytes_evacuated);
  m.old_used_bytes.set(static_cast<std::int64_t>(heap_.old_->used()));
}

void Gc::clear_marks() {
  const auto clear = [](Block* b) {
    b->h.mark = 0;
    b->h.forward = nullptr;
  };
  heap_.young_->for_each_block(clear);
  if (major_) heap_.old_->for_each_block(clear);
}

// --- Minor collection -------------------------------------------------------
//
// Marks reachable *young* blocks only. Old blocks are presumed live; their
// edges into the nursery are covered by (a) the remembered set for barrier-
// observed writes and (b) direct block roots (speculation checkpoint
// records), whose slots are traced regardless of the root's generation.

void Gc::minor_cycle() {
  clear_marks();
  patch_slots_.clear();
  worklist_.clear();

  const auto mark_young = [&](Block* b) {
    if (b == nullptr || !is_young(b) || b->h.mark) return;
    b->h.mark = 1;
    worklist_.push_back(b);
  };
  const std::function<void(BlockIndex)> index_fn = [&](BlockIndex idx) {
    if (heap_.table_.is_free(idx)) return;
    mark_young(heap_.table_.raw(idx));
  };
  // A direct block root that is old-generation is not moved, but its slots
  // can reference nursery blocks no barrier ever saw (it may be a preserved
  // pre-write version that is no longer in the table), so trace it.
  const std::function<void(Block*)> block_fn = [&](Block* b) {
    if (b == nullptr) return;
    if (is_young(b)) {
      mark_young(b);
    } else if (b->h.kind == BlockKind::kTagged) {
      const Value* s = b->slots();
      for (std::uint32_t i = 0; i < b->h.count; ++i) {
        if (s[i].is(Tag::kPtr)) index_fn(s[i].as_ptr().index);
      }
    }
  };

  MarkingVisitor visitor(patch_slots_, index_fn, block_fn);
  for (RootProvider* p : heap_.root_providers_) p->enumerate_roots(visitor);
  for (Block*& b : heap_.protected_blocks_) visitor.block_root(&b);
  for (BlockIndex idx : heap_.remembered_) {
    if (heap_.table_.is_free(idx)) continue;
    block_fn(heap_.table_.raw(idx));  // old block: trace, do not move
  }

  // Transitive closure over nursery blocks (edges into the old generation
  // terminate: old blocks are live by assumption in a minor cycle).
  for (std::size_t head = 0; head < worklist_.size(); ++head) {
    Block* b = worklist_[head];
    if (b->h.kind != BlockKind::kTagged) continue;
    const Value* s = b->slots();
    for (std::uint32_t i = 0; i < b->h.count; ++i) {
      if (s[i].is(Tag::kPtr)) index_fn(s[i].as_ptr().index);
    }
  }

  // Promotion would overflow the old space: escalate to a major cycle,
  // which re-marks from scratch.
  std::size_t promote_bytes = 0;
  heap_.young_->for_each_block([&](Block* b) {
    if (b->h.mark) promote_bytes += b->footprint();
  });
  if (heap_.old_->capacity() - heap_.old_->used() < promote_bytes) {
    major_ = true;
    extra_need_ += promote_bytes;
    major_cycle();
    ++heap_.stats_.gc.major_collections;
    return;
  }

  // Evacuate survivors to the old space in allocation (address) order.
  heap_.young_->for_each_block([&](Block* b) {
    if (!b->h.mark) return;
    Block* dst = heap_.old_->allocate(b->footprint());
    assert(dst != nullptr);
    std::memcpy(dst, b, b->footprint());
    dst->h.generation = Generation::kOld;
    dst->h.mark = 0;
    dst->h.in_remembered_set = 0;
    dst->h.forward = nullptr;
    b->h.forward = dst;
    ++heap_.stats_.gc.blocks_promoted;
    heap_.stats_.gc.bytes_evacuated += b->footprint();
  });

  // Sweep & patch the pointer table: nursery entries either follow their
  // forwarding pointer or are freed.
  auto& entries = heap_.table_.entries_;
  for (BlockIndex i = 1; i < entries.size(); ++i) {
    Block* b = entries[i];
    if (b == nullptr || !is_young(b)) continue;
    if (b->h.mark) {
      entries[i] = b->h.forward;
    } else {
      entries[i] = nullptr;
      heap_.table_.free_list_.push_back(i);
      ++heap_.stats_.gc.entries_freed;
    }
  }

  // Patch direct block references into the nursery.
  for (Block** slot : patch_slots_) {
    if (*slot != nullptr && is_young(*slot)) *slot = (*slot)->h.forward;
  }

  // Every survivor was promoted, so no old→young edges remain.
  for (BlockIndex idx : heap_.remembered_) {
    if (!heap_.table_.is_free(idx)) {
      heap_.table_.raw(idx)->h.in_remembered_set = 0;
    }
  }
  heap_.remembered_.clear();
  heap_.young_->reset();
  ++heap_.stats_.gc.minor_collections;
}

// --- Major collection --------------------------------------------------------

void Gc::mark_from(Block* block) {
  if (block == nullptr || block->h.mark) return;
  block->h.mark = 1;
  live_bytes_ += block->footprint();
  worklist_.push_back(block);
  bfs_order_.push_back(block);
}

void Gc::trace_slots(Block* block) {
  if (block->h.kind != BlockKind::kTagged) return;
  const Value* s = block->slots();
  for (std::uint32_t i = 0; i < block->h.count; ++i) {
    if (!s[i].is(Tag::kPtr)) continue;
    const BlockIndex idx = s[i].as_ptr().index;
    if (!heap_.table_.is_free(idx)) mark_from(heap_.table_.raw(idx));
  }
}

void Gc::major_cycle() {
  clear_marks();
  patch_slots_.clear();
  worklist_.clear();
  bfs_order_.clear();
  live_bytes_ = 0;

  const std::function<void(BlockIndex)> index_fn = [&](BlockIndex idx) {
    if (!heap_.table_.is_free(idx)) mark_from(heap_.table_.raw(idx));
  };
  const std::function<void(Block*)> block_fn = [&](Block* b) { mark_from(b); };

  MarkingVisitor visitor(patch_slots_, index_fn, block_fn);
  for (RootProvider* p : heap_.root_providers_) p->enumerate_roots(visitor);
  for (Block*& b : heap_.protected_blocks_) visitor.block_root(&b);

  for (std::size_t head = 0; head < worklist_.size(); ++head) {
    trace_slots(worklist_[head]);
  }

  // Size the new old space for the survivors plus the allocation that
  // triggered us, with headroom.
  const std::size_t need = live_bytes_ + extra_need_;
  std::size_t new_cap = heap_.old_->capacity();
  while (new_cap < 2 * need) new_cap *= 2;
  auto new_old = std::make_unique<Arena>(new_cap);

  // Choose the evacuation order: sliding (address) order preserves temporal
  // allocation locality; breadth-first emulates a copying collector.
  std::vector<Block*> order;
  if (heap_.cfg_.evacuation_order == EvacuationOrder::kBreadthFirst) {
    order = bfs_order_;
  } else {
    order.reserve(bfs_order_.size());
    heap_.old_->for_each_block([&](Block* b) {
      if (b->h.mark) order.push_back(b);
    });
    heap_.young_->for_each_block([&](Block* b) {
      if (b->h.mark) order.push_back(b);
    });
  }

  for (Block* b : order) {
    Block* dst = new_old->allocate(b->footprint());
    assert(dst != nullptr);
    std::memcpy(dst, b, b->footprint());
    dst->h.generation = Generation::kOld;
    dst->h.mark = 0;
    dst->h.in_remembered_set = 0;
    dst->h.forward = nullptr;
    b->h.forward = dst;
    heap_.stats_.gc.bytes_evacuated += b->footprint();
  }

  // Sweep & patch the table.
  auto& entries = heap_.table_.entries_;
  for (BlockIndex i = 1; i < entries.size(); ++i) {
    Block* b = entries[i];
    if (b == nullptr) continue;
    if (b->h.mark) {
      entries[i] = b->h.forward;
    } else {
      entries[i] = nullptr;
      heap_.table_.free_list_.push_back(i);
      ++heap_.stats_.gc.entries_freed;
    }
  }

  // Patch direct block references (before the arenas are discarded).
  for (Block** slot : patch_slots_) {
    Block* b = *slot;
    if (b != nullptr && (heap_.old_->contains(b) || heap_.young_->contains(b))) {
      *slot = b->h.forward;
    }
  }

  for (BlockIndex idx : heap_.remembered_) {
    if (!heap_.table_.is_free(idx)) {
      heap_.table_.raw(idx)->h.in_remembered_set = 0;
    }
  }
  heap_.remembered_.clear();
  heap_.old_ = std::move(new_old);
  heap_.young_->reset();
}

}  // namespace mojave::runtime
