#include "runtime/value.hpp"

#include <sstream>

namespace mojave::runtime {

const char* tag_name(Tag tag) {
  switch (tag) {
    case Tag::kUnit:
      return "unit";
    case Tag::kInt:
      return "int";
    case Tag::kFloat:
      return "float";
    case Tag::kPtr:
      return "ptr";
    case Tag::kFun:
      return "fun";
  }
  return "?";
}

std::string Value::to_string() const {
  std::ostringstream out;
  switch (tag_) {
    case Tag::kUnit:
      out << "()";
      break;
    case Tag::kInt:
      out << i_;
      break;
    case Tag::kFloat:
      out << f_;
      break;
    case Tag::kPtr:
      out << "<" << p_.index << "+" << p_.offset << ">";
      break;
    case Tag::kFun:
      out << "fun#" << fun_;
      break;
  }
  return out.str();
}

}  // namespace mojave::runtime
