// The function table (paper, Section 4.1): "a function table contains
// pointers to all valid higher-order functions". Fun-tagged values store an
// index into this table; calls through a value validate the index before
// transferring control, so a forged function pointer cannot escape the
// managed code area.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/common.hpp"
#include "support/error.hpp"

namespace mojave::runtime {

struct FunctionEntry {
  std::string name;
  std::uint32_t arity = 0;
  /// Identifier of the FIR function this entry denotes (index into the
  /// program's function list). Stable across migration, which is why
  /// "migration must be careful to preserve order in the pointer and
  /// function tables".
  std::uint32_t fir_id = 0;
};

class FunctionTable {
 public:
  FunIndex insert(FunctionEntry entry) {
    entries_.push_back(std::move(entry));
    return static_cast<FunIndex>(entries_.size() - 1);
  }

  [[nodiscard]] const FunctionEntry& get(FunIndex idx) const {
    if (idx >= entries_.size()) {
      throw SafetyError("function index " + std::to_string(idx) +
                        " out of table bounds");
    }
    return entries_[idx];
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  void clear() { entries_.clear(); }

 private:
  std::vector<FunctionEntry> entries_;
};

}  // namespace mojave::runtime
