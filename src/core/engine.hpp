// The umbrella public API: one include, one class, for the common uses —
// compile MojC, run it, checkpoint it, resume it, serve migrations.
//
//   #include "core/engine.hpp"
//
//   mojave::Engine engine;
//   auto result = engine.run_source("demo", "int main() { return 42; }");
//
// Lower layers stay fully accessible (frontend/, fir/, vm/, migrate/,
// cluster/) for callers that need the individual pieces.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "fir/ir.hpp"
#include "migrate/migrator.hpp"
#include "migrate/server.hpp"
#include "vm/process.hpp"

namespace mojave {

struct EngineOptions {
  vm::ProcessConfig process;
  /// Attach a Migrator to every process so the migrate()/checkpoint
  /// primitives work out of the box.
  bool enable_migration = true;
  /// Run the FIR optimizer (constant folding, copy propagation, DCE).
  bool optimize = true;
  /// Dump the FIR of every compiled program to this stream (diagnostics).
  std::ostream* dump_fir = nullptr;
};

struct EngineResult {
  vm::RunResult run;
  spec::SpecStats spec;
  vm::VmStats vm;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  /// Compile MojC source text to a verified FIR program.
  [[nodiscard]] fir::Program compile(const std::string& name,
                                     const std::string& source) const;

  /// Compile a .mjc file.
  [[nodiscard]] fir::Program compile_file(
      const std::filesystem::path& path) const;

  /// Compile and run source text.
  EngineResult run_source(const std::string& name, const std::string& source);

  /// Compile and run a file.
  EngineResult run_file(const std::filesystem::path& path);

  /// Run an already-compiled program.
  EngineResult run_program(fir::Program program);

  /// Resume a process from a checkpoint / suspend image file.
  EngineResult resume_file(const std::filesystem::path& image_path);

  /// Serve inbound migrations forever (blocks until stop_server()).
  /// Returns the bound port. `bind` selects the listen interface;
  /// the default keeps the server loopback-only.
  std::uint16_t serve(std::uint16_t port,
                      const std::string& bind = "127.0.0.1");
  void stop_server();

  [[nodiscard]] const EngineOptions& options() const { return options_; }

 private:
  EngineResult finish(vm::Process& process, vm::RunResult run) const;

  EngineOptions options_;
  std::unique_ptr<migrate::MigrationServer> server_;
};

/// Read a whole file into a string; throws Error with the path on failure.
[[nodiscard]] std::string read_text_file(const std::filesystem::path& path);

}  // namespace mojave
