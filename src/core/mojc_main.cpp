// mojc — the Mojave compiler driver.
//
//   mojc run <file.mjc> [--dump-fir] [--trap-spec] [--max-insns N]
//       Compile and execute a MojC program.
//   mojc compile <file.mjc> [-o out.fir]
//       Compile to a serialized FIR image (what migration ships).
//   mojc exec <file.fir>
//       Typecheck, lower and run a serialized FIR image.
//   mojc resume <checkpoint.img>
//       Reconstruct and resume a process from a checkpoint/suspend image
//       (the resurrection entry point daemons use).
//   mojc serve [port] [--bind ADDR]
//       Run a migration server: accept inbound processes, verify,
//       recompile, and execute them.
//   mojc node --storage ROOT [--bind ADDR] [--port P] [--throttle-ms X]
//       Run a node agent: host ranks of a distributed cluster, route
//       messages between agents, checkpoint into the shared store.
//   mojc cluster --nodes host:port,... run <file.mjc>
//       Coordinate a distributed run across node agents: place ranks,
//       detect failures, resurrect from checkpoints, arbitrate the
//       speculation join protocol.
//   mojc inspect <image>
//       Print what an image contains without running it.
//   mojc ckpt <store-root> [list|stats|verify|gc]
//       Inspect (or garbage-collect) an incremental checkpoint store:
//       snapshots, manifests, chunk dedup ratio, integrity.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/store.hpp"
#include "ctrl/lease.hpp"
#include "core/engine.hpp"
#include "dnode/agent.hpp"
#include "dnode/coord.hpp"
#include "fir/serialize.hpp"
#include "fir/printer.hpp"
#include "native/arch.hpp"
#include "native/options.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "risc/disasm.hpp"
#include "risc/lower.hpp"
#include "vm/lowering.hpp"
#include "migrate/image.hpp"
#include "net/retry.hpp"
#include "support/log.hpp"

namespace {

using namespace mojave;

int usage() {
  std::cerr <<
      "usage:\n"
      "  mojc run <file.mjc> [--dump-fir] [--trap-spec] [--no-opt] [--max-insns N]\n"
      "  mojc compile <file.mjc> [-o out.fir]\n"
      "  mojc exec <file.fir>\n"
      "  mojc resume <checkpoint.img | ckpt://root/name>\n"
      "  mojc serve [port] [--bind ADDR]\n"
      "  mojc node --storage ROOT [--bind ADDR] [--port P] [--throttle-ms X]\n"
      "  mojc cluster --nodes host:port,... [--ranks N] [--storage ROOT]\n"
      "       [--balance-interval S] [--balance-threshold X] [--timeout S]\n"
      "       [--wal-root DIR] [--standby] [--lease-ttl S]\n"
      "       run <file.mjc>\n"
      "  mojc inspect <image>\n"
      "  mojc ckpt <store-root> [list|stats|verify|gc|compact]\n"
      "  mojc dump <file.mjc> [--risc]\n"
      "execution (run/exec/resume/serve/node/cluster):\n"
      "  --jit=on|off|threshold=N  native-tier policy (comma-combinable,\n"
      "                        e.g. --jit=on,threshold=16; MOJAVE_JIT env\n"
      "                        var sets the default). Unsupported hosts\n"
      "                        fall back to the interpreter either way.\n"
      "telemetry (any command):\n"
      "  --stats[=json]        dump the metrics registry to stderr at exit\n"
      "  --trace-out=<file>    record runtime events, write Chrome trace JSON\n"
      "transport (any command; also settable via MOJAVE_* env vars):\n"
      "  --migrate-attempts N  mcc:// / ckpt:// retry budget (default 3)\n"
      "  --migrate-backoff-ms X  initial retry backoff, exponential + jitter\n"
      "  --migrate-deadline S  overall deadline across all attempts\n"
      "  --connect-timeout S   TCP connect (and DNS resolve) deadline\n"
      "  --io-timeout S        per-syscall send/recv deadline\n"
      "  --recv-timeout S      cluster msg_recv safety-net timeout\n"
      "  active values appear as config.* gauges in --stats\n";
  return 2;
}

struct Flags {
  bool dump_fir = false;
  bool no_opt = false;
  bool trap_spec = false;
  bool stats = false;
  bool stats_json = false;
  std::uint64_t max_insns = 0;
  native::JitOptions jit = native::jit_options_from_env();
  bool jit_flag_given = false;
  bool bad_jit = false;
  std::string trace_out;
  std::string output;
  std::optional<std::uint32_t> migrate_attempts;
  std::optional<double> migrate_backoff_ms;
  std::optional<double> migrate_deadline_s;
  std::optional<double> connect_timeout_s;
  std::optional<double> io_timeout_s;
  std::optional<double> recv_timeout_s;
  // Distributed runtime (mojc node / mojc cluster / mojc serve --bind).
  std::string bind = "127.0.0.1";
  std::uint16_t port = 0;
  std::string storage;
  std::string nodes;
  double throttle_ms = 0;
  std::uint32_t ranks = 4;
  double balance_interval_s = 0;
  double balance_threshold = 1.5;
  double cluster_timeout_s = 300;
  // HA control plane (docs/CONTROL_PLANE.md).
  std::string wal_root;
  bool standby = false;
  double lease_ttl_s = 2.0;
  std::vector<std::string> positional;
};

Flags parse_flags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dump-fir") {
      flags.dump_fir = true;
    } else if (arg == "--no-opt") {
      flags.no_opt = true;
    } else if (arg == "--trap-spec") {
      flags.trap_spec = true;
    } else if (arg == "--stats") {
      flags.stats = true;
    } else if (arg == "--stats=json") {
      flags.stats = true;
      flags.stats_json = true;
    } else if (arg.rfind("--jit=", 0) == 0) {
      const std::string spec = arg.substr(std::string("--jit=").size());
      if (native::parse_jit_spec(spec, flags.jit)) {
        flags.jit_flag_given = true;
      } else {
        std::cerr << "mojc: bad --jit spec '" << spec
                  << "' (want on|off|threshold=N)\n";
        flags.bad_jit = true;
      }
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      flags.trace_out = arg.substr(std::string("--trace-out=").size());
    } else if (arg == "--max-insns" && i + 1 < argc) {
      flags.max_insns = std::stoull(argv[++i]);
    } else if (arg == "--migrate-attempts" && i + 1 < argc) {
      flags.migrate_attempts = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (arg == "--migrate-backoff-ms" && i + 1 < argc) {
      flags.migrate_backoff_ms = std::stod(argv[++i]);
    } else if (arg == "--migrate-deadline" && i + 1 < argc) {
      flags.migrate_deadline_s = std::stod(argv[++i]);
    } else if (arg == "--connect-timeout" && i + 1 < argc) {
      flags.connect_timeout_s = std::stod(argv[++i]);
    } else if (arg == "--io-timeout" && i + 1 < argc) {
      flags.io_timeout_s = std::stod(argv[++i]);
    } else if (arg == "--recv-timeout" && i + 1 < argc) {
      flags.recv_timeout_s = std::stod(argv[++i]);
    } else if (arg == "--bind" && i + 1 < argc) {
      flags.bind = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      flags.port = static_cast<std::uint16_t>(std::stoi(argv[++i]));
    } else if (arg == "--storage" && i + 1 < argc) {
      flags.storage = argv[++i];
    } else if (arg == "--nodes" && i + 1 < argc) {
      flags.nodes = argv[++i];
    } else if (arg == "--throttle-ms" && i + 1 < argc) {
      flags.throttle_ms = std::stod(argv[++i]);
    } else if (arg == "--ranks" && i + 1 < argc) {
      flags.ranks = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (arg == "--balance-interval" && i + 1 < argc) {
      flags.balance_interval_s = std::stod(argv[++i]);
    } else if (arg == "--balance-threshold" && i + 1 < argc) {
      flags.balance_threshold = std::stod(argv[++i]);
    } else if (arg == "--timeout" && i + 1 < argc) {
      flags.cluster_timeout_s = std::stod(argv[++i]);
    } else if (arg == "--wal-root" && i + 1 < argc) {
      flags.wal_root = argv[++i];
    } else if (arg == "--standby") {
      flags.standby = true;
    } else if (arg == "--lease-ttl" && i + 1 < argc) {
      flags.lease_ttl_s = std::stod(argv[++i]);
    } else if (arg == "-o" && i + 1 < argc) {
      flags.output = argv[++i];
    } else {
      flags.positional.push_back(arg);
    }
  }
  return flags;
}

/// Install transport overrides process-wide: retry-policy flags layer on
/// top of the environment-derived defaults (and win), and --recv-timeout
/// is exported as MOJAVE_RECV_TIMEOUT_S so every ClusterConfig built in
/// this process picks it up. The resulting values are published as
/// config.* gauges, so --stats shows what the run actually used.
void apply_transport_flags(const Flags& flags) {
  if (flags.recv_timeout_s.has_value()) {
    ::setenv("MOJAVE_RECV_TIMEOUT_S",
             std::to_string(*flags.recv_timeout_s).c_str(), 1);
  }
  if (flags.jit_flag_given) {
    // Re-export so ProcessConfig instances built from env defaults (node
    // agents, unpacked migrations) honour the flag too.
    const std::string spec =
        flags.jit.enabled
            ? "on,threshold=" + std::to_string(flags.jit.threshold)
            : "off";
    ::setenv("MOJAVE_JIT", spec.c_str(), 1);
  }
  const bool any = flags.migrate_attempts || flags.migrate_backoff_ms ||
                   flags.migrate_deadline_s || flags.connect_timeout_s ||
                   flags.io_timeout_s;
  if (!any) return;
  net::RetryPolicy p = net::RetryPolicy::process_defaults();
  if (flags.migrate_attempts) p.max_attempts = *flags.migrate_attempts;
  if (flags.migrate_backoff_ms) {
    p.initial_backoff_seconds = *flags.migrate_backoff_ms / 1e3;
  }
  if (flags.migrate_deadline_s) {
    p.overall_deadline_seconds = *flags.migrate_deadline_s;
  }
  if (flags.connect_timeout_s) p.connect_timeout_seconds = *flags.connect_timeout_s;
  if (flags.io_timeout_s) p.io_timeout_seconds = *flags.io_timeout_s;
  net::RetryPolicy::set_process_defaults(p);
}

/// End-of-process telemetry export: the Chrome trace file and/or the
/// registry dump, honoured on every exit path (including errors).
void export_telemetry(const Flags& flags) {
  if (!flags.trace_out.empty()) {
    std::ofstream out(flags.trace_out, std::ios::trunc);
    if (out) {
      out << obs::Tracer::instance().dump_chrome_json();
      std::cerr << "[mojc] wrote " << obs::Tracer::instance().recorded()
                << " trace events to " << flags.trace_out << "\n";
    } else {
      std::cerr << "[mojc] cannot write trace to " << flags.trace_out << "\n";
    }
  }
  if (flags.stats) {
    auto& reg = obs::MetricsRegistry::instance();
    std::cerr << (flags.stats_json ? reg.dump_json() + "\n" : reg.dump_text());
  }
}

/// Publish the native-tier policy the run actually uses: 1 when the tier
/// is both requested and available on this host, 0 otherwise.
void publish_jit_gauges(const native::JitOptions& jit) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.gauge("config.jit").set(
      (jit.enabled && native::jit_supported()) ? 1 : 0);
  reg.gauge("config.jit.threshold")
      .set(static_cast<std::int64_t>(jit.threshold));
}

Engine make_engine(const Flags& flags) {
  EngineOptions opts;
  opts.process.trap_to_speculation = flags.trap_spec;
  opts.process.max_instructions = flags.max_insns;
  opts.process.jit = flags.jit;
  opts.optimize = !flags.no_opt;
  if (flags.dump_fir) opts.dump_fir = &std::cerr;
  return Engine(std::move(opts));
}

int report(const EngineResult& result) {
  if (result.run.kind == vm::RunResult::Kind::kMigratedAway) {
    std::cerr << "[mojc] process migrated away or suspended\n";
    return 0;
  }
  std::cerr << "[mojc] halted with code " << result.run.exit_code << " ("
            << result.vm.instructions << " instructions, "
            << result.spec.speculates << " speculations, "
            << result.spec.rollbacks << " rollbacks)\n";
  return static_cast<int>(result.run.exit_code);
}

int cmd_run(const Flags& flags) {
  if (flags.positional.size() != 1) return usage();
  Engine engine = make_engine(flags);
  return report(engine.run_file(flags.positional[0]));
}

int cmd_compile(const Flags& flags) {
  if (flags.positional.size() != 1) return usage();
  Engine engine = make_engine(flags);
  const fir::Program program = engine.compile_file(flags.positional[0]);
  const auto bytes = fir::encode_program(program);
  const std::string out = flags.output.empty()
                              ? flags.positional[0] + ".fir"
                              : flags.output;
  std::ofstream f(out, std::ios::binary | std::ios::trunc);
  if (!f) {
    std::cerr << "cannot write " << out << "\n";
    return 1;
  }
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  std::cerr << "[mojc] wrote " << bytes.size() << " bytes of FIR ("
            << program.functions.size() << " functions) to " << out << "\n";
  return 0;
}

int cmd_exec(const Flags& flags) {
  if (flags.positional.size() != 1) return usage();
  std::ifstream f(flags.positional[0], std::ios::binary);
  if (!f) {
    std::cerr << "cannot open " << flags.positional[0] << "\n";
    return 1;
  }
  std::vector<char> raw((std::istreambuf_iterator<char>(f)),
                        std::istreambuf_iterator<char>());
  const fir::Program program = fir::decode_program(
      std::as_bytes(std::span(raw.data(), raw.size())));
  Engine engine = make_engine(flags);
  return report(engine.run_program(fir::clone_program(program)));
}

int cmd_resume(const Flags& flags) {
  if (flags.positional.size() != 1) return usage();
  Engine engine = make_engine(flags);
  return report(engine.resume_file(flags.positional[0]));
}

int cmd_serve(const Flags& flags) {
  std::uint16_t port = flags.port;
  if (!flags.positional.empty()) {
    port = static_cast<std::uint16_t>(std::stoi(flags.positional[0]));
  }
  Logger::instance().set_level(LogLevel::kInfo);
  Engine engine = make_engine(flags);
  const std::uint16_t bound = engine.serve(port, flags.bind);
  std::cerr << "[mojc] migration server listening on " << flags.bind << ":"
            << bound
            << " — inbound processes are verified, recompiled, and run\n";
  // Serve until killed.
  while (true) std::this_thread::sleep_for(std::chrono::seconds(3600));
}

int cmd_node(const Flags& flags) {
  if (flags.storage.empty()) {
    std::cerr << "mojc node: --storage ROOT is required (the checkpoint "
                 "store shared with every other agent)\n";
    return usage();
  }
  Logger::instance().set_level(LogLevel::kInfo);
  dnode::AgentConfig cfg;
  cfg.bind = flags.bind;
  cfg.port = flags.port;
  cfg.storage_root = flags.storage;
  cfg.throttle_ms = flags.throttle_ms;
  if (flags.recv_timeout_s) cfg.recv_timeout_seconds = *flags.recv_timeout_s;
  dnode::NodeAgent agent(cfg);
  // The ready line is the launch protocol: a parent (test harness or
  // operator script) reads the chosen port from stdout.
  std::cout << "DNODE_READY port=" << agent.port() << std::endl;
  std::cerr << "[mojc] node agent listening on " << flags.bind << ":"
            << agent.port() << ", storage " << flags.storage << "\n";
  agent.wait();
  agent.stop();
  return 0;
}

int cmd_cluster(const Flags& flags) {
  if (flags.nodes.empty() || flags.positional.size() != 2 ||
      flags.positional[0] != "run") {
    return usage();
  }
  dnode::CoordinatorConfig cfg;
  std::stringstream nodes(flags.nodes);
  std::string entry;
  while (std::getline(nodes, entry, ',')) {
    const auto colon = entry.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "mojc cluster: bad --nodes entry '" << entry
                << "' (want host:port)\n";
      return usage();
    }
    dnode::AgentAddr addr;
    addr.host = entry.substr(0, colon);
    addr.port = static_cast<std::uint16_t>(std::stoi(entry.substr(colon + 1)));
    cfg.agents.push_back(std::move(addr));
  }
  cfg.num_ranks = flags.ranks;
  cfg.max_instructions = flags.max_insns;
  cfg.balance_interval_seconds = flags.balance_interval_s;
  cfg.balance_threshold = flags.balance_threshold;
  if (flags.recv_timeout_s) cfg.recv_timeout_seconds = *flags.recv_timeout_s;
  cfg.wal_root = flags.wal_root;
  cfg.lease_ttl_seconds = flags.lease_ttl_s;

  if (flags.standby) {
    if (flags.wal_root.empty()) {
      std::cerr << "mojc cluster: --standby requires --wal-root DIR (the "
                   "primary's WAL + lease directory)\n";
      return usage();
    }
    // Hot standby: wait out the primary's lease, then take over its run
    // (replay WAL, seal, re-adopt agents — docs/CONTROL_PLANE.md).
    std::cerr << "[mojc] standby: watching lease under " << flags.wal_root
              << "\n";
    while (true) {
      const auto info = ctrl::Lease::read(flags.wal_root);
      if (!info.has_value() || info->expired(ctrl::Lease::wall_now())) break;
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::max(0.05, info->ttl_seconds / 4.0)));
    }
    std::cerr << "[mojc] standby: lease expired, taking over\n";
    cfg.resume = true;
  }

  Engine engine = make_engine(flags);
  const fir::Program program = engine.compile_file(flags.positional[1]);

  dnode::Coordinator coord(cfg);
  // A takeover re-adopts the ranks already running; only a fresh run (or
  // a standby that found an empty WAL) launches the program.
  if (!coord.resumed()) coord.launch_spmd(program);
  const bool all_done = coord.wait_all(flags.cluster_timeout_s);

  int rc = all_done ? 0 : 1;
  for (const dnode::RankOutcome& r : coord.results()) {
    if (!r.output.empty()) std::cout << r.output;
    if (r.has_reported) {
      // Machine-readable per-rank result, bit-exact (%.17g round-trips a
      // double): the coordinator-chaos CI job diffs these lines between a
      // failure-free run and a kill-the-primary failover run.
      char line[64];
      std::snprintf(line, sizeof(line), "RANK_SUM rank=%u sum=%.17g\n",
                    r.rank, r.reported);
      std::cout << line;
    }
    if (!r.done) {
      std::cerr << "[mojc] rank " << r.rank << " did not finish\n";
    } else if (r.result_kind == 2) {
      std::cerr << "[mojc] rank " << r.rank << " failed: " << r.error << "\n";
      rc = 1;
    } else {
      std::cerr << "[mojc] rank " << r.rank << " exited " << r.exit_code
                << " (" << r.instructions << " instructions, " << r.rollbacks
                << " rollbacks, " << r.restarts << " restarts)\n";
      if (r.exit_code != 0 && rc == 0) rc = static_cast<int>(r.exit_code);
    }
  }
  std::cerr << "[mojc] cluster: " << coord.resurrections()
            << " resurrection(s), " << coord.migrations() << " migration(s)\n";
  coord.shutdown_agents();
  return rc;
}

int cmd_dump(const Flags& flags, bool risc_backend) {
  if (flags.positional.size() != 1) return usage();
  Engine engine = make_engine(flags);
  const fir::Program program = engine.compile_file(flags.positional[0]);
  std::cout << "=== FIR ===\n" << fir::to_string(program);
  if (risc_backend) {
    std::cout << "=== RISC ===\n" << risc::disassemble(risc::lower(program));
  } else {
    std::cout << "=== bytecode ===\n" << vm::disassemble(vm::lower(program));
  }
  return 0;
}

int cmd_inspect(const Flags& flags) {
  if (flags.positional.size() != 1) return usage();
  const auto bytes =
      migrate::Migrator::read_image_file(flags.positional[0]);
  const auto info = migrate::inspect_image(bytes);
  std::cout << "program:    " << info.program_name << "\n"
            << "kind:       "
            << (info.kind == migrate::ImageKind::kFir
                    ? "FIR (untrusted: destination re-verifies)"
                    : "binary (trusted bytecode)")
            << "\n"
            << "image size: " << info.total_bytes << " bytes\n";
  return 0;
}

int cmd_ckpt(const Flags& flags) {
  if (flags.positional.empty() || flags.positional.size() > 2) return usage();
  const std::string sub =
      flags.positional.size() == 2 ? flags.positional[1] : "list";
  // An absent root would be silently created by the store constructor —
  // for read-only verbs that hides a typo'd path behind "store OK".
  const bool absent = !std::filesystem::exists(flags.positional[0]);
  if (absent && sub == "verify") {
    std::cerr << "mojc ckpt verify: no checkpoint store at '"
              << flags.positional[0]
              << "' (path does not exist; nothing to verify)\n";
    return 2;
  }
  ckpt::CheckpointStore store(flags.positional[0]);

  if (sub == "list") {
    const auto names = store.snapshots();
    if (names.empty()) {
      std::cout << "(empty store)\n";
      return 0;
    }
    for (const std::string& name : names) {
      const auto manifests = store.manifests(name);
      if (manifests.empty()) continue;
      const auto& latest = manifests.back();
      std::cout << name << ": " << manifests.size() << " snapshot(s), latest seq "
                << latest.seq << ", " << latest.image_bytes << " bytes in "
                << latest.chunks.size() << " chunks\n";
    }
    const auto s = store.stats();
    std::cout << "store: " << s.chunks << " chunks, " << s.stored_chunk_bytes
              << " stored bytes for " << s.logical_bytes
              << " logical bytes (dedup x" << s.dedup_ratio() << ")\n";
    return 0;
  }
  if (sub == "stats") {
    const auto s = store.stats();
    std::cout << "snapshots:          " << s.snapshots << "\n"
              << "manifests:          " << s.manifests << "\n"
              << "chunks:             " << s.chunks << "\n"
              << "stored chunk bytes: " << s.stored_chunk_bytes << "\n"
              << "logical bytes:      " << s.logical_bytes << "\n"
              << "latest image bytes: " << s.latest_image_bytes << "\n"
              << "dedup ratio:        " << s.dedup_ratio() << "\n"
              << "engine extents:     " << s.engine.extents << " ("
              << s.engine.extent_file_bytes << " bytes)\n"
              << "engine live chunks: " << s.engine.live_chunks << "\n"
              << "engine live ratio:  " << s.engine.live_ratio() << "\n"
              << "engine cache hits:  " << s.engine.cache_hits << " ("
              << s.engine.cache_hit_rate() << " hit rate)\n"
              << "engine compactions: " << s.engine.compactions << "\n"
              << "legacy chunk files: " << s.legacy_chunk_files << "\n";
    return 0;
  }
  if (sub == "verify") {
    const auto s = store.stats();
    if (s.manifests == 0 && s.chunks == 0 && s.legacy_chunk_files == 0) {
      std::cerr << "mojc ckpt verify: store at '" << flags.positional[0]
                << "' is empty (no manifests, no chunks) — nothing to "
                   "verify\n";
      return 2;
    }
    const auto report = store.verify();
    std::cout << "manifests: " << report.manifests_ok << " ok, "
              << report.manifests_corrupt << " corrupt\n"
              << "chunks:    " << report.chunks_ok << " ok, "
              << report.chunks_corrupt << " corrupt, "
              << report.chunks_missing << " missing, "
              << report.chunks_orphaned << " orphaned\n"
              << (report.ok() ? "store OK\n" : "store CORRUPT\n");
    return report.ok() ? 0 : 1;
  }
  if (sub == "gc") {
    const auto gc = store.collect_garbage();
    std::cout << "pruned " << gc.manifests_pruned << " manifest(s), evicted "
              << gc.chunks_evicted << " chunk(s) (" << gc.bytes_evicted
              << " bytes)\n";
    return 0;
  }
  if (sub == "compact") {
    const auto c = store.compact();
    const auto s = store.stats();
    std::cout << "compacted " << c.extents_compacted << " extent(s), rewrote "
              << c.records_rewritten << " record(s), reclaimed "
              << c.bytes_reclaimed << " bytes\n"
              << "store now: " << s.engine.extents << " extent(s), live ratio "
              << s.engine.live_ratio() << "\n";
    return 0;
  }
  return usage();
}

int dispatch(const std::string& cmd, const Flags& flags) {
  if (cmd == "run") return cmd_run(flags);
  if (cmd == "compile") return cmd_compile(flags);
  if (cmd == "exec") return cmd_exec(flags);
  if (cmd == "resume") return cmd_resume(flags);
  if (cmd == "serve") return cmd_serve(flags);
  if (cmd == "node") return cmd_node(flags);
  if (cmd == "cluster") return cmd_cluster(flags);
  if (cmd == "inspect") return cmd_inspect(flags);
  if (cmd == "ckpt") return cmd_ckpt(flags);
  if (cmd == "dump") {
    Flags f = flags;
    bool risc_backend = false;
    std::erase_if(f.positional, [&](const std::string& a) {
      if (a == "--risc") { risc_backend = true; return true; }
      return false;
    });
    return cmd_dump(f, risc_backend);
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Flags flags = parse_flags(argc, argv, 2);
  if (flags.bad_jit) return usage();
  apply_transport_flags(flags);
  publish_jit_gauges(flags.jit);
  if (!flags.trace_out.empty()) obs::Tracer::instance().enable();
  try {
    const int rc = dispatch(cmd, flags);
    export_telemetry(flags);
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "mojc: " << e.what() << "\n";
    export_telemetry(flags);
    return 1;
  }
}
