#include "core/engine.hpp"

#include <fstream>
#include <ostream>

#include "fir/optimize.hpp"
#include "fir/printer.hpp"
#include "fir/typecheck.hpp"
#include "frontend/compile.hpp"
#include "migrate/image.hpp"

namespace mojave {

Engine::Engine(EngineOptions options) : options_(std::move(options)) {}

fir::Program Engine::compile(const std::string& name,
                             const std::string& source) const {
  fir::Program program = frontend::compile_source(name, source);
  if (options_.optimize) fir::optimize(program);
  fir::typecheck(program);
  if (options_.dump_fir != nullptr) {
    *options_.dump_fir << fir::to_string(program);
  }
  return program;
}

fir::Program Engine::compile_file(const std::filesystem::path& path) const {
  return compile(path.stem().string(), read_text_file(path));
}

EngineResult Engine::run_source(const std::string& name,
                                const std::string& source) {
  return run_program(compile(name, source));
}

EngineResult Engine::run_file(const std::filesystem::path& path) {
  return run_program(compile_file(path));
}

EngineResult Engine::run_program(fir::Program program) {
  vm::Process process(std::move(program), options_.process);
  if (options_.enable_migration) {
    process.adopt_hook(std::make_unique<migrate::Migrator>(process));
  }
  return finish(process, process.run());
}

EngineResult Engine::resume_file(const std::filesystem::path& image_path) {
  // Accepts plain files and checkpoint URIs, including ckpt://root/name
  // chunk-store snapshots (restored with verification + fallback).
  const auto bytes = migrate::read_checkpoint_uri(image_path.string());
  migrate::UnpackResult unpacked =
      migrate::unpack_process(bytes, options_.process);
  if (options_.enable_migration) {
    unpacked.process->adopt_hook(
        std::make_unique<migrate::Migrator>(*unpacked.process));
  }
  vm::Process& process = *unpacked.process;
  return finish(process, process.resume(unpacked.resume_fun,
                                        std::move(unpacked.resume_args)));
}

EngineResult Engine::finish(vm::Process& process, vm::RunResult run) const {
  EngineResult result;
  result.run = run;
  result.spec = process.spec().stats();
  result.vm = process.vm().stats();
  return result;
}

std::uint16_t Engine::serve(std::uint16_t port, const std::string& bind) {
  migrate::MigrationServer::Options opts;
  opts.port = port;
  opts.bind_address = bind;
  opts.cfg = options_.process;
  const bool enable_migration = options_.enable_migration;
  opts.prepare = [enable_migration](vm::Process& proc) {
    if (enable_migration) {
      proc.adopt_hook(std::make_unique<migrate::Migrator>(proc));
    }
  };
  server_ = std::make_unique<migrate::MigrationServer>(std::move(opts));
  return server_->port();
}

void Engine::stop_server() {
  if (server_) server_->stop();
  server_.reset();
}

std::string read_text_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open " + path.string());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

}  // namespace mojave
