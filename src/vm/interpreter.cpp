#include "vm/interpreter.hpp"

#include <algorithm>
#include <chrono>
#include <iostream>

#include "fir/ir.hpp"
#include "native/arch.hpp"
#include "native/engine.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "vm/eval.hpp"

namespace mojave::vm {

using runtime::PtrValue;
using runtime::Tag;
using runtime::Value;

namespace {

struct VmMetrics {
  obs::Counter& instructions;
  obs::Counter& calls;
  std::array<obs::Counter*, kNumOpClasses> classes;

  static VmMetrics& get() {
    static VmMetrics m = [] {
      auto& reg = obs::MetricsRegistry::instance();
      VmMetrics v{reg.counter("vm.instructions"), reg.counter("vm.calls"), {}};
      for (std::size_t i = 0; i < kNumOpClasses; ++i) {
        v.classes[i] = &reg.counter(
            std::string("vm.ops.") +
            op_class_name(static_cast<OpClass>(i)));
      }
      return v;
    }();
    return m;
  }
};

/// Flushes on scope exit so metrics survive exceptions out of run_from.
struct MetricsFlusher {
  Interpreter& vm;
  ~MetricsFlusher() { vm.flush_metrics(); }
};

}  // namespace

Interpreter::Interpreter(runtime::Heap& heap, spec::SpeculationManager& spec,
                         CompiledProgram compiled, bool intern)
    : heap_(heap),
      spec_(spec),
      compiled_(std::move(compiled)),
      out_(&std::cout) {
  heap_.add_root_provider(this);
  (void)VmMetrics::get();  // register vm.* metrics eagerly
  setup_function_table();
  if (intern) intern_strings();
  install_default_externals(*this);
}

void Interpreter::flush_metrics() {
  // The dispatch loop counts per opcode class only; the instruction total
  // is their sum (keeps the hot loop at a single memory counter).
  std::uint64_t total = 0;
  for (const std::uint64_t v : op_class_counts_) total += v;
  stats_.instructions = total;

  VmMetrics& m = VmMetrics::get();
  m.instructions.inc(stats_.instructions - exported_stats_.instructions);
  m.calls.inc(stats_.calls - exported_stats_.calls);
  exported_stats_ = stats_;
  for (std::size_t i = 0; i < kNumOpClasses; ++i) {
    m.classes[i]->inc(op_class_counts_[i] - exported_classes_[i]);
  }
  exported_classes_ = op_class_counts_;
}

Interpreter::~Interpreter() { heap_.remove_root_provider(this); }

void Interpreter::set_jit_options(const native::JitOptions& opts) {
  jit_opts_ = opts;
  engine_.reset();
}

void Interpreter::setup_function_table() {
  // Function-table order must match compiled-program order exactly — the
  // paper: "migration must be careful to preserve order in the pointer and
  // function tables". FunIndex i always denotes compiled function i.
  heap_.funs().clear();
  for (const CompiledFunction& f : compiled_.functions) {
    heap_.funs().insert(runtime::FunctionEntry{f.name, f.arity, f.fir_id});
  }
}

void Interpreter::intern_strings() {
  string_blocks_.clear();
  string_blocks_.reserve(compiled_.strings.size());
  for (const std::string& s : compiled_.strings) {
    string_blocks_.push_back(heap_.alloc_string(s));
  }
}

void Interpreter::register_external(const std::string& name, ExternalFn fn) {
  externals_[name] = std::move(fn);
}

void Interpreter::enumerate_roots(runtime::RootVisitor& visitor) {
  for (const Value& v : regs_) visitor.value_root(v);
  for (const Value& v : pending_args_) visitor.value_root(v);
  for (BlockIndex idx : string_blocks_) visitor.index_root(idx);
}

FunIndex Interpreter::resolve_callee(const Value& v) const {
  const FunIndex idx = v.as_fun();
  (void)heap_.funs().get(idx);  // validates against the function table
  if (idx >= compiled_.functions.size()) {
    throw SafetyError("call to unknown function " + std::to_string(idx));
  }
  return idx;
}

void Interpreter::validate_call(const CompiledFunction& fn,
                                std::span<const Value> args) const {
  if (args.size() != fn.arity) {
    throw SafetyError("call of " + fn.name + " with " +
                      std::to_string(args.size()) + " args, expected " +
                      std::to_string(fn.arity));
  }
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i].tag() != fn.param_tags[i]) {
      throw SafetyError("argument " + std::to_string(i) + " of " + fn.name +
                        " has tag " + runtime::tag_name(args[i].tag()) +
                        ", expected " +
                        runtime::tag_name(fn.param_tags[i]));
    }
  }
}

RunResult Interpreter::run() {
  return run_from(compiled_.entry, {});
}

RunResult Interpreter::run_from(FunIndex fun, std::vector<Value> args) {
  MetricsFlusher flusher{*this};
  start(fun, std::move(args));
  const SliceResult r = exec_slice(0);
  slice_active_ = false;
  switch (r.status) {
    case SliceResult::Status::kMigratedAway:
      return RunResult{RunResult::Kind::kMigratedAway, r.exit_code};
    case SliceResult::Status::kBlocked:
      // An agent-style external escaped into a plain run: there is no
      // scheduler to park under, so this is a programming error.
      throw Error("external would block outside run_slice");
    default:
      return RunResult{RunResult::Kind::kHalted, r.exit_code};
  }
}

void Interpreter::start(FunIndex fun, std::vector<Value> args) {
  if (slice_active_ && mid_function_) {
    throw Error("start() while a slice is suspended mid-function");
  }
  pending_fun_ = fun;
  pending_args_ = std::move(args);
  mid_function_ = false;
  slice_active_ = true;
}

SliceResult Interpreter::run_slice(std::uint64_t max_insns) {
  if (!slice_active_) throw Error("run_slice without start()");
  SliceResult r;
  try {
    r = exec_slice(max_insns);
  } catch (...) {
    slice_active_ = false;
    flush_metrics();
    throw;
  }
  if (r.status == SliceResult::Status::kHalted ||
      r.status == SliceResult::Status::kMigratedAway) {
    slice_active_ = false;
    flush_metrics();
  }
  return r;
}

SliceResult Interpreter::exec_slice(std::uint64_t max_insns) {
  // Build the native engine on first use. When the tier is disabled or
  // the host cannot run it, `engine` stays null and this function is a
  // pure interpreter — bit-identical behaviour either way.
  if (jit_opts_.enabled && engine_ == nullptr && native::jit_supported()) {
    engine_ = std::make_unique<native::Engine>(heap_, spec_, compiled_,
                                               jit_opts_);
  }
  native::Engine* engine = jit_opts_.enabled ? engine_.get() : nullptr;

  // 0 means "unlimited"; folding that into a sentinel keeps the per-
  // instruction budget check to a single compare. `executed` mirrors the
  // lifetime instruction count in a register; the authoritative total is
  // derived from op_class_counts_ in flush_metrics(). Two ceilings share
  // that compare: the lifetime fuse (throws) and the slice budget
  // (preempts); `limit` is the lower of the two.
  const std::uint64_t insn_budget =
      max_instructions_ != 0 ? max_instructions_ : ~std::uint64_t{0};
  std::uint64_t executed = 0;
  for (const std::uint64_t v : op_class_counts_) executed += v;
  const std::uint64_t slice_limit =
      max_insns != 0 && max_insns < ~std::uint64_t{0} - executed
          ? executed + max_insns
          : ~std::uint64_t{0};
  const std::uint64_t limit = std::min(insn_budget, slice_limit);

  while (true) {
    const CompiledFunction* f = &compiled_.function(pending_fun_);
    std::size_t pc = 0;
    if (mid_function_) {
      // Resuming a preempted/blocked slice: regs_ already hold the frame
      // of pending_fun_ at resume_pc_ — skip entry validation and the
      // native offer (that happens at control transfers only).
      mid_function_ = false;
      pc = resume_pc_;
    } else {
      validate_call(*f, pending_args_);
      ++stats_.calls;

      regs_.assign(f->num_regs, Value::unit());
      for (std::size_t i = 0; i < pending_args_.size(); ++i) {
        regs_[i] = pending_args_[i];
      }
      pending_args_.clear();

      if (engine != nullptr) {
        // Offer the transfer to the native tier. On success the engine ran
        // compiled code up to a deoptimization point and regs_ now holds
        // the register file of (io.fun, io.pc); resume interpreting right
        // there. The slice budget rides the same allowance: compiled code
        // deoptimizes with kBudget when it cannot cover the next block,
        // and the dispatch loop below turns that into a preemption.
        native::RunIo io;
        io.regs = &regs_;
        io.strings = &string_blocks_;
        io.class_counts = op_class_counts_.data();
        io.calls = &stats_.calls;
        io.budget = static_cast<std::int64_t>(std::min<std::uint64_t>(
            limit - executed,
            static_cast<std::uint64_t>(INT64_MAX)));
        io.fun = pending_fun_;
        const std::int64_t given = io.budget;
        if (engine->try_run(io)) {
          executed += static_cast<std::uint64_t>(given - io.budget);
          pending_fun_ = io.fun;
          f = &compiled_.function(io.fun);
          pc = io.pc;
        }
      }
    }
    bool transfer = false;
    while (!transfer) {
      if (pc >= f->code.size()) {
        throw SafetyError("program counter fell off the end of " + f->name);
      }
      const Insn& I = f->code[pc];
      ++op_class_counts_[I.cls];
      if (++executed > limit) {
        if (executed > insn_budget) {
          throw Error("instruction budget exhausted");
        }
        // Slice budget exhausted: un-retire this instruction and park
        // exactly before it — the resumed slice re-executes it.
        --executed;
        --op_class_counts_[I.cls];
        resume_pc_ = pc;
        mid_function_ = true;
        return SliceResult{SliceResult::Status::kPreempted, 0, 0};
      }
      try {
      switch (I.op) {
        case Op::kLoadUnit:
          regs_[I.dst] = Value::unit();
          break;
        case Op::kLoadInt:
          regs_[I.dst] = Value::from_int(I.imm);
          break;
        case Op::kLoadFloat:
          regs_[I.dst] = Value::from_float(I.fimm);
          break;
        case Op::kLoadString:
          if (I.aux >= string_blocks_.size()) {
            throw SafetyError("string id out of range");
          }
          regs_[I.dst] = Value::from_ptr(string_blocks_[I.aux], 0);
          break;
        case Op::kLoadFun:
          (void)heap_.funs().get(I.aux);
          regs_[I.dst] = Value::from_fun(I.aux);
          break;
        case Op::kLoadNull:
          regs_[I.dst] = Value::from_ptr(kNullIndex, 0);
          break;
        case Op::kMove:
          regs_[I.dst] = regs_[I.r1];
          break;
        case Op::kUnop:
          regs_[I.dst] = eval_unop(static_cast<fir::Unop>(I.sub), regs_[I.r1]);
          break;
        case Op::kBinop:
          regs_[I.dst] = eval_binop(static_cast<fir::Binop>(I.sub),
                                    regs_[I.r1], regs_[I.r2]);
          break;
        case Op::kAllocTagged: {
          const std::int64_t n = regs_[I.r1].as_int();
          if (n < 0 || n > static_cast<std::int64_t>(UINT32_MAX)) {
            throw SafetyError("alloc size out of range");
          }
          const Value init = regs_[I.r2];
          regs_[I.dst] = Value::from_ptr(
              heap_.alloc_tagged(static_cast<std::uint32_t>(n), init), 0);
          break;
        }
        case Op::kAllocRaw: {
          const std::int64_t n = regs_[I.r1].as_int();
          if (n < 0 || n > static_cast<std::int64_t>(UINT32_MAX)) {
            throw SafetyError("alloc_raw size out of range");
          }
          regs_[I.dst] = Value::from_ptr(
              heap_.alloc_raw(static_cast<std::uint32_t>(n)), 0);
          break;
        }
        case Op::kRead: {
          const PtrValue p = regs_[I.r1].as_ptr();
          const std::uint32_t off =
              effective_offset(p, regs_[I.r2].as_int());
          const Value v = heap_.read_slot(p.index, off);
          if (v.tag() != static_cast<Tag>(I.sub)) {
            throw SafetyError(
                std::string("read produced ") + runtime::tag_name(v.tag()) +
                ", expected " +
                runtime::tag_name(static_cast<Tag>(I.sub)));
          }
          regs_[I.dst] = v;
          break;
        }
        case Op::kWrite: {
          const PtrValue p = regs_[I.r1].as_ptr();
          const std::uint32_t off =
              effective_offset(p, regs_[I.r2].as_int());
          heap_.write_slot(p.index, off, regs_[I.r3]);
          break;
        }
        case Op::kRawLoad: {
          const PtrValue p = regs_[I.r1].as_ptr();
          const std::uint32_t off =
              effective_offset(p, regs_[I.r2].as_int());
          regs_[I.dst] = Value::from_int(heap_.raw_load(p.index, off, I.sub));
          break;
        }
        case Op::kRawStore: {
          const PtrValue p = regs_[I.r1].as_ptr();
          const std::uint32_t off =
              effective_offset(p, regs_[I.r2].as_int());
          heap_.raw_store(p.index, off, I.sub, regs_[I.r3].as_int());
          break;
        }
        case Op::kRawLoadF: {
          const PtrValue p = regs_[I.r1].as_ptr();
          const std::uint32_t off =
              effective_offset(p, regs_[I.r2].as_int());
          regs_[I.dst] = Value::from_float(heap_.raw_load_f64(p.index, off));
          break;
        }
        case Op::kRawStoreF: {
          const PtrValue p = regs_[I.r1].as_ptr();
          const std::uint32_t off =
              effective_offset(p, regs_[I.r2].as_int());
          heap_.raw_store_f64(p.index, off, regs_[I.r3].as_float());
          break;
        }
        case Op::kLen: {
          const PtrValue p = regs_[I.r1].as_ptr();
          regs_[I.dst] =
              Value::from_int(static_cast<std::int64_t>(heap_.deref(p.index)->h.count));
          break;
        }
        case Op::kPtrAdd: {
          const PtrValue p = regs_[I.r1].as_ptr();
          const std::uint32_t off =
              effective_offset(p, regs_[I.r2].as_int());
          regs_[I.dst] = Value::from_ptr(p.index, off);
          break;
        }
        case Op::kJump:
          pc = I.aux;
          continue;
        case Op::kJumpIfZero:
          if (regs_[I.r1].as_int() == 0) {
            pc = I.aux;
            continue;
          }
          break;
        case Op::kTailCall: {
          pending_fun_ = resolve_callee(regs_[I.r1]);
          pending_args_.clear();
          for (std::uint16_t r : I.args) pending_args_.push_back(regs_[r]);
          transfer = true;
          break;
        }
        case Op::kSpeculate: {
          const FunIndex callee = resolve_callee(regs_[I.r1]);
          spec::SavedContinuation cont;
          cont.fun = callee;
          for (std::uint16_t r : I.args) cont.args.push_back(regs_[r]);
          const SpecLevel level = spec_.speculate(cont);
          pending_fun_ = callee;
          pending_args_.clear();
          pending_args_.push_back(
              Value::from_int(static_cast<std::int64_t>(level)));
          for (std::uint16_t r : I.args) pending_args_.push_back(regs_[r]);
          transfer = true;
          break;
        }
        case Op::kCommit: {
          const std::int64_t level = regs_[I.r1].as_int();
          if (level <= 0) throw SpecError("commit of non-positive level");
          spec_.commit(static_cast<SpecLevel>(level));
          pending_fun_ = resolve_callee(regs_[I.r2]);
          pending_args_.clear();
          for (std::uint16_t r : I.args) pending_args_.push_back(regs_[r]);
          transfer = true;
          break;
        }
        case Op::kRollback:
        case Op::kAbort: {
          const std::int64_t level = regs_[I.r1].as_int();
          if (level <= 0) throw SpecError("rollback of non-positive level");
          const std::int64_t c = regs_[I.r2].as_int();
          const bool retry = I.op == Op::kRollback;
          spec::RollbackOutcome outcome =
              spec_.rollback(static_cast<SpecLevel>(level), c, retry);
          pending_fun_ = outcome.continuation.fun;
          pending_args_.clear();
          pending_args_.push_back(Value::from_int(outcome.continuation.c));
          for (const Value& v : outcome.continuation.args) {
            pending_args_.push_back(v);
          }
          transfer = true;
          break;
        }
        case Op::kMigrate: {
          const std::string target =
              heap_.read_string(regs_[I.r1].as_ptr());
          const FunIndex callee = resolve_callee(regs_[I.r2]);
          pending_args_.clear();
          for (std::uint16_t r : I.args) pending_args_.push_back(regs_[r]);
          if (hook_ == nullptr) {
            throw MigrateError("migrate instruction with no migration hook");
          }
          const auto action =
              hook_->on_migrate(*this, I.aux, target, callee, pending_args_);
          if (action == MigrationHook::Action::kExit) {
            return SliceResult{SliceResult::Status::kMigratedAway, 0, 0};
          }
          // "If migration fails for any reason, the process will continue
          // to execute on the original machine" — and the checkpoint
          // protocol always continues.
          pending_fun_ = callee;
          transfer = true;
          break;
        }
        case Op::kExternal: {
          if (I.aux >= compiled_.ext_names.size()) {
            throw SafetyError("external id out of range");
          }
          const std::string& name = compiled_.ext_names[I.aux];
          auto it = externals_.find(name);
          if (it == externals_.end()) {
            throw SafetyError("call of unregistered external: " + name);
          }
          std::vector<Value> ext_args;
          ext_args.reserve(I.args.size());
          for (std::uint16_t r : I.args) ext_args.push_back(regs_[r]);
          const Value result = it->second(*this, ext_args);
          if (result.tag() != static_cast<Tag>(I.sub)) {
            throw SafetyError("external " + name + " returned " +
                              runtime::tag_name(result.tag()) +
                              ", declared " +
                              runtime::tag_name(static_cast<Tag>(I.sub)));
          }
          regs_[I.dst] = result;
          break;
        }
        case Op::kHalt:
          return SliceResult{SliceResult::Status::kHalted,
                             regs_[I.r1].as_int(), 0};
      }
      ++pc;
      } catch (const WouldBlock& wb) {
        // The external could not complete; un-retire its instruction and
        // park exactly before it. Resume re-executes the external, which
        // must be idempotent up to its blocking point.
        --executed;
        --op_class_counts_[I.cls];
        resume_pc_ = pc;
        mid_function_ = true;
        return SliceResult{SliceResult::Status::kBlocked, 0,
                           wb.deadline_seconds};
      } catch (const SafetyError&) {
        // Rx-style recovery: convert the trap into a rollback of the
        // newest speculation level and resume at its continuation.
        if (!trap_to_speculation_ || spec_.current_level() == 0) throw;
        spec::RollbackOutcome outcome =
            spec_.rollback(spec_.current_level(), kTrapC, /*retry=*/true);
        pending_fun_ = outcome.continuation.fun;
        pending_args_.clear();
        pending_args_.push_back(Value::from_int(outcome.continuation.c));
        for (const Value& v : outcome.continuation.args) {
          pending_args_.push_back(v);
        }
        transfer = true;
      }
    }
  }
}

void install_default_externals(Interpreter& vm) {
  vm.register_external(
      "print_string",
      [](Interpreter& it, std::span<const Value> args) -> Value {
        if (args.size() != 1) throw SafetyError("print_string arity");
        it.out() << it.heap().read_string(args[0].as_ptr());
        return Value::unit();
      });
  vm.register_external(
      "print_int", [](Interpreter& it, std::span<const Value> args) -> Value {
        if (args.size() != 1) throw SafetyError("print_int arity");
        it.out() << args[0].as_int();
        return Value::unit();
      });
  vm.register_external(
      "print_float",
      [](Interpreter& it, std::span<const Value> args) -> Value {
        if (args.size() != 1) throw SafetyError("print_float arity");
        it.out() << args[0].as_float();
        return Value::unit();
      });
  vm.register_external(
      "clock_us", [](Interpreter&, std::span<const Value> args) -> Value {
        if (!args.empty()) throw SafetyError("clock_us arity");
        const auto now =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count();
        return Value::from_int(static_cast<std::int64_t>(now));
      });
  vm.register_external(
      "spec_level", [](Interpreter& it, std::span<const Value> args) -> Value {
        if (!args.empty()) throw SafetyError("spec_level arity");
        return Value::from_int(
            static_cast<std::int64_t>(it.spec().current_level()));
      });
  vm.register_external(
      "heap_live_bytes",
      [](Interpreter& it, std::span<const Value> args) -> Value {
        if (!args.empty()) throw SafetyError("heap_live_bytes arity");
        return Value::from_int(
            static_cast<std::int64_t>(it.heap().live_bytes()));
      });
}

}  // namespace mojave::vm
