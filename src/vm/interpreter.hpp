// The bytecode interpreter: Mojave's execution engine.
//
// Executes one process image: a compiled program, a heap, and a current
// continuation (function + argument registers). Because the FIR is in
// continuation-passing style there is no call stack — control transfer is
// a trampoline, and the complete execution state at any suspension point
// is (function id, argument values), which is what makes whole-process
// migration and speculation rollback tractable (paper, Section 4.2.2:
// "the set of live variables across migration corresponds exactly to the
// arguments passed to function f").
//
// Every heap access performs the runtime safety checks the paper's
// backend emits: pointer-table validation, bounds checks, and tag checks.
#pragma once

#include <array>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "native/options.hpp"
#include "runtime/heap.hpp"
#include "spec/speculation.hpp"
#include "vm/bytecode.hpp"

namespace mojave::native {
class Engine;
}  // namespace mojave::native

namespace mojave::vm {

class Interpreter;

/// Host function callable from managed code. Receives the interpreter (for
/// heap access) and the evaluated arguments; returns the result value,
/// whose tag is checked against the call site's declared type.
using ExternalFn =
    std::function<runtime::Value(Interpreter&, std::span<const runtime::Value>)>;

/// Installed by the migration machinery; receives control at a `migrate`
/// instruction with the full resume continuation.
class MigrationHook {
 public:
  enum class Action {
    kContinue,  ///< resume locally (checkpoint protocol, or migration failed)
    kExit,      ///< the process has moved / suspended: stop running here
  };

  virtual ~MigrationHook() = default;
  virtual Action on_migrate(Interpreter& vm, MigrateLabel label,
                            const std::string& target, FunIndex resume_fun,
                            std::span<const runtime::Value> resume_args) = 0;
};

struct RunResult {
  enum class Kind { kHalted, kMigratedAway } kind = Kind::kHalted;
  std::int64_t exit_code = 0;
};

/// Thrown by an external function that cannot complete without waiting
/// (an empty mailbox, a pacing gate). Only meaningful under run_slice():
/// the instruction is un-retired, the interpreter parks exactly before it,
/// and the scheduler re-executes the external once `deadline_seconds`
/// passes or the event it waits for arrives. Externals that throw this
/// must be idempotent up to the blocking point — re-execution is the
/// resume mechanism, exactly as for a native-tier deoptimization.
struct WouldBlock {
  /// Steady-clock wake-by time in seconds; 0 = wake on event only.
  double deadline_seconds = 0;
};

/// Outcome of one bounded slice of execution (the fiber-scheduler view of
/// a rank: a CPS machine advanced some instructions and stopped at a
/// clean suspension point).
struct SliceResult {
  enum class Status {
    kHalted,        ///< program executed `halt`
    kMigratedAway,  ///< migration hook took the process (or it yielded)
    kPreempted,     ///< slice budget exhausted; resume with run_slice
    kBlocked,       ///< an external threw WouldBlock; park, then resume
  } status = Status::kHalted;
  std::int64_t exit_code = 0;
  double block_deadline = 0;  ///< kBlocked: WouldBlock::deadline_seconds
};

struct VmStats {
  std::uint64_t instructions = 0;
  std::uint64_t calls = 0;
};

/// Per-opcode-class instruction counts (indexed by OpClass).
using OpClassCounts = std::array<std::uint64_t, kNumOpClasses>;

class Interpreter final : public runtime::RootProvider {
 public:
  /// `intern_strings` is false when an unpack operation will restore the
  /// string blocks from a migrated image instead.
  Interpreter(runtime::Heap& heap, spec::SpeculationManager& spec,
              CompiledProgram compiled, bool intern_strings = true);
  ~Interpreter() override;

  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  void register_external(const std::string& name, ExternalFn fn);
  void set_migration_hook(MigrationHook* hook) { hook_ = hook; }
  void set_output(std::ostream* out) { out_ = out; }
  [[nodiscard]] std::ostream& out() const { return *out_; }
  /// 0 = unlimited. A fuse for tests and property sweeps.
  void set_max_instructions(std::uint64_t n) { max_instructions_ = n; }

  /// Native-tier policy. Takes effect at the next run_from; replacing the
  /// options drops any engine already built under the previous policy.
  void set_jit_options(const native::JitOptions& opts);
  [[nodiscard]] const native::JitOptions& jit_options() const {
    return jit_opts_;
  }
  /// The native engine, or null while no function has warranted one (JIT
  /// disabled, unsupported host, or simply not yet running).
  [[nodiscard]] native::Engine* native_engine() const { return engine_.get(); }

  /// When enabled, a runtime safety trap (out-of-bounds access, bad tag,
  /// null pointer) raised inside an active speculation rolls the newest
  /// level back with c = kTrapC instead of terminating the process — the
  /// paper's Rx-style recovery: "if a buffer overflow occurs the program
  /// is rolled back ... and a different path of execution (potentially
  /// allocating more memory and retrying) could be taken" (Section 2).
  void set_trap_to_speculation(bool enable) { trap_to_speculation_ = enable; }

  /// The c value delivered to a continuation re-entered by a safety trap.
  static constexpr std::int64_t kTrapC = -2;

  /// Run from the program entry point.
  RunResult run();
  /// Resume at an arbitrary continuation (unpack, speculation re-entry).
  /// The function index and argument tags are validated first.
  RunResult run_from(FunIndex fun, std::vector<runtime::Value> args);

  // --- Resumable slices (the fiber entry points) -----------------------
  //
  // start() arms a continuation; run_slice() advances it by at most
  // `max_insns` instructions and returns at a suspension point: slice
  // budget exhausted (kPreempted, resume by calling run_slice again), an
  // external threw WouldBlock (kBlocked, the un-retired external will be
  // re-executed on resume), or a terminal state. The suspended frame
  // (registers, pc) lives in the interpreter and is enumerated as GC
  // roots, so a parked fiber survives collections and checkpoints.
  // The native tier composes: a slice may run natively and deoptimize
  // back mid-function; the saved (fun, pc, frame) is the same state.

  /// Arm the continuation (fun, args). Must not be called while a slice
  /// is suspended mid-run.
  void start(FunIndex fun, std::vector<runtime::Value> args);
  /// Advance the armed continuation by at most `max_insns` instructions
  /// (0 = unlimited). Requires start() first; callable again after
  /// kPreempted/kBlocked until a terminal status is returned.
  SliceResult run_slice(std::uint64_t max_insns);
  /// True between start() and a terminal run_slice() status.
  [[nodiscard]] bool slice_active() const { return slice_active_; }

  [[nodiscard]] runtime::Heap& heap() { return heap_; }
  [[nodiscard]] spec::SpeculationManager& spec() { return spec_; }
  [[nodiscard]] const CompiledProgram& compiled() const { return compiled_; }
  [[nodiscard]] const VmStats& stats() const { return stats_; }
  [[nodiscard]] const OpClassCounts& op_class_counts() const {
    return op_class_counts_;
  }

  /// Export the still-unexported instruction/call/opcode-class counts into
  /// the process-wide metrics registry. Runs automatically when run_from
  /// unwinds; hot loops only touch plain per-interpreter counters.
  void flush_metrics();

  /// Interned string blocks: process state, preserved across migration.
  [[nodiscard]] const std::vector<BlockIndex>& string_blocks() const {
    return string_blocks_;
  }
  void set_string_blocks(std::vector<BlockIndex> blocks) {
    string_blocks_ = std::move(blocks);
  }

  void enumerate_roots(runtime::RootVisitor& visitor) override;

 private:
  void setup_function_table();
  void intern_strings();
  void validate_call(const CompiledFunction& fn,
                     std::span<const runtime::Value> args) const;
  [[nodiscard]] FunIndex resolve_callee(const runtime::Value& v) const;
  /// The dispatch loop shared by run_from (unlimited) and run_slice.
  SliceResult exec_slice(std::uint64_t max_insns);

  runtime::Heap& heap_;
  spec::SpeculationManager& spec_;
  CompiledProgram compiled_;
  std::map<std::string, ExternalFn> externals_;
  MigrationHook* hook_ = nullptr;
  std::ostream* out_;

  std::vector<runtime::Value> regs_;
  FunIndex pending_fun_ = 0;
  std::vector<runtime::Value> pending_args_;
  /// Slice suspension state: when mid_function_, the armed continuation
  /// is (pending_fun_, resume_pc_, regs_) rather than a function entry.
  std::size_t resume_pc_ = 0;
  bool mid_function_ = false;
  bool slice_active_ = false;
  std::vector<BlockIndex> string_blocks_;
  VmStats stats_;
  OpClassCounts op_class_counts_{};
  /// What has already been flushed to the registry (delta tracking).
  VmStats exported_stats_;
  OpClassCounts exported_classes_{};
  std::uint64_t max_instructions_ = 0;
  bool trap_to_speculation_ = false;
  native::JitOptions jit_opts_ = native::jit_options_from_env();
  std::unique_ptr<native::Engine> engine_;
};

/// Installs the standard host externals (I/O, clocks, introspection).
void install_default_externals(Interpreter& vm);

}  // namespace mojave::vm
