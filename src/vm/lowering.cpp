#include "vm/lowering.hpp"

#include <algorithm>
#include <string>

#include "support/error.hpp"

namespace mojave::vm {

runtime::Tag tag_of(const fir::Type& ty) {
  switch (ty.kind) {
    case fir::TyKind::kUnit:
      return runtime::Tag::kUnit;
    case fir::TyKind::kInt:
      return runtime::Tag::kInt;
    case fir::TyKind::kFloat:
      return runtime::Tag::kFloat;
    case fir::TyKind::kPtr:
      return runtime::Tag::kPtr;
    case fir::TyKind::kFun:
      return runtime::Tag::kFun;
  }
  throw TypeError("unmappable type");
}

namespace {

class FunctionLowering {
 public:
  FunctionLowering(const fir::Program& prog, const fir::Function& fn,
                   CompiledProgram& out)
      : prog_(prog), fn_(fn), out_(out) {}

  CompiledFunction run() {
    CompiledFunction cf;
    cf.fir_id = fn_.id;
    cf.name = fn_.name;
    cf.arity = fn_.arity();
    for (const fir::Type& ty : fn_.param_tys) {
      cf.param_tags.push_back(tag_of(ty));
    }
    code_ = &cf.code;
    lower_expr(fn_.body.get());
    const std::uint32_t regs = fn_.num_vars + scratch_peak_;
    if (regs > 65535) throw TypeError("too many registers in " + fn_.name);
    cf.num_regs = static_cast<std::uint16_t>(regs);
    return cf;
  }

 private:
  Insn& emit(Op op) {
    code_->emplace_back();
    code_->back().op = op;
    code_->back().cls = static_cast<std::uint8_t>(op_class(op));
    return code_->back();
  }

  std::uint16_t scratch() {
    const std::uint32_t reg = fn_.num_vars + scratch_cursor_++;
    scratch_peak_ = std::max(scratch_peak_, scratch_cursor_);
    return static_cast<std::uint16_t>(reg);
  }

  /// Materialize an atom into a register.
  std::uint16_t areg(const fir::Atom& a) {
    using K = fir::Atom::Kind;
    switch (a.kind) {
      case K::kVar:
        return static_cast<std::uint16_t>(a.var);
      case K::kUnit: {
        const std::uint16_t r = scratch();
        emit(Op::kLoadUnit).dst = r;
        return r;
      }
      case K::kInt: {
        const std::uint16_t r = scratch();
        Insn& i = emit(Op::kLoadInt);
        i.dst = r;
        i.imm = a.i;
        return r;
      }
      case K::kFloat: {
        const std::uint16_t r = scratch();
        Insn& i = emit(Op::kLoadFloat);
        i.dst = r;
        i.fimm = a.f;
        return r;
      }
      case K::kFunRef: {
        const std::uint16_t r = scratch();
        Insn& i = emit(Op::kLoadFun);
        i.dst = r;
        i.aux = a.fun;
        return r;
      }
      case K::kString: {
        const std::uint16_t r = scratch();
        Insn& i = emit(Op::kLoadString);
        i.dst = r;
        i.aux = a.string_id;
        return r;
      }
      case K::kNull: {
        const std::uint16_t r = scratch();
        emit(Op::kLoadNull).dst = r;
        return r;
      }
    }
    throw TypeError("malformed atom in lowering");
  }

  std::vector<std::uint16_t> aregs(const std::vector<fir::Atom>& atoms) {
    std::vector<std::uint16_t> regs;
    regs.reserve(atoms.size());
    for (const fir::Atom& a : atoms) regs.push_back(areg(a));
    return regs;
  }

  std::uint32_t ext_id(const std::string& name) {
    for (std::uint32_t i = 0; i < out_.ext_names.size(); ++i) {
      if (out_.ext_names[i] == name) return i;
    }
    out_.ext_names.push_back(name);
    return static_cast<std::uint32_t>(out_.ext_names.size() - 1);
  }

  void lower_expr(const fir::Expr* e) {
    using EK = fir::ExprKind;
    for (; e != nullptr; e = e->next.get()) {
      scratch_cursor_ = 0;  // scratches live only within one FIR node
      switch (e->kind) {
        case EK::kLetAtom: {
          const std::uint16_t src = areg(e->a);
          Insn& i = emit(Op::kMove);
          i.dst = static_cast<std::uint16_t>(e->bind);
          i.r1 = src;
          break;
        }
        case EK::kLetUnop: {
          const std::uint16_t src = areg(e->a);
          Insn& i = emit(Op::kUnop);
          i.dst = static_cast<std::uint16_t>(e->bind);
          i.sub = static_cast<std::uint8_t>(e->unop);
          i.r1 = src;
          break;
        }
        case EK::kLetBinop: {
          const std::uint16_t a = areg(e->a);
          const std::uint16_t b = areg(e->b);
          Insn& i = emit(Op::kBinop);
          i.dst = static_cast<std::uint16_t>(e->bind);
          i.sub = static_cast<std::uint8_t>(e->binop);
          i.r1 = a;
          i.r2 = b;
          break;
        }
        case EK::kLetAllocTagged: {
          const std::uint16_t n = areg(e->a);
          const std::uint16_t init = areg(e->b);
          Insn& i = emit(Op::kAllocTagged);
          i.dst = static_cast<std::uint16_t>(e->bind);
          i.r1 = n;
          i.r2 = init;
          break;
        }
        case EK::kLetAllocRaw: {
          const std::uint16_t n = areg(e->a);
          Insn& i = emit(Op::kAllocRaw);
          i.dst = static_cast<std::uint16_t>(e->bind);
          i.r1 = n;
          break;
        }
        case EK::kLetRead: {
          const std::uint16_t p = areg(e->a);
          const std::uint16_t off = areg(e->b);
          Insn& i = emit(Op::kRead);
          i.dst = static_cast<std::uint16_t>(e->bind);
          i.sub = static_cast<std::uint8_t>(tag_of(e->bind_ty));
          i.r1 = p;
          i.r2 = off;
          break;
        }
        case EK::kWrite: {
          const std::uint16_t p = areg(e->a);
          const std::uint16_t off = areg(e->b);
          const std::uint16_t v = areg(e->c_atom);
          Insn& i = emit(Op::kWrite);
          i.r1 = p;
          i.r2 = off;
          i.r3 = v;
          break;
        }
        case EK::kLetRawLoad: {
          const std::uint16_t p = areg(e->a);
          const std::uint16_t off = areg(e->b);
          Insn& i = emit(Op::kRawLoad);
          i.dst = static_cast<std::uint16_t>(e->bind);
          i.sub = static_cast<std::uint8_t>(e->width);
          i.r1 = p;
          i.r2 = off;
          break;
        }
        case EK::kRawStore: {
          const std::uint16_t p = areg(e->a);
          const std::uint16_t off = areg(e->b);
          const std::uint16_t v = areg(e->c_atom);
          Insn& i = emit(Op::kRawStore);
          i.sub = static_cast<std::uint8_t>(e->width);
          i.r1 = p;
          i.r2 = off;
          i.r3 = v;
          break;
        }
        case EK::kLetRawLoadF: {
          const std::uint16_t p = areg(e->a);
          const std::uint16_t off = areg(e->b);
          Insn& i = emit(Op::kRawLoadF);
          i.dst = static_cast<std::uint16_t>(e->bind);
          i.r1 = p;
          i.r2 = off;
          break;
        }
        case EK::kRawStoreF: {
          const std::uint16_t p = areg(e->a);
          const std::uint16_t off = areg(e->b);
          const std::uint16_t v = areg(e->c_atom);
          Insn& i = emit(Op::kRawStoreF);
          i.r1 = p;
          i.r2 = off;
          i.r3 = v;
          break;
        }
        case EK::kLetLen: {
          const std::uint16_t p = areg(e->a);
          Insn& i = emit(Op::kLen);
          i.dst = static_cast<std::uint16_t>(e->bind);
          i.r1 = p;
          break;
        }
        case EK::kLetPtrAdd: {
          const std::uint16_t p = areg(e->a);
          const std::uint16_t d = areg(e->b);
          Insn& i = emit(Op::kPtrAdd);
          i.dst = static_cast<std::uint16_t>(e->bind);
          i.r1 = p;
          i.r2 = d;
          break;
        }
        case EK::kIf: {
          const std::uint16_t cond = areg(e->a);
          const std::size_t jz_at = code_->size();
          Insn& jz = emit(Op::kJumpIfZero);
          jz.r1 = cond;
          lower_expr(e->next.get());
          (*code_)[jz_at].aux = static_cast<std::uint32_t>(code_->size());
          lower_expr(e->els.get());
          return;
        }
        case EK::kTailCall: {
          const std::uint16_t f = areg(e->fun);
          auto args = aregs(e->args);
          Insn& i = emit(Op::kTailCall);
          i.r1 = f;
          i.args = std::move(args);
          return;
        }
        case EK::kSpeculate: {
          const std::uint16_t f = areg(e->fun);
          auto args = aregs(e->args);
          Insn& i = emit(Op::kSpeculate);
          i.r1 = f;
          i.args = std::move(args);
          return;
        }
        case EK::kCommit: {
          const std::uint16_t level = areg(e->a);
          const std::uint16_t f = areg(e->fun);
          auto args = aregs(e->args);
          Insn& i = emit(Op::kCommit);
          i.r1 = level;
          i.r2 = f;
          i.args = std::move(args);
          return;
        }
        case EK::kRollback:
        case EK::kAbort: {
          const std::uint16_t level = areg(e->a);
          const std::uint16_t c = areg(e->b);
          Insn& i =
              emit(e->kind == EK::kRollback ? Op::kRollback : Op::kAbort);
          i.r1 = level;
          i.r2 = c;
          return;
        }
        case EK::kMigrate: {
          const std::uint16_t target = areg(e->a);
          const std::uint16_t f = areg(e->fun);
          auto args = aregs(e->args);
          Insn& i = emit(Op::kMigrate);
          i.aux = e->label;
          i.r1 = target;
          i.r2 = f;
          i.args = std::move(args);
          out_.migrate_labels[e->label] =
              e->fun.kind == fir::Atom::Kind::kFunRef ? e->fun.fun
                                                      : UINT32_MAX;
          return;
        }
        case EK::kLetExternal: {
          auto args = aregs(e->args);
          Insn& i = emit(Op::kExternal);
          i.dst = static_cast<std::uint16_t>(e->bind);
          i.sub = static_cast<std::uint8_t>(tag_of(e->bind_ty));
          i.aux = ext_id(e->ext_name);
          i.args = std::move(args);
          break;
        }
        case EK::kHalt: {
          const std::uint16_t code = areg(e->a);
          emit(Op::kHalt).r1 = code;
          return;
        }
      }
    }
  }

  const fir::Program& prog_;
  const fir::Function& fn_;
  CompiledProgram& out_;
  std::vector<Insn>* code_ = nullptr;
  std::uint32_t scratch_cursor_ = 0;
  std::uint32_t scratch_peak_ = 0;
};

}  // namespace

CompiledProgram lower(const fir::Program& program) {
  CompiledProgram out;
  out.name = program.name;
  out.entry = program.entry;
  out.strings = program.strings;
  out.functions.reserve(program.functions.size());
  for (const fir::Function& fn : program.functions) {
    out.functions.push_back(FunctionLowering(program, fn, out).run());
  }
  return out;
}

}  // namespace mojave::vm
