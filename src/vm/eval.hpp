// Scalar operator semantics shared by every backend.
//
// Both execution engines (the bytecode interpreter and the RISC machine
// simulator) — and the FIR optimizer's constant folder — must agree on
// arithmetic down to the last bit, or migration between backends would
// change program behaviour. This header is the single definition.
#pragma once

#include "fir/ir.hpp"
#include "runtime/value.hpp"
#include "support/error.hpp"

namespace mojave::vm {

inline runtime::Value eval_unop(fir::Unop op, const runtime::Value& a) {
  using fir::Unop;
  using runtime::Value;
  switch (op) {
    case Unop::kNeg:
      return Value::from_int(-a.as_int());
    case Unop::kNot:
      return Value::from_int(a.as_int() == 0 ? 1 : 0);
    case Unop::kBitNot:
      return Value::from_int(~a.as_int());
    case Unop::kFNeg:
      return Value::from_float(-a.as_float());
    case Unop::kIntOfFloat:
      return Value::from_int(static_cast<std::int64_t>(a.as_float()));
    case Unop::kFloatOfInt:
      return Value::from_float(static_cast<double>(a.as_int()));
  }
  throw SafetyError("unknown unary operator");
}

inline runtime::Value eval_binop(fir::Binop op, const runtime::Value& a,
                                 const runtime::Value& b) {
  using fir::Binop;
  using runtime::Value;
  switch (op) {
    case Binop::kAdd:
      return Value::from_int(a.as_int() + b.as_int());
    case Binop::kSub:
      return Value::from_int(a.as_int() - b.as_int());
    case Binop::kMul:
      return Value::from_int(a.as_int() * b.as_int());
    case Binop::kDiv: {
      const std::int64_t d = b.as_int();
      if (d == 0) throw SafetyError("integer division by zero");
      return Value::from_int(a.as_int() / d);
    }
    case Binop::kMod: {
      const std::int64_t d = b.as_int();
      if (d == 0) throw SafetyError("integer modulo by zero");
      return Value::from_int(a.as_int() % d);
    }
    case Binop::kAnd:
      return Value::from_int(a.as_int() & b.as_int());
    case Binop::kOr:
      return Value::from_int(a.as_int() | b.as_int());
    case Binop::kXor:
      return Value::from_int(a.as_int() ^ b.as_int());
    case Binop::kShl:
      return Value::from_int(a.as_int() << (b.as_int() & 63));
    case Binop::kShr:
      return Value::from_int(a.as_int() >> (b.as_int() & 63));
    case Binop::kLt:
      return Value::from_int(a.as_int() < b.as_int() ? 1 : 0);
    case Binop::kLe:
      return Value::from_int(a.as_int() <= b.as_int() ? 1 : 0);
    case Binop::kGt:
      return Value::from_int(a.as_int() > b.as_int() ? 1 : 0);
    case Binop::kGe:
      return Value::from_int(a.as_int() >= b.as_int() ? 1 : 0);
    case Binop::kEq:
      return Value::from_int(a.as_int() == b.as_int() ? 1 : 0);
    case Binop::kNe:
      return Value::from_int(a.as_int() != b.as_int() ? 1 : 0);
    case Binop::kFAdd:
      return Value::from_float(a.as_float() + b.as_float());
    case Binop::kFSub:
      return Value::from_float(a.as_float() - b.as_float());
    case Binop::kFMul:
      return Value::from_float(a.as_float() * b.as_float());
    case Binop::kFDiv:
      return Value::from_float(a.as_float() / b.as_float());
    case Binop::kFLt:
      return Value::from_int(a.as_float() < b.as_float() ? 1 : 0);
    case Binop::kFLe:
      return Value::from_int(a.as_float() <= b.as_float() ? 1 : 0);
    case Binop::kFGt:
      return Value::from_int(a.as_float() > b.as_float() ? 1 : 0);
    case Binop::kFGe:
      return Value::from_int(a.as_float() >= b.as_float() ? 1 : 0);
    case Binop::kFEq:
      return Value::from_int(a.as_float() == b.as_float() ? 1 : 0);
    case Binop::kFNe:
      return Value::from_int(a.as_float() != b.as_float() ? 1 : 0);
  }
  throw SafetyError("unknown binary operator");
}

/// Effective offset of a (base, offset) pointer plus an index operand.
inline std::uint32_t effective_offset(runtime::PtrValue p, std::int64_t off) {
  const std::int64_t eff = static_cast<std::int64_t>(p.offset) + off;
  if (eff < 0 || eff > static_cast<std::int64_t>(UINT32_MAX)) {
    throw SafetyError("pointer offset " + std::to_string(eff) +
                      " out of representable range");
  }
  return static_cast<std::uint32_t>(eff);
}

}  // namespace mojave::vm
