// Register bytecode: the Mojave "object code".
//
// The paper's backends elaborate FIR into machine-specific assembly
// (IA32 or a simulated RISC). This repository's portable equivalent is a
// virtual register machine: lowering (vm/lowering.hpp) plays the role of
// the code generator, and re-running it on unpack plays the role of the
// destination-side recompilation that dominates untrusted-migration cost.
//
// Trusted ("binary") migration ships this bytecode directly — see
// serialize_compiled/deserialize_compiled — skipping typecheck and
// lowering, exactly as MCC's binary migration ships native code between
// identical trusted hosts.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "runtime/value.hpp"
#include "support/common.hpp"
#include "support/serialize.hpp"

namespace mojave::vm {

enum class Op : std::uint8_t {
  kLoadUnit = 0,   // dst = ()
  kLoadInt,        // dst = imm
  kLoadFloat,      // dst = fimm
  kLoadString,     // dst = ptr to interned string block #aux
  kLoadFun,        // dst = fun #aux
  kLoadNull,       // dst = null pointer (table index 0)
  kMove,           // dst = r1
  kUnop,           // dst = sub(r1)
  kBinop,          // dst = r1 sub r2
  kAllocTagged,    // dst = alloc(r1 slots, init r2)
  kAllocRaw,       // dst = alloc_raw(r1 bytes)
  kRead,           // dst = read(r1 ptr, r2 off); runtime tag check vs sub
  kWrite,          // write(r1 ptr, r2 off) := r3
  kRawLoad,        // dst = raw_load{sub bytes}(r1, r2)
  kRawStore,       // raw_store{sub bytes}(r1, r2) := r3
  kRawLoadF,       // dst = raw_loadf(r1, r2)
  kRawStoreF,      // raw_storef(r1, r2) := r3
  kLen,            // dst = block size of r1 (slots or bytes)
  kPtrAdd,         // dst = (r1.base, r1.off + r2)
  kJump,           // pc = aux
  kJumpIfZero,     // if r1 == 0 then pc = aux
  kTailCall,       // transfer to function in r1 with args
  kSpeculate,      // enter level; call r1(c=level, args)
  kCommit,         // commit level r1; call r2(args)
  kRollback,       // rollback [r1, r2] — retry
  kAbort,          // rollback [r1, r2] — no re-entry
  kMigrate,        // migrate [label=aux, target r1] r2(args)
  kExternal,       // dst = external #aux (args); tag check vs sub
  kHalt,           // halt r1
};

/// Coarse instruction classes for the VM's per-opcode-class telemetry
/// counters (exported as `vm.ops.<class>` in the metrics registry).
enum class OpClass : std::uint8_t {
  kLoad = 0,   ///< register loads and moves
  kArith,      ///< unop / binop / len / ptr_add
  kAlloc,
  kHeapRead,   ///< tagged reads and raw loads
  kHeapWrite,  ///< tagged writes and raw stores
  kControl,    ///< jumps, tail calls, halt
  kSpec,       ///< speculate / commit / rollback / abort
  kMigrate,
  kExternal,
};
inline constexpr std::size_t kNumOpClasses = 9;

[[nodiscard]] constexpr const char* op_class_name(OpClass c) {
  switch (c) {
    case OpClass::kLoad: return "load";
    case OpClass::kArith: return "arith";
    case OpClass::kAlloc: return "alloc";
    case OpClass::kHeapRead: return "heap_read";
    case OpClass::kHeapWrite: return "heap_write";
    case OpClass::kControl: return "control";
    case OpClass::kSpec: return "spec";
    case OpClass::kMigrate: return "migrate";
    case OpClass::kExternal: return "external";
  }
  return "?";
}

[[nodiscard]] constexpr OpClass op_class(Op op) {
  switch (op) {
    case Op::kLoadUnit:
    case Op::kLoadInt:
    case Op::kLoadFloat:
    case Op::kLoadString:
    case Op::kLoadFun:
    case Op::kLoadNull:
    case Op::kMove:
      return OpClass::kLoad;
    case Op::kUnop:
    case Op::kBinop:
    case Op::kLen:
    case Op::kPtrAdd:
      return OpClass::kArith;
    case Op::kAllocTagged:
    case Op::kAllocRaw:
      return OpClass::kAlloc;
    case Op::kRead:
    case Op::kRawLoad:
    case Op::kRawLoadF:
      return OpClass::kHeapRead;
    case Op::kWrite:
    case Op::kRawStore:
    case Op::kRawStoreF:
      return OpClass::kHeapWrite;
    case Op::kJump:
    case Op::kJumpIfZero:
    case Op::kTailCall:
    case Op::kHalt:
      return OpClass::kControl;
    case Op::kSpeculate:
    case Op::kCommit:
    case Op::kRollback:
    case Op::kAbort:
      return OpClass::kSpec;
    case Op::kMigrate:
      return OpClass::kMigrate;
    case Op::kExternal:
      return OpClass::kExternal;
  }
  return OpClass::kControl;
}

inline constexpr std::size_t kNumOps = static_cast<std::size_t>(Op::kHalt) + 1;

/// Flat Op → OpClass index table: the interpreter's dispatch loop does one
/// table load per retired instruction instead of evaluating the switch.
inline constexpr auto kOpClassTable = [] {
  std::array<std::uint8_t, kNumOps> t{};
  for (std::size_t i = 0; i < kNumOps; ++i) {
    t[i] = static_cast<std::uint8_t>(op_class(static_cast<Op>(i)));
  }
  return t;
}();

/// One instruction. A fat fixed struct plus an argument list keeps decode
/// trivial and the encoding obvious.
struct Insn {
  Op op = Op::kHalt;
  std::uint8_t sub = 0;  ///< unop/binop code, width, or expected Tag
  /// op_class(op), cached so the dispatch loop's telemetry counter needs
  /// no table lookup. Derived — not serialized; set wherever op is set.
  std::uint8_t cls = static_cast<std::uint8_t>(OpClass::kControl);
  std::uint16_t dst = 0;
  std::uint16_t r1 = 0;
  std::uint16_t r2 = 0;
  std::uint16_t r3 = 0;
  std::uint32_t aux = 0;  ///< jump target / fun id / string id / label / ext id
  std::int64_t imm = 0;
  double fimm = 0.0;
  std::vector<std::uint16_t> args;  ///< argument registers for calls
};

struct CompiledFunction {
  std::uint32_t fir_id = 0;
  std::string name;
  std::uint32_t arity = 0;
  std::uint16_t num_regs = 0;
  std::vector<runtime::Tag> param_tags;  ///< runtime check on entry
  std::vector<Insn> code;
};

struct CompiledProgram {
  std::string name;
  std::uint32_t entry = 0;
  std::vector<CompiledFunction> functions;
  std::vector<std::string> strings;
  std::vector<std::string> ext_names;  ///< external symbol table
  /// migrate label → continuation function id; lets unpack verify that a
  /// claimed resume point really is a migration point of this program.
  std::map<MigrateLabel, std::uint32_t> migrate_labels;

  [[nodiscard]] const CompiledFunction& function(std::uint32_t id) const;
};

/// Trusted-image encoding of lowered code (binary migration path).
void serialize_compiled(Writer& w, const CompiledProgram& p);
[[nodiscard]] CompiledProgram deserialize_compiled(Reader& r);

}  // namespace mojave::vm
