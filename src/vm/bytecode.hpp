// Register bytecode: the Mojave "object code".
//
// The paper's backends elaborate FIR into machine-specific assembly
// (IA32 or a simulated RISC). This repository's portable equivalent is a
// virtual register machine: lowering (vm/lowering.hpp) plays the role of
// the code generator, and re-running it on unpack plays the role of the
// destination-side recompilation that dominates untrusted-migration cost.
//
// Trusted ("binary") migration ships this bytecode directly — see
// serialize_compiled/deserialize_compiled — skipping typecheck and
// lowering, exactly as MCC's binary migration ships native code between
// identical trusted hosts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "runtime/value.hpp"
#include "support/common.hpp"
#include "support/serialize.hpp"

namespace mojave::vm {

enum class Op : std::uint8_t {
  kLoadUnit = 0,   // dst = ()
  kLoadInt,        // dst = imm
  kLoadFloat,      // dst = fimm
  kLoadString,     // dst = ptr to interned string block #aux
  kLoadFun,        // dst = fun #aux
  kLoadNull,       // dst = null pointer (table index 0)
  kMove,           // dst = r1
  kUnop,           // dst = sub(r1)
  kBinop,          // dst = r1 sub r2
  kAllocTagged,    // dst = alloc(r1 slots, init r2)
  kAllocRaw,       // dst = alloc_raw(r1 bytes)
  kRead,           // dst = read(r1 ptr, r2 off); runtime tag check vs sub
  kWrite,          // write(r1 ptr, r2 off) := r3
  kRawLoad,        // dst = raw_load{sub bytes}(r1, r2)
  kRawStore,       // raw_store{sub bytes}(r1, r2) := r3
  kRawLoadF,       // dst = raw_loadf(r1, r2)
  kRawStoreF,      // raw_storef(r1, r2) := r3
  kLen,            // dst = block size of r1 (slots or bytes)
  kPtrAdd,         // dst = (r1.base, r1.off + r2)
  kJump,           // pc = aux
  kJumpIfZero,     // if r1 == 0 then pc = aux
  kTailCall,       // transfer to function in r1 with args
  kSpeculate,      // enter level; call r1(c=level, args)
  kCommit,         // commit level r1; call r2(args)
  kRollback,       // rollback [r1, r2] — retry
  kAbort,          // rollback [r1, r2] — no re-entry
  kMigrate,        // migrate [label=aux, target r1] r2(args)
  kExternal,       // dst = external #aux (args); tag check vs sub
  kHalt,           // halt r1
};

/// One instruction. A fat fixed struct plus an argument list keeps decode
/// trivial and the encoding obvious.
struct Insn {
  Op op = Op::kHalt;
  std::uint8_t sub = 0;  ///< unop/binop code, width, or expected Tag
  std::uint16_t dst = 0;
  std::uint16_t r1 = 0;
  std::uint16_t r2 = 0;
  std::uint16_t r3 = 0;
  std::uint32_t aux = 0;  ///< jump target / fun id / string id / label / ext id
  std::int64_t imm = 0;
  double fimm = 0.0;
  std::vector<std::uint16_t> args;  ///< argument registers for calls
};

struct CompiledFunction {
  std::uint32_t fir_id = 0;
  std::string name;
  std::uint32_t arity = 0;
  std::uint16_t num_regs = 0;
  std::vector<runtime::Tag> param_tags;  ///< runtime check on entry
  std::vector<Insn> code;
};

struct CompiledProgram {
  std::string name;
  std::uint32_t entry = 0;
  std::vector<CompiledFunction> functions;
  std::vector<std::string> strings;
  std::vector<std::string> ext_names;  ///< external symbol table
  /// migrate label → continuation function id; lets unpack verify that a
  /// claimed resume point really is a migration point of this program.
  std::map<MigrateLabel, std::uint32_t> migrate_labels;

  [[nodiscard]] const CompiledFunction& function(std::uint32_t id) const;
};

/// Trusted-image encoding of lowered code (binary migration path).
void serialize_compiled(Writer& w, const CompiledProgram& p);
[[nodiscard]] CompiledProgram deserialize_compiled(Reader& r);

}  // namespace mojave::vm
