// Process: one managed Mojave process.
//
// Bundles the pieces the paper's runtime manages together — heap, garbage
// collector, speculation manager, interpreter, and the (optional) FIR
// source of the running code — behind a single owner. The migration
// machinery packs/unpacks Process instances; the cluster layer hosts one
// Process per simulated node.
//
// Two construction paths mirror the two migration trust models:
//  * from FIR — typecheck, lower, keep the FIR for future (untrusted)
//    migration;
//  * from precompiled bytecode — the trusted "binary" path, no FIR kept.
#pragma once

#include <memory>
#include <optional>

#include "fir/ir.hpp"
#include "runtime/heap.hpp"
#include "spec/speculation.hpp"
#include "vm/bytecode.hpp"
#include "vm/interpreter.hpp"

namespace mojave::vm {

struct ProcessConfig {
  runtime::HeapConfig heap;
  std::ostream* output = nullptr;      ///< defaults to std::cout
  std::uint64_t max_instructions = 0;  ///< 0 = unlimited
  /// Convert safety traps inside a speculation into rollbacks (Rx-style).
  bool trap_to_speculation = false;
  /// Native-tier policy; MOJAVE_JIT overrides the defaults, `--jit` (or
  /// the embedding) overrides both.
  native::JitOptions jit = native::jit_options_from_env();
};

class Process {
 public:
  /// Compile (typecheck + lower) and host a FIR program.
  explicit Process(fir::Program program, ProcessConfig cfg = {});

  /// Host precompiled bytecode (trusted path). `intern_strings` is false
  /// when unpack will restore string blocks from an image.
  Process(CompiledProgram compiled, ProcessConfig cfg,
          bool intern_strings = true);

  [[nodiscard]] runtime::Heap& heap() { return heap_; }
  [[nodiscard]] spec::SpeculationManager& spec() { return spec_; }
  [[nodiscard]] Interpreter& vm() { return *vm_; }
  [[nodiscard]] bool has_fir() const { return program_.has_value(); }
  [[nodiscard]] const fir::Program& program() const;

  /// Attach the FIR a trusted unpack decoded alongside the bytecode, so a
  /// reconstructed process can itself migrate again via the FIR path.
  void attach_fir(fir::Program program) { program_ = std::move(program); }

  /// Tie a migration hook's lifetime to this process (it is destroyed
  /// before the interpreter, so its detach-on-destruction stays safe).
  void adopt_hook(std::unique_ptr<MigrationHook> hook) {
    owned_hooks_.push_back(std::move(hook));
  }

  RunResult run() { return vm_->run(); }
  RunResult resume(FunIndex fun, std::vector<runtime::Value> args) {
    return vm_->run_from(fun, std::move(args));
  }

 private:
  runtime::Heap heap_;
  spec::SpeculationManager spec_;
  std::optional<fir::Program> program_;
  std::unique_ptr<Interpreter> vm_;
  /// Declared after vm_ so hooks are destroyed first.
  std::vector<std::unique_ptr<MigrationHook>> owned_hooks_;
};

}  // namespace mojave::vm
