// FIR → bytecode lowering: the backend of the compiler.
//
// "Object code generation is performed by elaborating the FIR code to
// machine-specific assembly code, introducing runtime safety checks as
// necessary" (paper, Section 3). Here the target is the portable register
// machine in vm/bytecode.hpp; the runtime safety checks (pointer-table
// validation, bounds, tags) are carried as instruction operands (`sub`)
// and enforced by the interpreter on every access.
//
// Lowering is deliberately re-run on every unpack of an untrusted image:
// together with typechecking it is the destination-side "recompilation"
// whose cost the migration benchmarks measure.
#pragma once

#include "fir/ir.hpp"
#include "vm/bytecode.hpp"

namespace mojave::vm {

[[nodiscard]] CompiledProgram lower(const fir::Program& program);

/// Map a FIR type to the runtime tag its values carry.
[[nodiscard]] runtime::Tag tag_of(const fir::Type& ty);

}  // namespace mojave::vm
