#include "vm/bytecode.hpp"

#include "support/error.hpp"

namespace mojave::vm {

const CompiledFunction& CompiledProgram::function(std::uint32_t id) const {
  if (id >= functions.size()) {
    throw SafetyError("compiled function id " + std::to_string(id) +
                      " out of range");
  }
  return functions[id];
}

namespace {

void write_insn(Writer& w, const Insn& insn) {
  w.u8(static_cast<std::uint8_t>(insn.op));
  w.u8(insn.sub);
  w.u16(insn.dst);
  w.u16(insn.r1);
  w.u16(insn.r2);
  w.u16(insn.r3);
  w.u32(insn.aux);
  w.i64(insn.imm);
  w.f64(insn.fimm);
  w.u32(static_cast<std::uint32_t>(insn.args.size()));
  for (std::uint16_t a : insn.args) w.u16(a);
}

Insn read_insn(Reader& r) {
  Insn insn;
  const std::uint8_t op = r.u8();
  if (op > static_cast<std::uint8_t>(Op::kHalt)) {
    throw ImageError("unknown opcode " + std::to_string(op));
  }
  insn.op = static_cast<Op>(op);
  insn.cls = static_cast<std::uint8_t>(op_class(insn.op));
  insn.sub = r.u8();
  insn.dst = r.u16();
  insn.r1 = r.u16();
  insn.r2 = r.u16();
  insn.r3 = r.u16();
  insn.aux = r.u32();
  insn.imm = r.i64();
  insn.fimm = r.f64();
  const std::uint32_t nargs = r.u32();
  if (nargs > 65536) throw ImageError("instruction argument list too long");
  insn.args.reserve(nargs);
  for (std::uint32_t i = 0; i < nargs; ++i) insn.args.push_back(r.u16());
  return insn;
}

}  // namespace

void serialize_compiled(Writer& w, const CompiledProgram& p) {
  w.str(p.name);
  w.u32(p.entry);
  w.u32(static_cast<std::uint32_t>(p.strings.size()));
  for (const auto& s : p.strings) w.str(s);
  w.u32(static_cast<std::uint32_t>(p.ext_names.size()));
  for (const auto& s : p.ext_names) w.str(s);
  w.u32(static_cast<std::uint32_t>(p.migrate_labels.size()));
  for (const auto& [label, fun] : p.migrate_labels) {
    w.u32(label);
    w.u32(fun);
  }
  w.u32(static_cast<std::uint32_t>(p.functions.size()));
  for (const CompiledFunction& f : p.functions) {
    w.str(f.name);
    w.u32(f.fir_id);
    w.u32(f.arity);
    w.u16(f.num_regs);
    w.u32(static_cast<std::uint32_t>(f.param_tags.size()));
    for (runtime::Tag t : f.param_tags) w.u8(static_cast<std::uint8_t>(t));
    w.u32(static_cast<std::uint32_t>(f.code.size()));
    for (const Insn& insn : f.code) write_insn(w, insn);
  }
}

CompiledProgram deserialize_compiled(Reader& r) {
  CompiledProgram p;
  p.name = r.str();
  p.entry = r.u32();
  const std::uint32_t nstr = r.u32();
  if (nstr > (1u << 24)) throw ImageError("string table too large");
  for (std::uint32_t i = 0; i < nstr; ++i) p.strings.push_back(r.str());
  const std::uint32_t next = r.u32();
  if (next > (1u << 20)) throw ImageError("external table too large");
  for (std::uint32_t i = 0; i < next; ++i) p.ext_names.push_back(r.str());
  const std::uint32_t nlabels = r.u32();
  if (nlabels > (1u << 20)) throw ImageError("label table too large");
  for (std::uint32_t i = 0; i < nlabels; ++i) {
    const MigrateLabel label = r.u32();
    p.migrate_labels[label] = r.u32();
  }
  const std::uint32_t nfuns = r.u32();
  if (nfuns > (1u << 20)) throw ImageError("too many compiled functions");
  for (std::uint32_t i = 0; i < nfuns; ++i) {
    CompiledFunction f;
    f.name = r.str();
    f.fir_id = r.u32();
    f.arity = r.u32();
    f.num_regs = r.u16();
    const std::uint32_t ntags = r.u32();
    if (ntags != f.arity) throw ImageError("param tag table size mismatch");
    for (std::uint32_t t = 0; t < ntags; ++t) {
      const std::uint8_t tag = r.u8();
      if (tag > static_cast<std::uint8_t>(runtime::Tag::kFun)) {
        throw ImageError("bad parameter tag");
      }
      f.param_tags.push_back(static_cast<runtime::Tag>(tag));
    }
    const std::uint32_t ninsns = r.u32();
    if (ninsns > (1u << 24)) throw ImageError("function too long");
    f.code.reserve(ninsns);
    for (std::uint32_t k = 0; k < ninsns; ++k) f.code.push_back(read_insn(r));
    p.functions.push_back(std::move(f));
  }
  return p;
}

}  // namespace mojave::vm
