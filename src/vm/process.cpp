#include "vm/process.hpp"

#include "fir/legalize.hpp"
#include "fir/typecheck.hpp"
#include "support/error.hpp"
#include "vm/lowering.hpp"

namespace mojave::vm {

Process::Process(fir::Program program, ProcessConfig cfg)
    : heap_(cfg.heap), spec_(heap_) {
  // Legalize before typechecking so the canonical FIR is what gets kept,
  // serialized for migration, and lowered by every backend.
  fir::legalize(program);
  fir::typecheck(program);
  CompiledProgram compiled = lower(program);
  program_ = std::move(program);
  vm_ = std::make_unique<Interpreter>(heap_, spec_, std::move(compiled),
                                      /*intern_strings=*/true);
  if (cfg.output != nullptr) vm_->set_output(cfg.output);
  vm_->set_max_instructions(cfg.max_instructions);
  vm_->set_trap_to_speculation(cfg.trap_to_speculation);
  vm_->set_jit_options(cfg.jit);
}

Process::Process(CompiledProgram compiled, ProcessConfig cfg,
                 bool intern_strings)
    : heap_(cfg.heap), spec_(heap_) {
  vm_ = std::make_unique<Interpreter>(heap_, spec_, std::move(compiled),
                                      intern_strings);
  if (cfg.output != nullptr) vm_->set_output(cfg.output);
  vm_->set_max_instructions(cfg.max_instructions);
  vm_->set_trap_to_speculation(cfg.trap_to_speculation);
  vm_->set_jit_options(cfg.jit);
}

const fir::Program& Process::program() const {
  if (!program_.has_value()) {
    throw MigrateError(
        "process has no FIR (it was reconstructed from a binary image); "
        "FIR migration is unavailable");
  }
  return *program_;
}

}  // namespace mojave::vm
