// Speculative execution (paper, Section 4.3).
//
// "Each speculate operation enters a new speculation level nested within
// the previous level. Speculation levels are numbered from 1 to N, where 1
// is the oldest ... Speculation levels use copy-on-write semantics; when a
// block in the heap is modified, the block is cloned and the pointer table
// updated to point to the new copy of the block, preserving the data in
// the original block. On a commit or rollback operation of l, exactly one
// of these blocks will be discarded."
//
// The manager installs itself as the heap's write hook (seeing every
// mutation before it happens) and as a root provider (the preserved
// pre-write versions — the paper's "checkpoint records" — must survive
// collection and be patched when compaction moves them).
//
// Commits may occur out of order: committing level l folds its record into
// level l-1. Rollback of level l reverts levels N..l and, in the FIR's
// retry semantics, automatically re-enters level l with the original
// continuation and a caller-chosen value of c.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "runtime/heap.hpp"
#include "support/common.hpp"
#include "support/error.hpp"

namespace mojave::spec {

/// The continuation captured at speculate(): the function entered
/// speculatively plus its arguments. All live data is passed as arguments
/// because the FIR is in continuation-passing style, so this small record
/// (plus the COW heap versions) *is* the complete rollback state.
struct SavedContinuation {
  FunIndex fun = 0;
  std::int64_t c = 0;
  std::vector<runtime::Value> args;
};

/// What rollback tells the execution engine to do next.
struct RollbackOutcome {
  SavedContinuation continuation;
  /// Level that was re-entered (retry semantics), or 0 if the rollback
  /// discarded the level (abort semantics).
  SpecLevel reentered_level = 0;
};

struct SpecStats {
  std::uint64_t speculates = 0;
  std::uint64_t commits = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t blocks_preserved = 0;  ///< COW old versions recorded
  std::uint64_t bytes_preserved = 0;
};

class SpeculationManager final : public runtime::WriteHook,
                                 public runtime::RootProvider {
 public:
  explicit SpeculationManager(runtime::Heap& heap);
  ~SpeculationManager() override;

  SpeculationManager(const SpeculationManager&) = delete;
  SpeculationManager& operator=(const SpeculationManager&) = delete;

  /// Enter a new speculation level; returns its number (1..N). The saved
  /// continuation is what rollback re-enters.
  SpecLevel speculate(SavedContinuation continuation);

  /// Fold level l's record into the level below it (or discard it when
  /// l == 1, making its effects permanent). Commits may be out of order.
  void commit(SpecLevel level);

  /// Revert all changes made in levels N..l, resume at l's entry point.
  /// With `retry` (the FIR primitive's semantics) the level is re-entered
  /// with the original continuation and the new c; without it (the
  /// C-level abort()) the level is discarded.
  RollbackOutcome rollback(SpecLevel level, std::int64_t new_c, bool retry);

  [[nodiscard]] SpecLevel current_level() const {
    return static_cast<SpecLevel>(levels_.size());
  }

  /// Stable-address mirror of the active level count, read by the native
  /// tier's inlined write fast path: a write may skip the copy-on-write
  /// hook only while this is zero (before_write/after_alloc are no-ops
  /// with no active level).
  [[nodiscard]] const std::uint64_t* level_count_addr() const {
    return &level_count_mirror_;
  }

  /// Observer invoked at the start of every rollback. The cluster layer
  /// uses it to propagate aborts to processes that joined this process's
  /// speculation by consuming its speculative messages (paper, Section 1:
  /// they must "join that process's speculation and roll back together").
  void set_rollback_observer(
      std::function<void(SpecLevel level, bool retry)> observer) {
    rollback_observer_ = std::move(observer);
  }

  /// Observer invoked when the oldest level commits (its effects become
  /// durable); dependencies on it can then be discharged.
  void set_commit_observer(std::function<void()> observer) {
    commit_observer_ = std::move(observer);
  }
  [[nodiscard]] const SpecStats& stats() const { return stats_; }

  /// Number of preserved block versions currently held across all levels.
  [[nodiscard]] std::size_t preserved_blocks() const;

  // WriteHook: copy-on-write before mutation; allocation tracking.
  void before_write(BlockIndex idx) override;
  void after_alloc(BlockIndex idx) override;

  // RootProvider: checkpoint records keep old versions (and the table
  // entries they would restore) alive and relocatable.
  void enumerate_roots(runtime::RootVisitor& visitor) override;

 private:
  struct SavedVersion {
    BlockIndex index = kNullIndex;
    runtime::Block* old_version = nullptr;
  };

  struct LevelRecord {
    std::uint64_t epoch = 0;
    SavedContinuation continuation;
    std::vector<SavedVersion> saved;
    std::unordered_map<BlockIndex, std::size_t> saved_lookup;
    std::vector<BlockIndex> allocated;
  };

  void restore_level(LevelRecord& record);
  void check_level(SpecLevel level) const;

  runtime::Heap& heap_;
  std::vector<LevelRecord> levels_;
  /// Kept equal to levels_.size() after every mutation (see
  /// level_count_addr).
  std::uint64_t level_count_mirror_ = 0;
  std::uint64_t next_epoch_ = 1;
  SpecStats stats_;
  std::function<void(SpecLevel, bool)> rollback_observer_;
  std::function<void()> commit_observer_;
};

}  // namespace mojave::spec
