#include "spec/speculation.hpp"

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mojave::spec {

namespace {

struct SpecMetrics {
  obs::Counter& speculates;
  obs::Counter& commits;
  obs::Counter& rollbacks;
  obs::Counter& blocks_preserved;
  obs::Counter& bytes_preserved;
  obs::Gauge& active_levels;

  static SpecMetrics& get() {
    static SpecMetrics m{
        obs::MetricsRegistry::instance().counter("spec.speculates"),
        obs::MetricsRegistry::instance().counter("spec.commits"),
        obs::MetricsRegistry::instance().counter("spec.rollbacks"),
        obs::MetricsRegistry::instance().counter("spec.blocks_preserved"),
        obs::MetricsRegistry::instance().counter("spec.bytes_preserved"),
        obs::MetricsRegistry::instance().gauge("spec.active_levels"),
    };
    return m;
  }
};

}  // namespace

SpeculationManager::SpeculationManager(runtime::Heap& heap) : heap_(heap) {
  (void)SpecMetrics::get();  // register spec.* metrics eagerly
  heap_.set_write_hook(this);
  heap_.add_root_provider(this);
}

SpeculationManager::~SpeculationManager() {
  heap_.set_write_hook(nullptr);
  heap_.remove_root_provider(this);
}

void SpeculationManager::check_level(SpecLevel level) const {
  if (level == 0 || level > levels_.size()) {
    throw SpecError("level " + std::to_string(level) +
                    " is not an active speculation level (N = " +
                    std::to_string(levels_.size()) + ")");
  }
}

SpecLevel SpeculationManager::speculate(SavedContinuation continuation) {
  obs::ScopedSpan span("spec", "speculate");
  LevelRecord record;
  record.epoch = next_epoch_++;
  record.continuation = std::move(continuation);
  levels_.push_back(std::move(record));
  level_count_mirror_ = levels_.size();
  // Stamp subsequent allocations and clones with this level's epoch so
  // before_write can tell "already versioned here" from "needs a clone".
  heap_.set_spec_epoch(levels_.back().epoch);
  ++stats_.speculates;
  SpecMetrics& m = SpecMetrics::get();
  m.speculates.inc();
  m.active_levels.set(static_cast<std::int64_t>(levels_.size()));
  span.set_arg("level", levels_.size());
  return static_cast<SpecLevel>(levels_.size());
}

void SpeculationManager::before_write(BlockIndex idx) {
  if (levels_.empty()) return;
  LevelRecord& top = levels_.back();
  runtime::Block* current = heap_.deref(idx);
  if (current->h.spec_epoch >= top.epoch) return;  // already versioned
  auto pair = heap_.cow_clone(idx);
  top.saved.push_back(SavedVersion{idx, pair.old_version});
  top.saved_lookup.emplace(idx, top.saved.size() - 1);
  ++stats_.blocks_preserved;
  stats_.bytes_preserved += pair.old_version->footprint();
  SpecMetrics& m = SpecMetrics::get();
  m.blocks_preserved.inc();
  m.bytes_preserved.inc(pair.old_version->footprint());
}

void SpeculationManager::after_alloc(BlockIndex idx) {
  if (levels_.empty()) return;
  levels_.back().allocated.push_back(idx);
}

void SpeculationManager::commit(SpecLevel level) {
  check_level(level);
  obs::ScopedSpan span("spec", "commit");
  span.set_arg("level", level);
  LevelRecord record = std::move(levels_[level - 1]);
  if (level >= 2) {
    LevelRecord& parent = levels_[level - 2];
    for (SavedVersion& sv : record.saved) {
      // The parent's version, if present, is older (closer to the parent's
      // entry state) and therefore wins; the folded version is discarded —
      // "exactly one of these blocks will be discarded".
      if (parent.saved_lookup.contains(sv.index)) continue;
      parent.saved.push_back(sv);
      parent.saved_lookup.emplace(sv.index, parent.saved.size() - 1);
    }
    parent.allocated.insert(parent.allocated.end(), record.allocated.begin(),
                            record.allocated.end());
  }
  // When level == 1 the record is simply dropped: the preserved versions
  // become unreachable and the collector reclaims them.
  levels_.erase(levels_.begin() + static_cast<std::ptrdiff_t>(level) - 1);
  level_count_mirror_ = levels_.size();
  // When no level is active, stamp allocations with epoch 0: strictly
  // below every future level's entry epoch, so the first write inside the
  // next speculation correctly preserves them copy-on-write.
  heap_.set_spec_epoch(levels_.empty() ? 0 : levels_.back().epoch);
  ++stats_.commits;
  SpecMetrics& m = SpecMetrics::get();
  m.commits.inc();
  m.active_levels.set(static_cast<std::int64_t>(levels_.size()));
  if (level == 1 && commit_observer_) commit_observer_();
}

void SpeculationManager::restore_level(LevelRecord& record) {
  // Put every preserved version back into the pointer table. Entries with
  // a saved version are kept alive by enumerate_roots, so the entry is
  // always still valid here.
  for (SavedVersion& sv : record.saved) {
    heap_.table().redirect(sv.index, sv.old_version);
  }
  // Entries created during the level must not survive it.
  for (BlockIndex idx : record.allocated) {
    heap_.table().release(idx);
  }
}

RollbackOutcome SpeculationManager::rollback(SpecLevel level,
                                             std::int64_t new_c, bool retry) {
  check_level(level);
  obs::ScopedSpan span("spec", retry ? "rollback" : "abort");
  span.set_arg("level", level);
  if (rollback_observer_) rollback_observer_(level, retry);
  // Revert newest-first so that, for a block modified in several levels,
  // the oldest preserved version is the one that ends up in the table.
  for (std::size_t i = levels_.size(); i >= level; --i) {
    restore_level(levels_[i - 1]);
  }
  SavedContinuation continuation = std::move(levels_[level - 1].continuation);
  levels_.resize(level - 1);
  level_count_mirror_ = levels_.size();
  ++stats_.rollbacks;
  SpecMetrics& m = SpecMetrics::get();
  m.rollbacks.inc();
  m.active_levels.set(static_cast<std::int64_t>(levels_.size()));

  RollbackOutcome outcome;
  continuation.c = new_c;
  outcome.continuation = std::move(continuation);
  if (retry) {
    // "This version of the primitive is a retry primitive; level l is
    // automatically re-entered after it has been rolled back."
    outcome.reentered_level = speculate(outcome.continuation);
  } else {
    // As in commit(): epoch 0 at level 0, else the new top's entry epoch.
    heap_.set_spec_epoch(levels_.empty() ? 0 : levels_.back().epoch);
  }
  return outcome;
}

std::size_t SpeculationManager::preserved_blocks() const {
  std::size_t n = 0;
  for (const LevelRecord& r : levels_) n += r.saved.size();
  return n;
}

void SpeculationManager::enumerate_roots(runtime::RootVisitor& visitor) {
  for (LevelRecord& record : levels_) {
    for (SavedVersion& sv : record.saved) {
      // Keep the preserved version alive and relocatable...
      visitor.block_root(&sv.old_version);
      // ...and pin the table entry it would restore into, so the entry is
      // never swept (and so the current clone stays valid for commit).
      visitor.index_root(sv.index);
    }
    visitor.value_root(runtime::Value::from_fun(record.continuation.fun));
    for (const runtime::Value& v : record.continuation.args) {
      visitor.value_root(v);
    }
  }
}

}  // namespace mojave::spec
