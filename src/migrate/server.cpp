#include "migrate/server.hpp"

#include "ckpt/store.hpp"
#include "migrate/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/log.hpp"

namespace mojave::migrate {

namespace {

struct ServerMetrics {
  obs::Counter& received;
  obs::Counter& failed;
  obs::Counter& dedup_hits;
  obs::Counter& busy_rejects;
  obs::Gauge& live;

  static ServerMetrics& get() {
    static ServerMetrics m{
        obs::MetricsRegistry::instance().counter("server.images_received"),
        obs::MetricsRegistry::instance().counter("server.images_failed"),
        obs::MetricsRegistry::instance().counter("migrate.dedup_hits"),
        obs::MetricsRegistry::instance().counter("server.busy_rejects"),
        obs::MetricsRegistry::instance().gauge("server.live_processes"),
    };
    return m;
  }
};

/// Program names come from the (untrusted) image; coerce to a valid
/// snapshot identifier.
std::string journal_snapshot_name(const std::string& program) {
  std::string name = "inbound_" + program;
  for (char& c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return name;
}
}  // namespace

MigrationServer::MigrationServer(Options options)
    : options_(std::move(options)),
      listener_(options_.bind_address, options_.port) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

MigrationServer::~MigrationServer() { stop(); }

void MigrationServer::stop() {
  if (stopping_.exchange(true)) return;
  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void MigrationServer::accept_loop() {
  while (!stopping_.load()) {
    auto stream = listener_.accept();
    if (!stream.has_value()) break;
    std::lock_guard<std::mutex> lock(mu_);
    workers_.emplace_back(
        [this, s = std::make_shared<net::TcpStream>(std::move(*stream))]() mutable {
          handle(std::move(*s));
        });
  }
}

std::optional<std::vector<std::byte>> MigrationServer::reserve_id(
    std::uint64_t id) {
  std::lock_guard<std::mutex> lock(dedup_mu_);
  const auto it = ids_.find(id);
  if (it == ids_.end()) {
    ids_.emplace(id, IdState::kInFlight);
    return std::nullopt;  // reserved; caller proceeds to the image phase
  }
  if (it->second == IdState::kCommitted) {
    ++dedup_hits_;
    ServerMetrics::get().dedup_hits.inc();
    return make_reply(kReplyDup);
  }
  // Another attempt with this id is mid-transfer; the client backs off and
  // retries, by which time the first attempt has committed or released.
  ServerMetrics::get().busy_rejects.inc();
  return make_reply(kReplyBusy);
}

void MigrationServer::commit_id(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(dedup_mu_);
  ids_[id] = IdState::kCommitted;
  committed_order_.push_back(id);
  while (committed_order_.size() > kDedupWindow) {
    ids_.erase(committed_order_.front());
    committed_order_.pop_front();
  }
}

void MigrationServer::release_id(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(dedup_mu_);
  const auto it = ids_.find(id);
  if (it != ids_.end() && it->second == IdState::kInFlight) ids_.erase(it);
}

void MigrationServer::handle(net::TcpStream stream) {
  stream.set_io_deadline(options_.io_timeout_seconds);
  Completed record;
  bool v2 = false;
  std::uint64_t migration_id = 0;
  bool reserved = false;
  try {
    auto frame = stream.recv_frame();
    if (!frame.has_value()) return;  // client went away

    // v2 handshake: an OFFER reserves the migration id before any bytes
    // of the image move, so duplicate and concurrent retries are answered
    // from the dedup window instead of unpacked into a second process.
    if (const auto id = decode_offer(*frame); id.has_value()) {
      v2 = true;
      migration_id = *id;
      if (auto reply = reserve_id(migration_id); reply.has_value()) {
        stream.send_frame(*reply);
        return;  // DU or WT: no image accepted, no process started
      }
      reserved = true;
      stream.send_frame(make_reply(kReplyGo));
      frame = stream.recv_frame();
      if (!frame.has_value()) {
        release_id(migration_id);  // the attempt died; allow a retry
        return;
      }
    }

    ++received_;
    ServerMetrics::get().received.inc();
    obs::ScopedSpan span("migrate", "server.handle");
    span.set_arg("image_bytes", frame->size());
    span.set_arg("migration_id", migration_id);

    const ImageInfo info = inspect_image(*frame);
    record.program_name = info.program_name;
    if ((info.kind == ImageKind::kFir && !options_.accept_fir) ||
        (info.kind == ImageKind::kBinary && !options_.accept_binary)) {
      throw MigrateError("image kind refused by server policy");
    }

    // Unpack — for FIR images this re-verifies and recompiles the program
    // before the sender is allowed to terminate its copy.
    UnpackResult unpacked = unpack_process(*frame, options_.cfg);
    record.breakdown = unpacked.breakdown;
    if (!options_.ckpt_journal_root.empty()) {
      // Journal before the ack: the sender terminates its copy on ack, so
      // the image must already be durable (and restorable) here.
      ckpt::CheckpointStore::open_shared(options_.ckpt_journal_root)
          ->put(journal_snapshot_name(info.program_name), *frame);
    }
    // Commit before the ack: if the ack is lost, the client's retry must
    // find the id committed (→ DU), not unknown (→ a second copy).
    if (v2) commit_id(migration_id);
    reserved = false;
    try {
      stream.send_frame(make_reply(kReplyOk));
    } catch (const NetError&) {
      // Ack lost — the committed id answers the client's retry with DU.
    }
    stream.close();

    if (options_.prepare) options_.prepare(*unpacked.process);
    ++started_;
    struct LiveGuard {
      std::atomic<std::size_t>& live;
      explicit LiveGuard(std::atomic<std::size_t>& l) : live(l) {
        live.fetch_add(1);
        ServerMetrics::get().live.add(1);
      }
      ~LiveGuard() {
        live.fetch_sub(1);
        ServerMetrics::get().live.add(-1);
      }
    } live_guard(live_);
    record.result = unpacked.process->resume(unpacked.resume_fun,
                                             std::move(unpacked.resume_args));
  } catch (const std::exception& e) {
    if (reserved) release_id(migration_id);
    record.error = e.what();
    ServerMetrics::get().failed.inc();
    MOJAVE_LOG(kWarn, "server") << "inbound migration failed: " << e.what();
    try {
      stream.send_frame(make_reply(kReplyNo));
    } catch (...) {
      // The sender has already gone; it will keep running locally.
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    completed_.push_back(std::move(record));
  }
  cv_.notify_all();
}

std::vector<MigrationServer::Completed> MigrationServer::wait_for(
    std::size_t n) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return completed_.size() >= n; });
  return completed_;
}

}  // namespace mojave::migrate
