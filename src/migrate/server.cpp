#include "migrate/server.hpp"

#include "ckpt/store.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/log.hpp"

namespace mojave::migrate {

namespace {

struct ServerMetrics {
  obs::Counter& received;
  obs::Counter& failed;

  static ServerMetrics& get() {
    static ServerMetrics m{
        obs::MetricsRegistry::instance().counter("server.images_received"),
        obs::MetricsRegistry::instance().counter("server.images_failed"),
    };
    return m;
  }
};

}  // namespace

namespace {
const std::byte kAck[2] = {std::byte{'O'}, std::byte{'K'}};
const std::byte kNak[2] = {std::byte{'N'}, std::byte{'O'}};

/// Program names come from the (untrusted) image; coerce to a valid
/// snapshot identifier.
std::string journal_snapshot_name(const std::string& program) {
  std::string name = "inbound_" + program;
  for (char& c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return name;
}
}  // namespace

MigrationServer::MigrationServer(Options options)
    : options_(std::move(options)), listener_(options_.port) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

MigrationServer::~MigrationServer() { stop(); }

void MigrationServer::stop() {
  if (stopping_.exchange(true)) return;
  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void MigrationServer::accept_loop() {
  while (!stopping_.load()) {
    auto stream = listener_.accept();
    if (!stream.has_value()) break;
    std::lock_guard<std::mutex> lock(mu_);
    workers_.emplace_back(
        [this, s = std::make_shared<net::TcpStream>(std::move(*stream))]() mutable {
          handle(std::move(*s));
        });
  }
}

void MigrationServer::handle(net::TcpStream stream) {
  Completed record;
  try {
    const auto frame = stream.recv_frame();
    if (!frame.has_value()) return;  // client went away
    ++received_;
    ServerMetrics::get().received.inc();
    obs::ScopedSpan span("migrate", "server.handle");
    span.set_arg("image_bytes", frame->size());

    const ImageInfo info = inspect_image(*frame);
    record.program_name = info.program_name;
    if ((info.kind == ImageKind::kFir && !options_.accept_fir) ||
        (info.kind == ImageKind::kBinary && !options_.accept_binary)) {
      throw MigrateError("image kind refused by server policy");
    }

    // Unpack — for FIR images this re-verifies and recompiles the program
    // before the sender is allowed to terminate its copy.
    UnpackResult unpacked = unpack_process(*frame, options_.cfg);
    record.breakdown = unpacked.breakdown;
    if (!options_.ckpt_journal_root.empty()) {
      // Journal before the ack: the sender terminates its copy on ack, so
      // the image must already be durable (and restorable) here.
      ckpt::CheckpointStore::open_shared(options_.ckpt_journal_root)
          ->put(journal_snapshot_name(info.program_name), *frame);
    }
    stream.send_frame(kAck);
    stream.close();

    if (options_.prepare) options_.prepare(*unpacked.process);
    record.result = unpacked.process->resume(unpacked.resume_fun,
                                             std::move(unpacked.resume_args));
  } catch (const std::exception& e) {
    record.error = e.what();
    ServerMetrics::get().failed.inc();
    MOJAVE_LOG(kWarn, "server") << "inbound migration failed: " << e.what();
    try {
      stream.send_frame(kNak);
    } catch (...) {
      // The sender has already gone; it will keep running locally.
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    completed_.push_back(std::move(record));
  }
  cv_.notify_all();
}

std::vector<MigrationServer::Completed> MigrationServer::wait_for(
    std::size_t n) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return completed_.size() >= n; });
  return completed_;
}

}  // namespace mojave::migrate
