// Process state images: the pack and unpack operations (paper, Section 4.2).
//
// pack   — "first performs garbage collection on the heap. Then it packs
//          the live data, the pointer table, the program text, and the
//          registers into a message that can be stored or transmitted."
//          The live variables at the migration point are spilled into a
//          fresh `migrate_env` heap block, so the only out-of-heap state is
//          the index of that block plus the resume location.
// unpack — rebuilds the pointer table and heap at the destination. For an
//          untrusted (FIR) image the program is type-checked and
//          recompiled (lowered) first — the dominant cost of migration in
//          an untrusted environment. A trusted (binary) image carries the
//          bytecode directly and skips both steps.
//
// Every integer in the image is canonical little-endian; a trailing FNV-1a
// checksum rejects transport corruption before any reconstruction begins.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "vm/process.hpp"

namespace mojave::migrate {

enum class ImageKind : std::uint8_t {
  kFir = 0,     ///< untrusted: carries FIR, destination re-verifies
  kBinary = 1,  ///< trusted: carries bytecode, destination trusts it
};

struct PackStats {
  std::size_t image_bytes = 0;
  std::size_t heap_blocks = 0;
  std::size_t heap_payload_bytes = 0;
  double gc_seconds = 0;
  double serialize_seconds = 0;
};

struct PackResult {
  std::vector<std::byte> bytes;
  PackStats stats;
};

/// Capture the entire state of `proc`, to be resumed at continuation
/// `resume_fun(args...)` (the continuation of the migrate instruction,
/// correlated by `label`). Requires no active speculation: the paper's
/// programs commit before checkpointing (Figure 2), and a speculation's
/// rollback state is meaningless on another machine.
[[nodiscard]] PackResult pack_process(vm::Process& proc, MigrateLabel label,
                                      FunIndex resume_fun,
                                      std::span<const runtime::Value> args,
                                      ImageKind kind);

struct UnpackBreakdown {
  double decode_seconds = 0;
  double typecheck_seconds = 0;   ///< zero on the trusted path
  double recompile_seconds = 0;   ///< lowering; zero on the trusted path
  double heap_restore_seconds = 0;
};

struct UnpackResult {
  std::unique_ptr<vm::Process> process;
  FunIndex resume_fun = 0;
  std::vector<runtime::Value> resume_args;
  MigrateLabel label = 0;
  ImageKind kind = ImageKind::kFir;
  UnpackBreakdown breakdown;
};

/// Reconstruct a process from an image. The caller resumes it with
/// `result.process->resume(result.resume_fun, result.resume_args)`.
/// Throws ImageError on corruption, TypeError if an untrusted program
/// fails verification, SafetyError if the resume point is inconsistent.
[[nodiscard]] UnpackResult unpack_process(std::span<const std::byte> image,
                                          vm::ProcessConfig cfg = {});

/// Peek at an image's kind and payload size without reconstructing it.
struct ImageInfo {
  ImageKind kind = ImageKind::kFir;
  std::string program_name;
  std::size_t heap_blocks = 0;
  std::size_t total_bytes = 0;
};
[[nodiscard]] ImageInfo inspect_image(std::span<const std::byte> image);

}  // namespace mojave::migrate
