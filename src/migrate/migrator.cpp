#include "migrate/migrator.hpp"

#include <fstream>

#include "ckpt/store.hpp"
#include "migrate/wire.hpp"
#include "net/tcp.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/log.hpp"
#include "support/stopwatch.hpp"

namespace mojave::migrate {

namespace {

struct MigrateMetrics {
  obs::Counter& attempts;
  obs::Counter& successes;
  obs::Counter& failures;
  obs::Counter& retries;
  obs::Counter& gave_up;
  obs::Counter& dedup_acks;
  obs::Histogram& transfer_us;

  static MigrateMetrics& get() {
    static MigrateMetrics m{
        obs::MetricsRegistry::instance().counter("migrate.attempts"),
        obs::MetricsRegistry::instance().counter("migrate.successes"),
        obs::MetricsRegistry::instance().counter("migrate.failures"),
        obs::MetricsRegistry::instance().counter("migrate.retries"),
        obs::MetricsRegistry::instance().counter("migrate.gave_up"),
        obs::MetricsRegistry::instance().counter("migrate.dedup_acks"),
        obs::MetricsRegistry::instance().histogram("migrate.transfer_us"),
    };
    return m;
  }
};

}  // namespace

vm::MigrationHook::Action Migrator::on_migrate(
    vm::Interpreter& vm, MigrateLabel label, const std::string& target_str,
    FunIndex resume_fun, std::span<const runtime::Value> resume_args) {
  if (&vm != &process_.vm()) {
    throw MigrateError("migrator attached to a different process");
  }
  // Keep vm.* counters current: this is a natural safepoint and the image
  // below freezes the process's state.
  vm.flush_metrics();
  MigrateMetrics& m = MigrateMetrics::get();
  m.attempts.inc();
  obs::ScopedSpan span("migrate", "migrate");
  span.set_arg("label", label);
  Event event;
  event.label = label;
  event.target = target_str;

  const MigrateTarget target = MigrateTarget::parse(target_str);

  Stopwatch pack_sw;
  PackResult packed =
      pack_process(process_, label, resume_fun, resume_args, target.kind);
  event.pack_seconds = pack_sw.seconds();
  event.image_bytes = packed.bytes.size();

  Action action = Action::kContinue;
  Stopwatch transfer_sw;
  obs::ScopedSpan transfer_span("migrate", "transfer");
  try {
    switch (target.protocol) {
      case Protocol::kCheckpoint:
        write_image_file(target.path, packed.bytes);
        event.success = true;
        event.bytes_written = packed.bytes.size();
        action = Action::kContinue;  // keep running after a checkpoint
        break;
      case Protocol::kCkpt: {
        // Incremental checkpoint: unchanged chunks dedupe against what
        // the store already holds, so only the delta hits storage. Shared
        // storage can hiccup (full NFS, transient EIO), so the put runs
        // under the retry policy; chunk puts are idempotent by content
        // address, so a repeated attempt is safe.
        net::Backoff backoff(retry_policy_, label + 1);
        while (true) {
          try {
            const auto store = ckpt::CheckpointStore::open_shared(target.path);
            const ckpt::PutStats put =
                store->put(target.snapshot, packed.bytes);
            event.bytes_written = put.bytes_written;
            break;
          } catch (const Error& e) {
            if (!backoff.retry_after_failure()) throw;
            MigrateMetrics::get().retries.inc();
            MOJAVE_LOG(kWarn, "migrate")
                << "ckpt put retry " << backoff.attempts() << ": " << e.what();
          }
        }
        event.attempts = backoff.attempts();
        event.success = true;
        action = Action::kContinue;
        break;
      }
      case Protocol::kSuspend:
        write_image_file(target.path, packed.bytes);
        event.success = true;
        event.bytes_written = packed.bytes.size();
        action = Action::kExit;  // terminate once the state is on disk
        break;
      case Protocol::kMigrate:
        transfer_mcc(target, packed.bytes, event);
        event.success = true;
        event.bytes_written = packed.bytes.size();
        action = Action::kExit;  // the process now runs at the destination
        break;
    }
  } catch (const Error& e) {
    // "If migration fails for any reason, the process will continue to
    // execute on the original machine."
    MOJAVE_LOG(kWarn, "migrate") << "migration to " << target_str
                                 << " failed: " << e.what();
    event.success = false;
    action = Action::kContinue;
  }
  event.transfer_seconds = transfer_sw.seconds();
  m.transfer_us.record_seconds(event.transfer_seconds);
  (event.success ? m.successes : m.failures).inc();
  events_.push_back(std::move(event));
  return action;
}

void Migrator::transfer_mcc(const MigrateTarget& target,
                            std::span<const std::byte> image, Event& event) {
  MigrateMetrics& m = MigrateMetrics::get();
  const std::uint64_t id = fresh_migration_id();
  event.migration_id = id;
  net::Backoff backoff(retry_policy_, id);
  obs::ScopedSpan span("migrate", "mcc.transfer");
  span.set_arg("migration_id", id);
  while (true) {
    try {
      net::TcpStream stream = net::TcpStream::connect(
          target.host, target.port, retry_policy_.deadlines());
      stream.send_frame(encode_offer(id));
      const auto hello = stream.recv_frame();
      if (!hello.has_value()) {
        throw NetError("server closed during handshake");
      }
      if (reply_is(*hello, kReplyDup)) {
        // An earlier attempt committed; only its ack was lost. The process
        // is already running at the destination — do not send it again.
        m.dedup_acks.inc();
        event.attempts = backoff.attempts();
        return;
      }
      if (reply_is(*hello, kReplyBusy)) {
        throw NetError("earlier attempt still in flight at the server");
      }
      if (!reply_is(*hello, kReplyGo)) {
        throw MigrateError("migration server refused the offer");
      }
      stream.send_frame(image);
      const auto ack = stream.recv_frame();
      if (!ack.has_value()) throw NetError("connection lost awaiting ack");
      if (reply_is(*ack, kReplyOk) || reply_is(*ack, kReplyDup)) {
        event.attempts = backoff.attempts();
        return;
      }
      // An explicit NAK is a policy refusal or unpack failure — retrying
      // the same image cannot succeed.
      throw MigrateError("migration server rejected the image");
    } catch (const NetError& e) {
      // Transient transport failure: refused, timed out, or cut mid-
      // exchange. The idempotent handshake makes a retry safe.
      event.attempts = backoff.attempts();
      if (!backoff.retry_after_failure()) {
        m.gave_up.inc();
        throw MigrateError("gave up after " +
                           std::to_string(backoff.attempts()) +
                           " attempt(s): " + e.what());
      }
      m.retries.inc();
      MOJAVE_LOG(kWarn, "migrate")
          << "mcc attempt " << backoff.attempts() - 1 << " to "
          << target.host << ":" << target.port << " failed (" << e.what()
          << "); retrying";
    }
  }
}

void Migrator::write_image_file(const std::filesystem::path& path,
                                std::span<const std::byte> bytes) {
  namespace fs = std::filesystem;
  if (path.has_parent_path()) fs::create_directories(path.parent_path());
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw MigrateError("cannot open " + tmp.string());
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) throw MigrateError("short write to " + tmp.string());
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) throw MigrateError("rename failed: " + ec.message());
}

std::vector<std::byte> Migrator::read_image_file(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw MigrateError("cannot open " + path.string());
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw MigrateError("short read from " + path.string());
  return bytes;
}

ResurrectResult resurrect_from_file(const std::filesystem::path& path,
                                    const ResurrectOptions& options) {
  const auto bytes = Migrator::read_image_file(path);
  UnpackResult unpacked = unpack_process(bytes, options.cfg);
  ResurrectResult result;
  result.breakdown = unpacked.breakdown;
  if (options.prepare) options.prepare(*unpacked.process);
  result.run = unpacked.process->resume(unpacked.resume_fun,
                                        std::move(unpacked.resume_args));
  return result;
}

std::vector<std::byte> read_checkpoint_uri(const std::string& uri) {
  if (uri.find("://") == std::string::npos) {
    return Migrator::read_image_file(uri);  // plain file path
  }
  const MigrateTarget target = MigrateTarget::parse(uri);
  switch (target.protocol) {
    case Protocol::kCheckpoint:
    case Protocol::kSuspend:
      return Migrator::read_image_file(target.path);
    case Protocol::kCkpt: {
      const auto store = ckpt::CheckpointStore::open_shared(target.path);
      auto image = store->restore(target.snapshot);
      if (!image.has_value()) {
        throw MigrateError("no restorable checkpoint for " + uri);
      }
      return std::move(*image);
    }
    case Protocol::kMigrate:
      break;
  }
  throw MigrateError("cannot read a checkpoint from " + uri);
}

ResurrectResult resurrect_from_uri(const std::string& uri,
                                   const ResurrectOptions& options) {
  const auto bytes = read_checkpoint_uri(uri);
  UnpackResult unpacked = unpack_process(bytes, options.cfg);
  ResurrectResult result;
  result.breakdown = unpacked.breakdown;
  if (options.prepare) options.prepare(*unpacked.process);
  result.run = unpacked.process->resume(unpacked.resume_fun,
                                        std::move(unpacked.resume_args));
  return result;
}

}  // namespace mojave::migrate
