#include "migrate/protocols.hpp"

#include "support/error.hpp"

namespace mojave::migrate {

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kMigrate:
      return "migrate";
    case Protocol::kSuspend:
      return "suspend";
    case Protocol::kCheckpoint:
      return "checkpoint";
    case Protocol::kCkpt:
      return "ckpt";
  }
  return "?";
}

MigrateTarget MigrateTarget::parse(const std::string& target) {
  MigrateTarget t;
  std::string rest;
  const auto scheme_end = target.find("://");
  if (scheme_end == std::string::npos) {
    throw MigrateError("malformed migration target (no scheme): " + target);
  }
  const std::string scheme = target.substr(0, scheme_end);
  rest = target.substr(scheme_end + 3);

  if (const auto semi = rest.rfind(";binary"); semi != std::string::npos &&
                                               semi == rest.size() - 7) {
    t.kind = ImageKind::kBinary;
    rest = rest.substr(0, semi);
  }

  if (scheme == "migrate") {
    t.protocol = Protocol::kMigrate;
    const auto colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon == rest.size() - 1) {
      throw MigrateError("migrate target needs host:port: " + target);
    }
    t.host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    int port = 0;
    for (char c : port_str) {
      if (c < '0' || c > '9') {
        throw MigrateError("bad port in migration target: " + target);
      }
      port = port * 10 + (c - '0');
      if (port > 65535) {
        throw MigrateError("port out of range in migration target: " + target);
      }
    }
    t.port = static_cast<std::uint16_t>(port);
  } else if (scheme == "suspend" || scheme == "checkpoint") {
    t.protocol =
        scheme == "suspend" ? Protocol::kSuspend : Protocol::kCheckpoint;
    if (rest.empty()) {
      throw MigrateError("file migration target needs a path: " + target);
    }
    t.path = rest;
  } else if (scheme == "ckpt") {
    t.protocol = Protocol::kCkpt;
    // ckpt://<store-root>/<snapshot>: the last path component names the
    // snapshot inside the chunk store rooted at everything before it.
    const auto slash = rest.rfind('/');
    if (slash == std::string::npos || slash == 0 ||
        slash == rest.size() - 1) {
      throw MigrateError("ckpt target needs root/snapshot: " + target);
    }
    t.path = rest.substr(0, slash);
    t.snapshot = rest.substr(slash + 1);
  } else {
    throw MigrateError("unknown migration protocol: " + scheme);
  }
  return t;
}

std::string MigrateTarget::to_string() const {
  std::string s = std::string(protocol_name(protocol)) + "://";
  if (protocol == Protocol::kMigrate) {
    s += host + ":" + std::to_string(port);
  } else if (protocol == Protocol::kCkpt) {
    s += path + "/" + snapshot;
  } else {
    s += path;
  }
  if (kind == ImageKind::kBinary) s += ";binary";
  return s;
}

}  // namespace mojave::migrate
