#include "migrate/image.hpp"

#include <cstring>

#include "fir/legalize.hpp"
#include "fir/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/value_codec.hpp"
#include "fir/typecheck.hpp"
#include "support/hash.hpp"
#include "support/stopwatch.hpp"
#include "vm/lowering.hpp"

namespace mojave::migrate {

using runtime::Block;
using runtime::BlockKind;
using runtime::Tag;
using runtime::Value;

namespace {

/// A parsed-but-not-yet-allocated heap block.
struct BlockRecord {
  BlockIndex index = kNullIndex;
  BlockKind kind = BlockKind::kTagged;
  std::uint32_t count = 0;
  std::vector<Value> slots;        // kTagged
  std::span<const std::byte> raw;  // kRaw (view into the image)
};

void verify_checksum(std::span<const std::byte> image) {
  if (image.size() < 12 + 8) throw ImageError("image too small");
  const std::size_t body = image.size() - 8;
  Reader tail(image.subspan(body));
  const std::uint64_t want = tail.u64();
  const std::uint64_t got = fnv1a(image.subspan(0, body));
  if (want != got) throw ImageError("image checksum mismatch");
}

}  // namespace

PackResult pack_process(vm::Process& proc, MigrateLabel label,
                        FunIndex resume_fun,
                        std::span<const runtime::Value> args, ImageKind kind) {
  obs::ScopedSpan span("migrate", "pack");
  Stopwatch pack_sw;
  runtime::Heap& heap = proc.heap();
  if (proc.spec().current_level() != 0) {
    throw MigrateError(
        "cannot pack a process with active speculations; commit or roll "
        "back first (cf. Figure 2: commit precedes every checkpoint)");
  }

  PackResult result;
  Stopwatch total;

  // Spill the live variables (the continuation's arguments) into a fresh
  // migrate_env block; afterwards the heap is the entire state.
  runtime::RootSet roots(heap);
  const BlockIndex env = heap.alloc_tagged(
      static_cast<std::uint32_t>(args.size()), Value::unit());
  roots.pin(Value::from_ptr(env, 0));
  for (std::uint32_t i = 0; i < args.size(); ++i) {
    heap.write_slot(env, i, args[i]);
  }

  // "The pack operation first performs garbage collection on the heap."
  Stopwatch gc_sw;
  heap.collect(/*major=*/true);
  result.stats.gc_seconds = gc_sw.seconds();

  Stopwatch ser_sw;
  Writer w;
  w.u32(kImageMagic);
  w.u32(kImageFormatVersion);
  w.u8(static_cast<std::uint8_t>(kind));

  // Program text: FIR for the untrusted path, bytecode for the trusted one.
  Writer pw;
  if (kind == ImageKind::kFir) {
    fir::write_program(pw, proc.program());
  } else {
    vm::serialize_compiled(pw, proc.vm().compiled());
  }
  const auto program_bytes = pw.take();
  w.str(kind == ImageKind::kFir ? proc.program().name
                                : proc.vm().compiled().name);
  w.u32(static_cast<std::uint32_t>(program_bytes.size()));
  w.bytes(program_bytes);

  // Resume point.
  w.u32(label);
  w.u32(resume_fun);
  w.u32(env);

  // Interned string blocks (VM state that must survive the trip).
  const auto& sblocks = proc.vm().string_blocks();
  w.u32(static_cast<std::uint32_t>(sblocks.size()));
  for (BlockIndex idx : sblocks) w.u32(idx);

  // The heap: every live block, in pointer-table order.
  const std::size_t count_pos = w.size();
  w.u32(0);  // patched below
  std::uint32_t nblocks = 0;
  heap.table().for_each_entry([&](BlockIndex idx, Block*& b) {
    ++nblocks;
    w.u32(idx);
    w.u8(static_cast<std::uint8_t>(b->h.kind));
    w.u32(b->h.count);
    if (b->h.kind == BlockKind::kTagged) {
      const Value* s = b->slots();
      for (std::uint32_t i = 0; i < b->h.count; ++i) runtime::write_value(w, s[i]);
    } else {
      w.bytes({b->bytes(), b->h.count});
    }
    result.stats.heap_payload_bytes += b->payload_bytes();
  });
  w.patch_u32(count_pos, nblocks);
  w.u64(fnv1a(w.view()));

  result.stats.heap_blocks = nblocks;
  result.stats.serialize_seconds = ser_sw.seconds();
  result.bytes = w.take();
  result.stats.image_bytes = result.bytes.size();

  span.set_arg("image_bytes", result.bytes.size());
  auto& reg = obs::MetricsRegistry::instance();
  static obs::Counter& packed_ctr = reg.counter("migrate.images_packed");
  static obs::Counter& packed_bytes = reg.counter("migrate.image_bytes_packed");
  static obs::Histogram& pack_us = reg.histogram("migrate.pack_us");
  packed_ctr.inc();
  packed_bytes.inc(result.bytes.size());
  pack_us.record_seconds(pack_sw.seconds());
  return result;
}

UnpackResult unpack_process(std::span<const std::byte> image,
                            vm::ProcessConfig cfg) {
  obs::ScopedSpan span("migrate", "unpack");
  span.set_arg("image_bytes", image.size());
  Stopwatch unpack_sw;
  verify_checksum(image);
  UnpackResult out;
  Reader r(image.subspan(0, image.size() - 8));

  if (r.u32() != kImageMagic) throw ImageError("bad image magic");
  if (r.u32() != kImageFormatVersion) {
    throw ImageError("unsupported image format version");
  }
  const std::uint8_t kind_byte = r.u8();
  if (kind_byte > 1) throw ImageError("bad image kind");
  out.kind = static_cast<ImageKind>(kind_byte);
  const std::string name = r.str();
  (void)name;

  const std::uint32_t program_size = r.u32();
  const auto program_bytes = r.bytes(program_size);

  // Decode, and for the untrusted path verify + recompile — the expensive
  // part of FIR migration the benchmarks measure.
  vm::CompiledProgram compiled;
  fir::Program program;
  bool have_fir = false;
  {
    Stopwatch sw;
    if (out.kind == ImageKind::kFir) {
      program = fir::decode_program(program_bytes);
      have_fir = true;
      out.breakdown.decode_seconds = sw.seconds();
      sw.reset();
      {
        obs::ScopedSpan verify_span("migrate", "typecheck");
        // Senders legalize before packing; re-legalizing is idempotent and
        // keeps recompilation canonical for images from older senders.
        fir::legalize(program);
        fir::typecheck(program);
      }
      out.breakdown.typecheck_seconds = sw.seconds();
      sw.reset();
      {
        obs::ScopedSpan recompile_span("migrate", "recompile");
        compiled = vm::lower(program);
      }
      out.breakdown.recompile_seconds = sw.seconds();
      obs::MetricsRegistry::instance()
          .histogram("migrate.recompile_us")
          .record_seconds(out.breakdown.recompile_seconds +
                          out.breakdown.typecheck_seconds);
    } else {
      Reader pr(program_bytes);
      compiled = vm::deserialize_compiled(pr);
      if (!pr.done()) throw ImageError("trailing bytes after bytecode");
      out.breakdown.decode_seconds = sw.seconds();
    }
  }

  out.label = r.u32();
  out.resume_fun = r.u32();
  const BlockIndex env_index = r.u32();

  const std::uint32_t nstrings = r.u32();
  if (nstrings != compiled.strings.size()) {
    throw ImageError("string block table does not match program");
  }
  std::vector<BlockIndex> string_blocks;
  string_blocks.reserve(nstrings);
  for (std::uint32_t i = 0; i < nstrings; ++i) string_blocks.push_back(r.u32());

  // Parse the heap section before allocating anything, so the destination
  // heap can be sized exactly once (restore never collects).
  Stopwatch heap_sw;
  const std::uint32_t nblocks = r.u32();
  if (nblocks > (1u << 26)) throw ImageError("unreasonable block count");
  std::vector<BlockRecord> records;
  records.reserve(nblocks);
  std::size_t total_footprint = 0;
  BlockIndex last_index = kNullIndex;
  for (std::uint32_t i = 0; i < nblocks; ++i) {
    BlockRecord rec;
    rec.index = r.u32();
    if (rec.index <= last_index) throw ImageError("heap blocks out of order");
    last_index = rec.index;
    const std::uint8_t bk = r.u8();
    if (bk > 1) throw ImageError("bad block kind");
    rec.kind = static_cast<BlockKind>(bk);
    rec.count = r.u32();
    if (rec.kind == BlockKind::kTagged) {
      if (rec.count > (1u << 26)) throw ImageError("unreasonable block size");
      rec.slots.reserve(rec.count);
      for (std::uint32_t s = 0; s < rec.count; ++s) {
        rec.slots.push_back(runtime::read_value(r));
      }
    } else {
      rec.raw = r.bytes(rec.count);
    }
    total_footprint += Block::footprint_for(rec.kind, rec.count);
    records.push_back(std::move(rec));
  }

  // Size the heap for the image plus headroom, then reconstruct.
  cfg.heap.old_capacity =
      std::max(cfg.heap.old_capacity, 2 * total_footprint + 65536);
  auto proc = std::make_unique<vm::Process>(std::move(compiled), cfg,
                                            /*intern_strings=*/false);
  if (have_fir) proc->attach_fir(std::move(program));

  runtime::Heap& heap = proc->heap();
  for (const BlockRecord& rec : records) {
    Block* b = heap.restore_block(rec.index, rec.kind, rec.count);
    if (rec.kind == BlockKind::kTagged) {
      Value* s = b->slots();
      for (std::uint32_t i = 0; i < rec.count; ++i) s[i] = rec.slots[i];
    } else if (rec.count > 0) {
      std::memcpy(b->bytes(), rec.raw.data(), rec.count);
    }
  }
  out.breakdown.heap_restore_seconds = heap_sw.seconds();

  // Validate and install the resume state. The label must correspond to a
  // migrate instruction of this program whose continuation is resume_fun.
  const auto& vm = proc->vm();
  const auto label_it = vm.compiled().migrate_labels.find(out.label);
  if (label_it == vm.compiled().migrate_labels.end()) {
    throw SafetyError("image resume label " + std::to_string(out.label) +
                      " is not a migration point of this program");
  }
  if (label_it->second != UINT32_MAX && label_it->second != out.resume_fun) {
    throw SafetyError("image resume function does not match migrate label");
  }
  for (BlockIndex idx : string_blocks) {
    if (heap.table().is_free(idx)) {
      throw ImageError("string block missing from heap image");
    }
  }
  proc->vm().set_string_blocks(std::move(string_blocks));

  // Registers are re-read from migrate_env with the standard safety checks
  // (re-applied by validate_call when the caller resumes).
  Block* env = heap.deref(env_index);
  if (env->h.kind != BlockKind::kTagged) {
    throw SafetyError("migrate_env is not a tagged block");
  }
  out.resume_args.assign(env->slots(), env->slots() + env->h.count);
  out.process = std::move(proc);

  auto& reg = obs::MetricsRegistry::instance();
  static obs::Counter& unpacked_ctr = reg.counter("migrate.images_unpacked");
  static obs::Histogram& unpack_us = reg.histogram("migrate.unpack_us");
  unpacked_ctr.inc();
  unpack_us.record_seconds(unpack_sw.seconds());
  return out;
}

ImageInfo inspect_image(std::span<const std::byte> image) {
  verify_checksum(image);
  Reader r(image.subspan(0, image.size() - 8));
  ImageInfo info;
  if (r.u32() != kImageMagic) throw ImageError("bad image magic");
  if (r.u32() != kImageFormatVersion) {
    throw ImageError("unsupported image format version");
  }
  const std::uint8_t kind_byte = r.u8();
  if (kind_byte > 1) throw ImageError("bad image kind");
  info.kind = static_cast<ImageKind>(kind_byte);
  info.program_name = r.str();
  info.total_bytes = image.size();
  return info;
}

}  // namespace mojave::migrate
