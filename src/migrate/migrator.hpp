// The per-process migration driver: implements the VM's MigrationHook and
// executes the three protocols when managed code reaches a `migrate`
// pseudo-instruction.
//
// Semantics follow Section 4.2.1 of the paper exactly:
//  * migrate    — pack, ship to the migration server, and on success
//                 terminate locally; "if migration fails for any reason,
//                 the process will continue to execute on the original
//                 machine", and the process itself cannot observe which
//                 happened except through external functions.
//  * suspend    — pack to a file; terminate only if the write succeeded.
//  * checkpoint — pack to a file; always continue running.
//  * ckpt       — incremental checkpoint into the content-addressed chunk
//                 store (src/ckpt): only chunks the store does not already
//                 hold are written, so steady-state checkpoint cost is
//                 O(delta), not O(image); always continue running.
//
// Checkpoint files are written atomically (temp file + rename) so a
// resurrection daemon never sees a torn image — the role NFS played for
// the paper's cluster.
//
// The mcc:// transport runs under a RetryPolicy (deadlines, exponential
// backoff with jitter) and the idempotent v2 handshake (migrate/wire.hpp),
// so transient network failures are retried and a retry after a lost ack
// cannot resurrect the process twice. An exhausted retry budget increments
// migrate.gave_up and falls back to the keep-running-locally path.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "migrate/image.hpp"
#include "migrate/protocols.hpp"
#include "net/retry.hpp"
#include "vm/interpreter.hpp"
#include "vm/process.hpp"

namespace mojave::migrate {

class Migrator final : public vm::MigrationHook {
 public:
  /// One record per executed migrate instruction, for tests and benches.
  struct Event {
    MigrateLabel label = 0;
    std::string target;
    bool success = false;
    std::size_t image_bytes = 0;
    /// Bytes actually moved to storage/network. Equal to image_bytes for
    /// whole-image protocols; for ckpt:// targets only the chunks the
    /// store did not already hold (the incremental delta).
    std::size_t bytes_written = 0;
    double pack_seconds = 0;
    double transfer_seconds = 0;
    /// Transport attempts this event consumed (1 = first try succeeded).
    std::uint32_t attempts = 1;
    /// The at-most-once handshake id (mcc:// protocol only).
    std::uint64_t migration_id = 0;
  };

  explicit Migrator(vm::Process& process)
      : process_(process),
        retry_policy_(net::RetryPolicy::process_defaults()) {
    process_.vm().set_migration_hook(this);
  }
  ~Migrator() override { process_.vm().set_migration_hook(nullptr); }

  /// Override the transport retry policy (defaults to the process-wide
  /// policy: compiled defaults + environment + mojc flags).
  void set_retry_policy(const net::RetryPolicy& policy) {
    retry_policy_ = policy;
  }
  [[nodiscard]] const net::RetryPolicy& retry_policy() const {
    return retry_policy_;
  }

  Migrator(const Migrator&) = delete;
  Migrator& operator=(const Migrator&) = delete;

  Action on_migrate(vm::Interpreter& vm, MigrateLabel label,
                    const std::string& target, FunIndex resume_fun,
                    std::span<const runtime::Value> resume_args) override;

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

  // --- Checkpoint-file helpers (shared with daemons and benches) ---------

  /// Atomic write: temp file in the same directory, then rename.
  static void write_image_file(const std::filesystem::path& path,
                               std::span<const std::byte> bytes);
  [[nodiscard]] static std::vector<std::byte> read_image_file(
      const std::filesystem::path& path);

 private:
  /// Drive the mcc:// handshake with retries. Returns normally on success
  /// (the destination owns the process); throws MigrateError when the
  /// retry budget is exhausted or the server refuses.
  void transfer_mcc(const MigrateTarget& target,
                    std::span<const std::byte> image, Event& event);

  vm::Process& process_;
  net::RetryPolicy retry_policy_;
  std::vector<Event> events_;
};

/// Convenience for hosts: reconstruct and resume a process from a
/// checkpoint/suspend file, returning its final result.
struct ResurrectOptions {
  vm::ProcessConfig cfg;
  /// Called after unpack, before resume — the place to register host
  /// externals and (re)attach a Migrator.
  std::function<void(vm::Process&)> prepare;
};

struct ResurrectResult {
  vm::RunResult run;
  UnpackBreakdown breakdown;
};

ResurrectResult resurrect_from_file(const std::filesystem::path& path,
                                    const ResurrectOptions& options = {});

/// Load a checkpoint image from any checkpoint designator: a plain file
/// path, a `checkpoint://` / `suspend://` target, or a `ckpt://root/name`
/// chunk-store URI (restored with integrity verification and manifest
/// fallback). Throws MigrateError when nothing restorable exists.
[[nodiscard]] std::vector<std::byte> read_checkpoint_uri(
    const std::string& uri);

/// resurrect_from_file generalized over read_checkpoint_uri.
ResurrectResult resurrect_from_uri(const std::string& uri,
                                   const ResurrectOptions& options = {});

}  // namespace mojave::migrate
