// Migration target strings (paper, Section 4.2.1).
//
// "(aptr, aoff) is a pointer ... that refers to a string describing the
// migration target. The string includes information on what protocol to
// use to transfer state to the target." Three protocols exist:
//
//   migrate://host:port[;binary]   — ship the process to a migration
//                                    server; terminate the origin copy on
//                                    success, keep running on failure.
//   suspend://path[;binary]        — write the state to a file and
//                                    terminate if the write succeeded.
//   checkpoint://path[;binary]     — write the state to a file and keep
//                                    running regardless.
//   ckpt://root/name[;binary]      — incremental checkpoint into the
//                                    content-addressed chunk store at
//                                    `root` under snapshot `name` (only
//                                    changed chunks are written); keep
//                                    running regardless.
//
// The ";binary" suffix selects the trusted image kind (bytecode, no
// destination-side verification); the default is the untrusted FIR image.
#pragma once

#include <cstdint>
#include <string>

#include "migrate/image.hpp"

namespace mojave::migrate {

enum class Protocol : std::uint8_t {
  kMigrate = 0,
  kSuspend = 1,
  kCheckpoint = 2,
  kCkpt = 3,  ///< incremental chunk-store checkpoint
};

[[nodiscard]] const char* protocol_name(Protocol p);

struct MigrateTarget {
  Protocol protocol = Protocol::kCheckpoint;
  std::string host;         ///< kMigrate
  std::uint16_t port = 0;   ///< kMigrate
  std::string path;         ///< kSuspend / kCheckpoint; store root for kCkpt
  std::string snapshot;     ///< kCkpt: snapshot name within the store
  ImageKind kind = ImageKind::kFir;

  /// Parse a target string; throws MigrateError on malformed input.
  [[nodiscard]] static MigrateTarget parse(const std::string& target);

  [[nodiscard]] std::string to_string() const;
};

}  // namespace mojave::migrate
