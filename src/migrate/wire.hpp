// The idempotent migration handshake (wire format v2).
//
// The original protocol was one shot: client sends the image, server acks
// "OK". A lost ack was fatal to at-most-once semantics — the client would
// retry (or keep running locally) while the server had already resurrected
// the process, yielding two live copies. v2 makes retries safe:
//
//   client                          server
//   ------                          ------
//   OFFER(migration_id)  ------->   id unknown   -> reserve, reply "GO"
//                                   id in flight -> reply "WT" (retry later)
//                                   id committed -> reply "DU" (dedup hit)
//   <image frame>        ------->   unpack + journal; commit id; "OK"/"NO"
//
// The migration id is fixed for all retries of one migrate instruction, so
// however many times the exchange is cut short, the server resurrects the
// process at most once: a retry after a lost "OK" gets "DU", which the
// client treats as success (terminate the local copy). A reservation whose
// image never arrives (or fails to unpack) is released, so a genuinely
// failed attempt can be retried with the same id.
//
// Servers still accept the legacy single-frame protocol: the first frame
// of a connection is an offer iff it is exactly kOfferBytes long and
// carries the magic; real images are far larger and have their own header.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <optional>
#include <random>
#include <span>
#include <vector>

namespace mojave::migrate {

inline constexpr std::size_t kOfferBytes = 16;
inline constexpr char kOfferMagic[4] = {'M', 'O', 'F', '1'};

// Two-byte handshake replies.
inline constexpr char kReplyGo[2] = {'G', 'O'};    ///< send the image
inline constexpr char kReplyDup[2] = {'D', 'U'};   ///< already committed
inline constexpr char kReplyBusy[2] = {'W', 'T'};  ///< attempt in flight
inline constexpr char kReplyOk[2] = {'O', 'K'};    ///< committed, terminate
inline constexpr char kReplyNo[2] = {'N', 'O'};    ///< refused / failed

[[nodiscard]] inline std::vector<std::byte> encode_offer(std::uint64_t id) {
  std::vector<std::byte> frame(kOfferBytes, std::byte{0});
  std::memcpy(frame.data(), kOfferMagic, 4);
  for (int i = 0; i < 8; ++i) {
    frame[4 + i] = std::byte{static_cast<std::uint8_t>(id >> (8 * i))};
  }
  return frame;
}

[[nodiscard]] inline std::optional<std::uint64_t> decode_offer(
    std::span<const std::byte> frame) {
  if (frame.size() != kOfferBytes) return std::nullopt;
  if (std::memcmp(frame.data(), kOfferMagic, 4) != 0) return std::nullopt;
  std::uint64_t id = 0;
  for (int i = 0; i < 8; ++i) {
    id |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(frame[4 + i]))
          << (8 * i);
  }
  return id;
}

[[nodiscard]] inline bool reply_is(std::span<const std::byte> frame,
                                   const char code[2]) {
  return frame.size() == 2 && static_cast<char>(frame[0]) == code[0] &&
         static_cast<char>(frame[1]) == code[1];
}

[[nodiscard]] inline std::vector<std::byte> make_reply(const char code[2]) {
  return {std::byte{static_cast<std::uint8_t>(code[0])},
          std::byte{static_cast<std::uint8_t>(code[1])}};
}

/// Unique per migrate-instruction execution; stable across its retries.
[[nodiscard]] inline std::uint64_t fresh_migration_id() {
  static std::atomic<std::uint64_t> counter{0};
  static const std::uint64_t base = [] {
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  }();
  return base ^ (counter.fetch_add(1, std::memory_order_relaxed) + 1);
}

}  // namespace mojave::migrate
