// The migration server (paper, Section 4.2.1).
//
// "In order to migrate to another machine, the remote machine must run a
// migration server. This is a version of the compiler that will listen for
// incoming migration requests, recompile any inbound processes on the new
// machine, and reconstruct their state before executing them."
//
// The server accepts framed state images over TCP, unpacks them (which
// type-checks and recompiles untrusted FIR images), acknowledges the
// sender — only after which the sender terminates its copy — and runs the
// reconstructed process on its own thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "migrate/image.hpp"
#include "net/tcp.hpp"

namespace mojave::migrate {

class MigrationServer {
 public:
  struct Options {
    std::uint16_t port = 0;  ///< 0 = pick a free port
    vm::ProcessConfig cfg;
    /// Reject untrusted-kind images (a server for trusted clusters only).
    bool accept_fir = true;
    /// Reject binary images (a server that insists on verification).
    bool accept_binary = true;
    /// When non-empty, every accepted image is journaled into the
    /// content-addressed chunk store at this root (snapshot
    /// "inbound_<program>") *before* the sender is acked — the sender
    /// only discards its copy once the image is durable here, and a
    /// crashed server can be resurrected from the store. Repeated
    /// migrations of the same process dedupe to their delta.
    std::filesystem::path ckpt_journal_root;
    /// Called after unpack, before resume: register host externals,
    /// attach a Migrator for onward migration, etc.
    std::function<void(vm::Process&)> prepare;
  };

  struct Completed {
    std::string program_name;
    vm::RunResult result;
    UnpackBreakdown breakdown;
    std::string error;  ///< non-empty if unpack or execution failed
  };

  explicit MigrationServer(Options options);
  ~MigrationServer();

  MigrationServer(const MigrationServer&) = delete;
  MigrationServer& operator=(const MigrationServer&) = delete;

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] std::string address() const {
    return "migrate://127.0.0.1:" + std::to_string(port());
  }

  /// Block until `n` processes have finished (or failed) since startup.
  [[nodiscard]] std::vector<Completed> wait_for(std::size_t n);

  [[nodiscard]] std::size_t received() const { return received_.load(); }

  void stop();

 private:
  void accept_loop();
  void handle(net::TcpStream stream);

  Options options_;
  net::TcpListener listener_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Completed> completed_;
  std::atomic<std::size_t> received_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace mojave::migrate
