// The migration server (paper, Section 4.2.1).
//
// "In order to migrate to another machine, the remote machine must run a
// migration server. This is a version of the compiler that will listen for
// incoming migration requests, recompile any inbound processes on the new
// machine, and reconstruct their state before executing them."
//
// The server accepts framed state images over TCP, unpacks them (which
// type-checks and recompiles untrusted FIR images), acknowledges the
// sender — only after which the sender terminates its copy — and runs the
// reconstructed process on its own thread.
//
// Inbound connections may use the idempotent v2 handshake (wire.hpp): an
// OFFER carrying a migration id reserves a slot, the image commits it, and
// any retry of a committed id is answered "DU" without starting a second
// copy — the at-most-once guarantee a lost ack would otherwise break. The
// dedup window remembers the most recent kDedupWindow committed ids.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "migrate/image.hpp"
#include "net/tcp.hpp"

namespace mojave::migrate {

class MigrationServer {
 public:
  struct Options {
    std::uint16_t port = 0;  ///< 0 = pick a free port
    /// Address to bind the listener to. The long-standing default keeps
    /// the server loopback-only; pass "0.0.0.0" (or a specific interface)
    /// to accept migrations from other machines.
    std::string bind_address = "127.0.0.1";
    vm::ProcessConfig cfg;
    /// Reject untrusted-kind images (a server for trusted clusters only).
    bool accept_fir = true;
    /// Reject binary images (a server that insists on verification).
    bool accept_binary = true;
    /// When non-empty, every accepted image is journaled into the
    /// content-addressed chunk store at this root (snapshot
    /// "inbound_<program>") *before* the sender is acked — the sender
    /// only discards its copy once the image is durable here, and a
    /// crashed server can be resurrected from the store. Repeated
    /// migrations of the same process dedupe to their delta.
    std::filesystem::path ckpt_journal_root;
    /// Called after unpack, before resume: register host externals,
    /// attach a Migrator for onward migration, etc.
    std::function<void(vm::Process&)> prepare;
    /// Per-syscall deadline on inbound connections so a stalled client
    /// cannot pin a worker thread forever. <= 0 disables.
    double io_timeout_seconds = 30.0;
  };

  /// Committed migration ids remembered for duplicate suppression.
  static constexpr std::size_t kDedupWindow = 1024;

  struct Completed {
    std::string program_name;
    vm::RunResult result;
    UnpackBreakdown breakdown;
    std::string error;  ///< non-empty if unpack or execution failed
  };

  explicit MigrationServer(Options options);
  ~MigrationServer();

  MigrationServer(const MigrationServer&) = delete;
  MigrationServer& operator=(const MigrationServer&) = delete;

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] std::string address() const {
    // A wildcard bind is reachable via loopback; advertise an address a
    // local client can actually dial.
    const std::string host = options_.bind_address == "0.0.0.0"
                                 ? "127.0.0.1"
                                 : options_.bind_address;
    return "migrate://" + host + ":" + std::to_string(port());
  }

  /// Block until `n` processes have finished (or failed) since startup.
  [[nodiscard]] std::vector<Completed> wait_for(std::size_t n);

  [[nodiscard]] std::size_t received() const { return received_.load(); }

  // --- Process census (at-most-once verification for tests/monitoring) --
  /// Processes ever started (resumed) on this server.
  [[nodiscard]] std::size_t processes_started() const {
    return started_.load();
  }
  /// Processes currently running.
  [[nodiscard]] std::size_t live_processes() const { return live_.load(); }
  /// Duplicate offers suppressed by the dedup window.
  [[nodiscard]] std::size_t dedup_hits() const { return dedup_hits_.load(); }

  void stop();

 private:
  /// Handshake reservation states for the at-most-once id window.
  enum class IdState : std::uint8_t { kInFlight, kCommitted };

  void accept_loop();
  void handle(net::TcpStream stream);
  /// Reserve `id` for this attempt. Returns the reply to send when the
  /// image must NOT be accepted (DU/WT), or nullopt when reserved.
  [[nodiscard]] std::optional<std::vector<std::byte>> reserve_id(
      std::uint64_t id);
  void commit_id(std::uint64_t id);
  void release_id(std::uint64_t id);

  Options options_;
  net::TcpListener listener_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Completed> completed_;
  std::atomic<std::size_t> received_{0};
  std::atomic<std::size_t> started_{0};
  std::atomic<std::size_t> live_{0};
  std::atomic<std::size_t> dedup_hits_{0};
  std::mutex dedup_mu_;
  std::unordered_map<std::uint64_t, IdState> ids_;  // guarded by dedup_mu_
  std::deque<std::uint64_t> committed_order_;       // guarded by dedup_mu_
  std::atomic<bool> stopping_{false};
};

}  // namespace mojave::migrate
