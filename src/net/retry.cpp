#include "net/retry.hpp"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"

namespace mojave::net {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  return (end == nullptr || *end != '\0') ? fallback : v;
}

std::mutex g_defaults_mu;
RetryPolicy g_defaults;          // guarded by g_defaults_mu
bool g_defaults_set = false;     // guarded by g_defaults_mu

/// Publish the active knobs so `--stats` shows what a run actually used.
void publish_gauges(const RetryPolicy& p) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.gauge("config.migrate.max_attempts")
      .set(static_cast<std::int64_t>(p.max_attempts));
  reg.gauge("config.migrate.backoff_ms")
      .set(static_cast<std::int64_t>(p.initial_backoff_seconds * 1e3));
  reg.gauge("config.migrate.deadline_ms")
      .set(static_cast<std::int64_t>(p.overall_deadline_seconds * 1e3));
  reg.gauge("config.net.connect_timeout_ms")
      .set(static_cast<std::int64_t>(p.connect_timeout_seconds * 1e3));
  reg.gauge("config.net.io_timeout_ms")
      .set(static_cast<std::int64_t>(p.io_timeout_seconds * 1e3));
}

}  // namespace

double env_seconds(const char* name, double fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  return (end == nullptr || *end != '\0') ? fallback : v;
}

RetryPolicy RetryPolicy::from_env() { return from_env(RetryPolicy{}); }

RetryPolicy RetryPolicy::from_env(RetryPolicy base) {
  base.max_attempts = static_cast<std::uint32_t>(
      env_u64("MOJAVE_MIGRATE_MAX_ATTEMPTS", base.max_attempts));
  base.initial_backoff_seconds =
      env_seconds("MOJAVE_MIGRATE_BACKOFF_MS",
                  base.initial_backoff_seconds * 1e3) /
      1e3;
  base.max_backoff_seconds =
      env_seconds("MOJAVE_MIGRATE_BACKOFF_MAX_MS",
                  base.max_backoff_seconds * 1e3) /
      1e3;
  base.overall_deadline_seconds = env_seconds("MOJAVE_MIGRATE_DEADLINE_S",
                                              base.overall_deadline_seconds);
  base.connect_timeout_seconds =
      env_seconds("MOJAVE_NET_CONNECT_TIMEOUT_S", base.connect_timeout_seconds);
  base.io_timeout_seconds =
      env_seconds("MOJAVE_NET_IO_TIMEOUT_S", base.io_timeout_seconds);
  return base;
}

RetryPolicy RetryPolicy::process_defaults() {
  std::lock_guard<std::mutex> lock(g_defaults_mu);
  if (!g_defaults_set) {
    g_defaults = from_env();
    g_defaults_set = true;
    publish_gauges(g_defaults);
  }
  return g_defaults;
}

void RetryPolicy::set_process_defaults(const RetryPolicy& policy) {
  std::lock_guard<std::mutex> lock(g_defaults_mu);
  g_defaults = policy;
  g_defaults_set = true;
  publish_gauges(g_defaults);
}

Backoff::Backoff(const RetryPolicy& policy, std::uint64_t seed)
    : policy_(policy),
      rng_(seed != 0 ? seed : 0x9e3779b97f4a7c15ULL),
      started_(now_seconds()),
      delay_seconds_(policy.initial_backoff_seconds) {}

double Backoff::elapsed_seconds() const { return now_seconds() - started_; }

bool Backoff::retry_after_failure() {
  if (attempts_ >= policy_.max_attempts) return false;
  double delay = delay_seconds_;
  if (policy_.jitter_fraction > 0) {
    delay *= 1.0 + policy_.jitter_fraction * (2.0 * rng_.uniform() - 1.0);
  }
  if (policy_.overall_deadline_seconds > 0 &&
      elapsed_seconds() + delay >= policy_.overall_deadline_seconds) {
    return false;  // the next attempt could not finish inside the deadline
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  delay_seconds_ = std::min(delay_seconds_ * policy_.backoff_multiplier,
                            policy_.max_backoff_seconds);
  ++attempts_;
  return true;
}

}  // namespace mojave::net
