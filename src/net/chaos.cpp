#include "net/chaos.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <vector>

#include "support/error.hpp"
#include "support/log.hpp"

namespace mojave::net {

/// One relayed connection: the two streams plus its own forwarded-byte
/// counter (the reset threshold is per connection, not global).
struct WireChaosProxy::Pipe {
  TcpStream client;
  TcpStream upstream;
  std::atomic<std::uint64_t> forwarded{0};

  /// Half-close both sockets; any pump blocked in recv() unblocks, and a
  /// peer mid-frame sees the stream die there. SO_LINGER(0) makes the
  /// eventual close abortive (RST, not a tidy FIN) — a genuine reset.
  void cut(bool abortive) {
    if (abortive) {
      const struct linger lg {1, 0};
      ::setsockopt(client.fd(), SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
      ::setsockopt(upstream.fd(), SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
    }
    client.shutdown();
    upstream.shutdown();
  }
};

WireChaosProxy::WireChaosProxy(std::string upstream_host,
                               std::uint16_t upstream_port, WireFaults faults)
    : upstream_host_(std::move(upstream_host)),
      upstream_port_(upstream_port),
      faults_(faults),
      listener_(0) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

WireChaosProxy::~WireChaosProxy() { stop(); }

void WireChaosProxy::stop() {
  if (stopping_.exchange(true)) return;
  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& p : pipes_) p->cut(false);
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

WireStats WireChaosProxy::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void WireChaosProxy::accept_loop() {
  while (!stopping_.load()) {
    auto client = listener_.accept();
    if (!client.has_value()) break;
    auto pipe = std::make_shared<Pipe>();
    pipe->client = std::move(*client);
    try {
      pipe->upstream = TcpStream::connect(upstream_host_, upstream_port_,
                                          Deadlines{5.0, 0.0});
    } catch (const NetError& e) {
      MOJAVE_LOG(kDebug, "chaos") << "wire upstream dial failed: " << e.what();
      continue;
    }
    std::uint64_t conn_id = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      conn_id = ++stats_.connections;
      pipes_.push_back(pipe);
      workers_.emplace_back(
          [this, pipe, conn_id] { pump(pipe, /*downstream=*/true, conn_id); });
      workers_.emplace_back(
          [this, pipe, conn_id] { pump(pipe, /*downstream=*/false, conn_id); });
    }
  }
}

void WireChaosProxy::pump(const std::shared_ptr<Pipe>& pipe, bool downstream,
                          std::uint64_t conn_id) {
  const int from = downstream ? pipe->client.fd() : pipe->upstream.fd();
  const int to = downstream ? pipe->upstream.fd() : pipe->client.fd();

  // Bandwidth-cap pacing state: bytes this pump has emitted vs. the time
  // they were "entitled" to take at the configured rate.
  const auto pace_start = std::chrono::steady_clock::now();
  std::uint64_t paced_bytes = 0;

  // Push `len` bytes through the split / reset / bandwidth machinery.
  // Returns false when the pipe was cut (reset fault or send failure);
  // the caller must return immediately.
  auto forward = [&](const std::byte* data, std::size_t len) -> bool {
    std::size_t off = 0;
    while (off < len) {
      std::size_t chunk = faults_.split_bytes > 0
                              ? std::min(faults_.split_bytes, len - off)
                              : len - off;
      bool do_reset = false;
      if (conn_id == faults_.reset_conn) {
        std::lock_guard<std::mutex> lock(mu_);
        const std::uint64_t sent = pipe->forwarded.load();
        if (!reset_done_ && sent + chunk >= faults_.reset_after_bytes) {
          // Truncate this write so the cut lands exactly at the
          // threshold — with frames longer than it, mid-frame.
          chunk = faults_.reset_after_bytes > sent
                      ? static_cast<std::size_t>(faults_.reset_after_bytes -
                                                 sent)
                      : 0;
          reset_done_ = true;
          do_reset = true;
          ++stats_.resets;
        }
      }
      if (faults_.bandwidth_bytes_per_sec > 0 && chunk > 0) {
        // Sleep until the cumulative byte count is allowed at the cap.
        // Per-direction (each pump paces itself), like a duplex link.
        paced_bytes += chunk;
        const double entitled =
            static_cast<double>(paced_bytes) / faults_.bandwidth_bytes_per_sec;
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          pace_start)
                .count();
        if (entitled > elapsed) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(entitled - elapsed));
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.throttle_waits;
        }
      }
      if (chunk > 0 &&
          ::send(to, data + off, chunk, MSG_NOSIGNAL) !=
              static_cast<ssize_t>(chunk)) {
        pipe->cut(false);
        return false;
      }
      pipe->forwarded.fetch_add(chunk);
      {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.bytes_forwarded += chunk;
        if (faults_.split_bytes > 0) ++stats_.split_writes;
      }
      if (do_reset) {
        MOJAVE_LOG(kDebug, "chaos")
            << "wire reset on conn " << conn_id << " after "
            << pipe->forwarded.load() << " bytes";
        pipe->cut(true);
        return false;
      }
      off += chunk;
    }
    return true;
  };

  // Frame-reorder state: with reorder_every_n > 0 the byte stream is
  // parsed into u32(LE)-length-prefixed frames and every Nth complete
  // frame is held back and emitted after its successor.
  bool frame_mode = faults_.reorder_every_n > 0;
  std::vector<std::byte> inbuf;
  std::vector<std::byte> held;
  std::uint64_t frames_seen = 0;
  constexpr std::uint32_t kSaneFrameBytes = 64u << 20;

  std::byte buf[4096];
  while (!stopping_.load()) {
    const ssize_t n = ::recv(from, buf, sizeof buf, 0);
    if (n <= 0) break;
    if (faults_.delay_seconds > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(faults_.delay_seconds));
    }
    if (!frame_mode) {
      if (!forward(buf, static_cast<std::size_t>(n))) return;
      continue;
    }
    inbuf.insert(inbuf.end(), buf, buf + n);
    while (frame_mode && inbuf.size() >= 4) {
      std::uint32_t len = 0;
      std::memcpy(&len, inbuf.data(), 4);
      if (len > kSaneFrameBytes) {
        // Not the framed wire protocol after all — degrade to a raw
        // relay instead of wedging on a bogus length.
        frame_mode = false;
        if (!held.empty() && !forward(held.data(), held.size())) return;
        held.clear();
        break;
      }
      const std::size_t total = 4 + static_cast<std::size_t>(len);
      if (inbuf.size() < total) break;
      std::vector<std::byte> frame(
          inbuf.begin(), inbuf.begin() + static_cast<std::ptrdiff_t>(total));
      inbuf.erase(inbuf.begin(),
                  inbuf.begin() + static_cast<std::ptrdiff_t>(total));
      ++frames_seen;
      if (held.empty() && frames_seen % faults_.reorder_every_n == 0) {
        held = std::move(frame);  // swap with the next frame
        continue;
      }
      if (!forward(frame.data(), frame.size())) return;
      if (!held.empty()) {
        if (!forward(held.data(), held.size())) return;
        held.clear();
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.frames_reordered;
      }
    }
    if (!frame_mode && !inbuf.empty()) {
      if (!forward(inbuf.data(), inbuf.size())) return;
      inbuf.clear();
    }
  }
  // EOF with a frame still held: it has no successor to swap with, so
  // release it unswapped rather than swallow it.
  if (!held.empty()) forward(held.data(), held.size());
  pipe->cut(false);
}

ChaosProxy::ChaosProxy(std::string upstream_host, std::uint16_t upstream_port,
                       ProxyFaults faults)
    : upstream_host_(std::move(upstream_host)),
      upstream_port_(upstream_port),
      faults_(faults),
      listener_(0),
      rng_(faults.seed) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

ChaosProxy::~ChaosProxy() { stop(); }

void ChaosProxy::stop() {
  if (stopping_.exchange(true)) return;
  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

ProxyStats ChaosProxy::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ChaosProxy::accept_loop() {
  while (!stopping_.load()) {
    auto client = listener_.accept();
    if (!client.has_value()) break;
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.connections;
    workers_.emplace_back(
        [this, c = std::make_shared<TcpStream>(std::move(*client))]() mutable {
          relay(std::move(*c));
        });
  }
}

void ChaosProxy::relay(TcpStream client) {
  try {
    TcpStream upstream = TcpStream::connect(upstream_host_, upstream_port_,
                                            Deadlines{5.0, 30.0});
    while (true) {
      auto request = client.recv_frame();
      if (!request.has_value()) return;  // client done
      bool drop_req = false;
      bool corrupt = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        drop_req = faults_.drop_request > 0 && rng_.chance(faults_.drop_request);
        corrupt = !drop_req && !request->empty() && faults_.corrupt_request > 0 &&
                  rng_.chance(faults_.corrupt_request);
        if (drop_req) ++stats_.requests_dropped;
        if (corrupt) {
          ++stats_.requests_corrupted;
          const std::size_t i = rng_.below(request->size());
          (*request)[i] ^= std::byte{static_cast<std::uint8_t>(
              1 + rng_.below(255))};
        }
      }
      if (drop_req) return;  // cut the connection: the request is lost
      if (faults_.delay_seconds > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(faults_.delay_seconds));
      }
      upstream.send_frame(*request);

      auto reply = upstream.recv_frame();
      if (!reply.has_value()) return;  // upstream cut us off
      bool drop_rep = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++replies_seen_;
        drop_rep = faults_.drop_reply_frames.count(replies_seen_) != 0 ||
                   (faults_.drop_reply > 0 && rng_.chance(faults_.drop_reply));
        if (drop_rep) {
          ++stats_.replies_dropped;
        } else {
          stats_.frames_forwarded += 2;
        }
      }
      // A dropped reply models the worst failure for exactly-once delivery:
      // the server has already acted, only the acknowledgement is lost.
      if (drop_rep) return;
      client.send_frame(*reply);
    }
  } catch (const NetError& e) {
    MOJAVE_LOG(kDebug, "chaos") << "relay ended: " << e.what();
  }
}

}  // namespace mojave::net
