#include "net/chaos.hpp"

#include <chrono>
#include <memory>

#include "support/error.hpp"
#include "support/log.hpp"

namespace mojave::net {

ChaosProxy::ChaosProxy(std::string upstream_host, std::uint16_t upstream_port,
                       ProxyFaults faults)
    : upstream_host_(std::move(upstream_host)),
      upstream_port_(upstream_port),
      faults_(faults),
      listener_(0),
      rng_(faults.seed) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

ChaosProxy::~ChaosProxy() { stop(); }

void ChaosProxy::stop() {
  if (stopping_.exchange(true)) return;
  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

ProxyStats ChaosProxy::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ChaosProxy::accept_loop() {
  while (!stopping_.load()) {
    auto client = listener_.accept();
    if (!client.has_value()) break;
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.connections;
    workers_.emplace_back(
        [this, c = std::make_shared<TcpStream>(std::move(*client))]() mutable {
          relay(std::move(*c));
        });
  }
}

void ChaosProxy::relay(TcpStream client) {
  try {
    TcpStream upstream = TcpStream::connect(upstream_host_, upstream_port_,
                                            Deadlines{5.0, 30.0});
    while (true) {
      auto request = client.recv_frame();
      if (!request.has_value()) return;  // client done
      bool drop_req = false;
      bool corrupt = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        drop_req = faults_.drop_request > 0 && rng_.chance(faults_.drop_request);
        corrupt = !drop_req && !request->empty() && faults_.corrupt_request > 0 &&
                  rng_.chance(faults_.corrupt_request);
        if (drop_req) ++stats_.requests_dropped;
        if (corrupt) {
          ++stats_.requests_corrupted;
          const std::size_t i = rng_.below(request->size());
          (*request)[i] ^= std::byte{static_cast<std::uint8_t>(
              1 + rng_.below(255))};
        }
      }
      if (drop_req) return;  // cut the connection: the request is lost
      if (faults_.delay_seconds > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(faults_.delay_seconds));
      }
      upstream.send_frame(*request);

      auto reply = upstream.recv_frame();
      if (!reply.has_value()) return;  // upstream cut us off
      bool drop_rep = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++replies_seen_;
        drop_rep = faults_.drop_reply_frames.count(replies_seen_) != 0 ||
                   (faults_.drop_reply > 0 && rng_.chance(faults_.drop_reply));
        if (drop_rep) {
          ++stats_.replies_dropped;
        } else {
          stats_.frames_forwarded += 2;
        }
      }
      // A dropped reply models the worst failure for exactly-once delivery:
      // the server has already acted, only the acknowledgement is lost.
      if (drop_rep) return;
      client.send_frame(*reply);
    }
  } catch (const NetError& e) {
    MOJAVE_LOG(kDebug, "chaos") << "relay ended: " << e.what();
  }
}

}  // namespace mojave::net
