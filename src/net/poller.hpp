// Poller + FramedSocket: the non-blocking I/O core of the rank-dense
// agent runtime.
//
// Poller wraps epoll: every socket an event loop owns is registered once
// under a caller-chosen token, the loop sleeps in wait() (bounded by the
// next timer deadline), and wake() — an eventfd — unblocks it from any
// thread. One Poller replaces what used to be a blocking reader thread
// per connection plus an accept thread plus a heartbeat thread.
//
// FramedSocket is the u32-length-prefix framing of TcpStream rebuilt for
// non-blocking fds:
//
//  * reads are buffered: on_readable() drains whatever the kernel has and
//    extracts every complete frame, so a frame split across segments (or
//    a WireChaosProxy fragmenting writes) reassembles incrementally;
//  * writes are queued, never blocking the loop: small frames coalesce
//    into a shared batch buffer (per peer, per flush tick — one syscall
//    where the thread-per-rank runtime made dozens), large payloads stay
//    in their own buffers and go out through the same writev() without a
//    copy (the zero-copy path for halo exchanges);
//  * partial writev()s keep a cursor; the owner re-arms EPOLLOUT while
//    want_write() and flushes again when the socket drains.
//
// Frame-level semantics (checksums, replay, idempotency) stay one layer
// up in dnode/wire.hpp — this file only moves bytes.
#pragma once

#include <sys/epoll.h>

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "net/tcp.hpp"

namespace mojave::net {

class Poller {
 public:
  struct Event {
    std::uint64_t token = 0;
    bool readable = false;
    bool writable = false;
    bool hup = false;   ///< peer closed (EPOLLHUP / EPOLLRDHUP)
    bool error = false; ///< EPOLLERR
  };

  Poller();
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// Register `fd` under `token`. The poller never owns the fd.
  void add(int fd, std::uint64_t token, bool want_read, bool want_write);
  /// Re-arm `fd` with a new interest set (token may change too).
  void modify(int fd, std::uint64_t token, bool want_read, bool want_write);
  /// Deregister. Safe to call for fds the kernel already dropped.
  void remove(int fd);

  /// Block up to timeout_ms (-1 = forever, 0 = poll) and append ready
  /// events to `out` (cleared first). Returns the number of events. A
  /// wake() consumes silently — wait() simply returns early.
  std::size_t wait(std::vector<Event>& out, int timeout_ms);

  /// Unblock a concurrent (or the next) wait(). Callable from any thread
  /// and from signal-free contexts; coalesces.
  void wake();

 private:
  int epfd_ = -1;
  int wakefd_ = -1;  ///< eventfd, registered under the reserved token
  std::vector<::epoll_event> events_;

  static constexpr std::uint64_t kWakeToken = ~std::uint64_t{0};
};

/// Counters for the frame-coalescing write path (process-wide; the ratio
/// frames_out / flush_batches is the `coalesce_ratio` bench metric).
struct CoalesceStats {
  std::uint64_t frames_out = 0;      ///< frames queued
  std::uint64_t flush_batches = 0;   ///< writev syscalls that moved bytes
  std::uint64_t batched_frames = 0;  ///< small frames copied into a batch
  std::uint64_t zero_copy_frames = 0;  ///< large frames sent from their own buffer
  std::uint64_t partial_flushes = 0;   ///< writev returned short (EAGAIN path)
};

class FramedSocket {
 public:
  /// Frames with payloads at or above this many bytes skip the batch
  /// buffer and are written from their own storage (iovec entry).
  static constexpr std::size_t kZeroCopyThreshold = 2048;

  FramedSocket() = default;
  /// Takes ownership and puts the fd in non-blocking mode.
  explicit FramedSocket(TcpStream stream);

  [[nodiscard]] bool valid() const { return stream_.valid(); }
  [[nodiscard]] int fd() const { return stream_.fd(); }
  [[nodiscard]] TcpStream& stream() { return stream_; }

  /// Drain everything the kernel has buffered and append every complete
  /// frame to `frames`. Returns false when the connection is finished
  /// (orderly close, reset, or an over-limit frame) — the caller should
  /// deregister and drop the socket. Never blocks.
  [[nodiscard]] bool on_readable(std::vector<std::vector<std::byte>>& frames);

  /// Queue one frame for transmission. Small payloads are copied into the
  /// current coalescing batch; payloads >= kZeroCopyThreshold are moved
  /// into the queue and written in place via writev. Call flush() (or
  /// wait for writability) to move bytes.
  void queue_frame(std::span<const std::byte> payload);
  void queue_frame(std::vector<std::byte> payload);

  /// Push queued bytes into the socket with writev until EAGAIN or empty.
  /// Returns false on a fatal socket error (connection dead).
  [[nodiscard]] bool flush();

  [[nodiscard]] bool want_write() const { return !outq_.empty(); }
  [[nodiscard]] std::size_t pending_bytes() const { return pending_bytes_; }

  /// Half-close (wakes a peer blocked mid-frame); fd stays reserved.
  void shutdown() { stream_.shutdown(); }

  [[nodiscard]] static CoalesceStats stats_snapshot();

 private:
  /// One queued write: either a coalesced batch of small frames (header +
  /// payload, back to back) or a single zero-copy payload preceded by its
  /// 4-byte header buffer.
  struct OutBuf {
    std::vector<std::byte> bytes;
    std::size_t offset = 0;  ///< bytes already written (front buffer only)
  };

  void append_header(std::vector<std::byte>& buf, std::uint32_t n);

  TcpStream stream_;
  std::vector<std::byte> inbuf_;
  std::deque<OutBuf> outq_;
  std::size_t pending_bytes_ = 0;
  /// True while outq_.back() is an open coalescing batch small frames may
  /// still append to (closed by a zero-copy frame or a flush).
  bool batch_open_ = false;
};

}  // namespace mojave::net
