// Minimal RAII TCP wrapper (POSIX sockets), used by the migration server
// and client. Messages are framed as a u32 little-endian length prefix
// followed by the payload, with a hard cap so a hostile peer cannot make
// the server allocate unbounded memory.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace mojave::net {

inline constexpr std::size_t kMaxFrameBytes = 256u << 20;  // 256 MiB

class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream();

  TcpStream(TcpStream&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  TcpStream& operator=(TcpStream&& o) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connect to host:port. Throws NetError on failure.
  [[nodiscard]] static TcpStream connect(const std::string& host,
                                         std::uint16_t port);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Send one length-prefixed frame.
  void send_frame(std::span<const std::byte> payload);
  /// Receive one frame; empty optional on orderly peer close.
  [[nodiscard]] std::optional<std::vector<std::byte>> recv_frame();

  void close();

 private:
  void send_all(const std::byte* data, std::size_t n);
  [[nodiscard]] bool recv_all(std::byte* data, std::size_t n);

  int fd_ = -1;
};

class TcpListener {
 public:
  /// Bind and listen on 127.0.0.1:port; port 0 picks a free port.
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Accept one connection; empty optional if the listener was shut down.
  [[nodiscard]] std::optional<TcpStream> accept();

  /// Unblock any accept() and close the socket.
  void shutdown();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace mojave::net
