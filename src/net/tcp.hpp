// Minimal RAII TCP wrapper (POSIX sockets), used by the migration server
// and client. Messages are framed as a u32 little-endian length prefix
// followed by the payload, with a hard cap so a hostile peer cannot make
// the server allocate unbounded memory.
//
// Every blocking operation can carry a deadline: connect() resolves the
// host through getaddrinfo on a helper thread (bounded wait) and completes
// the three-way handshake through a non-blocking connect + poll, and
// send/recv honour per-call timeouts via SO_SNDTIMEO/SO_RCVTIMEO. Deadline
// expiry surfaces as NetTimeout (a NetError subclass) so retry policies
// can distinguish "slow" from "refused".
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace mojave::net {

inline constexpr std::size_t kMaxFrameBytes = 256u << 20;  // 256 MiB

/// Per-stream deadlines in seconds; <= 0 means block forever (legacy
/// behaviour, still the default for callers that manage their own pacing).
struct Deadlines {
  double connect_seconds = 0;  ///< resolve + TCP handshake budget
  double io_seconds = 0;       ///< per send/recv syscall budget
};

class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream();

  TcpStream(TcpStream&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  TcpStream& operator=(TcpStream&& o) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connect to host:port (numeric or resolvable name). Throws NetError on
  /// failure and NetTimeout when a positive connect deadline expires; the
  /// socket fd is closed on every error path.
  [[nodiscard]] static TcpStream connect(const std::string& host,
                                         std::uint16_t port,
                                         const Deadlines& deadlines = {});

  /// Begin a non-blocking connect for event-loop callers: the returned
  /// stream's fd is O_NONBLOCK with the TCP handshake (usually) still in
  /// flight. Register it for writability with a Poller and check
  /// connect_finished() when it fires. Names resolve synchronously.
  [[nodiscard]] static TcpStream connect_begin(const std::string& host,
                                               std::uint16_t port);
  /// After a connect_begin() fd polls writable: true when the handshake
  /// succeeded, throws NetError when it failed. The fd stays O_NONBLOCK.
  [[nodiscard]] bool connect_finished();

  /// Put the fd in non-blocking mode (event-loop ownership).
  void set_nonblocking();

  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Raw descriptor, for relays that operate below the framing layer
  /// (WireChaosProxy). Ownership stays with the stream.
  [[nodiscard]] int fd() const { return fd_; }

  /// Bound every subsequent send/recv syscall; <= 0 restores blocking.
  void set_io_deadline(double seconds);

  /// Send one length-prefixed frame.
  void send_frame(std::span<const std::byte> payload);
  /// Receive one frame; empty optional on orderly peer close.
  [[nodiscard]] std::optional<std::vector<std::byte>> recv_frame();

  /// Half-close both directions without releasing the fd: a reader blocked
  /// in recv_frame() on another thread observes an orderly close and
  /// returns. close() would recycle the fd number under that thread;
  /// shutdown() keeps it reserved until the owner joins and destroys the
  /// stream (mirrors TcpListener::shutdown()).
  void shutdown();

  void close();

 private:
  void send_all(const std::byte* data, std::size_t n);
  [[nodiscard]] bool recv_all(std::byte* data, std::size_t n);

  int fd_ = -1;
};

class TcpListener {
 public:
  /// Bind and listen on 127.0.0.1:port; port 0 picks a free port.
  explicit TcpListener(std::uint16_t port);
  /// Bind a specific address: a numeric IPv4 address, a resolvable name,
  /// or "0.0.0.0" for all interfaces (required for multi-host operation —
  /// the loopback-only ctor above cannot accept remote peers).
  TcpListener(const std::string& bind_host, std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Raw listening descriptor, for event loops that register it with a
  /// Poller. Ownership stays with the listener.
  [[nodiscard]] int fd() const { return fd_.load(); }

  /// Accept one connection; empty optional if the listener was shut down.
  [[nodiscard]] std::optional<TcpStream> accept();

  /// Non-blocking accept for event-loop callers (set_nonblocking first):
  /// empty optional when no connection is pending or the listener is shut
  /// down. Never blocks.
  [[nodiscard]] std::optional<TcpStream> try_accept();

  /// Put the listening fd in non-blocking mode (event-loop ownership).
  void set_nonblocking();

  /// Unblock any accept() and stop taking connections. The fd itself is
  /// closed by the destructor, after the owner has joined its accept
  /// thread — closing here could recycle the fd number under a thread
  /// still blocked in ::accept on it.
  void shutdown();

 private:
  std::atomic<int> fd_{-1};
  std::atomic<bool> shut_{false};
  std::uint16_t port_ = 0;
};

}  // namespace mojave::net
