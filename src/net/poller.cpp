#include "net/poller.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace mojave::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

struct CoalesceMetrics {
  obs::Counter& frames_out;
  obs::Counter& flush_batches;
  obs::Counter& batched_frames;
  obs::Counter& zero_copy_frames;
  obs::Counter& partial_flushes;
  obs::Counter& bytes_out;

  static CoalesceMetrics& get() {
    static CoalesceMetrics m{
        obs::MetricsRegistry::instance().counter("net.coalesce.frames_out"),
        obs::MetricsRegistry::instance().counter("net.coalesce.flush_batches"),
        obs::MetricsRegistry::instance().counter("net.coalesce.batched_frames"),
        obs::MetricsRegistry::instance().counter(
            "net.coalesce.zero_copy_frames"),
        obs::MetricsRegistry::instance().counter(
            "net.coalesce.partial_flushes"),
        obs::MetricsRegistry::instance().counter("net.coalesce.bytes_out"),
    };
    return m;
  }
};

}  // namespace

// --- Poller ----------------------------------------------------------------

Poller::Poller() {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) fail("epoll_create1");
  wakefd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakefd_ < 0) {
    const int saved = errno;
    ::close(epfd_);
    epfd_ = -1;
    errno = saved;
    fail("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeToken;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, wakefd_, &ev) != 0) {
    const int saved = errno;
    ::close(wakefd_);
    ::close(epfd_);
    epfd_ = wakefd_ = -1;
    errno = saved;
    fail("epoll_ctl(wakefd)");
  }
  events_.resize(64);
}

Poller::~Poller() {
  if (wakefd_ >= 0) ::close(wakefd_);
  if (epfd_ >= 0) ::close(epfd_);
}

void Poller::add(int fd, std::uint64_t token, bool want_read,
                 bool want_write) {
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u) |
              EPOLLRDHUP;
  ev.data.u64 = token;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) fail("epoll_ctl(ADD)");
}

void Poller::modify(int fd, std::uint64_t token, bool want_read,
                    bool want_write) {
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u) |
              EPOLLRDHUP;
  ev.data.u64 = token;
  if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0) fail("epoll_ctl(MOD)");
}

void Poller::remove(int fd) {
  // ENOENT/EBADF are tolerated: the kernel drops registrations when the
  // last reference to an fd closes, which can race an explicit remove.
  epoll_event ev{};
  if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev) != 0 && errno != ENOENT &&
      errno != EBADF) {
    fail("epoll_ctl(DEL)");
  }
}

std::size_t Poller::wait(std::vector<Event>& out, int timeout_ms) {
  out.clear();
  int n;
  do {
    n = ::epoll_wait(epfd_, events_.data(), static_cast<int>(events_.size()),
                     timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) fail("epoll_wait");
  for (int i = 0; i < n; ++i) {
    const epoll_event& ev = events_[static_cast<std::size_t>(i)];
    if (ev.data.u64 == kWakeToken) {
      std::uint64_t drain = 0;
      while (::read(wakefd_, &drain, sizeof(drain)) > 0) {
      }
      continue;
    }
    Event e;
    e.token = ev.data.u64;
    e.readable = (ev.events & EPOLLIN) != 0;
    e.writable = (ev.events & EPOLLOUT) != 0;
    e.hup = (ev.events & (EPOLLHUP | EPOLLRDHUP)) != 0;
    e.error = (ev.events & EPOLLERR) != 0;
    out.push_back(e);
  }
  if (n == static_cast<int>(events_.size())) events_.resize(events_.size() * 2);
  return out.size();
}

void Poller::wake() {
  const std::uint64_t one = 1;
  // EAGAIN means the counter is already nonzero — the wake is pending.
  [[maybe_unused]] ssize_t rc = ::write(wakefd_, &one, sizeof(one));
}

// --- FramedSocket ----------------------------------------------------------

FramedSocket::FramedSocket(TcpStream stream) : stream_(std::move(stream)) {
  stream_.set_nonblocking();
  inbuf_.reserve(4096);
}

bool FramedSocket::on_readable(std::vector<std::vector<std::byte>>& frames) {
  std::byte chunk[16384];
  for (;;) {
    const ssize_t n = ::recv(stream_.fd(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      inbuf_.insert(inbuf_.end(), chunk, chunk + n);
      if (static_cast<std::size_t>(n) < sizeof(chunk)) break;
      continue;
    }
    if (n == 0) return false;  // orderly close
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // ECONNRESET etc.
  }
  // Extract complete frames.
  std::size_t pos = 0;
  while (inbuf_.size() - pos >= 4) {
    std::uint32_t len = 0;
    std::memcpy(&len, inbuf_.data() + pos, 4);
    if (len > kMaxFrameBytes) return false;  // protocol violation
    if (inbuf_.size() - pos - 4 < len) break;
    frames.emplace_back(inbuf_.begin() + static_cast<std::ptrdiff_t>(pos + 4),
                        inbuf_.begin() +
                            static_cast<std::ptrdiff_t>(pos + 4 + len));
    pos += 4 + len;
  }
  if (pos > 0) inbuf_.erase(inbuf_.begin(), inbuf_.begin() +
                                                static_cast<std::ptrdiff_t>(pos));
  return true;
}

void FramedSocket::append_header(std::vector<std::byte>& buf,
                                 std::uint32_t n) {
  const auto* p = reinterpret_cast<const std::byte*>(&n);
  buf.insert(buf.end(), p, p + 4);
}

void FramedSocket::queue_frame(std::span<const std::byte> payload) {
  auto& m = CoalesceMetrics::get();
  m.frames_out.inc();
  if (payload.size() >= kZeroCopyThreshold) {
    queue_frame(std::vector<std::byte>(payload.begin(), payload.end()));
    return;
  }
  m.batched_frames.inc();
  if (!batch_open_ || outq_.empty()) {
    outq_.emplace_back();
    batch_open_ = true;
  }
  OutBuf& b = outq_.back();
  append_header(b.bytes, static_cast<std::uint32_t>(payload.size()));
  b.bytes.insert(b.bytes.end(), payload.begin(), payload.end());
  pending_bytes_ += 4 + payload.size();
}

void FramedSocket::queue_frame(std::vector<std::byte> payload) {
  auto& m = CoalesceMetrics::get();
  if (payload.size() < kZeroCopyThreshold) {
    queue_frame(std::span<const std::byte>(payload));
    return;
  }
  m.frames_out.inc();
  m.zero_copy_frames.inc();
  // The header rides in its own small OutBuf; the payload vector is moved
  // into place untouched — writev stitches them together on the wire.
  OutBuf hdr;
  append_header(hdr.bytes, static_cast<std::uint32_t>(payload.size()));
  pending_bytes_ += 4 + payload.size();
  outq_.push_back(std::move(hdr));
  OutBuf body;
  body.bytes = std::move(payload);
  outq_.push_back(std::move(body));
  batch_open_ = false;
}

bool FramedSocket::flush() {
  auto& m = CoalesceMetrics::get();
  batch_open_ = false;  // a flush tick closes the coalescing window
  while (!outq_.empty()) {
    iovec iov[16];
    int iovcnt = 0;
    std::size_t first_off = outq_.front().offset;
    for (const OutBuf& b : outq_) {
      if (iovcnt == 16) break;
      const std::size_t off = (iovcnt == 0) ? first_off : 0;
      iov[iovcnt].iov_base =
          const_cast<std::byte*>(b.bytes.data() + off);
      iov[iovcnt].iov_len = b.bytes.size() - off;
      ++iovcnt;
    }
    // sendmsg rather than writev: MSG_NOSIGNAL turns a write to a peer
    // that died mid-run (SIGKILLed agent) into EPIPE instead of a
    // process-killing SIGPIPE.
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    ssize_t n;
    do {
      n = ::sendmsg(stream_.fd(), &msg, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        m.partial_flushes.inc();
        return true;
      }
      return false;  // EPIPE/ECONNRESET: connection dead
    }
    m.flush_batches.inc();
    m.bytes_out.inc(static_cast<std::uint64_t>(n));
    std::size_t written = static_cast<std::size_t>(n);
    pending_bytes_ -= written;
    while (written > 0 && !outq_.empty()) {
      OutBuf& b = outq_.front();
      const std::size_t remain = b.bytes.size() - b.offset;
      if (written >= remain) {
        written -= remain;
        outq_.pop_front();
      } else {
        b.offset += written;
        written = 0;
      }
    }
  }
  return true;
}

CoalesceStats FramedSocket::stats_snapshot() {
  auto& m = CoalesceMetrics::get();
  CoalesceStats s;
  s.frames_out = m.frames_out.value();
  s.flush_batches = m.flush_batches.value();
  s.batched_frames = m.batched_frames.value();
  s.zero_copy_frames = m.zero_copy_frames.value();
  s.partial_flushes = m.partial_flushes.value();
  return s;
}

}  // namespace mojave::net
