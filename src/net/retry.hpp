// Retry policy for unreliable transports: bounded attempts, exponential
// backoff with jitter, and an overall deadline. This drives the migration
// client's mcc:// and ckpt:// paths — the paper's contract is that a
// failed migration degrades to "keep running locally", so the policy's job
// is to decide *when* to stop trying, never to let a failure escape.
//
// Knobs resolve in three layers: compiled defaults < environment variables
// (MOJAVE_MIGRATE_* / MOJAVE_NET_*) < explicit process overrides (mojc
// flags). The active values are published as config.* gauges so
// `mojc --stats` shows what a run actually used.
#pragma once

#include <cstdint>

#include "net/tcp.hpp"
#include "support/rng.hpp"

namespace mojave::net {

struct RetryPolicy {
  std::uint32_t max_attempts = 3;        ///< total tries, including the first
  double initial_backoff_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 1.0;
  double jitter_fraction = 0.2;          ///< delay *= uniform[1-j, 1+j]
  double overall_deadline_seconds = 15.0;  ///< across all attempts; <=0 = off
  double connect_timeout_seconds = 5.0;
  double io_timeout_seconds = 10.0;

  [[nodiscard]] Deadlines deadlines() const {
    return Deadlines{connect_timeout_seconds, io_timeout_seconds};
  }

  /// Compiled defaults overlaid with any MOJAVE_* environment variables:
  ///   MOJAVE_MIGRATE_MAX_ATTEMPTS, MOJAVE_MIGRATE_BACKOFF_MS,
  ///   MOJAVE_MIGRATE_BACKOFF_MAX_MS, MOJAVE_MIGRATE_DEADLINE_S,
  ///   MOJAVE_NET_CONNECT_TIMEOUT_S, MOJAVE_NET_IO_TIMEOUT_S
  [[nodiscard]] static RetryPolicy from_env(RetryPolicy base);
  [[nodiscard]] static RetryPolicy from_env();

  /// The process-wide policy new Migrators copy: from_env() until
  /// set_process_defaults() overrides it (mojc flags do this).
  [[nodiscard]] static RetryPolicy process_defaults();
  static void set_process_defaults(const RetryPolicy& policy);
};

/// Per-operation retry state: tracks attempts and the overall deadline,
/// and sleeps the jittered backoff between them. Seeded so fault-injection
/// tests replay the same schedule.
class Backoff {
 public:
  explicit Backoff(const RetryPolicy& policy, std::uint64_t seed = 0);

  /// Call after a failed attempt. Returns false when the budget (attempts
  /// or overall deadline) is exhausted; otherwise sleeps the backoff delay
  /// and returns true — the caller should try again.
  [[nodiscard]] bool retry_after_failure();

  [[nodiscard]] std::uint32_t attempts() const { return attempts_; }
  [[nodiscard]] double elapsed_seconds() const;

 private:
  RetryPolicy policy_;
  Rng rng_;
  double started_;       // steady-clock seconds
  double delay_seconds_;
  std::uint32_t attempts_ = 1;
};

/// Read a double from the environment; `fallback` when unset/malformed.
[[nodiscard]] double env_seconds(const char* name, double fallback);

}  // namespace mojave::net
