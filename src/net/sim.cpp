#include "net/sim.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"

namespace mojave::net {

namespace {

struct SimMetrics {
  obs::Counter& messages_sent;
  obs::Counter& bytes_sent;
  obs::Counter& messages_dropped;
  obs::Counter& faults_dropped;
  obs::Counter& faults_duplicated;
  obs::Counter& faults_reordered;
  obs::Counter& faults_corrupted;
  obs::Counter& faults_partitioned;
  obs::Histogram& delivery_us;

  static SimMetrics& get() {
    static SimMetrics m{
        obs::MetricsRegistry::instance().counter("net.sim.messages_sent"),
        obs::MetricsRegistry::instance().counter("net.sim.bytes_sent"),
        obs::MetricsRegistry::instance().counter("net.sim.messages_dropped"),
        obs::MetricsRegistry::instance().counter("net.sim.faults_dropped"),
        obs::MetricsRegistry::instance().counter("net.sim.faults_duplicated"),
        obs::MetricsRegistry::instance().counter("net.sim.faults_reordered"),
        obs::MetricsRegistry::instance().counter("net.sim.faults_corrupted"),
        obs::MetricsRegistry::instance().counter("net.sim.faults_partitioned"),
        obs::MetricsRegistry::instance().histogram("net.sim.delivery_us"),
    };
    return m;
  }
};

}  // namespace

const char* recv_status_name(RecvStatus s) {
  switch (s) {
    case RecvStatus::kOk:
      return "ok";
    case RecvStatus::kPeerFailed:
      return "peer-failed";
    case RecvStatus::kSelfFailed:
      return "self-failed";
    case RecvStatus::kTimeout:
      return "timeout";
    case RecvStatus::kShutdown:
      return "shutdown";
  }
  return "?";
}

SimNetwork::SimNetwork(std::uint32_t num_nodes, SimConfig cfg)
    : cfg_(cfg),
      boxes_(num_nodes),
      alive_(num_nodes, true),
      fault_rng_(cfg.faults.seed) {}

void SimNetwork::set_fault_plan(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  cfg_.faults = plan;
  fault_rng_ = Rng(plan.seed);
}

void SimNetwork::partition(NodeId src, NodeId dst) {
  std::lock_guard<std::mutex> lock(mu_);
  cfg_.faults.partitions.insert({src, dst});
}

void SimNetwork::heal_partition(NodeId src, NodeId dst) {
  std::lock_guard<std::mutex> lock(mu_);
  cfg_.faults.partitions.erase({src, dst});
  cv_.notify_all();
}

void SimNetwork::flush_deferred_locked(NodeId dst) {
  Mailbox& box = boxes_[dst];
  if (box.deferred.empty()) return;
  for (auto& [key, payload] : box.deferred) {
    box.queues[key].push_back(std::move(payload));
  }
  box.deferred.clear();
  cv_.notify_all();
}

bool SimNetwork::send(NodeId src, NodeId dst, std::int32_t tag,
                      std::vector<std::byte> payload) {
  std::lock_guard<std::mutex> lock(mu_);
  SimMetrics& m = SimMetrics::get();
  if (src >= boxes_.size() || dst >= boxes_.size() || !alive_[src] ||
      !alive_[dst] || shutdown_) {
    ++stats_.messages_dropped;
    m.messages_dropped.inc();
    return false;
  }
  const double delivery_seconds = transfer_seconds(payload.size());
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();
  stats_.virtual_transfer_seconds += delivery_seconds;
  m.messages_sent.inc();
  m.bytes_sent.inc(payload.size());
  m.delivery_us.record_seconds(delivery_seconds);

  // Fault injection sits between the sender and the wire, and every fault
  // reports *success* to the sender — a lossy network does not confess.
  //
  // A partition models the link being down entirely: nothing crosses, not
  // even the log-replay path (a re-request would cross the same dead
  // link), so partitioned messages are not logged.
  const FaultPlan& plan = cfg_.faults;
  if (plan.partitions.count({src, dst}) != 0) {
    ++stats_.faults_partitioned;
    m.faults_partitioned.inc();
    return true;
  }

  const Key key{src, tag};
  // Sender-based logging happens at *send* time, not delivery time, and
  // the log is fault-immune: it records the bytes as the sender produced
  // them, before any drop or corruption touches the in-flight copy. This
  // is the MPICH-V contract — a lost or mangled packet never erases the
  // sender's retransmission buffer. Without it, a message dropped after
  // its sender commits past the send would be unrecoverable: the receiver
  // would roll back and re-request forever while the sender, already
  // committed, never re-sends.
  if (cfg_.replay_logging) boxes_[dst].delivered[key] = payload;

  const LinkFaults& f = plan.for_link(src, dst);
  if (f.drop > 0 && fault_rng_.chance(f.drop)) {
    ++stats_.faults_dropped;
    m.faults_dropped.inc();
    return true;
  }

  if (f.corrupt > 0 && !payload.empty() && fault_rng_.chance(f.corrupt)) {
    const std::size_t i = fault_rng_.below(payload.size());
    payload[i] ^= std::byte{static_cast<std::uint8_t>(
        1 + fault_rng_.below(255))};
    ++stats_.faults_corrupted;
    m.faults_corrupted.inc();
  }
  const bool duplicate =
      f.duplicate > 0 && fault_rng_.chance(f.duplicate);
  if (duplicate) {
    ++stats_.faults_duplicated;
    m.faults_duplicated.inc();
  }
  if (f.reorder > 0 && fault_rng_.chance(f.reorder)) {
    // Hold the message back; it is released behind the next delivery to
    // this node (or on demand when the receiver asks for it).
    ++stats_.faults_reordered;
    m.faults_reordered.inc();
    if (duplicate) boxes_[dst].queues[key].push_back(payload);
    boxes_[dst].deferred.emplace_back(key, std::move(payload));
  } else {
    if (duplicate) boxes_[dst].queues[key].push_back(payload);
    boxes_[dst].queues[key].push_back(std::move(payload));
    flush_deferred_locked(dst);
  }
  cv_.notify_all();
  return true;
}

RecvStatus SimNetwork::recv(NodeId self, NodeId from, std::int32_t tag,
                            std::vector<std::byte>& out,
                            double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  if (self >= boxes_.size() || from >= boxes_.size()) {
    return RecvStatus::kShutdown;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds < 0 ? 0
                                                            : timeout_seconds));
  while (true) {
    if (shutdown_) return RecvStatus::kShutdown;
    if (!alive_[self]) return RecvStatus::kSelfFailed;
    const Key key{from, tag};
    auto& q = boxes_[self].queues[key];
    if (!q.empty()) {
      out = std::move(q.front());
      q.pop_front();
      return RecvStatus::kOk;
    }
    // A receiver explicitly waiting on a reordered (deferred) message
    // forces its late arrival — by then any interleaved traffic has
    // already been delivered ahead of it, which is the reorder.
    {
      auto& deferred = boxes_[self].deferred;
      const auto it = std::find_if(
          deferred.begin(), deferred.end(), [&](const auto& p) {
            return p.first.from == key.from && p.first.tag == key.tag;
          });
      if (it != deferred.end()) {
        boxes_[self].queues[it->first].push_back(std::move(it->second));
        deferred.erase(it);
        continue;
      }
    }
    if (cfg_.replay_logging) {
      const auto d = boxes_[self].delivered.find(key);
      if (d != boxes_[self].delivered.end()) {
        out = d->second;  // replay for a rolled-back receiver
        return RecvStatus::kOk;
      }
    }
    if (!alive_[from]) return RecvStatus::kPeerFailed;
    if (timeout_seconds < 0) {
      cv_.wait(lock);
    } else if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return RecvStatus::kTimeout;
    }
  }
}

void SimNetwork::kill(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  if (node < alive_.size()) alive_[node] = false;
  cv_.notify_all();
}

void SimNetwork::revive(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  if (node < alive_.size()) {
    alive_[node] = true;
    // A revived node starts from a clean mailbox: messages addressed to
    // the dead incarnation are stale state.
    boxes_[node].queues.clear();
    boxes_[node].deferred.clear();
  }
  cv_.notify_all();
}

bool SimNetwork::alive(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return node < alive_.size() && alive_[node];
}

void SimNetwork::shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  cv_.notify_all();
}

SimStats SimNetwork::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mojave::net
