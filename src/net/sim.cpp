#include "net/sim.hpp"

#include <chrono>

#include "obs/metrics.hpp"

namespace mojave::net {

namespace {

struct SimMetrics {
  obs::Counter& messages_sent;
  obs::Counter& bytes_sent;
  obs::Counter& messages_dropped;
  obs::Histogram& delivery_us;

  static SimMetrics& get() {
    static SimMetrics m{
        obs::MetricsRegistry::instance().counter("net.sim.messages_sent"),
        obs::MetricsRegistry::instance().counter("net.sim.bytes_sent"),
        obs::MetricsRegistry::instance().counter("net.sim.messages_dropped"),
        obs::MetricsRegistry::instance().histogram("net.sim.delivery_us"),
    };
    return m;
  }
};

}  // namespace

const char* recv_status_name(RecvStatus s) {
  switch (s) {
    case RecvStatus::kOk:
      return "ok";
    case RecvStatus::kPeerFailed:
      return "peer-failed";
    case RecvStatus::kSelfFailed:
      return "self-failed";
    case RecvStatus::kTimeout:
      return "timeout";
    case RecvStatus::kShutdown:
      return "shutdown";
  }
  return "?";
}

SimNetwork::SimNetwork(std::uint32_t num_nodes, SimConfig cfg)
    : cfg_(cfg), boxes_(num_nodes), alive_(num_nodes, true) {}

bool SimNetwork::send(NodeId src, NodeId dst, std::int32_t tag,
                      std::vector<std::byte> payload) {
  std::lock_guard<std::mutex> lock(mu_);
  SimMetrics& m = SimMetrics::get();
  if (src >= boxes_.size() || dst >= boxes_.size() || !alive_[src] ||
      !alive_[dst] || shutdown_) {
    ++stats_.messages_dropped;
    m.messages_dropped.inc();
    return false;
  }
  const double delivery_seconds = transfer_seconds(payload.size());
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();
  stats_.virtual_transfer_seconds += delivery_seconds;
  m.messages_sent.inc();
  m.bytes_sent.inc(payload.size());
  m.delivery_us.record_seconds(delivery_seconds);
  const Key key{src, tag};
  // Sender-based logging happens at *send* time, not delivery time: a
  // message that is still queued when the receiver is killed (and whose
  // queue revive() then wipes) must remain replayable, or the resurrected
  // incarnation waits forever for a message the sender will never repeat.
  if (cfg_.replay_logging) boxes_[dst].delivered[key] = payload;
  boxes_[dst].queues[key].push_back(std::move(payload));
  cv_.notify_all();
  return true;
}

RecvStatus SimNetwork::recv(NodeId self, NodeId from, std::int32_t tag,
                            std::vector<std::byte>& out,
                            double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  if (self >= boxes_.size() || from >= boxes_.size()) {
    return RecvStatus::kShutdown;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds < 0 ? 0
                                                            : timeout_seconds));
  while (true) {
    if (shutdown_) return RecvStatus::kShutdown;
    if (!alive_[self]) return RecvStatus::kSelfFailed;
    const Key key{from, tag};
    auto& q = boxes_[self].queues[key];
    if (!q.empty()) {
      out = std::move(q.front());
      q.pop_front();
      return RecvStatus::kOk;
    }
    if (cfg_.replay_logging) {
      const auto d = boxes_[self].delivered.find(key);
      if (d != boxes_[self].delivered.end()) {
        out = d->second;  // replay for a rolled-back receiver
        return RecvStatus::kOk;
      }
    }
    if (!alive_[from]) return RecvStatus::kPeerFailed;
    if (timeout_seconds < 0) {
      cv_.wait(lock);
    } else if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return RecvStatus::kTimeout;
    }
  }
}

void SimNetwork::kill(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  if (node < alive_.size()) alive_[node] = false;
  cv_.notify_all();
}

void SimNetwork::revive(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  if (node < alive_.size()) {
    alive_[node] = true;
    // A revived node starts from a clean mailbox: messages addressed to
    // the dead incarnation are stale state.
    boxes_[node].queues.clear();
  }
  cv_.notify_all();
}

bool SimNetwork::alive(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return node < alive_.size() && alive_[node];
}

void SimNetwork::shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  cv_.notify_all();
}

SimStats SimNetwork::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mojave::net
