// Simulated cluster network.
//
// Stands in for the paper's test bed interconnect (100 Mbps Ethernet
// between dual-700MHz nodes). Nodes exchange tagged messages through
// in-memory mailboxes; a configurable bandwidth/latency model assigns each
// transfer a *virtual* duration so benches can report deterministic
// network costs, and a fault injector (node kills plus a seeded per-link
// drop/duplicate/reorder/corrupt/partition matrix — see FaultPlan) lets
// chaos tests exercise every partial-failure mode the MSG_ROLL recovery
// of the paper's grid application must survive.
//
// The "customized message passing interface" of Section 2 (rank/tag
// send-recv between neighbours) is exactly this API.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "support/common.hpp"
#include "support/rng.hpp"

namespace mojave::net {

using NodeId = std::uint32_t;

/// Per-link fault probabilities, all Bernoulli per message.
struct LinkFaults {
  double drop = 0;       ///< lost on the wire; the sender still sees success
  double duplicate = 0;  ///< delivered twice
  double reorder = 0;    ///< deferred past later traffic on the link
  double corrupt = 0;    ///< one payload byte flipped in the delivered copy
  [[nodiscard]] bool any() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || corrupt > 0;
  }
};

/// A reproducible fault schedule for the whole network: a seeded PRNG, a
/// default per-link fault mix, per-link overrides, and one-way partitions.
/// Chaos tests sweep FaultPlans and assert the grid app still converges.
struct FaultPlan {
  std::uint64_t seed = 1;
  LinkFaults all_links;
  std::map<std::pair<NodeId, NodeId>, LinkFaults> links;  ///< (src,dst)
  std::set<std::pair<NodeId, NodeId>> partitions;  ///< blocked src -> dst

  [[nodiscard]] const LinkFaults& for_link(NodeId src, NodeId dst) const {
    const auto it = links.find({src, dst});
    return it == links.end() ? all_links : it->second;
  }
};

struct SimConfig {
  double bandwidth_bytes_per_sec = 100e6 / 8.0;  ///< the paper's 100 Mbps
  double latency_seconds = 100e-6;               ///< per-message latency
  /// Sender-based message logging: every sent message is remembered and
  /// replayed when the same (source, tag) is received again. This is what
  /// lets a rolled-back process "request the border information for that
  /// timestep again from the neighbours" (Figure 2) even though the
  /// original delivery was already consumed — or lost when the receiver
  /// died with it still queued — the standard message-logging companion
  /// of checkpoint/rollback recovery (cf. MPICH-V).
  bool replay_logging = true;
  /// Fault-injection schedule (drop/duplicate/reorder/corrupt/partition).
  FaultPlan faults;
};

enum class RecvStatus : std::uint8_t {
  kOk = 0,
  kPeerFailed,  ///< sender node is dead and its queue is drained
  kSelfFailed,  ///< this node was killed while waiting
  kTimeout,
  kShutdown,
};

[[nodiscard]] const char* recv_status_name(RecvStatus s);

struct SimStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_dropped = 0;
  double virtual_transfer_seconds = 0;  ///< sum over all sent messages
  // Injected faults, by class (messages_dropped counts dead-endpoint
  // drops; these count the FaultPlan's doing).
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_duplicated = 0;
  std::uint64_t faults_reordered = 0;
  std::uint64_t faults_corrupted = 0;
  std::uint64_t faults_partitioned = 0;
};

class SimNetwork {
 public:
  explicit SimNetwork(std::uint32_t num_nodes, SimConfig cfg = {});

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(boxes_.size());
  }

  /// Deliver a message into dst's mailbox. Returns false (message dropped)
  /// if either endpoint is dead or ids are invalid.
  bool send(NodeId src, NodeId dst, std::int32_t tag,
            std::vector<std::byte> payload);

  /// Wait for a message from (from, tag). Drains queued messages before
  /// reporting a dead peer. timeout < 0 waits forever.
  RecvStatus recv(NodeId self, NodeId from, std::int32_t tag,
                  std::vector<std::byte>& out, double timeout_seconds = -1.0);

  /// Fault injection: kill wakes every receiver blocked on the victim.
  void kill(NodeId node);
  void revive(NodeId node);
  [[nodiscard]] bool alive(NodeId node) const;

  /// Replace the fault schedule mid-run (resets the fault PRNG to the
  /// plan's seed). One-way partition helpers edit the active plan.
  void set_fault_plan(const FaultPlan& plan);
  void partition(NodeId src, NodeId dst);
  void heal_partition(NodeId src, NodeId dst);

  /// Wake all waiters permanently (cluster teardown).
  void shutdown();

  /// Virtual wall-clock cost of moving `bytes` across this network.
  [[nodiscard]] double transfer_seconds(std::size_t bytes) const {
    return cfg_.latency_seconds +
           static_cast<double>(bytes) / cfg_.bandwidth_bytes_per_sec;
  }

  [[nodiscard]] SimStats stats() const;

 private:
  struct Key {
    NodeId from;
    std::int32_t tag;
    bool operator<(const Key& o) const {
      return from != o.from ? from < o.from : tag < o.tag;
    }
  };
  struct Mailbox {
    std::map<Key, std::deque<std::vector<std::byte>>> queues;
    /// Replay log: last message *sent* per (source, tag), recorded at send
    /// time. Survives node revival — queues are wiped on revive(), but a
    /// resurrected incarnation can still re-request any border message its
    /// predecessor was owed.
    std::map<Key, std::vector<std::byte>> delivered;
    /// Reorder limbo: messages the fault injector is holding back. They
    /// are released behind the next normal delivery to this node, or when
    /// the receiver explicitly asks for that (source, tag).
    std::vector<std::pair<Key, std::vector<std::byte>>> deferred;
  };

  void flush_deferred_locked(NodeId dst);

  SimConfig cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Mailbox> boxes_;
  std::vector<bool> alive_;
  SimStats stats_;
  Rng fault_rng_;
  bool shutdown_ = false;
};

}  // namespace mojave::net
