// Simulated cluster network.
//
// Stands in for the paper's test bed interconnect (100 Mbps Ethernet
// between dual-700MHz nodes). Nodes exchange tagged messages through
// in-memory mailboxes; a configurable bandwidth/latency model assigns each
// transfer a *virtual* duration so benches can report deterministic
// network costs, and a fault injector kills nodes so receivers observe
// peer failure — the MSG_ROLL condition of the paper's grid application.
//
// The "customized message passing interface" of Section 2 (rank/tag
// send-recv between neighbours) is exactly this API.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "support/common.hpp"

namespace mojave::net {

using NodeId = std::uint32_t;

struct SimConfig {
  double bandwidth_bytes_per_sec = 100e6 / 8.0;  ///< the paper's 100 Mbps
  double latency_seconds = 100e-6;               ///< per-message latency
  /// Sender-based message logging: every sent message is remembered and
  /// replayed when the same (source, tag) is received again. This is what
  /// lets a rolled-back process "request the border information for that
  /// timestep again from the neighbours" (Figure 2) even though the
  /// original delivery was already consumed — or lost when the receiver
  /// died with it still queued — the standard message-logging companion
  /// of checkpoint/rollback recovery (cf. MPICH-V).
  bool replay_logging = true;
};

enum class RecvStatus : std::uint8_t {
  kOk = 0,
  kPeerFailed,  ///< sender node is dead and its queue is drained
  kSelfFailed,  ///< this node was killed while waiting
  kTimeout,
  kShutdown,
};

[[nodiscard]] const char* recv_status_name(RecvStatus s);

struct SimStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_dropped = 0;
  double virtual_transfer_seconds = 0;  ///< sum over all sent messages
};

class SimNetwork {
 public:
  explicit SimNetwork(std::uint32_t num_nodes, SimConfig cfg = {});

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(boxes_.size());
  }

  /// Deliver a message into dst's mailbox. Returns false (message dropped)
  /// if either endpoint is dead or ids are invalid.
  bool send(NodeId src, NodeId dst, std::int32_t tag,
            std::vector<std::byte> payload);

  /// Wait for a message from (from, tag). Drains queued messages before
  /// reporting a dead peer. timeout < 0 waits forever.
  RecvStatus recv(NodeId self, NodeId from, std::int32_t tag,
                  std::vector<std::byte>& out, double timeout_seconds = -1.0);

  /// Fault injection: kill wakes every receiver blocked on the victim.
  void kill(NodeId node);
  void revive(NodeId node);
  [[nodiscard]] bool alive(NodeId node) const;

  /// Wake all waiters permanently (cluster teardown).
  void shutdown();

  /// Virtual wall-clock cost of moving `bytes` across this network.
  [[nodiscard]] double transfer_seconds(std::size_t bytes) const {
    return cfg_.latency_seconds +
           static_cast<double>(bytes) / cfg_.bandwidth_bytes_per_sec;
  }

  [[nodiscard]] SimStats stats() const;

 private:
  struct Key {
    NodeId from;
    std::int32_t tag;
    bool operator<(const Key& o) const {
      return from != o.from ? from < o.from : tag < o.tag;
    }
  };
  struct Mailbox {
    std::map<Key, std::deque<std::vector<std::byte>>> queues;
    /// Replay log: last message *sent* per (source, tag), recorded at send
    /// time. Survives node revival — queues are wiped on revive(), but a
    /// resurrected incarnation can still re-request any border message its
    /// predecessor was owed.
    std::map<Key, std::vector<std::byte>> delivered;
  };

  SimConfig cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Mailbox> boxes_;
  std::vector<bool> alive_;
  SimStats stats_;
  bool shutdown_ = false;
};

}  // namespace mojave::net
