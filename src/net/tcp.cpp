#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace mojave::net {

namespace {
[[noreturn]] void fail(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

struct TcpMetrics {
  obs::Counter& frames_sent;
  obs::Counter& frames_recv;
  obs::Counter& bytes_sent;
  obs::Counter& bytes_recv;
  obs::Histogram& send_us;

  static TcpMetrics& get() {
    static TcpMetrics m{
        obs::MetricsRegistry::instance().counter("net.tcp.frames_sent"),
        obs::MetricsRegistry::instance().counter("net.tcp.frames_recv"),
        obs::MetricsRegistry::instance().counter("net.tcp.bytes_sent"),
        obs::MetricsRegistry::instance().counter("net.tcp.bytes_recv"),
        obs::MetricsRegistry::instance().histogram("net.tcp.send_us"),
    };
    return m;
  }
};
}  // namespace

TcpStream::~TcpStream() { close(); }

TcpStream& TcpStream::operator=(TcpStream&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void TcpStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw NetError("bad address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    fail("connect to " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(fd);
}

void TcpStream::send_all(const std::byte* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t k = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (k <= 0) fail("send");
    sent += static_cast<std::size_t>(k);
  }
}

bool TcpStream::recv_all(std::byte* data, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t k = ::recv(fd_, data + got, n - got, 0);
    if (k == 0) return false;  // orderly close
    if (k < 0) fail("recv");
    got += static_cast<std::size_t>(k);
  }
  return true;
}

void TcpStream::send_frame(std::span<const std::byte> payload) {
  if (!valid()) throw NetError("send on closed stream");
  if (payload.size() > kMaxFrameBytes) throw NetError("frame too large");
  obs::ScopedSpan span("net", "tcp.send_frame");
  span.set_arg("bytes", payload.size());
  Stopwatch sw;
  std::byte header[4];
  const auto n = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = std::byte{static_cast<std::uint8_t>(n >> (8 * i))};
  }
  send_all(header, 4);
  if (!payload.empty()) send_all(payload.data(), payload.size());
  TcpMetrics& m = TcpMetrics::get();
  m.frames_sent.inc();
  m.bytes_sent.inc(payload.size() + 4);
  m.send_us.record_seconds(sw.seconds());
}

std::optional<std::vector<std::byte>> TcpStream::recv_frame() {
  if (!valid()) throw NetError("recv on closed stream");
  std::byte header[4];
  if (!recv_all(header, 4)) return std::nullopt;
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) {
    n |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(header[i]))
         << (8 * i);
  }
  if (n > kMaxFrameBytes) throw NetError("incoming frame too large");
  std::vector<std::byte> payload(n);
  if (n > 0 && !recv_all(payload.data(), n)) {
    throw NetError("peer closed mid-frame");
  }
  TcpMetrics& m = TcpMetrics::get();
  m.frames_recv.inc();
  m.bytes_recv.inc(payload.size() + 4);
  return payload;
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) fail("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    fail("bind");
  }
  if (::listen(fd_, 16) != 0) {
    ::close(fd_);
    fd_ = -1;
    fail("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd_);
    fd_ = -1;
    fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() { shutdown(); }

std::optional<TcpStream> TcpListener::accept() {
  if (fd_ < 0) return std::nullopt;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    if (errno == EBADF || errno == EINVAL) return std::nullopt;  // shut down
    fail("accept");
  }
  return TcpStream(client);
}

void TcpListener::shutdown() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace mojave::net
