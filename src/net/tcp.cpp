#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace mojave::net {

namespace {
[[noreturn]] void fail(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

/// Closes the fd unless release()d — keeps every error path leak-free.
class FdGuard {
 public:
  explicit FdGuard(int fd) : fd_(fd) {}
  ~FdGuard() {
    if (fd_ >= 0) ::close(fd_);
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
  [[nodiscard]] int get() const { return fd_; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_;
};

struct TcpMetrics {
  obs::Counter& frames_sent;
  obs::Counter& frames_recv;
  obs::Counter& bytes_sent;
  obs::Counter& bytes_recv;
  obs::Counter& timeouts;
  obs::Counter& connect_failures;
  obs::Histogram& send_us;
  obs::Histogram& connect_us;

  static TcpMetrics& get() {
    static TcpMetrics m{
        obs::MetricsRegistry::instance().counter("net.tcp.frames_sent"),
        obs::MetricsRegistry::instance().counter("net.tcp.frames_recv"),
        obs::MetricsRegistry::instance().counter("net.tcp.bytes_sent"),
        obs::MetricsRegistry::instance().counter("net.tcp.bytes_recv"),
        obs::MetricsRegistry::instance().counter("net.tcp.timeouts"),
        obs::MetricsRegistry::instance().counter("net.tcp.connect_failures"),
        obs::MetricsRegistry::instance().histogram("net.tcp.send_us"),
        obs::MetricsRegistry::instance().histogram("net.tcp.connect_us"),
    };
    return m;
  }
};

void set_socket_timeout(int fd, int which, double seconds) {
  timeval tv{};
  if (seconds > 0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(
                                              tv.tv_sec)) * 1e6);
  }
  ::setsockopt(fd, SOL_SOCKET, which, &tv, sizeof(tv));
}

/// Resolve `host` to an IPv4 address. Numeric addresses never touch the
/// resolver; names go through getaddrinfo on a detached helper thread so a
/// hung resolver (no DNS in the environment, blackholed server) cannot
/// stall the caller past its connect deadline.
in_addr resolve_host(const std::string& host, double timeout_seconds) {
  in_addr numeric{};
  if (::inet_pton(AF_INET, host.c_str(), &numeric) == 1) return numeric;

  struct State {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;
    in_addr addr{};
    int gai_err = 0;
  };
  auto st = std::make_shared<State>();
  std::thread([st, host] {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
    std::lock_guard<std::mutex> lock(st->mu);
    if (rc == 0 && res != nullptr) {
      st->ok = true;
      st->addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
    } else {
      st->gai_err = rc;
    }
    if (res != nullptr) ::freeaddrinfo(res);
    st->done = true;
    st->cv.notify_all();
  }).detach();

  std::unique_lock<std::mutex> lock(st->mu);
  if (timeout_seconds > 0) {
    if (!st->cv.wait_for(lock, std::chrono::duration<double>(timeout_seconds),
                         [&] { return st->done; })) {
      throw NetTimeout("resolving " + host);
    }
  } else {
    st->cv.wait(lock, [&] { return st->done; });
  }
  if (!st->ok) {
    throw NetError("cannot resolve " + host + ": " +
                   ::gai_strerror(st->gai_err));
  }
  return st->addr;
}

}  // namespace

TcpStream::~TcpStream() { close(); }

TcpStream& TcpStream::operator=(TcpStream&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void TcpStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpStream::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpStream::set_io_deadline(double seconds) {
  if (!valid()) return;
  set_socket_timeout(fd_, SO_RCVTIMEO, seconds);
  set_socket_timeout(fd_, SO_SNDTIMEO, seconds);
}

void TcpStream::set_nonblocking() {
  if (!valid()) return;
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
}

TcpStream TcpStream::connect_begin(const std::string& host,
                                   std::uint16_t port) {
  const in_addr resolved = resolve_host(host, 0);
  FdGuard fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (fd.get() < 0) {
    TcpMetrics::get().connect_failures.inc();
    fail("socket");
  }
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr = resolved;
  const int rc =
      ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    TcpMetrics::get().connect_failures.inc();
    fail("connect to " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(fd.release());
}

bool TcpStream::connect_finished() {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0) fail("SO_ERROR");
  if (err != 0) {
    TcpMetrics::get().connect_failures.inc();
    errno = err;
    fail("connect");
  }
  return true;
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port,
                             const Deadlines& deadlines) {
  Stopwatch sw;
  const in_addr resolved = resolve_host(host, deadlines.connect_seconds);

  FdGuard fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (fd.get() < 0) {
    TcpMetrics::get().connect_failures.inc();
    fail("socket");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr = resolved;

  const std::string where = host + ":" + std::to_string(port);
  if (deadlines.connect_seconds > 0) {
    // Non-blocking connect bounded by poll: the classic pattern for a
    // handshake deadline (SYN retransmissions otherwise block for minutes).
    const int orig_flags = ::fcntl(fd.get(), F_GETFL, 0);
    ::fcntl(fd.get(), F_SETFL, orig_flags | O_NONBLOCK);
    int rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      TcpMetrics::get().connect_failures.inc();
      fail("connect to " + where);
    }
    if (rc != 0) {
      const double remaining = deadlines.connect_seconds - sw.seconds();
      pollfd pfd{fd.get(), POLLOUT, 0};
      const int timeout_ms =
          remaining > 0 ? static_cast<int>(remaining * 1e3) + 1 : 0;
      const int n = ::poll(&pfd, 1, timeout_ms);
      if (n == 0) {
        TcpMetrics::get().timeouts.inc();
        TcpMetrics::get().connect_failures.inc();
        throw NetTimeout("connect to " + where);
      }
      if (n < 0) {
        TcpMetrics::get().connect_failures.inc();
        fail("poll for connect to " + where);
      }
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        TcpMetrics::get().connect_failures.inc();
        errno = err;
        fail("connect to " + where);
      }
    }
    ::fcntl(fd.get(), F_SETFL, orig_flags);
  } else if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) != 0) {
    TcpMetrics::get().connect_failures.inc();
    fail("connect to " + where);
  }

  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  TcpMetrics::get().connect_us.record_seconds(sw.seconds());
  TcpStream stream(fd.release());
  stream.set_io_deadline(deadlines.io_seconds);
  return stream;
}

void TcpStream::send_all(const std::byte* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t k = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (k < 0 && errno == EINTR) continue;
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      TcpMetrics::get().timeouts.inc();
      throw NetTimeout("send");
    }
    if (k <= 0) fail("send");
    sent += static_cast<std::size_t>(k);
  }
}

bool TcpStream::recv_all(std::byte* data, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t k = ::recv(fd_, data + got, n - got, 0);
    if (k == 0) return false;  // orderly close
    if (k < 0 && errno == EINTR) continue;
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      TcpMetrics::get().timeouts.inc();
      throw NetTimeout("recv");
    }
    if (k < 0) fail("recv");
    got += static_cast<std::size_t>(k);
  }
  return true;
}

void TcpStream::send_frame(std::span<const std::byte> payload) {
  if (!valid()) throw NetError("send on closed stream");
  if (payload.size() > kMaxFrameBytes) throw NetError("frame too large");
  obs::ScopedSpan span("net", "tcp.send_frame");
  span.set_arg("bytes", payload.size());
  Stopwatch sw;
  std::byte header[4];
  const auto n = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = std::byte{static_cast<std::uint8_t>(n >> (8 * i))};
  }
  send_all(header, 4);
  if (!payload.empty()) send_all(payload.data(), payload.size());
  TcpMetrics& m = TcpMetrics::get();
  m.frames_sent.inc();
  m.bytes_sent.inc(payload.size() + 4);
  m.send_us.record_seconds(sw.seconds());
}

std::optional<std::vector<std::byte>> TcpStream::recv_frame() {
  if (!valid()) throw NetError("recv on closed stream");
  std::byte header[4];
  if (!recv_all(header, 4)) return std::nullopt;
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) {
    n |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(header[i]))
         << (8 * i);
  }
  if (n > kMaxFrameBytes) throw NetError("incoming frame too large");
  std::vector<std::byte> payload(n);
  if (n > 0 && !recv_all(payload.data(), n)) {
    throw NetError("peer closed mid-frame");
  }
  TcpMetrics& m = TcpMetrics::get();
  m.frames_recv.inc();
  m.bytes_recv.inc(payload.size() + 4);
  return payload;
}

TcpListener::TcpListener(std::uint16_t port)
    : TcpListener("127.0.0.1", port) {}

TcpListener::TcpListener(const std::string& bind_host, std::uint16_t port) {
  // Resolve synchronously: binds happen at startup, where a hung resolver
  // should fail loudly rather than be raced against a deadline.
  const in_addr bound = resolve_host(bind_host, 0);
  FdGuard fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (fd.get() < 0) fail("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr = bound;
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    fail("bind " + bind_host);
  }
  if (::listen(fd.get(), 16) != 0) fail("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  fd_ = fd.release();
}

TcpListener::~TcpListener() {
  shutdown();
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

std::optional<TcpStream> TcpListener::accept() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0 || shut_.load(std::memory_order_acquire)) return std::nullopt;
  while (true) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client >= 0) {
      // A connection that raced shutdown() is dropped, not served.
      if (shut_.load(std::memory_order_acquire)) {
        ::close(client);
        return std::nullopt;
      }
      return TcpStream(client);
    }
    if (errno == EINTR) continue;
    if (errno == EBADF || errno == EINVAL) return std::nullopt;  // shut down
    fail("accept");
  }
}

void TcpListener::set_nonblocking() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return;
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::optional<TcpStream> TcpListener::try_accept() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0 || shut_.load(std::memory_order_acquire)) return std::nullopt;
  while (true) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client >= 0) {
      if (shut_.load(std::memory_order_acquire)) {
        ::close(client);
        return std::nullopt;
      }
      return TcpStream(client);
    }
    if (errno == EINTR) continue;
    // EAGAIN (nothing pending), shutdown races, and transient per-
    // connection errors (ECONNABORTED) all mean "no connection now".
    return std::nullopt;
  }
}

void TcpListener::shutdown() {
  if (shut_.exchange(true, std::memory_order_acq_rel)) return;
  const int fd = fd_.load(std::memory_order_acquire);
  // Destroys the accept queue and wakes a blocked ::accept with EINVAL;
  // the fd stays reserved until ~TcpListener so its number cannot be
  // recycled under a thread still parked in ::accept.
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

}  // namespace mojave::net
