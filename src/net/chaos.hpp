// ChaosProxy: a frame-level TCP fault injector for loopback tests.
//
// Sits between a migration client and a MigrationServer (or any
// request/response protocol built on TcpStream frames) and injects the
// faults a real WAN produces but loopback never does: swallowed requests,
// lost acknowledgements (the connection dies *after* the server committed),
// corrupted payloads, and added latency. All randomness comes from a
// seeded PRNG; the deterministic `drop_reply_frames` list pins exact
// lost-ACK scenarios for the idempotent-handshake tests.
//
// The relay assumes strict request/response alternation per connection —
// exactly the rhythm of the migration handshake (offer/accept, image/ack).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/tcp.hpp"
#include "support/rng.hpp"

namespace mojave::net {

struct ProxyFaults {
  std::uint64_t seed = 1;
  double drop_request = 0;  ///< swallow a client frame and cut the connection
  double drop_reply = 0;    ///< forward the request, swallow the server reply
  double corrupt_request = 0;  ///< flip one byte of a client frame
  double delay_seconds = 0;    ///< added latency per forwarded frame
  /// Deterministic lost-ACKs: the Nth server reply this proxy ever relays
  /// (1-based, across connections) is swallowed and the connection cut.
  std::set<std::uint64_t> drop_reply_frames;
};

struct ProxyStats {
  std::uint64_t connections = 0;
  std::uint64_t frames_forwarded = 0;
  std::uint64_t requests_dropped = 0;
  std::uint64_t replies_dropped = 0;
  std::uint64_t requests_corrupted = 0;
};

class ChaosProxy {
 public:
  ChaosProxy(std::string upstream_host, std::uint16_t upstream_port,
             ProxyFaults faults);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] ProxyStats stats() const;

  void stop();

 private:
  void accept_loop();
  void relay(TcpStream client);

  std::string upstream_host_;
  std::uint16_t upstream_port_;
  ProxyFaults faults_;
  TcpListener listener_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  ProxyStats stats_;                // guarded by mu_
  Rng rng_;                         // guarded by mu_
  std::uint64_t replies_seen_ = 0;  // guarded by mu_
  std::atomic<bool> stopping_{false};
};

}  // namespace mojave::net
