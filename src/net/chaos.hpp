// ChaosProxy: a frame-level TCP fault injector for loopback tests.
//
// Sits between a migration client and a MigrationServer (or any
// request/response protocol built on TcpStream frames) and injects the
// faults a real WAN produces but loopback never does: swallowed requests,
// lost acknowledgements (the connection dies *after* the server committed),
// corrupted payloads, and added latency. All randomness comes from a
// seeded PRNG; the deterministic `drop_reply_frames` list pins exact
// lost-ACK scenarios for the idempotent-handshake tests.
//
// The relay assumes strict request/response alternation per connection —
// exactly the rhythm of the migration handshake (offer/accept, image/ack).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/tcp.hpp"
#include "support/rng.hpp"

namespace mojave::net {

struct ProxyFaults {
  std::uint64_t seed = 1;
  double drop_request = 0;  ///< swallow a client frame and cut the connection
  double drop_reply = 0;    ///< forward the request, swallow the server reply
  double corrupt_request = 0;  ///< flip one byte of a client frame
  double delay_seconds = 0;    ///< added latency per forwarded frame
  /// Deterministic lost-ACKs: the Nth server reply this proxy ever relays
  /// (1-based, across connections) is swallowed and the connection cut.
  std::set<std::uint64_t> drop_reply_frames;
};

struct ProxyStats {
  std::uint64_t connections = 0;
  std::uint64_t frames_forwarded = 0;
  std::uint64_t requests_dropped = 0;
  std::uint64_t replies_dropped = 0;
  std::uint64_t requests_corrupted = 0;
};

/// Socket-level fault profile for WireChaosProxy: the byte-stream
/// pathologies a frame-level relay cannot model. All faults compose.
struct WireFaults {
  /// Added latency per forwarded read batch (both directions).
  double delay_seconds = 0;
  /// Forward in writes of at most this many bytes (0 = as read). Exposes
  /// every short-read bug: frame headers and payloads arrive in pieces.
  std::size_t split_bytes = 0;
  /// Cut the Nth accepted connection (1-based, 0 = never) after it has
  /// forwarded `reset_after_bytes` — deliberately mid-frame, modelling a
  /// peer dying with a partial frame on the wire.
  std::uint64_t reset_conn = 0;
  std::uint64_t reset_after_bytes = 256;
  /// Cap forwarded throughput, bytes/second per direction (0 = off): the
  /// narrow-WAN profile. A sender that outruns the cap sees backpressure
  /// as a stalled socket — exactly what the coalescing write path and
  /// partial-writev handling must survive.
  double bandwidth_bytes_per_sec = 0;
  /// Hold every Nth complete frame and emit it after its successor
  /// (0 = off): deterministic frame reordering, the multipath-WAN
  /// profile. Requires the u32-length-prefix wire protocol on the link;
  /// tolerated by the dnode runtime because mailboxes key on (src, tag).
  std::uint64_t reorder_every_n = 0;
};

struct WireStats {
  std::uint64_t connections = 0;
  std::uint64_t bytes_forwarded = 0;
  std::uint64_t split_writes = 0;
  std::uint64_t resets = 0;
  std::uint64_t frames_reordered = 0;
  std::uint64_t throttle_waits = 0;
};

/// A transparent byte-level TCP relay for full-duplex protocols (the
/// dnode agent wire, where both peers push frames at will — the
/// request/response ChaosProxy above cannot sit on such links). Faults
/// operate below the framing layer: latency, fragmented writes, and
/// connections dropped mid-frame. The runtime on either side must
/// tolerate all three; redial + rollback-retry + replay make dropped
/// bytes recoverable.
class WireChaosProxy {
 public:
  WireChaosProxy(std::string upstream_host, std::uint16_t upstream_port,
                 WireFaults faults);
  ~WireChaosProxy();

  WireChaosProxy(const WireChaosProxy&) = delete;
  WireChaosProxy& operator=(const WireChaosProxy&) = delete;

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] WireStats stats() const;

  void stop();

 private:
  struct Pipe;

  void accept_loop();
  void pump(const std::shared_ptr<Pipe>& pipe, bool downstream,
            std::uint64_t conn_id);

  std::string upstream_host_;
  std::uint16_t upstream_port_;
  WireFaults faults_;
  TcpListener listener_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::vector<std::shared_ptr<Pipe>> pipes_;  // guarded by mu_
  mutable std::mutex mu_;
  WireStats stats_;          // guarded by mu_
  bool reset_done_ = false;  // guarded by mu_
  std::atomic<bool> stopping_{false};
};

class ChaosProxy {
 public:
  ChaosProxy(std::string upstream_host, std::uint16_t upstream_port,
             ProxyFaults faults);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] ProxyStats stats() const;

  void stop();

 private:
  void accept_loop();
  void relay(TcpStream client);

  std::string upstream_host_;
  std::uint16_t upstream_port_;
  ProxyFaults faults_;
  TcpListener listener_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  ProxyStats stats_;                // guarded by mu_
  Rng rng_;                         // guarded by mu_
  std::uint64_t replies_seen_ = 0;  // guarded by mu_
  std::atomic<bool> stopping_{false};
};

}  // namespace mojave::net
