#include "gridapp/heat.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "frontend/compile.hpp"
#include "support/error.hpp"

namespace mojave::gridapp {

std::string heat_mojc_source(const HeatConfig& cfg) {
  if (cfg.nodes == 0 || cfg.rows % cfg.nodes != 0) {
    throw Error("heat: rows must divide evenly across nodes");
  }
  if (cfg.rows / cfg.nodes < 1 || cfg.cols < 3) {
    throw Error("heat: grid too small");
  }
  std::ostringstream src;
  src << R"(
extern int node_id();
extern int num_nodes();
extern int msg_send(int, int, ptr, int);
extern int msg_recv(int, int, ptr, int);
extern ptr checkpoint_target();
extern void report_result(float);

/* Halo exchange for one timestep. Rows: 0 is the upper ghost row,
   1..L the interior band, L+1 the lower ghost row. Tags encode the
   direction and timestep so retransmissions after a rollback match
   deterministically. Returns nonzero on MSG_ROLL. */
int exchange(ptr u, int rank, int np, int L, int C, int step) {
  int err = 0;
  int up = rank - 1;
  int down = rank + 1;
  int s = 0;
  if (up >= 0) {
    s = msg_send(up, step * 2, ptr_add(u, C), C);
    if (s != 0) { err = 1; }
  }
  if (down < np) {
    s = msg_send(down, step * 2 + 1, ptr_add(u, L * C), C);
    if (s != 0) { err = 1; }
  }
  if (err == 0 && up >= 0) {
    s = msg_recv(up, step * 2 + 1, u, C);
    if (s != 0) { err = 1; }
  }
  if (err == 0 && down < np) {
    s = msg_recv(down, step * 2, ptr_add(u, (L + 1) * C), C);
    if (s != 0) { err = 1; }
  }
  return err;
}

/* One Jacobi sweep: v = stencil(u) on interior points, then copy back.
   Global-boundary cells hold their fixed temperature. */
void compute(ptr u, ptr v, int rank, int L, int C, int R) {
  int r = 1;
  while (r <= L) {
    int g = rank * L + r - 1;
    int c = 0;
    while (c < C) {
      if (g > 0 && g < R - 1 && c > 0 && c < C - 1) {
        float up1 = readf(u, (r - 1) * C + c);
        float dn = readf(u, (r + 1) * C + c);
        float lf = readf(u, r * C + c - 1);
        float rt = readf(u, r * C + c + 1);
        v[r * C + c] = 0.25 * (up1 + dn + lf + rt);
      } else {
        v[r * C + c] = readf(u, r * C + c);
      }
      c = c + 1;
    }
    r = r + 1;
  }
  r = 1;
  while (r <= L) {
    int c = 0;
    while (c < C) {
      u[r * C + c] = readf(v, r * C + c);
      c = c + 1;
    }
    r = r + 1;
  }
}

int main() {
  int rank = node_id();
  int np = num_nodes();
)";
  src << "  int R = " << cfg.rows << ";\n";
  src << "  int C = " << cfg.cols << ";\n";
  src << "  int steps = " << cfg.steps << ";\n";
  src << "  int interval = " << cfg.checkpoint_interval << ";\n";
  src << R"(
  int L = R / np;

  ptr u = alloc((L + 2) * C);
  ptr v = alloc((L + 2) * C);
  int r = 0;
  while (r < L + 2) {
    int g = rank * L + r - 1;
    int c = 0;
    while (c < C) {
      float val = 0.0;
      if (g >= 0 && g <= R - 1) {
        if (g == 0 || g == R - 1 || c == 0 || c == C - 1) { val = 100.0; }
      }
      u[r * C + c] = val;
      v[r * C + c] = val;
      c = c + 1;
    }
    r = r + 1;
  }
)";
  if (cfg.static_slots > 0) {
    src << "\n  /* Static application state: filled once, never mutated, so\n"
           "     every checkpoint after the first dedupes it away. */\n";
    src << "  int statn = " << cfg.static_slots << ";\n";
    src << R"(  ptr stat = alloc(statn);
  float statv = 1.5;
  int t = 0;
  while (t < statn) {
    stat[t] = statv;
    statv = statv + 0.125;
    t = t + 1;
  }
)";
  }
  src << R"(
  /* The speculative main loop of Figure 2: speculate at the start and
     after every checkpoint; on a failed exchange roll back (retry); at
     each interval commit, then checkpoint through migrate. */
  int step = 1;
  int spec = speculate();
  if (spec <= 0) { spec = spec_level(); }
  while (step <= steps) {
    int err = exchange(u, rank, np, L, C, step);
    if (err != 0) { rollback(spec, 0 - 1); }
    compute(u, v, rank, L, C, R);
    step = step + 1;
    if (interval > 0) {
      if (step % interval == 0) {
        commit(spec);
        migrate(checkpoint_target());
        spec = speculate();
        if (spec <= 0) { spec = spec_level(); }
      }
    }
  }
  commit(spec);

  float sum = 0.0;
  r = 1;
  while (r <= L) {
    int c = 0;
    while (c < C) {
      sum = sum + readf(u, r * C + c);
      c = c + 1;
    }
    r = r + 1;
  }
  report_result(sum);
)";
  if (cfg.static_slots > 0) {
    src << "  /* Never taken (step > steps here): keeps the static table\n"
           "     live through the optimizer and in every checkpoint. */\n"
           "  if (step < 0) { report_result(readf(stat, 0)); }\n";
  }
  src << R"(  return 0;
}
)";
  return src.str();
}

fir::Program heat_program(const HeatConfig& cfg) {
  return frontend::compile_source("heat", heat_mojc_source(cfg));
}

std::vector<double> heat_reference_sums(const HeatConfig& cfg) {
  const std::uint32_t R = cfg.rows;
  const std::uint32_t C = cfg.cols;
  std::vector<double> u(static_cast<std::size_t>(R) * C, 0.0);
  std::vector<double> v(u.size(), 0.0);
  const auto at = [C](std::vector<double>& g, std::uint32_t r,
                      std::uint32_t c) -> double& {
    return g[static_cast<std::size_t>(r) * C + c];
  };
  for (std::uint32_t r = 0; r < R; ++r) {
    for (std::uint32_t c = 0; c < C; ++c) {
      const double val =
          (r == 0 || r == R - 1 || c == 0 || c == C - 1) ? 100.0 : 0.0;
      at(u, r, c) = val;
      at(v, r, c) = val;
    }
  }
  for (std::uint32_t s = 0; s < cfg.steps; ++s) {
    for (std::uint32_t r = 1; r + 1 < R; ++r) {
      for (std::uint32_t c = 1; c + 1 < C; ++c) {
        // Same association order as the generated program.
        at(v, r, c) = 0.25 * (at(u, r - 1, c) + at(u, r + 1, c) +
                              at(u, r, c - 1) + at(u, r, c + 1));
      }
    }
    u = v;
  }
  const std::uint32_t L = R / cfg.nodes;
  std::vector<double> sums(cfg.nodes, 0.0);
  for (std::uint32_t rank = 0; rank < cfg.nodes; ++rank) {
    double sum = 0.0;
    for (std::uint32_t r = rank * L; r < (rank + 1) * L; ++r) {
      for (std::uint32_t c = 0; c < C; ++c) {
        sum += at(u, r, c);
      }
    }
    sums[rank] = sum;
  }
  return sums;
}

HeatRun run_heat(const HeatConfig& cfg, cluster::ClusterConfig ccfg,
                 const std::function<void(cluster::Cluster&)>& chaos) {
  ccfg.num_nodes = cfg.nodes;
  cluster::Cluster cl(ccfg);
  cl.launch_spmd(heat_program(cfg));
  if (chaos) chaos(cl);
  HeatRun run;
  run.nodes = cl.wait_all();
  run.sums.assign(cfg.nodes, std::numeric_limits<double>::quiet_NaN());
  for (const auto& node : run.nodes) {
    if (!node.error.empty() ||
        node.run.kind != vm::RunResult::Kind::kHalted ||
        node.run.exit_code != 0) {
      run.all_clean = false;
    }
    if (node.has_reported) run.sums[node.rank] = node.reported;
  }
  return run;
}

}  // namespace mojave::gridapp
