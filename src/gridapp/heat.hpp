// The canonical grid computation of the paper (Figure 2): a 2D Jacobi
// heat-diffusion stencil, decomposed across cluster nodes in row bands,
// exchanging halo rows with neighbours every timestep through the
// message-passing externals, speculating between checkpoints, and
// checkpointing through the migrate primitive at a fixed interval —
// "the code ... can easily be used as a template for a large variety of
// scientific computing applications."
//
// The MojC program is generated from a HeatConfig; a bit-exact C++
// reference implementation validates the distributed results (including
// runs with injected faults, rollback, and resurrection, which must not
// change the answer).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "fir/ir.hpp"

namespace mojave::gridapp {

struct HeatConfig {
  std::uint32_t nodes = 4;
  std::uint32_t rows = 32;  ///< global rows; must divide evenly by nodes
  std::uint32_t cols = 32;
  std::uint32_t steps = 50;
  std::uint32_t checkpoint_interval = 0;  ///< in steps; 0 = never checkpoint
  /// Extra heap slots of static (write-once) data allocated alongside the
  /// grid — stands in for the large read-mostly state (meshes, material
  /// tables, constants) real scientific codes carry. It inflates the
  /// checkpoint image without changing between checkpoints, which is what
  /// the incremental chunk store dedupes away. 0 = none. Does not affect
  /// the computed sums.
  std::uint32_t static_slots = 0;
};

/// The MojC source of the per-node (SPMD) program.
[[nodiscard]] std::string heat_mojc_source(const HeatConfig& cfg);

/// Compiled FIR for the program (typechecks as a side effect).
[[nodiscard]] fir::Program heat_program(const HeatConfig& cfg);

/// Bit-exact sequential reference: the per-rank interior sums after
/// `steps` timesteps (same operation order as the generated program).
[[nodiscard]] std::vector<double> heat_reference_sums(const HeatConfig& cfg);

struct HeatRun {
  std::vector<cluster::NodeResult> nodes;
  std::vector<double> sums;  ///< per-rank reported sums (NaN if missing)
  bool all_clean = true;     ///< every node halted without error
};

/// Launch the program SPMD on a cluster and wait for completion. The
/// optional `chaos` callback runs on the caller's thread after launch and
/// may inject faults (kill/resurrect) while the computation runs.
[[nodiscard]] HeatRun run_heat(
    const HeatConfig& cfg, cluster::ClusterConfig ccfg,
    const std::function<void(cluster::Cluster&)>& chaos = nullptr);

}  // namespace mojave::gridapp
