// A minimal direct x86-64 instruction emitter (no LLVM, no external
// assembler): exactly the instruction subset the bytecode compiler needs.
//
// Encodings follow the Intel SDM: optional legacy prefix (66/F2), REX,
// opcode, ModRM (+SIB), displacement, immediate. Memory operands are
// always [base (+ index*scale) + disp32]; the only ModRM subtleties that
// matter are the SIB escape when the base is RSP/R12 and the REX
// extension bits for R8-R15.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace mojave::native {

enum Reg : std::uint8_t {
  RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSP = 4, RBP = 5, RSI = 6, RDI = 7,
  R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
};

enum Xmm : std::uint8_t { XMM0 = 0, XMM1 = 1, XMM2 = 2, XMM3 = 3 };

/// ModRM condition-code nibbles (Jcc = 0F 80+cc, SETcc = 0F 90+cc).
enum Cc : std::uint8_t {
  kB = 0x2,   ///< unsigned <
  kAe = 0x3,  ///< unsigned >=
  kE = 0x4,
  kNe = 0x5,
  kBe = 0x6,  ///< unsigned <=
  kA = 0x7,   ///< unsigned >
  kS = 0x8,   ///< sign (negative)
  kNs = 0x9,
  kL = 0xC,
  kGe = 0xD,
  kLe = 0xE,
  kG = 0xF,
};

/// [base + index*scale + disp]; index == kNoIndex means no SIB index.
struct Mem {
  Reg base;
  std::int32_t disp = 0;
  std::uint8_t index = kNoIndex;  ///< Reg value, or kNoIndex
  std::uint8_t scale = 1;         ///< 1, 2, 4 or 8

  static constexpr std::uint8_t kNoIndex = 0xff;
};

[[nodiscard]] inline Mem mem(Reg base, std::int32_t disp) {
  return Mem{base, disp, Mem::kNoIndex, 1};
}
[[nodiscard]] inline Mem mem(Reg base, Reg index, std::uint8_t scale,
                             std::int32_t disp) {
  return Mem{base, disp, static_cast<std::uint8_t>(index), scale};
}

class Assembler {
 public:
  using Label = std::int32_t;

  [[nodiscard]] Label make_label() {
    targets_.push_back(-1);
    return static_cast<Label>(targets_.size() - 1);
  }
  void bind(Label l) { targets_[static_cast<std::size_t>(l)] = pos(); }
  [[nodiscard]] bool is_bound(Label l) const {
    return targets_[static_cast<std::size_t>(l)] >= 0;
  }

  [[nodiscard]] std::int32_t pos() const {
    return static_cast<std::int32_t>(buf_.size());
  }
  [[nodiscard]] const std::uint8_t* data() const { return buf_.data(); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  /// Patch every recorded rel32 fixup; all labels must be bound.
  [[nodiscard]] bool finalize() {
    for (const Fixup& f : fixups_) {
      const std::int32_t target = targets_[static_cast<std::size_t>(f.label)];
      if (target < 0) return false;
      const std::int32_t rel = target - (f.pos + 4);
      std::memcpy(&buf_[static_cast<std::size_t>(f.pos)], &rel, 4);
    }
    return true;
  }

  // --- moves ------------------------------------------------------------

  void mov_rr(Reg dst, Reg src) { alu_rr(0x89, dst, src); }
  void mov_rm64(Reg dst, Mem m) { op_rm(0x8B, dst, m, /*w=*/true); }
  void mov_mr64(Mem m, Reg src) { op_rm(0x89, src, m, /*w=*/true); }
  void mov_rm32(Reg dst, Mem m) { op_rm(0x8B, dst, m, /*w=*/false); }
  void mov_mr32(Mem m, Reg src) { op_rm(0x89, src, m, /*w=*/false); }
  /// mov word ptr [m], src16 (66-prefixed).
  void mov_mr16(Mem m, Reg src) {
    emit8(0x66);
    op_rm(0x89, src, m, /*w=*/false);
  }
  /// mov byte ptr [m], src8 (use AL/CL/DL/BL only).
  void mov_mr8(Mem m, Reg src) { op_rm(0x88, src, m, /*w=*/false); }
  void movzx8_rm(Reg dst, Mem m) { op_rm_0f(0xB6, dst, m, /*w=*/false); }
  /// Sign-extending loads for raw_load widths 1/2/4.
  void movsx8_rm(Reg dst, Mem m) { op_rm_0f(0xBE, dst, m, /*w=*/true); }
  void movsx16_rm(Reg dst, Mem m) { op_rm_0f(0xBF, dst, m, /*w=*/true); }
  void movsx32_rm(Reg dst, Mem m) {  // movsxd
    prefix_mem_nopcode(m, /*w=*/true, dst >> 3);
    emit8(0x63);
    modrm_mem(dst & 7, m);
  }

  void mov_ri64(Reg r, std::uint64_t v) {
    rex(true, 0, 0, r >> 3);
    emit8(0xB8 | (r & 7));
    emit64(v);
  }
  void mov_ri32(Reg r, std::uint32_t v) {  // zero-extends into r64
    if (r >= 8) emit8(0x41);
    emit8(0xB8 | (r & 7));
    emit32(v);
  }
  /// mov qword ptr [m], imm32 (sign-extended to 64 bits).
  void mov_mi64(Mem m, std::int32_t v) {
    prefix_mem(0xC7, 0, m, /*w=*/true);
    emit32(static_cast<std::uint32_t>(v));
  }
  void mov_mi32(Mem m, std::int32_t v) {
    prefix_mem(0xC7, 0, m, /*w=*/false);
    emit32(static_cast<std::uint32_t>(v));
  }
  void lea(Reg dst, Mem m) { op_rm(0x8D, dst, m, /*w=*/true); }

  // --- ALU --------------------------------------------------------------

  void add_rr(Reg dst, Reg src) { alu_rr(0x01, dst, src); }
  void sub_rr(Reg dst, Reg src) { alu_rr(0x29, dst, src); }
  void and_rr(Reg dst, Reg src) { alu_rr(0x21, dst, src); }
  void or_rr(Reg dst, Reg src) { alu_rr(0x09, dst, src); }
  void xor_rr(Reg dst, Reg src) { alu_rr(0x31, dst, src); }
  void cmp_rr(Reg a, Reg b) { alu_rr(0x39, a, b); }
  void test_rr(Reg a, Reg b) { alu_rr(0x85, a, b); }

  void add_ri(Reg r, std::int32_t v) { alu_ri(0, r, v); }
  void sub_ri(Reg r, std::int32_t v) { alu_ri(5, r, v); }
  void and_ri(Reg r, std::int32_t v) { alu_ri(4, r, v); }
  void cmp_ri(Reg r, std::int32_t v) { alu_ri(7, r, v); }

  void cmp_rm64(Reg reg, Mem m) { op_rm(0x3B, reg, m, /*w=*/true); }
  void add_rm64(Reg reg, Mem m) { op_rm(0x03, reg, m, /*w=*/true); }

  /// add qword ptr [m], imm32 / sub / etc via /digit.
  void add_mi64(Mem m, std::int32_t v) { alu_mi(0, m, v); }
  void sub_mi64(Mem m, std::int32_t v) { alu_mi(5, m, v); }
  void cmp_mi64(Mem m, std::int32_t v) { alu_mi(7, m, v); }
  /// test al, al — for uint64-in-rax helper results use test_rr instead.
  void test_al() {
    emit8(0x84);
    emit8(0xC0);
  }
  void cmp_mi8(Mem m, std::uint8_t v) {  // cmp byte ptr [m], imm8
    prefix_mem_nopcode(m, /*w=*/false, /*reg_ext=*/0);
    emit8(0x80);
    modrm_mem(7, m);
    emit8(v);
  }
  void inc_m64(Mem m) { prefix_mem(0xFF, 0, m, /*w=*/true, /*imm=*/false); }

  void imul_rr(Reg dst, Reg src) { op_rr_0f(0xAF, dst, src); }
  void cqo() {
    emit8(0x48);
    emit8(0x99);
  }
  void idiv_r(Reg r) { unary_r(7, r); }
  void neg_r(Reg r) { unary_r(3, r); }
  void not_r(Reg r) { unary_r(2, r); }

  void shl_cl(Reg r) { shift_cl(4, r); }
  void sar_cl(Reg r) { shift_cl(7, r); }
  void shl_ri(Reg r, std::uint8_t n) { shift_ri(4, r, n); }
  void shr_ri(Reg r, std::uint8_t n) { shift_ri(5, r, n); }
  void sar_ri(Reg r, std::uint8_t n) { shift_ri(7, r, n); }

  /// setcc on an 8-bit register; restrict to AL/CL/DL/BL (no REX quirks).
  void setcc(Cc cc, Reg r8) {
    emit8(0x0F);
    emit8(0x90 | cc);
    modrm_reg(0, r8);
  }
  void movzx_r8(Reg dst, Reg src8) {
    rex(true, dst >> 3, 0, src8 >> 3);
    emit8(0x0F);
    emit8(0xB6);
    modrm_reg(dst & 7, src8);
  }

  // --- control ----------------------------------------------------------

  void jcc(Cc cc, Label l) {
    emit8(0x0F);
    emit8(0x80 | cc);
    fixup(l);
  }
  void jmp(Label l) {
    emit8(0xE9);
    fixup(l);
  }
  void jmp_r(Reg r) {
    if (r >= 8) emit8(0x41);
    emit8(0xFF);
    modrm_reg(4, r);
  }
  void call_r(Reg r) {
    if (r >= 8) emit8(0x41);
    emit8(0xFF);
    modrm_reg(2, r);
  }
  void push_r(Reg r) {
    if (r >= 8) emit8(0x41);
    emit8(0x50 | (r & 7));
  }
  void pop_r(Reg r) {
    if (r >= 8) emit8(0x41);
    emit8(0x58 | (r & 7));
  }
  void ret() { emit8(0xC3); }

  // --- SSE2 scalar double ----------------------------------------------

  void movsd_xm(Xmm x, Mem m) { sse_f2_mem(0x10, x, m); }
  void movsd_mx(Mem m, Xmm x) { sse_f2_mem(0x11, x, m); }
  void addsd(Xmm dst, Xmm src) { sse_f2_rr(0x58, dst, src); }
  void subsd(Xmm dst, Xmm src) { sse_f2_rr(0x5C, dst, src); }
  void mulsd(Xmm dst, Xmm src) { sse_f2_rr(0x59, dst, src); }
  void divsd(Xmm dst, Xmm src) { sse_f2_rr(0x5E, dst, src); }
  /// cmpsd dst, src, pred — pred: 0=eq 1=lt 2=le 4=neq.
  void cmpsd(Xmm dst, Xmm src, std::uint8_t pred) {
    sse_f2_rr(0xC2, dst, src);
    emit8(pred);
  }
  void xorpd(Xmm dst, Xmm src) {
    emit8(0x66);
    emit8(0x0F);
    emit8(0x57);
    modrm_reg(dst, static_cast<Reg>(src));
  }
  void cvttsd2si(Reg dst, Xmm src) {
    emit8(0xF2);
    rex(true, dst >> 3, 0, 0);
    emit8(0x0F);
    emit8(0x2C);
    modrm_reg(dst & 7, static_cast<Reg>(src));
  }
  void cvtsi2sd(Xmm dst, Reg src) {
    emit8(0xF2);
    rex(true, 0, 0, src >> 3);
    emit8(0x0F);
    emit8(0x2A);
    modrm_reg(dst, src);
  }
  void movq_xr(Xmm dst, Reg src) {
    emit8(0x66);
    rex(true, 0, 0, src >> 3);
    emit8(0x0F);
    emit8(0x6E);
    modrm_reg(dst, src);
  }
  void movq_rx(Reg dst, Xmm src) {
    emit8(0x66);
    rex(true, 0, 0, dst >> 3);
    emit8(0x0F);
    emit8(0x7E);
    modrm_reg(src, dst);
  }

 private:
  struct Fixup {
    Label label;
    std::int32_t pos;  ///< position of the rel32 field
  };

  void emit8(std::uint8_t b) { buf_.push_back(b); }
  void emit32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void emit64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void fixup(Label l) {
    fixups_.push_back(Fixup{l, pos()});
    emit32(0);
  }

  void rex(bool w, int r, int x, int b) {
    const std::uint8_t v = static_cast<std::uint8_t>(
        0x40 | (w ? 8 : 0) | ((r & 1) << 2) | ((x & 1) << 1) | (b & 1));
    if (v != 0x40 || w) emit8(v);
    else if ((r | x | b) != 0) emit8(v);
    // A bare 0x40 REX is only required for SPL/BPL/SIL/DIL, which this
    // emitter never addresses as bytes.
  }

  void modrm_reg(std::uint8_t reg, Reg rm) {
    emit8(static_cast<std::uint8_t>(0xC0 | ((reg & 7) << 3) | (rm & 7)));
  }

  void modrm_mem(std::uint8_t reg, Mem m) {
    const std::uint8_t base = m.base & 7;
    const bool need_sib = (m.index != Mem::kNoIndex) || base == 4;  // RSP/R12
    const bool disp8 = m.disp >= -128 && m.disp <= 127;
    const std::uint8_t mod = disp8 ? 0x40 : 0x80;
    if (need_sib) {
      emit8(static_cast<std::uint8_t>(mod | ((reg & 7) << 3) | 4));
      std::uint8_t ss = 0;
      switch (m.scale) {
        case 1: ss = 0; break;
        case 2: ss = 1; break;
        case 4: ss = 2; break;
        default: ss = 3; break;
      }
      const std::uint8_t idx =
          m.index == Mem::kNoIndex ? 4 : (m.index & 7);  // 4 = no index
      emit8(static_cast<std::uint8_t>((ss << 6) | (idx << 3) | base));
    } else {
      emit8(static_cast<std::uint8_t>(mod | ((reg & 7) << 3) | base));
    }
    if (disp8) {
      emit8(static_cast<std::uint8_t>(m.disp));
    } else {
      emit32(static_cast<std::uint32_t>(m.disp));
    }
  }

  void prefix_mem_nopcode(Mem m, bool w, int reg_ext) {
    const int x = m.index != Mem::kNoIndex ? (m.index >> 3) : 0;
    rex(w, reg_ext, x, m.base >> 3);
  }

  /// opcode /reg, [mem] single-byte-opcode form.
  void op_rm(std::uint8_t opcode, Reg reg, Mem m, bool w) {
    prefix_mem_nopcode(m, w, reg >> 3);
    emit8(opcode);
    modrm_mem(reg & 7, m);
  }
  /// 0F-prefixed opcode /reg, [mem].
  void op_rm_0f(std::uint8_t opcode, Reg reg, Mem m, bool w) {
    prefix_mem_nopcode(m, w, reg >> 3);
    emit8(0x0F);
    emit8(opcode);
    modrm_mem(reg & 7, m);
  }
  /// opcode /digit, [mem] (+ trailing imm32 unless imm=false).
  void prefix_mem(std::uint8_t opcode, std::uint8_t digit, Mem m, bool w,
                  bool imm = true) {
    prefix_mem_nopcode(m, w, 0);
    emit8(opcode);
    modrm_mem(digit, m);
    (void)imm;
  }

  void alu_rr(std::uint8_t opcode, Reg rm, Reg reg) {
    // Encodings like 01 /r are "op rm, reg": rm is the destination.
    rex(true, reg >> 3, 0, rm >> 3);
    emit8(opcode);
    modrm_reg(reg & 7, rm);
  }
  void op_rr_0f(std::uint8_t opcode, Reg reg, Reg rm) {
    rex(true, reg >> 3, 0, rm >> 3);
    emit8(0x0F);
    emit8(opcode);
    modrm_reg(reg & 7, rm);
  }
  void alu_ri(std::uint8_t digit, Reg r, std::int32_t v) {
    rex(true, 0, 0, r >> 3);
    emit8(0x81);
    modrm_reg(digit, r);
    emit32(static_cast<std::uint32_t>(v));
  }
  void alu_mi(std::uint8_t digit, Mem m, std::int32_t v) {
    prefix_mem_nopcode(m, /*w=*/true, 0);
    emit8(0x81);
    modrm_mem(digit, m);
    emit32(static_cast<std::uint32_t>(v));
  }
  void unary_r(std::uint8_t digit, Reg r) {
    rex(true, 0, 0, r >> 3);
    emit8(0xF7);
    modrm_reg(digit, r);
  }
  void shift_cl(std::uint8_t digit, Reg r) {
    rex(true, 0, 0, r >> 3);
    emit8(0xD3);
    modrm_reg(digit, r);
  }
  void shift_ri(std::uint8_t digit, Reg r, std::uint8_t n) {
    rex(true, 0, 0, r >> 3);
    emit8(0xC1);
    modrm_reg(digit, r);
    emit8(n);
  }

  void sse_f2_mem(std::uint8_t opcode, Xmm x, Mem m) {
    emit8(0xF2);
    prefix_mem_nopcode(m, /*w=*/false, 0);
    emit8(0x0F);
    emit8(opcode);
    modrm_mem(x, m);
  }
  void sse_f2_rr(std::uint8_t opcode, Xmm dst, Xmm src) {
    emit8(0xF2);
    emit8(0x0F);
    emit8(opcode);
    modrm_reg(dst, static_cast<Reg>(src));
  }

  std::vector<std::uint8_t> buf_;
  std::vector<std::int32_t> targets_;
  std::vector<Fixup> fixups_;
};

}  // namespace mojave::native
