// C helpers callable from compiled code.
//
// Every operation that may allocate, run a speculation copy-on-write hook,
// or otherwise reach deep into the runtime is performed by one of these
// functions instead of inline machine code. They take virtual register
// *numbers* and operate on ctx->frame directly, so the frame is always
// fully materialized at the call — making each helper call a GC safepoint
// by construction.
//
// Return convention: nonzero on success. Zero means the runtime raised an
// exception; the caller (compiled code) must deoptimize with reason
// kHelperTrap *without* counting the instruction, so the interpreter
// re-executes it and raises the identical error through a normal C++
// unwind path (exceptions must never propagate through JIT frames, which
// carry no unwind tables).
#pragma once

#include <cstdint>

#include "native/abi.hpp"

extern "C" {

/// kAllocTagged: frame[dst] = ptr to new tagged block of frame[nreg] slots
/// initialized from frame[initreg].
std::uint64_t moj_nat_alloc_tagged(mojave::native::NativeContext* ctx,
                                   std::uint64_t nreg, std::uint64_t initreg,
                                   std::uint64_t dstreg);

/// kAllocRaw: frame[dst] = ptr to new zeroed raw block of frame[nreg] bytes.
std::uint64_t moj_nat_alloc_raw(mojave::native::NativeContext* ctx,
                                std::uint64_t nreg, std::uint64_t dstreg);

/// kWrite via the full runtime path (speculation hook + write barrier).
std::uint64_t moj_nat_write_slot(mojave::native::NativeContext* ctx,
                                 std::uint64_t preg, std::uint64_t offreg,
                                 std::uint64_t vreg);

/// kRawStore via the full runtime path.
std::uint64_t moj_nat_raw_store(mojave::native::NativeContext* ctx,
                                std::uint64_t preg, std::uint64_t offreg,
                                std::uint64_t vreg, std::uint64_t width);

/// kRawStoreF via the full runtime path.
std::uint64_t moj_nat_raw_store_f(mojave::native::NativeContext* ctx,
                                  std::uint64_t preg, std::uint64_t offreg,
                                  std::uint64_t vreg);

}  // extern "C"
