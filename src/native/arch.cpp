#include "native/arch.hpp"

#include <cstring>
#include <mutex>

#if defined(__x86_64__) && (defined(__linux__) || defined(__APPLE__))
#define MOJAVE_NATIVE_X64 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define MOJAVE_NATIVE_X64 0
#endif

namespace mojave::native {

namespace {

struct ProbeResult {
  bool supported = false;
  std::string reason;
};

ProbeResult run_probe() {
#if !MOJAVE_NATIVE_X64
  return {false, "host is not x86-64 (or not a POSIX mmap platform)"};
#else
  // mov eax, 42; ret
  static const unsigned char kStub[] = {0xb8, 0x2a, 0x00, 0x00, 0x00, 0xc3};
  const long page = sysconf(_SC_PAGESIZE);
  const std::size_t len = page > 0 ? static_cast<std::size_t>(page) : 4096;
  void* mem = ::mmap(nullptr, len, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    return {false, "mmap(PROT_READ|PROT_WRITE) failed"};
  }
  std::memcpy(mem, kStub, sizeof(kStub));
  if (::mprotect(mem, len, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(mem, len);
    return {false, "mprotect(PROT_READ|PROT_EXEC) denied (W^X exec policy)"};
  }
  const int r = reinterpret_cast<int (*)()>(mem)();
  ::munmap(mem, len);
  if (r != 42) {
    return {false, "executed probe stub returned a wrong value"};
  }
  return {true, "ok"};
#endif
}

const ProbeResult& probe() {
  static const ProbeResult result = run_probe();
  return result;
}

}  // namespace

bool jit_supported() { return probe().supported; }

const std::string& jit_support_reason() { return probe().reason; }

}  // namespace mojave::native
