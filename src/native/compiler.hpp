// Bytecode → x86-64 compiler for the hot FIR subset.
//
// Compiles one CompiledFunction into self-contained machine code following
// the NativeContext ABI (abi.hpp). The compiled subset is the arithmetic /
// heap / loop core: register loads, unops, binops, tagged and raw heap
// access, allocation (via helpers), conditional and unconditional jumps,
// and statically-bound tail calls (compiled as direct jumps between native
// functions). Everything else — speculate, commit, rollback, migrate,
// externals, halt, dynamically-bound calls — compiles to a deoptimization
// stub that materializes (function, pc, reason) and returns to the VM.
//
// A forward type dataflow over basic blocks ("chunks") tracks each virtual
// register's runtime tag so most operations need no inline tag guard; where
// the lattice says "unknown", a one-byte tag compare guards the operation
// and failure deopts (the interpreter re-executes the instruction and
// raises the canonical SafetyError). The instruction budget and the
// per-opcode-class telemetry counters are maintained exactly: each chunk
// pre-pays its cost on entry and every exit stub refunds the unexecuted
// suffix and credits the completed prefix, so counts and budget-exhaustion
// points are bit-identical to a pure interpreter run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/common.hpp"
#include "vm/bytecode.hpp"

namespace mojave::native {

struct CompileResult {
  bool ok = false;
  std::string error;          ///< why compilation was refused
  std::vector<std::uint8_t> code;
  /// Offset of the post-prologue ("jump") entry used by native-to-native
  /// direct jumps; offset 0 is the full C-callable entry.
  std::size_t jump_entry = 0;
};

/// Compile `prog.functions[fun]`. Never throws; unsupported or malformed
/// input yields ok = false.
[[nodiscard]] CompileResult compile_function(const vm::CompiledProgram& prog,
                                             FunIndex fun);

}  // namespace mojave::native
