// The native execution engine: compile policy, code cache, and the
// interpreter-facing run protocol.
//
// The Engine owns the machine-code side of the tiered VM. The interpreter
// offers it every control transfer (function entry); the engine counts
// transfers per function, compiles a function once it crosses the hotness
// threshold, and from then on runs it natively until the code deoptimizes.
// A deopt hands back (function, pc) plus the full virtual register frame,
// and the interpreter resumes mid-function as if it had executed every
// retired instruction itself — budget, per-class counters and call counts
// included. Compiled code can chain across functions through direct jumps
// without returning, so one try_run may retire millions of instructions.
//
// The engine's frame and argument buffer are GC roots (RootProvider):
// helper calls from native code may allocate and therefore collect.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "native/abi.hpp"
#include "native/codecache.hpp"
#include "native/options.hpp"
#include "runtime/gc.hpp"
#include "runtime/heap.hpp"
#include "spec/speculation.hpp"
#include "support/common.hpp"
#include "vm/bytecode.hpp"

namespace mojave::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace mojave::obs

namespace mojave::native {

/// One native run request/response. The interpreter fills the `in` fields;
/// on a true return the engine has executed natively and updated the `out`
/// fields to the deoptimization point.
struct RunIo {
  /// in: current register file of `fun`; out: register file at the deopt
  /// point (sized to the deopt function's num_regs).
  std::vector<runtime::Value>* regs = nullptr;
  /// Interned string blocks (interpreter state).
  const std::vector<BlockIndex>* strings = nullptr;
  /// The interpreter's per-opcode-class counters; updated in place.
  std::uint64_t* class_counts = nullptr;
  /// The interpreter's lifetime call counter; updated in place.
  std::uint64_t* calls = nullptr;
  /// in: instruction allowance; out: allowance remaining.
  std::int64_t budget = 0;
  /// in: function to run; out: function to resume interpreting.
  FunIndex fun = 0;
  /// out: bytecode pc to resume at.
  std::uint32_t pc = 0;
  /// out: DeoptReason for telemetry.
  std::uint32_t reason = 0;
};

class Engine final : public runtime::RootProvider {
 public:
  Engine(runtime::Heap& heap, spec::SpeculationManager& spec,
         const vm::CompiledProgram& prog, JitOptions opts);
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Offer a control transfer into `io.fun`. Returns false when the
  /// function is not (yet) compiled — the interpreter proceeds as usual —
  /// or true after running natively up to a deoptimization point.
  [[nodiscard]] bool try_run(RunIo& io);

  [[nodiscard]] const JitOptions& options() const { return opts_; }
  [[nodiscard]] std::uint64_t compiled_functions() const { return compiled_; }
  [[nodiscard]] std::size_t code_bytes() const { return cache_.used_bytes(); }
  [[nodiscard]] std::uint64_t deopt_count(DeoptReason r) const {
    return deopts_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] std::uint64_t total_deopts() const {
    std::uint64_t t = 0;
    for (const std::uint64_t v : deopts_) t += v;
    return t;
  }
  /// True once `fun` has been compiled (for tests and introspection).
  [[nodiscard]] bool is_compiled(FunIndex fun) const {
    return fun < status_.size() && status_[fun] == Status::kCompiled;
  }

  void enumerate_roots(runtime::RootVisitor& visitor) override;

 private:
  enum class Status : std::uint8_t { kCold, kCompiled, kFailed };

  void compile(FunIndex fun);

  runtime::Heap& heap_;
  spec::SpeculationManager& spec_;
  const vm::CompiledProgram& prog_;
  JitOptions opts_;

  CodeCache cache_;
  std::vector<Status> status_;
  std::vector<std::uint32_t> hot_;
  /// Post-prologue entry per function (read by direct jumps), or null.
  std::vector<const void*> entries_;
  /// Full C-callable entry per function, or null.
  std::vector<NativeFn> full_entries_;

  /// The native frame: max num_regs Values, always fully materialized.
  std::vector<runtime::Value> frame_;
  /// Parallel-move scratch for direct jumps.
  std::vector<runtime::Value> argbuf_;

  std::uint64_t compiled_ = 0;
  std::array<std::uint64_t, kNumDeoptReasons> deopts_{};

  obs::Counter* compiled_funcs_metric_ = nullptr;
  obs::Gauge* code_cache_bytes_metric_ = nullptr;
  obs::Histogram* compile_us_metric_ = nullptr;
  std::array<obs::Counter*, kNumDeoptReasons> deopt_metrics_{};
};

}  // namespace mojave::native
