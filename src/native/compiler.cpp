#include "native/compiler.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <map>
#include <set>

#include "native/abi.hpp"
#include "native/asm_x64.hpp"
#include "native/helpers.hpp"
#include "runtime/value.hpp"

namespace mojave::native {

namespace {

using runtime::Tag;
using vm::CompiledFunction;
using vm::CompiledProgram;
using vm::Insn;
using vm::Op;

// Compile-time sanity bounds; functions outside them stay interpreted.
constexpr std::size_t kMaxCode = 1 << 16;
constexpr std::uint16_t kMaxRegs = 256;
constexpr std::size_t kMaxFunctions = 1 << 24;

// --- Type lattice ------------------------------------------------------------

enum class Kind : std::uint8_t { kUnit, kInt, kFloat, kPtr, kFun, kAny };

/// Per-register abstract state: the runtime tag if statically known, plus
/// the function id for registers that provably hold one specific function
/// reference (what makes a tail call bind to a direct jump).
struct TypeInfo {
  Kind kind = Kind::kAny;
  bool has_fun = false;
  std::uint32_t fun = 0;

  [[nodiscard]] bool operator==(const TypeInfo&) const = default;
};

using State = std::vector<TypeInfo>;

TypeInfo info_of(Kind k) { return TypeInfo{k, false, 0}; }

TypeInfo fun_const(std::uint32_t f) { return TypeInfo{Kind::kFun, true, f}; }

Kind kind_of_tag(Tag t) {
  switch (t) {
    case Tag::kUnit: return Kind::kUnit;
    case Tag::kInt: return Kind::kInt;
    case Tag::kFloat: return Kind::kFloat;
    case Tag::kPtr: return Kind::kPtr;
    case Tag::kFun: return Kind::kFun;
  }
  return Kind::kAny;
}

Tag tag_of_kind(Kind k) {
  switch (k) {
    case Kind::kUnit: return Tag::kUnit;
    case Kind::kInt: return Tag::kInt;
    case Kind::kFloat: return Tag::kFloat;
    case Kind::kPtr: return Tag::kPtr;
    case Kind::kFun: return Tag::kFun;
    case Kind::kAny: break;
  }
  return Tag::kUnit;  // unreachable for definite kinds
}

/// Lattice meet at control-flow joins: disagreement lowers toward kAny, so
/// contributions from not-yet-final predecessor states are always sound.
TypeInfo meet(const TypeInfo& a, const TypeInfo& b) {
  if (a.kind != b.kind) return info_of(Kind::kAny);
  if (a.kind == Kind::kFun) {
    if (a.has_fun && b.has_fun && a.fun == b.fun) return a;
    return info_of(Kind::kFun);
  }
  return info_of(a.kind);
}

// --- Per-instruction plan ----------------------------------------------------

struct TagGuard {
  std::uint16_t reg = 0;
  std::uint8_t tag = 0;
};

/// What the codegen will emit for one instruction — computed from (and
/// refining) the abstract state. The dataflow pass and the emission pass
/// call the same planner, so the state each one sees is identical.
struct Plan {
  enum class Act : std::uint8_t {
    kInline,  ///< fully inlined machine code
    kHelper,  ///< one C helper call, trap → deopt
    kHybrid,  ///< inlined fast path, helper fallback when speculating
    kDeopt,   ///< unconditional deoptimization at this pc
    kDirect,  ///< statically-bound tail call: native-to-native jump
  };

  Act act = Act::kInline;
  DeoptReason reason = DeoptReason::kUnsupported;
  std::vector<TagGuard> guards;
  std::uint32_t callee = 0;  ///< kDirect
  /// True when nothing after this instruction can execute natively on this
  /// path (deopt or a control transfer).
  bool ends_path = false;
};

constexpr int kGuardOk = 0;        // kind already proven
constexpr int kGuardCheck = 1;     // runtime tag compare needed
constexpr int kGuardImpossible = 2;

int guard_need(const TypeInfo& ti, Tag want) {
  if (ti.kind == Kind::kAny) return kGuardCheck;
  return ti.kind == kind_of_tag(want) ? kGuardOk : kGuardImpossible;
}

bool is_int_binop(std::uint8_t sub) { return sub <= 15; }
bool is_float_arith(std::uint8_t sub) { return sub >= 16 && sub <= 19; }
bool is_float_cmp(std::uint8_t sub) { return sub >= 20 && sub <= 25; }

/// Build the plan for `I` and advance `st` across it. Returns false (with
/// `err` set) only for malformed bytecode the compiler refuses outright.
bool plan_insn(const CompiledProgram& prog, const CompiledFunction& f,
               const Insn& I, State& st, Plan& plan, std::string& err) {
  plan = Plan{};
  const auto bad_reg = [&](std::uint16_t r) { return r >= f.num_regs; };

  // Operand collection: require the listed (reg, tag) pairs; a statically
  // impossible requirement turns the whole instruction into a deopt (the
  // interpreter re-executes it and raises the canonical SafetyError).
  bool impossible = false;
  const auto want = [&](std::uint16_t reg, Tag t) {
    switch (guard_need(st[reg], t)) {
      case kGuardOk:
        break;
      case kGuardCheck:
        plan.guards.push_back(TagGuard{reg, static_cast<std::uint8_t>(t)});
        break;
      default:
        impossible = true;
        break;
    }
  };
  const auto refine = [&]() {
    for (const TagGuard& g : plan.guards) {
      st[g.reg] = info_of(kind_of_tag(static_cast<Tag>(g.tag)));
    }
  };
  const auto deopt = [&](DeoptReason r) {
    plan = Plan{};
    plan.act = Plan::Act::kDeopt;
    plan.reason = r;
    plan.ends_path = true;
  };
  const auto set_dst = [&](Kind k) { st[I.dst] = info_of(k); };

  switch (I.op) {
    case Op::kLoadUnit:
      if (bad_reg(I.dst)) { err = "register out of range"; return false; }
      set_dst(Kind::kUnit);
      break;
    case Op::kLoadInt:
      if (bad_reg(I.dst)) { err = "register out of range"; return false; }
      set_dst(Kind::kInt);
      break;
    case Op::kLoadFloat:
      if (bad_reg(I.dst)) { err = "register out of range"; return false; }
      set_dst(Kind::kFloat);
      break;
    case Op::kLoadString:
      if (bad_reg(I.dst)) { err = "register out of range"; return false; }
      if (I.aux >= prog.strings.size()) { deopt(DeoptReason::kUnsupported); break; }
      set_dst(Kind::kPtr);
      break;
    case Op::kLoadFun:
      if (bad_reg(I.dst)) { err = "register out of range"; return false; }
      if (I.aux >= prog.functions.size()) { deopt(DeoptReason::kUnsupported); break; }
      st[I.dst] = fun_const(I.aux);
      break;
    case Op::kLoadNull:
      if (bad_reg(I.dst)) { err = "register out of range"; return false; }
      set_dst(Kind::kPtr);
      break;
    case Op::kMove:
      if (bad_reg(I.dst) || bad_reg(I.r1)) { err = "register out of range"; return false; }
      st[I.dst] = st[I.r1];
      break;

    case Op::kUnop: {
      if (bad_reg(I.dst) || bad_reg(I.r1)) { err = "register out of range"; return false; }
      Kind out;
      Tag in;
      switch (I.sub) {
        case 0: case 1: case 2: in = Tag::kInt; out = Kind::kInt; break;
        case 3: in = Tag::kFloat; out = Kind::kFloat; break;
        case 4: in = Tag::kFloat; out = Kind::kInt; break;
        case 5: in = Tag::kInt; out = Kind::kFloat; break;
        default: deopt(DeoptReason::kUnsupported); goto done;
      }
      want(I.r1, in);
      if (impossible) { deopt(DeoptReason::kGuard); break; }
      refine();
      set_dst(out);
      break;
    }

    case Op::kBinop: {
      if (bad_reg(I.dst) || bad_reg(I.r1) || bad_reg(I.r2)) {
        err = "register out of range";
        return false;
      }
      Kind out;
      Tag in;
      if (is_int_binop(I.sub)) { in = Tag::kInt; out = Kind::kInt; }
      else if (is_float_arith(I.sub)) { in = Tag::kFloat; out = Kind::kFloat; }
      else if (is_float_cmp(I.sub)) { in = Tag::kFloat; out = Kind::kInt; }
      else { deopt(DeoptReason::kUnsupported); break; }
      want(I.r1, in);
      want(I.r2, in);
      if (impossible) { deopt(DeoptReason::kGuard); break; }
      refine();
      set_dst(out);
      break;
    }

    case Op::kAllocTagged:
      if (bad_reg(I.dst) || bad_reg(I.r1) || bad_reg(I.r2)) {
        err = "register out of range";
        return false;
      }
      plan.act = Plan::Act::kHelper;
      // Helper success implies the operand checks passed.
      st[I.r1] = meet(st[I.r1], info_of(Kind::kInt));
      if (st[I.r1].kind == Kind::kAny) st[I.r1] = info_of(Kind::kInt);
      set_dst(Kind::kPtr);
      break;
    case Op::kAllocRaw:
      if (bad_reg(I.dst) || bad_reg(I.r1)) { err = "register out of range"; return false; }
      plan.act = Plan::Act::kHelper;
      if (st[I.r1].kind == Kind::kAny) st[I.r1] = info_of(Kind::kInt);
      set_dst(Kind::kPtr);
      break;

    case Op::kRead:
      if (bad_reg(I.dst) || bad_reg(I.r1) || bad_reg(I.r2)) {
        err = "register out of range";
        return false;
      }
      if (I.sub > static_cast<std::uint8_t>(Tag::kFun)) {
        deopt(DeoptReason::kUnsupported);
        break;
      }
      want(I.r1, Tag::kPtr);
      want(I.r2, Tag::kInt);
      if (impossible) { deopt(DeoptReason::kGuard); break; }
      refine();
      set_dst(kind_of_tag(static_cast<Tag>(I.sub)));
      break;

    case Op::kWrite: {
      if (bad_reg(I.r1) || bad_reg(I.r2) || bad_reg(I.r3)) {
        err = "register out of range";
        return false;
      }
      const TypeInfo& v = st[I.r3];
      const bool v_nonptr = v.kind != Kind::kAny && v.kind != Kind::kPtr;
      const bool p_ok = guard_need(st[I.r1], Tag::kPtr) != kGuardImpossible;
      const bool o_ok = guard_need(st[I.r2], Tag::kInt) != kGuardImpossible;
      if (v_nonptr && p_ok && o_ok) {
        // Non-pointer store: the write barrier is a no-op, so when no
        // speculation level is active the hook may be skipped and the
        // store inlined. A runtime level-count test picks the path.
        plan.act = Plan::Act::kHybrid;
        want(I.r1, Tag::kPtr);
        want(I.r2, Tag::kInt);
        refine();
      } else {
        plan.act = Plan::Act::kHelper;
        if (st[I.r1].kind == Kind::kAny) st[I.r1] = info_of(Kind::kPtr);
        if (st[I.r2].kind == Kind::kAny) st[I.r2] = info_of(Kind::kInt);
      }
      break;
    }

    case Op::kRawLoad:
      if (bad_reg(I.dst) || bad_reg(I.r1) || bad_reg(I.r2)) {
        err = "register out of range";
        return false;
      }
      if (I.sub != 1 && I.sub != 2 && I.sub != 4 && I.sub != 8) {
        deopt(DeoptReason::kGuard);  // interpreter raises "width must be..."
        break;
      }
      want(I.r1, Tag::kPtr);
      want(I.r2, Tag::kInt);
      if (impossible) { deopt(DeoptReason::kGuard); break; }
      refine();
      set_dst(Kind::kInt);
      break;

    case Op::kRawStore: {
      if (bad_reg(I.r1) || bad_reg(I.r2) || bad_reg(I.r3)) {
        err = "register out of range";
        return false;
      }
      if (I.sub != 1 && I.sub != 2 && I.sub != 4 && I.sub != 8) {
        deopt(DeoptReason::kGuard);
        break;
      }
      const bool p_ok = guard_need(st[I.r1], Tag::kPtr) != kGuardImpossible;
      const bool o_ok = guard_need(st[I.r2], Tag::kInt) != kGuardImpossible;
      const bool v_ok = guard_need(st[I.r3], Tag::kInt) != kGuardImpossible;
      if (p_ok && o_ok && v_ok) {
        plan.act = Plan::Act::kHybrid;
        want(I.r1, Tag::kPtr);
        want(I.r2, Tag::kInt);
        want(I.r3, Tag::kInt);
        refine();
      } else {
        plan.act = Plan::Act::kHelper;
      }
      break;
    }

    case Op::kRawLoadF:
      if (bad_reg(I.dst) || bad_reg(I.r1) || bad_reg(I.r2)) {
        err = "register out of range";
        return false;
      }
      want(I.r1, Tag::kPtr);
      want(I.r2, Tag::kInt);
      if (impossible) { deopt(DeoptReason::kGuard); break; }
      refine();
      set_dst(Kind::kFloat);
      break;

    case Op::kRawStoreF: {
      if (bad_reg(I.r1) || bad_reg(I.r2) || bad_reg(I.r3)) {
        err = "register out of range";
        return false;
      }
      const bool p_ok = guard_need(st[I.r1], Tag::kPtr) != kGuardImpossible;
      const bool o_ok = guard_need(st[I.r2], Tag::kInt) != kGuardImpossible;
      const bool v_ok = guard_need(st[I.r3], Tag::kFloat) != kGuardImpossible;
      if (p_ok && o_ok && v_ok) {
        plan.act = Plan::Act::kHybrid;
        want(I.r1, Tag::kPtr);
        want(I.r2, Tag::kInt);
        want(I.r3, Tag::kFloat);
        refine();
      } else {
        plan.act = Plan::Act::kHelper;
      }
      break;
    }

    case Op::kLen:
      if (bad_reg(I.dst) || bad_reg(I.r1)) { err = "register out of range"; return false; }
      want(I.r1, Tag::kPtr);
      if (impossible) { deopt(DeoptReason::kGuard); break; }
      refine();
      set_dst(Kind::kInt);
      break;

    case Op::kPtrAdd:
      if (bad_reg(I.dst) || bad_reg(I.r1) || bad_reg(I.r2)) {
        err = "register out of range";
        return false;
      }
      want(I.r1, Tag::kPtr);
      want(I.r2, Tag::kInt);
      if (impossible) { deopt(DeoptReason::kGuard); break; }
      refine();
      set_dst(Kind::kPtr);
      break;

    case Op::kJump:
      if (I.aux > f.code.size()) { err = "jump out of range"; return false; }
      plan.ends_path = true;
      break;

    case Op::kJumpIfZero:
      if (bad_reg(I.r1)) { err = "register out of range"; return false; }
      if (I.aux > f.code.size()) { err = "jump out of range"; return false; }
      want(I.r1, Tag::kInt);
      if (impossible) { deopt(DeoptReason::kGuard); break; }
      refine();
      break;

    case Op::kTailCall: {
      if (bad_reg(I.r1)) { err = "register out of range"; return false; }
      for (std::uint16_t r : I.args) {
        if (bad_reg(r)) { err = "register out of range"; return false; }
      }
      const TypeInfo& callee = st[I.r1];
      bool direct = callee.kind == Kind::kFun && callee.has_fun &&
                    callee.fun < prog.functions.size() &&
                    I.args.size() <= kMaxDirectArgs;
      if (direct) {
        const CompiledFunction& target = prog.functions[callee.fun];
        direct = I.args.size() == target.arity &&
                 target.param_tags.size() == target.arity;
        if (direct) {
          for (std::size_t i = 0; i < I.args.size(); ++i) {
            const TypeInfo& a = st[I.args[i]];
            if (a.kind == Kind::kAny ||
                tag_of_kind(a.kind) != target.param_tags[i]) {
              direct = false;
              break;
            }
          }
        }
      }
      if (direct) {
        plan.act = Plan::Act::kDirect;
        plan.callee = callee.fun;
        plan.ends_path = true;
      } else {
        deopt(DeoptReason::kCall);
      }
      break;
    }

    case Op::kSpeculate: deopt(DeoptReason::kSpeculate); break;
    case Op::kCommit: deopt(DeoptReason::kCommit); break;
    case Op::kRollback:
    case Op::kAbort: deopt(DeoptReason::kRollback); break;
    case Op::kMigrate: deopt(DeoptReason::kMigrate); break;
    case Op::kExternal: deopt(DeoptReason::kExternal); break;
    case Op::kHalt: deopt(DeoptReason::kHalt); break;
  }
done:
  return true;
}

// --- Chunks ------------------------------------------------------------------

bool ends_chunk(Op op) {
  switch (op) {
    case Op::kJump:
    case Op::kJumpIfZero:
    case Op::kTailCall:
    case Op::kSpeculate:
    case Op::kCommit:
    case Op::kRollback:
    case Op::kAbort:
    case Op::kMigrate:
    case Op::kHalt:
      return true;
    default:
      return false;
  }
}

using ClassCounts = std::array<std::uint64_t, vm::kNumOpClasses>;

struct DeoptStub {
  Assembler::Label label;
  std::uint32_t pc = 0;
  DeoptReason reason = DeoptReason::kUnsupported;
  std::int32_t refund = 0;
  ClassCounts counts{};
};

// --- The compiler ------------------------------------------------------------

class FunctionCompiler {
 public:
  FunctionCompiler(const CompiledProgram& prog, FunIndex fun)
      : prog_(prog), fun_(fun), f_(prog.functions[fun]) {}

  CompileResult run() {
    CompileResult result;
    if (!validate()) { result.error = err_; return result; }
    find_leaders();
    if (!dataflow()) { result.error = err_; return result; }
    emit();
    if (!err_.empty()) { result.error = err_; return result; }
    if (!a_.finalize()) {
      result.error = "unresolved label";
      return result;
    }
    result.ok = true;
    result.code.assign(a_.data(), a_.data() + a_.size());
    result.jump_entry = jump_entry_;
    return result;
  }

 private:
  // Frame addressing.
  static Mem vtag(std::uint16_t r) { return mem(R12, 16 * r); }
  static Mem vpay(std::uint16_t r) { return mem(R12, 16 * r + 8); }
  static Mem vidx(std::uint16_t r) { return mem(R12, 16 * r + 8); }
  static Mem voff(std::uint16_t r) { return mem(R12, 16 * r + 12); }

  bool validate() {
    if (f_.code.empty()) { err_ = "empty function"; return false; }
    if (f_.code.size() > kMaxCode) { err_ = "function too large"; return false; }
    if (f_.num_regs > kMaxRegs) { err_ = "too many registers"; return false; }
    if (f_.arity > f_.num_regs) { err_ = "arity exceeds registers"; return false; }
    if (f_.param_tags.size() != f_.arity) { err_ = "bad param tags"; return false; }
    if (prog_.functions.size() > kMaxFunctions) { err_ = "program too large"; return false; }
    return true;
  }

  void find_leaders() {
    leaders_.insert(0);
    for (std::uint32_t i = 0; i < f_.code.size(); ++i) {
      const Insn& I = f_.code[i];
      if (I.op == Op::kJump) leaders_.insert(I.aux);
      if (I.op == Op::kJumpIfZero) {
        leaders_.insert(I.aux);
        leaders_.insert(i + 1);
      }
      if (ends_chunk(I.op) && i + 1 < f_.code.size()) leaders_.insert(i + 1);
    }
  }

  [[nodiscard]] std::uint32_t chunk_end(std::uint32_t start) const {
    for (std::uint32_t i = start; i < f_.code.size(); ++i) {
      if (i > start && leaders_.count(i) != 0) return i;
      if (ends_chunk(f_.code[i].op)) return i + 1;
    }
    return static_cast<std::uint32_t>(f_.code.size());
  }

  State entry_state() const {
    State st(f_.num_regs, info_of(Kind::kUnit));
    for (std::uint32_t i = 0; i < f_.arity; ++i) {
      st[i] = info_of(kind_of_tag(f_.param_tags[i]));
    }
    return st;
  }

  void propagate(std::uint32_t target, const State& st,
                 std::vector<std::uint32_t>& worklist) {
    auto it = in_states_.find(target);
    if (it == in_states_.end()) {
      in_states_.emplace(target, st);
      worklist.push_back(target);
      return;
    }
    bool changed = false;
    for (std::size_t r = 0; r < st.size(); ++r) {
      const TypeInfo m = meet(it->second[r], st[r]);
      if (!(m == it->second[r])) {
        it->second[r] = m;
        changed = true;
      }
    }
    if (changed) worklist.push_back(target);
  }

  bool dataflow() {
    std::vector<std::uint32_t> worklist;
    in_states_.emplace(0, entry_state());
    worklist.push_back(0);
    while (!worklist.empty()) {
      const std::uint32_t start = worklist.back();
      worklist.pop_back();
      if (start >= f_.code.size()) continue;  // fell-off-the-end sentinel
      State st = in_states_.at(start);
      const std::uint32_t end = chunk_end(start);
      bool fell_through = true;
      for (std::uint32_t pc = start; pc < end; ++pc) {
        const Insn& I = f_.code[pc];
        Plan plan;
        if (!plan_insn(prog_, f_, I, st, plan, err_)) return false;
        if (plan.act == Plan::Act::kDeopt) { fell_through = false; break; }
        if (I.op == Op::kJump) {
          propagate(I.aux, st, worklist);
          fell_through = false;
          break;
        }
        if (I.op == Op::kJumpIfZero) {
          propagate(I.aux, st, worklist);
          propagate(pc + 1, st, worklist);
          fell_through = false;
          break;
        }
        if (plan.ends_path) { fell_through = false; break; }  // direct jump
      }
      if (fell_through) propagate(end, st, worklist);
    }
    return true;
  }

  Assembler::Label chunk_label(std::uint32_t pc) {
    auto it = chunk_labels_.find(pc);
    if (it != chunk_labels_.end()) return it->second;
    const Assembler::Label l = a_.make_label();
    chunk_labels_.emplace(pc, l);
    return l;
  }

  Assembler::Label stub(std::uint32_t pc, DeoptReason reason,
                        const ClassCounts& counts, std::int32_t refund) {
    stubs_.push_back(DeoptStub{a_.make_label(), pc, reason, refund, counts});
    return stubs_.back().label;
  }

  void emit_counts_add(const ClassCounts& counts) {
    bool any = false;
    for (const std::uint64_t v : counts) any = any || v != 0;
    if (!any) return;
    a_.mov_rm64(RAX, mem(RBX, kCtxClassCounts));
    for (std::size_t c = 0; c < counts.size(); ++c) {
      if (counts[c] != 0) {
        a_.add_mi64(mem(RAX, static_cast<std::int32_t>(8 * c)),
                    static_cast<std::int32_t>(counts[c]));
      }
    }
  }

  /// Pointer dereference through the table view. Expects the pointer value
  /// in frame[preg] (tag already guarded); leaves Block* in RAX. Clobbers
  /// RSI, RDI. Preserves RDX (which usually holds the effective offset).
  void emit_deref(std::uint16_t preg, Assembler::Label g) {
    a_.mov_rm32(RSI, vidx(preg));
    a_.mov_rm64(RDI, mem(RBX, kCtxTableView));
    a_.test_rr(RSI, RSI);
    a_.jcc(kE, g);
    a_.cmp_rm64(RSI, mem(RDI, 8));
    a_.jcc(kAe, g);
    a_.mov_rm64(RDI, mem(RDI, 0));
    a_.mov_rm64(RAX, mem(RDI, RSI, 8, 0));
    a_.test_rr(RAX, RAX);
    a_.jcc(kE, g);
  }

  /// effective_offset(frame[preg].ptr, frame[offreg].int) → RDX, guarded
  /// to fit in [0, 2^32). Clobbers RCX.
  void emit_eff(std::uint16_t preg, std::uint16_t offreg, Assembler::Label g) {
    a_.mov_rm32(RCX, voff(preg));
    a_.mov_rm64(RDX, vpay(offreg));
    a_.add_rr(RDX, RCX);
    a_.mov_rr(RCX, RDX);
    a_.sar_ri(RCX, 32);
    a_.test_rr(RCX, RCX);
    a_.jcc(kNe, g);
  }

  void emit_store_tag(std::uint16_t dst, Tag t) {
    a_.mov_mi64(vtag(dst), static_cast<std::int32_t>(t));
  }

  void emit_store_int_result(std::uint16_t dst, Reg r) {
    emit_store_tag(dst, Tag::kInt);
    a_.mov_mr64(vpay(dst), r);
  }

  void emit_helper_call(const void* helper, std::uint32_t nargs,
                        const std::array<std::uint32_t, 4>& args,
                        Assembler::Label trap) {
    a_.mov_rr(RDI, RBX);
    const Reg arg_regs[4] = {RSI, RDX, RCX, R8};
    for (std::uint32_t i = 0; i < nargs; ++i) {
      a_.mov_ri32(arg_regs[i], args[i]);
    }
    a_.mov_ri64(RAX, reinterpret_cast<std::uint64_t>(helper));
    a_.call_r(RAX);
    a_.test_rr(RAX, RAX);
    a_.jcc(kE, trap);
  }

  /// kRead/kWrite/kRaw* common prefix after tag guards: effective offset in
  /// RDX, Block* in RAX, kind checked. Bounds are checked per caller.
  void emit_access_prefix(const Insn& I, std::uint8_t kind,
                          Assembler::Label g) {
    emit_eff(I.r1, I.r2, g);
    emit_deref(I.r1, g);
    a_.cmp_mi8(mem(RAX, kBlockKind), kind);
    a_.jcc(kNe, g);
  }

  void emit_raw_bounds(std::uint32_t width, Assembler::Label g) {
    // off + width > count → trap (64-bit, no overflow possible).
    a_.mov_rm32(RCX, mem(RAX, kBlockCount));
    a_.lea(RSI, mem(RDX, static_cast<std::int32_t>(width)));
    a_.cmp_rr(RSI, RCX);
    a_.jcc(kA, g);
  }

  void emit_insn(const Insn& I, std::uint32_t pc, const Plan& plan,
                 const ClassCounts& prefix, std::int32_t refund) {
    const auto g = [&](DeoptReason r = DeoptReason::kGuard) {
      return stub(pc, r, prefix, refund);
    };
    // Tag guards first; a failed guard deopts to re-execute this insn.
    for (const TagGuard& gd : plan.guards) {
      a_.cmp_mi8(vtag(gd.reg), gd.tag);
      a_.jcc(kNe, g());
    }
    switch (plan.act) {
      case Plan::Act::kHelper:
      case Plan::Act::kHybrid:
        emit_slow_op(I, plan, g(DeoptReason::kHelperTrap), g());
        return;
      case Plan::Act::kDeopt:
      case Plan::Act::kDirect:
        return;  // handled by the chunk driver
      case Plan::Act::kInline:
        break;
    }
    emit_inline_op(I, g());
  }

  void emit_inline_op(const Insn& I, Assembler::Label g) {
    switch (I.op) {
      case Op::kLoadUnit:
        a_.mov_mi64(vtag(I.dst), 0);
        a_.mov_mi64(vpay(I.dst), 0);
        break;
      case Op::kLoadInt:
        emit_store_tag(I.dst, Tag::kInt);
        if (I.imm >= INT32_MIN && I.imm <= INT32_MAX) {
          a_.mov_mi64(vpay(I.dst), static_cast<std::int32_t>(I.imm));
        } else {
          a_.mov_ri64(RAX, static_cast<std::uint64_t>(I.imm));
          a_.mov_mr64(vpay(I.dst), RAX);
        }
        break;
      case Op::kLoadFloat: {
        std::uint64_t bits;
        std::memcpy(&bits, &I.fimm, sizeof(bits));
        emit_store_tag(I.dst, Tag::kFloat);
        a_.mov_ri64(RAX, bits);
        a_.mov_mr64(vpay(I.dst), RAX);
        break;
      }
      case Op::kLoadString:
        a_.mov_rm64(RAX, mem(RBX, kCtxStrings));
        a_.mov_rm32(RCX, mem(RAX, static_cast<std::int32_t>(4 * I.aux)));
        emit_store_tag(I.dst, Tag::kPtr);
        a_.mov_mr64(vpay(I.dst), RCX);
        break;
      case Op::kLoadFun:
        emit_store_tag(I.dst, Tag::kFun);
        a_.mov_mi64(vpay(I.dst), static_cast<std::int32_t>(I.aux));
        break;
      case Op::kLoadNull:
        emit_store_tag(I.dst, Tag::kPtr);
        a_.mov_mi64(vpay(I.dst), 0);
        break;
      case Op::kMove:
        a_.mov_rm64(RAX, vtag(I.r1));
        a_.mov_rm64(RCX, vpay(I.r1));
        a_.mov_mr64(vtag(I.dst), RAX);
        a_.mov_mr64(vpay(I.dst), RCX);
        break;
      case Op::kUnop:
        emit_unop(I);
        break;
      case Op::kBinop:
        emit_binop(I, g);
        break;
      case Op::kRead:
        emit_access_prefix(I, 0, g);
        a_.mov_rm32(RCX, mem(RAX, kBlockCount));
        a_.cmp_rr(RDX, RCX);
        a_.jcc(kAe, g);
        a_.shl_ri(RDX, 4);
        a_.cmp_mi8(mem(RAX, RDX, 1, kBlockPayload), I.sub);
        a_.jcc(kNe, g);
        a_.mov_rm64(RCX, mem(RAX, RDX, 1, kBlockPayload));
        a_.mov_rm64(RSI, mem(RAX, RDX, 1, kBlockPayload + 8));
        a_.mov_mr64(vtag(I.dst), RCX);
        a_.mov_mr64(vpay(I.dst), RSI);
        break;
      case Op::kRawLoad:
        emit_access_prefix(I, 1, g);
        emit_raw_bounds(I.sub, g);
        switch (I.sub) {
          case 8: a_.mov_rm64(RCX, mem(RAX, RDX, 1, kBlockPayload)); break;
          case 4: a_.movsx32_rm(RCX, mem(RAX, RDX, 1, kBlockPayload)); break;
          case 2: a_.movsx16_rm(RCX, mem(RAX, RDX, 1, kBlockPayload)); break;
          default: a_.movsx8_rm(RCX, mem(RAX, RDX, 1, kBlockPayload)); break;
        }
        emit_store_int_result(I.dst, RCX);
        break;
      case Op::kRawLoadF:
        emit_access_prefix(I, 1, g);
        emit_raw_bounds(8, g);
        a_.mov_rm64(RCX, mem(RAX, RDX, 1, kBlockPayload));
        emit_store_tag(I.dst, Tag::kFloat);
        a_.mov_mr64(vpay(I.dst), RCX);
        break;
      case Op::kLen:
        emit_deref(I.r1, g);
        a_.mov_rm32(RCX, mem(RAX, kBlockCount));
        emit_store_int_result(I.dst, RCX);
        break;
      case Op::kPtrAdd:
        emit_eff(I.r1, I.r2, g);
        a_.mov_rm32(RCX, vidx(I.r1));
        a_.shl_ri(RDX, 32);
        a_.or_rr(RDX, RCX);
        emit_store_tag(I.dst, Tag::kPtr);
        a_.mov_mr64(vpay(I.dst), RDX);
        break;
      default:
        break;  // control ops handled by the chunk driver
    }
  }

  void emit_unop(const Insn& I) {
    switch (I.sub) {
      case 0:  // neg
        a_.mov_rm64(RAX, vpay(I.r1));
        a_.neg_r(RAX);
        emit_store_int_result(I.dst, RAX);
        break;
      case 1:  // not
        a_.mov_rm64(RAX, vpay(I.r1));
        a_.xor_rr(RCX, RCX);
        a_.test_rr(RAX, RAX);
        a_.setcc(kE, RCX);
        emit_store_int_result(I.dst, RCX);
        break;
      case 2:  // bitnot
        a_.mov_rm64(RAX, vpay(I.r1));
        a_.not_r(RAX);
        emit_store_int_result(I.dst, RAX);
        break;
      case 3:  // fneg: flip the sign bit, exactly IEEE negation
        a_.mov_rm64(RAX, vpay(I.r1));
        a_.mov_ri64(RCX, 0x8000000000000000ULL);
        a_.xor_rr(RAX, RCX);
        emit_store_tag(I.dst, Tag::kFloat);
        a_.mov_mr64(vpay(I.dst), RAX);
        break;
      case 4:  // int_of_float: cvttsd2si, same as the compiled C++ cast
        a_.movsd_xm(XMM0, vpay(I.r1));
        a_.cvttsd2si(RAX, XMM0);
        emit_store_int_result(I.dst, RAX);
        break;
      default:  // 5: float_of_int
        a_.mov_rm64(RAX, vpay(I.r1));
        a_.cvtsi2sd(XMM0, RAX);
        emit_store_tag(I.dst, Tag::kFloat);
        a_.movsd_mx(vpay(I.dst), XMM0);
        break;
    }
  }

  void emit_binop(const Insn& I, Assembler::Label g) {
    using fir_sub = std::uint8_t;
    const fir_sub s = I.sub;
    if (is_float_arith(s)) {
      a_.movsd_xm(XMM0, vpay(I.r1));
      a_.movsd_xm(XMM1, vpay(I.r2));
      switch (s) {
        case 16: a_.addsd(XMM0, XMM1); break;
        case 17: a_.subsd(XMM0, XMM1); break;
        case 18: a_.mulsd(XMM0, XMM1); break;
        default: a_.divsd(XMM0, XMM1); break;
      }
      emit_store_tag(I.dst, Tag::kFloat);
      a_.movsd_mx(vpay(I.dst), XMM0);
      return;
    }
    if (is_float_cmp(s)) {
      // cmpsd predicates: 0=eq 1=lt 2=le 4=neq; gt/ge via operand swap.
      // Ordered predicates are false on NaN, matching C++ <, <=, ==; NEQ
      // is true on NaN, matching !=.
      bool swap = s == 22 || s == 23;  // FGt, FGe
      std::uint8_t pred;
      switch (s) {
        case 20: pred = 1; break;  // FLt
        case 21: pred = 2; break;  // FLe
        case 22: pred = 1; break;  // FGt  (b < a)
        case 23: pred = 2; break;  // FGe  (b <= a)
        case 24: pred = 0; break;  // FEq
        default: pred = 4; break;  // FNe
      }
      a_.movsd_xm(XMM0, vpay(swap ? I.r2 : I.r1));
      a_.movsd_xm(XMM1, vpay(swap ? I.r1 : I.r2));
      a_.cmpsd(XMM0, XMM1, pred);
      a_.movq_rx(RAX, XMM0);
      a_.and_ri(RAX, 1);
      emit_store_int_result(I.dst, RAX);
      return;
    }
    // Integer forms.
    switch (s) {
      case 0: case 1: case 2: case 5: case 6: case 7:  // add sub mul and or xor
        a_.mov_rm64(RAX, vpay(I.r1));
        a_.mov_rm64(RCX, vpay(I.r2));
        switch (s) {
          case 0: a_.add_rr(RAX, RCX); break;
          case 1: a_.sub_rr(RAX, RCX); break;
          case 2: a_.imul_rr(RAX, RCX); break;
          case 5: a_.and_rr(RAX, RCX); break;
          case 6: a_.or_rr(RAX, RCX); break;
          default: a_.xor_rr(RAX, RCX); break;
        }
        emit_store_int_result(I.dst, RAX);
        break;
      case 3: case 4: {  // div, mod: zero divisor deopts (interpreter raises)
        a_.mov_rm64(RAX, vpay(I.r1));
        a_.mov_rm64(RCX, vpay(I.r2));
        a_.test_rr(RCX, RCX);
        a_.jcc(kE, g);
        a_.cqo();
        a_.idiv_r(RCX);
        emit_store_int_result(I.dst, s == 3 ? RAX : RDX);
        break;
      }
      case 8: case 9:  // shl, shr — hardware masks the count to 63, as eval does
        a_.mov_rm64(RAX, vpay(I.r1));
        a_.mov_rm64(RCX, vpay(I.r2));
        if (s == 8) a_.shl_cl(RAX);
        else a_.sar_cl(RAX);
        emit_store_int_result(I.dst, RAX);
        break;
      default: {  // comparisons 10..15
        Cc cc;
        switch (s) {
          case 10: cc = kL; break;
          case 11: cc = kLe; break;
          case 12: cc = kG; break;
          case 13: cc = kGe; break;
          case 14: cc = kE; break;
          default: cc = kNe; break;
        }
        a_.xor_rr(RCX, RCX);
        a_.mov_rm64(RAX, vpay(I.r1));
        a_.cmp_rm64(RAX, vpay(I.r2));
        a_.setcc(cc, RCX);
        emit_store_int_result(I.dst, RCX);
        break;
      }
    }
  }

  void emit_slow_op(const Insn& I, const Plan& plan, Assembler::Label trap,
                    Assembler::Label g) {
    const bool hybrid = plan.act == Plan::Act::kHybrid;
    Assembler::Label slow = a_.make_label();
    Assembler::Label done = a_.make_label();
    if (hybrid) {
      // Fast path is valid only outside any speculation level: no
      // copy-on-write hook to run, and the stored value is statically
      // non-pointer so the write barrier is a no-op.
      a_.mov_rm64(RAX, mem(RBX, kCtxSpecLevels));
      a_.cmp_mi64(mem(RAX, 0), 0);
      a_.jcc(kNe, slow);
      switch (I.op) {
        case Op::kWrite:
          emit_access_prefix(I, 0, g);
          a_.mov_rm32(RCX, mem(RAX, kBlockCount));
          a_.cmp_rr(RDX, RCX);
          a_.jcc(kAe, g);
          a_.shl_ri(RDX, 4);
          a_.mov_rm64(RCX, vtag(I.r3));
          a_.mov_rm64(RSI, vpay(I.r3));
          a_.mov_mr64(mem(RAX, RDX, 1, kBlockPayload), RCX);
          a_.mov_mr64(mem(RAX, RDX, 1, kBlockPayload + 8), RSI);
          break;
        case Op::kRawStore:
          emit_access_prefix(I, 1, g);
          emit_raw_bounds(I.sub, g);
          a_.mov_rm64(RCX, vpay(I.r3));
          switch (I.sub) {
            case 8: a_.mov_mr64(mem(RAX, RDX, 1, kBlockPayload), RCX); break;
            case 4: a_.mov_mr32(mem(RAX, RDX, 1, kBlockPayload), RCX); break;
            case 2: a_.mov_mr16(mem(RAX, RDX, 1, kBlockPayload), RCX); break;
            default: a_.mov_mr8(mem(RAX, RDX, 1, kBlockPayload), RCX); break;
          }
          break;
        default:  // kRawStoreF
          emit_access_prefix(I, 1, g);
          emit_raw_bounds(8, g);
          a_.mov_rm64(RCX, vpay(I.r3));
          a_.mov_mr64(mem(RAX, RDX, 1, kBlockPayload), RCX);
          break;
      }
      a_.jmp(done);
    }
    a_.bind(slow);
    switch (I.op) {
      case Op::kAllocTagged:
        emit_helper_call(reinterpret_cast<const void*>(&moj_nat_alloc_tagged),
                         3, {I.r1, I.r2, I.dst, 0}, trap);
        break;
      case Op::kAllocRaw:
        emit_helper_call(reinterpret_cast<const void*>(&moj_nat_alloc_raw), 2,
                         {I.r1, I.dst, 0, 0}, trap);
        break;
      case Op::kWrite:
        emit_helper_call(reinterpret_cast<const void*>(&moj_nat_write_slot), 3,
                         {I.r1, I.r2, I.r3, 0}, trap);
        break;
      case Op::kRawStore:
        emit_helper_call(reinterpret_cast<const void*>(&moj_nat_raw_store), 4,
                         {I.r1, I.r2, I.r3, I.sub}, trap);
        break;
      default:  // kRawStoreF
        emit_helper_call(reinterpret_cast<const void*>(&moj_nat_raw_store_f),
                         3, {I.r1, I.r2, I.r3, 0}, trap);
        break;
    }
    a_.bind(done);
  }

  void emit_direct_jump(const Insn& I, std::uint32_t pc, const Plan& plan,
                        const ClassCounts& prefix, std::int32_t refund,
                        const ClassCounts& full) {
    // Resolve the target's native entry; a not-yet-compiled target deopts
    // at this pc and the interpreter performs the transfer (which feeds the
    // target's own hotness counter).
    a_.mov_rm64(R9, mem(RBX, kCtxEntries));
    a_.mov_rm64(R9, mem(R9, static_cast<std::int32_t>(8 * plan.callee)));
    a_.test_rr(R9, R9);
    a_.jcc(kE, stub(pc, DeoptReason::kColdTarget, prefix, refund));
    // The transfer completes natively: account the whole chunk and the call.
    emit_counts_add(full);
    a_.mov_rm64(RCX, mem(RBX, kCtxCalls));
    a_.inc_m64(mem(RCX, 0));
    // Parallel argument move through argbuf (args may overlap the low
    // registers they land in). The common self-loop shape args[i] == i
    // needs no move at all.
    bool trivial = true;
    for (std::size_t i = 0; i < I.args.size(); ++i) {
      trivial = trivial && I.args[i] == i;
    }
    if (!trivial) {
      a_.mov_rm64(RCX, mem(RBX, kCtxArgbuf));
      for (std::size_t i = 0; i < I.args.size(); ++i) {
        const std::int32_t off = static_cast<std::int32_t>(16 * i);
        a_.mov_rm64(RDX, vtag(I.args[i]));
        a_.mov_mr64(mem(RCX, off), RDX);
        a_.mov_rm64(RDX, vpay(I.args[i]));
        a_.mov_mr64(mem(RCX, off + 8), RDX);
      }
      for (std::size_t i = 0; i < I.args.size(); ++i) {
        const std::int32_t off = static_cast<std::int32_t>(16 * i);
        a_.mov_rm64(RDX, mem(RCX, off));
        a_.mov_mr64(vtag(static_cast<std::uint16_t>(i)), RDX);
        a_.mov_rm64(RDX, mem(RCX, off + 8));
        a_.mov_mr64(vpay(static_cast<std::uint16_t>(i)), RDX);
      }
    }
    a_.jmp_r(R9);
  }

  void emit_chunk(std::uint32_t start) {
    a_.bind(chunk_label(start));
    if (start >= f_.code.size()) {
      // Control fell off the end: deopt; the interpreter raises the
      // canonical "program counter fell off the end" error.
      a_.jmp(stub(start, DeoptReason::kGuard, ClassCounts{}, 0));
      return;
    }
    const std::uint32_t end = chunk_end(start);
    const auto cost = static_cast<std::int32_t>(end - start);
    // Pre-pay the chunk's instruction budget; exits refund the unexecuted
    // suffix, so the interpreter's exhaustion point is reproduced exactly.
    a_.sub_mi64(mem(RBX, kCtxBudget), cost);
    a_.jcc(kS, stub(start, DeoptReason::kBudget, ClassCounts{}, cost));

    State st = in_states_.at(start);
    ClassCounts prefix{};
    std::int32_t done_insns = 0;
    for (std::uint32_t pc = start; pc < end; ++pc) {
      const Insn& I = f_.code[pc];
      const std::int32_t refund = cost - done_insns;
      Plan plan;
      if (!plan_insn(prog_, f_, I, st, plan, err_)) return;

      if (plan.act == Plan::Act::kDeopt) {
        emit_insn(I, pc, plan, prefix, refund);  // guards (none) — no-op
        a_.jmp(stub(pc, plan.reason, prefix, refund));
        return;
      }

      if (I.op == Op::kJump) {
        ClassCounts full = prefix;
        full[I.cls] += 1;
        emit_counts_add(full);
        a_.jmp(chunk_label(I.aux));
        return;
      }
      if (I.op == Op::kJumpIfZero) {
        emit_insn(I, pc, plan, prefix, refund);  // guards only
        ClassCounts full = prefix;
        full[I.cls] += 1;
        emit_counts_add(full);
        a_.mov_rm64(RAX, vpay(I.r1));
        a_.test_rr(RAX, RAX);
        a_.jcc(kE, chunk_label(I.aux));
        a_.jmp(chunk_label(pc + 1));
        return;
      }
      if (plan.act == Plan::Act::kDirect) {
        ClassCounts full = prefix;
        full[I.cls] += 1;
        emit_direct_jump(I, pc, plan, prefix, refund, full);
        return;
      }

      emit_insn(I, pc, plan, prefix, refund);
      prefix[I.cls] += 1;
      ++done_insns;
    }
    // Fell through to the next leader.
    emit_counts_add(prefix);
    a_.jmp(chunk_label(end));
  }

  void emit() {
    // Prologue (the C-callable entry, offset 0).
    a_.push_r(RBX);
    a_.push_r(R12);
    a_.push_r(R13);  // third push keeps rsp 16-aligned at helper calls
    a_.mov_rr(RBX, RDI);
    a_.mov_rm64(R12, mem(RBX, kCtxFrame));

    // The jump entry replays the interpreter's regs_.assign(num_regs, unit)
    // for non-argument registers; arguments were placed by the caller.
    jump_entry_ = static_cast<std::size_t>(a_.pos());
    for (std::uint16_t r = f_.arity; r < f_.num_regs; ++r) {
      a_.mov_mi64(vtag(r), 0);
      a_.mov_mi64(vpay(r), 0);
    }

    // Chunks in ascending order; the entry chunk (pc 0) comes first, so
    // the jump entry falls straight into it.
    std::vector<std::uint32_t> order;
    for (const auto& [start, state] : in_states_) order.push_back(start);
    std::sort(order.begin(), order.end());
    for (const std::uint32_t start : order) {
      emit_chunk(start);
      if (!err_.empty()) return;
    }

    // Deoptimization stubs. (stubs_ may grow while emitting — index loop.)
    for (std::size_t i = 0; i < stubs_.size(); ++i) {
      const DeoptStub s = stubs_[i];
      a_.bind(s.label);
      if (s.refund != 0) a_.add_mi64(mem(RBX, kCtxBudget), s.refund);
      emit_counts_add(s.counts);
      a_.mov_mi32(mem(RBX, kCtxDeoptFun), static_cast<std::int32_t>(fun_));
      a_.mov_mi32(mem(RBX, kCtxDeoptPc), static_cast<std::int32_t>(s.pc));
      a_.mov_mi32(mem(RBX, kCtxDeoptReason),
                  static_cast<std::int32_t>(s.reason));
      a_.jmp(epilogue_);
    }

    a_.bind(epilogue_);
    a_.pop_r(R13);
    a_.pop_r(R12);
    a_.pop_r(RBX);
    a_.ret();
  }

  const CompiledProgram& prog_;
  const FunIndex fun_;
  const CompiledFunction& f_;

  Assembler a_;
  Assembler::Label epilogue_ = a_.make_label();
  std::set<std::uint32_t> leaders_;
  std::map<std::uint32_t, State> in_states_;
  std::map<std::uint32_t, Assembler::Label> chunk_labels_;
  std::vector<DeoptStub> stubs_;
  std::size_t jump_entry_ = 0;
  std::string err_;
};

}  // namespace

CompileResult compile_function(const CompiledProgram& prog, FunIndex fun) {
  if (fun >= prog.functions.size()) {
    CompileResult r;
    r.error = "function index out of range";
    return r;
  }
  return FunctionCompiler(prog, fun).run();
}

}  // namespace mojave::native
