// Executable code cache: mmap-backed, W^X.
//
// Regions are mapped read+write while code is being emitted into them and
// flipped to read+execute before the first call — the mapping is never
// writable and executable at the same time. Allocation is bump-pointer
// within fixed-size regions; compiled functions are immortal for the
// engine's lifetime (deoptimization makes recompilation unnecessary), so
// there is no free list.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mojave::native {

class CodeCache {
 public:
  CodeCache() = default;
  ~CodeCache();

  CodeCache(const CodeCache&) = delete;
  CodeCache& operator=(const CodeCache&) = delete;

  /// Copy `code` into executable memory and return its address, or nullptr
  /// if mapping fails. The returned code is already PROT_READ|PROT_EXEC.
  [[nodiscard]] const void* publish(const std::uint8_t* code,
                                    std::size_t size);

  /// Bytes of emitted machine code (not counting region slack).
  [[nodiscard]] std::size_t used_bytes() const { return used_; }
  /// Bytes of mapped executable regions.
  [[nodiscard]] std::size_t mapped_bytes() const { return mapped_; }

 private:
  struct Region {
    std::uint8_t* base = nullptr;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  [[nodiscard]] Region* region_with(std::size_t size);

  std::vector<Region> regions_;
  std::size_t used_ = 0;
  std::size_t mapped_ = 0;
};

}  // namespace mojave::native
