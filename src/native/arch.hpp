// Host capability probe for the native execution tier.
//
// The tier engages only when (a) the build targets x86-64 and (b) the
// process may actually map, write, and execute code pages (W^X style:
// never writable and executable at once). Anything else — other ISAs,
// hardened containers with a no-exec mmap policy — reports unsupported
// and the VM transparently stays on the interpreter.
#pragma once

#include <string>

namespace mojave::native {

/// True when JIT-compiled code can run on this host. The first call runs
/// the runtime probe (an mmap/mprotect/execute round trip of a trivial
/// stub); the result is cached for the process lifetime.
[[nodiscard]] bool jit_supported();

/// Human-readable reason when jit_supported() is false ("ok" otherwise).
[[nodiscard]] const std::string& jit_support_reason();

}  // namespace mojave::native
