#include "native/codecache.hpp"

#include <cstring>

#if defined(__linux__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define MOJAVE_CODECACHE_MMAP 1
#else
#define MOJAVE_CODECACHE_MMAP 0
#endif

namespace mojave::native {

namespace {

std::size_t page_size() {
#if MOJAVE_CODECACHE_MMAP
  const long p = sysconf(_SC_PAGESIZE);
  return p > 0 ? static_cast<std::size_t>(p) : 4096;
#else
  return 4096;
#endif
}

constexpr std::size_t kMinRegion = 64 * 1024;

}  // namespace

CodeCache::~CodeCache() {
#if MOJAVE_CODECACHE_MMAP
  for (Region& r : regions_) {
    if (r.base != nullptr) ::munmap(r.base, r.size);
  }
#endif
}

CodeCache::Region* CodeCache::region_with(std::size_t size) {
#if !MOJAVE_CODECACHE_MMAP
  (void)size;
  return nullptr;
#else
  for (Region& r : regions_) {
    if (r.size - r.used >= size) return &r;
  }
  const std::size_t page = page_size();
  std::size_t want = kMinRegion;
  while (want < size) want *= 2;
  want = (want + page - 1) & ~(page - 1);
  void* mem = ::mmap(nullptr, want, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) return nullptr;
  regions_.push_back(
      Region{static_cast<std::uint8_t*>(mem), want, 0});
  mapped_ += want;
  return &regions_.back();
#endif
}

const void* CodeCache::publish(const std::uint8_t* code, std::size_t size) {
#if !MOJAVE_CODECACHE_MMAP
  (void)code;
  (void)size;
  return nullptr;
#else
  if (size == 0) return nullptr;
  // Keep every function 16-byte aligned for the emitter's jump targets.
  const std::size_t aligned = (size + 15) & ~std::size_t{15};
  Region* r = region_with(aligned);
  if (r == nullptr) return nullptr;
  std::uint8_t* dst = r->base + r->used;

  // Flip the whole region writable, emit, flip back to executable. The
  // engine is single-threaded per interpreter, and regions are private to
  // one engine, so no other thread can observe the writable window.
  if (::mprotect(r->base, r->size, PROT_READ | PROT_WRITE) != 0) {
    return nullptr;
  }
  std::memcpy(dst, code, size);
  if (::mprotect(r->base, r->size, PROT_READ | PROT_EXEC) != 0) {
    return nullptr;
  }
  r->used += aligned;
  used_ += size;
  return dst;
#endif
}

}  // namespace mojave::native
