// The native tier's machine-level contract.
//
// Compiled code receives a single NativeContext* and communicates with the
// VM exclusively through it: the virtual register frame it mutates, the
// pointer-table / speculation mirrors it reads for inlined safety checks,
// the instruction accounting it maintains, and the deoptimization record
// it fills in before every exit. Native code NEVER completes a control
// transfer (`speculate`, `migrate`, commit/rollback, external calls, halt)
// itself — each such site is a deoptimization point that materializes the
// full interpreter frame state and returns, so a natively-running rank can
// roll back, checkpoint, or migrate exactly like an interpreted one.
//
// Register convention inside compiled code (System V x86-64 host):
//   rbx  NativeContext*                (callee-saved, pinned for the run)
//   r12  frame base (runtime::Value*)  (callee-saved, pinned for the run)
//   rax, rcx, rdx, rsi, rdi, r8-r11, xmm0-xmm2   per-instruction scratch
//
// Every bytecode instruction compiles memory-to-memory over the frame, so
// no VM state lives in machine registers across a C helper call — which is
// what makes every helper call (allocation, hooked writes) a GC safepoint
// for free: the frame is always fully materialized.
#pragma once

#include <cstddef>
#include <cstdint>

#include "runtime/block.hpp"
#include "runtime/pointer_table.hpp"
#include "runtime/value.hpp"
#include "support/common.hpp"

namespace mojave::runtime {
class Heap;
}

namespace mojave::native {

/// Why compiled code handed control back to the interpreter. The deopting
/// instruction is never counted as retired — the interpreter re-executes
/// it, so both the side effects and any error raised are bit-identical to
/// a pure interpreter run.
enum class DeoptReason : std::uint32_t {
  kSpeculate = 0,  ///< `speculate` site: interpreter captures the level
  kCommit,         ///< commit site
  kRollback,       ///< rollback / abort site
  kMigrate,        ///< `migrate` site (also checkpoint-yield, via its hook)
  kHalt,           ///< program halt
  kExternal,       ///< host external call
  kCall,           ///< transfer the compiler could not bind statically
  kColdTarget,     ///< direct-jump target not (yet) compiled
  kGuard,          ///< inlined safety check failed; interpreter will raise
  kHelperTrap,     ///< C++ helper caught a VM exception; re-raised on replay
  kBudget,         ///< instruction budget cannot cover the next block
  kUnsupported,    ///< instruction outside the compiled subset
};

inline constexpr std::size_t kNumDeoptReasons = 12;

[[nodiscard]] constexpr const char* deopt_reason_name(DeoptReason r) {
  switch (r) {
    case DeoptReason::kSpeculate: return "speculate";
    case DeoptReason::kCommit: return "commit";
    case DeoptReason::kRollback: return "rollback";
    case DeoptReason::kMigrate: return "migrate";
    case DeoptReason::kHalt: return "halt";
    case DeoptReason::kExternal: return "external";
    case DeoptReason::kCall: return "call";
    case DeoptReason::kColdTarget: return "cold_target";
    case DeoptReason::kGuard: return "guard";
    case DeoptReason::kHelperTrap: return "helper_trap";
    case DeoptReason::kBudget: return "budget";
    case DeoptReason::kUnsupported: return "unsupported";
  }
  return "?";
}

/// The single argument passed to compiled code. Field offsets are baked
/// into emitted instructions; the static_asserts below pin the layout.
struct NativeContext {
  /// Virtual register frame: `max(num_regs)` Values, engine-owned, GC root.
  runtime::Value* frame = nullptr;
  /// Pointer-table mirror for inlined dereference validation.
  const runtime::PointerTable::View* table_view = nullptr;
  /// Active speculation level count; nonzero routes writes to the helper.
  const std::uint64_t* spec_levels = nullptr;
  /// The interpreter's per-opcode-class counters (kNumOpClasses entries);
  /// compiled code adds retired-block deltas directly.
  std::uint64_t* class_counts = nullptr;
  /// The interpreter's lifetime call counter; bumped on direct jumps.
  std::uint64_t* calls = nullptr;
  /// Remaining instruction budget. Decremented per block; a block only
  /// executes if it fits entirely, so the budget never overshoots.
  std::int64_t budget_left = 0;
  /// Per-function native entry points (post-prologue), null until
  /// compiled; read by direct-jump sequences.
  const void* const* entries = nullptr;
  /// Interned string blocks (interpreter's string_blocks_.data()).
  const BlockIndex* string_indices = nullptr;
  runtime::Heap* heap = nullptr;
  /// Scratch for the parallel move at direct jumps (kMaxDirectArgs Values).
  runtime::Value* argbuf = nullptr;
  /// Deopt record: function / bytecode pc / reason to resume interpreting.
  std::uint32_t deopt_fun = 0;
  std::uint32_t deopt_pc = 0;
  std::uint32_t deopt_reason = 0;
  std::uint32_t reserved_ = 0;
};

using NativeFn = void (*)(NativeContext*);

inline constexpr std::size_t kMaxDirectArgs = 32;

// Offsets baked into emitted code.
inline constexpr std::int32_t kCtxFrame = 0;
inline constexpr std::int32_t kCtxTableView = 8;
inline constexpr std::int32_t kCtxSpecLevels = 16;
inline constexpr std::int32_t kCtxClassCounts = 24;
inline constexpr std::int32_t kCtxCalls = 32;
inline constexpr std::int32_t kCtxBudget = 40;
inline constexpr std::int32_t kCtxEntries = 48;
inline constexpr std::int32_t kCtxStrings = 56;
inline constexpr std::int32_t kCtxHeap = 64;
inline constexpr std::int32_t kCtxArgbuf = 72;
inline constexpr std::int32_t kCtxDeoptFun = 80;
inline constexpr std::int32_t kCtxDeoptPc = 84;
inline constexpr std::int32_t kCtxDeoptReason = 88;

static_assert(offsetof(NativeContext, frame) == kCtxFrame);
static_assert(offsetof(NativeContext, table_view) == kCtxTableView);
static_assert(offsetof(NativeContext, spec_levels) == kCtxSpecLevels);
static_assert(offsetof(NativeContext, class_counts) == kCtxClassCounts);
static_assert(offsetof(NativeContext, calls) == kCtxCalls);
static_assert(offsetof(NativeContext, budget_left) == kCtxBudget);
static_assert(offsetof(NativeContext, entries) == kCtxEntries);
static_assert(offsetof(NativeContext, string_indices) == kCtxStrings);
static_assert(offsetof(NativeContext, heap) == kCtxHeap);
static_assert(offsetof(NativeContext, argbuf) == kCtxArgbuf);
static_assert(offsetof(NativeContext, deopt_fun) == kCtxDeoptFun);
static_assert(offsetof(NativeContext, deopt_pc) == kCtxDeoptPc);
static_assert(offsetof(NativeContext, deopt_reason) == kCtxDeoptReason);

// runtime::Value layout assumed by frame loads/stores.
static_assert(sizeof(runtime::Value) == 16);
inline constexpr std::int32_t kValTag = 0;
inline constexpr std::int32_t kValPayload = 8;
inline constexpr std::int32_t kValPtrIndex = 8;   ///< PtrValue.index
inline constexpr std::int32_t kValPtrOffset = 12; ///< PtrValue.offset

// runtime::Block layout assumed by inlined heap accesses.
static_assert(sizeof(runtime::Block) == 32);
static_assert(offsetof(runtime::BlockHeader, index) == 16);
static_assert(offsetof(runtime::BlockHeader, count) == 20);
static_assert(offsetof(runtime::BlockHeader, kind) == 24);
inline constexpr std::int32_t kBlockCount = 20;
inline constexpr std::int32_t kBlockKind = 24;
inline constexpr std::int32_t kBlockPayload = 32;

// PointerTable::View layout.
static_assert(offsetof(runtime::PointerTable::View, data) == 0);
static_assert(offsetof(runtime::PointerTable::View, size) == 8);

}  // namespace mojave::native
