// Native-tier configuration, shared by the VM (which owns the policy
// switches) and the engine (which applies them). Kept dependency-free so
// vm/interpreter.hpp can include it without pulling the whole tier in.
#pragma once

#include <cstdint>
#include <string>

namespace mojave::native {

struct JitOptions {
  /// Master switch. When false — or when the host probe reports the tier
  /// unsupported — the VM never instantiates an Engine and runs purely
  /// interpreted.
  bool enabled = true;
  /// Number of interpreter-observed control transfers into a function
  /// before it is compiled. Transfers that stay inside native code (direct
  /// jumps) do not count: they are already running compiled.
  std::uint32_t threshold = 64;
};

/// Parse a `--jit=` / MOJAVE_JIT specification: "on", "off", "1", "0",
/// "threshold=N" (implies on), or comma-combinations ("on,threshold=10").
/// Returns false (leaving `out` untouched) on a malformed spec.
[[nodiscard]] bool parse_jit_spec(const std::string& spec, JitOptions& out);

/// `out` after applying the MOJAVE_JIT environment variable, if set and
/// well-formed, over the built-in defaults.
[[nodiscard]] JitOptions jit_options_from_env();

}  // namespace mojave::native
