#include "native/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>

#include "native/compiler.hpp"
#include "obs/metrics.hpp"
#include "vm/eval.hpp"

namespace mojave::native {

using runtime::PtrValue;
using runtime::Value;

// --- C helpers (see helpers.hpp for the contract) ---------------------------
//
// Each helper replays the interpreter's case block for its opcode through
// the same heap entry points, so allocation hooks, copy-on-write and write
// barriers behave identically. Any VM exception is swallowed into a 0
// return: the caller deoptimizes and the interpreter re-executes the
// instruction, raising the identical error through a normal unwind path.

extern "C" std::uint64_t moj_nat_alloc_tagged(NativeContext* ctx,
                                              std::uint64_t nreg,
                                              std::uint64_t initreg,
                                              std::uint64_t dstreg) {
  try {
    Value* frame = ctx->frame;
    const std::int64_t n = frame[nreg].as_int();
    if (n < 0 || n > static_cast<std::int64_t>(UINT32_MAX)) return 0;
    const Value init = frame[initreg];
    frame[dstreg] = Value::from_ptr(
        ctx->heap->alloc_tagged(static_cast<std::uint32_t>(n), init), 0);
    return 1;
  } catch (...) {
    return 0;
  }
}

extern "C" std::uint64_t moj_nat_alloc_raw(NativeContext* ctx,
                                           std::uint64_t nreg,
                                           std::uint64_t dstreg) {
  try {
    Value* frame = ctx->frame;
    const std::int64_t n = frame[nreg].as_int();
    if (n < 0 || n > static_cast<std::int64_t>(UINT32_MAX)) return 0;
    frame[dstreg] = Value::from_ptr(
        ctx->heap->alloc_raw(static_cast<std::uint32_t>(n)), 0);
    return 1;
  } catch (...) {
    return 0;
  }
}

extern "C" std::uint64_t moj_nat_write_slot(NativeContext* ctx,
                                            std::uint64_t preg,
                                            std::uint64_t offreg,
                                            std::uint64_t vreg) {
  try {
    Value* frame = ctx->frame;
    const PtrValue p = frame[preg].as_ptr();
    const std::uint32_t off =
        vm::effective_offset(p, frame[offreg].as_int());
    ctx->heap->write_slot(p.index, off, frame[vreg]);
    return 1;
  } catch (...) {
    return 0;
  }
}

extern "C" std::uint64_t moj_nat_raw_store(NativeContext* ctx,
                                           std::uint64_t preg,
                                           std::uint64_t offreg,
                                           std::uint64_t vreg,
                                           std::uint64_t width) {
  try {
    Value* frame = ctx->frame;
    const PtrValue p = frame[preg].as_ptr();
    const std::uint32_t off =
        vm::effective_offset(p, frame[offreg].as_int());
    ctx->heap->raw_store(p.index, off, static_cast<std::uint32_t>(width),
                         frame[vreg].as_int());
    return 1;
  } catch (...) {
    return 0;
  }
}

extern "C" std::uint64_t moj_nat_raw_store_f(NativeContext* ctx,
                                             std::uint64_t preg,
                                             std::uint64_t offreg,
                                             std::uint64_t vreg) {
  try {
    Value* frame = ctx->frame;
    const PtrValue p = frame[preg].as_ptr();
    const std::uint32_t off =
        vm::effective_offset(p, frame[offreg].as_int());
    ctx->heap->raw_store_f64(p.index, off, frame[vreg].as_float());
    return 1;
  } catch (...) {
    return 0;
  }
}

// --- Options ----------------------------------------------------------------

bool parse_jit_spec(const std::string& spec, JitOptions& out) {
  if (spec.empty()) return false;
  JitOptions r = out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string part =
        comma == std::string::npos ? spec.substr(pos)
                                   : spec.substr(pos, comma - pos);
    if (part == "on" || part == "1") {
      r.enabled = true;
    } else if (part == "off" || part == "0") {
      r.enabled = false;
    } else if (part.rfind("threshold=", 0) == 0) {
      const std::string num = part.substr(10);
      if (num.empty() ||
          num.find_first_not_of("0123456789") != std::string::npos ||
          num.size() > 9) {
        return false;
      }
      r.threshold = static_cast<std::uint32_t>(std::stoul(num));
      r.enabled = true;
    } else {
      return false;
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  out = r;
  return true;
}

JitOptions jit_options_from_env() {
  JitOptions o;
  if (const char* env = std::getenv("MOJAVE_JIT")) {
    (void)parse_jit_spec(env, o);  // malformed env spec: keep defaults
  }
  return o;
}

// --- Engine -----------------------------------------------------------------

Engine::Engine(runtime::Heap& heap, spec::SpeculationManager& spec,
               const vm::CompiledProgram& prog, JitOptions opts)
    : heap_(heap), spec_(spec), prog_(prog), opts_(opts) {
  const std::size_t n = prog_.functions.size();
  status_.assign(n, Status::kCold);
  hot_.assign(n, 0);
  entries_.assign(n, nullptr);
  full_entries_.assign(n, nullptr);

  std::size_t max_regs = 1;
  for (const vm::CompiledFunction& f : prog_.functions) {
    max_regs = std::max(max_regs, static_cast<std::size_t>(f.num_regs));
  }
  frame_.assign(max_regs, Value::unit());
  argbuf_.assign(kMaxDirectArgs, Value::unit());

  auto& reg = obs::MetricsRegistry::instance();
  compiled_funcs_metric_ = &reg.counter("native.compiled_funcs");
  code_cache_bytes_metric_ = &reg.gauge("native.code_cache_bytes");
  compile_us_metric_ = &reg.histogram("native.compile_us");
  for (std::size_t i = 0; i < kNumDeoptReasons; ++i) {
    deopt_metrics_[i] = &reg.counter(
        std::string("native.deopts.") +
        deopt_reason_name(static_cast<DeoptReason>(i)));
  }

  heap_.add_root_provider(this);
}

Engine::~Engine() { heap_.remove_root_provider(this); }

void Engine::enumerate_roots(runtime::RootVisitor& visitor) {
  for (const Value& v : frame_) visitor.value_root(v);
  for (const Value& v : argbuf_) visitor.value_root(v);
}

void Engine::compile(FunIndex fun) {
  const auto t0 = std::chrono::steady_clock::now();
  const CompileResult r = compile_function(prog_, fun);
  Status st = Status::kFailed;
  if (r.ok) {
    const void* code = cache_.publish(r.code.data(), r.code.size());
    if (code != nullptr) {
      full_entries_[fun] =
          reinterpret_cast<NativeFn>(reinterpret_cast<std::uintptr_t>(code));
      entries_[fun] =
          static_cast<const std::uint8_t*>(code) + r.jump_entry;
      st = Status::kCompiled;
      ++compiled_;
      compiled_funcs_metric_->inc();
      code_cache_bytes_metric_->set(
          static_cast<std::int64_t>(cache_.used_bytes()));
    }
  }
  status_[fun] = st;
  const auto dt = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - t0);
  compile_us_metric_->record_us(static_cast<double>(dt.count()) / 1000.0);
}

bool Engine::try_run(RunIo& io) {
  const FunIndex fun = io.fun;
  if (fun >= status_.size()) return false;
  if (status_[fun] != Status::kCompiled) {
    if (status_[fun] != Status::kCold) return false;
    if (++hot_[fun] < opts_.threshold) return false;
    compile(fun);
    if (status_[fun] != Status::kCompiled) return false;
  }
  // A shrunken string table (possible mid-unpack) would invalidate the
  // static bounds proof behind kLoadString; refuse to run.
  if (io.strings->size() < prog_.strings.size()) return false;
  if (io.budget <= 0) return false;

  NativeContext ctx;
  ctx.frame = frame_.data();
  ctx.table_view = heap_.table().view();
  ctx.spec_levels = spec_.level_count_addr();
  ctx.class_counts = io.class_counts;
  ctx.calls = io.calls;
  ctx.budget_left = io.budget;
  ctx.entries = entries_.data();
  ctx.string_indices = io.strings->data();
  ctx.heap = &heap_;
  ctx.argbuf = argbuf_.data();
  ctx.deopt_fun = fun;
  ctx.deopt_pc = 0;
  ctx.deopt_reason = static_cast<std::uint32_t>(DeoptReason::kGuard);

  std::copy(io.regs->begin(), io.regs->end(), frame_.begin());

  full_entries_[fun](&ctx);

  // Rebuild the interpreter's register file at the deopt point: compiled
  // code keeps the frame current instruction-by-instruction, so this is
  // exactly the state a pure interpreter would hold at (deopt_fun, pc).
  const vm::CompiledFunction& df = prog_.functions[ctx.deopt_fun];
  io.regs->assign(df.num_regs, Value::unit());
  std::copy(frame_.begin(), frame_.begin() + df.num_regs, io.regs->begin());

  // Wipe the frame so stale values cannot linger as GC roots or survive a
  // speculation rollback-release window.
  std::fill(frame_.begin(), frame_.end(), Value::unit());
  std::fill(argbuf_.begin(), argbuf_.end(), Value::unit());

  io.budget = ctx.budget_left;
  io.fun = ctx.deopt_fun;
  io.pc = ctx.deopt_pc;
  io.reason = ctx.deopt_reason;
  if (ctx.deopt_reason < kNumDeoptReasons) {
    ++deopts_[ctx.deopt_reason];
    deopt_metrics_[ctx.deopt_reason]->inc();
  }
  return true;
}

}  // namespace mojave::native
