// Runtime event tracer: a bounded in-memory ring buffer of timestamped
// span and instant events, exportable as Chrome trace_event JSON (load the
// file in chrome://tracing or https://ui.perfetto.dev).
//
// Tracing is off by default; every record site first checks one relaxed
// atomic bool, so a disabled tracer costs a load and a branch. When
// enabled, recording is lock-free: a fetch_add claims a ring slot, the
// event is written in place, and wraparound silently overwrites the oldest
// events (the tail of a long run is usually what matters).
//
// Event names and categories must be string literals (or otherwise outlive
// the tracer) — they are stored as raw pointers so the hot path never
// allocates.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mojave::obs {

struct TraceEvent {
  const char* cat = "";
  const char* name = "";
  std::uint64_t ts_us = 0;   ///< start, microseconds since tracer epoch
  std::uint64_t dur_us = 0;  ///< span duration; unused for instants
  std::uint32_t tid = 0;
  bool instant = false;
  /// Optional single argument rendered into the event's "args" object.
  const char* arg_name = nullptr;
  std::uint64_t arg_value = 0;
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  /// The process-wide tracer.
  static Tracer& instance();

  /// Start recording into a fresh ring of `capacity` events.
  void enable(std::size_t capacity = kDefaultCapacity);
  void disable();
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since the tracer epoch (process start).
  [[nodiscard]] static std::uint64_t now_us();

  void instant(const char* cat, const char* name, const char* arg_name = nullptr,
               std::uint64_t arg_value = 0);
  void complete(const char* cat, const char* name, std::uint64_t ts_us,
                std::uint64_t dur_us, const char* arg_name = nullptr,
                std::uint64_t arg_value = 0);

  /// Events recorded since enable() — may exceed capacity() if wrapped.
  [[nodiscard]] std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  /// Render retained events (oldest first) as Chrome trace_event JSON.
  [[nodiscard]] std::string dump_chrome_json() const;

  /// Drop all recorded events, keep recording state.
  void clear();

 private:
  Tracer() = default;
  void record(const TraceEvent& e);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> head_{0};
  std::vector<TraceEvent> ring_;
  mutable std::mutex mu_;  // guards ring_ resize and dump
};

/// RAII span: times the enclosed scope and records one complete event.
/// Cheap no-op while tracing is disabled (the clock is not read).
class ScopedSpan {
 public:
  ScopedSpan(const char* cat, const char* name)
      : cat_(cat), name_(name), armed_(Tracer::instance().enabled()) {
    if (armed_) start_us_ = Tracer::now_us();
  }

  /// Attach one argument to the event (e.g. bytes moved), any time before
  /// the scope closes.
  void set_arg(const char* arg_name, std::uint64_t value) {
    arg_name_ = arg_name;
    arg_value_ = value;
  }

  /// Rename the span before it closes (e.g. a minor GC that escalated).
  void set_name(const char* name) { name_ = name; }

  ~ScopedSpan() {
    if (!armed_) return;
    const std::uint64_t end = Tracer::now_us();
    Tracer::instance().complete(cat_, name_, start_us_,
                                end > start_us_ ? end - start_us_ : 0,
                                arg_name_, arg_value_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* cat_;
  const char* name_;
  const char* arg_name_ = nullptr;
  std::uint64_t arg_value_ = 0;
  std::uint64_t start_us_ = 0;
  bool armed_;
};

}  // namespace mojave::obs
