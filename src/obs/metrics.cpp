#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace mojave::obs {

const std::array<double, Histogram::kNumBounds>& Histogram::bounds() {
  static const std::array<double, kNumBounds> b = {
      1,    2,    5,    10,   20,   50,   100,  200,  500,  1e3,  2e3,
      5e3,  1e4,  2e4,  5e4,  1e5,  2e5,  5e5,  1e6,  2e6,  5e6,  1e7};
  return b;
}

void Histogram::record_us(double us) {
  if (!(us >= 0)) us = 0;  // also catches NaN
  const auto& b = bounds();
  std::size_t i = 0;
  while (i < kNumBounds && us > b[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  const auto ns = static_cast<std::uint64_t>(us * 1e3);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  // min/max via CAS; latency events are rare enough that contention is nil.
  std::uint64_t cur = min_ns_.load(std::memory_order_relaxed);
  while (ns < cur &&
         !min_ns_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
  cur = max_ns_.load(std::memory_order_relaxed);
  while (ns > cur &&
         !max_ns_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum_us = static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) / 1e3;
  const std::uint64_t min_ns = min_ns_.load(std::memory_order_relaxed);
  s.min_us = min_ns == kNoMin ? 0 : static_cast<double>(min_ns) / 1e3;
  s.max_us = static_cast<double>(max_ns_.load(std::memory_order_relaxed)) / 1e3;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  min_ns_.store(kNoMin, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

double Histogram::Snapshot::quantile_us(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto& b = Histogram::bounds();
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= target) {
      const double lo = i == 0 ? 0 : b[i - 1];
      const double hi = i < kNumBounds ? b[i] : max_us;
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(in_bucket);
      return lo + (std::max(hi, lo) - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cum += in_bucket;
  }
  return max_us;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->snapshot();
  return s;
}

void MetricsRegistry::reset_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

namespace {

void format_double(std::ostream& out, double v) {
  // Trim to 3 decimals without trailing zeros; JSON-safe (never NaN/inf).
  if (!std::isfinite(v)) v = 0;
  std::ostringstream tmp;
  tmp.setf(std::ios::fixed);
  tmp.precision(3);
  tmp << v;
  std::string s = tmp.str();
  while (s.size() > 1 && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  out << s;
}

void json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
              << "0123456789abcdef"[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::string MetricsRegistry::dump_text() const {
  const RegistrySnapshot s = snapshot();
  std::ostringstream out;
  for (const auto& [name, v] : s.counters) {
    out << "counter " << name << " " << v << "\n";
  }
  for (const auto& [name, v] : s.gauges) {
    out << "gauge " << name << " " << v << "\n";
  }
  for (const auto& [name, h] : s.histograms) {
    out << "hist " << name << " count=" << h.count << " mean_us=";
    format_double(out, h.mean_us());
    out << " p50_us=";
    format_double(out, h.quantile_us(0.5));
    out << " p99_us=";
    format_double(out, h.quantile_us(0.99));
    out << " max_us=";
    format_double(out, h.max_us);
    out << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::dump_json() const {
  const RegistrySnapshot s = snapshot();
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : s.counters) {
    if (!first) out << ",";
    first = false;
    json_string(out, name);
    out << ":" << v;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : s.gauges) {
    if (!first) out << ",";
    first = false;
    json_string(out, name);
    out << ":" << v;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : s.histograms) {
    if (!first) out << ",";
    first = false;
    json_string(out, name);
    out << ":{\"count\":" << h.count << ",\"sum_us\":";
    format_double(out, h.sum_us);
    out << ",\"min_us\":";
    format_double(out, h.min_us);
    out << ",\"max_us\":";
    format_double(out, h.max_us);
    out << ",\"p50_us\":";
    format_double(out, h.quantile_us(0.5));
    out << ",\"p90_us\":";
    format_double(out, h.quantile_us(0.9));
    out << ",\"p99_us\":";
    format_double(out, h.quantile_us(0.99));
    out << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out << ",";
      out << h.buckets[i];
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

}  // namespace mojave::obs
