// Process-wide metrics registry: the single export path for every runtime
// statistic (GC, speculation, migration, VM, network).
//
// Design:
//  * Handles (Counter/Gauge/Histogram) are created once through the
//    registry (mutex-protected name lookup) and then held by the
//    instrumented component; the hot path is a relaxed atomic add with no
//    lock and no allocation.
//  * Histograms use fixed 1-2-5 exponential microsecond buckets, so a
//    record() is a table walk over ~24 entries and an atomic increment —
//    cheap enough for per-collection and per-message latencies.
//  * snapshot() gives a consistent-enough point-in-time copy for dumping;
//    reset() zeroes values but keeps the handles valid (benches reset
//    between phases).
//  * dump_text() / dump_json() render the whole registry; `mojc --stats`
//    and the BENCH_JSON records are built on these.
//
// The legacy per-component stats structs (GcStats, SpecStats, VmStats,
// SimStats) remain the instance-local views — their increment sites now
// dual-write into this registry, which is the process-wide aggregate.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace mojave::obs {

/// Monotonic event count. Relaxed atomic increments; no lock.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous signed level (active speculation levels, heap bytes).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket latency histogram. Values are microseconds; buckets are a
/// 1-2-5 exponential ladder from 1 µs to 10 s plus an overflow bucket.
class Histogram {
 public:
  static constexpr std::size_t kNumBounds = 22;
  static constexpr std::size_t kNumBuckets = kNumBounds + 1;  // + overflow

  /// Upper bounds (inclusive) of each bucket, in microseconds.
  static const std::array<double, kNumBounds>& bounds();

  void record_us(double us);
  void record_seconds(double s) { record_us(s * 1e6); }

  struct Snapshot {
    std::uint64_t count = 0;
    double sum_us = 0;
    double min_us = 0;
    double max_us = 0;
    std::array<std::uint64_t, kNumBuckets> buckets{};

    /// Estimated value at quantile q in [0,1] (linear interpolation
    /// within the winning bucket). 0 when empty.
    [[nodiscard]] double quantile_us(double q) const;
    [[nodiscard]] double mean_us() const {
      return count == 0 ? 0 : sum_us / static_cast<double>(count);
    }
  };

  [[nodiscard]] Snapshot snapshot() const;
  void reset();

 private:
  static constexpr std::uint64_t kNoMin = ~std::uint64_t{0};

  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};     // integral ns so fetch_add works
  std::atomic<std::uint64_t> min_ns_{kNoMin};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// Full point-in-time copy of the registry, for tests and dumps.
struct RegistrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;
};

class MetricsRegistry {
 public:
  /// The process-wide registry.
  static MetricsRegistry& instance();

  /// Find-or-create. The returned reference is stable for the process
  /// lifetime; cache it and increment lock-free.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] RegistrySnapshot snapshot() const;

  /// Zero every metric (handles stay valid).
  void reset_all();

  /// One metric per line: `counter gc.minor_collections 3`.
  [[nodiscard]] std::string dump_text() const;
  /// Single JSON object: {"counters":{...},"gauges":{...},"histograms":..}.
  [[nodiscard]] std::string dump_json() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace mojave::obs
