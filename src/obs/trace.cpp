#include "obs/trace.hpp"

#include <chrono>
#include <sstream>

#include "support/thread_id.hpp"

namespace mojave::obs {

namespace {

std::chrono::steady_clock::time_point tracer_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

void json_escaped(std::ostream& out, const char* s) {
  out << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
              << "0123456789abcdef"[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - tracer_epoch())
          .count());
}

void Tracer::enable(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity == 0) capacity = 1;
  ring_.assign(capacity, TraceEvent{});
  head_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_release); }

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (TraceEvent& e : ring_) e = TraceEvent{};
  head_.store(0, std::memory_order_relaxed);
}

void Tracer::record(const TraceEvent& e) {
  // Lock-free slot claim; the ring is only resized under mu_ while
  // disabled, and writers bail when disabled.
  const std::uint64_t slot = head_.fetch_add(1, std::memory_order_relaxed);
  ring_[slot % ring_.size()] = e;
}

void Tracer::instant(const char* cat, const char* name, const char* arg_name,
                     std::uint64_t arg_value) {
  if (!enabled()) return;
  TraceEvent e;
  e.cat = cat;
  e.name = name;
  e.ts_us = now_us();
  e.tid = small_thread_id();
  e.instant = true;
  e.arg_name = arg_name;
  e.arg_value = arg_value;
  record(e);
}

void Tracer::complete(const char* cat, const char* name, std::uint64_t ts_us,
                      std::uint64_t dur_us, const char* arg_name,
                      std::uint64_t arg_value) {
  if (!enabled()) return;
  TraceEvent e;
  e.cat = cat;
  e.name = name;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.tid = small_thread_id();
  e.instant = false;
  e.arg_name = arg_name;
  e.arg_value = arg_value;
  record(e);
}

std::string Tracer::dump_chrome_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::size_t cap = ring_.size();
  const std::uint64_t n = cap == 0 ? 0 : std::min<std::uint64_t>(head, cap);
  const std::uint64_t first = head - n;  // oldest retained event
  bool first_out = true;
  for (std::uint64_t i = first; i < head; ++i) {
    const TraceEvent& e = ring_[i % cap];
    if (!first_out) out << ",";
    first_out = false;
    out << "{\"name\":";
    json_escaped(out, e.name);
    out << ",\"cat\":";
    json_escaped(out, e.cat);
    out << ",\"ph\":\"" << (e.instant ? "i" : "X") << "\"";
    out << ",\"ts\":" << e.ts_us;
    if (!e.instant) out << ",\"dur\":" << e.dur_us;
    if (e.instant) out << ",\"s\":\"t\"";  // thread-scoped instant
    out << ",\"pid\":1,\"tid\":" << e.tid;
    if (e.arg_name != nullptr) {
      out << ",\"args\":{";
      json_escaped(out, e.arg_name);
      out << ":" << e.arg_value << "}";
    }
    out << "}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

}  // namespace mojave::obs
