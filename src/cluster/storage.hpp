// SharedStorage: the cluster-visible checkpoint store.
//
// "The existence of a reliable and distributed storage medium is needed
// for a real fault-tolerant implementation. For the purpose of this
// example an NFS mount point visible across the entire cluster provided
// the required functionality" (paper, Section 2). Here a directory plays
// the NFS mount: writes are atomic (temp file + rename), so a resurrection
// daemon on any node either sees a complete checkpoint or the previous
// one, never a torn image.
#pragma once

#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace mojave::cluster {

class SharedStorage {
 public:
  explicit SharedStorage(std::filesystem::path root);

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }
  [[nodiscard]] std::filesystem::path path_for(const std::string& name) const {
    return root_ / name;
  }

  void write(const std::string& name, std::span<const std::byte> bytes) const;
  [[nodiscard]] std::optional<std::vector<std::byte>> read(
      const std::string& name) const;
  [[nodiscard]] bool exists(const std::string& name) const;
  void remove(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> list() const;

 private:
  std::filesystem::path root_;
};

}  // namespace mojave::cluster
