// SharedStorage: the cluster-visible checkpoint store.
//
// "The existence of a reliable and distributed storage medium is needed
// for a real fault-tolerant implementation. For the purpose of this
// example an NFS mount point visible across the entire cluster provided
// the required functionality" (paper, Section 2). Here a directory plays
// the NFS mount: writes are atomic (unique temp file + rename), so a
// resurrection daemon on any node either sees a complete checkpoint or
// the previous one, never a torn image. Names may contain '/' — the
// chunk store (src/ckpt) keys objects under chunks/ and manifests/.
//
// A crash between the temp write and the rename strands a *.tmp file;
// list() both hides in-flight temp files from readers and sweeps ones
// old enough that no writer can still own them, so crash debris cannot
// accumulate or ever be mistaken for a restorable object.
#pragma once

#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace mojave::cluster {

class SharedStorage {
 public:
  explicit SharedStorage(std::filesystem::path root);

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }
  [[nodiscard]] std::filesystem::path path_for(const std::string& name) const {
    return root_ / name;
  }

  void write(const std::string& name, std::span<const std::byte> bytes) const;
  [[nodiscard]] std::optional<std::vector<std::byte>> read(
      const std::string& name) const;
  [[nodiscard]] bool exists(const std::string& name) const;
  void remove(const std::string& name) const;

  /// Names (root-relative, '/'-separated, sorted) of every complete
  /// object under `subdir` ("" = whole store). In-flight temp files are
  /// never listed; stale ones (older than the stale-temp age, i.e. left
  /// by a crash between write and rename) are deleted as a side effect.
  [[nodiscard]] std::vector<std::string> list(
      const std::string& subdir = "") const;

  /// Age (seconds) past which a *.tmp file is considered crash debris.
  void set_stale_tmp_age(double seconds) { stale_tmp_age_ = seconds; }

 private:
  std::filesystem::path root_;
  double stale_tmp_age_ = 60.0;
};

}  // namespace mojave::cluster
