#include "cluster/storage.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>

#include "support/error.hpp"

namespace mojave::cluster {

namespace fs = std::filesystem;

SharedStorage::SharedStorage(fs::path root) : root_(std::move(root)) {
  fs::create_directories(root_);
}

void SharedStorage::write(const std::string& name,
                          std::span<const std::byte> bytes) const {
  const fs::path target = path_for(name);
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path());
  }
  // Unique temp name per writer: two nodes racing to publish the same
  // object (e.g. the same content-addressed chunk) must not interleave
  // writes into one temp file and rename a torn result.
  static std::atomic<std::uint64_t> nonce{0};
  const fs::path tmp = target.string() + "." + std::to_string(::getpid()) +
                       "." + std::to_string(nonce++) + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("storage: cannot open " + tmp.string());
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) throw Error("storage: short write to " + tmp.string());
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) throw Error("storage: rename failed: " + ec.message());
}

std::optional<std::vector<std::byte>> SharedStorage::read(
    const std::string& name) const {
  std::ifstream in(path_for(name), std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) return std::nullopt;
  return bytes;
}

bool SharedStorage::exists(const std::string& name) const {
  return fs::exists(path_for(name));
}

void SharedStorage::remove(const std::string& name) const {
  std::error_code ec;
  fs::remove(path_for(name), ec);
}

std::vector<std::string> SharedStorage::list(const std::string& subdir) const {
  std::vector<std::string> names;
  const fs::path base = subdir.empty() ? root_ : root_ / subdir;
  std::error_code ec;
  if (!fs::is_directory(base, ec)) return names;
  const auto now = fs::file_time_type::clock::now();
  const auto stale = std::chrono::duration_cast<fs::file_time_type::duration>(
      std::chrono::duration<double>(stale_tmp_age_));
  for (fs::recursive_directory_iterator it(base, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const fs::path& p = it->path();
    if (p.extension() == ".tmp") {
      // In-flight writes are invisible; a temp file no writer can still
      // own (a crash between write and rename) is swept so a
      // resurrection daemon never tries to restore a torn name.
      std::error_code tec;
      const auto mtime = fs::last_write_time(p, tec);
      if (!tec && now - mtime > stale) fs::remove(p, tec);
      continue;
    }
    names.push_back(p.lexically_relative(root_).generic_string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace mojave::cluster
