#include "cluster/storage.hpp"

#include <fstream>

#include "support/error.hpp"

namespace mojave::cluster {

namespace fs = std::filesystem;

SharedStorage::SharedStorage(fs::path root) : root_(std::move(root)) {
  fs::create_directories(root_);
}

void SharedStorage::write(const std::string& name,
                          std::span<const std::byte> bytes) const {
  const fs::path target = path_for(name);
  const fs::path tmp = target.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("storage: cannot open " + tmp.string());
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) throw Error("storage: short write to " + tmp.string());
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) throw Error("storage: rename failed: " + ec.message());
}

std::optional<std::vector<std::byte>> SharedStorage::read(
    const std::string& name) const {
  std::ifstream in(path_for(name), std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) return std::nullopt;
  return bytes;
}

bool SharedStorage::exists(const std::string& name) const {
  return fs::exists(path_for(name));
}

void SharedStorage::remove(const std::string& name) const {
  std::error_code ec;
  fs::remove(path_for(name), ec);
}

std::vector<std::string> SharedStorage::list() const {
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(root_)) {
    if (entry.is_regular_file() &&
        entry.path().extension() != ".tmp") {
      names.push_back(entry.path().filename().string());
    }
  }
  return names;
}

}  // namespace mojave::cluster
