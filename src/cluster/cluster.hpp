// The simulated cluster: nodes, message-passing externals, fault
// injection, migration daemons, and resurrection.
//
// Stands in for the paper's test bed (Section 5: dual-700MHz nodes on a
// 100 Mbps network, an MCC migration daemon on every node, NFS for
// checkpoints). A Cluster hosts one managed Process per rank on its own
// thread; processes talk through the SimNetwork via host externals, write
// checkpoints to SharedStorage through the standard migrate machinery,
// and are resurrected from those checkpoints after a fault — manually or
// by the built-in resurrection daemon.
//
// Node externals available to MojC programs (declare with `extern`):
//   int node_id();               this process's rank
//   int num_nodes();             cluster size
//   int msg_send(int dst, int tag, ptr buf, int count);
//       send `count` slots starting at buf; 0 = delivered, 1 = dropped
//   int msg_recv(int src, int tag, ptr buf, int count);
//       0 = ok, 1 = MSG_ROLL (peer failed / speculation poisoned),
//       2 = timeout; blocks until one of these
//   ptr checkpoint_target();     "ckpt://<storage>/rank_<r>" (incremental
//                                chunk store; the legacy whole-image
//                                "checkpoint://<storage>/rank_<r>.img"
//                                when use_ckpt_store is off)
//   void report_result(float);   hand a scalar result to the host
//   void sleep_ms(int);
#pragma once

#include <atomic>
#include <map>
#include <filesystem>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/store.hpp"
#include "cluster/storage.hpp"
#include "cluster/tracker.hpp"
#include "fir/ir.hpp"
#include "migrate/migrator.hpp"
#include "net/retry.hpp"
#include "net/sim.hpp"
#include "vm/process.hpp"

namespace mojave::cluster {

struct ClusterConfig {
  std::uint32_t num_nodes = 4;
  net::SimConfig net;
  runtime::HeapConfig heap;
  std::filesystem::path storage_dir;      ///< empty = fresh temp directory
  std::uint64_t max_instructions = 0;     ///< per process; 0 = unlimited
  /// msg_recv safety net; overridable with MOJAVE_RECV_TIMEOUT_S (and the
  /// mojc --recv-timeout flag, which sets that variable for the run).
  double recv_timeout_seconds = net::env_seconds("MOJAVE_RECV_TIMEOUT_S", 30.0);
  /// Checkpoint through the incremental content-addressed chunk store
  /// (ckpt:// targets, O(delta) writes). Off = legacy whole-image files.
  bool use_ckpt_store = true;
  ckpt::CheckpointStore::Options ckpt;
};

struct NodeResult {
  net::NodeId rank = 0;
  vm::RunResult run;
  std::string error;   ///< "killed", or an exception message; empty = clean
  std::string output;
  spec::SpecStats spec;
  /// Accumulated across incarnations (deterministic work metric — wall
  /// time on an oversubscribed host is scheduler noise).
  std::uint64_t instructions = 0;
  std::uint64_t restarts = 0;
  std::uint64_t checkpoints = 0;        ///< migrate events executed
  double checkpoint_seconds = 0.0;      ///< total pack time
  std::size_t checkpoint_bytes = 0;     ///< last image size
  /// Bytes actually written to storage across all checkpoints (for the
  /// chunk store this is the deduplicated delta, not the image size).
  std::size_t checkpoint_bytes_written = 0;
  double reported = 0.0;  ///< last report_result() value
  bool has_reported = false;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Start `program` on node `rank` (compiles it into a fresh process).
  void launch(net::NodeId rank, fir::Program program);
  /// Start a copy of `program` on every node (SPMD, as in Figure 2).
  void launch_spmd(const fir::Program& program);

  /// Fault injection: the node's sends/receives fail immediately and any
  /// blocked receive wakes; the process dies at its next network
  /// operation. Peers observe MSG_ROLL.
  void kill(net::NodeId rank);

  /// Revive the rank and resume it from its latest checkpoint in shared
  /// storage (the paper: "the computation thread is resurrected on a
  /// remote node from the last checkpoint"). Returns false when no
  /// checkpoint exists — or when the rank is still alive, so a racing
  /// daemon and a manual call cannot start two incarnations.
  bool resurrect(net::NodeId rank);

  /// Start a daemon that resurrects dead ranks automatically.
  void enable_auto_resurrection(double poll_interval_seconds);

  /// Join every node thread and collect results. Stops the daemon.
  [[nodiscard]] std::vector<NodeResult> wait_all();

  [[nodiscard]] net::SimNetwork& network() { return net_; }
  [[nodiscard]] SharedStorage& storage() { return storage_; }
  [[nodiscard]] DependencyTracker& tracker() { return tracker_; }
  /// The chunk store backing ckpt:// checkpoints (null in legacy mode).
  [[nodiscard]] const std::shared_ptr<ckpt::CheckpointStore>& ckpt_store()
      const {
    return ckpt_store_;
  }
  /// Legacy whole-image checkpoint file name for `rank`.
  [[nodiscard]] std::string checkpoint_name(net::NodeId rank) const {
    return "rank_" + std::to_string(rank) + ".img";
  }
  /// Chunk-store snapshot name for `rank`.
  [[nodiscard]] std::string snapshot_name(net::NodeId rank) const {
    return "rank_" + std::to_string(rank);
  }
  /// Whether a restorable checkpoint exists for `rank` (either mode).
  [[nodiscard]] bool has_checkpoint(net::NodeId rank) const;

 private:
  struct Slot {
    std::thread thread;
    std::ostringstream output;
    NodeResult result;
    std::atomic<bool> finished{false};
    std::atomic<bool> launched{false};
    /// Claimed by whichever caller (daemon or test) resurrects this rank,
    /// so concurrent attempts cannot start two incarnations.
    std::atomic<bool> resurrecting{false};
    /// Lazy cancellation (cf. TimeWarp [Jefferson 85], which the paper
    /// builds on): hash of the last payload sent per (dst, tag). A
    /// deterministic re-send after a rollback reproduces the original
    /// bytes, so its consumers need not join the sender's speculation —
    /// only *changed* messages propagate rollbacks.
    std::map<std::pair<net::NodeId, std::int32_t>, std::uint64_t> sent_hashes;
    std::mutex sent_mu;
  };

  void register_externals(vm::Process& proc, net::NodeId rank);
  void record_migrator(net::NodeId rank, const migrate::Migrator& migrator);
  void run_body(net::NodeId rank, vm::Process& proc);
  void daemon_loop(double interval);
  /// Latest restorable image for `rank`, from the chunk store (with
  /// manifest fallback) or the legacy file.
  [[nodiscard]] std::optional<std::vector<std::byte>> read_checkpoint(
      net::NodeId rank) const;

  ClusterConfig cfg_;
  net::SimNetwork net_;
  SharedStorage storage_;
  std::shared_ptr<ckpt::CheckpointStore> ckpt_store_;
  DependencyTracker tracker_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::mutex mu_;
  std::thread daemon_;
  std::atomic<bool> stopping_{false};
};

}  // namespace mojave::cluster
