#include "cluster/cluster.hpp"

#include <unistd.h>

#include <chrono>

#include "obs/metrics.hpp"
#include "runtime/value_codec.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"

namespace mojave::cluster {

using runtime::Value;

namespace {

/// Thrown out of a network external when this node has been killed; it
/// unwinds the interpreter and terminates the node thread.
struct NodeKilled {};

struct ClusterMetrics {
  obs::Counter& corrupt_frames;
  obs::Counter& resurrections;

  static ClusterMetrics& get() {
    static ClusterMetrics m{
        obs::MetricsRegistry::instance().counter("cluster.corrupt_frames"),
        obs::MetricsRegistry::instance().counter("cluster.resurrections"),
    };
    return m;
  }
};

/// Every cluster message carries a trailing fnv1a of its body so a frame
/// mangled on the wire (the fault matrix flips bytes) is rejected instead
/// of decoded into garbage values.
constexpr std::size_t kChecksumBytes = 8;
/// Spec-level u32 + count u32: the smallest well-formed body.
constexpr std::size_t kMinBodyBytes = 8;

void append_checksum(std::vector<std::byte>& frame) {
  const std::uint64_t h = fnv1a(frame);
  for (std::size_t i = 0; i < kChecksumBytes; ++i) {
    frame.push_back(std::byte{static_cast<std::uint8_t>(h >> (8 * i))});
  }
}

/// Verify and remove the trailing checksum. False = corrupt or truncated;
/// the caller discards the frame and keeps polling (the sender's replay
/// log still holds the clean bytes).
[[nodiscard]] bool strip_verified_checksum(std::vector<std::byte>& frame) {
  if (frame.size() < kMinBodyBytes + kChecksumBytes) return false;
  const std::size_t body = frame.size() - kChecksumBytes;
  std::uint64_t stored = 0;
  for (std::size_t i = 0; i < kChecksumBytes; ++i) {
    stored |= std::to_integer<std::uint64_t>(frame[body + i]) << (8 * i);
  }
  if (stored != fnv1a(std::span(frame).first(body))) return false;
  frame.resize(body);
  return true;
}

std::filesystem::path default_storage_dir() {
  static std::atomic<int> counter{0};
  return std::filesystem::temp_directory_path() /
         ("mojave_cluster_" + std::to_string(::getpid()) + "_" +
          std::to_string(counter++));
}

}  // namespace

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(cfg),
      net_(cfg.num_nodes, cfg.net),
      storage_(cfg.storage_dir.empty() ? default_storage_dir()
                                       : cfg.storage_dir) {
  if (cfg_.use_ckpt_store) {
    // Shared with the Migrators running on the node threads (they open
    // the same root from the ckpt:// target), so puts and GC serialize.
    ckpt_store_ =
        ckpt::CheckpointStore::open_shared(storage_.root(), cfg_.ckpt);
  }
  slots_.reserve(cfg_.num_nodes);
  for (std::uint32_t i = 0; i < cfg_.num_nodes; ++i) {
    slots_.push_back(std::make_unique<Slot>());
    slots_.back()->result.rank = i;
  }
  obs::MetricsRegistry::instance()
      .gauge("config.cluster.recv_timeout_ms")
      .set(static_cast<std::int64_t>(cfg_.recv_timeout_seconds * 1e3));
}

Cluster::~Cluster() {
  stopping_.store(true);
  net_.shutdown();
  if (daemon_.joinable()) daemon_.join();
  for (auto& slot : slots_) {
    if (slot->thread.joinable()) slot->thread.join();
  }
}

void Cluster::register_externals(vm::Process& proc, net::NodeId rank) {
  vm::Interpreter& vm = proc.vm();
  Slot& slot = *slots_[rank];
  vm.set_output(&slot.output);

  vm.register_external("node_id",
                       [rank](vm::Interpreter&, std::span<const Value>) {
                         return Value::from_int(rank);
                       });
  vm.register_external(
      "num_nodes", [this](vm::Interpreter&, std::span<const Value>) {
        return Value::from_int(static_cast<std::int64_t>(net_.size()));
      });

  vm.register_external(
      "msg_send",
      [this, rank, &proc](vm::Interpreter& it,
                          std::span<const Value> args) -> Value {
        if (args.size() != 4) throw SafetyError("msg_send arity");
        if (!net_.alive(rank)) throw NodeKilled{};
        const auto dst = static_cast<net::NodeId>(args[0].as_int());
        const auto tag = static_cast<std::int32_t>(args[1].as_int());
        const runtime::PtrValue buf = args[2].as_ptr();
        const std::int64_t count = args[3].as_int();
        if (count < 0) throw SafetyError("msg_send negative count");
        // Encode `count` slots; reads are bounds- and tag-validated.
        Writer vw;
        vw.u32(static_cast<std::uint32_t>(count));
        for (std::int64_t i = 0; i < count; ++i) {
          runtime::write_value(
              vw, it.heap().read_slot(buf.index,
                                      buf.offset + static_cast<std::uint32_t>(i)));
        }
        const auto values = vw.take();
        // Lazy cancellation: a byte-identical re-send (deterministic
        // re-execution after a rollback) is not speculative — its
        // consumers already hold exactly this data.
        const std::uint64_t h = fnv1a(values);
        bool duplicate = false;
        {
          Slot& sender_slot = *slots_[rank];
          std::lock_guard<std::mutex> lock(sender_slot.sent_mu);
          auto& prev = sender_slot.sent_hashes[{dst, tag}];
          duplicate = prev == h;
          prev = h;
        }
        Writer w;
        w.u32(duplicate ? 0 : proc.spec().current_level());
        w.u32(static_cast<std::uint32_t>(count));
        w.bytes(std::span(values).subspan(4));
        std::vector<std::byte> frame = w.take();
        append_checksum(frame);
        const bool ok = net_.send(rank, dst, tag, std::move(frame));
        if (!ok) {
          // Dead destination: back off so the rollback-retry loop does not
          // spin while the peer is resurrected.
          std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
        return Value::from_int(ok ? 0 : 1);
      });

  vm.register_external(
      "msg_recv",
      [this, rank, &proc](vm::Interpreter& it,
                          std::span<const Value> args) -> Value {
        if (args.size() != 4) throw SafetyError("msg_recv arity");
        const auto src = static_cast<net::NodeId>(args[0].as_int());
        const auto tag = static_cast<std::int32_t>(args[1].as_int());
        const runtime::PtrValue buf = args[2].as_ptr();
        const std::int64_t count = args[3].as_int();
        if (count < 0) throw SafetyError("msg_recv negative count");

        // Poll in short slices so a poison (an upstream rollback) can
        // interrupt a blocked receive.
        std::vector<std::byte> payload;
        double waited = 0;
        while (true) {
          if (tracker_.consume_poison(rank)) return Value::from_int(1);
          const net::RecvStatus status =
              net_.recv(rank, src, tag, payload, 0.005);
          if (status == net::RecvStatus::kOk) {
            if (!strip_verified_checksum(payload)) {
              // Mangled on the wire: discard and keep polling — the
              // sender's replay log (or a timeout + MSG_ROLL) re-delivers
              // the clean bytes.
              ClusterMetrics::get().corrupt_frames.inc();
              MOJAVE_LOG(kDebug, "cluster")
                  << "rank " << rank << " discarded corrupt frame from "
                  << src << " tag " << tag;
              continue;
            }
            break;
          }
          if (status == net::RecvStatus::kPeerFailed) {
            // Back off briefly so the retry loop does not spin while the
            // peer is being resurrected.
            std::this_thread::sleep_for(std::chrono::microseconds(500));
            return Value::from_int(1);  // MSG_ROLL
          }
          if (status == net::RecvStatus::kTimeout) {
            waited += 0.005;
            if (waited >= cfg_.recv_timeout_seconds) {
              MOJAVE_LOG(kDebug, "cluster")
                  << "rank " << rank << " recv timeout from " << src
                  << " tag " << tag;
              return Value::from_int(2);
            }
            continue;
          }
          throw NodeKilled{};  // kSelfFailed / kShutdown
        }
        // A rollback poisons its dependents *before* the rolled-back sender
        // can send anything new, so re-checking here makes the MSG_ROLL
        // delivery deterministic even when a fresh message raced in.
        if (tracker_.consume_poison(rank)) return Value::from_int(1);
        Reader r(payload);
        const SpecLevel sender_level = r.u32();
        const std::uint32_t n = r.u32();
        tracker_.record(src, sender_level, rank, proc.spec().current_level());
        const std::uint32_t to_copy =
            std::min(n, static_cast<std::uint32_t>(count));
        for (std::uint32_t i = 0; i < to_copy; ++i) {
          // write_slot routes through the COW hook, so received data is
          // versioned under the receiver's own speculation.
          it.heap().write_slot(buf.index, buf.offset + i,
                               runtime::read_value(r));
        }
        return Value::from_int(0);
      });

  vm.register_external(
      "checkpoint_target",
      [this, rank](vm::Interpreter& it, std::span<const Value>) -> Value {
        const std::string target =
            cfg_.use_ckpt_store
                ? "ckpt://" + storage_.root().string() + "/" +
                      snapshot_name(rank)
                : "checkpoint://" +
                      storage_.path_for(checkpoint_name(rank)).string();
        return Value::from_ptr(it.heap().alloc_string(target), 0);
      });

  vm.register_external(
      "report_result",
      [this, rank](vm::Interpreter&, std::span<const Value> args) -> Value {
        if (args.size() != 1) throw SafetyError("report_result arity");
        std::lock_guard<std::mutex> lock(mu_);
        slots_[rank]->result.reported = args[0].as_float();
        slots_[rank]->result.has_reported = true;
        return Value::unit();
      });

  vm.register_external("sleep_ms",
                       [](vm::Interpreter&, std::span<const Value> args) {
                         std::this_thread::sleep_for(std::chrono::milliseconds(
                             args.empty() ? 0 : args[0].as_int()));
                         return Value::unit();
                       });

  // Join protocol: this process's rollbacks poison its dependents; its
  // durable commits discharge dependencies on it.
  proc.spec().set_rollback_observer([this, rank](SpecLevel level, bool) {
    tracker_.on_rollback(rank, level);
  });
  proc.spec().set_commit_observer(
      [this, rank] { tracker_.on_commit_to_zero(rank); });
}

void Cluster::record_migrator(net::NodeId rank,
                              const migrate::Migrator& migrator) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeResult& r = slots_[rank]->result;
  for (const auto& event : migrator.events()) {
    if (!event.success) continue;
    ++r.checkpoints;
    r.checkpoint_seconds += event.pack_seconds;
    r.checkpoint_bytes = event.image_bytes;
    r.checkpoint_bytes_written += event.bytes_written;
  }
}

void Cluster::run_body(net::NodeId rank, vm::Process& proc) {
  Slot& slot = *slots_[rank];
  {
    migrate::Migrator migrator(proc);
    try {
      const auto result = proc.run();
      std::lock_guard<std::mutex> lock(mu_);
      slot.result.run = result;
    } catch (const NodeKilled&) {
      std::lock_guard<std::mutex> lock(mu_);
      slot.result.error = "killed";
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(mu_);
      slot.result.error = e.what();
    }
    record_migrator(rank, migrator);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    slot.result.spec = proc.spec().stats();
    slot.result.instructions += proc.vm().stats().instructions;
    slot.result.output = slot.output.str();
  }
  slot.finished.store(true);
}

void Cluster::launch(net::NodeId rank, fir::Program program) {
  Slot& slot = *slots_.at(rank);
  if (slot.launched.load()) throw Error("rank already launched");
  slot.launched.store(true);
  slot.thread = std::thread([this, rank, prog = std::move(program)]() mutable {
    try {
      vm::ProcessConfig pcfg;
      pcfg.heap = cfg_.heap;
      pcfg.max_instructions = cfg_.max_instructions;
      vm::Process proc(std::move(prog), pcfg);
      register_externals(proc, rank);
      run_body(rank, proc);
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(mu_);
      slots_[rank]->result.error = e.what();
      slots_[rank]->finished.store(true);
    }
  });
}

void Cluster::launch_spmd(const fir::Program& program) {
  for (std::uint32_t rank = 0; rank < cfg_.num_nodes; ++rank) {
    launch(rank, fir::clone_program(program));
  }
}

void Cluster::kill(net::NodeId rank) {
  MOJAVE_LOG(kInfo, "cluster") << "killing node " << rank;
  net_.kill(rank);
}

bool Cluster::has_checkpoint(net::NodeId rank) const {
  return cfg_.use_ckpt_store ? ckpt_store_->has_snapshot(snapshot_name(rank))
                             : storage_.exists(checkpoint_name(rank));
}

std::optional<std::vector<std::byte>> Cluster::read_checkpoint(
    net::NodeId rank) const {
  // Chunk-store restore verifies every chunk and the whole image, and
  // falls back to the previous manifest on any mismatch — a node killed
  // mid-checkpoint resurrects from the last *complete* checkpoint.
  return cfg_.use_ckpt_store ? ckpt_store_->restore(snapshot_name(rank))
                             : storage_.read(checkpoint_name(rank));
}

bool Cluster::resurrect(net::NodeId rank) {
  Slot& slot = *slots_.at(rank);
  // At-most-one incarnation: never resurrect a rank that is still alive,
  // and let exactly one of two racing callers claim the dead one.
  if (net_.alive(rank)) return false;
  if (slot.resurrecting.exchange(true)) return false;
  const auto image = read_checkpoint(rank);
  if (!image.has_value()) {
    slot.resurrecting.store(false);
    return false;
  }
  if (slot.thread.joinable()) slot.thread.join();  // the killed incarnation
  slot.finished.store(false);
  net_.revive(rank);
  ClusterMetrics::get().resurrections.inc();
  MOJAVE_LOG(kInfo, "cluster") << "resurrecting node " << rank
                               << " from checkpoint";
  slot.thread = std::thread([this, rank, img = std::move(*image)] {
    Slot& s = *slots_[rank];
    {
      // This incarnation supersedes the killed one.
      std::lock_guard<std::mutex> lock(mu_);
      s.result.error.clear();
    }
    try {
      vm::ProcessConfig pcfg;
      pcfg.heap = cfg_.heap;
      pcfg.max_instructions = cfg_.max_instructions;
      migrate::UnpackResult unpacked = migrate::unpack_process(img, pcfg);
      register_externals(*unpacked.process, rank);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++s.result.restarts;
      }
      migrate::Migrator migrator(*unpacked.process);
      const auto result = unpacked.process->resume(
          unpacked.resume_fun, std::move(unpacked.resume_args));
      record_migrator(rank, migrator);
      std::lock_guard<std::mutex> lock(mu_);
      s.result.run = result;
      s.result.spec = unpacked.process->spec().stats();
      s.result.instructions += unpacked.process->vm().stats().instructions;
      s.result.output = s.output.str();
    } catch (const NodeKilled&) {
      std::lock_guard<std::mutex> lock(mu_);
      s.result.error = "killed";
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(mu_);
      s.result.error = e.what();
    }
    s.finished.store(true);
  });
  // The rank is alive again; the alive guard above now does the fencing.
  slot.resurrecting.store(false);
  return true;
}

void Cluster::enable_auto_resurrection(double poll_interval_seconds) {
  if (daemon_.joinable()) return;
  daemon_ = std::thread([this, poll_interval_seconds] {
    daemon_loop(poll_interval_seconds);
  });
}

void Cluster::daemon_loop(double interval) {
  while (!stopping_.load()) {
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
    for (std::uint32_t rank = 0; rank < cfg_.num_nodes; ++rank) {
      Slot& slot = *slots_[rank];
      if (!slot.launched.load()) continue;
      if (net_.alive(rank)) continue;
      if (!slot.finished.load()) continue;  // still unwinding
      if (!has_checkpoint(rank)) continue;
      if (stopping_.load()) return;
      resurrect(rank);
    }
  }
}

std::vector<NodeResult> Cluster::wait_all() {
  // With the resurrection daemon active, a "killed" slot that still has a
  // checkpoint is not terminal — it will come back. Wait for every slot to
  // reach a terminal state before stopping the daemon and joining.
  const bool daemon_active = daemon_.joinable();
  const auto slot_done = [&](Slot& s) {
    if (!s.finished.load()) return false;
    if (!daemon_active) return true;
    std::lock_guard<std::mutex> lock(mu_);
    if (s.result.error != "killed") return true;
    return !has_checkpoint(s.result.rank);
  };
  while (true) {
    bool all_done = true;
    for (auto& slot : slots_) {
      if (slot->launched.load() && !slot_done(*slot)) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stopping_.store(true);
  if (daemon_.joinable()) daemon_.join();
  for (auto& slot : slots_) {
    if (slot->thread.joinable()) slot->thread.join();
  }
  std::vector<NodeResult> results;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& slot : slots_) {
    if (slot->launched.load()) results.push_back(slot->result);
  }
  return results;
}

}  // namespace mojave::cluster
