#include "cluster/tracker.hpp"

#include <algorithm>

#include "support/serialize.hpp"

namespace mojave::cluster {

void DependencyTracker::record(net::NodeId sender, SpecLevel sender_level,
                               net::NodeId receiver,
                               SpecLevel receiver_level) {
  if (sender_level == 0) return;  // non-speculative send: nothing to join
  std::lock_guard<std::mutex> lock(mu_);
  deps_[sender].push_back(Dep{receiver, sender_level, receiver_level});
}

std::vector<net::NodeId> DependencyTracker::on_rollback(net::NodeId node,
                                                        SpecLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<net::NodeId> hit;

  // Sender side: messages this node sent at level ≥ `level` never happened;
  // their consumers must roll back with it.
  auto it = deps_.find(node);
  if (it != deps_.end()) {
    auto& vec = it->second;
    for (auto d = vec.begin(); d != vec.end();) {
      if (d->sender_level >= level) {
        if (poisoned_.insert(d->receiver).second) ++poisons_;
        hit.push_back(d->receiver);
        d = vec.erase(d);
      } else {
        ++d;
      }
    }
  }

  // Receiver side: consumptions this node made at level ≥ `level` are
  // un-consumed by the rollback — void them so they cannot poison it for
  // data it no longer holds.
  for (auto& [sender, vec] : deps_) {
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [&](const Dep& d) {
                               return d.receiver == node &&
                                      d.receiver_level >= level;
                             }),
              vec.end());
  }
  return hit;
}

void DependencyTracker::on_commit_to_zero(net::NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  // Sender side: messages sent at level 1 are now durable; deeper levels
  // shift down by one.
  auto it = deps_.find(node);
  if (it != deps_.end()) {
    auto& vec = it->second;
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [](const Dep& d) { return d.sender_level <= 1; }),
              vec.end());
    for (Dep& d : vec) --d.sender_level;
  }
  // Receiver side: consumptions made at level 1 are committed (permanent,
  // level 0); deeper ones shift down.
  for (auto& [sender, vec] : deps_) {
    for (Dep& d : vec) {
      if (d.receiver == node && d.receiver_level > 0) --d.receiver_level;
    }
  }
}

bool DependencyTracker::consume_poison(net::NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  return poisoned_.erase(node) > 0;
}

std::size_t DependencyTracker::dependency_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [sender, vec] : deps_) n += vec.size();
  return n;
}

std::uint64_t DependencyTracker::poisons_issued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return poisons_;
}

std::vector<std::byte> DependencyTracker::encode_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  Writer w;
  w.u32(static_cast<std::uint32_t>(deps_.size()));
  for (const auto& [sender, vec] : deps_) {
    w.u32(sender);
    w.u32(static_cast<std::uint32_t>(vec.size()));
    for (const Dep& d : vec) {
      w.u32(d.receiver);
      w.u32(d.sender_level);
      w.u32(d.receiver_level);
    }
  }
  w.u32(static_cast<std::uint32_t>(poisoned_.size()));
  for (const net::NodeId n : poisoned_) w.u32(n);
  w.u64(poisons_);
  return w.take();
}

}  // namespace mojave::cluster
