#include "fir/legalize.hpp"

#include <utility>

namespace mojave::fir {

namespace {

bool is_const(const Atom& a) {
  switch (a.kind) {
    case Atom::Kind::kInt:
    case Atom::Kind::kFloat:
      return true;
    default:
      return false;
  }
}

bool commutative(Binop op) {
  switch (op) {
    case Binop::kAdd:
    case Binop::kMul:
    case Binop::kAnd:
    case Binop::kOr:
    case Binop::kXor:
    case Binop::kEq:
    case Binop::kNe:
    case Binop::kFAdd:
    case Binop::kFMul:
    case Binop::kFEq:
    case Binop::kFNe:
      return true;
    default:
      return false;
  }
}

/// The comparison that computes the same result with operands exchanged,
/// or the operator itself when no mirror applies.
Binop mirrored(Binop op) {
  switch (op) {
    case Binop::kLt: return Binop::kGt;
    case Binop::kGt: return Binop::kLt;
    case Binop::kLe: return Binop::kGe;
    case Binop::kGe: return Binop::kLe;
    case Binop::kFLt: return Binop::kFGt;
    case Binop::kFGt: return Binop::kFLt;
    case Binop::kFLe: return Binop::kFGe;
    case Binop::kFGe: return Binop::kFLe;
    default: return op;
  }
}

std::size_t legalize_expr(Expr* e) {
  std::size_t rewrites = 0;
  // The `next` chain is a loop, not recursion: bodies are long let chains
  // and only kIf branches actually fork.
  while (e != nullptr) {
    if (e->kind == ExprKind::kLetBinop && is_const(e->a) && !is_const(e->b)) {
      if (commutative(e->binop)) {
        std::swap(e->a, e->b);
        ++rewrites;
      } else if (mirrored(e->binop) != e->binop) {
        std::swap(e->a, e->b);
        e->binop = mirrored(e->binop);
        ++rewrites;
      }
    }
    if (e->kind == ExprKind::kIf) rewrites += legalize_expr(e->els.get());
    e = e->next.get();
  }
  return rewrites;
}

}  // namespace

std::size_t legalize_function(Function& f) {
  return legalize_expr(f.body.get());
}

std::size_t legalize(Program& p) {
  std::size_t total = 0;
  for (Function& f : p.functions) total += legalize_function(f);
  return total;
}

}  // namespace mojave::fir
