#include "fir/optimize.hpp"

#include <map>
#include <optional>
#include <set>

#include "support/error.hpp"

namespace mojave::fir {

namespace {

/// Fold a unop over a literal; nullopt when not foldable.
std::optional<Atom> fold_unop(Unop op, const Atom& a) {
  if (a.kind == Atom::Kind::kInt) {
    switch (op) {
      case Unop::kNeg:
        return Atom::integer(-a.i);
      case Unop::kNot:
        return Atom::integer(a.i == 0 ? 1 : 0);
      case Unop::kBitNot:
        return Atom::integer(~a.i);
      case Unop::kFloatOfInt:
        return Atom::real(static_cast<double>(a.i));
      default:
        return std::nullopt;
    }
  }
  if (a.kind == Atom::Kind::kFloat) {
    switch (op) {
      case Unop::kFNeg:
        return Atom::real(-a.f);
      case Unop::kIntOfFloat:
        return Atom::integer(static_cast<std::int64_t>(a.f));
      default:
        return std::nullopt;
    }
  }
  return std::nullopt;
}

/// Fold a binop over literals with the interpreter's exact semantics.
/// Division/modulo by a literal zero are left alone: the trap happens at
/// run time, as the language defines.
std::optional<Atom> fold_binop(Binop op, const Atom& a, const Atom& b) {
  if (a.kind == Atom::Kind::kInt && b.kind == Atom::Kind::kInt) {
    const std::int64_t x = a.i;
    const std::int64_t y = b.i;
    switch (op) {
      case Binop::kAdd: return Atom::integer(x + y);
      case Binop::kSub: return Atom::integer(x - y);
      case Binop::kMul: return Atom::integer(x * y);
      case Binop::kDiv:
        if (y == 0) return std::nullopt;
        return Atom::integer(x / y);
      case Binop::kMod:
        if (y == 0) return std::nullopt;
        return Atom::integer(x % y);
      case Binop::kAnd: return Atom::integer(x & y);
      case Binop::kOr: return Atom::integer(x | y);
      case Binop::kXor: return Atom::integer(x ^ y);
      case Binop::kShl: return Atom::integer(x << (y & 63));
      case Binop::kShr: return Atom::integer(x >> (y & 63));
      case Binop::kLt: return Atom::integer(x < y ? 1 : 0);
      case Binop::kLe: return Atom::integer(x <= y ? 1 : 0);
      case Binop::kGt: return Atom::integer(x > y ? 1 : 0);
      case Binop::kGe: return Atom::integer(x >= y ? 1 : 0);
      case Binop::kEq: return Atom::integer(x == y ? 1 : 0);
      case Binop::kNe: return Atom::integer(x != y ? 1 : 0);
      default: return std::nullopt;
    }
  }
  if (a.kind == Atom::Kind::kFloat && b.kind == Atom::Kind::kFloat) {
    const double x = a.f;
    const double y = b.f;
    switch (op) {
      case Binop::kFAdd: return Atom::real(x + y);
      case Binop::kFSub: return Atom::real(x - y);
      case Binop::kFMul: return Atom::real(x * y);
      case Binop::kFDiv: return Atom::real(x / y);
      case Binop::kFLt: return Atom::integer(x < y ? 1 : 0);
      case Binop::kFLe: return Atom::integer(x <= y ? 1 : 0);
      case Binop::kFGt: return Atom::integer(x > y ? 1 : 0);
      case Binop::kFGe: return Atom::integer(x >= y ? 1 : 0);
      case Binop::kFEq: return Atom::integer(x == y ? 1 : 0);
      case Binop::kFNe: return Atom::integer(x != y ? 1 : 0);
      default: return std::nullopt;
    }
  }
  return std::nullopt;
}

class FunctionOptimizer {
 public:
  explicit FunctionOptimizer(OptimizeStats& stats) : stats_(stats) {}

  void run(Function& fn) {
    std::map<VarId, Atom> env;
    forward(fn.body, env);
    std::set<VarId> used;
    backward(fn.body, used);
  }

 private:
  void subst(Atom& a, const std::map<VarId, Atom>& env) {
    if (a.kind != Atom::Kind::kVar) return;
    const auto it = env.find(a.var);
    if (it != env.end()) {
      a = it->second;
      ++stats_.copies_propagated;
    }
  }

  void subst_all(Expr& e, const std::map<VarId, Atom>& env) {
    subst(e.a, env);
    subst(e.b, env);
    subst(e.c_atom, env);
    subst(e.fun, env);
    for (Atom& a : e.args) subst(a, env);
  }

  /// Forward pass: propagate copies & constants, fold, splice branches.
  void forward(ExprPtr& head, std::map<VarId, Atom> env) {
    ExprPtr* slot = &head;
    while (*slot != nullptr) {
      Expr& e = **slot;
      subst_all(e, env);
      switch (e.kind) {
        case ExprKind::kLetAtom: {
          // Bind the (already substituted) atom and drop the node.
          env[e.bind] = e.a;
          ExprPtr next = std::move(e.next);
          *slot = std::move(next);
          ++stats_.copies_propagated;
          continue;
        }
        case ExprKind::kLetUnop:
          if (auto folded = fold_unop(e.unop, e.a)) {
            env[e.bind] = *folded;
            ExprPtr next = std::move(e.next);
            *slot = std::move(next);
            ++stats_.constants_folded;
            continue;
          }
          break;
        case ExprKind::kLetBinop:
          if (auto folded = fold_binop(e.binop, e.a, e.b)) {
            env[e.bind] = *folded;
            ExprPtr next = std::move(e.next);
            *slot = std::move(next);
            ++stats_.constants_folded;
            continue;
          }
          break;
        case ExprKind::kIf:
          if (e.a.kind == Atom::Kind::kInt) {
            // Splice in the taken arm and keep optimizing from here.
            ExprPtr taken =
                e.a.i != 0 ? std::move(e.next) : std::move(e.els);
            *slot = std::move(taken);
            ++stats_.branches_folded;
            continue;
          }
          forward(e.next, env);
          forward(e.els, env);
          return;
        default:
          break;
      }
      slot = &e.next;
    }
  }

  /// Backward pass: drop pure, unused lets; record every used variable.
  void backward(ExprPtr& head, std::set<VarId>& used) {
    if (head == nullptr) return;
    Expr& e = *head;
    if (e.kind == ExprKind::kIf) {
      backward(e.next, used);
      backward(e.els, used);
      mark(e, used);
      return;
    }
    backward(e.next, used);
    const bool pure_let =
        (e.kind == ExprKind::kLetUnop ||
         (e.kind == ExprKind::kLetBinop && e.binop != Binop::kDiv &&
          e.binop != Binop::kMod) ||
         e.kind == ExprKind::kLetAtom);
    if (pure_let && !used.contains(e.bind)) {
      ExprPtr next = std::move(e.next);
      head = std::move(next);
      ++stats_.dead_lets_removed;
      return;
    }
    mark(e, used);
  }

  static void mark_atom(const Atom& a, std::set<VarId>& used) {
    if (a.kind == Atom::Kind::kVar) used.insert(a.var);
  }

  static void mark(const Expr& e, std::set<VarId>& used) {
    mark_atom(e.a, used);
    mark_atom(e.b, used);
    mark_atom(e.c_atom, used);
    mark_atom(e.fun, used);
    for (const Atom& a : e.args) mark_atom(a, used);
  }

  OptimizeStats& stats_;
};

}  // namespace

OptimizeStats optimize(Program& program) {
  OptimizeStats stats;
  for (Function& fn : program.functions) {
    // Iterate to a (bounded) fixpoint: folding exposes new copies, which
    // expose new folds.
    for (int pass = 0; pass < 8; ++pass) {
      OptimizeStats before = stats;
      FunctionOptimizer(stats).run(fn);
      if (stats.total() == before.total()) break;
    }
  }
  return stats;
}

}  // namespace mojave::fir
