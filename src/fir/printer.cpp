#include "fir/printer.hpp"

#include <sstream>

namespace mojave::fir {

namespace {

const char* unop_name(Unop op) {
  switch (op) {
    case Unop::kNeg: return "neg";
    case Unop::kNot: return "not";
    case Unop::kBitNot: return "bnot";
    case Unop::kFNeg: return "fneg";
    case Unop::kIntOfFloat: return "int_of_float";
    case Unop::kFloatOfInt: return "float_of_int";
  }
  return "?";
}

const char* binop_name(Binop op) {
  switch (op) {
    case Binop::kAdd: return "+";
    case Binop::kSub: return "-";
    case Binop::kMul: return "*";
    case Binop::kDiv: return "/";
    case Binop::kMod: return "%";
    case Binop::kAnd: return "&";
    case Binop::kOr: return "|";
    case Binop::kXor: return "^";
    case Binop::kShl: return "<<";
    case Binop::kShr: return ">>";
    case Binop::kLt: return "<";
    case Binop::kLe: return "<=";
    case Binop::kGt: return ">";
    case Binop::kGe: return ">=";
    case Binop::kEq: return "==";
    case Binop::kNe: return "!=";
    case Binop::kFAdd: return "+.";
    case Binop::kFSub: return "-.";
    case Binop::kFMul: return "*.";
    case Binop::kFDiv: return "/.";
    case Binop::kFLt: return "<.";
    case Binop::kFLe: return "<=.";
    case Binop::kFGt: return ">.";
    case Binop::kFGe: return ">=.";
    case Binop::kFEq: return "==.";
    case Binop::kFNe: return "!=.";
  }
  return "?";
}

class Printer {
 public:
  explicit Printer(const Function& fn) : fn_(fn) {}

  std::string run() {
    out_ << "fun " << fn_.name << "(";
    for (std::uint32_t i = 0; i < fn_.arity(); ++i) {
      if (i) out_ << ", ";
      out_ << var(i) << ": " << fn_.param_tys[i].to_string();
    }
    out_ << ") =\n";
    print(fn_.body.get(), 1);
    return out_.str();
  }

 private:
  std::string var(VarId id) const {
    if (id < fn_.var_names.size() && !fn_.var_names[id].empty()) {
      return fn_.var_names[id];
    }
    return "v" + std::to_string(id);
  }

  std::string atom(const Atom& a) const {
    switch (a.kind) {
      case Atom::Kind::kUnit: return "()";
      case Atom::Kind::kInt: return std::to_string(a.i);
      case Atom::Kind::kFloat: {
        std::ostringstream o;
        o << a.f;
        return o.str();
      }
      case Atom::Kind::kVar: return var(a.var);
      case Atom::Kind::kFunRef: return "@" + std::to_string(a.fun);
      case Atom::Kind::kString: return "str#" + std::to_string(a.string_id);
      case Atom::Kind::kNull: return "null";
    }
    return "?";
  }

  std::string atoms(const std::vector<Atom>& as) const {
    std::string s;
    for (std::size_t i = 0; i < as.size(); ++i) {
      if (i) s += ", ";
      s += atom(as[i]);
    }
    return s;
  }

  void indent(int depth) {
    for (int i = 0; i < depth; ++i) out_ << "  ";
  }

  void print(const Expr* e, int depth) {
    for (; e != nullptr; e = e->next.get()) {
      indent(depth);
      switch (e->kind) {
        case ExprKind::kLetAtom:
          out_ << "let " << var(e->bind) << " : " << e->bind_ty.to_string()
               << " = " << atom(e->a) << "\n";
          break;
        case ExprKind::kLetUnop:
          out_ << "let " << var(e->bind) << " = " << unop_name(e->unop) << " "
               << atom(e->a) << "\n";
          break;
        case ExprKind::kLetBinop:
          out_ << "let " << var(e->bind) << " = " << atom(e->a) << " "
               << binop_name(e->binop) << " " << atom(e->b) << "\n";
          break;
        case ExprKind::kLetAllocTagged:
          out_ << "let " << var(e->bind) << " = alloc(" << atom(e->a) << ", "
               << atom(e->b) << ")\n";
          break;
        case ExprKind::kLetAllocRaw:
          out_ << "let " << var(e->bind) << " = alloc_raw(" << atom(e->a)
               << ")\n";
          break;
        case ExprKind::kLetRead:
          out_ << "let " << var(e->bind) << " : " << e->bind_ty.to_string()
               << " = read(" << atom(e->a) << ", " << atom(e->b) << ")\n";
          break;
        case ExprKind::kWrite:
          out_ << "write(" << atom(e->a) << ", " << atom(e->b)
               << ") := " << atom(e->c_atom) << "\n";
          break;
        case ExprKind::kLetRawLoad:
          out_ << "let " << var(e->bind) << " = raw_load" << e->width * 8
               << "(" << atom(e->a) << ", " << atom(e->b) << ")\n";
          break;
        case ExprKind::kRawStore:
          out_ << "raw_store" << e->width * 8 << "(" << atom(e->a) << ", "
               << atom(e->b) << ") := " << atom(e->c_atom) << "\n";
          break;
        case ExprKind::kLetRawLoadF:
          out_ << "let " << var(e->bind) << " = raw_loadf(" << atom(e->a)
               << ", " << atom(e->b) << ")\n";
          break;
        case ExprKind::kRawStoreF:
          out_ << "raw_storef(" << atom(e->a) << ", " << atom(e->b)
               << ") := " << atom(e->c_atom) << "\n";
          break;
        case ExprKind::kLetLen:
          out_ << "let " << var(e->bind) << " = block_size(" << atom(e->a)
               << ")\n";
          break;
        case ExprKind::kLetPtrAdd:
          out_ << "let " << var(e->bind) << " = ptr_add(" << atom(e->a)
               << ", " << atom(e->b) << ")\n";
          break;
        case ExprKind::kIf:
          out_ << "if " << atom(e->a) << " then\n";
          print(e->next.get(), depth + 1);
          indent(depth);
          out_ << "else\n";
          print(e->els.get(), depth + 1);
          return;
        case ExprKind::kTailCall:
          out_ << atom(e->fun) << "(" << atoms(e->args) << ")\n";
          return;
        case ExprKind::kSpeculate:
          out_ << "speculate " << atom(e->fun) << "(c, " << atoms(e->args)
               << ")\n";
          return;
        case ExprKind::kCommit:
          out_ << "commit [" << atom(e->a) << "] " << atom(e->fun) << "("
               << atoms(e->args) << ")\n";
          return;
        case ExprKind::kRollback:
          out_ << "rollback [" << atom(e->a) << ", " << atom(e->b) << "]\n";
          return;
        case ExprKind::kAbort:
          out_ << "abort [" << atom(e->a) << ", " << atom(e->b) << "]\n";
          return;
        case ExprKind::kMigrate:
          out_ << "migrate [" << e->label << ", " << atom(e->a) << "] "
               << atom(e->fun) << "(" << atoms(e->args) << ")\n";
          return;
        case ExprKind::kLetExternal:
          out_ << "let " << var(e->bind) << " : " << e->bind_ty.to_string()
               << " = external " << e->ext_name << "(" << atoms(e->args)
               << ")\n";
          break;
        case ExprKind::kHalt:
          out_ << "halt " << atom(e->a) << "\n";
          return;
      }
    }
  }

  const Function& fn_;
  std::ostringstream out_;
};

}  // namespace

std::string to_string(const Function& fn) { return Printer(fn).run(); }

std::string to_string(const Program& program) {
  std::ostringstream out;
  out << "program " << program.name << " (entry @" << program.entry << ")\n";
  for (std::uint32_t i = 0; i < program.strings.size(); ++i) {
    out << "str#" << i << " = \"" << program.strings[i] << "\"\n";
  }
  for (const Function& fn : program.functions) {
    out << to_string(fn) << "\n";
  }
  return out.str();
}

}  // namespace mojave::fir
