#include "fir/typecheck.hpp"

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace mojave::fir {

namespace {

class Checker {
 public:
  explicit Checker(const Program& p) : prog_(p) {}

  void run() {
    std::set<MigrateLabel> labels;
    for (const Function& fn : prog_.functions) {
      collect_labels(fn, fn.body.get(), labels);
    }
    for (const Function& fn : prog_.functions) check_function(fn);
    if (prog_.entry >= prog_.functions.size()) {
      throw TypeError("entry function id out of range");
    }
    if (!prog_.functions[prog_.entry].param_tys.empty()) {
      throw TypeError("entry function must take no parameters");
    }
  }

 private:
  [[noreturn]] void fail(const Function& fn, const std::string& msg) const {
    throw TypeError(prog_.name + "::" + fn.name + ": " + msg);
  }

  void collect_labels(const Function& fn, const Expr* e,
                      std::set<MigrateLabel>& labels) {
    for (; e != nullptr; e = e->next.get()) {
      if (e->kind == ExprKind::kMigrate) {
        if (!labels.insert(e->label).second) {
          fail(fn, "duplicate migrate label " + std::to_string(e->label));
        }
      }
      if (e->kind == ExprKind::kIf && e->els) {
        collect_labels(fn, e->els.get(), labels);
      }
    }
  }

  using Env = std::vector<std::optional<Type>>;

  Type atom_type(const Function& fn, const Env& env, const Atom& a) const {
    switch (a.kind) {
      case Atom::Kind::kUnit:
        return Type::unit();
      case Atom::Kind::kInt:
        return Type::integer();
      case Atom::Kind::kFloat:
        return Type::real();
      case Atom::Kind::kVar:
        if (a.var >= env.size() || !env[a.var].has_value()) {
          fail(fn, "use of unbound variable v" + std::to_string(a.var));
        }
        return *env[a.var];
      case Atom::Kind::kFunRef:
        if (a.fun >= prog_.functions.size()) {
          fail(fn, "reference to unknown function id " + std::to_string(a.fun));
        }
        return prog_.functions[a.fun].type();
      case Atom::Kind::kNull:
        return Type::ptr();
      case Atom::Kind::kString:
        if (a.string_id >= prog_.strings.size()) {
          fail(fn, "reference to unknown string id " +
                       std::to_string(a.string_id));
        }
        return Type::ptr();
    }
    fail(fn, "malformed atom");
  }

  void expect(const Function& fn, const Env& env, const Atom& a,
              const Type& ty, const char* what) const {
    const Type actual = atom_type(fn, env, a);
    if (!(actual == ty)) {
      fail(fn, std::string(what) + ": expected " + ty.to_string() + ", got " +
                   actual.to_string());
    }
  }

  void bind(const Function& fn, Env& env, VarId var, Type ty) const {
    if (var >= fn.num_vars) {
      fail(fn, "binding of out-of-range variable v" + std::to_string(var));
    }
    if (var >= env.size()) fail(fn, "environment misconfigured");
    if (env[var].has_value()) {
      fail(fn, "variable v" + std::to_string(var) +
                   " bound twice (FIR variables are immutable)");
    }
    env[var] = std::move(ty);
  }

  void check_call(const Function& fn, const Env& env, const Atom& callee,
                  const std::vector<Atom>& args, bool leading_int) const {
    const Type fty = atom_type(fn, env, callee);
    if (fty.kind != TyKind::kFun) {
      fail(fn, "call of non-function value of type " + fty.to_string());
    }
    const std::size_t shift = leading_int ? 1 : 0;
    if (fty.params.size() != args.size() + shift) {
      fail(fn, "call arity mismatch: callee takes " +
                   std::to_string(fty.params.size()) + ", given " +
                   std::to_string(args.size() + shift));
    }
    if (leading_int && fty.params[0].kind != TyKind::kInt) {
      fail(fn, "speculative continuation must take int (the c value) first");
    }
    for (std::size_t i = 0; i < args.size(); ++i) {
      expect(fn, env, args[i], fty.params[i + shift], "call argument");
    }
  }

  void check_width(const Function& fn, std::uint32_t width) const {
    if (width != 1 && width != 2 && width != 4 && width != 8) {
      fail(fn, "raw access width must be 1, 2, 4 or 8");
    }
  }

  void check_function(const Function& fn) {
    if (fn.body == nullptr) fail(fn, "missing body");
    if (fn.var_names.size() != fn.num_vars) {
      fail(fn, "variable name table out of sync");
    }
    Env env(fn.num_vars);
    for (std::uint32_t i = 0; i < fn.arity(); ++i) env[i] = fn.param_tys[i];
    check_expr(fn, env, fn.body.get());
  }

  void check_expr(const Function& fn, Env env, const Expr* e) {
    for (; e != nullptr; e = e->next.get()) {
      switch (e->kind) {
        case ExprKind::kLetAtom: {
          const Type actual = atom_type(fn, env, e->a);
          if (!(actual == e->bind_ty)) {
            fail(fn, "let: annotation " + e->bind_ty.to_string() +
                         " does not match value type " + actual.to_string());
          }
          bind(fn, env, e->bind, e->bind_ty);
          break;
        }
        case ExprKind::kLetUnop:
          switch (e->unop) {
            case Unop::kNeg:
            case Unop::kNot:
            case Unop::kBitNot:
              expect(fn, env, e->a, Type::integer(), "unop operand");
              bind(fn, env, e->bind, Type::integer());
              break;
            case Unop::kFNeg:
              expect(fn, env, e->a, Type::real(), "unop operand");
              bind(fn, env, e->bind, Type::real());
              break;
            case Unop::kIntOfFloat:
              expect(fn, env, e->a, Type::real(), "unop operand");
              bind(fn, env, e->bind, Type::integer());
              break;
            case Unop::kFloatOfInt:
              expect(fn, env, e->a, Type::integer(), "unop operand");
              bind(fn, env, e->bind, Type::real());
              break;
          }
          break;
        case ExprKind::kLetBinop: {
          const Type operand =
              binop_is_float(e->binop) ? Type::real() : Type::integer();
          expect(fn, env, e->a, operand, "binop lhs");
          expect(fn, env, e->b, operand, "binop rhs");
          bind(fn, env, e->bind,
               binop_yields_int(e->binop) ? Type::integer() : Type::real());
          break;
        }
        case ExprKind::kLetAllocTagged:
          expect(fn, env, e->a, Type::integer(), "alloc size");
          (void)atom_type(fn, env, e->b);  // any initializer value
          bind(fn, env, e->bind, Type::ptr());
          break;
        case ExprKind::kLetAllocRaw:
          expect(fn, env, e->a, Type::integer(), "alloc_raw size");
          bind(fn, env, e->bind, Type::ptr());
          break;
        case ExprKind::kLetRead:
          expect(fn, env, e->a, Type::ptr(), "read pointer");
          expect(fn, env, e->b, Type::integer(), "read offset");
          bind(fn, env, e->bind, e->bind_ty);
          break;
        case ExprKind::kWrite:
          expect(fn, env, e->a, Type::ptr(), "write pointer");
          expect(fn, env, e->b, Type::integer(), "write offset");
          (void)atom_type(fn, env, e->c_atom);
          break;
        case ExprKind::kLetRawLoad:
          check_width(fn, e->width);
          expect(fn, env, e->a, Type::ptr(), "raw_load pointer");
          expect(fn, env, e->b, Type::integer(), "raw_load offset");
          bind(fn, env, e->bind, Type::integer());
          break;
        case ExprKind::kRawStore:
          check_width(fn, e->width);
          expect(fn, env, e->a, Type::ptr(), "raw_store pointer");
          expect(fn, env, e->b, Type::integer(), "raw_store offset");
          expect(fn, env, e->c_atom, Type::integer(), "raw_store value");
          break;
        case ExprKind::kLetRawLoadF:
          expect(fn, env, e->a, Type::ptr(), "raw_loadf pointer");
          expect(fn, env, e->b, Type::integer(), "raw_loadf offset");
          bind(fn, env, e->bind, Type::real());
          break;
        case ExprKind::kRawStoreF:
          expect(fn, env, e->a, Type::ptr(), "raw_storef pointer");
          expect(fn, env, e->b, Type::integer(), "raw_storef offset");
          expect(fn, env, e->c_atom, Type::real(), "raw_storef value");
          break;
        case ExprKind::kLetLen:
          expect(fn, env, e->a, Type::ptr(), "block_size operand");
          bind(fn, env, e->bind, Type::integer());
          break;
        case ExprKind::kLetPtrAdd:
          expect(fn, env, e->a, Type::ptr(), "ptr_add pointer");
          expect(fn, env, e->b, Type::integer(), "ptr_add delta");
          bind(fn, env, e->bind, Type::ptr());
          break;
        case ExprKind::kIf:
          expect(fn, env, e->a, Type::integer(), "branch condition");
          check_expr(fn, env, e->next.get());
          check_expr(fn, env, e->els.get());
          return;  // both arms checked recursively
        case ExprKind::kTailCall:
          check_call(fn, env, e->fun, e->args, /*leading_int=*/false);
          return;
        case ExprKind::kSpeculate:
          check_call(fn, env, e->fun, e->args, /*leading_int=*/true);
          return;
        case ExprKind::kCommit:
          expect(fn, env, e->a, Type::integer(), "commit level");
          check_call(fn, env, e->fun, e->args, /*leading_int=*/false);
          return;
        case ExprKind::kRollback:
        case ExprKind::kAbort:
          expect(fn, env, e->a, Type::integer(), "rollback level");
          expect(fn, env, e->b, Type::integer(), "rollback c value");
          return;
        case ExprKind::kMigrate:
          expect(fn, env, e->a, Type::ptr(), "migrate target");
          check_call(fn, env, e->fun, e->args, /*leading_int=*/false);
          return;
        case ExprKind::kLetExternal:
          for (const Atom& a : e->args) (void)atom_type(fn, env, a);
          if (e->ext_name.empty()) fail(fn, "external with empty name");
          bind(fn, env, e->bind, e->bind_ty);
          break;
        case ExprKind::kHalt:
          expect(fn, env, e->a, Type::integer(), "halt code");
          return;
      }
      if (e->next == nullptr) {
        fail(fn, "control falls off the end of a non-terminator");
      }
    }
  }

  const Program& prog_;
};

}  // namespace

void typecheck(const Program& program) { Checker(program).run(); }

}  // namespace mojave::fir
