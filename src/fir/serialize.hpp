// FIR program (de)serialization.
//
// "In order to achieve architecture independence, MCC never migrates the
// actual executable text. Instead it migrates the FIR code for the
// program, so the target machine can verify the safety of the code"
// (paper, Section 4.2.2). This is the encoder/decoder for that code
// stream; the canonical byte order comes from support/serialize.hpp and
// the decoder bounds-checks every field, so a hostile stream is rejected
// with ImageError rather than undefined behaviour.
#pragma once

#include "fir/ir.hpp"
#include "support/serialize.hpp"

namespace mojave::fir {

void write_program(Writer& w, const Program& program);
[[nodiscard]] Program read_program(Reader& r);

/// Convenience: encode to / decode from a byte vector.
[[nodiscard]] std::vector<std::byte> encode_program(const Program& program);
[[nodiscard]] Program decode_program(std::span<const std::byte> bytes);

}  // namespace mojave::fir
