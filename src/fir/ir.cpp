#include "fir/ir.hpp"

#include <sstream>

#include "support/error.hpp"

namespace mojave::fir {

std::string Type::to_string() const {
  switch (kind) {
    case TyKind::kUnit:
      return "unit";
    case TyKind::kInt:
      return "int";
    case TyKind::kFloat:
      return "float";
    case TyKind::kPtr:
      return "ptr";
    case TyKind::kFun: {
      std::ostringstream out;
      out << "(";
      for (std::size_t i = 0; i < params.size(); ++i) {
        if (i) out << ", ";
        out << params[i].to_string();
      }
      out << ") -> .";
      return out.str();
    }
  }
  return "?";
}

bool binop_is_float(Binop op) {
  switch (op) {
    case Binop::kFAdd:
    case Binop::kFSub:
    case Binop::kFMul:
    case Binop::kFDiv:
    case Binop::kFLt:
    case Binop::kFLe:
    case Binop::kFGt:
    case Binop::kFGe:
    case Binop::kFEq:
    case Binop::kFNe:
      return true;
    default:
      return false;
  }
}

bool binop_yields_int(Binop op) {
  switch (op) {
    case Binop::kFAdd:
    case Binop::kFSub:
    case Binop::kFMul:
    case Binop::kFDiv:
      return false;
    default:
      return true;
  }
}

const Function& Program::function(std::uint32_t id) const {
  if (id >= functions.size()) {
    throw TypeError("function id " + std::to_string(id) + " out of range");
  }
  return functions[id];
}

const Function* Program::find(const std::string& fn_name) const {
  for (const Function& f : functions) {
    if (f.name == fn_name) return &f;
  }
  return nullptr;
}

std::uint32_t Program::intern_string(const std::string& s) {
  for (std::uint32_t i = 0; i < strings.size(); ++i) {
    if (strings[i] == s) return i;
  }
  strings.push_back(s);
  return static_cast<std::uint32_t>(strings.size() - 1);
}

Program clone_program(const Program& p) {
  Program out;
  out.name = p.name;
  out.strings = p.strings;
  out.entry = p.entry;
  out.functions.reserve(p.functions.size());
  for (const Function& fn : p.functions) {
    Function copy;
    copy.name = fn.name;
    copy.id = fn.id;
    copy.param_tys = fn.param_tys;
    copy.num_vars = fn.num_vars;
    copy.var_names = fn.var_names;
    copy.body = clone_expr(*fn.body);
    out.functions.push_back(std::move(copy));
  }
  return out;
}

ExprPtr clone_expr(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->bind = e.bind;
  out->bind_ty = e.bind_ty;
  out->a = e.a;
  out->b = e.b;
  out->c_atom = e.c_atom;
  out->unop = e.unop;
  out->binop = e.binop;
  out->width = e.width;
  out->fun = e.fun;
  out->args = e.args;
  out->ext_name = e.ext_name;
  out->label = e.label;
  if (e.next) out->next = clone_expr(*e.next);
  if (e.els) out->els = clone_expr(*e.els);
  return out;
}

}  // namespace mojave::fir
