#include "fir/serialize.hpp"

#include <string>

#include "support/error.hpp"

namespace mojave::fir {

namespace {

constexpr std::uint32_t kMaxFunctions = 1u << 20;
constexpr std::uint32_t kMaxVars = 1u << 20;
constexpr std::uint32_t kMaxExprs = 1u << 24;

void write_type(Writer& w, const Type& ty) {
  w.u8(static_cast<std::uint8_t>(ty.kind));
  if (ty.kind == TyKind::kFun) {
    w.u32(static_cast<std::uint32_t>(ty.params.size()));
    for (const Type& p : ty.params) write_type(w, p);
  }
}

Type read_type(Reader& r, int depth = 0) {
  if (depth > 64) throw ImageError("type nesting too deep");
  const auto kind = static_cast<TyKind>(r.u8());
  switch (kind) {
    case TyKind::kUnit:
    case TyKind::kInt:
    case TyKind::kFloat:
    case TyKind::kPtr:
      return Type{kind, {}};
    case TyKind::kFun: {
      const std::uint32_t n = r.u32();
      if (n > kMaxVars) throw ImageError("function type too wide");
      Type ty{TyKind::kFun, {}};
      ty.params.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        ty.params.push_back(read_type(r, depth + 1));
      }
      return ty;
    }
  }
  throw ImageError("unknown type kind " +
                   std::to_string(static_cast<unsigned>(kind)));
}

void write_atom(Writer& w, const Atom& a) {
  w.u8(static_cast<std::uint8_t>(a.kind));
  switch (a.kind) {
    case Atom::Kind::kUnit:
      break;
    case Atom::Kind::kInt:
      w.i64(a.i);
      break;
    case Atom::Kind::kFloat:
      w.f64(a.f);
      break;
    case Atom::Kind::kVar:
      w.u32(a.var);
      break;
    case Atom::Kind::kFunRef:
      w.u32(a.fun);
      break;
    case Atom::Kind::kString:
      w.u32(a.string_id);
      break;
    case Atom::Kind::kNull:
      break;
  }
}

Atom read_atom(Reader& r) {
  const auto kind = static_cast<Atom::Kind>(r.u8());
  switch (kind) {
    case Atom::Kind::kUnit:
      return Atom::unit();
    case Atom::Kind::kInt:
      return Atom::integer(r.i64());
    case Atom::Kind::kFloat:
      return Atom::real(r.f64());
    case Atom::Kind::kVar:
      return Atom::variable(r.u32());
    case Atom::Kind::kFunRef:
      return Atom::fun_ref(r.u32());
    case Atom::Kind::kString:
      return Atom::string(r.u32());
    case Atom::Kind::kNull:
      return Atom::null_ptr();
  }
  throw ImageError("unknown atom kind " +
                   std::to_string(static_cast<unsigned>(kind)));
}

void write_atoms(Writer& w, const std::vector<Atom>& atoms) {
  w.u32(static_cast<std::uint32_t>(atoms.size()));
  for (const Atom& a : atoms) write_atom(w, a);
}

std::vector<Atom> read_atoms(Reader& r) {
  const std::uint32_t n = r.u32();
  if (n > kMaxVars) throw ImageError("argument list too long");
  std::vector<Atom> atoms;
  atoms.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) atoms.push_back(read_atom(r));
  return atoms;
}

void write_expr(Writer& w, const Expr* e) {
  // Straight-line chains are encoded iteratively (marker 1 = another node
  // follows); a null continuation is marker 0.
  while (e != nullptr) {
    w.u8(1);
    w.u8(static_cast<std::uint8_t>(e->kind));
    w.u32(e->bind);
    write_type(w, e->bind_ty);
    write_atom(w, e->a);
    write_atom(w, e->b);
    write_atom(w, e->c_atom);
    w.u8(static_cast<std::uint8_t>(e->unop));
    w.u8(static_cast<std::uint8_t>(e->binop));
    w.u32(e->width);
    write_atom(w, e->fun);
    write_atoms(w, e->args);
    w.str(e->ext_name);
    w.u32(e->label);
    if (e->kind == ExprKind::kIf) {
      write_expr(w, e->next.get());
      write_expr(w, e->els.get());
      return;
    }
    e = e->next.get();
  }
  w.u8(0);
}

ExprPtr read_expr(Reader& r, std::uint32_t& budget) {
  ExprPtr head;
  ExprPtr* tail = &head;
  while (true) {
    const std::uint8_t marker = r.u8();
    if (marker == 0) return head;
    if (marker != 1) throw ImageError("bad expression marker");
    if (budget-- == 0) throw ImageError("expression stream too large");
    auto e = std::make_unique<Expr>();
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(ExprKind::kHalt)) {
      throw ImageError("unknown expression kind");
    }
    e->kind = static_cast<ExprKind>(kind);
    e->bind = r.u32();
    e->bind_ty = read_type(r);
    e->a = read_atom(r);
    e->b = read_atom(r);
    e->c_atom = read_atom(r);
    e->unop = static_cast<Unop>(r.u8());
    e->binop = static_cast<Binop>(r.u8());
    e->width = r.u32();
    e->fun = read_atom(r);
    e->args = read_atoms(r);
    e->ext_name = r.str();
    e->label = r.u32();
    const bool is_if = e->kind == ExprKind::kIf;
    Expr* raw = e.get();
    *tail = std::move(e);
    if (is_if) {
      raw->next = read_expr(r, budget);
      raw->els = read_expr(r, budget);
      return head;
    }
    tail = &raw->next;
  }
}

}  // namespace

void write_program(Writer& w, const Program& program) {
  w.str(program.name);
  w.u32(program.entry);
  w.u32(static_cast<std::uint32_t>(program.strings.size()));
  for (const std::string& s : program.strings) w.str(s);
  w.u32(static_cast<std::uint32_t>(program.functions.size()));
  for (const Function& fn : program.functions) {
    w.str(fn.name);
    w.u32(fn.id);
    w.u32(static_cast<std::uint32_t>(fn.param_tys.size()));
    for (const Type& ty : fn.param_tys) write_type(w, ty);
    w.u32(fn.num_vars);
    w.u32(static_cast<std::uint32_t>(fn.var_names.size()));
    for (const std::string& n : fn.var_names) w.str(n);
    write_expr(w, fn.body.get());
  }
}

Program read_program(Reader& r) {
  Program program;
  program.name = r.str();
  program.entry = r.u32();
  const std::uint32_t nstrings = r.u32();
  if (nstrings > kMaxExprs) throw ImageError("string pool too large");
  program.strings.reserve(nstrings);
  for (std::uint32_t i = 0; i < nstrings; ++i) {
    program.strings.push_back(r.str());
  }
  const std::uint32_t nfuns = r.u32();
  if (nfuns > kMaxFunctions) throw ImageError("too many functions");
  std::uint32_t budget = kMaxExprs;
  program.functions.reserve(nfuns);
  for (std::uint32_t i = 0; i < nfuns; ++i) {
    Function fn;
    fn.name = r.str();
    fn.id = r.u32();
    if (fn.id != i) throw ImageError("function ids must be dense");
    const std::uint32_t nparams = r.u32();
    if (nparams > kMaxVars) throw ImageError("too many parameters");
    fn.param_tys.reserve(nparams);
    for (std::uint32_t p = 0; p < nparams; ++p) {
      fn.param_tys.push_back(read_type(r));
    }
    fn.num_vars = r.u32();
    if (fn.num_vars > kMaxVars) throw ImageError("too many variables");
    const std::uint32_t nnames = r.u32();
    if (nnames != fn.num_vars) throw ImageError("variable name table size");
    fn.var_names.reserve(nnames);
    for (std::uint32_t n = 0; n < nnames; ++n) {
      fn.var_names.push_back(r.str());
    }
    fn.body = read_expr(r, budget);
    if (fn.body == nullptr) throw ImageError("function with empty body");
    program.functions.push_back(std::move(fn));
  }
  return program;
}

std::vector<std::byte> encode_program(const Program& program) {
  Writer w;
  write_program(w, program);
  return w.take();
}

Program decode_program(std::span<const std::byte> bytes) {
  Reader r(bytes);
  Program p = read_program(r);
  if (!r.done()) throw ImageError("trailing bytes after program");
  return p;
}

}  // namespace mojave::fir
