// Pre-lowering legalization: canonicalize FIR so every backend sees the
// same operand shapes.
//
// The single rule today is operand canonicalization for binops: a constant
// left operand of a commutative operator is swapped to the right, and a
// comparison with a constant left operand is mirrored (5 < x becomes
// x > 5). Frontends and generated code are free to put literals wherever
// they like; after legalization the lowerer and the native tier's pattern
// matching only ever see the canonical form. The rewrite is trivially
// semantics-preserving and runs before typechecking, so every consumer of
// the program — interpreter, RISC simulator, native compiler, serializer —
// executes the same legalized FIR.
#pragma once

#include <cstddef>

#include "fir/ir.hpp"

namespace mojave::fir {

/// Legalize one function body in place. Returns the number of rewritten
/// expressions.
std::size_t legalize_function(Function& f);

/// Legalize every function of `p` in place. Returns the total number of
/// rewritten expressions.
std::size_t legalize(Program& p);

}  // namespace mojave::fir
