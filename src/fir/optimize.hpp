// FIR optimization passes.
//
// MCC positions the FIR as the place where analysis and transformation
// happen ("MCC provides an active test bed for research", Section 3; the
// FIR "could be used to verify the correctness of the programs"). This
// module implements the classical safe passes over the CPS representation:
//
//   * copy propagation   — `let x = a` binds are substituted away;
//   * constant folding   — unops/binops over literals are evaluated at
//     compile time with exactly the interpreter's semantics (division and
//     modulo by a literal zero are NOT folded: the runtime trap is the
//     program's defined behaviour);
//   * branch folding     — `if` over a literal condition is replaced by
//     the taken arm;
//   * dead-let elimination — pure, unused bindings are dropped. Heap
//     reads, allocations, and anything that can trap stay put.
//
// Passes iterate to a fixpoint (bounded). The result always re-typechecks,
// and the VM must produce identical observable behaviour — properties the
// test suite enforces on randomized programs.
#pragma once

#include "fir/ir.hpp"

namespace mojave::fir {

struct OptimizeStats {
  std::uint64_t constants_folded = 0;
  std::uint64_t copies_propagated = 0;
  std::uint64_t branches_folded = 0;
  std::uint64_t dead_lets_removed = 0;

  [[nodiscard]] std::uint64_t total() const {
    return constants_folded + copies_propagated + branches_folded +
           dead_lets_removed;
  }
};

/// Optimize in place; returns what was done.
OptimizeStats optimize(Program& program);

}  // namespace mojave::fir
