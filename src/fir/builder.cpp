#include "fir/builder.hpp"

namespace mojave::fir {

Expr& FunctionBuilder::append(ExprKind kind) {
  if (closed_ || tail_ == nullptr) {
    throw TypeError("append to a terminated FIR body in function " +
                    fn_->name);
  }
  *tail_ = std::make_unique<Expr>();
  Expr& e = **tail_;
  e.kind = kind;
  tail_ = &e.next;
  return e;
}

VarId FunctionBuilder::fresh(const std::string& name) {
  const VarId id = fn_->num_vars++;
  fn_->var_names.push_back(name);
  return id;
}

void FunctionBuilder::terminate() {
  closed_ = true;
  tail_ = nullptr;
}

VarId FunctionBuilder::let_atom(const std::string& name, Type ty, Atom a) {
  Expr& e = append(ExprKind::kLetAtom);
  e.bind = fresh(name);
  e.bind_ty = std::move(ty);
  e.a = a;
  return e.bind;
}

VarId FunctionBuilder::let_unop(const std::string& name, Unop op, Atom a) {
  Expr& e = append(ExprKind::kLetUnop);
  e.bind = fresh(name);
  e.unop = op;
  e.a = a;
  return e.bind;
}

VarId FunctionBuilder::let_binop(const std::string& name, Binop op, Atom a,
                                 Atom b) {
  Expr& e = append(ExprKind::kLetBinop);
  e.bind = fresh(name);
  e.binop = op;
  e.a = a;
  e.b = b;
  return e.bind;
}

VarId FunctionBuilder::let_alloc(const std::string& name, Atom nslots,
                                 Atom init) {
  Expr& e = append(ExprKind::kLetAllocTagged);
  e.bind = fresh(name);
  e.bind_ty = Type::ptr();
  e.a = nslots;
  e.b = init;
  return e.bind;
}

VarId FunctionBuilder::let_alloc_raw(const std::string& name, Atom nbytes) {
  Expr& e = append(ExprKind::kLetAllocRaw);
  e.bind = fresh(name);
  e.bind_ty = Type::ptr();
  e.a = nbytes;
  return e.bind;
}

VarId FunctionBuilder::let_read(const std::string& name, Type ty, Atom ptr,
                                Atom off) {
  Expr& e = append(ExprKind::kLetRead);
  e.bind = fresh(name);
  e.bind_ty = std::move(ty);
  e.a = ptr;
  e.b = off;
  return e.bind;
}

void FunctionBuilder::write(Atom ptr, Atom off, Atom value) {
  Expr& e = append(ExprKind::kWrite);
  e.a = ptr;
  e.b = off;
  e.c_atom = value;
}

VarId FunctionBuilder::let_raw_load(const std::string& name,
                                    std::uint32_t width, Atom ptr, Atom off) {
  Expr& e = append(ExprKind::kLetRawLoad);
  e.bind = fresh(name);
  e.bind_ty = Type::integer();
  e.width = width;
  e.a = ptr;
  e.b = off;
  return e.bind;
}

void FunctionBuilder::raw_store(std::uint32_t width, Atom ptr, Atom off,
                                Atom value) {
  Expr& e = append(ExprKind::kRawStore);
  e.width = width;
  e.a = ptr;
  e.b = off;
  e.c_atom = value;
}

VarId FunctionBuilder::let_raw_loadf(const std::string& name, Atom ptr,
                                     Atom off) {
  Expr& e = append(ExprKind::kLetRawLoadF);
  e.bind = fresh(name);
  e.bind_ty = Type::real();
  e.a = ptr;
  e.b = off;
  return e.bind;
}

void FunctionBuilder::raw_storef(Atom ptr, Atom off, Atom value) {
  Expr& e = append(ExprKind::kRawStoreF);
  e.a = ptr;
  e.b = off;
  e.c_atom = value;
}

VarId FunctionBuilder::let_len(const std::string& name, Atom ptr) {
  Expr& e = append(ExprKind::kLetLen);
  e.bind = fresh(name);
  e.bind_ty = Type::integer();
  e.a = ptr;
  return e.bind;
}

VarId FunctionBuilder::let_ptr_add(const std::string& name, Atom ptr,
                                   Atom delta) {
  Expr& e = append(ExprKind::kLetPtrAdd);
  e.bind = fresh(name);
  e.bind_ty = Type::ptr();
  e.a = ptr;
  e.b = delta;
  return e.bind;
}

VarId FunctionBuilder::let_external(const std::string& name, Type ty,
                                    const std::string& external,
                                    std::vector<Atom> args) {
  Expr& e = append(ExprKind::kLetExternal);
  e.bind = fresh(name);
  e.bind_ty = std::move(ty);
  e.ext_name = external;
  e.args = std::move(args);
  return e.bind;
}

void FunctionBuilder::branch(
    Atom cond, const std::function<void(FunctionBuilder&)>& then_fn,
    const std::function<void(FunctionBuilder&)>& else_fn) {
  Expr& e = append(ExprKind::kIf);
  e.a = cond;
  terminate();  // both arms own their continuations

  FunctionBuilder then_b(fn_, &e.next);
  then_fn(then_b);
  if (!then_b.closed_) {
    throw TypeError("then-branch not terminated in " + fn_->name);
  }
  FunctionBuilder else_b(fn_, &e.els);
  else_fn(else_b);
  if (!else_b.closed_) {
    throw TypeError("else-branch not terminated in " + fn_->name);
  }
}

void FunctionBuilder::tail_call(Atom fun, std::vector<Atom> args) {
  Expr& e = append(ExprKind::kTailCall);
  e.fun = fun;
  e.args = std::move(args);
  terminate();
}

void FunctionBuilder::speculate(Atom fun, std::vector<Atom> args) {
  Expr& e = append(ExprKind::kSpeculate);
  e.fun = fun;
  e.args = std::move(args);
  terminate();
}

void FunctionBuilder::commit(Atom level, Atom fun, std::vector<Atom> args) {
  Expr& e = append(ExprKind::kCommit);
  e.a = level;
  e.fun = fun;
  e.args = std::move(args);
  terminate();
}

void FunctionBuilder::rollback(Atom level, Atom c) {
  Expr& e = append(ExprKind::kRollback);
  e.a = level;
  e.b = c;
  terminate();
}

void FunctionBuilder::abort_spec(Atom level, Atom c) {
  Expr& e = append(ExprKind::kAbort);
  e.a = level;
  e.b = c;
  terminate();
}

void FunctionBuilder::migrate(MigrateLabel label, Atom target, Atom fun,
                              std::vector<Atom> args) {
  Expr& e = append(ExprKind::kMigrate);
  e.label = label;
  e.a = target;
  e.fun = fun;
  e.args = std::move(args);
  terminate();
}

void FunctionBuilder::halt(Atom code) {
  Expr& e = append(ExprKind::kHalt);
  e.a = code;
  terminate();
}

std::uint32_t ProgramBuilder::declare(const std::string& name,
                                      std::vector<Type> param_tys) {
  for (const Function& f : fns_) {
    if (f.name == name) throw TypeError("duplicate function name: " + name);
  }
  Function fn;
  fn.name = name;
  fn.id = static_cast<std::uint32_t>(fns_.size());
  fn.param_tys = std::move(param_tys);
  fn.num_vars = fn.arity();
  fns_.push_back(std::move(fn));
  return fns_.back().id;
}

FunctionBuilder ProgramBuilder::define(std::uint32_t id,
                                       std::vector<std::string> param_names) {
  Function& fn = fns_.at(id);
  if (fn.body != nullptr) throw TypeError("function defined twice: " + fn.name);
  if (param_names.size() != fn.arity()) {
    throw TypeError("parameter name count mismatch for " + fn.name);
  }
  fn.var_names = std::move(param_names);
  return FunctionBuilder(&fn, &fn.body);
}

namespace {
void check_terminated(const Function& fn, const Expr* e) {
  if (e == nullptr) {
    throw TypeError("unterminated body in function " + fn.name);
  }
  switch (e->kind) {
    case ExprKind::kTailCall:
    case ExprKind::kSpeculate:
    case ExprKind::kCommit:
    case ExprKind::kRollback:
    case ExprKind::kAbort:
    case ExprKind::kMigrate:
    case ExprKind::kHalt:
      return;
    case ExprKind::kIf:
      check_terminated(fn, e->next.get());
      check_terminated(fn, e->els.get());
      return;
    default:
      check_terminated(fn, e->next.get());
      return;
  }
}
}  // namespace

Program ProgramBuilder::take(const std::string& entry_name) {
  prog_.functions.reserve(fns_.size());
  for (Function& fn : fns_) prog_.functions.push_back(std::move(fn));
  fns_.clear();
  const Function* entry = prog_.find(entry_name);
  if (entry == nullptr) throw TypeError("no entry function: " + entry_name);
  for (const Function& fn : prog_.functions) {
    if (fn.body == nullptr) {
      throw TypeError("function declared but never defined: " + fn.name);
    }
    check_terminated(fn, fn.body.get());
  }
  prog_.entry = entry->id;
  return std::move(prog_);
}

}  // namespace mojave::fir
