// Fluent construction of FIR programs.
//
// The MojC frontend lowers through this API, and tests/benches use it to
// assemble programs directly. Functions are declared first (so mutually
// recursive continuations can reference each other) and defined afterwards.
//
//   ProgramBuilder pb("demo");
//   auto loop = pb.declare("loop", {Type::integer()});
//   {
//     FunctionBuilder fb = pb.define(loop, {"i"});
//     auto cond = fb.let_binop("c", Binop::kLt, fb.arg(0), Atom::integer(10));
//     fb.branch(fb.v(cond),
//               [&](FunctionBuilder& t) { ... t.tail_call(...); },
//               [&](FunctionBuilder& e) { e.halt(Atom::integer(0)); });
//   }
//   Program p = pb.take("loop");
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "fir/ir.hpp"
#include "support/error.hpp"

namespace mojave::fir {

class ProgramBuilder;

class FunctionBuilder {
 public:
  /// Variable id of parameter `i`.
  [[nodiscard]] VarId param(std::uint32_t i) const {
    if (i >= fn_->arity()) throw TypeError("parameter index out of range");
    return i;
  }
  /// Atom for parameter `i`.
  [[nodiscard]] Atom arg(std::uint32_t i) const {
    return Atom::variable(param(i));
  }
  /// Atom for a variable.
  [[nodiscard]] static Atom v(VarId var) { return Atom::variable(var); }

  VarId let_atom(const std::string& name, Type ty, Atom a);
  VarId let_unop(const std::string& name, Unop op, Atom a);
  VarId let_binop(const std::string& name, Binop op, Atom a, Atom b);
  VarId let_alloc(const std::string& name, Atom nslots, Atom init);
  VarId let_alloc_raw(const std::string& name, Atom nbytes);
  VarId let_read(const std::string& name, Type ty, Atom ptr, Atom off);
  void write(Atom ptr, Atom off, Atom value);
  VarId let_raw_load(const std::string& name, std::uint32_t width, Atom ptr,
                     Atom off);
  void raw_store(std::uint32_t width, Atom ptr, Atom off, Atom value);
  VarId let_raw_loadf(const std::string& name, Atom ptr, Atom off);
  void raw_storef(Atom ptr, Atom off, Atom value);
  VarId let_len(const std::string& name, Atom ptr);
  VarId let_ptr_add(const std::string& name, Atom ptr, Atom delta);
  VarId let_external(const std::string& name, Type ty,
                     const std::string& external, std::vector<Atom> args);

  /// if (cond != 0) then-branch else else-branch. Both branches must
  /// terminate (CPS: there is no join point).
  void branch(Atom cond, const std::function<void(FunctionBuilder&)>& then_fn,
              const std::function<void(FunctionBuilder&)>& else_fn);

  void tail_call(Atom fun, std::vector<Atom> args);
  void speculate(Atom fun, std::vector<Atom> args);
  void commit(Atom level, Atom fun, std::vector<Atom> args);
  void rollback(Atom level, Atom c);
  void abort_spec(Atom level, Atom c);
  void migrate(MigrateLabel label, Atom target, Atom fun,
               std::vector<Atom> args);
  void halt(Atom code);

 private:
  friend class ProgramBuilder;
  FunctionBuilder(Function* fn, ExprPtr* tail) : fn_(fn), tail_(tail) {}

  Expr& append(ExprKind kind);
  VarId fresh(const std::string& name);
  void terminate();

  Function* fn_;
  ExprPtr* tail_;
  bool closed_ = false;
};

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name) { prog_.name = std::move(name); }

  /// Reserve a function id so bodies can reference it before definition.
  std::uint32_t declare(const std::string& name, std::vector<Type> param_tys);

  /// Begin the body of a declared function. The returned builder must emit
  /// a terminator before the program is taken.
  [[nodiscard]] FunctionBuilder define(std::uint32_t id,
                                       std::vector<std::string> param_names);

  /// Atom for an interned string literal.
  [[nodiscard]] Atom str(const std::string& s) {
    return Atom::string(prog_.intern_string(s));
  }

  [[nodiscard]] Program take(const std::string& entry_name);

 private:
  Program prog_;
  /// Functions under construction live in a deque so FunctionBuilder's
  /// Function* stays valid while later declarations arrive; take() moves
  /// them into the program's dense vector.
  std::deque<Function> fns_;
};

}  // namespace mojave::fir
