// Human-readable FIR pretty-printer, for diagnostics and golden tests.
#pragma once

#include <string>

#include "fir/ir.hpp"

namespace mojave::fir {

[[nodiscard]] std::string to_string(const Program& program);
[[nodiscard]] std::string to_string(const Function& fn);

}  // namespace mojave::fir
