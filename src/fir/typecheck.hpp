// FIR typechecker.
//
// "On an unpack operation, the FIR code is type-checked, recompiled, and
// execution is resumed" (paper, Section 4.2.2). The same checker validates
// freshly built programs (frontend output, builder output) and inbound
// migrated programs, so a malicious or corrupt image cannot smuggle an
// ill-typed program onto a host.
//
// Invariants enforced:
//  * single static assignment: every variable is bound exactly once and
//    only used after its binding (FIR variables are immutable);
//  * every operator is applied at its operand types;
//  * every call site matches the callee's parameter list exactly;
//  * speculate continuations take an int (the c value) first;
//  * migrate labels are unique program-wide (they correlate runtime resume
//    points with FIR locations);
//  * every control path ends in a terminator.
#pragma once

#include "fir/ir.hpp"

namespace mojave::fir {

/// Throws TypeError on the first violation.
void typecheck(const Program& program);

}  // namespace mojave::fir
