// The FIR: Mojave's semi-functional intermediate representation.
//
// "MCC compiles all source languages to a semi-functional intermediate
// representation (FIR). FIR is a type-safe intermediate language where
// variables are immutable, but heap values can be modified. Function calls
// in the source language are converted to tail-calls using continuation
// passing style. Loops are expressed with recursive functions."
// (paper, Section 3)
//
// A program is a set of functions; a function body is a chain of
// let-bindings ending in a control transfer (tail call, conditional, halt)
// or one of the four distributed-computing pseudo-instructions:
//
//   speculate f(c, a1..an)     — enter a level, call f with c = level id
//   commit [l] f(a1..an)       — fold level l, continue with f
//   rollback [l, c]            — revert levels ≥ l, re-enter l (retry)
//   abort [l, c]               — revert levels ≥ l without re-entry
//   migrate [i, target] f(..)  — whole-process migration, resume at f
//
// The FIR is machine-independent and fully serializable (see
// fir/serialize.hpp): migration ships FIR, never native code, so the
// destination can re-verify and recompile it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/common.hpp"

namespace mojave::fir {

using VarId = std::uint32_t;

// --- Types -------------------------------------------------------------------

enum class TyKind : std::uint8_t {
  kUnit = 0,
  kInt = 1,
  kFloat = 2,
  kPtr = 3,  ///< pointer to a heap block (tagged or raw; checked at runtime)
  kFun = 4,  ///< continuation: parameter types, no return (CPS)
};

struct Type {
  TyKind kind = TyKind::kUnit;
  std::vector<Type> params;  ///< kFun only

  [[nodiscard]] static Type unit() { return {TyKind::kUnit, {}}; }
  [[nodiscard]] static Type integer() { return {TyKind::kInt, {}}; }
  [[nodiscard]] static Type real() { return {TyKind::kFloat, {}}; }
  [[nodiscard]] static Type ptr() { return {TyKind::kPtr, {}}; }
  [[nodiscard]] static Type fun(std::vector<Type> params) {
    return {TyKind::kFun, std::move(params)};
  }

  [[nodiscard]] bool operator==(const Type& o) const {
    return kind == o.kind && params == o.params;
  }

  [[nodiscard]] std::string to_string() const;
};

// --- Atoms ---------------------------------------------------------------------

/// An atom is a value that needs no computation: a literal, a variable, a
/// reference to a function, or a reference to the program string pool.
struct Atom {
  enum class Kind : std::uint8_t {
    kUnit = 0,
    kInt = 1,
    kFloat = 2,
    kVar = 3,
    kFunRef = 4,
    kString = 5,  ///< index into Program::strings; evaluates to a ptr
    kNull = 6,    ///< the null pointer: table index 0, traps on deref
  };

  Kind kind = Kind::kUnit;
  std::int64_t i = 0;
  double f = 0.0;
  VarId var = 0;
  std::uint32_t fun = 0;
  std::uint32_t string_id = 0;

  [[nodiscard]] static Atom unit() { return {}; }
  [[nodiscard]] static Atom integer(std::int64_t v) {
    Atom a;
    a.kind = Kind::kInt;
    a.i = v;
    return a;
  }
  [[nodiscard]] static Atom real(double v) {
    Atom a;
    a.kind = Kind::kFloat;
    a.f = v;
    return a;
  }
  [[nodiscard]] static Atom variable(VarId v) {
    Atom a;
    a.kind = Kind::kVar;
    a.var = v;
    return a;
  }
  [[nodiscard]] static Atom fun_ref(std::uint32_t id) {
    Atom a;
    a.kind = Kind::kFunRef;
    a.fun = id;
    return a;
  }
  [[nodiscard]] static Atom string(std::uint32_t id) {
    Atom a;
    a.kind = Kind::kString;
    a.string_id = id;
    return a;
  }
  [[nodiscard]] static Atom null_ptr() {
    Atom a;
    a.kind = Kind::kNull;
    return a;
  }
};

// --- Operators -------------------------------------------------------------------

enum class Unop : std::uint8_t {
  kNeg = 0,         // int negate
  kNot = 1,         // logical not (0 → 1, nonzero → 0)
  kBitNot = 2,      // bitwise complement
  kFNeg = 3,        // float negate
  kIntOfFloat = 4,  // truncate
  kFloatOfInt = 5,
};

enum class Binop : std::uint8_t {
  // integer arithmetic
  kAdd = 0, kSub, kMul, kDiv, kMod,
  kAnd, kOr, kXor, kShl, kShr,
  // integer comparison (result: int 0/1)
  kLt, kLe, kGt, kGe, kEq, kNe,
  // float arithmetic
  kFAdd, kFSub, kFMul, kFDiv,
  // float comparison (result: int 0/1)
  kFLt, kFLe, kFGt, kFGe, kFEq, kFNe,
};

[[nodiscard]] bool binop_is_float(Binop op);
[[nodiscard]] bool binop_yields_int(Binop op);

// --- Expressions -----------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : std::uint8_t {
  kLetAtom = 0,      // let bind : ty = a
  kLetUnop,          // let bind = unop a
  kLetBinop,         // let bind = a binop b
  kLetAllocTagged,   // let bind = alloc(a slots, init = b)
  kLetAllocRaw,      // let bind = alloc_raw(a bytes)
  kLetRead,          // let bind : ty = read(a, b)   — tag checked vs ty
  kWrite,            // write(a, b) := c_atom
  kLetRawLoad,       // let bind = raw_load{width}(a, b)
  kRawStore,         // raw_store{width}(a, b) := c_atom
  kLetRawLoadF,      // let bind = raw_loadf(a, b)
  kRawStoreF,        // raw_storef(a, b) := c_atom
  kLetLen,           // let bind = block_size(a)  (slots or bytes)
  kLetPtrAdd,        // let bind = ptr_add(a, b)  — derived (base, off+b) pair
  kIf,               // if a != 0 then next else els
  kTailCall,         // fun(args...)
  kSpeculate,        // speculate fun(c, args...)
  kCommit,           // commit [a] fun(args...)
  kRollback,         // rollback [a, b]   (retry)
  kAbort,            // abort [a, b]      (no re-entry)
  kMigrate,          // migrate [label, a] fun(args...)
  kLetExternal,      // let bind : ty = external name(args...)
  kHalt,             // halt(a)
};

/// One FIR expression node. A single fat struct keeps the representation
/// simple, serializable, and cheap to traverse; unused fields are default.
struct Expr {
  ExprKind kind = ExprKind::kHalt;

  VarId bind = 0;
  Type bind_ty;

  Atom a, b, c_atom;
  Unop unop = Unop::kNeg;
  Binop binop = Binop::kAdd;
  std::uint32_t width = 8;  ///< raw access width in bytes

  Atom fun;                 ///< callee for calls/speculate/commit/migrate
  std::vector<Atom> args;
  std::string ext_name;     ///< kLetExternal
  MigrateLabel label = 0;   ///< kMigrate

  ExprPtr next;             ///< continuation / then-branch
  ExprPtr els;              ///< else-branch (kIf only)
};

// --- Functions & programs -----------------------------------------------------------

struct Function {
  std::string name;
  std::uint32_t id = 0;
  std::vector<Type> param_tys;
  /// Parameters are variables 0..param_tys.size()-1; locals follow.
  std::uint32_t num_vars = 0;
  std::vector<std::string> var_names;  ///< diagnostic names, indexed by VarId
  ExprPtr body;

  [[nodiscard]] std::uint32_t arity() const {
    return static_cast<std::uint32_t>(param_tys.size());
  }
  [[nodiscard]] Type type() const { return Type::fun(param_tys); }
};

struct Program {
  std::string name;
  std::vector<Function> functions;
  std::vector<std::string> strings;
  std::uint32_t entry = 0;

  [[nodiscard]] const Function& function(std::uint32_t id) const;
  [[nodiscard]] const Function* find(const std::string& name) const;
  [[nodiscard]] std::uint32_t intern_string(const std::string& s);
};

/// Deep copy of an expression tree (used by optimization & tests).
[[nodiscard]] ExprPtr clone_expr(const Expr& e);

/// Deep copy of a whole program (SPMD launches compile one program and
/// hand each node its own copy).
[[nodiscard]] Program clone_program(const Program& p);

}  // namespace mojave::fir
