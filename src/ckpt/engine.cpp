#include "ckpt/engine.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <system_error>

#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"
#include "support/serialize.hpp"

namespace mojave::ckpt {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kExtentMagic = 0x31584a4d;  // 'M' 'J' 'X' '1'
constexpr std::uint8_t kKindPut = 1;
constexpr std::uint8_t kKindTombstone = 2;
constexpr std::uint8_t kCodecRaw = 0;
constexpr std::uint8_t kCodecZeroRle = 1;
// magic(4) + kind(1) + seq(8) + hi(8) + lo(8) + raw_len(4) + stored_len(4)
// + codec(1); the payload follows, then the u64 checksum trailer.
constexpr std::uint64_t kHeaderBytes = 38;
constexpr std::uint64_t kTrailerBytes = 8;

struct EngineMetrics {
  obs::Counter& puts;
  obs::Counter& dedup_hits;
  obs::Counter& tombstones;
  obs::Counter& bytes_written;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& compactions;
  obs::Counter& read_errors;
  obs::Gauge& extents;
  obs::Gauge& live_chunks;

  static EngineMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static EngineMetrics m{reg.counter("ckpt.engine.puts"),
                           reg.counter("ckpt.engine.dedup_hits"),
                           reg.counter("ckpt.engine.tombstones"),
                           reg.counter("ckpt.engine.bytes_written"),
                           reg.counter("ckpt.engine.cache_hits"),
                           reg.counter("ckpt.engine.cache_misses"),
                           reg.counter("ckpt.engine.compactions"),
                           reg.counter("ckpt.engine.read_errors"),
                           reg.gauge("ckpt.engine.extents"),
                           reg.gauge("ckpt.engine.live_chunks")};
    return m;
  }
};

[[nodiscard]] std::vector<std::byte> read_file_range(const fs::path& path,
                                                     std::uint64_t off,
                                                     std::uint64_t len) {
  std::vector<std::byte> out(len);
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw ImageError("extent open failed: " + path.string());
  std::uint64_t got = 0;
  while (got < len) {
    const ssize_t n =
        ::pread(fd, out.data() + got, len - got,
                static_cast<off_t>(off + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw ImageError("extent read failed: " + path.string());
    }
    if (n == 0) break;  // shorter than expected (torn tail)
    got += static_cast<std::uint64_t>(n);
  }
  ::close(fd);
  out.resize(got);
  return out;
}

[[nodiscard]] double seconds_since_mtime(const fs::path& path) {
  std::error_code ec;
  const auto mtime = fs::last_write_time(path, ec);
  if (ec) return 0.0;
  const auto now = fs::file_time_type::clock::now();
  return std::chrono::duration<double>(now - mtime).count();
}

}  // namespace

std::vector<std::byte> zero_rle_compress(std::span<const std::byte> raw) {
  // Token stream: u8 kind (0 zero-run, 1 literal) | u32 len | literal
  // bytes when kind == 1. Zero runs shorter than the 5-byte token cost
  // ride inside the surrounding literal.
  constexpr std::size_t kMinRun = 16;
  Writer w;
  std::size_t i = 0;
  std::size_t lit_start = 0;
  const auto flush_literal = [&](std::size_t end) {
    std::size_t pos = lit_start;
    while (pos < end) {
      const std::size_t n =
          std::min<std::size_t>(end - pos, 0xffffffffu);
      w.u8(1);
      w.u32(static_cast<std::uint32_t>(n));
      w.bytes(raw.subspan(pos, n));
      pos += n;
    }
  };
  while (i < raw.size()) {
    if (raw[i] == std::byte{0}) {
      std::size_t j = i;
      while (j < raw.size() && raw[j] == std::byte{0}) ++j;
      if (j - i >= kMinRun) {
        flush_literal(i);
        std::size_t run = j - i;
        while (run > 0) {
          const std::size_t n = std::min<std::size_t>(run, 0xffffffffu);
          w.u8(0);
          w.u32(static_cast<std::uint32_t>(n));
          run -= n;
        }
        lit_start = j;
      }
      i = j;
    } else {
      ++i;
    }
  }
  flush_literal(raw.size());
  return w.take();
}

std::vector<std::byte> zero_rle_decompress(std::span<const std::byte> stored,
                                           std::uint32_t raw_len) {
  Reader r(stored);
  std::vector<std::byte> out;
  out.reserve(raw_len);
  while (!r.done()) {
    const std::uint8_t kind = r.u8();
    const std::uint32_t n = r.u32();
    if (out.size() + n > raw_len) throw ImageError("rle overrun");
    if (kind == 0) {
      out.resize(out.size() + n, std::byte{0});
    } else if (kind == 1) {
      const auto lit = r.bytes(n);
      out.insert(out.end(), lit.begin(), lit.end());
    } else {
      throw ImageError("rle bad token");
    }
  }
  if (out.size() != raw_len) throw ImageError("rle short decode");
  return out;
}

ChunkEngine::ChunkEngine(std::filesystem::path dir)
    : ChunkEngine(std::move(dir), Options{}) {}

ChunkEngine::ChunkEngine(std::filesystem::path dir, Options opts)
    : dir_(std::move(dir)), opts_(opts) {
  fs::create_directories(dir_);
  std::random_device rd;
  active_nonce_ = (static_cast<std::uint64_t>(::getpid()) << 40) ^
                  (static_cast<std::uint64_t>(rd()) << 8) ^ rd();
  std::lock_guard lock(mu_);
  refresh_locked();
}

ChunkEngine::~ChunkEngine() {
  std::lock_guard lock(mu_);
  if (active_fd_ >= 0) {
    if (dirty_) ::fsync(active_fd_);
    ::close(active_fd_);
    active_fd_ = -1;
  }
}

void ChunkEngine::open_active_locked() {
  char name[64];
  std::snprintf(name, sizeof(name), "ext-%d-%016llx-%u.x",
                static_cast<int>(::getpid()),
                static_cast<unsigned long long>(active_nonce_),
                active_count_);
  ++active_count_;
  const fs::path path = dir_ / name;
  const int fd = ::open(path.c_str(),
                        O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) throw ImageError("extent create failed: " + path.string());
  active_fd_ = fd;
  active_bytes_ = 0;
  active_id_ = static_cast<std::uint32_t>(extents_.size());
  extents_.push_back(Extent{path, 0, 0, 0, /*own=*/true});
}

void ChunkEngine::rotate_if_needed_locked() {
  if (active_fd_ >= 0 && active_bytes_ < opts_.extent_target_bytes) return;
  if (active_fd_ >= 0) {
    if (dirty_) {
      ::fsync(active_fd_);
      dirty_ = false;
    }
    ::close(active_fd_);
    active_fd_ = -1;
  }
  open_active_locked();
}

void ChunkEngine::append_record_locked(std::uint8_t kind, const ChunkKey& key,
                                       std::uint32_t raw_len,
                                       std::span<const std::byte> stored,
                                       std::uint8_t codec) {
  Writer w;
  w.u32(kExtentMagic);
  w.u8(kind);
  w.u64(next_seq_);
  w.u64(key.hi);
  w.u64(key.lo);
  w.u32(raw_len);
  w.u32(static_cast<std::uint32_t>(stored.size()));
  w.u8(codec);
  w.bytes(stored);
  const auto body = w.view().subspan(4);  // everything after the magic
  w.u64(fnv1a(body));
  const auto rec = w.view();
  std::size_t off = 0;
  while (off < rec.size()) {
    const ssize_t n = ::write(active_fd_, rec.data() + off, rec.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ImageError("extent append failed");
    }
    off += static_cast<std::size_t>(n);
  }
  active_bytes_ += rec.size();
  extents_[active_id_].scanned += rec.size();
  dirty_ = true;
  EngineMetrics::get().bytes_written.inc(rec.size());
}

void ChunkEngine::refresh_locked() {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() != ".x") continue;
    const auto known =
        std::find_if(extents_.begin(), extents_.end(),
                     [&](const Extent& e) { return e.path == p; });
    if (known == extents_.end()) {
      extents_.push_back(Extent{p, 0, 0, 0, /*own=*/false});
      scan_extent_locked(static_cast<std::uint32_t>(extents_.size() - 1));
    } else if (!known->own) {
      std::error_code sec;
      const std::uint64_t size = fs::file_size(p, sec);
      if (!sec && size > known->scanned) {
        scan_extent_locked(
            static_cast<std::uint32_t>(known - extents_.begin()));
      }
    }
  }
}

void ChunkEngine::scan_extent_locked(std::uint32_t id) {
  Extent& ext = extents_[id];
  std::error_code ec;
  const std::uint64_t size = fs::file_size(ext.path, ec);
  if (ec || size <= ext.scanned) return;
  const std::vector<std::byte> data =
      read_file_range(ext.path, ext.scanned, size - ext.scanned);
  std::size_t pos = 0;
  while (pos + kHeaderBytes + kTrailerBytes <= data.size()) {
    Reader r{std::span(data).subspan(pos)};
    const std::uint32_t magic = r.u32();
    if (magic != kExtentMagic) break;  // torn or foreign bytes: stop here
    const std::uint8_t kind = r.u8();
    const std::uint64_t seq = r.u64();
    const std::uint64_t hi = r.u64();
    const std::uint64_t lo = r.u64();
    const std::uint32_t raw_len = r.u32();
    const std::uint32_t stored_len = r.u32();
    const std::uint8_t codec = r.u8();
    const std::uint64_t rec_len = kHeaderBytes + stored_len + kTrailerBytes;
    if (pos + rec_len > data.size()) break;  // incomplete tail record
    if (kind != kKindPut && kind != kKindTombstone) break;
    const std::uint64_t cost = rec_len;
    const KeyPair key{hi, lo};
    next_seq_ = std::max(next_seq_, seq + 1);
    if (kind == kKindTombstone) {
      ext.dead_stored += cost;
      auto& tomb = tombs_[key];
      if (seq >= tomb.seq) tomb = TombInfo{seq, id};
      const auto it = index_.find(key);
      if (it != index_.end() && it->second.seq < seq) {
        Extent& old = extents_[it->second.extent_id];
        const std::uint64_t old_cost = record_cost(it->second);
        old.live_stored -= std::min(old.live_stored, old_cost);
        old.dead_stored += old_cost;
        index_.erase(it);
        cache_erase_locked(key);
      }
    } else {
      const auto tomb = tombs_.find(key);
      const bool tombed = tomb != tombs_.end() && tomb->second.seq > seq;
      const auto it = index_.find(key);
      if (tombed || (it != index_.end() && it->second.seq >= seq)) {
        ext.dead_stored += cost;
      } else {
        if (it != index_.end()) {
          Extent& old = extents_[it->second.extent_id];
          const std::uint64_t old_cost = record_cost(it->second);
          old.live_stored -= std::min(old.live_stored, old_cost);
          old.dead_stored += old_cost;
        }
        index_[key] = IndexEntry{id, ext.scanned + pos, raw_len,
                                 stored_len, codec, seq};
        ext.live_stored += cost;
        if (!tombed && tomb != tombs_.end()) tombs_.erase(tomb);
      }
    }
    pos += rec_len;
  }
  ext.scanned += pos;
}

std::uint64_t ChunkEngine::record_cost(const IndexEntry& e) const {
  return kHeaderBytes + e.stored_len + kTrailerBytes;
}

bool ChunkEngine::exists(const ChunkKey& key) {
  std::lock_guard lock(mu_);
  const KeyPair k{key.hi, key.lo};
  if (index_.count(k) != 0) return true;
  refresh_locked();
  return index_.count(k) != 0;
}

void ChunkEngine::put(const ChunkKey& key, std::span<const std::byte> data) {
  std::lock_guard lock(mu_);
  auto& m = EngineMetrics::get();
  const KeyPair k{key.hi, key.lo};
  if (index_.count(k) != 0) {
    m.dedup_hits.inc();
    return;
  }
  std::uint8_t codec = kCodecRaw;
  std::vector<std::byte> packed;
  std::span<const std::byte> stored = data;
  if (opts_.compress) {
    packed = zero_rle_compress(data);
    if (packed.size() < data.size()) {
      codec = kCodecZeroRle;
      stored = packed;
    }
  }
  rotate_if_needed_locked();
  const std::uint64_t seq = next_seq_;
  const std::uint64_t offset = active_bytes_;
  append_record_locked(kKindPut, key, static_cast<std::uint32_t>(data.size()),
                       stored, codec);
  ++next_seq_;
  index_[k] = IndexEntry{active_id_, offset, static_cast<std::uint32_t>(data.size()),
                         static_cast<std::uint32_t>(stored.size()), codec, seq};
  extents_[active_id_].live_stored +=
      kHeaderBytes + stored.size() + kTrailerBytes;
  tombs_.erase(k);
  cache_insert_locked(k, std::vector<std::byte>(data.begin(), data.end()));
  m.puts.inc();
}

std::optional<std::vector<std::byte>> ChunkEngine::read(const ChunkKey& key) {
  std::lock_guard lock(mu_);
  if (index_.count(KeyPair{key.hi, key.lo}) == 0) refresh_locked();
  return read_locked(key);
}

std::optional<std::vector<std::byte>> ChunkEngine::read_locked(
    const ChunkKey& key) {
  auto& m = EngineMetrics::get();
  const KeyPair k{key.hi, key.lo};
  const auto it = index_.find(k);
  if (it == index_.end()) return std::nullopt;
  if (auto cached = cache_get_locked(k)) {
    m.cache_hits.inc();
    return cached;
  }
  m.cache_misses.inc();
  const IndexEntry& e = it->second;
  const Extent& ext = extents_[e.extent_id];
  // Our own active extent may have unsynced bytes; the OS page cache
  // still serves them to pread, so no flush is needed for self-reads.
  std::vector<std::byte> rec;
  try {
    rec = read_file_range(ext.path, e.offset, record_cost(e));
  } catch (const ImageError&) {
    m.read_errors.inc();
    return std::nullopt;
  }
  if (rec.size() != record_cost(e)) {
    m.read_errors.inc();
    return std::nullopt;
  }
  const auto body =
      std::span(rec).subspan(4, kHeaderBytes - 4 + e.stored_len);
  Reader tail{std::span(rec).subspan(kHeaderBytes + e.stored_len)};
  if (fnv1a(body) != tail.u64()) {
    m.read_errors.inc();
    return std::nullopt;
  }
  const auto payload = std::span(rec).subspan(kHeaderBytes, e.stored_len);
  std::vector<std::byte> raw;
  try {
    raw = e.codec == kCodecZeroRle
              ? zero_rle_decompress(payload, e.raw_len)
              : std::vector<std::byte>(payload.begin(), payload.end());
  } catch (const ImageError&) {
    m.read_errors.inc();
    return std::nullopt;
  }
  cache_insert_locked(k, raw);
  return raw;
}

void ChunkEngine::remove(const ChunkKey& key) {
  std::lock_guard lock(mu_);
  const KeyPair k{key.hi, key.lo};
  auto it = index_.find(k);
  if (it == index_.end()) {
    refresh_locked();
    it = index_.find(k);
    if (it == index_.end()) return;
  }
  rotate_if_needed_locked();
  const std::uint64_t seq = next_seq_;
  append_record_locked(kKindTombstone, key, 0, {}, kCodecRaw);
  ++next_seq_;
  extents_[active_id_].dead_stored += kHeaderBytes + kTrailerBytes;
  Extent& old = extents_[it->second.extent_id];
  const std::uint64_t cost = record_cost(it->second);
  old.live_stored -= std::min(old.live_stored, cost);
  old.dead_stored += cost;
  index_.erase(it);
  tombs_[k] = TombInfo{seq, active_id_};
  cache_erase_locked(k);
  EngineMetrics::get().tombstones.inc();
}

std::vector<std::pair<ChunkKey, std::uint32_t>> ChunkEngine::live_chunks() {
  std::lock_guard lock(mu_);
  refresh_locked();
  std::vector<std::pair<ChunkKey, std::uint32_t>> out;
  out.reserve(index_.size());
  for (const auto& [k, e] : index_) {
    out.emplace_back(ChunkKey{k.first, k.second}, e.raw_len);
  }
  return out;
}

void ChunkEngine::flush() {
  std::lock_guard lock(mu_);
  if (active_fd_ >= 0 && dirty_) {
    ::fsync(active_fd_);
    dirty_ = false;
  }
}

CompactStats ChunkEngine::compact(bool force) {
  std::lock_guard lock(mu_);
  refresh_locked();
  CompactStats out;
  // Keys grouped by extent up front: rewriting mutates index_ as it goes.
  std::unordered_map<std::uint32_t, std::vector<KeyPair>> by_extent;
  for (const auto& [k, e] : index_) by_extent[e.extent_id].push_back(k);
  const std::uint32_t n = static_cast<std::uint32_t>(extents_.size());
  for (std::uint32_t id = 0; id < n; ++id) {
    if (id == active_id_ && active_fd_ >= 0) continue;
    // No reference into extents_ survives the rewrite loop below:
    // rotate_if_needed_locked() can grow the vector and reallocate.
    const fs::path ext_path = extents_[id].path;
    if (ext_path.empty()) continue;  // already compacted away
    const std::uint64_t total =
        extents_[id].live_stored + extents_[id].dead_stored;
    if (total == 0) continue;
    const double dead_ratio = static_cast<double>(extents_[id].dead_stored) /
                              static_cast<double>(total);
    if (!force && dead_ratio < opts_.compact_min_dead_ratio) continue;
    if (force && extents_[id].dead_stored == 0) continue;
    if (!extents_[id].own &&
        seconds_since_mtime(ext_path) < opts_.compact_min_idle_seconds) {
      continue;  // possibly another process's active extent
    }
    // Move every live record out, then drop the husk. Tombstones that
    // still mask an older put elsewhere are re-appended so a fresh scan
    // cannot resurrect the dead key.
    for (const KeyPair& k : by_extent[id]) {
      const auto it = index_.find(k);
      if (it == index_.end() || it->second.extent_id != id) continue;
      const IndexEntry e = it->second;
      std::vector<std::byte> rec;
      try {
        rec = read_file_range(ext_path, e.offset, record_cost(e));
      } catch (const ImageError&) {
        continue;
      }
      if (rec.size() != record_cost(e)) continue;
      const auto payload = std::span(rec).subspan(kHeaderBytes, e.stored_len);
      rotate_if_needed_locked();
      const std::uint64_t seq = next_seq_;
      const std::uint64_t offset = active_bytes_;
      append_record_locked(kKindPut, ChunkKey{k.first, k.second}, e.raw_len,
                           payload, e.codec);
      ++next_seq_;
      index_[k] = IndexEntry{active_id_, offset, e.raw_len, e.stored_len,
                             e.codec, seq};
      extents_[active_id_].live_stored += record_cost(e);
      ++out.records_rewritten;
    }
    for (auto it = tombs_.begin(); it != tombs_.end();) {
      if (it->second.extent_id != id) {
        ++it;
        continue;
      }
      rotate_if_needed_locked();
      const std::uint64_t seq = next_seq_;
      append_record_locked(kKindTombstone,
                           ChunkKey{it->first.first, it->first.second}, 0, {},
                           kCodecRaw);
      ++next_seq_;
      extents_[active_id_].dead_stored += kHeaderBytes + kTrailerBytes;
      it->second = TombInfo{seq, active_id_};
      ++it;
    }
    if (active_fd_ >= 0 && dirty_) {
      ::fsync(active_fd_);
      dirty_ = false;
    }
    std::error_code ec;
    const std::uint64_t file_bytes = fs::file_size(ext_path, ec);
    fs::remove(ext_path, ec);
    out.bytes_reclaimed += ec ? 0 : file_bytes;
    ++out.extents_compacted;
    Extent& husk = extents_[id];
    husk.path.clear();
    husk.live_stored = 0;
    husk.dead_stored = 0;
    husk.scanned = 0;
    EngineMetrics::get().compactions.inc();
  }
  if (out.extents_compacted > 0) {
    MOJAVE_LOG(kInfo, "ckpt.engine")
        << "compacted " << out.extents_compacted << " extent(s), rewrote "
        << out.records_rewritten << " record(s), reclaimed "
        << out.bytes_reclaimed << " bytes";
  }
  return out;
}

EngineStats ChunkEngine::stats() {
  std::lock_guard lock(mu_);
  EngineStats s;
  for (const Extent& e : extents_) {
    if (e.path.empty()) continue;
    ++s.extents;
    s.live_stored_bytes += e.live_stored;
    s.dead_stored_bytes += e.dead_stored;
    std::error_code ec;
    const std::uint64_t size = fs::file_size(e.path, ec);
    s.extent_file_bytes += ec ? e.scanned : size;
  }
  s.live_chunks = index_.size();
  for (const auto& [k, e] : index_) s.live_raw_bytes += e.raw_len;
  auto& m = EngineMetrics::get();
  s.cache_hits = m.cache_hits.value();
  s.cache_misses = m.cache_misses.value();
  s.compactions = m.compactions.value();
  m.extents.set(static_cast<std::int64_t>(s.extents));
  m.live_chunks.set(static_cast<std::int64_t>(s.live_chunks));
  return s;
}

std::optional<ChunkEngine::Location> ChunkEngine::locate(const ChunkKey& key) {
  std::lock_guard lock(mu_);
  const KeyPair k{key.hi, key.lo};
  auto it = index_.find(k);
  if (it == index_.end()) {
    refresh_locked();
    it = index_.find(k);
    if (it == index_.end()) return std::nullopt;
  }
  const IndexEntry& e = it->second;
  return Location{extents_[e.extent_id].path, e.offset + kHeaderBytes,
                  e.stored_len};
}

void ChunkEngine::cache_insert_locked(const KeyPair& key,
                                      std::vector<std::byte> data) {
  if (opts_.cache_bytes == 0 || data.size() > opts_.cache_bytes) return;
  cache_erase_locked(key);
  cache_used_ += data.size();
  cache_lru_.push_front(CacheSlot{key, std::move(data)});
  cache_map_[key] = cache_lru_.begin();
  while (cache_used_ > opts_.cache_bytes && !cache_lru_.empty()) {
    const CacheSlot& victim = cache_lru_.back();
    cache_used_ -= victim.data.size();
    cache_map_.erase(victim.key);
    cache_lru_.pop_back();
  }
}

std::optional<std::vector<std::byte>> ChunkEngine::cache_get_locked(
    const KeyPair& key) {
  const auto it = cache_map_.find(key);
  if (it == cache_map_.end()) return std::nullopt;
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
  return it->second->data;
}

void ChunkEngine::cache_erase_locked(const KeyPair& key) {
  const auto it = cache_map_.find(key);
  if (it == cache_map_.end()) return;
  cache_used_ -= it->second->data.size();
  cache_lru_.erase(it->second);
  cache_map_.erase(it);
}

}  // namespace mojave::ckpt
