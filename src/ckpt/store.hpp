// Incremental, content-addressed checkpoint store.
//
// The paper's fault-tolerance story needs frequent whole-process
// checkpoints to shared storage, but writing the full image every time
// makes checkpoint frequency a function of image size. This store makes
// it a function of *change*: a packed image is split into chunks
// (ckpt/chunker.hpp), each chunk is stored once under its content hash,
// and a checkpoint becomes a small *manifest* — the ordered chunk list
// plus whole-image checksum. A second snapshot whose heap pages and
// program text are unchanged uploads only the chunks that actually
// differ; everything else dedupes against what the store already holds,
// across snapshots and across nodes.
//
// Layout under a cluster::SharedStorage root (every write is atomic
// temp-file + rename, so concurrent readers never see a torn object):
//
//   chunks/<32-hex-key>.ch            one chunk, keyed by content hash
//   manifests/<snapshot>@<seq>.mft    ordered chunk refs + checksums
//
// Restore walks manifests newest-first: a manifest whose checksum fails,
// or that references a missing/corrupt chunk, is skipped and the previous
// complete manifest is used instead — a crash (or bit rot) between chunk
// writes and the manifest rename costs at most one checkpoint interval,
// never a torn image.
//
// Retention keeps the newest `keep_manifests` manifests per snapshot and
// garbage-collects chunks no surviving manifest references, with
// reference counting across *all* snapshots so shared chunks survive.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ckpt/chunker.hpp"
#include "ckpt/engine.hpp"
#include "ckpt/key.hpp"
#include "cluster/storage.hpp"

namespace mojave::ckpt {

struct ManifestEntry {
  ChunkKey key;
  std::uint32_t length = 0;
};

/// One checkpoint: the recipe to reassemble an image from chunks.
struct Manifest {
  std::string snapshot;
  std::uint64_t seq = 0;
  std::uint64_t image_bytes = 0;
  std::uint64_t image_hash = 0;  ///< FNV-1a of the whole image
  std::vector<ManifestEntry> chunks;

  [[nodiscard]] std::vector<std::byte> encode() const;
  /// Throws ImageError on bad magic/version/checksum or inconsistent sizes.
  [[nodiscard]] static Manifest decode(std::span<const std::byte> bytes);
};

struct PutStats {
  std::uint64_t seq = 0;
  bool first_snapshot = false;  ///< no prior manifest existed for this name
  std::size_t chunks_total = 0;
  std::size_t chunks_written = 0;
  std::size_t chunks_deduped = 0;
  std::size_t bytes_total = 0;    ///< logical image size
  std::size_t bytes_written = 0;  ///< chunk bytes actually uploaded
  std::size_t manifests_pruned = 0;
  std::size_t chunks_evicted = 0;
};

struct RestoreStats {
  std::uint64_t seq = 0;
  std::size_t chunks = 0;
  /// Newer manifests passed over because they (or their chunks) failed
  /// integrity checks. > 0 means the store fell back.
  std::size_t manifests_skipped = 0;
};

struct GcStats {
  std::size_t manifests_pruned = 0;
  std::size_t chunks_evicted = 0;
  std::uint64_t bytes_evicted = 0;
};

struct VerifyReport {
  std::size_t manifests_ok = 0;
  std::size_t manifests_corrupt = 0;
  std::size_t chunks_ok = 0;
  std::size_t chunks_corrupt = 0;  ///< content does not match its key
  std::size_t chunks_missing = 0;  ///< referenced but absent
  std::size_t chunks_orphaned = 0;  ///< present but unreferenced (GC-able)

  [[nodiscard]] bool ok() const {
    return manifests_corrupt == 0 && chunks_corrupt == 0 &&
           chunks_missing == 0;
  }
};

struct StoreStats {
  std::size_t snapshots = 0;
  std::size_t manifests = 0;
  std::size_t chunks = 0;
  std::uint64_t stored_chunk_bytes = 0;  ///< bytes on disk for live chunks
  std::uint64_t logical_bytes = 0;       ///< sum of image_bytes over manifests
  std::uint64_t latest_image_bytes = 0;  ///< sum of latest image per snapshot
  std::size_t legacy_chunk_files = 0;    ///< flat chunks/*.ch not yet folded
  EngineStats engine;                    ///< log-structured engine stats

  /// logical bytes the store represents per stored byte (>= 1 once any
  /// two snapshots share content).
  [[nodiscard]] double dedup_ratio() const {
    return stored_chunk_bytes == 0
               ? 1.0
               : static_cast<double>(logical_bytes) /
                     static_cast<double>(stored_chunk_bytes);
  }
};

class CheckpointStore {
 public:
  struct Options {
    ChunkerConfig chunker;
    /// Manifests kept per snapshot name (>= 1). Older ones are pruned and
    /// their now-unreferenced chunks evicted.
    std::uint32_t keep_manifests = 4;
    /// Run retention + chunk GC automatically after every put().
    bool auto_gc = true;
    /// Log-structured engine knobs (extent size, cache, compression).
    ChunkEngine::Options engine;
  };

  explicit CheckpointStore(std::filesystem::path root, Options opts);
  explicit CheckpointStore(std::filesystem::path root)
      : CheckpointStore(std::move(root), Options{}) {}

  /// Process-wide shared instance per (canonical) root. Concurrent
  /// checkpointers — one per cluster rank — must share an instance so
  /// puts and GC serialize against each other; two instances on one root
  /// could GC a chunk the other just deduplicated against. Options are
  /// taken from the first opener.
  [[nodiscard]] static std::shared_ptr<CheckpointStore> open_shared(
      const std::filesystem::path& root, Options opts);
  [[nodiscard]] static std::shared_ptr<CheckpointStore> open_shared(
      const std::filesystem::path& root) {
    return open_shared(root, Options{});
  }

  /// Store one checkpoint of `snapshot`. Only chunks the store does not
  /// already hold are written; the manifest is written (atomically) last,
  /// so a crash mid-put leaves the previous checkpoint restorable.
  PutStats put(const std::string& snapshot, std::span<const std::byte> image);

  /// Reassemble the newest complete checkpoint of `snapshot`, verifying
  /// every chunk against its content key and the whole image against the
  /// manifest checksum. Falls back to older manifests on any mismatch;
  /// nullopt when no restorable checkpoint exists.
  [[nodiscard]] std::optional<std::vector<std::byte>> restore(
      const std::string& snapshot, RestoreStats* stats = nullptr) const;

  [[nodiscard]] bool has_snapshot(const std::string& snapshot) const;
  /// Newest stored sequence number for `snapshot`; 0 when none exist.
  [[nodiscard]] std::uint64_t latest_seq(const std::string& snapshot) const;
  [[nodiscard]] std::vector<std::string> snapshots() const;
  /// Decodable manifests for `snapshot`, ascending seq (corrupt skipped).
  [[nodiscard]] std::vector<Manifest> manifests(
      const std::string& snapshot) const;

  /// Apply retention and evict unreferenced chunks.
  GcStats collect_garbage();
  /// Integrity-check every manifest and chunk in the store.
  [[nodiscard]] VerifyReport verify() const;
  [[nodiscard]] StoreStats stats() const;

  /// Compact the engine (rewrite dead-heavy extents) and fold any legacy
  /// flat chunk files into extents. Returns engine-side stats plus the
  /// number of legacy files folded in `records_rewritten` growth.
  CompactStats compact(bool force = true);

  [[nodiscard]] const std::filesystem::path& root() const {
    return storage_.root();
  }
  [[nodiscard]] cluster::SharedStorage& storage() { return storage_; }
  [[nodiscard]] ChunkEngine& engine() { return *engine_; }

  static constexpr const char* kChunkDir = "chunks";
  static constexpr const char* kManifestDir = "manifests";

  /// Snapshot names are path-safe identifiers: [A-Za-z0-9._-], no '@'.
  static void validate_snapshot_name(const std::string& name);

 private:
  struct ManifestFile {
    std::string name;  ///< storage-relative path
    std::string snapshot;
    std::uint64_t seq = 0;
  };

  [[nodiscard]] std::vector<ManifestFile> list_manifests_locked() const;
  [[nodiscard]] std::vector<ManifestFile> list_manifests_locked(
      const std::string& snapshot) const;
  GcStats collect_garbage_locked();

  // Chunk access routed engine-first with a read fallback to the legacy
  // flat chunks/<hex>.ch layout, so stores written before the engine
  // existed stay restorable.
  [[nodiscard]] bool chunk_exists_locked(const ChunkKey& key) const;
  [[nodiscard]] std::optional<std::vector<std::byte>> chunk_read_locked(
      const ChunkKey& key) const;

  Options opts_;
  cluster::SharedStorage storage_;
  std::unique_ptr<ChunkEngine> engine_;
  mutable std::mutex mu_;

  static constexpr const char* kExtentDir = "extents";
};

}  // namespace mojave::ckpt
