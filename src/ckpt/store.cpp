#include "ckpt/store.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/serialize.hpp"
#include "support/stopwatch.hpp"

namespace mojave::ckpt {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kManifestMagic = 0x74666b6d;  // "mkft"
constexpr std::uint32_t kManifestVersion = 1;

struct CkptMetrics {
  obs::Counter& chunks_written;
  obs::Counter& chunks_deduped;
  obs::Counter& chunks_evicted;
  obs::Counter& bytes_logical;
  obs::Counter& bytes_written;
  obs::Counter& bytes_logical_incremental;
  obs::Counter& bytes_written_incremental;
  obs::Counter& manifests_written;
  obs::Counter& manifests_pruned;
  obs::Counter& restores;
  obs::Counter& restore_fallbacks;
  obs::Counter& restore_failures;
  obs::Histogram& put_us;
  obs::Histogram& restore_us;
  obs::Histogram& image_bytes;
  obs::Histogram& written_bytes;

  static CkptMetrics& get() {
    auto& r = obs::MetricsRegistry::instance();
    static CkptMetrics m{
        r.counter("ckpt.chunks_written"),
        r.counter("ckpt.chunks_deduped"),
        r.counter("ckpt.chunks_evicted"),
        r.counter("ckpt.bytes_logical"),
        r.counter("ckpt.bytes_written"),
        r.counter("ckpt.bytes_logical_incremental"),
        r.counter("ckpt.bytes_written_incremental"),
        r.counter("ckpt.manifests_written"),
        r.counter("ckpt.manifests_pruned"),
        r.counter("ckpt.restores"),
        r.counter("ckpt.restore_fallbacks"),
        r.counter("ckpt.restore_failures"),
        r.histogram("ckpt.put_us"),
        r.histogram("ckpt.restore_us"),
        r.histogram("ckpt.image_bytes"),
        r.histogram("ckpt.written_bytes"),
    };
    return m;
  }
};

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return s;
}

std::string chunk_name(const ChunkKey& key) {
  return std::string(CheckpointStore::kChunkDir) + "/" + key.hex() + ".ch";
}

std::string seq_str(std::uint64_t seq) {
  std::string s = std::to_string(seq);
  return std::string(s.size() >= 12 ? 0 : 12 - s.size(), '0') + s;
}

std::string manifest_name(const std::string& snapshot, std::uint64_t seq) {
  return std::string(CheckpointStore::kManifestDir) + "/" + snapshot + "@" +
         seq_str(seq) + ".mft";
}

}  // namespace

std::string ChunkKey::hex() const { return hex16(hi) + hex16(lo); }

std::vector<std::byte> Manifest::encode() const {
  Writer w;
  w.u32(kManifestMagic);
  w.u32(kManifestVersion);
  w.str(snapshot);
  w.u64(seq);
  w.u64(image_bytes);
  w.u64(image_hash);
  w.u32(static_cast<std::uint32_t>(chunks.size()));
  for (const ManifestEntry& e : chunks) {
    w.u64(e.key.hi);
    w.u64(e.key.lo);
    w.u32(e.length);
  }
  w.u64(fnv1a(w.view()));
  return w.take();
}

Manifest Manifest::decode(std::span<const std::byte> bytes) {
  if (bytes.size() < 8) throw ImageError("manifest truncated");
  const std::uint64_t want =
      fnv1a(bytes.subspan(0, bytes.size() - 8));
  Reader r(bytes);
  if (r.u32() != kManifestMagic) throw ImageError("manifest bad magic");
  if (r.u32() != kManifestVersion) throw ImageError("manifest bad version");
  Manifest m;
  m.snapshot = r.str();
  m.seq = r.u64();
  m.image_bytes = r.u64();
  m.image_hash = r.u64();
  const std::uint32_t n = r.u32();
  m.chunks.reserve(n);
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    ManifestEntry e;
    e.key.hi = r.u64();
    e.key.lo = r.u64();
    e.length = r.u32();
    total += e.length;
    m.chunks.push_back(e);
  }
  const std::uint64_t got = r.u64();
  if (!r.done()) throw ImageError("manifest trailing bytes");
  if (got != want) throw ImageError("manifest checksum mismatch");
  if (total != m.image_bytes) throw ImageError("manifest length mismatch");
  return m;
}

void CheckpointStore::validate_snapshot_name(const std::string& name) {
  if (name.empty()) throw Error("ckpt: empty snapshot name");
  if (name == "." || name == "..") {
    throw Error("ckpt: snapshot name cannot be a dot path: " + name);
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) {
      throw Error("ckpt: snapshot name must match [A-Za-z0-9._-]: " + name);
    }
  }
}

CheckpointStore::CheckpointStore(fs::path root, Options opts)
    : opts_(opts), storage_(std::move(root)) {
  opts_.chunker.validate();
  if (opts_.keep_manifests == 0) {
    throw Error("ckpt: keep_manifests must be >= 1");
  }
  engine_ = std::make_unique<ChunkEngine>(storage_.root() / kExtentDir,
                                          opts_.engine);
}

bool CheckpointStore::chunk_exists_locked(const ChunkKey& key) const {
  return engine_->exists(key) || storage_.exists(chunk_name(key));
}

std::optional<std::vector<std::byte>> CheckpointStore::chunk_read_locked(
    const ChunkKey& key) const {
  if (auto data = engine_->read(key)) return data;
  return storage_.read(chunk_name(key));
}

std::shared_ptr<CheckpointStore> CheckpointStore::open_shared(
    const fs::path& root, Options opts) {
  static std::mutex mu;
  static std::map<std::string, std::weak_ptr<CheckpointStore>> open;
  std::error_code ec;
  fs::path canon = fs::weakly_canonical(root, ec);
  if (ec) canon = fs::absolute(root).lexically_normal();
  const std::string key = canon.string();
  std::lock_guard<std::mutex> lock(mu);
  if (auto existing = open[key].lock()) return existing;
  auto store = std::make_shared<CheckpointStore>(canon, opts);
  open[key] = store;
  return store;
}

std::vector<CheckpointStore::ManifestFile>
CheckpointStore::list_manifests_locked() const {
  std::vector<ManifestFile> files;
  const std::string prefix = std::string(kManifestDir) + "/";
  for (const std::string& name : storage_.list(kManifestDir)) {
    if (name.size() <= prefix.size() || name.rfind(prefix, 0) != 0) continue;
    const std::string base = name.substr(prefix.size());
    const auto at = base.rfind('@');
    if (at == std::string::npos || base.size() < at + 1 + 4) continue;
    if (base.substr(base.size() - 4) != ".mft") continue;
    const std::string seq_part = base.substr(at + 1, base.size() - at - 5);
    if (seq_part.empty() ||
        seq_part.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    ManifestFile mf;
    mf.name = name;
    mf.snapshot = base.substr(0, at);
    mf.seq = std::stoull(seq_part);
    files.push_back(std::move(mf));
  }
  std::sort(files.begin(), files.end(),
            [](const ManifestFile& a, const ManifestFile& b) {
              return a.snapshot != b.snapshot ? a.snapshot < b.snapshot
                                              : a.seq < b.seq;
            });
  return files;
}

std::vector<CheckpointStore::ManifestFile>
CheckpointStore::list_manifests_locked(const std::string& snapshot) const {
  auto files = list_manifests_locked();
  std::erase_if(files, [&](const ManifestFile& mf) {
    return mf.snapshot != snapshot;
  });
  return files;
}

PutStats CheckpointStore::put(const std::string& snapshot,
                              std::span<const std::byte> image) {
  validate_snapshot_name(snapshot);
  Stopwatch sw;
  obs::ScopedSpan span("ckpt", "put");
  span.set_arg("bytes", image.size());
  std::lock_guard<std::mutex> lock(mu_);
  CkptMetrics& m = CkptMetrics::get();

  PutStats stats;
  const auto existing = list_manifests_locked(snapshot);
  stats.first_snapshot = existing.empty();
  stats.seq = existing.empty() ? 1 : existing.back().seq + 1;

  Manifest man;
  man.snapshot = snapshot;
  man.seq = stats.seq;
  man.image_bytes = image.size();
  man.image_hash = fnv1a(image);

  // Chunks first, manifest last: the checkpoint only becomes visible once
  // every byte it references is durably in place.
  for (std::span<const std::byte> chunk :
       split_chunks(image, opts_.chunker)) {
    const ChunkKey key = ChunkKey::of(chunk);
    man.chunks.push_back({key, static_cast<std::uint32_t>(chunk.size())});
    ++stats.chunks_total;
    stats.bytes_total += chunk.size();
    if (chunk_exists_locked(key)) {
      ++stats.chunks_deduped;
    } else {
      engine_->put(key, chunk);
      ++stats.chunks_written;
      stats.bytes_written += chunk.size();
    }
  }
  // fsync appended chunk records before the manifest rename makes them
  // reachable — chunks-before-manifest durability holds for the engine.
  engine_->flush();
  storage_.write(manifest_name(snapshot, stats.seq), man.encode());

  m.chunks_written.inc(stats.chunks_written);
  m.chunks_deduped.inc(stats.chunks_deduped);
  m.bytes_logical.inc(stats.bytes_total);
  m.bytes_written.inc(stats.bytes_written);
  if (!stats.first_snapshot) {
    m.bytes_logical_incremental.inc(stats.bytes_total);
    m.bytes_written_incremental.inc(stats.bytes_written);
  }
  m.manifests_written.inc();
  m.image_bytes.record_us(static_cast<double>(image.size()));
  m.written_bytes.record_us(static_cast<double>(stats.bytes_written));

  if (opts_.auto_gc) {
    const GcStats gc = collect_garbage_locked();
    stats.manifests_pruned = gc.manifests_pruned;
    stats.chunks_evicted = gc.chunks_evicted;
  }
  m.put_us.record_seconds(sw.seconds());
  return stats;
}

std::optional<std::vector<std::byte>> CheckpointStore::restore(
    const std::string& snapshot, RestoreStats* out) const {
  Stopwatch sw;
  obs::ScopedSpan span("ckpt", "restore");
  std::lock_guard<std::mutex> lock(mu_);
  CkptMetrics& m = CkptMetrics::get();
  m.restores.inc();

  const auto files = list_manifests_locked(snapshot);
  std::size_t skipped = 0;
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    const auto raw = storage_.read(it->name);
    if (!raw.has_value()) {
      ++skipped;
      continue;
    }
    Manifest man;
    try {
      man = Manifest::decode(*raw);
    } catch (const Error&) {
      ++skipped;
      continue;
    }
    std::vector<std::byte> image;
    image.reserve(man.image_bytes);
    bool ok = true;
    for (const ManifestEntry& e : man.chunks) {
      const auto chunk = chunk_read_locked(e.key);
      if (!chunk.has_value() || chunk->size() != e.length ||
          ChunkKey::of(*chunk) != e.key) {
        ok = false;
        break;
      }
      image.insert(image.end(), chunk->begin(), chunk->end());
    }
    if (!ok || image.size() != man.image_bytes ||
        fnv1a(image) != man.image_hash) {
      ++skipped;
      continue;
    }
    if (skipped > 0) m.restore_fallbacks.inc();
    m.restore_us.record_seconds(sw.seconds());
    if (out != nullptr) {
      out->seq = man.seq;
      out->chunks = man.chunks.size();
      out->manifests_skipped = skipped;
    }
    return image;
  }
  m.restore_failures.inc();
  if (out != nullptr) {
    *out = RestoreStats{};
    out->manifests_skipped = skipped;
  }
  return std::nullopt;
}

bool CheckpointStore::has_snapshot(const std::string& snapshot) const {
  std::lock_guard<std::mutex> lock(mu_);
  return !list_manifests_locked(snapshot).empty();
}

std::uint64_t CheckpointStore::latest_seq(const std::string& snapshot) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto files = list_manifests_locked(snapshot);
  return files.empty() ? 0 : files.back().seq;
}

std::vector<std::string> CheckpointStore::snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const ManifestFile& mf : list_manifests_locked()) {
    if (names.empty() || names.back() != mf.snapshot) {
      names.push_back(mf.snapshot);
    }
  }
  return names;
}

std::vector<Manifest> CheckpointStore::manifests(
    const std::string& snapshot) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Manifest> out;
  for (const ManifestFile& mf : list_manifests_locked(snapshot)) {
    const auto raw = storage_.read(mf.name);
    if (!raw.has_value()) continue;
    try {
      out.push_back(Manifest::decode(*raw));
    } catch (const Error&) {
      // Corrupt manifests are invisible here; restore skips them too.
    }
  }
  return out;
}

GcStats CheckpointStore::collect_garbage() {
  std::lock_guard<std::mutex> lock(mu_);
  return collect_garbage_locked();
}

GcStats CheckpointStore::collect_garbage_locked() {
  GcStats gc;
  CkptMetrics& m = CkptMetrics::get();

  // Retention: keep the newest keep_manifests manifests per snapshot.
  std::map<std::string, std::vector<ManifestFile>> by_snapshot;
  for (ManifestFile& mf : list_manifests_locked()) {
    by_snapshot[mf.snapshot].push_back(std::move(mf));
  }
  std::vector<ManifestFile> survivors;
  for (auto& [snapshot, files] : by_snapshot) {
    while (files.size() > opts_.keep_manifests) {
      storage_.remove(files.front().name);
      files.erase(files.begin());
      ++gc.manifests_pruned;
    }
    for (ManifestFile& mf : files) survivors.push_back(std::move(mf));
  }

  // Reference-count chunks across every surviving manifest (all
  // snapshots): a chunk shared between ranks lives as long as any of
  // them references it. An undecodable manifest can never be restored,
  // so it is dropped rather than pinning garbage forever.
  std::set<std::string> referenced;
  std::set<std::pair<std::uint64_t, std::uint64_t>> referenced_keys;
  for (const ManifestFile& mf : survivors) {
    const auto raw = storage_.read(mf.name);
    bool good = false;
    if (raw.has_value()) {
      try {
        const Manifest man = Manifest::decode(*raw);
        for (const ManifestEntry& e : man.chunks) {
          referenced.insert(chunk_name(e.key));
          referenced_keys.insert({e.key.hi, e.key.lo});
        }
        good = true;
      } catch (const Error&) {
      }
    }
    if (!good) {
      storage_.remove(mf.name);
      ++gc.manifests_pruned;
    }
  }
  for (const auto& [key, raw_len] : engine_->live_chunks()) {
    if (referenced_keys.contains({key.hi, key.lo})) continue;
    engine_->remove(key);
    gc.bytes_evicted += raw_len;
    ++gc.chunks_evicted;
  }
  for (const std::string& name : storage_.list(kChunkDir)) {
    if (referenced.contains(name)) continue;
    std::error_code ec;
    const auto size = fs::file_size(storage_.path_for(name), ec);
    if (!ec) gc.bytes_evicted += size;
    storage_.remove(name);
    ++gc.chunks_evicted;
  }
  // Opportunistic compaction: extents whose dead fraction crossed the
  // engine threshold are rewritten now that eviction tombstoned them.
  engine_->compact(/*force=*/false);
  m.chunks_evicted.inc(gc.chunks_evicted);
  m.manifests_pruned.inc(gc.manifests_pruned);
  return gc;
}

VerifyReport CheckpointStore::verify() const {
  std::lock_guard<std::mutex> lock(mu_);
  VerifyReport report;
  std::set<std::string> referenced;
  std::set<std::string> checked;
  for (const ManifestFile& mf : list_manifests_locked()) {
    const auto raw = storage_.read(mf.name);
    Manifest man;
    try {
      if (!raw.has_value()) throw ImageError("unreadable");
      man = Manifest::decode(*raw);
    } catch (const Error&) {
      ++report.manifests_corrupt;
      continue;
    }
    ++report.manifests_ok;
    for (const ManifestEntry& e : man.chunks) {
      const std::string name = chunk_name(e.key);
      referenced.insert(name);
      if (!checked.insert(name).second) continue;  // verified already
      // Present-but-unreadable in the engine is corruption (the record
      // is indexed; its payload fails the checksum), not absence.
      const bool in_engine = engine_->exists(e.key);
      const auto chunk = chunk_read_locked(e.key);
      if (!chunk.has_value()) {
        if (in_engine) {
          ++report.chunks_corrupt;
        } else {
          ++report.chunks_missing;
        }
      } else if (chunk->size() != e.length ||
                 ChunkKey::of(*chunk) != e.key) {
        ++report.chunks_corrupt;
      } else {
        ++report.chunks_ok;
      }
    }
  }
  for (const auto& [key, raw_len] : engine_->live_chunks()) {
    if (!referenced.contains(chunk_name(key))) ++report.chunks_orphaned;
  }
  for (const std::string& name : storage_.list(kChunkDir)) {
    if (!referenced.contains(name)) ++report.chunks_orphaned;
  }
  return report;
}

StoreStats CheckpointStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StoreStats s;
  std::map<std::string, std::uint64_t> latest;  // ascending seq ⇒ last wins
  for (const ManifestFile& mf : list_manifests_locked()) {
    const auto raw = storage_.read(mf.name);
    if (!raw.has_value()) continue;
    Manifest man;
    try {
      man = Manifest::decode(*raw);
    } catch (const Error&) {
      continue;
    }
    ++s.manifests;
    s.logical_bytes += man.image_bytes;
    latest[mf.snapshot] = man.image_bytes;
  }
  s.snapshots = latest.size();
  for (const auto& [snapshot, bytes] : latest) s.latest_image_bytes += bytes;
  s.engine = engine_->stats();
  s.chunks = s.engine.live_chunks;
  s.stored_chunk_bytes = s.engine.live_stored_bytes;
  for (const std::string& name : storage_.list(kChunkDir)) {
    ++s.chunks;
    ++s.legacy_chunk_files;
    std::error_code ec;
    const auto size = fs::file_size(storage_.path_for(name), ec);
    if (!ec) s.stored_chunk_bytes += size;
  }
  return s;
}

CompactStats CheckpointStore::compact(bool force) {
  std::lock_guard<std::mutex> lock(mu_);
  // Fold legacy flat chunk files into extents first, so the store
  // converges on the log-structured layout; a file that fails its own
  // content hash is left in place for verify() to flag.
  std::size_t folded = 0;
  for (const std::string& name : storage_.list(kChunkDir)) {
    const auto data = storage_.read(name);
    if (!data.has_value()) continue;
    const ChunkKey key = ChunkKey::of(*data);
    if (chunk_name(key) != name) continue;  // corrupt: keep for verify()
    if (!engine_->exists(key)) engine_->put(key, *data);
    storage_.remove(name);
    ++folded;
  }
  if (folded > 0) engine_->flush();
  CompactStats out = engine_->compact(force);
  out.records_rewritten += folded;
  return out;
}

}  // namespace mojave::ckpt
