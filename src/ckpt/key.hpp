// Content address for one chunk, shared by the checkpoint store (which
// names checkpoints in terms of keys) and the log-structured engine
// (which maps keys to extent offsets).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "support/hash.hpp"

namespace mojave::ckpt {

/// 128-bit content address: two independently seeded FNV-1a passes.
struct ChunkKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] static ChunkKey of(std::span<const std::byte> data) {
    /// Seed diversifier for the second pass, so (hi, lo) are not
    /// trivially correlated.
    constexpr std::uint64_t kLoSeedSalt = 0x9e3779b97f4a7c15ULL;
    ChunkKey key;
    key.hi = fnv1a(data);
    key.lo = fnv1a(data, key.hi ^ kLoSeedSalt);
    return key;
  }

  [[nodiscard]] std::string hex() const;  ///< 32 lowercase hex chars

  auto operator<=>(const ChunkKey&) const = default;
};

}  // namespace mojave::ckpt
