// Byte slicing for the content-addressed checkpoint store.
//
// A packed process image is split into chunks before storage. Two modes:
//
//  * kFixed          — fixed-size slices. Cheapest, but an insertion near
//                      the front of the image shifts every later boundary,
//                      so only tail-stable images dedupe well.
//  * kContentDefined — gear-hash content-defined chunking (CDC): a cut is
//                      placed where a rolling hash of the trailing bytes
//                      matches a mask, so boundaries are a function of
//                      *content*, not position. An edit disturbs only the
//                      chunk(s) it touches; everything downstream re-aligns
//                      and dedupes against the previous snapshot.
//
// Both modes are deterministic: the same bytes always produce the same
// chunk sequence, which is what makes cross-snapshot and cross-node
// deduplication sound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mojave::ckpt {

struct ChunkerConfig {
  enum class Mode : std::uint8_t { kFixed = 0, kContentDefined = 1 };

  Mode mode = Mode::kContentDefined;
  /// No cut before this many bytes (CDC); also the tail-chunk floor.
  std::size_t min_bytes = 512;
  /// Expected average chunk size; must be a power of two (it forms the
  /// cut mask). Fixed mode slices at exactly this size.
  std::size_t target_bytes = 2048;
  /// Forced cut at this size even if the hash never matches.
  std::size_t max_bytes = 8192;

  /// Throws Error if the parameters are inconsistent.
  void validate() const;
};

/// Split `data` into consecutive chunk views (no copies; views alias
/// `data`). Concatenating the result always reproduces `data` exactly.
[[nodiscard]] std::vector<std::span<const std::byte>> split_chunks(
    std::span<const std::byte> data, const ChunkerConfig& cfg);

}  // namespace mojave::ckpt
