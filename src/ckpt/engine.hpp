// Log-structured chunk store engine.
//
// The flat layout ("one chunk, one file") makes a million checkpoints a
// million files — readdir-scale metadata, one inode + one fsync per tiny
// chunk. This engine replaces it with the WiredTiger/Bitcask shape the
// ROADMAP asks for: chunks are appended as checksummed records to large
// *extent* files (~64 MiB), an in-memory index maps content key →
// (extent, offset), reads go through an LRU block cache, deletions are
// tombstone records, and compaction rewrites the live tail of
// mostly-dead extents into fresh ones.
//
// Record format inside an extent (little-endian, docs/CONTROL_PLANE.md
// sibling of the WAL framing):
//
//   u32 magic 'MJX1' | u8 kind (1 put, 2 tombstone) | u64 seq
//   | u64 key.hi | u64 key.lo | u32 raw_len | u32 stored_len | u8 codec
//   | payload[stored_len] | u64 fnv1a(body after magic)
//
// `seq` is a global monotonic stamp: rebuilding the index replays records
// in seq order, so a tombstone and a later re-put resolve correctly no
// matter which extent file each landed in.
//
// Concurrency: every agent process owns its *own* active extent (the file
// name embeds pid + nonce), so writers never contend. Extents are
// append-only and records self-framing, which makes cross-process reads
// safe: a reader that misses in its index rescans grown/new extents from
// its last offset (`refresh`), stopping at any partially-visible tail
// record and retrying later. Optional compression is a dependency-free
// zero-run RLE — checkpoint images carry large zeroed buffers, which is
// exactly what it folds away.
#pragma once

#include <cstdint>
#include <filesystem>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "ckpt/key.hpp"

namespace mojave::ckpt {

/// Point-in-time engine statistics (`mojc ckpt stats`, bench).
struct EngineStats {
  std::size_t extents = 0;
  std::size_t live_chunks = 0;
  std::uint64_t live_raw_bytes = 0;     ///< uncompressed logical bytes
  std::uint64_t live_stored_bytes = 0;  ///< bytes on disk for live records
  std::uint64_t dead_stored_bytes = 0;  ///< overwritten/tombstoned debris
  std::uint64_t extent_file_bytes = 0;  ///< total size of all extent files
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t compactions = 0;

  /// Fraction of extent bytes that are live (1.0 = no debris).
  [[nodiscard]] double live_ratio() const {
    const std::uint64_t total = live_stored_bytes + dead_stored_bytes;
    return total == 0 ? 1.0
                      : static_cast<double>(live_stored_bytes) /
                            static_cast<double>(total);
  }
  [[nodiscard]] double cache_hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
};

struct CompactStats {
  std::size_t extents_compacted = 0;
  std::size_t records_rewritten = 0;
  std::uint64_t bytes_reclaimed = 0;
};

class ChunkEngine {
 public:
  struct Options {
    /// Rotate the active extent once it exceeds this many bytes.
    std::uint64_t extent_target_bytes = 64ull << 20;
    /// Block cache budget (raw chunk bytes). 0 disables the cache.
    std::uint64_t cache_bytes = 64ull << 20;
    /// Zero-run RLE compression for stored payloads (codec falls back to
    /// raw per record when it does not help).
    bool compress = true;
    /// compact() rewrites an extent when its dead fraction exceeds this.
    double compact_min_dead_ratio = 0.5;
    /// Never compact an extent modified more recently than this — it may
    /// be another process's active extent.
    double compact_min_idle_seconds = 2.0;
  };

  ChunkEngine(std::filesystem::path dir, Options opts);
  explicit ChunkEngine(std::filesystem::path dir);
  ~ChunkEngine();

  ChunkEngine(const ChunkEngine&) = delete;
  ChunkEngine& operator=(const ChunkEngine&) = delete;

  /// True if the key is stored live (rescans foreign extents on miss).
  [[nodiscard]] bool exists(const ChunkKey& key);

  /// Append the chunk (no-op if already live).
  void put(const ChunkKey& key, std::span<const std::byte> data);

  /// Checksum-verified read; nullopt on missing or corrupt.
  [[nodiscard]] std::optional<std::vector<std::byte>> read(
      const ChunkKey& key);

  /// Tombstone the key (no-op if absent).
  void remove(const ChunkKey& key);

  /// Every live key with its raw length.
  [[nodiscard]] std::vector<std::pair<ChunkKey, std::uint32_t>> live_chunks();

  /// fsync the active extent (called before a manifest is published, so
  /// chunks-before-manifest durability survives the engine).
  void flush();

  /// Rewrite live records out of dead-heavy extents and delete the husks.
  /// `force` compacts any extent with any dead bytes (CLI verb).
  CompactStats compact(bool force = false);

  [[nodiscard]] EngineStats stats();

  /// Where a live chunk's payload bytes sit on disk (diagnostics and the
  /// corruption tests, which flip bytes in place).
  struct Location {
    std::filesystem::path extent;
    std::uint64_t payload_offset = 0;
    std::uint32_t stored_len = 0;
  };
  [[nodiscard]] std::optional<Location> locate(const ChunkKey& key);

  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }

 private:
  struct KeyHash {
    std::size_t operator()(const std::pair<std::uint64_t, std::uint64_t>& k)
        const noexcept {
      return static_cast<std::size_t>(k.first ^ (k.second * 0x9e3779b97f4a7c15ULL));
    }
  };
  using KeyPair = std::pair<std::uint64_t, std::uint64_t>;

  struct IndexEntry {
    std::uint32_t extent_id = 0;
    std::uint64_t offset = 0;  ///< record start (the magic)
    std::uint32_t raw_len = 0;
    std::uint32_t stored_len = 0;
    std::uint8_t codec = 0;
    std::uint64_t seq = 0;
  };

  struct Extent {
    std::filesystem::path path;
    std::uint64_t scanned = 0;     ///< bytes indexed so far
    std::uint64_t live_stored = 0; ///< payload+header bytes of live records
    std::uint64_t dead_stored = 0;
    bool own = false;              ///< written by this engine instance
  };

  // All private methods require mu_.
  void open_active_locked();
  void rotate_if_needed_locked();
  void append_record_locked(std::uint8_t kind, const ChunkKey& key,
                            std::uint32_t raw_len,
                            std::span<const std::byte> stored,
                            std::uint8_t codec);
  void refresh_locked();                    ///< rescan foreign extents
  void scan_extent_locked(std::uint32_t id);
  [[nodiscard]] std::optional<std::vector<std::byte>> read_locked(
      const ChunkKey& key);
  void cache_insert_locked(const KeyPair& key, std::vector<std::byte> data);
  [[nodiscard]] std::optional<std::vector<std::byte>> cache_get_locked(
      const KeyPair& key);
  void cache_erase_locked(const KeyPair& key);
  [[nodiscard]] std::uint64_t record_cost(const IndexEntry& e) const;

  std::filesystem::path dir_;
  Options opts_;

  // Latest tombstone per dead key. Needed so a compaction that deletes
  // the extent holding a tombstone can re-append it when an older put of
  // the same key may still exist in another, not-yet-compacted extent.
  struct TombInfo {
    std::uint64_t seq = 0;
    std::uint32_t extent_id = 0;
  };

  std::mutex mu_;
  std::vector<Extent> extents_;
  std::unordered_map<KeyPair, IndexEntry, KeyHash> index_;
  std::unordered_map<KeyPair, TombInfo, KeyHash> tombs_;
  std::uint64_t next_seq_ = 1;

  int active_fd_ = -1;
  std::uint32_t active_id_ = 0;
  std::uint64_t active_bytes_ = 0;
  std::uint64_t active_nonce_ = 0;
  std::uint32_t active_count_ = 0;  ///< extents created by this instance
  bool dirty_ = false;

  // LRU block cache: list front = most recent; map points into the list.
  struct CacheSlot {
    KeyPair key;
    std::vector<std::byte> data;
  };
  std::list<CacheSlot> cache_lru_;
  std::unordered_map<KeyPair, std::list<CacheSlot>::iterator, KeyHash>
      cache_map_;
  std::uint64_t cache_used_ = 0;
};

/// Zero-run RLE used by the engine's codec 1. Exposed for tests.
[[nodiscard]] std::vector<std::byte> zero_rle_compress(
    std::span<const std::byte> raw);
/// Throws ImageError when the stream is malformed or does not decode to
/// exactly `raw_len` bytes.
[[nodiscard]] std::vector<std::byte> zero_rle_decompress(
    std::span<const std::byte> stored, std::uint32_t raw_len);

}  // namespace mojave::ckpt
