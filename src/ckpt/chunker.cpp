#include "ckpt/chunker.hpp"

#include <array>

#include "support/error.hpp"

namespace mojave::ckpt {

namespace {

/// Deterministic 256-entry gear table (splitmix64 over the byte value).
/// Constant across builds and platforms, so stores written by one node
/// chunk identically on every other node.
std::array<std::uint64_t, 256> make_gear_table() {
  std::array<std::uint64_t, 256> gear{};
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (auto& g : gear) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    g = z ^ (z >> 31);
  }
  return gear;
}

const std::array<std::uint64_t, 256>& gear_table() {
  static const std::array<std::uint64_t, 256> table = make_gear_table();
  return table;
}

}  // namespace

void ChunkerConfig::validate() const {
  if (target_bytes == 0 || (target_bytes & (target_bytes - 1)) != 0) {
    throw Error("chunker: target_bytes must be a nonzero power of two");
  }
  if (min_bytes == 0 || min_bytes > target_bytes || target_bytes > max_bytes) {
    throw Error("chunker: need 0 < min_bytes <= target_bytes <= max_bytes");
  }
}

std::vector<std::span<const std::byte>> split_chunks(
    std::span<const std::byte> data, const ChunkerConfig& cfg) {
  cfg.validate();
  std::vector<std::span<const std::byte>> chunks;
  if (data.empty()) return chunks;

  if (cfg.mode == ChunkerConfig::Mode::kFixed) {
    for (std::size_t off = 0; off < data.size(); off += cfg.target_bytes) {
      chunks.push_back(
          data.subspan(off, std::min(cfg.target_bytes, data.size() - off)));
    }
    return chunks;
  }

  // Gear CDC: h = (h << 1) + gear[b]; cut where the top target_bits of a
  // byte-position-independent hash are zero, giving an expected chunk
  // size of target_bytes past the minimum.
  const auto& gear = gear_table();
  const std::uint64_t mask = static_cast<std::uint64_t>(cfg.target_bytes - 1);
  std::size_t start = 0;
  while (start < data.size()) {
    const std::size_t remaining = data.size() - start;
    if (remaining <= cfg.min_bytes) {
      chunks.push_back(data.subspan(start));
      break;
    }
    const std::size_t limit = std::min(remaining, cfg.max_bytes);
    std::uint64_t h = 0;
    std::size_t len = 0;
    // The hash warms up inside the skipped minimum region so the first
    // eligible position already sees a full window of context.
    for (; len < limit; ++len) {
      h = (h << 1) + gear[static_cast<std::uint8_t>(data[start + len])];
      if (len + 1 >= cfg.min_bytes && (h & mask) == 0) {
        ++len;
        break;
      }
    }
    chunks.push_back(data.subspan(start, len));
    start += len;
  }
  return chunks;
}

}  // namespace mojave::ckpt
