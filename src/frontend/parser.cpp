#include "frontend/parser.hpp"

#include "frontend/lexer.hpp"
#include "support/error.hpp"

namespace mojave::frontend {

const char* moj_ty_name(MojTy t) {
  switch (t) {
    case MojTy::kVoid: return "void";
    case MojTy::kInt: return "int";
    case MojTy::kFloat: return "float";
    case MojTy::kPtr: return "ptr";
  }
  return "?";
}

namespace {

class Parser {
 public:
  Parser(std::string name, const std::string& source)
      : name_(std::move(name)), toks_(lex(source)) {}

  Unit run() {
    Unit unit;
    unit.name = name_;
    while (!at(Tok::kEof)) {
      unit.functions.push_back(parse_top());
    }
    return unit;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(name_ + ": " + msg + " at line " +
                     std::to_string(cur().line) + ":" +
                     std::to_string(cur().col) + " (near " +
                     token_name(cur().kind) + ")");
  }

  [[nodiscard]] const Token& cur() const { return toks_[pos_]; }
  [[nodiscard]] bool at(Tok k) const { return cur().kind == k; }

  Token eat(Tok k) {
    if (!at(k)) fail(std::string("expected ") + token_name(k));
    return toks_[pos_++];
  }

  bool accept(Tok k) {
    if (at(k)) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool at_type() const {
    return at(Tok::kKwInt) || at(Tok::kKwFloat) || at(Tok::kKwPtr) ||
           at(Tok::kKwVoid);
  }

  MojTy parse_type() {
    if (accept(Tok::kKwInt)) return MojTy::kInt;
    if (accept(Tok::kKwFloat)) return MojTy::kFloat;
    if (accept(Tok::kKwPtr)) return MojTy::kPtr;
    if (accept(Tok::kKwVoid)) return MojTy::kVoid;
    fail("expected a type");
  }

  FunDecl parse_top() {
    FunDecl fn;
    fn.is_extern = accept(Tok::kKwExtern);
    fn.line = cur().line;
    fn.ret = parse_type();
    fn.name = eat(Tok::kIdent).text;
    eat(Tok::kLParen);
    if (!at(Tok::kRParen)) {
      do {
        const MojTy ty = parse_type();
        if (ty == MojTy::kVoid) fail("void parameter");
        fn.param_tys.push_back(ty);
        // Parameter names are optional in extern declarations.
        if (at(Tok::kIdent)) {
          fn.param_names.push_back(eat(Tok::kIdent).text);
        } else if (fn.is_extern) {
          fn.param_names.push_back("p" +
                                   std::to_string(fn.param_tys.size() - 1));
        } else {
          fail("missing parameter name");
        }
      } while (accept(Tok::kComma));
    }
    eat(Tok::kRParen);
    if (fn.is_extern) {
      eat(Tok::kSemi);
      return fn;
    }
    fn.body = parse_block();
    return fn;
  }

  std::vector<StmtP> parse_block() {
    eat(Tok::kLBrace);
    std::vector<StmtP> stmts;
    while (!at(Tok::kRBrace)) {
      if (at(Tok::kEof)) fail("unterminated block");
      stmts.push_back(parse_stmt());
    }
    eat(Tok::kRBrace);
    return stmts;
  }

  StmtP make_stmt(StKind kind) {
    auto s = std::make_unique<Stmt>();
    s->kind = kind;
    s->line = cur().line;
    return s;
  }

  /// Is the current token a compound-assignment operator?
  [[nodiscard]] static const char* compound_op(Tok t) {
    switch (t) {
      case Tok::kPlusAssign: return "+";
      case Tok::kMinusAssign: return "-";
      case Tok::kStarAssign: return "*";
      case Tok::kSlashAssign: return "/";
      case Tok::kPercentAssign: return "%";
      case Tok::kCaretAssign: return "^";
      case Tok::kAmpAssign: return "&";
      case Tok::kPipeAssign: return "|";
      default: return nullptr;
    }
  }

  ExprP make_var(const Token& ident) {
    auto v = std::make_unique<Expr>();
    v->kind = ExKind::kVar;
    v->line = ident.line;
    v->text = ident.text;
    return v;
  }

  /// Desugar `lhs op= rhs` into `lhs = lhs op rhs`.
  ExprP desugar_compound(ExprP lhs, const char* op, ExprP rhs, int line) {
    auto bin = std::make_unique<Expr>();
    bin->kind = ExKind::kBinary;
    bin->line = line;
    bin->op2 = op;
    bin->lhs = std::move(lhs);
    bin->rhs = std::move(rhs);
    return bin;
  }

  /// A "simple" statement: declaration, assignment (plain or compound),
  /// increment/decrement, or an expression statement. Used both as a
  /// normal statement and inside for(...) headers.
  StmtP parse_simple(bool require_semi) {
    const auto finish = [&](StmtP s) {
      if (require_semi) eat(Tok::kSemi);
      return s;
    };
    if (at_type()) {
      auto s = make_stmt(StKind::kDecl);
      s->ty = parse_type();
      if (s->ty == MojTy::kVoid) fail("cannot declare a void variable");
      s->name = eat(Tok::kIdent).text;
      if (accept(Tok::kAssign)) s->expr = parse_expr();
      return finish(std::move(s));
    }
    if (at(Tok::kIdent)) {
      const Token ident = cur();
      const Tok after = toks_[pos_ + 1].kind;
      if (after == Tok::kAssign) {
        pos_ += 2;
        auto s = make_stmt(StKind::kAssign);
        s->line = ident.line;
        s->name = ident.text;
        s->expr = parse_expr();
        return finish(std::move(s));
      }
      if (const char* op = compound_op(after)) {
        pos_ += 2;
        auto s = make_stmt(StKind::kAssign);
        s->line = ident.line;
        s->name = ident.text;
        s->expr =
            desugar_compound(make_var(ident), op, parse_expr(), ident.line);
        return finish(std::move(s));
      }
      if (after == Tok::kPlusPlus || after == Tok::kMinusMinus) {
        pos_ += 2;
        auto s = make_stmt(StKind::kAssign);
        s->line = ident.line;
        s->name = ident.text;
        auto one = std::make_unique<Expr>();
        one->kind = ExKind::kIntLit;
        one->line = ident.line;
        one->ival = 1;
        s->expr = desugar_compound(make_var(ident),
                                   after == Tok::kPlusPlus ? "+" : "-",
                                   std::move(one), ident.line);
        return finish(std::move(s));
      }
      if (after == Tok::kLBracket) {
        // `a[i] = e;`, `a[i] op= e;`, or an indexed expression statement.
        ++pos_;
        eat(Tok::kLBracket);
        ExprP index = parse_expr();
        eat(Tok::kRBracket);
        const char* op = compound_op(cur().kind);
        if (at(Tok::kAssign) || op != nullptr) {
          ++pos_;
          auto s = make_stmt(StKind::kIndexAssign);
          s->line = ident.line;
          s->index_base = make_var(ident);
          s->index = std::move(index);
          ExprP rhs = parse_expr();
          if (op != nullptr) {
            // `a[i] op= e` reads a[i] with a cloned index expression.
            auto read = std::make_unique<Expr>();
            read->kind = ExKind::kIndex;
            read->line = ident.line;
            read->lhs = make_var(ident);
            read->rhs = clone_expr(*s->index);
            s->expr = desugar_compound(std::move(read), op, std::move(rhs),
                                       ident.line);
          } else {
            s->expr = std::move(rhs);
          }
          return finish(std::move(s));
        }
        fail("indexed expression cannot stand alone as a statement");
      }
    }
    auto s = make_stmt(StKind::kExprStmt);
    s->expr = parse_expr();
    return finish(std::move(s));
  }

  /// Deep copy of an expression (for compound-assignment desugaring).
  ExprP clone_expr(const Expr& e) {
    auto out = std::make_unique<Expr>();
    out->kind = e.kind;
    out->line = e.line;
    out->ival = e.ival;
    out->fval = e.fval;
    out->text = e.text;
    out->op = e.op;
    out->op2 = e.op2;
    if (e.lhs) out->lhs = clone_expr(*e.lhs);
    if (e.rhs) out->rhs = clone_expr(*e.rhs);
    for (const ExprP& a : e.args) out->args.push_back(clone_expr(*a));
    return out;
  }

  StmtP parse_stmt() {
    if (at(Tok::kKwFor)) {
      ++pos_;
      auto s = make_stmt(StKind::kFor);
      eat(Tok::kLParen);
      if (!at(Tok::kSemi)) {
        s->for_init = parse_simple(false);
      }
      eat(Tok::kSemi);
      if (!at(Tok::kSemi)) s->expr = parse_expr();
      eat(Tok::kSemi);
      if (!at(Tok::kRParen)) s->for_step = parse_simple(false);
      eat(Tok::kRParen);
      s->body = parse_block();
      return s;
    }
    if (at(Tok::kKwDo)) {
      ++pos_;
      auto s = make_stmt(StKind::kDoWhile);
      s->body = parse_block();
      eat(Tok::kKwWhile);
      eat(Tok::kLParen);
      s->expr = parse_expr();
      eat(Tok::kRParen);
      eat(Tok::kSemi);
      return s;
    }
    if (at(Tok::kKwIf)) {
      ++pos_;
      auto s = make_stmt(StKind::kIf);
      eat(Tok::kLParen);
      s->expr = parse_expr();
      eat(Tok::kRParen);
      s->body = parse_block();
      if (accept(Tok::kKwElse)) {
        if (at(Tok::kKwIf)) {
          // else-if chains: wrap the nested if as a one-statement block
          s->else_body.push_back(parse_stmt());
        } else {
          s->else_body = parse_block();
        }
      }
      return s;
    }
    if (at(Tok::kKwWhile)) {
      ++pos_;
      auto s = make_stmt(StKind::kWhile);
      eat(Tok::kLParen);
      s->expr = parse_expr();
      eat(Tok::kRParen);
      s->body = parse_block();
      return s;
    }
    if (at(Tok::kKwReturn)) {
      ++pos_;
      auto s = make_stmt(StKind::kReturn);
      if (!at(Tok::kSemi)) s->expr = parse_expr();
      eat(Tok::kSemi);
      return s;
    }
    if (at(Tok::kKwBreak)) {
      ++pos_;
      auto s = make_stmt(StKind::kBreak);
      eat(Tok::kSemi);
      return s;
    }
    if (at(Tok::kKwContinue)) {
      ++pos_;
      auto s = make_stmt(StKind::kContinue);
      eat(Tok::kSemi);
      return s;
    }
    if (at(Tok::kLBrace)) {
      auto s = make_stmt(StKind::kBlock);
      s->body = parse_block();
      return s;
    }

    return parse_simple(/*require_semi=*/true);
  }

  // --- Expressions (precedence climbing) -------------------------------

  ExprP make_expr(ExKind kind) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->line = cur().line;
    return e;
  }

  ExprP parse_expr() { return parse_or(); }

  ExprP parse_or() {
    ExprP lhs = parse_and();
    while (at(Tok::kOrOr)) {
      ++pos_;
      auto e = make_expr(ExKind::kBinary);
      e->op2 = "||";
      e->lhs = std::move(lhs);
      e->rhs = parse_and();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprP parse_and() {
    ExprP lhs = parse_cmp();
    while (at(Tok::kAndAnd)) {
      ++pos_;
      auto e = make_expr(ExKind::kBinary);
      e->op2 = "&&";
      e->lhs = std::move(lhs);
      e->rhs = parse_cmp();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprP parse_cmp() {
    ExprP lhs = parse_bitor();
    while (at(Tok::kEq) || at(Tok::kNe) || at(Tok::kLt) || at(Tok::kLe) ||
           at(Tok::kGt) || at(Tok::kGe)) {
      const Tok op = cur().kind;
      ++pos_;
      auto e = make_expr(ExKind::kBinary);
      switch (op) {
        case Tok::kEq: e->op2 = "=="; break;
        case Tok::kNe: e->op2 = "!="; break;
        case Tok::kLt: e->op2 = "<"; break;
        case Tok::kLe: e->op2 = "<="; break;
        case Tok::kGt: e->op2 = ">"; break;
        default: e->op2 = ">="; break;
      }
      e->lhs = std::move(lhs);
      e->rhs = parse_bitor();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprP parse_bitor() {
    ExprP lhs = parse_bitxor();
    while (at(Tok::kPipe)) {
      ++pos_;
      auto e = make_expr(ExKind::kBinary);
      e->op2 = "|";
      e->lhs = std::move(lhs);
      e->rhs = parse_bitxor();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprP parse_bitxor() {
    ExprP lhs = parse_bitand();
    while (at(Tok::kCaret)) {
      ++pos_;
      auto e = make_expr(ExKind::kBinary);
      e->op2 = "^";
      e->lhs = std::move(lhs);
      e->rhs = parse_bitand();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprP parse_bitand() {
    ExprP lhs = parse_shift();
    while (at(Tok::kAmp)) {
      ++pos_;
      auto e = make_expr(ExKind::kBinary);
      e->op2 = "&";
      e->lhs = std::move(lhs);
      e->rhs = parse_shift();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprP parse_shift() {
    ExprP lhs = parse_add();
    while (at(Tok::kShl) || at(Tok::kShr)) {
      const bool shl = at(Tok::kShl);
      ++pos_;
      auto e = make_expr(ExKind::kBinary);
      e->op2 = shl ? "<<" : ">>";
      e->lhs = std::move(lhs);
      e->rhs = parse_add();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprP parse_add() {
    ExprP lhs = parse_mul();
    while (at(Tok::kPlus) || at(Tok::kMinus)) {
      const bool plus = at(Tok::kPlus);
      ++pos_;
      auto e = make_expr(ExKind::kBinary);
      e->op2 = plus ? "+" : "-";
      e->lhs = std::move(lhs);
      e->rhs = parse_mul();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprP parse_mul() {
    ExprP lhs = parse_unary();
    while (at(Tok::kStar) || at(Tok::kSlash) || at(Tok::kPercent)) {
      const Tok op = cur().kind;
      ++pos_;
      auto e = make_expr(ExKind::kBinary);
      e->op2 = op == Tok::kStar ? "*" : op == Tok::kSlash ? "/" : "%";
      e->lhs = std::move(lhs);
      e->rhs = parse_unary();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprP parse_unary() {
    if (at(Tok::kMinus)) {
      ++pos_;
      auto e = make_expr(ExKind::kUnary);
      e->op = '-';
      e->lhs = parse_unary();
      return e;
    }
    if (at(Tok::kBang)) {
      ++pos_;
      auto e = make_expr(ExKind::kUnary);
      e->op = '!';
      e->lhs = parse_unary();
      return e;
    }
    return parse_primary();
  }

  ExprP parse_primary() {
    if (at(Tok::kInt)) {
      auto e = make_expr(ExKind::kIntLit);
      e->ival = eat(Tok::kInt).ival;
      return e;
    }
    if (at(Tok::kFloat)) {
      auto e = make_expr(ExKind::kFloatLit);
      e->fval = eat(Tok::kFloat).fval;
      return e;
    }
    if (at(Tok::kString)) {
      auto e = make_expr(ExKind::kStringLit);
      e->text = eat(Tok::kString).text;
      return e;
    }
    if (at(Tok::kLParen)) {
      ++pos_;
      ExprP e = parse_expr();
      eat(Tok::kRParen);
      return e;
    }
    if (at(Tok::kIdent)) {
      const Token ident = eat(Tok::kIdent);
      if (at(Tok::kLParen)) {
        ++pos_;
        auto e = make_expr(ExKind::kCall);
        e->line = ident.line;
        e->text = ident.text;
        if (!at(Tok::kRParen)) {
          do {
            e->args.push_back(parse_expr());
          } while (accept(Tok::kComma));
        }
        eat(Tok::kRParen);
        return e;
      }
      if (at(Tok::kLBracket)) {
        ++pos_;
        auto e = make_expr(ExKind::kIndex);
        e->line = ident.line;
        auto base = std::make_unique<Expr>();
        base->kind = ExKind::kVar;
        base->line = ident.line;
        base->text = ident.text;
        e->lhs = std::move(base);
        e->rhs = parse_expr();
        eat(Tok::kRBracket);
        return e;
      }
      auto e = make_expr(ExKind::kVar);
      e->line = ident.line;
      e->text = ident.text;
      return e;
    }
    fail("expected an expression");
  }

  std::string name_;
  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

Unit parse(const std::string& unit_name, const std::string& source) {
  return Parser(unit_name, source).run();
}

}  // namespace mojave::frontend
