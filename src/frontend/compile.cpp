#include "frontend/compile.hpp"

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "fir/builder.hpp"
#include "frontend/parser.hpp"
#include "support/error.hpp"

namespace mojave::frontend {

namespace {

using fir::Atom;
using fir::Binop;
using fir::FunctionBuilder;
using fir::ProgramBuilder;
using fir::Type;
using fir::Unop;

Type fir_ty(MojTy t) {
  switch (t) {
    case MojTy::kInt:
      return Type::integer();
    case MojTy::kFloat:
      return Type::real();
    case MojTy::kPtr:
      return Type::ptr();
    case MojTy::kVoid:
      return Type::unit();
  }
  throw TypeError("unmappable MojC type");
}

/// The FIR type of a function's return continuation: k(ret, kenv).
Type cont_ty(MojTy ret) {
  return Type::fun(
      {ret == MojTy::kVoid ? Type::integer() : fir_ty(ret), Type::ptr()});
}

/// A typed expression value.
struct Val {
  Atom atom;
  MojTy ty = MojTy::kInt;
};

struct Sig {
  MojTy ret = MojTy::kVoid;
  std::vector<MojTy> params;
  bool is_extern = false;
  std::uint32_t fir_id = 0;  ///< entry part id (user functions only)
};

struct Local {
  MojTy ty = MojTy::kInt;
  std::int64_t slot = 0;
};

/// One open FIR function part under construction plus the lexical
/// environment along this compilation path. Scopes are per-path values:
/// sibling branches must not see each other's declarations.
struct Ctx {
  FunctionBuilder* fb;
  Atom frame;
  std::vector<std::map<std::string, Local>> scopes;
};

constexpr std::int64_t kSlotK = 0;
constexpr std::int64_t kSlotKEnv = 1;

class Compiler {
 public:
  explicit Compiler(const Unit& unit) : unit_(unit), pb_(unit.name) {}

  fir::Program run() {
    register_builtin_externs();
    // Pass 1: signatures + FIR declarations for entry parts.
    for (const FunDecl& fn : unit_.functions) {
      if (sigs_.contains(fn.name)) {
        throw TypeError("duplicate function: " + fn.name);
      }
      Sig sig;
      sig.ret = fn.ret;
      sig.params = fn.param_tys;
      sig.is_extern = fn.is_extern;
      if (!fn.is_extern) {
        std::vector<Type> ptys;
        for (MojTy t : fn.param_tys) ptys.push_back(fir_ty(t));
        ptys.push_back(cont_ty(fn.ret));
        ptys.push_back(Type::ptr());
        sig.fir_id = pb_.declare(fn.name, std::move(ptys));
      }
      sigs_.emplace(fn.name, std::move(sig));
    }

    const auto main_it = sigs_.find("main");
    if (main_it == sigs_.end() || main_it->second.is_extern) {
      throw TypeError("program has no main function");
    }
    if (!main_it->second.params.empty()) {
      throw TypeError("main must take no parameters");
    }

    // $exit is the top-level continuation: k(code, env) = halt code.
    exit_id_ = pb_.declare("$exit", {Type::integer(), Type::ptr()});
    {
      FunctionBuilder fb = pb_.define(exit_id_, {"code", "env"});
      fb.halt(fb.arg(0));
    }
    const std::uint32_t start_id = pb_.declare("$start", {});
    {
      FunctionBuilder fb = pb_.define(start_id, {});
      fb.tail_call(Atom::fun_ref(main_it->second.fir_id),
                   {Atom::fun_ref(exit_id_), Atom::null_ptr()});
    }

    // Pass 2: bodies.
    for (const FunDecl& fn : unit_.functions) {
      if (!fn.is_extern) compile_function(fn);
    }
    return pb_.take("$start");
  }

 private:
  [[noreturn]] void fail(int line, const std::string& msg) const {
    throw TypeError(unit_.name + ":" + std::to_string(line) + ": " + msg);
  }

  void register_builtin_externs() {
    const auto ext = [&](const std::string& name, MojTy ret,
                         std::vector<MojTy> params) {
      Sig s;
      s.ret = ret;
      s.params = std::move(params);
      s.is_extern = true;
      sigs_.emplace(name, std::move(s));
    };
    ext("print_string", MojTy::kVoid, {MojTy::kPtr});
    ext("print_int", MojTy::kVoid, {MojTy::kInt});
    ext("print_float", MojTy::kVoid, {MojTy::kFloat});
    ext("clock_us", MojTy::kInt, {});
    ext("spec_level", MojTy::kInt, {});
    ext("heap_live_bytes", MojTy::kInt, {});
  }

  // --- Per-function state ------------------------------------------------

  static void count_decls(const std::vector<StmtP>& stmts, std::int64_t& n) {
    for (const StmtP& s : stmts) {
      if (s->kind == StKind::kDecl) ++n;
      if (s->for_init && s->for_init->kind == StKind::kDecl) ++n;
      if (s->for_step && s->for_step->kind == StKind::kDecl) ++n;
      count_decls(s->body, n);
      count_decls(s->else_body, n);
    }
  }

  using Rest = std::function<void(Ctx&)>;

  void compile_function(const FunDecl& fn) {
    cur_fn_ = &fn;
    part_counter_ = 0;
    next_slot_ = kSlotKEnv + 1 + static_cast<std::int64_t>(fn.param_tys.size());

    std::int64_t ndecls = 0;
    count_decls(fn.body, ndecls);
    const std::int64_t frame_slots = next_slot_ + ndecls;

    // Entry part: allocate the frame, spill k/kenv/params into it.
    std::vector<std::string> names = fn.param_names;
    names.push_back("k");
    names.push_back("kenv");
    builders_.push_back(pb_.define(sigs_.at(fn.name).fir_id, std::move(names)));
    Ctx ctx{&builders_.back(), Atom::unit(), {}};
    const fir::VarId frame_var = ctx.fb->let_alloc(
        "frame", Atom::integer(frame_slots), Atom::integer(0));
    ctx.frame = Atom::variable(frame_var);
    const auto nparams = static_cast<std::uint32_t>(fn.param_tys.size());
    ctx.fb->write(ctx.frame, Atom::integer(kSlotK), ctx.fb->arg(nparams));
    ctx.fb->write(ctx.frame, Atom::integer(kSlotKEnv),
                  ctx.fb->arg(nparams + 1));
    ctx.scopes.emplace_back();
    for (std::uint32_t i = 0; i < nparams; ++i) {
      const std::int64_t slot = kSlotKEnv + 1 + i;
      ctx.fb->write(ctx.frame, Atom::integer(slot), ctx.fb->arg(i));
      ctx.scopes.back()[fn.param_names[i]] = Local{fn.param_tys[i], slot};
    }

    compile_list(ctx, fn.body, 0,
                 [this](Ctx& c) { emit_return(c, std::nullopt, 0); });
    cur_fn_ = nullptr;
  }

  /// Declare + open a new continuation part of the current function.
  /// `extra` describes leading parameters before the frame pointer.
  std::uint32_t declare_part(const std::string& kind,
                             std::vector<Type> leading) {
    std::vector<Type> ptys = std::move(leading);
    ptys.push_back(Type::ptr());
    const std::string name = cur_fn_->name + "$" + kind +
                             std::to_string(part_counter_++);
    return pb_.declare(name, std::move(ptys));
  }

  Ctx open_part(std::uint32_t id, std::vector<std::string> leading_names,
                const Ctx& inherit_scopes) {
    leading_names.push_back("frame");
    const auto frame_param =
        static_cast<std::uint32_t>(leading_names.size() - 1);
    builders_.push_back(pb_.define(id, std::move(leading_names)));
    Ctx ctx{&builders_.back(), Atom::unit(), inherit_scopes.scopes};
    ctx.frame = ctx.fb->arg(frame_param);
    return ctx;
  }

  // --- Slot access ---------------------------------------------------------

  const Local& lookup(const Ctx& ctx, int line, const std::string& name) const {
    for (auto it = ctx.scopes.rbegin(); it != ctx.scopes.rend(); ++it) {
      const auto f = it->find(name);
      if (f != it->end()) return f->second;
    }
    fail(line, "use of undeclared variable '" + name + "'");
  }

  Val read_local(Ctx& ctx, const Local& l, const std::string& name) {
    const fir::VarId v = ctx.fb->let_read(name, fir_ty(l.ty), ctx.frame,
                                         Atom::integer(l.slot));
    return Val{Atom::variable(v), l.ty};
  }

  void write_local(Ctx& ctx, const Local& l, Val v, int line) {
    v = promote(ctx, v, l.ty, line);
    ctx.fb->write(ctx.frame, Atom::integer(l.slot), v.atom);
  }

  // --- Types & promotion --------------------------------------------------

  Val promote(Ctx& ctx, Val v, MojTy want, int line) {
    if (v.ty == want) return v;
    if (v.ty == MojTy::kInt && want == MojTy::kFloat) {
      const fir::VarId f = ctx.fb->let_unop("f", Unop::kFloatOfInt, v.atom);
      return Val{Atom::variable(f), MojTy::kFloat};
    }
    fail(line, std::string("type mismatch: have ") + moj_ty_name(v.ty) +
                   ", need " + moj_ty_name(want));
  }

  // --- Expressions ----------------------------------------------------------

  Val compile_expr(Ctx& ctx, const Expr& e) {
    switch (e.kind) {
      case ExKind::kIntLit:
        return Val{Atom::integer(e.ival), MojTy::kInt};
      case ExKind::kFloatLit:
        return Val{Atom::real(e.fval), MojTy::kFloat};
      case ExKind::kStringLit:
        return Val{pb_.str(e.text), MojTy::kPtr};
      case ExKind::kVar: {
        const Local& l = lookup(ctx, e.line, e.text);
        return read_local(ctx, l, e.text);
      }
      case ExKind::kUnary: {
        Val v = compile_expr(ctx, *e.lhs);
        if (e.op == '-') {
          if (v.ty == MojTy::kInt) {
            return Val{Atom::variable(ctx.fb->let_unop("n", Unop::kNeg, v.atom)),
                       MojTy::kInt};
          }
          if (v.ty == MojTy::kFloat) {
            return Val{
                Atom::variable(ctx.fb->let_unop("n", Unop::kFNeg, v.atom)),
                MojTy::kFloat};
          }
          fail(e.line, "cannot negate this type");
        }
        if (e.op == '!') {
          v = promote(ctx, v, MojTy::kInt, e.line);
          return Val{Atom::variable(ctx.fb->let_unop("b", Unop::kNot, v.atom)),
                     MojTy::kInt};
        }
        fail(e.line, "unknown unary operator");
      }
      case ExKind::kBinary:
        return compile_binary(ctx, e);
      case ExKind::kIndex: {
        Val base = compile_expr(ctx, *e.lhs);
        if (base.ty != MojTy::kPtr) fail(e.line, "indexing a non-pointer");
        Val idx = compile_expr(ctx, *e.rhs);
        if (idx.ty != MojTy::kInt) fail(e.line, "index must be int");
        const fir::VarId v =
            ctx.fb->let_read("elt", Type::integer(), base.atom, idx.atom);
        return Val{Atom::variable(v), MojTy::kInt};
      }
      case ExKind::kCall:
        return compile_value_call(ctx, e);
    }
    fail(e.line, "malformed expression");
  }

  Val compile_binary(Ctx& ctx, const Expr& e) {
    const std::string& op = e.op2;
    Val a = compile_expr(ctx, *e.lhs);
    Val b = compile_expr(ctx, *e.rhs);

    if (op == "&&" || op == "||") {
      // Statement-level conditions get proper short-circuit via
      // compile_cond; in value position both sides are evaluated.
      a = to_bool(ctx, a, e.line);
      b = to_bool(ctx, b, e.line);
      const Binop bo = op == "&&" ? Binop::kAnd : Binop::kOr;
      return Val{Atom::variable(ctx.fb->let_binop("b", bo, a.atom, b.atom)),
                 MojTy::kInt};
    }

    const bool int_only = op == "%" || op == "&" || op == "|" || op == "^" ||
                          op == "<<" || op == ">>";
    if (int_only) {
      if (a.ty != MojTy::kInt || b.ty != MojTy::kInt) {
        fail(e.line, "operator " + op + " requires int operands");
      }
      Binop bo;
      if (op == "%") bo = Binop::kMod;
      else if (op == "&") bo = Binop::kAnd;
      else if (op == "|") bo = Binop::kOr;
      else if (op == "^") bo = Binop::kXor;
      else if (op == "<<") bo = Binop::kShl;
      else bo = Binop::kShr;
      return Val{Atom::variable(ctx.fb->let_binop("i", bo, a.atom, b.atom)),
                 MojTy::kInt};
    }

    if (a.ty == MojTy::kPtr || b.ty == MojTy::kPtr) {
      fail(e.line, "operator " + op + " is not defined on pointers");
    }
    const bool use_float = a.ty == MojTy::kFloat || b.ty == MojTy::kFloat;
    if (use_float) {
      a = promote(ctx, a, MojTy::kFloat, e.line);
      b = promote(ctx, b, MojTy::kFloat, e.line);
    }

    struct OpRow {
      const char* name;
      Binop int_op;
      Binop float_op;
      bool compare;
    };
    static const OpRow rows[] = {
        {"+", Binop::kAdd, Binop::kFAdd, false},
        {"-", Binop::kSub, Binop::kFSub, false},
        {"*", Binop::kMul, Binop::kFMul, false},
        {"/", Binop::kDiv, Binop::kFDiv, false},
        {"==", Binop::kEq, Binop::kFEq, true},
        {"!=", Binop::kNe, Binop::kFNe, true},
        {"<", Binop::kLt, Binop::kFLt, true},
        {"<=", Binop::kLe, Binop::kFLe, true},
        {">", Binop::kGt, Binop::kFGt, true},
        {">=", Binop::kGe, Binop::kFGe, true},
    };
    for (const OpRow& row : rows) {
      if (op == row.name) {
        const Binop bo = use_float ? row.float_op : row.int_op;
        const MojTy result =
            row.compare ? MojTy::kInt
                        : (use_float ? MojTy::kFloat : MojTy::kInt);
        return Val{Atom::variable(ctx.fb->let_binop("t", bo, a.atom, b.atom)),
                   result};
      }
    }
    fail(e.line, "unknown operator " + op);
  }

  Val to_bool(Ctx& ctx, Val v, int line) {
    if (v.ty == MojTy::kInt) {
      return Val{Atom::variable(ctx.fb->let_binop("nz", Binop::kNe, v.atom,
                                                 Atom::integer(0))),
                 MojTy::kInt};
    }
    if (v.ty == MojTy::kFloat) {
      return Val{Atom::variable(ctx.fb->let_binop("nz", Binop::kFNe, v.atom,
                                                 Atom::real(0.0))),
                 MojTy::kInt};
    }
    fail(line, "condition must be numeric");
  }

  /// Builtins and externs that produce a value without transferring
  /// control. User-function calls are rejected here — they are statements.
  Val compile_value_call(Ctx& ctx, const Expr& e) {
    const std::string& name = e.text;
    const auto args_exact = [&](std::size_t n) {
      if (e.args.size() != n) {
        fail(e.line, name + " expects " + std::to_string(n) + " argument(s)");
      }
    };
    const auto arg = [&](std::size_t i, MojTy want) {
      Val v = compile_expr(ctx, *e.args[i]);
      return promote(ctx, v, want, e.line);
    };

    if (name == "alloc") {
      args_exact(1);
      const fir::VarId v = ctx.fb->let_alloc(
          "blk", arg(0, MojTy::kInt).atom, Atom::integer(0));
      return Val{Atom::variable(v), MojTy::kPtr};
    }
    if (name == "alloc_raw") {
      args_exact(1);
      const fir::VarId v =
          ctx.fb->let_alloc_raw("raw", arg(0, MojTy::kInt).atom);
      return Val{Atom::variable(v), MojTy::kPtr};
    }
    if (name == "len") {
      args_exact(1);
      const fir::VarId v = ctx.fb->let_len("n", arg(0, MojTy::kPtr).atom);
      return Val{Atom::variable(v), MojTy::kInt};
    }
    if (name == "ptr_add") {
      args_exact(2);
      const Atom p = arg(0, MojTy::kPtr).atom;
      const Atom d = arg(1, MojTy::kInt).atom;
      return Val{Atom::variable(ctx.fb->let_ptr_add("p", p, d)), MojTy::kPtr};
    }
    if (name == "readf") {
      args_exact(2);
      const Atom p = arg(0, MojTy::kPtr).atom;
      const Atom i = arg(1, MojTy::kInt).atom;
      return Val{Atom::variable(ctx.fb->let_read("f", Type::real(), p, i)),
                 MojTy::kFloat};
    }
    if (name == "readp") {
      args_exact(2);
      const Atom p = arg(0, MojTy::kPtr).atom;
      const Atom i = arg(1, MojTy::kInt).atom;
      return Val{Atom::variable(ctx.fb->let_read("q", Type::ptr(), p, i)),
                 MojTy::kPtr};
    }
    if (name == "i2f") {
      args_exact(1);
      return Val{Atom::variable(ctx.fb->let_unop("f", Unop::kFloatOfInt,
                                                arg(0, MojTy::kInt).atom)),
                 MojTy::kFloat};
    }
    if (name == "f2i") {
      args_exact(1);
      return Val{Atom::variable(ctx.fb->let_unop("i", Unop::kIntOfFloat,
                                                arg(0, MojTy::kFloat).atom)),
                 MojTy::kInt};
    }
    if (name == "null") {
      args_exact(0);
      return Val{Atom::null_ptr(), MojTy::kPtr};
    }
    if (name == "load8" || name == "load16" || name == "load32" ||
        name == "load64") {
      args_exact(2);
      const std::uint32_t width = name == "load8" ? 1
                                  : name == "load16" ? 2
                                  : name == "load32" ? 4
                                                     : 8;
      const Atom p = arg(0, MojTy::kPtr).atom;
      const Atom off = arg(1, MojTy::kInt).atom;
      return Val{Atom::variable(ctx.fb->let_raw_load("v", width, p, off)),
                 MojTy::kInt};
    }
    if (name == "loadf64") {
      args_exact(2);
      const Atom p = arg(0, MojTy::kPtr).atom;
      const Atom off = arg(1, MojTy::kInt).atom;
      return Val{Atom::variable(ctx.fb->let_raw_loadf("v", p, off)),
                 MojTy::kFloat};
    }
    if (name == "store8" || name == "store16" || name == "store32" ||
        name == "store64") {
      args_exact(3);
      const std::uint32_t width = name == "store8" ? 1
                                  : name == "store16" ? 2
                                  : name == "store32" ? 4
                                                      : 8;
      const Atom p = arg(0, MojTy::kPtr).atom;
      const Atom off = arg(1, MojTy::kInt).atom;
      const Atom v = arg(2, MojTy::kInt).atom;
      ctx.fb->raw_store(width, p, off, v);
      return Val{Atom::unit(), MojTy::kVoid};
    }
    if (name == "storef64") {
      args_exact(3);
      const Atom p = arg(0, MojTy::kPtr).atom;
      const Atom off = arg(1, MojTy::kInt).atom;
      const Atom v = arg(2, MojTy::kFloat).atom;
      ctx.fb->raw_storef(p, off, v);
      return Val{Atom::unit(), MojTy::kVoid};
    }
    if (name == "writef" || name == "writep" || name == "writei") {
      args_exact(3);
      const Atom p = arg(0, MojTy::kPtr).atom;
      const Atom i = arg(1, MojTy::kInt).atom;
      const MojTy vt = name == "writef" ? MojTy::kFloat
                       : name == "writep" ? MojTy::kPtr
                                          : MojTy::kInt;
      const Atom v = arg(2, vt).atom;
      ctx.fb->write(p, i, v);
      return Val{Atom::unit(), MojTy::kVoid};
    }

    if (name == "speculate" || name == "commit" || name == "abort" ||
        name == "rollback" || name == "migrate" || name == "exit") {
      fail(e.line, name + " is a statement-level primitive; it cannot be "
                          "nested inside an expression");
    }

    const auto it = sigs_.find(name);
    if (it == sigs_.end()) {
      fail(e.line, "call of undeclared function '" + name + "'");
    }
    const Sig& sig = it->second;
    if (!sig.is_extern) {
      fail(e.line,
           "user function calls are statements in MojC; write 'x = " + name +
               "(...);' or '" + name + "(...);'");
    }
    if (e.args.size() != sig.params.size()) {
      fail(e.line, name + " expects " + std::to_string(sig.params.size()) +
                       " argument(s)");
    }
    std::vector<Atom> ext_args;
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      ext_args.push_back(arg(i, sig.params[i]).atom);
    }
    const fir::VarId v =
        ctx.fb->let_external("x", fir_ty(sig.ret), name, std::move(ext_args));
    return Val{Atom::variable(v), sig.ret};
  }

  // --- Conditions with short-circuit --------------------------------------

  void compile_cond(Ctx& ctx, const Expr& e,
                    const std::function<void(Ctx&)>& on_true,
                    const std::function<void(Ctx&)>& on_false) {
    if (e.kind == ExKind::kBinary && e.op2 == "&&") {
      compile_cond(ctx, *e.lhs,
                   [&](Ctx& c) { compile_cond(c, *e.rhs, on_true, on_false); },
                   on_false);
      return;
    }
    if (e.kind == ExKind::kBinary && e.op2 == "||") {
      compile_cond(ctx, *e.lhs, on_true, [&](Ctx& c) {
        compile_cond(c, *e.rhs, on_true, on_false);
      });
      return;
    }
    if (e.kind == ExKind::kUnary && e.op == '!') {
      compile_cond(ctx, *e.lhs, on_false, on_true);
      return;
    }
    Val v = compile_expr(ctx, e);
    v = to_bool(ctx, v, e.line);
    const auto scopes = ctx.scopes;
    const Atom frame = ctx.frame;
    ctx.fb->branch(
        v.atom,
        [&](FunctionBuilder& fb) {
          Ctx arm{&fb, frame, scopes};
          on_true(arm);
        },
        [&](FunctionBuilder& fb) {
          Ctx arm{&fb, frame, scopes};
          on_false(arm);
        });
  }

  // --- Statements -----------------------------------------------------------

  void emit_goto(Ctx& ctx, std::uint32_t part_id) {
    ctx.fb->tail_call(Atom::fun_ref(part_id), {ctx.frame});
  }

  /// return [value]: read k/kenv back out of the frame and invoke k.
  void emit_return(Ctx& ctx, std::optional<Val> value, int line) {
    const MojTy ret = cur_fn_->ret;
    Atom val;
    if (ret == MojTy::kVoid) {
      if (value.has_value()) fail(line, "void function returning a value");
      val = Atom::integer(0);
    } else if (!value.has_value()) {
      // Falling off the end of a non-void function returns 0/0.0/null.
      val = ret == MojTy::kFloat ? Atom::real(0.0)
            : ret == MojTy::kPtr ? Atom::null_ptr()
                                 : Atom::integer(0);
    } else {
      val = promote(ctx, *value, ret, line).atom;
    }
    const fir::VarId k = ctx.fb->let_read("k", cont_ty(ret), ctx.frame,
                                         Atom::integer(kSlotK));
    const fir::VarId kenv = ctx.fb->let_read("kenv", Type::ptr(), ctx.frame,
                                            Atom::integer(kSlotKEnv));
    ctx.fb->tail_call(Atom::variable(k), {val, Atom::variable(kenv)});
  }

  void compile_list(Ctx& ctx, const std::vector<StmtP>& stmts, std::size_t i,
                    const Rest& after) {
    if (i == stmts.size()) {
      after(ctx);
      return;
    }
    compile_stmt(ctx, *stmts[i], [this, &stmts, i, &after](Ctx& c) {
      compile_list(c, stmts, i + 1, after);
    });
  }

  /// Assign the result of `rhs` into frame slot `target` (of type
  /// `target_ty`), splitting the function if rhs suspends (speculate() or a
  /// user call), then continue with `rest`.
  void compile_assign_into(Ctx& ctx, const Local& target, const Expr& rhs,
                           int line, const Rest& rest) {
    if (rhs.kind == ExKind::kCall && rhs.text == "speculate") {
      if (!rhs.args.empty()) fail(line, "speculate() takes no arguments");
      if (target.ty != MojTy::kInt) {
        fail(line, "speculate() result must be stored in an int");
      }
      const std::uint32_t part = declare_part("spec", {Type::integer()});
      ctx.fb->speculate(Atom::fun_ref(part), {ctx.frame});
      Ctx pctx = open_part(part, {"c"}, ctx);
      pctx.fb->write(pctx.frame, Atom::integer(target.slot), pctx.fb->arg(0));
      rest(pctx);
      return;
    }
    if (rhs.kind == ExKind::kCall) {
      const auto it = sigs_.find(rhs.text);
      if (it != sigs_.end() && !it->second.is_extern) {
        const Sig& sig = it->second;
        if (sig.ret == MojTy::kVoid) {
          fail(line, "assigning the result of void function " + rhs.text);
        }
        if (sig.ret != target.ty &&
            !(sig.ret == MojTy::kInt && target.ty == MojTy::kFloat)) {
          fail(line, "cannot store " + std::string(moj_ty_name(sig.ret)) +
                         " result of " + rhs.text + " into " +
                         moj_ty_name(target.ty));
        }
        compile_user_call(ctx, rhs, sig, line,
                          [this, &target, &rest](Ctx& c, Val ret_val) {
                            write_local(c, target, ret_val, 0);
                            rest(c);
                          });
        return;
      }
    }
    Val v = compile_expr(ctx, rhs);
    write_local(ctx, target, v, line);
    rest(ctx);
  }

  /// Tail-call a user function with a freshly declared return part;
  /// `then` receives the part context and the (typed) return value.
  void compile_user_call(Ctx& ctx, const Expr& call, const Sig& sig, int line,
                         const std::function<void(Ctx&, Val)>& then) {
    if (call.args.size() != sig.params.size()) {
      fail(line, call.text + " expects " +
                     std::to_string(sig.params.size()) + " argument(s)");
    }
    std::vector<Atom> args;
    for (std::size_t i = 0; i < call.args.size(); ++i) {
      Val v = compile_expr(ctx, *call.args[i]);
      args.push_back(promote(ctx, v, sig.params[i], line).atom);
    }
    const MojTy rty = sig.ret == MojTy::kVoid ? MojTy::kInt : sig.ret;
    const std::uint32_t part = declare_part("ret", {fir_ty(rty)});
    args.push_back(Atom::fun_ref(part));
    args.push_back(ctx.frame);
    ctx.fb->tail_call(Atom::fun_ref(sig.fir_id), std::move(args));

    Ctx pctx = open_part(part, {"ret"}, ctx);
    then(pctx, Val{pctx.fb->arg(0), rty});
  }

  void compile_stmt(Ctx& ctx, const Stmt& s, const Rest& rest) {
    switch (s.kind) {
      case StKind::kDecl: {
        const std::int64_t slot = next_slot_++;
        if (ctx.scopes.back().contains(s.name)) {
          fail(s.line, "redeclaration of '" + s.name + "' in this scope");
        }
        const Local local{s.ty, slot};
        // The name becomes visible only after its initializer, per C.
        if (s.expr != nullptr) {
          compile_assign_into(ctx, local, *s.expr, s.line, [&](Ctx& c) {
            c.scopes.back()[s.name] = local;
            rest(c);
          });
        } else {
          const Atom init = s.ty == MojTy::kFloat ? Atom::real(0.0)
                            : s.ty == MojTy::kPtr ? Atom::null_ptr()
                                                  : Atom::integer(0);
          ctx.fb->write(ctx.frame, Atom::integer(slot), init);
          ctx.scopes.back()[s.name] = local;
          rest(ctx);
        }
        return;
      }
      case StKind::kAssign: {
        const Local local = lookup(ctx, s.line, s.name);
        compile_assign_into(ctx, local, *s.expr, s.line, rest);
        return;
      }
      case StKind::kIndexAssign: {
        Val base = compile_expr(ctx, *s.index_base);
        if (base.ty != MojTy::kPtr) fail(s.line, "indexing a non-pointer");
        Val idx = compile_expr(ctx, *s.index);
        if (idx.ty != MojTy::kInt) fail(s.line, "index must be int");
        Val v = compile_expr(ctx, *s.expr);
        if (v.ty == MojTy::kVoid) fail(s.line, "storing a void value");
        ctx.fb->write(base.atom, idx.atom, v.atom);
        rest(ctx);
        return;
      }
      case StKind::kExprStmt:
        compile_expr_stmt(ctx, s, rest);
        return;
      case StKind::kIf: {
        const std::uint32_t then_part = declare_part("then", {});
        const std::uint32_t else_part = declare_part("else", {});
        const std::uint32_t join_part = declare_part("join", {});
        compile_cond(ctx, *s.expr,
                     [&](Ctx& c) { emit_goto(c, then_part); },
                     [&](Ctx& c) { emit_goto(c, else_part); });
        {
          Ctx tctx = open_part(then_part, {}, ctx);
          tctx.scopes.emplace_back();
          compile_list(tctx, s.body, 0,
                       [&](Ctx& c) { emit_goto(c, join_part); });
        }
        {
          Ctx ectx = open_part(else_part, {}, ctx);
          ectx.scopes.emplace_back();
          compile_list(ectx, s.else_body, 0,
                       [&](Ctx& c) { emit_goto(c, join_part); });
        }
        Ctx jctx = open_part(join_part, {}, ctx);
        rest(jctx);
        return;
      }
      case StKind::kWhile: {
        const std::uint32_t loop_part = declare_part("loop", {});
        const std::uint32_t body_part = declare_part("body", {});
        const std::uint32_t after_part = declare_part("after", {});
        emit_goto(ctx, loop_part);
        {
          Ctx lctx = open_part(loop_part, {}, ctx);
          compile_cond(lctx, *s.expr,
                       [&](Ctx& c) { emit_goto(c, body_part); },
                       [&](Ctx& c) { emit_goto(c, after_part); });
        }
        {
          Ctx bctx = open_part(body_part, {}, ctx);
          bctx.scopes.emplace_back();
          loops_.push_back({loop_part, after_part});
          compile_list(bctx, s.body, 0,
                       [&](Ctx& c) { emit_goto(c, loop_part); });
          loops_.pop_back();
        }
        Ctx actx = open_part(after_part, {}, ctx);
        rest(actx);
        return;
      }
      case StKind::kFor: {
        // for (init; cond; step) — continue jumps to the step part, so
        // the loop structure is: init → $loop(cond) → $body → $step → $loop.
        ctx.scopes.emplace_back();  // the init declaration's scope
        const auto compile_loop = [&](Ctx& c) {
          const std::uint32_t loop_part = declare_part("floop", {});
          const std::uint32_t body_part = declare_part("fbody", {});
          const std::uint32_t step_part = declare_part("fstep", {});
          const std::uint32_t after_part = declare_part("fafter", {});
          emit_goto(c, loop_part);
          {
            Ctx lctx = open_part(loop_part, {}, c);
            if (s.expr != nullptr) {
              compile_cond(lctx, *s.expr,
                           [&](Ctx& t) { emit_goto(t, body_part); },
                           [&](Ctx& e2) { emit_goto(e2, after_part); });
            } else {
              emit_goto(lctx, body_part);  // for(;;): always taken
            }
          }
          {
            Ctx bctx = open_part(body_part, {}, c);
            bctx.scopes.emplace_back();
            loops_.push_back({step_part, after_part});
            compile_list(bctx, s.body, 0,
                         [&](Ctx& b) { emit_goto(b, step_part); });
            loops_.pop_back();
          }
          {
            Ctx sctx = open_part(step_part, {}, c);
            if (s.for_step != nullptr) {
              compile_stmt(sctx, *s.for_step,
                           [&](Ctx& s2) { emit_goto(s2, loop_part); });
            } else {
              emit_goto(sctx, loop_part);
            }
          }
          Ctx actx = open_part(after_part, {}, c);
          actx.scopes.pop_back();  // leave the init scope
          rest(actx);
        };
        if (s.for_init != nullptr) {
          compile_stmt(ctx, *s.for_init, compile_loop);
        } else {
          compile_loop(ctx);
        }
        return;
      }
      case StKind::kDoWhile: {
        const std::uint32_t body_part = declare_part("dbody", {});
        const std::uint32_t cond_part = declare_part("dcond", {});
        const std::uint32_t after_part = declare_part("dafter", {});
        emit_goto(ctx, body_part);
        {
          Ctx bctx = open_part(body_part, {}, ctx);
          bctx.scopes.emplace_back();
          loops_.push_back({cond_part, after_part});
          compile_list(bctx, s.body, 0,
                       [&](Ctx& b) { emit_goto(b, cond_part); });
          loops_.pop_back();
        }
        {
          Ctx cctx = open_part(cond_part, {}, ctx);
          compile_cond(cctx, *s.expr,
                       [&](Ctx& t) { emit_goto(t, body_part); },
                       [&](Ctx& e2) { emit_goto(e2, after_part); });
        }
        Ctx actx = open_part(after_part, {}, ctx);
        rest(actx);
        return;
      }
      case StKind::kReturn: {
        if (s.expr != nullptr) {
          // `return f(...);` on a user function: call, then return the
          // result from the continuation part.
          if (s.expr->kind == ExKind::kCall) {
            const auto it = sigs_.find(s.expr->text);
            if (it != sigs_.end() && !it->second.is_extern) {
              const int line = s.line;
              compile_user_call(ctx, *s.expr, it->second, line,
                                [this, line](Ctx& c, Val ret_val) {
                                  emit_return(c, ret_val, line);
                                });
              return;
            }
          }
          Val v = compile_expr(ctx, *s.expr);
          emit_return(ctx, v, s.line);
        } else {
          emit_return(ctx, std::nullopt, s.line);
        }
        return;  // terminator: the rest is unreachable
      }
      case StKind::kBreak:
        if (loops_.empty()) fail(s.line, "break outside a loop");
        emit_goto(ctx, loops_.back().after_part);
        return;
      case StKind::kContinue:
        if (loops_.empty()) fail(s.line, "continue outside a loop");
        emit_goto(ctx, loops_.back().loop_part);
        return;
      case StKind::kBlock: {
        ctx.scopes.emplace_back();
        compile_list(ctx, s.body, 0, [&](Ctx& c) {
          c.scopes.pop_back();
          rest(c);
        });
        return;
      }
    }
    fail(s.line, "malformed statement");
  }

  void compile_expr_stmt(Ctx& ctx, const Stmt& s, const Rest& rest) {
    const Expr& e = *s.expr;
    if (e.kind != ExKind::kCall) {
      // Evaluate for effect (reads can trap, which is an effect).
      (void)compile_expr(ctx, e);
      rest(ctx);
      return;
    }
    const std::string& name = e.text;

    const auto int_arg = [&](std::size_t i) {
      Val v = compile_expr(ctx, *e.args[i]);
      return promote(ctx, v, MojTy::kInt, s.line).atom;
    };

    if (name == "speculate") {
      fail(s.line, "speculate() must be assigned: 'int id = speculate();'");
    }
    if (name == "commit") {
      if (e.args.size() != 1) fail(s.line, "commit(level) takes one argument");
      const Atom level = int_arg(0);
      const std::uint32_t part = declare_part("cont", {});
      ctx.fb->commit(level, Atom::fun_ref(part), {ctx.frame});
      Ctx pctx = open_part(part, {}, ctx);
      rest(pctx);
      return;
    }
    if (name == "abort") {
      if (e.args.empty() || e.args.size() > 2) {
        fail(s.line, "abort(level[, c]) takes one or two arguments");
      }
      const Atom level = int_arg(0);
      const Atom c = e.args.size() == 2 ? int_arg(1) : Atom::integer(0);
      ctx.fb->abort_spec(level, c);
      return;  // terminator
    }
    if (name == "rollback") {
      if (e.args.size() != 2) {
        fail(s.line, "rollback(level, c) takes two arguments");
      }
      const Atom level = int_arg(0);
      const Atom c = int_arg(1);
      ctx.fb->rollback(level, c);
      return;  // terminator
    }
    if (name == "migrate") {
      if (e.args.size() != 1) {
        fail(s.line, "migrate(target) takes one argument");
      }
      Val target = compile_expr(ctx, *e.args[0]);
      if (target.ty != MojTy::kPtr) {
        fail(s.line, "migrate target must be a string");
      }
      const std::uint32_t part = declare_part("mig", {});
      ctx.fb->migrate(next_label_++, target.atom, Atom::fun_ref(part),
                     {ctx.frame});
      Ctx pctx = open_part(part, {}, ctx);
      rest(pctx);
      return;
    }
    if (name == "exit") {
      if (e.args.size() != 1) fail(s.line, "exit(code) takes one argument");
      ctx.fb->halt(int_arg(0));
      return;  // terminator
    }

    const auto it = sigs_.find(name);
    if (it != sigs_.end() && !it->second.is_extern) {
      compile_user_call(ctx, e, it->second, s.line,
                        [&rest](Ctx& c, Val) { rest(c); });
      return;
    }

    // Builtin or extern call for effect.
    (void)compile_value_call(ctx, e);
    rest(ctx);
    return;
  }

  const Unit& unit_;
  ProgramBuilder pb_;
  std::map<std::string, Sig> sigs_;
  std::uint32_t exit_id_ = 0;
  MigrateLabel next_label_ = 1;

  const FunDecl* cur_fn_ = nullptr;
  std::uint32_t part_counter_ = 0;
  std::int64_t next_slot_ = 0;

  std::deque<FunctionBuilder> builders_;

  struct LoopCtx {
    std::uint32_t loop_part;
    std::uint32_t after_part;
  };
  std::vector<LoopCtx> loops_;
};

}  // namespace

fir::Program compile(const Unit& unit) { return Compiler(unit).run(); }

fir::Program compile_source(const std::string& name,
                            const std::string& source) {
  const Unit unit = parse(name, source);
  return compile(unit);
}

}  // namespace mojave::frontend
