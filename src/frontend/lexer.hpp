// MojC lexer.
//
// MojC is the C-like source language of this reproduction (the paper's MCC
// compiles C, Pascal, ML and Java; one frontend suffices to express every
// program in the paper — Figures 1 and 2 are MojC almost verbatim).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mojave::frontend {

enum class Tok : std::uint8_t {
  kEof = 0,
  kInt,        // integer literal
  kFloat,      // float literal
  kString,     // "..."
  kIdent,
  // keywords
  kKwInt, kKwFloat, kKwPtr, kKwVoid, kKwIf, kKwElse, kKwWhile, kKwReturn,
  kKwExtern, kKwBreak, kKwContinue, kKwFor, kKwDo,
  // punctuation
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemi,
  kAssign,     // =
  kPlusAssign, kMinusAssign, kStarAssign, kSlashAssign, kPercentAssign,
  kCaretAssign, kAmpAssign, kPipeAssign,
  kPlusPlus, kMinusMinus,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAndAnd, kOrOr, kBang,
  kAmp, kPipe, kCaret, kShl, kShr,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;      // ident / string body
  std::int64_t ival = 0;
  double fval = 0.0;
  int line = 1;
  int col = 1;
};

/// Tokenize a whole translation unit; throws ParseError with line/column
/// on malformed input. Supports //-comments and /* */ comments.
[[nodiscard]] std::vector<Token> lex(const std::string& source);

[[nodiscard]] const char* token_name(Tok t);

}  // namespace mojave::frontend
