#include "frontend/lexer.hpp"

#include <cctype>
#include <map>

#include "support/error.hpp"

namespace mojave::frontend {

namespace {

const std::map<std::string, Tok>& keywords() {
  static const std::map<std::string, Tok> kw = {
      {"int", Tok::kKwInt},       {"float", Tok::kKwFloat},
      {"ptr", Tok::kKwPtr},       {"void", Tok::kKwVoid},
      {"if", Tok::kKwIf},         {"else", Tok::kKwElse},
      {"while", Tok::kKwWhile},   {"return", Tok::kKwReturn},
      {"extern", Tok::kKwExtern}, {"break", Tok::kKwBreak},
      {"continue", Tok::kKwContinue}, {"for", Tok::kKwFor},
      {"do", Tok::kKwDo},
  };
  return kw;
}

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (true) {
      skip_ws();
      Token t = next();
      const bool eof = t.kind == Tok::kEof;
      out.push_back(std::move(t));
      if (eof) return out;
    }
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg + " at line " + std::to_string(line_) + ":" +
                     std::to_string(col_));
  }

  [[nodiscard]] char peek(int ahead = 0) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < src_.size() ? src_[i] : '\0';
  }

  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_ws() {
    while (pos_ < src_.size()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (pos_ < src_.size() && peek() != '\n') advance();
      } else if (c == '/' && peek(1) == '*') {
        advance();
        advance();
        while (pos_ < src_.size() && !(peek() == '*' && peek(1) == '/')) {
          advance();
        }
        if (pos_ >= src_.size()) fail("unterminated block comment");
        advance();
        advance();
      } else {
        return;
      }
    }
  }

  Token make(Tok kind) {
    Token t;
    t.kind = kind;
    t.line = line_;
    t.col = col_;
    return t;
  }

  Token next() {
    if (pos_ >= src_.size()) return make(Tok::kEof);
    Token t = make(Tok::kEof);
    const char c = peek();

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (std::isalnum(static_cast<unsigned char>(peek())) ||
             peek() == '_') {
        ident.push_back(advance());
      }
      const auto it = keywords().find(ident);
      if (it != keywords().end()) {
        t.kind = it->second;
      } else {
        t.kind = Tok::kIdent;
        t.text = std::move(ident);
      }
      return t;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string num;
      bool is_float = false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        num.push_back(advance());
      }
      if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_float = true;
        num.push_back(advance());
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
          num.push_back(advance());
        }
      }
      if (peek() == 'e' || peek() == 'E') {
        is_float = true;
        num.push_back(advance());
        if (peek() == '+' || peek() == '-') num.push_back(advance());
        if (!std::isdigit(static_cast<unsigned char>(peek()))) {
          fail("malformed float exponent");
        }
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
          num.push_back(advance());
        }
      }
      if (is_float) {
        t.kind = Tok::kFloat;
        t.fval = std::stod(num);
      } else {
        t.kind = Tok::kInt;
        try {
          t.ival = std::stoll(num);
        } catch (const std::out_of_range&) {
          fail("integer literal out of range");
        }
      }
      return t;
    }

    if (c == '"') {
      advance();
      std::string body;
      while (true) {
        if (pos_ >= src_.size()) fail("unterminated string literal");
        char ch = advance();
        if (ch == '"') break;
        if (ch == '\\') {
          if (pos_ >= src_.size()) fail("unterminated escape");
          const char esc = advance();
          switch (esc) {
            case 'n': body.push_back('\n'); break;
            case 't': body.push_back('\t'); break;
            case 'r': body.push_back('\r'); break;
            case '0': body.push_back('\0'); break;
            case '\\': body.push_back('\\'); break;
            case '"': body.push_back('"'); break;
            default: fail(std::string("unknown escape \\") + esc);
          }
        } else {
          body.push_back(ch);
        }
      }
      t.kind = Tok::kString;
      t.text = std::move(body);
      return t;
    }

    advance();
    switch (c) {
      case '(': t.kind = Tok::kLParen; return t;
      case ')': t.kind = Tok::kRParen; return t;
      case '{': t.kind = Tok::kLBrace; return t;
      case '}': t.kind = Tok::kRBrace; return t;
      case '[': t.kind = Tok::kLBracket; return t;
      case ']': t.kind = Tok::kRBracket; return t;
      case ',': t.kind = Tok::kComma; return t;
      case ';': t.kind = Tok::kSemi; return t;
      case '+':
        if (peek() == '=') { advance(); t.kind = Tok::kPlusAssign; }
        else if (peek() == '+') { advance(); t.kind = Tok::kPlusPlus; }
        else { t.kind = Tok::kPlus; }
        return t;
      case '-':
        if (peek() == '=') { advance(); t.kind = Tok::kMinusAssign; }
        else if (peek() == '-') { advance(); t.kind = Tok::kMinusMinus; }
        else { t.kind = Tok::kMinus; }
        return t;
      case '*':
        if (peek() == '=') { advance(); t.kind = Tok::kStarAssign; }
        else { t.kind = Tok::kStar; }
        return t;
      case '/':
        if (peek() == '=') { advance(); t.kind = Tok::kSlashAssign; }
        else { t.kind = Tok::kSlash; }
        return t;
      case '%':
        if (peek() == '=') { advance(); t.kind = Tok::kPercentAssign; }
        else { t.kind = Tok::kPercent; }
        return t;
      case '^':
        if (peek() == '=') { advance(); t.kind = Tok::kCaretAssign; }
        else { t.kind = Tok::kCaret; }
        return t;
      case '=':
        if (peek() == '=') { advance(); t.kind = Tok::kEq; } else { t.kind = Tok::kAssign; }
        return t;
      case '!':
        if (peek() == '=') { advance(); t.kind = Tok::kNe; } else { t.kind = Tok::kBang; }
        return t;
      case '<':
        if (peek() == '=') { advance(); t.kind = Tok::kLe; }
        else if (peek() == '<') { advance(); t.kind = Tok::kShl; }
        else { t.kind = Tok::kLt; }
        return t;
      case '>':
        if (peek() == '=') { advance(); t.kind = Tok::kGe; }
        else if (peek() == '>') { advance(); t.kind = Tok::kShr; }
        else { t.kind = Tok::kGt; }
        return t;
      case '&':
        if (peek() == '&') { advance(); t.kind = Tok::kAndAnd; }
        else if (peek() == '=') { advance(); t.kind = Tok::kAmpAssign; }
        else { t.kind = Tok::kAmp; }
        return t;
      case '|':
        if (peek() == '|') { advance(); t.kind = Tok::kOrOr; }
        else if (peek() == '=') { advance(); t.kind = Tok::kPipeAssign; }
        else { t.kind = Tok::kPipe; }
        return t;
      default:
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

std::vector<Token> lex(const std::string& source) { return Lexer(source).run(); }

const char* token_name(Tok t) {
  switch (t) {
    case Tok::kEof: return "<eof>";
    case Tok::kInt: return "int literal";
    case Tok::kFloat: return "float literal";
    case Tok::kString: return "string literal";
    case Tok::kIdent: return "identifier";
    case Tok::kKwInt: return "'int'";
    case Tok::kKwFloat: return "'float'";
    case Tok::kKwPtr: return "'ptr'";
    case Tok::kKwVoid: return "'void'";
    case Tok::kKwIf: return "'if'";
    case Tok::kKwElse: return "'else'";
    case Tok::kKwWhile: return "'while'";
    case Tok::kKwReturn: return "'return'";
    case Tok::kKwExtern: return "'extern'";
    case Tok::kKwBreak: return "'break'";
    case Tok::kKwContinue: return "'continue'";
    case Tok::kKwFor: return "'for'";
    case Tok::kKwDo: return "'do'";
    case Tok::kPlusAssign: return "'+='";
    case Tok::kMinusAssign: return "'-='";
    case Tok::kStarAssign: return "'*='";
    case Tok::kSlashAssign: return "'/='";
    case Tok::kPercentAssign: return "'%='";
    case Tok::kPlusPlus: return "'++'";
    case Tok::kCaretAssign: return "'^='";
    case Tok::kAmpAssign: return "'&='";
    case Tok::kPipeAssign: return "'|='";
    case Tok::kMinusMinus: return "'--'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kComma: return "','";
    case Tok::kSemi: return "';'";
    case Tok::kAssign: return "'='";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kLt: return "'<'";
    case Tok::kLe: return "'<='";
    case Tok::kGt: return "'>'";
    case Tok::kGe: return "'>='";
    case Tok::kAndAnd: return "'&&'";
    case Tok::kOrOr: return "'||'";
    case Tok::kBang: return "'!'";
    case Tok::kAmp: return "'&'";
    case Tok::kPipe: return "'|'";
    case Tok::kCaret: return "'^'";
    case Tok::kShl: return "'<<'";
    case Tok::kShr: return "'>>'";
  }
  return "?";
}

}  // namespace mojave::frontend
