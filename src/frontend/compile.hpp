// MojC → FIR compilation.
//
// This pass is where the paper's promise is kept: "the compiler generates
// process state management code automatically, removing the need for the
// user to implement hand-written checkpointing code." Concretely:
//
//  * every MojC function activation stores its locals in a heap-allocated
//    frame block, so speculation's copy-on-write versioning covers local
//    variables exactly like any other heap data, and rollback restores
//    them with no user involvement;
//  * the function is split into continuation parts at every construct that
//    suspends or transfers control — user calls, if/while joins,
//    speculate(), commit(), migrate() — converting the program to the
//    FIR's continuation-passing style ("function calls in the source
//    language are converted to tail-calls using continuation passing
//    style; loops are expressed with recursive functions");
//  * at each such point the live state is exactly (frame pointer [, return
//    value or c]), which is what the FIR primitives capture and restore.
//
// Language-level primitives recognized by the compiler:
//   int id = speculate();        enter a level; id > 0 is the level number
//                                on first entry, and the rollback c value
//                                (≤ 0 by convention) after a rollback
//   commit(id);                  commit level id
//   abort(id);  abort(id, c);    roll back without re-entry
//   rollback(id, c);             roll back and automatically retry
//   migrate("protocol://...");   whole-process migration / checkpoint
//
// Value builtins: alloc, alloc_raw, len, ptr_add, readf, readp, i2f, f2i,
// load8/16/32/64, loadf64, null. Void builtins: store8/16/32/64, storef64,
// exit. Anything else undeclared must be an `extern` host function.
#pragma once

#include <string>

#include "fir/ir.hpp"
#include "frontend/ast.hpp"

namespace mojave::frontend {

/// Compile a parsed unit. Throws TypeError on semantic errors.
[[nodiscard]] fir::Program compile(const Unit& unit);

/// Parse + compile in one step.
[[nodiscard]] fir::Program compile_source(const std::string& name,
                                          const std::string& source);

}  // namespace mojave::frontend
