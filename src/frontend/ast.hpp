// MojC abstract syntax.
//
// Deliberately small: four value types (void only as a return type), the
// usual statements, and the language-level primitives the paper
// contributes — speculate / commit / abort / rollback / migrate — which
// parse as ordinary calls and are recognized by the compiler.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mojave::frontend {

enum class MojTy : std::uint8_t { kVoid = 0, kInt, kFloat, kPtr };

[[nodiscard]] const char* moj_ty_name(MojTy t);

// --- Expressions ---------------------------------------------------------

struct Expr;
using ExprP = std::unique_ptr<Expr>;

enum class ExKind : std::uint8_t {
  kIntLit,
  kFloatLit,
  kStringLit,
  kVar,
  kUnary,    // op: '-', '!', '~'
  kBinary,   // op: + - * / % & | ^ << >> == != < <= > >= && ||
  kIndex,    // base[index] — tagged slot read (int by default)
  kCall,     // callee(args): builtin, extern, or user function
};

struct Expr {
  ExKind kind;
  int line = 0;

  std::int64_t ival = 0;
  double fval = 0.0;
  std::string text;  // var name / string body / call name
  char op = 0;
  std::string op2;   // two-char operators: "==", "&&", "<=", "<<" ...
  ExprP lhs, rhs;
  std::vector<ExprP> args;
};

// --- Statements ----------------------------------------------------------

struct Stmt;
using StmtP = std::unique_ptr<Stmt>;

enum class StKind : std::uint8_t {
  kDecl,       // ty name = init?
  kAssign,     // name = expr
  kIndexAssign,// base[index] = expr
  kExprStmt,   // call;
  kIf,
  kWhile,
  kFor,      // init; cond; step — continue jumps to step
  kDoWhile,  // body executes at least once
  kReturn,
  kBreak,
  kContinue,
  kBlock,
};

struct Stmt {
  StKind kind;
  int line = 0;

  MojTy ty = MojTy::kVoid;   // kDecl
  std::string name;          // kDecl / kAssign
  ExprP expr;                // init / value / condition / return value
  ExprP index_base, index;   // kIndexAssign
  std::vector<StmtP> body;   // kIf (then) / kWhile / kFor / kDoWhile / kBlock
  std::vector<StmtP> else_body;
  StmtP for_init, for_step;  // kFor (either may be null)
};

// --- Top level -------------------------------------------------------------

struct FunDecl {
  std::string name;
  MojTy ret = MojTy::kVoid;
  std::vector<MojTy> param_tys;
  std::vector<std::string> param_names;
  std::vector<StmtP> body;
  bool is_extern = false;
  int line = 0;
};

struct Unit {
  std::string name;
  std::vector<FunDecl> functions;
};

}  // namespace mojave::frontend
