// MojC recursive-descent parser.
#pragma once

#include <string>

#include "frontend/ast.hpp"

namespace mojave::frontend {

/// Parse a translation unit; throws ParseError with location info.
[[nodiscard]] Unit parse(const std::string& unit_name,
                         const std::string& source);

}  // namespace mojave::frontend
