#include "risc/machine.hpp"

#include <chrono>
#include <iostream>

#include "vm/eval.hpp"

namespace mojave::risc {

using runtime::PtrValue;
using runtime::Tag;
using runtime::Value;

Machine::Machine(runtime::Heap& heap, spec::SpeculationManager& spec,
                 RProgram program, bool intern_strings)
    : heap_(heap), spec_(spec), program_(std::move(program)), out_(&std::cout) {
  heap_.add_root_provider(this);
  // Populate the function table in program order (heterogeneous migration
  // relies on the orders matching across backends).
  heap_.funs().clear();
  for (const RFunction& f : program_.functions) {
    heap_.funs().insert(runtime::FunctionEntry{f.name, f.arity, f.id});
  }
  if (intern_strings) {
    for (const std::string& s : program_.strings) {
      string_blocks_.push_back(heap_.alloc_string(s));
    }
  }
  install_default_externals(*this);
}

Machine::~Machine() { heap_.remove_root_provider(this); }

void Machine::register_external(const std::string& name, RExternalFn fn) {
  externals_[name] = std::move(fn);
}

void Machine::enumerate_roots(runtime::RootVisitor& visitor) {
  for (const Value& v : regs_) visitor.value_root(v);
  for (const Value& v : spill_) visitor.value_root(v);
  for (const Value& v : pending_args_) visitor.value_root(v);
  for (BlockIndex idx : string_blocks_) visitor.index_root(idx);
}

FunIndex Machine::resolve_callee(const Value& v) const {
  const FunIndex idx = v.as_fun();
  (void)heap_.funs().get(idx);
  if (idx >= program_.functions.size()) {
    throw SafetyError("call to unknown function " + std::to_string(idx));
  }
  return idx;
}

void Machine::validate_call(const RFunction& fn,
                            std::span<const Value> args) const {
  if (args.size() != fn.arity) {
    throw SafetyError("call of " + fn.name + " with " +
                      std::to_string(args.size()) + " args, expected " +
                      std::to_string(fn.arity));
  }
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i].tag() != fn.param_tags[i]) {
      throw SafetyError("argument " + std::to_string(i) + " of " + fn.name +
                        " has tag " + runtime::tag_name(args[i].tag()));
    }
  }
}

void Machine::collect_args(const RInsn& insn) {
  pending_args_.clear();
  for (std::uint32_t slot : insn.arg_slots) {
    if (slot >= spill_.size()) throw SafetyError("argument spill slot oob");
    pending_args_.push_back(spill_[slot]);
  }
}

RRunResult Machine::run() { return run_from(program_.entry, {}); }

RRunResult Machine::run_from(FunIndex fun, std::vector<Value> args) {
  pending_fun_ = fun;
  pending_args_ = std::move(args);

  while (true) {
    if (pending_fun_ >= program_.functions.size()) {
      throw SafetyError("transfer to unknown function");
    }
    const RFunction& f = program_.functions[pending_fun_];
    validate_call(f, pending_args_);
    ++stats_.calls;

    spill_.assign(f.spill_slots, Value::unit());
    for (std::size_t i = 0; i < pending_args_.size(); ++i) {
      spill_[i] = pending_args_[i];
    }
    pending_args_.clear();

    std::size_t pc = 0;
    bool transfer = false;
    while (!transfer) {
      if (pc >= f.code.size()) {
        throw SafetyError("pc fell off the end of " + f.name);
      }
      const RInsn& I = f.code[pc];
      ++stats_.instructions;
      if (max_instructions_ != 0 && stats_.instructions > max_instructions_) {
        throw Error("instruction budget exhausted");
      }
      switch (I.op) {
        case ROp::kNop:
          break;
        case ROp::kLi:
          regs_[I.d] = Value::from_int(I.imm);
          break;
        case ROp::kLif:
          regs_[I.d] = Value::from_float(I.fimm);
          break;
        case ROp::kLus:
          regs_[I.d] = Value::unit();
          break;
        case ROp::kLstr:
          if (I.aux >= string_blocks_.size()) {
            throw SafetyError("string id out of range");
          }
          regs_[I.d] = Value::from_ptr(string_blocks_[I.aux], 0);
          break;
        case ROp::kLfun:
          (void)heap_.funs().get(I.aux);
          regs_[I.d] = Value::from_fun(I.aux);
          break;
        case ROp::kLnull:
          regs_[I.d] = Value::from_ptr(kNullIndex, 0);
          break;
        case ROp::kMove:
          regs_[I.d] = regs_[I.s1];
          break;
        case ROp::kLoadS:
          if (I.aux >= spill_.size()) throw SafetyError("spill load oob");
          regs_[I.d] = spill_[I.aux];
          ++stats_.spill_loads;
          break;
        case ROp::kStoreS:
          if (I.aux >= spill_.size()) throw SafetyError("spill store oob");
          spill_[I.aux] = regs_[I.s1];
          ++stats_.spill_stores;
          break;
        case ROp::kUnop:
          regs_[I.d] =
              vm::eval_unop(static_cast<fir::Unop>(I.sub), regs_[I.s1]);
          break;
        case ROp::kBinop:
          regs_[I.d] = vm::eval_binop(static_cast<fir::Binop>(I.sub),
                                      regs_[I.s1], regs_[I.s2]);
          break;
        case ROp::kAlloc: {
          const std::int64_t n = regs_[I.s1].as_int();
          if (n < 0 || n > static_cast<std::int64_t>(UINT32_MAX)) {
            throw SafetyError("alloc size out of range");
          }
          regs_[I.d] = Value::from_ptr(
              heap_.alloc_tagged(static_cast<std::uint32_t>(n), regs_[I.s2]),
              0);
          break;
        }
        case ROp::kAllocRaw: {
          const std::int64_t n = regs_[I.s1].as_int();
          if (n < 0 || n > static_cast<std::int64_t>(UINT32_MAX)) {
            throw SafetyError("alloc_raw size out of range");
          }
          regs_[I.d] = Value::from_ptr(
              heap_.alloc_raw(static_cast<std::uint32_t>(n)), 0);
          break;
        }
        case ROp::kHeapRead: {
          const PtrValue p = regs_[I.s1].as_ptr();
          const std::uint32_t off =
              vm::effective_offset(p, regs_[I.s2].as_int());
          const Value v = heap_.read_slot(p.index, off);
          if (v.tag() != static_cast<Tag>(I.sub)) {
            throw SafetyError("read produced unexpected tag");
          }
          regs_[I.d] = v;
          break;
        }
        case ROp::kHeapWrite: {
          const PtrValue p = regs_[I.s1].as_ptr();
          heap_.write_slot(p.index,
                           vm::effective_offset(p, regs_[I.s2].as_int()),
                           regs_[I.s3]);
          break;
        }
        case ROp::kRawLoad: {
          const PtrValue p = regs_[I.s1].as_ptr();
          regs_[I.d] = Value::from_int(heap_.raw_load(
              p.index, vm::effective_offset(p, regs_[I.s2].as_int()), I.sub));
          break;
        }
        case ROp::kRawStore: {
          const PtrValue p = regs_[I.s1].as_ptr();
          heap_.raw_store(p.index,
                          vm::effective_offset(p, regs_[I.s2].as_int()),
                          I.sub, regs_[I.s3].as_int());
          break;
        }
        case ROp::kRawLoadF: {
          const PtrValue p = regs_[I.s1].as_ptr();
          regs_[I.d] = Value::from_float(heap_.raw_load_f64(
              p.index, vm::effective_offset(p, regs_[I.s2].as_int())));
          break;
        }
        case ROp::kRawStoreF: {
          const PtrValue p = regs_[I.s1].as_ptr();
          heap_.raw_store_f64(p.index,
                              vm::effective_offset(p, regs_[I.s2].as_int()),
                              regs_[I.s3].as_float());
          break;
        }
        case ROp::kLen:
          regs_[I.d] = Value::from_int(static_cast<std::int64_t>(
              heap_.deref(regs_[I.s1].as_ptr().index)->h.count));
          break;
        case ROp::kPtrAdd: {
          const PtrValue p = regs_[I.s1].as_ptr();
          regs_[I.d] = Value::from_ptr(
              p.index, vm::effective_offset(p, regs_[I.s2].as_int()));
          break;
        }
        case ROp::kBeqz:
          if (regs_[I.s1].as_int() == 0) {
            pc = I.aux;
            continue;
          }
          break;
        case ROp::kJump:
          pc = I.aux;
          continue;
        case ROp::kCall:
          collect_args(I);
          pending_fun_ = resolve_callee(regs_[I.s1]);
          transfer = true;
          break;
        case ROp::kSpeculate: {
          const FunIndex callee = resolve_callee(regs_[I.s1]);
          collect_args(I);
          spec::SavedContinuation cont;
          cont.fun = callee;
          cont.args = pending_args_;
          const SpecLevel level = spec_.speculate(cont);
          pending_args_.insert(
              pending_args_.begin(),
              Value::from_int(static_cast<std::int64_t>(level)));
          pending_fun_ = callee;
          transfer = true;
          break;
        }
        case ROp::kCommit: {
          const std::int64_t level = regs_[I.s1].as_int();
          if (level <= 0) throw SpecError("commit of non-positive level");
          spec_.commit(static_cast<SpecLevel>(level));
          collect_args(I);
          pending_fun_ = resolve_callee(regs_[I.s2]);
          transfer = true;
          break;
        }
        case ROp::kRollback:
        case ROp::kAbort: {
          const std::int64_t level = regs_[I.s1].as_int();
          if (level <= 0) throw SpecError("rollback of non-positive level");
          const auto outcome =
              spec_.rollback(static_cast<SpecLevel>(level),
                             regs_[I.s2].as_int(), I.op == ROp::kRollback);
          pending_fun_ = outcome.continuation.fun;
          pending_args_.clear();
          pending_args_.push_back(Value::from_int(outcome.continuation.c));
          for (const Value& v : outcome.continuation.args) {
            pending_args_.push_back(v);
          }
          transfer = true;
          break;
        }
        case ROp::kMigrate: {
          const std::string target = heap_.read_string(regs_[I.s1].as_ptr());
          const FunIndex callee = resolve_callee(regs_[I.s2]);
          collect_args(I);
          if (!migrate_fn_) {
            throw MigrateError("migrate instruction with no handler (RISC)");
          }
          if (migrate_fn_(*this, I.aux, target, callee, pending_args_)) {
            return RRunResult{RRunResult::Kind::kMigratedAway, 0};
          }
          pending_fun_ = callee;
          transfer = true;
          break;
        }
        case ROp::kExt: {
          if (I.aux >= program_.ext_names.size()) {
            throw SafetyError("external id out of range");
          }
          const std::string& name = program_.ext_names[I.aux];
          const auto it = externals_.find(name);
          if (it == externals_.end()) {
            throw SafetyError("call of unregistered external: " + name);
          }
          std::vector<Value> ext_args;
          for (std::uint32_t slot : I.arg_slots) {
            if (slot >= spill_.size()) throw SafetyError("ext arg slot oob");
            ext_args.push_back(spill_[slot]);
          }
          const Value result = it->second(*this, ext_args);
          if (result.tag() != static_cast<Tag>(I.sub)) {
            throw SafetyError("external " + name + " returned wrong tag");
          }
          regs_[I.d] = result;
          break;
        }
        case ROp::kHalt:
          return RRunResult{RRunResult::Kind::kHalted, regs_[I.s1].as_int()};
      }
      ++pc;
    }
  }
}

void install_default_externals(Machine& m) {
  m.register_external("print_string",
                      [](Machine& mm, std::span<const Value> args) -> Value {
                        if (args.size() != 1) {
                          throw SafetyError("print_string arity");
                        }
                        mm.out() << mm.heap().read_string(args[0].as_ptr());
                        return Value::unit();
                      });
  m.register_external("print_int",
                      [](Machine& mm, std::span<const Value> args) -> Value {
                        if (args.size() != 1) {
                          throw SafetyError("print_int arity");
                        }
                        mm.out() << args[0].as_int();
                        return Value::unit();
                      });
  m.register_external("print_float",
                      [](Machine& mm, std::span<const Value> args) -> Value {
                        if (args.size() != 1) {
                          throw SafetyError("print_float arity");
                        }
                        mm.out() << args[0].as_float();
                        return Value::unit();
                      });
  m.register_external("clock_us",
                      [](Machine&, std::span<const Value>) -> Value {
                        const auto now =
                            std::chrono::duration_cast<std::chrono::microseconds>(
                                std::chrono::steady_clock::now()
                                    .time_since_epoch())
                                .count();
                        return Value::from_int(
                            static_cast<std::int64_t>(now));
                      });
  m.register_external("spec_level",
                      [](Machine& mm, std::span<const Value>) -> Value {
                        return Value::from_int(static_cast<std::int64_t>(
                            mm.spec().current_level()));
                      });
  m.register_external("heap_live_bytes",
                      [](Machine& mm, std::span<const Value>) -> Value {
                        return Value::from_int(static_cast<std::int64_t>(
                            mm.heap().live_bytes()));
                      });
}

}  // namespace mojave::risc
