// The RISC machine simulator: Mojave's second execution engine.
//
// Simulates a 32-register load/store machine executing risc::RProgram
// code against the same managed runtime (heap, pointer table, speculation
// manager) as the bytecode interpreter. Because process state lives
// entirely in the heap plus the (fun, args) continuation, a process can be
// packed by one backend and resumed by the other — heterogeneous
// migration, the reason the paper ships FIR instead of native code.
#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "risc/isa.hpp"
#include "runtime/heap.hpp"
#include "spec/speculation.hpp"

namespace mojave::risc {

class Machine;

using RExternalFn =
    std::function<runtime::Value(Machine&, std::span<const runtime::Value>)>;

/// Migration callback; mirrors vm::MigrationHook for this backend.
/// Return true to stop executing locally (the process moved), false to
/// continue at the resume continuation.
using RMigrateFn = std::function<bool(
    Machine&, MigrateLabel, const std::string& target, FunIndex resume_fun,
    std::span<const runtime::Value> resume_args)>;

struct RRunResult {
  enum class Kind { kHalted, kMigratedAway } kind = Kind::kHalted;
  std::int64_t exit_code = 0;
};

struct RStats {
  std::uint64_t instructions = 0;
  std::uint64_t calls = 0;
  std::uint64_t spill_loads = 0;
  std::uint64_t spill_stores = 0;
};

class Machine final : public runtime::RootProvider {
 public:
  Machine(runtime::Heap& heap, spec::SpeculationManager& spec,
          RProgram program, bool intern_strings = true);
  ~Machine() override;

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  void register_external(const std::string& name, RExternalFn fn);
  void set_migrate_handler(RMigrateFn fn) { migrate_fn_ = std::move(fn); }
  void set_output(std::ostream* out) { out_ = out; }
  [[nodiscard]] std::ostream& out() const { return *out_; }
  void set_max_instructions(std::uint64_t n) { max_instructions_ = n; }

  RRunResult run();
  RRunResult run_from(FunIndex fun, std::vector<runtime::Value> args);

  [[nodiscard]] runtime::Heap& heap() { return heap_; }
  [[nodiscard]] spec::SpeculationManager& spec() { return spec_; }
  [[nodiscard]] const RProgram& program() const { return program_; }
  [[nodiscard]] const RStats& stats() const { return stats_; }

  [[nodiscard]] const std::vector<BlockIndex>& string_blocks() const {
    return string_blocks_;
  }
  void set_string_blocks(std::vector<BlockIndex> blocks) {
    string_blocks_ = std::move(blocks);
  }

  void enumerate_roots(runtime::RootVisitor& visitor) override;

 private:
  void validate_call(const RFunction& fn,
                     std::span<const runtime::Value> args) const;
  [[nodiscard]] FunIndex resolve_callee(const runtime::Value& v) const;
  void collect_args(const RInsn& insn);

  runtime::Heap& heap_;
  spec::SpeculationManager& spec_;
  RProgram program_;
  std::map<std::string, RExternalFn> externals_;
  RMigrateFn migrate_fn_;
  std::ostream* out_;

  runtime::Value regs_[kNumRegs];
  std::vector<runtime::Value> spill_;
  FunIndex pending_fun_ = 0;
  std::vector<runtime::Value> pending_args_;
  std::vector<BlockIndex> string_blocks_;
  RStats stats_;
  std::uint64_t max_instructions_ = 0;
};

/// Standard host externals for this backend (print, clocks, spec_level).
void install_default_externals(Machine& m);

}  // namespace mojave::risc
