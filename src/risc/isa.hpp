// The RISC backend's instruction set.
//
// The paper's Mojave architecture "is designed to support multiple
// back-ends ... An additional runtime environment is available that
// simulates RISC architectures" (Section 3). This backend targets a
// load/store register machine: a fixed file of 32 general registers,
// three-address ALU operations that work only on registers, and explicit
// spill loads/stores against a per-activation spill area where every FIR
// variable lives. Heap accesses are runtime-service instructions (the
// pointer-table indirection is a runtime service on every Mojave backend,
// "compatible with a hardware implementation").
//
// Because process state is architecture-independent (heap + FIR), an image
// packed by the bytecode backend resumes on this one and vice versa — the
// heterogeneous-cluster property migration was designed for.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "runtime/value.hpp"
#include "support/common.hpp"

namespace mojave::risc {

/// Number of general-purpose registers in the simulated machine.
inline constexpr std::uint8_t kNumRegs = 32;

enum class ROp : std::uint8_t {
  kNop = 0,
  kLi,        // r[d] = int imm
  kLif,       // r[d] = float fimm
  kLus,       // r[d] = unit
  kLstr,      // r[d] = ptr to interned string #aux
  kLfun,      // r[d] = fun #aux
  kLnull,     // r[d] = null pointer
  kMove,      // r[d] = r[s1]
  kLoadS,     // r[d] = spill[aux]
  kStoreS,    // spill[aux] = r[s1]
  kUnop,      // r[d] = sub(r[s1])
  kBinop,     // r[d] = r[s1] sub r[s2]
  kAlloc,     // r[d] = alloc(r[s1] slots, init r[s2])
  kAllocRaw,  // r[d] = alloc_raw(r[s1] bytes)
  kHeapRead,  // r[d] = read(r[s1], r[s2]); tag check vs sub
  kHeapWrite, // write(r[s1], r[s2]) := r[s3]
  kRawLoad,   // r[d] = raw_load{sub}(r[s1], r[s2])
  kRawStore,  // raw_store{sub}(r[s1], r[s2]) := r[s3]
  kRawLoadF,
  kRawStoreF,
  kLen,       // r[d] = block size of r[s1]
  kPtrAdd,    // r[d] = (r[s1].base, r[s1].off + r[s2])
  kBeqz,      // if r[s1] == 0: pc = aux
  kJump,      // pc = aux
  kCall,      // tail-transfer to function r[s1]; args = arg-spill list
  kSpeculate, // enter level; call r[s1](c, args)
  kCommit,    // commit level r[s1]; call r[s2](args)
  kRollback,  // rollback [r[s1], r[s2]] (retry)
  kAbort,     // rollback without re-entry
  kMigrate,   // migrate [label=aux, target r[s1]] r[s2](args)
  kExt,       // r[d] = external #aux(args); tag check vs sub
  kHalt,      // halt r[s1]
};

struct RInsn {
  ROp op = ROp::kNop;
  std::uint8_t sub = 0;  ///< unop/binop/width/tag
  std::uint8_t d = 0;
  std::uint8_t s1 = 0;
  std::uint8_t s2 = 0;
  std::uint8_t s3 = 0;
  std::uint32_t aux = 0;  ///< spill slot / jump target / id / label
  std::int64_t imm = 0;
  double fimm = 0.0;
  std::vector<std::uint32_t> arg_slots;  ///< spill slots holding call args
};

struct RFunction {
  std::string name;
  std::uint32_t id = 0;
  std::uint32_t arity = 0;
  std::uint32_t spill_slots = 0;  ///< one per FIR variable
  std::vector<runtime::Tag> param_tags;
  std::vector<RInsn> code;
};

struct RProgram {
  std::string name;
  std::uint32_t entry = 0;
  std::vector<RFunction> functions;
  std::vector<std::string> strings;
  std::vector<std::string> ext_names;
  std::map<MigrateLabel, std::uint32_t> migrate_labels;
};

}  // namespace mojave::risc
