#include "risc/disasm.hpp"

#include <sstream>

namespace mojave::vm {

namespace {

const char* op_name(Op op) {
  switch (op) {
    case Op::kLoadUnit: return "ldu";
    case Op::kLoadInt: return "ldi";
    case Op::kLoadFloat: return "ldf";
    case Op::kLoadString: return "lds";
    case Op::kLoadFun: return "ldfn";
    case Op::kLoadNull: return "ldnull";
    case Op::kMove: return "mov";
    case Op::kUnop: return "unop";
    case Op::kBinop: return "binop";
    case Op::kAllocTagged: return "alloc";
    case Op::kAllocRaw: return "allocraw";
    case Op::kRead: return "read";
    case Op::kWrite: return "write";
    case Op::kRawLoad: return "rawld";
    case Op::kRawStore: return "rawst";
    case Op::kRawLoadF: return "rawldf";
    case Op::kRawStoreF: return "rawstf";
    case Op::kLen: return "len";
    case Op::kPtrAdd: return "padd";
    case Op::kJump: return "jmp";
    case Op::kJumpIfZero: return "jz";
    case Op::kTailCall: return "call";
    case Op::kSpeculate: return "spec";
    case Op::kCommit: return "commit";
    case Op::kRollback: return "rollback";
    case Op::kAbort: return "abort";
    case Op::kMigrate: return "migrate";
    case Op::kExternal: return "ext";
    case Op::kHalt: return "halt";
  }
  return "?";
}

void print_insn(std::ostringstream& out, std::size_t pc, const Insn& insn) {
  out << "    " << pc << ":\t" << op_name(insn.op) << "\td=" << insn.dst
      << " r1=" << insn.r1 << " r2=" << insn.r2 << " r3=" << insn.r3;
  if (insn.sub != 0) out << " sub=" << static_cast<int>(insn.sub);
  if (insn.aux != 0) out << " aux=" << insn.aux;
  if (insn.imm != 0) out << " imm=" << insn.imm;
  if (insn.fimm != 0.0) out << " fimm=" << insn.fimm;
  if (!insn.args.empty()) {
    out << " args=[";
    for (std::size_t i = 0; i < insn.args.size(); ++i) {
      if (i) out << ",";
      out << insn.args[i];
    }
    out << "]";
  }
  out << "\n";
}

}  // namespace

std::string disassemble(const CompiledFunction& fn) {
  std::ostringstream out;
  out << "  fun @" << fn.fir_id << " " << fn.name << " (arity " << fn.arity
      << ", regs " << fn.num_regs << ")\n";
  for (std::size_t pc = 0; pc < fn.code.size(); ++pc) {
    print_insn(out, pc, fn.code[pc]);
  }
  return out.str();
}

std::string disassemble(const CompiledProgram& program) {
  std::ostringstream out;
  out << "bytecode program " << program.name << " (entry @" << program.entry
      << ", " << program.functions.size() << " functions)\n";
  for (const CompiledFunction& fn : program.functions) {
    out << disassemble(fn);
  }
  return out.str();
}

}  // namespace mojave::vm

namespace mojave::risc {

namespace {

const char* rop_name(ROp op) {
  switch (op) {
    case ROp::kNop: return "nop";
    case ROp::kLi: return "li";
    case ROp::kLif: return "lif";
    case ROp::kLus: return "lus";
    case ROp::kLstr: return "lstr";
    case ROp::kLfun: return "lfun";
    case ROp::kLnull: return "lnull";
    case ROp::kMove: return "mov";
    case ROp::kLoadS: return "lw";
    case ROp::kStoreS: return "sw";
    case ROp::kUnop: return "unop";
    case ROp::kBinop: return "binop";
    case ROp::kAlloc: return "alloc";
    case ROp::kAllocRaw: return "allocraw";
    case ROp::kHeapRead: return "hread";
    case ROp::kHeapWrite: return "hwrite";
    case ROp::kRawLoad: return "rawld";
    case ROp::kRawStore: return "rawst";
    case ROp::kRawLoadF: return "rawldf";
    case ROp::kRawStoreF: return "rawstf";
    case ROp::kLen: return "len";
    case ROp::kPtrAdd: return "padd";
    case ROp::kBeqz: return "beqz";
    case ROp::kJump: return "j";
    case ROp::kCall: return "call";
    case ROp::kSpeculate: return "spec";
    case ROp::kCommit: return "commit";
    case ROp::kRollback: return "rollback";
    case ROp::kAbort: return "abort";
    case ROp::kMigrate: return "migrate";
    case ROp::kExt: return "ext";
    case ROp::kHalt: return "halt";
  }
  return "?";
}

}  // namespace

std::string disassemble(const RFunction& fn) {
  std::ostringstream out;
  out << "  fun @" << fn.id << " " << fn.name << " (arity " << fn.arity
      << ", spill " << fn.spill_slots << ")\n";
  for (std::size_t pc = 0; pc < fn.code.size(); ++pc) {
    const RInsn& insn = fn.code[pc];
    out << "    " << pc << ":\t" << rop_name(insn.op) << "\tr"
        << static_cast<int>(insn.d) << ", r" << static_cast<int>(insn.s1)
        << ", r" << static_cast<int>(insn.s2) << ", r"
        << static_cast<int>(insn.s3);
    if (insn.sub != 0) out << " sub=" << static_cast<int>(insn.sub);
    if (insn.aux != 0) out << " aux=" << insn.aux;
    if (insn.imm != 0) out << " imm=" << insn.imm;
    if (insn.fimm != 0.0) out << " fimm=" << insn.fimm;
    if (!insn.arg_slots.empty()) {
      out << " slots=[";
      for (std::size_t i = 0; i < insn.arg_slots.size(); ++i) {
        if (i) out << ",";
        out << insn.arg_slots[i];
      }
      out << "]";
    }
    out << "\n";
  }
  return out.str();
}

std::string disassemble(const RProgram& program) {
  std::ostringstream out;
  out << "risc program " << program.name << " (entry @" << program.entry
      << ", " << program.functions.size() << " functions)\n";
  for (const RFunction& fn : program.functions) {
    out << disassemble(fn);
  }
  return out.str();
}

}  // namespace mojave::risc
