#include "risc/lower.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "vm/lowering.hpp"  // tag_of

namespace mojave::risc {

namespace {

// Scratch register conventions.
constexpr std::uint8_t kRa = 1;  // first operand
constexpr std::uint8_t kRb = 2;  // second operand
constexpr std::uint8_t kRc = 3;  // third operand
constexpr std::uint8_t kRd = 4;  // result

class FnLowering {
 public:
  FnLowering(const fir::Function& fn, RProgram& out) : fn_(fn), out_(out) {}

  RFunction run() {
    RFunction rf;
    rf.id = fn_.id;
    rf.name = fn_.name;
    rf.arity = fn_.arity();
    for (const fir::Type& ty : fn_.param_tys) {
      rf.param_tags.push_back(vm::tag_of(ty));
    }
    code_ = &rf.code;
    lower_expr(fn_.body.get());
    rf.spill_slots = fn_.num_vars + scratch_peak_;
    return rf;
  }

 private:
  RInsn& emit(ROp op) {
    code_->emplace_back();
    code_->back().op = op;
    return code_->back();
  }

  std::uint32_t scratch_slot() {
    const std::uint32_t slot = fn_.num_vars + scratch_cursor_++;
    scratch_peak_ = std::max(scratch_peak_, scratch_cursor_);
    return slot;
  }

  /// Load an atom into register `r`.
  void load_atom(std::uint8_t r, const fir::Atom& a) {
    using K = fir::Atom::Kind;
    switch (a.kind) {
      case K::kVar: {
        RInsn& i = emit(ROp::kLoadS);
        i.d = r;
        i.aux = a.var;
        return;
      }
      case K::kInt: {
        RInsn& i = emit(ROp::kLi);
        i.d = r;
        i.imm = a.i;
        return;
      }
      case K::kFloat: {
        RInsn& i = emit(ROp::kLif);
        i.d = r;
        i.fimm = a.f;
        return;
      }
      case K::kUnit:
        emit(ROp::kLus).d = r;
        return;
      case K::kFunRef: {
        RInsn& i = emit(ROp::kLfun);
        i.d = r;
        i.aux = a.fun;
        return;
      }
      case K::kString: {
        RInsn& i = emit(ROp::kLstr);
        i.d = r;
        i.aux = a.string_id;
        return;
      }
      case K::kNull:
        emit(ROp::kLnull).d = r;
        return;
    }
    throw TypeError("malformed atom in RISC lowering");
  }

  /// Store register `r` into the spill slot of variable `v`.
  void store_var(fir::VarId v, std::uint8_t r) {
    RInsn& i = emit(ROp::kStoreS);
    i.s1 = r;
    i.aux = v;
  }

  /// The argument-passing convention: every argument must be in a spill
  /// slot. Variables already are; constants get a fresh slot.
  std::vector<std::uint32_t> arg_slots(const std::vector<fir::Atom>& args) {
    std::vector<std::uint32_t> slots;
    slots.reserve(args.size());
    for (const fir::Atom& a : args) {
      if (a.kind == fir::Atom::Kind::kVar) {
        slots.push_back(a.var);
      } else {
        const std::uint32_t slot = scratch_slot();
        load_atom(kRa, a);
        RInsn& st = emit(ROp::kStoreS);
        st.s1 = kRa;
        st.aux = slot;
        slots.push_back(slot);
      }
    }
    return slots;
  }

  void lower_expr(const fir::Expr* e) {
    using EK = fir::ExprKind;
    for (; e != nullptr; e = e->next.get()) {
      scratch_cursor_ = 0;
      switch (e->kind) {
        case EK::kLetAtom:
          load_atom(kRd, e->a);
          store_var(e->bind, kRd);
          break;
        case EK::kLetUnop: {
          load_atom(kRa, e->a);
          RInsn& i = emit(ROp::kUnop);
          i.sub = static_cast<std::uint8_t>(e->unop);
          i.d = kRd;
          i.s1 = kRa;
          store_var(e->bind, kRd);
          break;
        }
        case EK::kLetBinop: {
          load_atom(kRa, e->a);
          load_atom(kRb, e->b);
          RInsn& i = emit(ROp::kBinop);
          i.sub = static_cast<std::uint8_t>(e->binop);
          i.d = kRd;
          i.s1 = kRa;
          i.s2 = kRb;
          store_var(e->bind, kRd);
          break;
        }
        case EK::kLetAllocTagged: {
          load_atom(kRa, e->a);
          load_atom(kRb, e->b);
          RInsn& i = emit(ROp::kAlloc);
          i.d = kRd;
          i.s1 = kRa;
          i.s2 = kRb;
          store_var(e->bind, kRd);
          break;
        }
        case EK::kLetAllocRaw: {
          load_atom(kRa, e->a);
          RInsn& i = emit(ROp::kAllocRaw);
          i.d = kRd;
          i.s1 = kRa;
          store_var(e->bind, kRd);
          break;
        }
        case EK::kLetRead: {
          load_atom(kRa, e->a);
          load_atom(kRb, e->b);
          RInsn& i = emit(ROp::kHeapRead);
          i.sub = static_cast<std::uint8_t>(vm::tag_of(e->bind_ty));
          i.d = kRd;
          i.s1 = kRa;
          i.s2 = kRb;
          store_var(e->bind, kRd);
          break;
        }
        case EK::kWrite: {
          load_atom(kRa, e->a);
          load_atom(kRb, e->b);
          load_atom(kRc, e->c_atom);
          RInsn& i = emit(ROp::kHeapWrite);
          i.s1 = kRa;
          i.s2 = kRb;
          i.s3 = kRc;
          break;
        }
        case EK::kLetRawLoad:
        case EK::kLetRawLoadF: {
          load_atom(kRa, e->a);
          load_atom(kRb, e->b);
          RInsn& i = emit(e->kind == EK::kLetRawLoad ? ROp::kRawLoad
                                                     : ROp::kRawLoadF);
          i.sub = static_cast<std::uint8_t>(e->width);
          i.d = kRd;
          i.s1 = kRa;
          i.s2 = kRb;
          store_var(e->bind, kRd);
          break;
        }
        case EK::kRawStore:
        case EK::kRawStoreF: {
          load_atom(kRa, e->a);
          load_atom(kRb, e->b);
          load_atom(kRc, e->c_atom);
          RInsn& i = emit(e->kind == EK::kRawStore ? ROp::kRawStore
                                                   : ROp::kRawStoreF);
          i.sub = static_cast<std::uint8_t>(e->width);
          i.s1 = kRa;
          i.s2 = kRb;
          i.s3 = kRc;
          break;
        }
        case EK::kLetLen: {
          load_atom(kRa, e->a);
          RInsn& i = emit(ROp::kLen);
          i.d = kRd;
          i.s1 = kRa;
          store_var(e->bind, kRd);
          break;
        }
        case EK::kLetPtrAdd: {
          load_atom(kRa, e->a);
          load_atom(kRb, e->b);
          RInsn& i = emit(ROp::kPtrAdd);
          i.d = kRd;
          i.s1 = kRa;
          i.s2 = kRb;
          store_var(e->bind, kRd);
          break;
        }
        case EK::kIf: {
          load_atom(kRa, e->a);
          const std::size_t beqz_at = code_->size();
          emit(ROp::kBeqz).s1 = kRa;
          lower_expr(e->next.get());
          (*code_)[beqz_at].aux = static_cast<std::uint32_t>(code_->size());
          lower_expr(e->els.get());
          return;
        }
        case EK::kTailCall: {
          auto slots = arg_slots(e->args);
          load_atom(kRa, e->fun);
          RInsn& i = emit(ROp::kCall);
          i.s1 = kRa;
          i.arg_slots = std::move(slots);
          return;
        }
        case EK::kSpeculate: {
          auto slots = arg_slots(e->args);
          load_atom(kRa, e->fun);
          RInsn& i = emit(ROp::kSpeculate);
          i.s1 = kRa;
          i.arg_slots = std::move(slots);
          return;
        }
        case EK::kCommit: {
          auto slots = arg_slots(e->args);
          load_atom(kRa, e->a);
          load_atom(kRb, e->fun);
          RInsn& i = emit(ROp::kCommit);
          i.s1 = kRa;
          i.s2 = kRb;
          i.arg_slots = std::move(slots);
          return;
        }
        case EK::kRollback:
        case EK::kAbort: {
          load_atom(kRa, e->a);
          load_atom(kRb, e->b);
          RInsn& i = emit(e->kind == EK::kRollback ? ROp::kRollback
                                                   : ROp::kAbort);
          i.s1 = kRa;
          i.s2 = kRb;
          return;
        }
        case EK::kMigrate: {
          auto slots = arg_slots(e->args);
          load_atom(kRa, e->a);
          load_atom(kRb, e->fun);
          RInsn& i = emit(ROp::kMigrate);
          i.aux = e->label;
          i.s1 = kRa;
          i.s2 = kRb;
          i.arg_slots = std::move(slots);
          out_.migrate_labels[e->label] =
              e->fun.kind == fir::Atom::Kind::kFunRef ? e->fun.fun
                                                      : UINT32_MAX;
          return;
        }
        case EK::kLetExternal: {
          auto slots = arg_slots(e->args);
          RInsn& i = emit(ROp::kExt);
          i.d = kRd;
          i.sub = static_cast<std::uint8_t>(vm::tag_of(e->bind_ty));
          i.aux = ext_id(e->ext_name);
          i.arg_slots = std::move(slots);
          store_var(e->bind, kRd);
          break;
        }
        case EK::kHalt:
          load_atom(kRa, e->a);
          emit(ROp::kHalt).s1 = kRa;
          return;
      }
    }
  }

  std::uint32_t ext_id(const std::string& name) {
    for (std::uint32_t i = 0; i < out_.ext_names.size(); ++i) {
      if (out_.ext_names[i] == name) return i;
    }
    out_.ext_names.push_back(name);
    return static_cast<std::uint32_t>(out_.ext_names.size() - 1);
  }

  const fir::Function& fn_;
  RProgram& out_;
  std::vector<RInsn>* code_ = nullptr;
  std::uint32_t scratch_cursor_ = 0;
  std::uint32_t scratch_peak_ = 0;
};

}  // namespace

RProgram lower(const fir::Program& program) {
  RProgram out;
  out.name = program.name;
  out.entry = program.entry;
  out.strings = program.strings;
  out.functions.reserve(program.functions.size());
  for (const fir::Function& fn : program.functions) {
    out.functions.push_back(FnLowering(fn, out).run());
  }
  return out;
}

}  // namespace mojave::risc
