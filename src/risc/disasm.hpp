// Disassemblers for both object-code formats.
//
// `mojc dump` and failing tests use these to show what the code
// generators actually emitted; the output is stable enough for golden
// assertions.
#pragma once

#include <string>

#include "risc/isa.hpp"
#include "vm/bytecode.hpp"

namespace mojave::vm {

[[nodiscard]] std::string disassemble(const CompiledProgram& program);
[[nodiscard]] std::string disassemble(const CompiledFunction& fn);

}  // namespace mojave::vm

namespace mojave::risc {

[[nodiscard]] std::string disassemble(const RProgram& program);
[[nodiscard]] std::string disassemble(const RFunction& fn);

}  // namespace mojave::risc
