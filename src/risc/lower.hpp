// FIR → RISC lowering: the second code generator.
//
// Every FIR variable is assigned a spill slot; ALU work happens in scratch
// registers r1..r4 with explicit load/store traffic, the way a RISC code
// generator without a register allocator would emit it. Constants that
// appear as call arguments are materialized into fresh spill slots because
// the call convention passes arguments through the spill area.
#pragma once

#include "fir/ir.hpp"
#include "risc/isa.hpp"

namespace mojave::risc {

[[nodiscard]] RProgram lower(const fir::Program& program);

}  // namespace mojave::risc
