// The paper's evaluation application (Figure 2): a distributed 2D heat
// stencil on a simulated cluster, with the speculative checkpointing main
// loop, an injected node failure, automatic resurrection from the shared
// checkpoint store, and verification that the answer is identical to the
// failure-free sequential reference.
//
//   $ ./examples/heat_grid
#include <chrono>
#include <cmath>
#include <iostream>
#include <thread>

#include "gridapp/heat.hpp"
#include "support/stopwatch.hpp"

int main() {
  using namespace mojave;

  gridapp::HeatConfig cfg;
  cfg.nodes = 4;
  cfg.rows = 32;
  cfg.cols = 24;
  cfg.steps = 120;
  cfg.checkpoint_interval = 20;

  std::cout << "2D heat diffusion, " << cfg.rows << "x" << cfg.cols
            << " grid, " << cfg.steps << " timesteps, " << cfg.nodes
            << " simulated nodes, checkpoint every "
            << cfg.checkpoint_interval << " steps\n";
  std::cout << "the per-node program is MojC compiled through the Mojave "
               "pipeline;\nits main loop is the paper's Figure 2: "
               "speculate / exchange-or-rollback /\ncompute / "
               "commit+checkpoint\n\n";

  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = cfg.nodes;
  ccfg.recv_timeout_seconds = 30.0;

  Stopwatch sw;
  const auto run = gridapp::run_heat(cfg, ccfg, [&](cluster::Cluster& cl) {
    cl.enable_auto_resurrection(0.02);
    // Let rank 2 checkpoint at least once, then kill it mid-computation.
    const std::string ckpt = cl.checkpoint_name(2);
    for (int i = 0; i < 5000 && !cl.storage().exists(ckpt); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (cl.storage().exists(ckpt)) {
      std::cout << "!! injecting failure: killing node 2\n";
      cl.kill(2);
    } else {
      std::cout << "(node 2 never checkpointed; skipping fault injection)\n";
    }
  });
  const double elapsed = sw.seconds();

  const auto ref = gridapp::heat_reference_sums(cfg);
  bool verified = run.all_clean;
  std::cout << "\nper-rank interior sums (distributed vs reference):\n";
  for (std::uint32_t r = 0; r < cfg.nodes; ++r) {
    const double got = run.sums[r];
    const double want = ref[r];
    const bool match = std::abs(got - want) < 1e-9;
    verified = verified && match;
    std::cout << "  rank " << r << ": " << got << " vs " << want
              << (match ? "  [match]" : "  [MISMATCH]") << "\n";
  }

  std::uint64_t restarts = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t preserved = 0;
  for (const auto& node : run.nodes) {
    restarts += node.restarts;
    rollbacks += node.spec.rollbacks;
    preserved += node.spec.blocks_preserved;
    if (!node.error.empty()) {
      std::cout << "  rank " << node.rank << " error: " << node.error << "\n";
    }
  }
  std::cout << "\nresurrections: " << restarts
            << ", speculation rollbacks: " << rollbacks
            << ", COW blocks preserved: " << preserved << "\n";
  std::cout << "wall time: " << elapsed << " s\n";
  std::cout << (verified ? "VERIFIED: fault-tolerant run matches the "
                           "failure-free reference\n"
                         : "VERIFICATION FAILED\n");
  return verified ? 0 : 1;
}
