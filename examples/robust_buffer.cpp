// Rx-style failure recovery through speculation (paper, Section 2):
// "applications that suffer from unchecked buffer overflow issues could be
// instrumented using speculative execution ... if a buffer overflow occurs
// the program is rolled back to where the memory allocation occurred and a
// different path of execution (potentially allocating more memory and
// retrying) could be taken, thus preventing the application from
// crashing."
//
// The runtime's safety checks catch the overflow; with trap-to-speculation
// enabled, the trap becomes a rollback of the active speculation (c = -2)
// instead of a crash, and the program grows the buffer and retries.
//
//   $ ./examples/robust_buffer
#include <iostream>

#include "frontend/compile.hpp"
#include "vm/process.hpp"

namespace {

const char* kSource = R"(
/* Producer whose output size is not known in advance: it writes n records
   into buf and traps if buf is too small — the "buggy library call". */
void produce(ptr buf, int n) {
  int i = 0;
  while (i < n) {
    buf[i] = i * 3 + 1;   /* overflows when i >= len(buf) */
    i = i + 1;
  }
}

int main() {
  int need = 100;   /* records the producer will emit */
  int cap = 4;      /* initial guess, far too small   */
  int attempts = 0;
  int total = 0;

  while (1) {
    int id = speculate();
    if (id <= 0) {
      /* We are the re-entered continuation of a trapped attempt
         (id == -2). Leave the re-entered level, grow, retry. */
      int lvl = spec_level();
      commit(lvl);
      cap = cap * 2;
      attempts = attempts + 1;
      print_string("overflow trapped; growing buffer to ");
      print_int(cap);
      print_string("\n");
      continue;
    }
    ptr buf = alloc(cap);
    produce(buf, need);   /* may trap mid-way; rollback undoes everything */
    commit(id);
    /* Success: checksum the records. */
    int i = 0;
    while (i < need) { total = total + buf[i]; i = i + 1; }
    break;
  }

  print_string("succeeded after ");
  print_int(attempts);
  print_string(" grow-retries, checksum ");
  print_int(total);
  print_string("\n");
  return attempts;
}
)";

}  // namespace

int main() {
  using namespace mojave;
  try {
    fir::Program program = frontend::compile_source("robust", kSource);
    vm::ProcessConfig cfg;
    cfg.trap_to_speculation = true;  // the Rx-style instrumentation switch
    vm::Process process(std::move(program), cfg);
    const auto result = process.run();
    // cap doubles 4 → 8 → ... → 128 ≥ 100: five grow-retries.
    std::cout << "\nprocess halted; grow-retries = " << result.exit_code
              << " (expected 5)\n";
    std::cout << "rollbacks performed by the runtime: "
              << process.spec().stats().rollbacks << "\n";
    return result.exit_code == 5 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
