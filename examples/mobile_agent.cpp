// Mobile agent: whole-process migration across real migration servers.
//
// The paper's conclusion points at "dynamic transparent load balancing and
// mobile agents" as applications of the migrate primitive. This example
// runs two migration servers (each a TCP listener that verifies,
// recompiles, and resumes inbound FIR images — Section 4.2.1) and a MojC
// agent that hops between them, accumulating per-host data in its own
// heap, which travels with it. The agent code never copies its state
// explicitly: the compiler and runtime move the whole process.
//
//   $ ./examples/mobile_agent
#include <iostream>
#include <sstream>

#include "frontend/compile.hpp"
#include "migrate/migrator.hpp"
#include "migrate/server.hpp"
#include "vm/process.hpp"

namespace {

// The agent visits `hops` hosts. At each hop it asks the host for a local
// value (the host_value() external differs per server), adds it to its
// running tally — state carried in its heap across migrations — and moves
// on. After the last hop it reports the tally.
const char* kAgentSource = R"(
extern int host_value();
extern ptr next_hop();

int main() {
  ptr tally = alloc(2);     /* [0] = sum of host values, [1] = hops made */
  int hops = 6;
  int i = 0;
  while (i < hops) {
    int v = host_value();
    tally[0] = tally[0] + v;
    tally[1] = tally[1] + 1;
    print_string("agent: visited host, value ");
    print_int(v);
    print_string(", tally ");
    print_int(tally[0]);
    print_string("\n");
    migrate(next_hop());    /* the whole process moves; tally goes along */
    i = i + 1;
  }
  return tally[0];
}
)";

}  // namespace

int main() {
  using namespace mojave;
  try {
    // Two hosts; each tells the agent a different local value and routes
    // it to the other one.
    std::uint16_t ports[2] = {0, 0};
    std::unique_ptr<migrate::MigrationServer> servers[2];

    const auto make_prepare = [&](int self, int value) {
      return [&, self, value](vm::Process& proc) {
        proc.vm().register_external(
            "host_value",
            [value](vm::Interpreter&, std::span<const runtime::Value>) {
              return runtime::Value::from_int(value);
            });
        proc.vm().register_external(
            "next_hop",
            [&, self](vm::Interpreter& it,
                      std::span<const runtime::Value>) {
              const std::string target =
                  "migrate://127.0.0.1:" + std::to_string(ports[1 - self]);
              return runtime::Value::from_ptr(
                  it.heap().alloc_string(target), 0);
            });
        proc.adopt_hook(std::make_unique<migrate::Migrator>(proc));
      };
    };

    migrate::MigrationServer::Options o0;
    o0.prepare = make_prepare(0, 7);
    servers[0] = std::make_unique<migrate::MigrationServer>(std::move(o0));
    ports[0] = servers[0]->port();
    migrate::MigrationServer::Options o1;
    o1.prepare = make_prepare(1, 11);
    servers[1] = std::make_unique<migrate::MigrationServer>(std::move(o1));
    ports[1] = servers[1]->port();

    std::cout << "migration servers listening on 127.0.0.1:" << ports[0]
              << " and 127.0.0.1:" << ports[1] << "\n";

    // Launch the agent locally, configured as if it were on host 0, and
    // let it hop: 0 → 1 → 0 → 1 → 0 → 1, halting on host 1's server.
    fir::Program program =
        frontend::compile_source("agent", kAgentSource);
    vm::Process agent(std::move(program));
    make_prepare(0, 7)(agent);

    const auto local = agent.run();
    if (local.kind != vm::RunResult::Kind::kMigratedAway) {
      std::cerr << "agent never migrated\n";
      return 1;
    }
    std::cout << "agent left the origin host; waiting for it to finish...\n";

    // The agent makes 5 more hops; the halt happens on server 1 (hop 6).
    // Each intermediate arrival also records a completion entry on its
    // server (result kind MigratedAway); wait for the halted one.
    for (int spin = 0; spin < 200; ++spin) {
      for (int s = 0; s < 2; ++s) {
        if (servers[s]->received() == 0) continue;
        const auto done = servers[s]->wait_for(servers[s]->received());
        for (const auto& c : done) {
          if (c.error.empty() &&
              c.result.kind == vm::RunResult::Kind::kHalted) {
            std::cout << "agent halted on server " << s
                      << " with tally " << c.result.exit_code << "\n";
            const std::int64_t expected = 3 * 7 + 3 * 11;
            std::cout << (c.result.exit_code == expected
                              ? "VERIFIED: 3 visits x 7 + 3 visits x 11\n"
                              : "UNEXPECTED TALLY\n");
            return c.result.exit_code == expected ? 0 : 1;
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::cerr << "agent never halted\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
