// Quickstart: compile and run a MojC program that uses the speculation
// primitives — the paper's Figure 1 atomic transfer.
//
// A speculation makes a sequence of fallible operations atomic: enter a
// level with speculate(), do the work, and either commit() (keep every
// write) or abort() (restore the entire process state — heap AND locals —
// to the moment the level was entered). The error-recovery code is
// completely separate from the operation itself.
//
//   $ ./examples/quickstart
#include <iostream>

#include "frontend/compile.hpp"
#include "vm/process.hpp"

namespace {

// MojC: C-like syntax; speculate/commit/abort are language primitives.
// try_transfer swaps the contents of two "accounts"; when any simulated
// write fails (fail_at selects which), the speculation is aborted and the
// accounts are untouched.
const char* kSource = R"(
int try_transfer(ptr obj1, ptr obj2, int k, int fail_at) {
  int id = speculate();
  if (id > 0) {
    ptr tmp1 = alloc(k);
    ptr tmp2 = alloc(k);
    int i = 0;
    while (i < k) { tmp1[i] = obj1[i]; tmp2[i] = obj2[i]; i = i + 1; }
    i = 0;
    while (i < k) {
      if (fail_at == i) { abort(id); }   /* injected write failure */
      obj1[i] = tmp2[i];
      i = i + 1;
    }
    i = 0;
    while (i < k) {
      if (fail_at == k + i) { abort(id); }
      obj2[i] = tmp1[i];
      i = i + 1;
    }
    commit(id);
    return 1;
  }
  return 0;  /* aborted: all effects rolled back */
}

void show(ptr a, ptr b, int k) {
  int i = 0;
  print_string("  account A: ");
  while (i < k) { print_int(a[i]); print_string(" "); i = i + 1; }
  print_string("\n  account B: ");
  i = 0;
  while (i < k) { print_int(b[i]); print_string(" "); i = i + 1; }
  print_string("\n");
}

int main() {
  int k = 4;
  ptr a = alloc(k);
  ptr b = alloc(k);
  int i = 0;
  while (i < k) { a[i] = 100 + i; b[i] = 200 + i; i = i + 1; }

  print_string("initial state:\n");
  show(a, b, k);

  print_string("transfer with a write failure injected mid-way...\n");
  int ok = try_transfer(a, b, k, 6);
  if (ok != 0) { return 1; }
  print_string("transfer failed; state is untouched (atomicity held):\n");
  show(a, b, k);

  print_string("transfer with no failure...\n");
  ok = try_transfer(a, b, k, 0 - 1);
  if (ok == 0) { return 2; }
  print_string("transfer committed; contents swapped:\n");
  show(a, b, k);
  return 0;
}
)";

}  // namespace

int main() {
  using namespace mojave;
  try {
    fir::Program program = frontend::compile_source("quickstart", kSource);
    std::cout << "compiled " << program.functions.size()
              << " FIR functions from MojC source\n\n";
    vm::Process process(std::move(program));
    const auto result = process.run();
    std::cout << "\nprocess halted with code " << result.exit_code << "\n";
    std::cout << "speculations: " << process.spec().stats().speculates
              << ", commits: " << process.spec().stats().commits
              << ", rollbacks: " << process.spec().stats().rollbacks
              << ", blocks preserved by COW: "
              << process.spec().stats().blocks_preserved << "\n";
    return static_cast<int>(result.exit_code);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
