// Dynamic transparent load balancing (paper, Section 7: "Migration and
// speculation primitives allow for a number of interesting programming
// concepts, such as dynamic transparent load balancing and mobile
// agents").
//
// A batch of compute jobs starts on host A. Each job periodically asks its
// host "should I move?" — and when host A is over capacity it answers with
// the address of idle host B. The job then executes the migrate primitive:
// the whole process (mid-loop state and all) moves to B and finishes
// there. The job code is identical on both hosts and never copies its own
// state; the compiler/runtime move it.
//
//   $ ./examples/load_balance
#include <atomic>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "frontend/compile.hpp"
#include "migrate/migrator.hpp"
#include "migrate/server.hpp"
#include "vm/process.hpp"

namespace {

using namespace mojave;

// Each job sums a strided series in chunks; between chunks it polls the
// host's load-balancing policy.
const char* kJobSource = R"(
extern int should_move();
extern ptr move_target();
extern void job_done(int);

int main() {
  int acc = 0;
  for (int chunk = 0; chunk < 8; chunk++) {
    for (int i = 0; i < 5000; i++) {
      acc = (acc + chunk * 31 + i) % 1000003;
    }
    if (should_move() != 0) {
      migrate(move_target());   /* transparent: acc, chunk move along */
    }
  }
  job_done(acc);
  return acc;
}
)";

std::int64_t reference_result() {
  std::int64_t acc = 0;
  for (int chunk = 0; chunk < 8; ++chunk) {
    for (int i = 0; i < 5000; ++i) acc = (acc + chunk * 31 + i) % 1000003;
  }
  return acc;
}

}  // namespace

int main() {
  constexpr int kJobs = 6;
  constexpr int kCapacityA = 2;  // host A tolerates 2 resident jobs

  std::atomic<int> load_a{kJobs};  // all jobs start on A
  std::atomic<int> done_on_a{0};
  std::atomic<int> done_on_b{0};
  std::atomic<int> total_done{0};
  std::uint16_t port_b = 0;

  const auto prepare_for_host = [&](char host) {
    return [&, host](vm::Process& proc) {
      proc.vm().register_external(
          "should_move",
          [&, host](vm::Interpreter&, std::span<const runtime::Value>) {
            // Policy: move when A is over capacity; the decision atomically
            // releases this job's slot so exactly the excess jobs move.
            if (host != 'A') return runtime::Value::from_int(0);
            int cur = load_a.load();
            while (cur > kCapacityA) {
              if (load_a.compare_exchange_weak(cur, cur - 1)) {
                return runtime::Value::from_int(1);
              }
            }
            return runtime::Value::from_int(0);
          });
      proc.vm().register_external(
          "move_target",
          [&](vm::Interpreter& it, std::span<const runtime::Value>) {
            const std::string target =
                "migrate://127.0.0.1:" + std::to_string(port_b);
            return runtime::Value::from_ptr(it.heap().alloc_string(target),
                                            0);
          });
      proc.vm().register_external(
          "job_done",
          [&, host](vm::Interpreter&, std::span<const runtime::Value> args) {
            (host == 'A' ? done_on_a : done_on_b).fetch_add(1);
            total_done.fetch_add(1);
            if (host == 'A') load_a.fetch_sub(1);
            std::ostringstream line;
            line << "  job finished on host " << host << " with result "
                 << args[0].as_int() << "\n";
            std::cout << line.str();
            return runtime::Value::unit();
          });
      proc.adopt_hook(std::make_unique<migrate::Migrator>(proc));
    };
  };

  migrate::MigrationServer::Options opts_b;
  opts_b.prepare = prepare_for_host('B');
  migrate::MigrationServer host_b(std::move(opts_b));
  port_b = host_b.port();
  std::cout << "host B (idle) listening on 127.0.0.1:" << port_b << "\n";
  std::cout << "host A starts " << kJobs << " jobs but has capacity for "
            << kCapacityA << "; excess jobs migrate to B mid-run\n\n";

  fir::Program job = frontend::compile_source("job", kJobSource);

  std::vector<std::thread> jobs;
  std::atomic<int> migrated{0};
  for (int j = 0; j < kJobs; ++j) {
    jobs.emplace_back([&, j] {
      vm::Process proc(fir::clone_program(job));
      prepare_for_host('A')(proc);
      const auto r = proc.run();
      if (r.kind == vm::RunResult::Kind::kMigratedAway) {
        migrated.fetch_add(1);  // the slot was released by should_move()
      }
      (void)j;
    });
  }
  for (auto& t : jobs) t.join();

  // Wait for the migrated jobs to finish on host B.
  for (int spin = 0; spin < 400 && total_done.load() < kJobs; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }

  const std::int64_t expected = reference_result();
  std::cout << "\ncompleted on A: " << done_on_a.load() << ", on B: "
            << done_on_b.load() << " (migrated: " << migrated.load()
            << "), expected result per job: " << expected << "\n";

  const bool ok = total_done.load() == kJobs && done_on_b.load() > 0 &&
                  done_on_a.load() > 0;
  std::cout << (ok ? "VERIFIED: all jobs completed; load spread across "
                     "both hosts\n"
                   : "FAILED\n");
  return ok ? 0 : 1;
}
