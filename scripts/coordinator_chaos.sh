#!/usr/bin/env bash
# Coordinator-chaos e2e, driven entirely through the shipped CLI:
#
#   1. a failure-free reference run of the heat grid across two real
#      `mojc node` agents, collecting the per-rank RANK_SUM lines;
#   2. the chaos run: a primary `mojc cluster --wal-root` is SIGKILLed
#      mid-grid (after checkpoints exist, long before completion), a
#      `mojc cluster --standby` waits out the lease, replays the WAL,
#      seals the dead primary's segment, RE-ADOPTs the still-running
#      agents, and finishes the run;
#   3. the two runs' RANK_SUM lines must be byte-identical (the sums are
#      printed with %.17g, so "identical" means bit-identical doubles).
#
# Usage: scripts/coordinator_chaos.sh path/to/mojc [heat.mjc]
set -euo pipefail

MOJC=${1:?usage: coordinator_chaos.sh path/to/mojc [heat.mjc]}
PROG=${2:-examples/heat_cluster.mjc}
RANKS=4
WORK=$(mktemp -d)

cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) >/dev/null 2>&1 || true
  wait >/dev/null 2>&1 || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# Start one `mojc node` agent; echoes the port it bound.
start_agent() { # $1 = storage dir, $2 = log file
  "$MOJC" node --storage "$1" --port 0 >"$2" 2>&1 &
  for _ in $(seq 1 200); do
    if grep -q '^DNODE_READY port=' "$2" 2>/dev/null; then
      sed -n 's/^DNODE_READY port=//p' "$2" | head -1
      return 0
    fi
    sleep 0.05
  done
  echo "agent never printed DNODE_READY (log: $2)" >&2
  return 1
}

manifests_in() { # $1 = storage dir
  "$MOJC" ckpt "$1" stats 2>/dev/null | sed -n 's/^manifests: *//p'
}

echo "== reference run (no failures) =="
REF_STORE="$WORK/ref-store"
mkdir -p "$REF_STORE"
P0=$(start_agent "$REF_STORE" "$WORK/ref-a0.log")
P1=$(start_agent "$REF_STORE" "$WORK/ref-a1.log")
"$MOJC" cluster --nodes "127.0.0.1:$P0,127.0.0.1:$P1" --ranks "$RANKS" \
  run "$PROG" >"$WORK/ref.out" 2>"$WORK/ref.err"
grep '^RANK_SUM ' "$WORK/ref.out" | sort >"$WORK/ref.sums"
[ "$(wc -l <"$WORK/ref.sums")" -eq "$RANKS" ] || {
  echo "reference run reported $(wc -l <"$WORK/ref.sums")/$RANKS sums" >&2
  cat "$WORK/ref.err" >&2
  exit 1
}
cat "$WORK/ref.sums"

echo "== chaos run: SIGKILL the primary coordinator mid-grid =="
STORE="$WORK/ha-store"
WAL="$WORK/ha-wal"
mkdir -p "$STORE" "$WAL"
Q0=$(start_agent "$STORE" "$WORK/ha-a0.log")
Q1=$(start_agent "$STORE" "$WORK/ha-a1.log")

"$MOJC" cluster --nodes "127.0.0.1:$Q0,127.0.0.1:$Q1" --ranks "$RANKS" \
  --wal-root "$WAL" --lease-ttl 1.0 \
  run "$PROG" >"$WORK/primary.out" 2>"$WORK/primary.err" &
PRIMARY=$!

# Mid-run marker: the first checkpoint wave has begun landing in the
# shared store. The program runs 30 checkpoint intervals, so the kill
# lands far from completion.
for _ in $(seq 1 600); do
  n=$(manifests_in "$STORE" || echo 0)
  [ "${n:-0}" -ge 1 ] && break
  kill -0 "$PRIMARY" 2>/dev/null || {
    echo "primary exited before any checkpoints" >&2
    cat "$WORK/primary.err" >&2
    exit 1
  }
  sleep 0.05
done
[ "${n:-0}" -ge 1 ] || { echo "no checkpoint wave" >&2; exit 1; }

kill -9 "$PRIMARY"
wait "$PRIMARY" 2>/dev/null || true
echo "primary (pid $PRIMARY) SIGKILLed after $n manifests"

# The standby waits out the dead primary's lease, takes over its WAL at
# the next epoch, and re-adopts the agents — which held their ranks
# through the gap (coordinator_grace).
"$MOJC" cluster --nodes "127.0.0.1:$Q0,127.0.0.1:$Q1" --ranks "$RANKS" \
  --wal-root "$WAL" --lease-ttl 1.0 --standby \
  run "$PROG" >"$WORK/standby.out" 2>"$WORK/standby.err" || {
  echo "standby takeover failed" >&2
  cat "$WORK/standby.err" >&2
  exit 1
}
grep '^RANK_SUM ' "$WORK/standby.out" | sort >"$WORK/ha.sums"
cat "$WORK/ha.sums"
grep -q 'takeover\|resumed\|standby' "$WORK/standby.err" || true

echo "== verdict =="
if ! diff -u "$WORK/ref.sums" "$WORK/ha.sums"; then
  echo "FAIL: failover run's sums diverged from the failure-free run" >&2
  exit 1
fi
echo "OK: $RANKS ranks, sums bit-identical across the coordinator failover"
