#!/usr/bin/env python3
"""Perf trendline gate: compare a bench_results.jsonl against the archived
baseline and fail on regression.

Each bench binary prints one `BENCH_JSON {...}` line; CI collects them into
bench_results.jsonl (one JSON object per line, keyed by "bench"). This
script compares a curated set of headline metrics against
bench/baseline.jsonl and exits non-zero if any regresses by more than the
tolerance (default 10%).

Gated metrics:
  grid_checkpoint.heat_fault_free_ms     lower is better (heat wall time)
  grid_checkpoint.incremental_write_ratio lower is better (ckpt dedup)
  migration.mig_drop0_p50_us             lower is better (migration p50)
  migration.pack_p50_us                  lower is better
  vm.hot_loop_native_ms                  lower is better (native tier)
  vm.native_speedup                      higher is better
  rank_density.ranks_per_core            higher is better (fiber density)
  rank_density.coalesce_ratio            higher is better (frames/batch)
  rank_density.perrank_cost_ratio        lower is better (dense vs small)
  ckpt_engine.small_put_per_s            higher is better (tiny-ckpt rate)
  ckpt_engine.small_put_extents          lower is better (files per 10^6)

Metrics missing from either file, non-positive baselines, and native-tier
metrics on hosts where the vm record says jit_supported=0 are skipped with
a notice, not failed: a bench that stops *reporting* is caught by the
separate BENCH_JSON validation step.

Usage:
  python3 scripts/bench_gate.py --current bench_results.jsonl \
      [--baseline bench/baseline.jsonl] [--tolerance 0.10]
"""

import argparse
import json
import sys

# (bench, key, direction) — direction "lower" or "higher" is better.
# rank_density baselines are deliberate floors, not measured points:
# ranks_per_core is a config constant (it regresses only if the dense run
# stops completing), and coalesce_ratio's baseline of 50 is well under the
# ~90+ a healthy run batches, so the gate trips on "coalescing broke"
# (ratio collapses toward 1) rather than on scheduler timing jitter.
# ckpt_engine baselines are likewise a floor (puts/s well under the
# measured rate, tripping only on an order-of-magnitude collapse such as
# an accidental fsync-per-put) and a ceiling (10^6 small checkpoints must
# leave <= ~1000 extent files; the flat layout would leave 10^6).
GATED = [
    ("grid_checkpoint", "heat_fault_free_ms", "lower"),
    ("grid_checkpoint", "incremental_write_ratio", "lower"),
    ("migration", "mig_drop0_p50_us", "lower"),
    ("migration", "pack_p50_us", "lower"),
    ("vm", "hot_loop_native_ms", "lower"),
    ("vm", "native_speedup", "higher"),
    ("rank_density", "ranks_per_core", "higher"),
    ("rank_density", "coalesce_ratio", "higher"),
    ("rank_density", "perrank_cost_ratio", "lower"),
    ("ckpt_engine", "small_put_per_s", "higher"),
    ("ckpt_engine", "small_put_extents", "lower"),
]

# Metrics only meaningful when the native tier actually ran.
NEEDS_JIT = {("vm", "hot_loop_native_ms"), ("vm", "native_speedup")}


def load_jsonl(path):
    """Map bench name -> record (last record wins if a bench repeats)."""
    records = {}
    with open(path) as f:
        for i, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{i}: malformed JSON: {e}")
            if "bench" not in rec:
                sys.exit(f"{path}:{i}: record missing 'bench' key")
            records[rec["bench"]] = rec
    return records


def jit_ran(records):
    return records.get("vm", {}).get("jit_supported", 0) == 1


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--current", required=True,
                    help="bench_results.jsonl from this run")
    ap.add_argument("--baseline", default="bench/baseline.jsonl",
                    help="archived baseline jsonl (default: %(default)s)")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional regression (default: %(default)s)")
    args = ap.parse_args()

    current = load_jsonl(args.current)
    baseline = load_jsonl(args.baseline)
    native_ok = jit_ran(current) and jit_ran(baseline)

    failures = []
    checked = 0
    for bench, key, direction in GATED:
        label = f"{bench}.{key}"
        if (bench, key) in NEEDS_JIT and not native_ok:
            print(f"SKIP {label}: native tier did not run on both sides")
            continue
        cur_rec, base_rec = current.get(bench), baseline.get(bench)
        if cur_rec is None or base_rec is None:
            side = "current" if cur_rec is None else "baseline"
            print(f"SKIP {label}: no '{bench}' record in {side}")
            continue
        if key not in cur_rec or key not in base_rec:
            side = "current" if key not in cur_rec else "baseline"
            print(f"SKIP {label}: key missing in {side}")
            continue
        cur, base = float(cur_rec[key]), float(base_rec[key])
        if base <= 0:
            print(f"SKIP {label}: non-positive baseline {base}")
            continue
        checked += 1
        ratio = cur / base
        if direction == "lower":
            bad = ratio > 1 + args.tolerance
            delta = ratio - 1
        else:
            bad = ratio < 1 - args.tolerance
            delta = 1 - ratio
        verdict = "FAIL" if bad else "ok"
        print(f"{verdict:4} {label}: {cur:g} vs baseline {base:g} "
              f"({'+' if delta >= 0 else ''}{delta * 100:.1f}% "
              f"{'regression' if delta > 0 else 'improvement'}, "
              f"{direction} is better)")
        if bad:
            failures.append(label)

    if checked == 0:
        sys.exit("bench gate checked nothing: every gated metric was skipped")
    if failures:
        sys.exit(f"bench gate FAILED: {len(failures)} metric(s) regressed "
                 f">{args.tolerance * 100:.0f}%: {', '.join(failures)}")
    print(f"bench gate passed: {checked} metric(s) within "
          f"{args.tolerance * 100:.0f}% of baseline")


if __name__ == "__main__":
    main()
